#include "pfsem/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "pfsem/util/error.hpp"

namespace pfsem {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto cell = [&](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      os << s;
      return;
    }
    os << '"';
    for (char ch : s) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      cell(row[c]);
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace pfsem
