#pragma once
// Error handling: pfsem uses exceptions for programming errors at module
// boundaries (bad arguments, protocol misuse) and status codes for simulated
// I/O errors that are part of the modelled behaviour (e.g. ENOENT from the
// simulated PFS), mirroring how a real tracing/analysis stack distinguishes
// "our bug" from "the traced application saw an error".

#include <source_location>
#include <stdexcept>
#include <string>

namespace pfsem {

class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throw pfsem::Error if `cond` is false. Used for API-contract checks that
/// must hold in release builds too (unlike assert).
inline void require(bool cond, const std::string& msg,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                ": " + msg);
  }
}

}  // namespace pfsem
