#pragma once
// Plain-text table and CSV rendering for the table/figure reproduction
// binaries. Columns auto-size to content; the output style mirrors how the
// paper's tables read (left-aligned text, right-aligned numbers).

#include <iosfwd>
#include <string>
#include <vector>

namespace pfsem {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with box-drawing separators to `os`.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (quotes only when needed).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for table cells).
std::string fmt(double v, int precision = 1);

/// Format a percentage like "62.5%".
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace pfsem
