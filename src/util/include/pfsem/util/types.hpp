#pragma once
// Core scalar types shared across the pfsem libraries.
//
// All simulated time is in integer nanoseconds so that event ordering is
// exact and reproducible; a helper converts to floating seconds only for
// human-facing output.

#include <cstdint>
#include <limits>

namespace pfsem {

/// Simulated time in nanoseconds since the start of the run (after the
/// startup barrier, mirroring the paper's "exit time from the barrier as
/// time = 0" normalization in Section 5.2).
using SimTime = std::int64_t;

/// A duration in simulated nanoseconds.
using SimDuration = std::int64_t;

/// MPI process rank within the simulated job.
using Rank = std::int32_t;

/// Byte offset within a file.
using Offset = std::uint64_t;

/// Dense handle of an interned file path (index into a trace::PathTable).
/// Ids are assigned in first-intern order, so within one run they are
/// deterministic: the file first opened gets id 0, and so on.
using FileId = std::uint32_t;

/// Sentinel: "event never happens" (used for e.g. "no succeeding commit").
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

/// Sentinel: invalid/absent rank.
inline constexpr Rank kNoRank = -1;

/// Sentinel: record or handle not associated with any file path.
inline constexpr FileId kNoFile = std::numeric_limits<FileId>::max();

namespace literals {
/// 1 microsecond in SimTime units.
inline constexpr SimDuration operator""_us(unsigned long long v) {
  return static_cast<SimDuration>(v) * 1000;
}
/// 1 millisecond in SimTime units.
inline constexpr SimDuration operator""_ms(unsigned long long v) {
  return static_cast<SimDuration>(v) * 1000 * 1000;
}
/// 1 second in SimTime units.
inline constexpr SimDuration operator""_s(unsigned long long v) {
  return static_cast<SimDuration>(v) * 1000 * 1000 * 1000;
}
}  // namespace literals

/// Convert simulated nanoseconds to seconds for display.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }

}  // namespace pfsem
