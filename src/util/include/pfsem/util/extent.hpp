#pragma once
// Half-open byte extents [begin, end) and extent arithmetic.
//
// The paper's Algorithm 1 uses inclusive ending offsets; we use half-open
// ranges internally (the natural C++ idiom) and convert at the reporting
// boundary. An extent with begin == end is empty and overlaps nothing.

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <vector>

#include "pfsem/util/types.hpp"

namespace pfsem {

/// A half-open byte range [begin, end) within a file.
struct Extent {
  Offset begin = 0;
  Offset end = 0;  ///< one past the last byte

  [[nodiscard]] constexpr Offset size() const { return end - begin; }
  [[nodiscard]] constexpr bool empty() const { return begin >= end; }

  /// True if the two extents share at least one byte.
  [[nodiscard]] constexpr bool overlaps(const Extent& o) const {
    return begin < o.end && o.begin < end && !empty() && !o.empty();
  }

  /// True if `o` is fully contained in *this.
  [[nodiscard]] constexpr bool contains(const Extent& o) const {
    return begin <= o.begin && o.end <= end && !o.empty();
  }

  [[nodiscard]] constexpr bool contains(Offset byte) const {
    return begin <= byte && byte < end;
  }

  /// Intersection; empty extent if disjoint.
  [[nodiscard]] constexpr Extent intersect(const Extent& o) const {
    const Offset b = std::max(begin, o.begin);
    const Offset e = std::min(end, o.end);
    return b < e ? Extent{b, e} : Extent{};
  }

  friend constexpr bool operator==(const Extent&, const Extent&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Extent& e) {
  return os << '[' << e.begin << ',' << e.end << ')';
}

/// Merge overlapping/adjacent extents in-place; result is sorted & disjoint.
inline void normalize(std::vector<Extent>& v) {
  std::erase_if(v, [](const Extent& e) { return e.empty(); });
  std::sort(v.begin(), v.end(), [](const Extent& a, const Extent& b) {
    return a.begin < b.begin;
  });
  std::size_t out = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (out > 0 && v[i].begin <= v[out - 1].end) {
      v[out - 1].end = std::max(v[out - 1].end, v[i].end);
    } else {
      v[out++] = v[i];
    }
  }
  v.resize(out);
}

/// Total bytes covered by a normalized extent list.
inline Offset covered_bytes(const std::vector<Extent>& v) {
  Offset n = 0;
  for (const auto& e : v) n += e.size();
  return n;
}

}  // namespace pfsem
