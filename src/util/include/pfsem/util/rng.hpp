#pragma once
// Deterministic, seedable RNG (xoshiro256**) used everywhere randomness is
// needed so that runs, tests, and benches are exactly reproducible.
// std::mt19937 would also work, but its state is large and its distributions
// are not portable across standard libraries; we need bit-identical streams.

#include <cstdint>

namespace pfsem {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace pfsem
