#pragma once
// Discrete-event simulation engine.
//
// Single-threaded and fully deterministic: events fire in (time, insertion
// sequence) order, so a given workload + seed always produces bit-identical
// traces. Rank programs are coroutines spawned as root tasks; they advance
// simulated time only through `co_await engine.delay(d)` (directly or via
// the I/O-cost models layered above).
//
// Two scheduler implementations share that contract (SchedulerKind):
//
//  - Bucketed (default): a near-time ring of FIFO buckets covering
//    [now, now + kRingWindow) plus a fallback heap for far-future wakeups.
//    The overwhelmingly common case — `delay(0)` fairness round-trips and
//    short I/O-model delays — costs an O(1) bucket append/pop instead of
//    an O(log n) heap operation on the full pending-event set.
//  - Heap: the original single std::priority_queue. Retained as the
//    debug/differential oracle (mirrors detect_overlaps_scan): firing
//    sequences must be identical event-for-event between the two kinds,
//    which tests/test_sim_determinism.cpp enforces over random schedules.

#include <array>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <queue>
#include <set>
#include <vector>

#include "pfsem/obs/obs.hpp"
#include "pfsem/sim/task.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::sim {

/// Thrown inside a root task to terminate it cleanly (fail-stop crash
/// injection: pfsem::fault). The engine absorbs it — the root unwinds,
/// counts as killed rather than failed, and the simulation continues.
class TaskKilled : public std::exception {
 public:
  explicit TaskKilled(int label = -1) : label_(label) {}
  /// The spawn() label (the harness passes the rank) of the killed task.
  [[nodiscard]] int label() const noexcept { return label_; }
  [[nodiscard]] const char* what() const noexcept override {
    return "simulated task killed (fail-stop crash)";
  }

 private:
  int label_;
};

/// Which event-queue implementation an Engine runs on (see file comment).
enum class SchedulerKind : std::uint8_t { Bucketed, Heap };

class Engine {
 public:
  explicit Engine(SchedulerKind scheduler = SchedulerKind::Bucketed)
      : kind_(scheduler) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time (global, skew-free).
  [[nodiscard]] SimTime now() const { return now_; }

  /// The scheduler implementation this engine runs on.
  [[nodiscard]] SchedulerKind scheduler() const { return kind_; }

  /// Schedule a coroutine to resume at absolute time `t` (>= now).
  void schedule(SimTime t, std::coroutine_handle<> h);

  /// Awaitable that suspends the caller for `d` simulated nanoseconds.
  /// delay(0) still round-trips through the event queue, which gives every
  /// runnable coroutine a fair, deterministic turn.
  [[nodiscard]] auto delay(SimDuration d) {
    struct Awaiter {
      Engine* engine;
      SimDuration dur;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine->schedule(engine->now_ + dur, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Launch a root task (e.g. one simulated rank's program). The engine
  /// owns it; it starts when run() reaches time 0. `label` identifies the
  /// task in deadlock diagnostics (the harness passes the rank; -1 =
  /// anonymous, omitted from messages).
  void spawn(Task<void> task, int label = -1);

  /// Run until the event queue drains. Throws the first unhandled exception
  /// from any root task, or pfsem::Error if roots are still blocked when the
  /// queue empties (deadlock, e.g. a barrier some rank never reaches); the
  /// deadlock message lists the blocked ranks' labels and the simulated
  /// time. A root that exits via TaskKilled is absorbed (see killed_roots).
  void run();

  /// Number of root tasks that have not yet finished.
  [[nodiscard]] int live_roots() const { return live_roots_; }

  /// Number of root tasks terminated by TaskKilled (fail-stop crashes).
  [[nodiscard]] int killed_roots() const { return killed_roots_; }

  /// Total events dispatched so far (for tests/benches).
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

  /// Attach an observability context (nullptr = off, the default). The
  /// engine then counts dispatches per tier and, when tracing is on,
  /// emits one aggregated span per consecutive same-tier dispatch burst
  /// plus compaction instants. Call before run().
  void set_observer(obs::Run* run) { obs_ = run; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  /// Near-time ring width. Must be a power of two. Times in
  /// [now, now + kRingWindow) map injectively onto ring slots, so one slot
  /// never holds two distinct firing times at once.
  static constexpr SimTime kRingWindow = 64;

  /// One FIFO bucket = all pending events at a single absolute time.
  /// Entries are appended in schedule() call order, which equals global
  /// seq order, so front-to-back pop order IS (time, seq) order.
  struct Bucket {
    SimTime time = 0;  ///< absolute firing time; valid while non-empty
    std::size_t head = 0;
    std::vector<std::pair<std::uint64_t, std::coroutine_handle<>>> entries;
    [[nodiscard]] bool empty() const { return head == entries.size(); }
  };

  // Fire-and-forget wrapper that owns a root Task for its whole run.
  struct Detached {
    struct promise_type {
      Detached get_return_object() { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() noexcept {}
      void unhandled_exception() noexcept { std::terminate(); }  // run_root catches
    };
  };
  Detached run_root(Task<void> task, int label);

  /// Earliest-time non-empty ring bucket, or nullptr when the ring is
  /// empty. All ring events lie in [now, now + kRingWindow), so the
  /// occupancy bitmask rotated to now's slot finds it in O(1).
  [[nodiscard]] Bucket* ring_front();

  /// Observability slow path: tier counters + burst-span aggregation for
  /// one dispatch (called only when obs_ != nullptr).
  void note_dispatch(bool ring);
  /// Close the open tier span, if any (end of run / tier switch).
  void flush_tier_span();

  SchedulerKind kind_;
  std::array<Bucket, static_cast<std::size_t>(kRingWindow)> ring_;
  /// Bit i set iff ring_[i] is non-empty; kRingWindow is 64 so the whole
  /// ring's occupancy fits one word.
  std::uint64_t ring_mask_ = 0;
  /// Far-future events (Bucketed) or every event (Heap oracle).
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  int live_roots_ = 0;
  int killed_roots_ = 0;
  std::multiset<int> live_labels_;
  std::exception_ptr first_error_;

  /// Observability (off = nullptr; one branch per hot-path site).
  obs::Run* obs_ = nullptr;
  /// Open aggregated tier span: consecutive dispatches from one tier
  /// collapse into a single traced span (see note_dispatch).
  struct TierRun {
    bool open = false;
    bool ring = false;
    SimTime t0 = 0;
    SimTime last = 0;
    std::uint64_t events = 0;
  };
  TierRun tier_run_;
};

}  // namespace pfsem::sim
