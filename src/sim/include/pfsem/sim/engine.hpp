#pragma once
// Discrete-event simulation engine.
//
// Single-threaded and fully deterministic: events fire in (time, insertion
// sequence) order, so a given workload + seed always produces bit-identical
// traces. Rank programs are coroutines spawned as root tasks; they advance
// simulated time only through `co_await engine.delay(d)` (directly or via
// the I/O-cost models layered above).

#include <coroutine>
#include <cstdint>
#include <exception>
#include <queue>
#include <set>
#include <vector>

#include "pfsem/sim/task.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::sim {

/// Thrown inside a root task to terminate it cleanly (fail-stop crash
/// injection: pfsem::fault). The engine absorbs it — the root unwinds,
/// counts as killed rather than failed, and the simulation continues.
class TaskKilled : public std::exception {
 public:
  explicit TaskKilled(int label = -1) : label_(label) {}
  /// The spawn() label (the harness passes the rank) of the killed task.
  [[nodiscard]] int label() const noexcept { return label_; }
  [[nodiscard]] const char* what() const noexcept override {
    return "simulated task killed (fail-stop crash)";
  }

 private:
  int label_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time (global, skew-free).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule a coroutine to resume at absolute time `t` (>= now).
  void schedule(SimTime t, std::coroutine_handle<> h);

  /// Awaitable that suspends the caller for `d` simulated nanoseconds.
  /// delay(0) still round-trips through the event queue, which gives every
  /// runnable coroutine a fair, deterministic turn.
  [[nodiscard]] auto delay(SimDuration d) {
    struct Awaiter {
      Engine* engine;
      SimDuration dur;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine->schedule(engine->now_ + dur, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Launch a root task (e.g. one simulated rank's program). The engine
  /// owns it; it starts when run() reaches time 0. `label` identifies the
  /// task in deadlock diagnostics (the harness passes the rank; -1 =
  /// anonymous, omitted from messages).
  void spawn(Task<void> task, int label = -1);

  /// Run until the event queue drains. Throws the first unhandled exception
  /// from any root task, or pfsem::Error if roots are still blocked when the
  /// queue empties (deadlock, e.g. a barrier some rank never reaches); the
  /// deadlock message lists the blocked ranks' labels and the simulated
  /// time. A root that exits via TaskKilled is absorbed (see killed_roots).
  void run();

  /// Number of root tasks that have not yet finished.
  [[nodiscard]] int live_roots() const { return live_roots_; }

  /// Number of root tasks terminated by TaskKilled (fail-stop crashes).
  [[nodiscard]] int killed_roots() const { return killed_roots_; }

  /// Total events dispatched so far (for tests/benches).
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  // Fire-and-forget wrapper that owns a root Task for its whole run.
  struct Detached {
    struct promise_type {
      Detached get_return_object() { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() noexcept {}
      void unhandled_exception() noexcept { std::terminate(); }  // run_root catches
    };
  };
  Detached run_root(Task<void> task, int label);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  int live_roots_ = 0;
  int killed_roots_ = 0;
  std::multiset<int> live_labels_;
  std::exception_ptr first_error_;
};

}  // namespace pfsem::sim
