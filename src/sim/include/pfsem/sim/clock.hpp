#pragma once
// Per-rank local clock model.
//
// The paper (Section 5.2) orders I/O operations from different nodes by
// local-clock timestamps, normalized so that the exit from a startup
// barrier is time 0, and observes skew below 20 microseconds on Quartz
// while conflicting operations are tens of milliseconds apart. To exercise
// that reasoning we let each rank observe a skewed, slightly drifting view
// of global simulated time; analyses consume only these local timestamps,
// exactly like the real tracer.

#include <vector>

#include "pfsem/util/rng.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::sim {

struct ClockModel {
  SimDuration offset = 0;   ///< fixed skew vs. global time, ns
  double drift_ppb = 0.0;   ///< parts-per-billion rate error

  /// Local timestamp a process on this clock records for global time `t`.
  [[nodiscard]] SimTime local_time(SimTime t) const {
    return t + offset + static_cast<SimTime>(drift_ppb * 1e-9 * static_cast<double>(t));
  }
};

/// Build per-rank clocks with skew uniform in [-max_skew, +max_skew] and
/// drift uniform in [-max_drift_ppb, +max_drift_ppb], deterministically
/// from `seed`. Rank 0 is the reference clock (zero skew/drift), mirroring
/// the barrier-based normalization in the paper.
inline std::vector<ClockModel> make_skewed_clocks(int nranks, SimDuration max_skew,
                                                  double max_drift_ppb,
                                                  std::uint64_t seed) {
  std::vector<ClockModel> clocks(static_cast<std::size_t>(nranks));
  Rng rng(seed);
  for (int r = 1; r < nranks; ++r) {
    auto& c = clocks[static_cast<std::size_t>(r)];
    c.offset = max_skew == 0 ? 0 : rng.range(-max_skew, max_skew);
    c.drift_ppb = (2.0 * rng.uniform() - 1.0) * max_drift_ppb;
  }
  return clocks;
}

}  // namespace pfsem::sim
