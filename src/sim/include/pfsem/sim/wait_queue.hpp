#pragma once
// Condition-variable-like primitive for the DES engine. Coroutines park on
// wait(); wake_all()/wake_one() reschedule them at the current simulated
// time in FIFO order. Barriers, channels, and rendezvous message matching
// in pfsem::mpi are all built on this.

#include <coroutine>
#include <deque>

#include "pfsem/sim/engine.hpp"

namespace pfsem::sim {

class WaitQueue {
 public:
  explicit WaitQueue(Engine& engine) : engine_(&engine) {}
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Awaitable: park the calling coroutine until woken.
  [[nodiscard]] auto wait() {
    struct Awaiter {
      WaitQueue* q;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { q->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Wake every parked coroutine (scheduled at the current time, FIFO).
  void wake_all() {
    while (!waiters_.empty()) wake_one();
  }

  /// Wake the longest-parked coroutine, if any.
  void wake_one() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.pop_front();
    engine_->schedule(engine_->now(), h);
  }

  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine* engine_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace pfsem::sim
