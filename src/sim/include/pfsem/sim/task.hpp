#pragma once
// Lazy coroutine task used for every simulated activity (rank programs,
// I/O-library calls, collective operations).
//
// Task<T> is a single-owner, lazily-started coroutine. Awaiting a Task
// starts it via symmetric transfer; when the child finishes, control
// transfers back to the awaiting coroutine in the same event-loop step, so
// nested library calls cost no extra simulated time and no heap-allocated
// callbacks. Exceptions propagate to the awaiter exactly like a normal call.

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace pfsem::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(h_); }

  /// Awaiter: starts the child coroutine, resumes the parent when done.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // symmetric transfer: start the child now
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.error) std::rethrow_exception(p.error);
        return std::move(*p.value);
      }
    };
    return Awaiter{h_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    return Awaiter{h_};
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace pfsem::sim
