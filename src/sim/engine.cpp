#include "pfsem/sim/engine.hpp"

#include "pfsem/util/error.hpp"

namespace pfsem::sim {

void Engine::schedule(SimTime t, std::coroutine_handle<> h) {
  require(t >= now_, "cannot schedule an event in the simulated past");
  queue_.push(Event{t, next_seq_++, h});
}

Engine::Detached Engine::run_root(Task<void> task) {
  // Hold the task in this frame so its coroutine outlives every suspension.
  ++live_roots_;
  try {
    co_await delay(0);  // defer the program body to the event loop
    co_await std::move(task);
  } catch (...) {
    if (!first_error_) first_error_ = std::current_exception();
  }
  --live_roots_;
}

void Engine::spawn(Task<void> task) {
  require(task.valid(), "spawn() needs a valid task");
  run_root(std::move(task));
}

void Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++dispatched_;
    ev.handle.resume();
    if (first_error_) break;
  }
  if (first_error_) {
    // Drain remaining events without running them is not possible for
    // coroutines parked in wait queues; report the root cause instead.
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  require(live_roots_ == 0,
          "simulation deadlock: event queue drained with " +
              std::to_string(live_roots_) + " root task(s) still blocked");
}

}  // namespace pfsem::sim
