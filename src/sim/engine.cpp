#include "pfsem/sim/engine.hpp"

#include "pfsem/util/error.hpp"

namespace pfsem::sim {

void Engine::schedule(SimTime t, std::coroutine_handle<> h) {
  require(t >= now_, "cannot schedule an event in the simulated past");
  queue_.push(Event{t, next_seq_++, h});
}

Engine::Detached Engine::run_root(Task<void> task, int label) {
  // Hold the task in this frame so its coroutine outlives every suspension.
  ++live_roots_;
  live_labels_.insert(label);
  try {
    co_await delay(0);  // defer the program body to the event loop
    co_await std::move(task);
  } catch (const TaskKilled&) {
    // Fail-stop crash: the task unwound cleanly (its nested coroutine
    // frames are destroyed by normal exception propagation); the run
    // itself is healthy and continues.
    ++killed_roots_;
  } catch (...) {
    if (!first_error_) first_error_ = std::current_exception();
  }
  --live_roots_;
  live_labels_.erase(live_labels_.find(label));
}

void Engine::spawn(Task<void> task, int label) {
  require(task.valid(), "spawn() needs a valid task");
  run_root(std::move(task), label);
}

void Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++dispatched_;
    ev.handle.resume();
    if (first_error_) break;
  }
  if (first_error_) {
    // Drain remaining events without running them is not possible for
    // coroutines parked in wait queues; report the root cause instead.
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  if (live_roots_ != 0) {
    // Name the blocked roots (labelled spawns carry the rank id) and the
    // simulated time — fault-induced deadlocks are hard to debug blind.
    std::string ids;
    for (const int label : live_labels_) {
      if (label < 0) continue;
      if (!ids.empty()) ids += ", ";
      ids += std::to_string(label);
    }
    throw Error("simulation deadlock at t=" + std::to_string(now_) +
                " ns: event queue drained with " + std::to_string(live_roots_) +
                " root task(s) still blocked" +
                (ids.empty() ? std::string{}
                             : " (blocked ranks: " + ids + ")"));
  }
}

}  // namespace pfsem::sim
