#include "pfsem/sim/engine.hpp"

#include <bit>

#include "pfsem/util/error.hpp"

namespace pfsem::sim {

void Engine::schedule(SimTime t, std::coroutine_handle<> h) {
  require(t >= now_, "cannot schedule an event in the simulated past");
  const std::uint64_t seq = next_seq_++;
  if (kind_ == SchedulerKind::Heap || t - now_ >= kRingWindow) {
    if (obs_ != nullptr) obs_->metrics.add(obs_->sim_heap_scheduled);
    queue_.push(Event{t, seq, h});
    return;
  }
  const auto slot = static_cast<std::size_t>(t & (kRingWindow - 1));
  Bucket& b = ring_[slot];
  if (b.empty()) {
    b.time = t;
    b.head = 0;
    b.entries.clear();  // keeps capacity from earlier occupancies
    ring_mask_ |= std::uint64_t{1} << slot;
  }
  // Injectivity of [now, now+W) -> slots guarantees one time per bucket.
  b.entries.emplace_back(seq, h);
}

Engine::Bucket* Engine::ring_front() {
  if (ring_mask_ == 0) return nullptr;
  // Rotate the occupancy mask so now's slot is bit 0; the count of trailing
  // zeros is then the distance to the earliest occupied bucket, because
  // every pending ring time lives in [now, now + kRingWindow).
  const auto base = static_cast<unsigned>(now_ & (kRingWindow - 1));
  const int d = std::countr_zero(std::rotr(ring_mask_, base));
  return &ring_[(base + static_cast<unsigned>(d)) & (kRingWindow - 1)];
}

Engine::Detached Engine::run_root(Task<void> task, int label) {
  // Hold the task in this frame so its coroutine outlives every suspension.
  ++live_roots_;
  live_labels_.insert(label);
  try {
    co_await delay(0);  // defer the program body to the event loop
    co_await std::move(task);
  } catch (const TaskKilled&) {
    // Fail-stop crash: the task unwound cleanly (its nested coroutine
    // frames are destroyed by normal exception propagation); the run
    // itself is healthy and continues.
    ++killed_roots_;
    if (obs_ != nullptr) obs_->metrics.add(obs_->sim_roots_killed);
  } catch (...) {
    if (!first_error_) first_error_ = std::current_exception();
  }
  --live_roots_;
  live_labels_.erase(live_labels_.find(label));
}

void Engine::spawn(Task<void> task, int label) {
  require(task.valid(), "spawn() needs a valid task");
  if (obs_ != nullptr) obs_->metrics.add(obs_->sim_roots);
  run_root(std::move(task), label);
}

void Engine::note_dispatch(bool ring) {
  obs_->metrics.add(obs_->sim_events);
  obs_->metrics.add(ring ? obs_->sim_ring_pops : obs_->sim_heap_pops);
  if (!obs_->tracing()) return;
  // Aggregate consecutive same-tier dispatches into one span: tier
  // switches are rare, so the span count stays far below the event
  // count while Perfetto still shows which tier served which interval.
  if (tier_run_.open && tier_run_.ring == ring) {
    tier_run_.last = now_;
    ++tier_run_.events;
    return;
  }
  flush_tier_span();
  tier_run_ = {true, ring, now_, now_, 1};
}

void Engine::flush_tier_span() {
  if (!tier_run_.open) return;
  obs_->tracer.complete(
      {obs::kPidSim, tier_run_.ring ? 0 : 1},
      tier_run_.ring ? "ring" : "heap", tier_run_.t0,
      tier_run_.last - tier_run_.t0,
      {"events", static_cast<std::int64_t>(tier_run_.events)});
  tier_run_.open = false;
}

void Engine::run() {
  while (ring_mask_ != 0 || !queue_.empty()) {
    Bucket* b = ring_front();
    // A same-time burst appends to the bucket being drained, so the (time,
    // seq) winner may sit in either tier; compare front against heap top.
    bool use_ring = b != nullptr;
    if (b != nullptr && !queue_.empty()) {
      const Event& top = queue_.top();
      use_ring = b->time != top.time ? b->time < top.time
                                     : b->entries[b->head].first < top.seq;
    }
    std::coroutine_handle<> h;
    if (use_ring) {
      now_ = b->time;
      h = b->entries[b->head++].second;
      if (b->empty()) {
        b->head = 0;
        b->entries.clear();
        ring_mask_ &=
            ~(std::uint64_t{1} << static_cast<std::size_t>(
                  b - ring_.data()));
      } else if (b->head >= 4096 && b->head * 2 >= b->entries.size()) {
        // Long same-time bursts push while we pop; drop the consumed
        // prefix once it dominates so the bucket stays memory-bounded.
        if (obs_ != nullptr) {
          obs_->metrics.add(obs_->sim_compactions);
          if (obs_->tracing()) {
            obs_->tracer.instant({obs::kPidSim, 0}, "compaction", now_,
                                 {"dropped", static_cast<std::int64_t>(b->head)});
          }
        }
        b->entries.erase(b->entries.begin(),
                         b->entries.begin() +
                             static_cast<std::ptrdiff_t>(b->head));
        b->head = 0;
      }
    } else {
      const Event ev = queue_.top();
      queue_.pop();
      now_ = ev.time;
      h = ev.handle;
    }
    ++dispatched_;
    if (obs_ != nullptr) note_dispatch(use_ring);
    h.resume();
    if (first_error_) break;
  }
  if (obs_ != nullptr) {
    flush_tier_span();
    obs_->metrics.set(obs_->sim_end_time, now_);
  }
  if (first_error_) {
    // Drain remaining events without running them is not possible for
    // coroutines parked in wait queues; report the root cause instead.
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  if (live_roots_ != 0) {
    // Name the blocked roots (labelled spawns carry the rank id) and the
    // simulated time — fault-induced deadlocks are hard to debug blind.
    std::string ids;
    for (const int label : live_labels_) {
      if (label < 0) continue;
      if (!ids.empty()) ids += ", ";
      ids += std::to_string(label);
    }
    throw Error("simulation deadlock at t=" + std::to_string(now_) +
                " ns: event queue drained with " + std::to_string(live_roots_) +
                " root task(s) still blocked" +
                (ids.empty() ? std::string{}
                             : " (blocked ranks: " + ids + ")"));
  }
}

}  // namespace pfsem::sim
