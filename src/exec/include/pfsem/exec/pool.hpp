#pragma once
// pfsem::exec — a small work-stealing thread pool for the offline
// analysis pipeline.
//
// The analysis stages (overlap sweep, conflict conditions, pattern
// statistics, metadata pairing, happens-before validation) decompose
// into independent index-addressed shards whose results are merged in
// shard order, so the pool only needs one primitive: parallel_for(n, f)
// runs f(0..n-1) across the workers and blocks until every index
// finished. Scheduling is work-stealing: each participant owns a deque
// of index ranges, pops from its own back (LIFO, cache-warm) and steals
// from other fronts (FIFO, coarse) when it runs dry. The calling thread
// participates, so a pool of size N uses N OS threads total, and
// size 1 executes inline — byte-identical to a plain sequential loop,
// which is what keeps the `threads=1` path usable as the differential
// oracle.
//
// Determinism contract: parallel_for promises nothing about execution
// order. Callers obtain deterministic results by writing into slot i
// and reducing the slots in index order after the call returns.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pfsem/obs/obs.hpp"

namespace pfsem::exec {

/// Detected hardware parallelism; never less than 1.
[[nodiscard]] int hardware_threads();

/// Map a user-facing --threads value to a concrete thread count:
/// requested <= 0 means "auto" (hardware_threads()), anything else is
/// taken literally (clamped to a sane ceiling).
[[nodiscard]] int resolve_threads(int requested);

/// Attach an observability context to every pool created afterwards
/// (nullptr = off, the default). A global because pools are transient —
/// constructed deep inside the analysis functions — and the pool.*
/// metrics are declared Volatile anyway. Workers tally into private
/// per-participant slots; only the calling thread touches the registry
/// and tracer (after the job's completion barrier), so the non-thread-
/// safe registry contract holds. Pool spans carry wall-clock timestamps
/// relative to the Run's creation, keyed by worker index, not thread id.
void set_observer(obs::Run* run);

class ThreadPool {
 public:
  /// A pool of `threads` participants (0 = auto). Spawns threads-1
  /// workers; the thread calling parallel_for is the final participant.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return nthreads_; }

  /// Run body(i) for every i in [0, n), then return. The first
  /// exception thrown by any body is rethrown here (the remaining
  /// ranges are drained without executing). Not reentrant: do not call
  /// parallel_for from inside a body on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  struct Range {
    std::size_t begin = 0, end = 0;
  };
  /// One participant's task queue. A mutex-guarded deque keeps the
  /// stealing protocol obviously correct (and TSan-clean); the ranges
  /// are coarse enough that the lock is not a bottleneck.
  struct TaskDeque {
    std::mutex m;
    std::deque<Range> q;
  };

  /// Per-participant observability tallies for the current job. Each
  /// participant writes only its own slot while the job runs; the
  /// calling thread merges every slot into the registry after the
  /// completion barrier (the release-sequence through outstanding_'s
  /// RMW chain makes the slots visible).
  struct WorkerStats {
    std::uint64_t items = 0;
    std::uint64_t steals = 0;
    std::int64_t t0 = 0;  ///< wall ns at first executed range
    std::int64_t t1 = 0;  ///< wall ns after last executed range
    bool active = false;
  };

  bool pop_local(std::size_t who, Range& out);
  bool steal(std::size_t thief, Range& out);
  void worker_loop(std::size_t who);
  /// Pop/steal/execute until the current job has no outstanding items.
  void participate(std::size_t who);
  /// Merge the per-participant tallies into the observer (caller only).
  void publish_stats();

  int nthreads_;
  std::vector<std::unique_ptr<TaskDeque>> deques_;  // slot 0 = caller
  std::vector<std::thread> workers_;                // nthreads_-1 helpers

  std::mutex job_m_;
  std::condition_variable job_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;

  std::atomic<std::size_t> outstanding_{0};  // items not yet finished
  std::atomic<bool> failed_{false};
  std::mutex error_m_;
  std::exception_ptr error_;

  /// Observability of the current job (nullptr = off). Published to the
  /// workers through the same edges as job_ (see parallel_for).
  obs::Run* job_obs_ = nullptr;
  std::vector<WorkerStats> stats_;  // one slot per participant
};

/// Convenience: run body(0..n-1) on a transient pool of `threads`
/// participants. threads==1 executes inline with zero pool setup.
void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace pfsem::exec
