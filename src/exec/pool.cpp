#include "pfsem/exec/pool.hpp"

#include <algorithm>

namespace pfsem::exec {

namespace {

/// Process-wide observer for transient pools (see set_observer).
std::atomic<obs::Run*> g_observer{nullptr};

[[nodiscard]] obs::Run* observer() {
  return g_observer.load(std::memory_order_acquire);
}

/// Account a sequential (inline) execution of n items.
void note_sequential(obs::Run* obs, std::size_t n, std::int64_t t0,
                     std::int64_t t1) {
  if (obs == nullptr || n == 0) return;
  obs->metrics.add(obs->pool_jobs);
  obs->metrics.add(obs->pool_items, n);
  if (obs->metrics.value(obs->pool_workers) < 1) {
    obs->metrics.set(obs->pool_workers, 1);
  }
  if (obs->tracing()) {
    obs->tracer.complete({obs::kPidPool, 0}, "busy", t0, t1 - t0,
                         {"items", static_cast<std::int64_t>(n)});
  }
}

}  // namespace

void set_observer(obs::Run* run) {
  g_observer.store(run, std::memory_order_release);
}

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_threads(int requested) {
  if (requested <= 0) return hardware_threads();
  return std::min(requested, 256);
}

ThreadPool::ThreadPool(int threads) : nthreads_(resolve_threads(threads)) {
  stats_.resize(static_cast<std::size_t>(nthreads_));
  deques_.reserve(static_cast<std::size_t>(nthreads_));
  for (int i = 0; i < nthreads_; ++i) {
    deques_.push_back(std::make_unique<TaskDeque>());
  }
  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int i = 1; i < nthreads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(job_m_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::pop_local(std::size_t who, Range& out) {
  TaskDeque& d = *deques_[who];
  std::lock_guard lk(d.m);
  if (d.q.empty()) return false;
  out = d.q.back();
  d.q.pop_back();
  return true;
}

bool ThreadPool::steal(std::size_t thief, Range& out) {
  const auto n = deques_.size();
  for (std::size_t off = 1; off < n; ++off) {
    TaskDeque& d = *deques_[(thief + off) % n];
    std::lock_guard lk(d.m);
    if (d.q.empty()) continue;
    out = d.q.front();  // steal the oldest (coarsest remaining) range
    d.q.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t who) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lk(job_m_);
      job_cv_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
    }
    participate(who);
  }
}

void ThreadPool::participate(std::size_t who) {
  Range r;
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    bool stole = false;
    if (!pop_local(who, r)) {
      if (!steal(who, r)) {
        std::this_thread::yield();
        continue;
      }
      stole = true;
    }
    WorkerStats* s = job_obs_ != nullptr ? &stats_[who] : nullptr;
    if (s != nullptr) {
      s->items += r.end - r.begin;
      if (stole) ++s->steals;
      if (job_obs_->tracing() && !s->active) {
        s->active = true;
        s->t0 = job_obs_->wall_ns();
      }
    }
    // After a failure the remaining ranges are drained unexecuted so
    // parallel_for can return (and rethrow) promptly.
    if (!failed_.load(std::memory_order_acquire)) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        try {
          (*job_)(i);
        } catch (...) {
          if (!failed_.exchange(true, std::memory_order_acq_rel)) {
            std::lock_guard lk(error_m_);
            error_ = std::current_exception();
          }
          break;
        }
      }
    }
    if (s != nullptr && s->active) s->t1 = job_obs_->wall_ns();
    outstanding_.fetch_sub(r.end - r.begin, std::memory_order_acq_rel);
  }
}

void ThreadPool::publish_stats() {
  obs::Run* obs = job_obs_;
  job_obs_ = nullptr;
  if (obs == nullptr) return;
  obs->metrics.add(obs->pool_jobs);
  if (obs->metrics.value(obs->pool_workers) < nthreads_) {
    obs->metrics.set(obs->pool_workers, nthreads_);
  }
  for (std::size_t w = 0; w < stats_.size(); ++w) {
    const WorkerStats& s = stats_[w];
    if (s.items == 0) continue;
    obs->metrics.add(obs->pool_items, s.items);
    obs->metrics.add(obs->pool_steals, s.steals);
    if (obs->tracing() && s.active) {
      obs->tracer.complete({obs::kPidPool, static_cast<std::int32_t>(w)},
                           "busy", s.t0, s.t1 - s.t0,
                           {"items", static_cast<std::int64_t>(s.items)},
                           {"steals", static_cast<std::int64_t>(s.steals)});
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  obs::Run* obs = observer();
  if (nthreads_ == 1 || n == 1) {
    const std::int64_t t0 = obs != nullptr && obs->tracing() ? obs->wall_ns() : 0;
    for (std::size_t i = 0; i < n; ++i) body(i);
    note_sequential(obs, n,
                    t0, obs != nullptr && obs->tracing() ? obs->wall_ns() : 0);
    return;
  }
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  job_obs_ = obs;
  if (obs != nullptr) {
    for (auto& s : stats_) s = {};
  }

  // Publication order matters: a worker that never went back to sleep
  // after the previous job (it was spinning in participate when that
  // job's count hit zero) grabs new ranges straight off the deques, not
  // via the epoch wakeup. job_ and outstanding_ must therefore be set
  // BEFORE any range becomes poppable — the deque mutex then carries the
  // happens-before edge — or such a laggard would invoke a stale job
  // pointer / decrement a count that is about to be overwritten.
  job_ = &body;
  outstanding_.store(n, std::memory_order_release);

  // Split [0,n) into ~4 ranges per participant and deal them round-robin
  // so every deque starts non-empty; stealing evens out any imbalance.
  const auto participants = static_cast<std::size_t>(nthreads_);
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (participants * 4) +
                                   (n % (participants * 4) != 0));
  std::size_t next_deque = 0;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const Range r{begin, std::min(n, begin + chunk)};
    TaskDeque& d = *deques_[next_deque];
    std::lock_guard lk(d.m);
    d.q.push_back(r);
    next_deque = (next_deque + 1) % participants;
  }
  {
    std::lock_guard lk(job_m_);
    ++epoch_;
  }
  job_cv_.notify_all();
  participate(0);  // the caller is participant 0
  publish_stats();
  if (failed_.load(std::memory_order_acquire)) {
    std::lock_guard lk(error_m_);
    if (error_) std::rethrow_exception(error_);
  }
}

void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  const int resolved = resolve_threads(threads);
  if (resolved == 1 || n <= 1) {
    obs::Run* obs = observer();
    const std::int64_t t0 = obs != nullptr && obs->tracing() ? obs->wall_ns() : 0;
    for (std::size_t i = 0; i < n; ++i) body(i);
    note_sequential(obs, n,
                    t0, obs != nullptr && obs->tracing() ? obs->wall_ns() : 0);
    return;
  }
  ThreadPool pool(resolved);
  pool.parallel_for(n, body);
}

}  // namespace pfsem::exec
