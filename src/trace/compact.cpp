// Compact trace serialization: LEB128 varints, zig-zag signed encoding,
// per-rank timestamp deltas, and an interned path table. This mirrors the
// compression ideas of Recorder 2.0 (whose contribution over Recorder 1
// was exactly that detailed multi-layer traces stay small): HPC I/O
// records are highly regular, so deltas and small ids dominate.

#include <algorithm>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

#include "pfsem/trace/serialize.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::trace {

namespace {

constexpr char kMagic2[8] = {'P', 'F', 'S', 'E', 'M', 'T', 'R', '2'};

void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t get_varint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = is.get();
    require(c != std::char_traits<char>::eof(), "truncated compact trace");
    require(shift < 64, "overlong varint in compact trace");
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if (!(c & 0x80)) break;
    shift += 7;
  }
  return v;
}

constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_string(std::ostream& os, std::string_view s) {
  put_varint(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto n = get_varint(is);
  require(n <= (1u << 20), "implausible string length in compact trace");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  require(static_cast<bool>(is), "truncated compact trace");
  return s;
}

}  // namespace

void write_compact(const TraceBundle& bundle, std::ostream& os) {
  os.write(kMagic2, sizeof kMagic2);
  put_varint(os, static_cast<std::uint64_t>(bundle.nranks));

  // The on-disk path table is the bundle's PathTable verbatim, so FileIds
  // survive a round trip unchanged. Records without a path (kNoFile) are
  // stored as a reference to an empty-string entry, appended if the table
  // does not already contain one — the same encoding the pre-interning
  // writer produced for pathless records.
  const FileId empty_id = bundle.paths.find("");
  const bool need_empty = empty_id == kNoFile;
  const std::uint64_t npaths = bundle.paths.size() + (need_empty ? 1 : 0);
  const std::uint64_t no_file_slot =
      need_empty ? bundle.paths.size() : empty_id;
  put_varint(os, npaths);
  for (std::size_t i = 0; i < bundle.paths.size(); ++i) {
    put_string(os, bundle.paths.view(static_cast<FileId>(i)));
  }
  if (need_empty) put_string(os, "");

  put_varint(os, bundle.records.size());
  std::vector<SimTime> last_t(static_cast<std::size_t>(bundle.nranks), 0);
  for (const auto& r : bundle.records) {
    auto& prev = last_t[static_cast<std::size_t>(r.rank)];
    put_varint(os, static_cast<std::uint64_t>(r.rank));
    put_varint(os, zigzag(r.tstart - prev));  // per-rank delta
    put_varint(os, zigzag(r.tend - r.tstart));
    prev = r.tstart;
    put_varint(os, static_cast<std::uint64_t>(r.layer) |
                       (static_cast<std::uint64_t>(r.origin) << 3) |
                       (static_cast<std::uint64_t>(r.func) << 6));
    put_varint(os, zigzag(r.fd));
    put_varint(os, zigzag(r.ret));
    put_varint(os, r.offset);
    put_varint(os, r.count);
    put_varint(os, zigzag(r.flags));
    put_varint(os, r.file == kNoFile ? no_file_slot
                                     : static_cast<std::uint64_t>(r.file));
  }

  put_varint(os, bundle.comm.p2p.size());
  for (const auto& e : bundle.comm.p2p) {
    put_varint(os, static_cast<std::uint64_t>(e.src));
    put_varint(os, static_cast<std::uint64_t>(e.dst));
    put_varint(os, zigzag(e.tag));
    put_varint(os, e.bytes);
    put_varint(os, zigzag(e.t_send_start));
    put_varint(os, zigzag(e.t_send_end - e.t_send_start));
    put_varint(os, zigzag(e.t_recv_start - e.t_send_start));
    put_varint(os, zigzag(e.t_recv_end - e.t_recv_start));
  }
  put_varint(os, bundle.comm.collectives.size());
  for (const auto& c : bundle.comm.collectives) {
    put_varint(os, static_cast<std::uint64_t>(c.kind));
    put_varint(os, zigzag(c.root));
    put_varint(os, c.arrivals.size());
    for (const auto& a : c.arrivals) {
      put_varint(os, static_cast<std::uint64_t>(a.rank));
      put_varint(os, zigzag(a.t_enter));
      put_varint(os, zigzag(a.t_exit - a.t_enter));
    }
  }
  require(static_cast<bool>(os), "compact trace write failure");
}

TraceBundle read_compact(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof magic);
  require(static_cast<bool>(is) &&
              std::equal(std::begin(magic), std::end(magic), kMagic2),
          "not a compact pfsem trace");
  TraceBundle b;
  b.nranks = static_cast<int>(get_varint(is));
  require(b.nranks > 0 && b.nranks < (1 << 24), "bad rank count");

  // Adopt the on-disk intern table directly as the in-memory PathTable:
  // ids in the stream are ids in the loaded bundle, no per-record string
  // materialization. Empty-string entries stay in the table (records
  // referencing them decode to kNoFile below).
  const auto npaths = get_varint(is);
  require(npaths <= (1u << 24), "implausible path-table size");
  for (std::uint64_t i = 0; i < npaths; ++i) {
    const std::string s = get_string(is);
    const FileId id = b.paths.intern(s);
    require(id == static_cast<FileId>(i), "duplicate path in compact table");
  }

  const auto nrec = get_varint(is);
  b.records.reserve(std::min<std::uint64_t>(nrec, 1u << 20));
  std::vector<SimTime> last_t(static_cast<std::size_t>(b.nranks), 0);
  for (std::uint64_t i = 0; i < nrec; ++i) {
    Record r;
    const auto rank = get_varint(is);
    require(rank < static_cast<std::uint64_t>(b.nranks), "bad record rank");
    r.rank = static_cast<Rank>(rank);
    auto& prev = last_t[rank];
    r.tstart = prev + unzigzag(get_varint(is));
    r.tend = r.tstart + unzigzag(get_varint(is));
    prev = r.tstart;
    const auto packed = get_varint(is);
    r.layer = static_cast<Layer>(packed & 0x7);
    r.origin = static_cast<Layer>((packed >> 3) & 0x7);
    const auto func = packed >> 6;
    require(func < kFuncCount, "bad function id in compact trace");
    r.func = static_cast<Func>(func);
    r.fd = static_cast<std::int32_t>(unzigzag(get_varint(is)));
    r.ret = unzigzag(get_varint(is));
    r.offset = get_varint(is);
    r.count = get_varint(is);
    r.flags = static_cast<std::int32_t>(unzigzag(get_varint(is)));
    const auto pid = get_varint(is);
    require(pid < b.paths.size(), "bad path id in compact trace");
    const auto id = static_cast<FileId>(pid);
    r.file = b.paths.view(id).empty() ? kNoFile : id;
    b.records.push_back(r);
  }

  const auto np2p = get_varint(is);
  b.comm.p2p.reserve(std::min<std::uint64_t>(np2p, 1u << 20));
  for (std::uint64_t i = 0; i < np2p; ++i) {
    P2PEvent e;
    e.src = static_cast<Rank>(get_varint(is));
    e.dst = static_cast<Rank>(get_varint(is));
    e.tag = static_cast<std::int32_t>(unzigzag(get_varint(is)));
    e.bytes = get_varint(is);
    e.t_send_start = unzigzag(get_varint(is));
    e.t_send_end = e.t_send_start + unzigzag(get_varint(is));
    e.t_recv_start = e.t_send_start + unzigzag(get_varint(is));
    e.t_recv_end = e.t_recv_start + unzigzag(get_varint(is));
    b.comm.p2p.push_back(e);
  }
  const auto ncoll = get_varint(is);
  b.comm.collectives.reserve(std::min<std::uint64_t>(ncoll, 1u << 20));
  for (std::uint64_t i = 0; i < ncoll; ++i) {
    CollectiveEvent c;
    c.kind = static_cast<CollectiveKind>(get_varint(is));
    c.root = static_cast<Rank>(unzigzag(get_varint(is)));
    const auto na = get_varint(is);
    require(na <= static_cast<std::uint64_t>(b.nranks), "bad arrival count");
    for (std::uint64_t j = 0; j < na; ++j) {
      CollectiveArrival a;
      a.rank = static_cast<Rank>(get_varint(is));
      a.t_enter = unzigzag(get_varint(is));
      a.t_exit = a.t_enter + unzigzag(get_varint(is));
      c.arrivals.push_back(a);
    }
    b.comm.collectives.push_back(std::move(c));
  }
  return b;
}

}  // namespace pfsem::trace
