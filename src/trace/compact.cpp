// Compact trace serialization: LEB128 varints, zig-zag signed encoding,
// per-rank timestamp deltas, and an interned path table. This mirrors the
// compression ideas of Recorder 2.0 (whose contribution over Recorder 1
// was exactly that detailed multi-layer traces stay small): HPC I/O
// records are highly regular, so deltas and small ids dominate.
//
// The whole-bundle entry points are thin wrappers over the streaming
// core (write_compact_streamed / CompactReader), so the materialized and
// streaming pipelines share one codec and stay byte-identical.

#include <algorithm>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

#include "pfsem/trace/serialize.hpp"
#include "pfsem/trace/varint.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::trace {

namespace {

constexpr char kMagic2[8] = {'P', 'F', 'S', 'E', 'M', 'T', 'R', '2'};

using detail::get_string;
using detail::get_varint;
using detail::put_string;
using detail::put_varint;
using detail::unzigzag;
using detail::zigzag;

}  // namespace

namespace detail {

void write_comm(const CommLog& comm, std::ostream& os) {
  put_varint(os, comm.p2p.size());
  for (const auto& e : comm.p2p) {
    put_varint(os, static_cast<std::uint64_t>(e.src));
    put_varint(os, static_cast<std::uint64_t>(e.dst));
    put_varint(os, zigzag(e.tag));
    put_varint(os, e.bytes);
    put_varint(os, zigzag(e.t_send_start));
    put_varint(os, zigzag(e.t_send_end - e.t_send_start));
    put_varint(os, zigzag(e.t_recv_start - e.t_send_start));
    put_varint(os, zigzag(e.t_recv_end - e.t_recv_start));
  }
  put_varint(os, comm.collectives.size());
  for (const auto& c : comm.collectives) {
    put_varint(os, static_cast<std::uint64_t>(c.kind));
    put_varint(os, zigzag(c.root));
    put_varint(os, c.arrivals.size());
    for (const auto& a : c.arrivals) {
      put_varint(os, static_cast<std::uint64_t>(a.rank));
      put_varint(os, zigzag(a.t_enter));
      put_varint(os, zigzag(a.t_exit - a.t_enter));
    }
  }
}

CommLog read_comm(std::istream& is, int nranks) {
  CommLog comm;
  const auto np2p = get_varint(is);
  comm.p2p.reserve(std::min<std::uint64_t>(np2p, 1u << 20));
  for (std::uint64_t i = 0; i < np2p; ++i) {
    P2PEvent e;
    e.src = static_cast<Rank>(get_varint(is));
    e.dst = static_cast<Rank>(get_varint(is));
    e.tag = static_cast<std::int32_t>(unzigzag(get_varint(is)));
    e.bytes = get_varint(is);
    e.t_send_start = unzigzag(get_varint(is));
    e.t_send_end = e.t_send_start + unzigzag(get_varint(is));
    e.t_recv_start = e.t_send_start + unzigzag(get_varint(is));
    e.t_recv_end = e.t_recv_start + unzigzag(get_varint(is));
    comm.p2p.push_back(e);
  }
  const auto ncoll = get_varint(is);
  comm.collectives.reserve(std::min<std::uint64_t>(ncoll, 1u << 20));
  for (std::uint64_t i = 0; i < ncoll; ++i) {
    CollectiveEvent c;
    c.kind = static_cast<CollectiveKind>(get_varint(is));
    c.root = static_cast<Rank>(unzigzag(get_varint(is)));
    const auto na = get_varint(is);
    require(na <= static_cast<std::uint64_t>(nranks), "bad arrival count");
    for (std::uint64_t j = 0; j < na; ++j) {
      CollectiveArrival a;
      a.rank = static_cast<Rank>(get_varint(is));
      a.t_enter = unzigzag(get_varint(is));
      a.t_exit = a.t_enter + unzigzag(get_varint(is));
      c.arrivals.push_back(a);
    }
    comm.collectives.push_back(std::move(c));
  }
  return comm;
}

}  // namespace detail

void write_compact_streamed(int nranks, const PathTable& paths,
                            const CommLog& comm, std::uint64_t record_count,
                            const std::function<void(const RecordEmit&)>& scan,
                            std::ostream& os) {
  os.write(kMagic2, sizeof kMagic2);
  put_varint(os, static_cast<std::uint64_t>(nranks));

  // The on-disk path table is the run's PathTable verbatim, so FileIds
  // survive a round trip unchanged. Records without a path (kNoFile) are
  // stored as a reference to an empty-string entry, appended if the table
  // does not already contain one — the same encoding the pre-interning
  // writer produced for pathless records.
  const FileId empty_id = paths.find("");
  const bool need_empty = empty_id == kNoFile;
  const std::uint64_t npaths = paths.size() + (need_empty ? 1 : 0);
  const std::uint64_t no_file_slot = need_empty ? paths.size() : empty_id;
  put_varint(os, npaths);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    put_string(os, paths.view(static_cast<FileId>(i)));
  }
  if (need_empty) put_string(os, "");

  put_varint(os, record_count);
  std::vector<SimTime> last_t(static_cast<std::size_t>(nranks), 0);
  std::uint64_t emitted = 0;
  scan([&](const Record& r) {
    auto& prev = last_t[static_cast<std::size_t>(r.rank)];
    put_varint(os, static_cast<std::uint64_t>(r.rank));
    put_varint(os, zigzag(r.tstart - prev));  // per-rank delta
    put_varint(os, zigzag(r.tend - r.tstart));
    prev = r.tstart;
    put_varint(os, static_cast<std::uint64_t>(r.layer) |
                       (static_cast<std::uint64_t>(r.origin) << 3) |
                       (static_cast<std::uint64_t>(r.func) << 6));
    put_varint(os, zigzag(r.fd));
    put_varint(os, zigzag(r.ret));
    put_varint(os, r.offset);
    put_varint(os, r.count);
    put_varint(os, zigzag(r.flags));
    put_varint(os, r.file == kNoFile ? no_file_slot
                                     : static_cast<std::uint64_t>(r.file));
    ++emitted;
  });
  require(emitted == record_count,
          "record scan count mismatch in compact trace write");

  detail::write_comm(comm, os);
  require(static_cast<bool>(os), "compact trace write failure");
}

void write_compact(const TraceBundle& bundle, std::ostream& os) {
  write_compact_streamed(
      bundle.nranks, bundle.paths, bundle.comm, bundle.records.size(),
      [&](const RecordEmit& emit) {
        for (const auto& r : bundle.records) emit(r);
      },
      os);
}

CompactReader::CompactReader(std::istream& is) : is_(is) {
  char magic[8];
  is_.read(magic, sizeof magic);
  require(static_cast<bool>(is_) &&
              std::equal(std::begin(magic), std::end(magic), kMagic2),
          "not a compact pfsem trace");
  nranks_ = static_cast<int>(get_varint(is_));
  require(nranks_ > 0 && nranks_ < (1 << 24), "bad rank count");

  // Adopt the on-disk intern table directly as the in-memory PathTable:
  // ids in the stream are ids in the decoded records, no per-record
  // string materialization. Empty-string entries stay in the table
  // (records referencing them decode to kNoFile in next()).
  const auto npaths = get_varint(is_);
  require(npaths <= (1u << 24), "implausible path-table size");
  for (std::uint64_t i = 0; i < npaths; ++i) {
    const std::string s = get_string(is_);
    const FileId id = paths_.intern(s);
    require(id == static_cast<FileId>(i), "duplicate path in compact table");
  }

  nrec_ = get_varint(is_);
  last_t_.assign(static_cast<std::size_t>(nranks_), 0);
}

bool CompactReader::next(Record& out) {
  if (read_ == nrec_) return false;
  ++read_;
  const auto rank = get_varint(is_);
  require(rank < static_cast<std::uint64_t>(nranks_), "bad record rank");
  out.rank = static_cast<Rank>(rank);
  auto& prev = last_t_[rank];
  out.tstart = prev + unzigzag(get_varint(is_));
  out.tend = out.tstart + unzigzag(get_varint(is_));
  prev = out.tstart;
  const auto packed = get_varint(is_);
  out.layer = static_cast<Layer>(packed & 0x7);
  out.origin = static_cast<Layer>((packed >> 3) & 0x7);
  const auto func = packed >> 6;
  require(func < kFuncCount, "bad function id in compact trace");
  out.func = static_cast<Func>(func);
  out.fd = static_cast<std::int32_t>(unzigzag(get_varint(is_)));
  out.ret = unzigzag(get_varint(is_));
  out.offset = get_varint(is_);
  out.count = get_varint(is_);
  out.flags = static_cast<std::int32_t>(unzigzag(get_varint(is_)));
  const auto pid = get_varint(is_);
  require(pid < paths_.size(), "bad path id in compact trace");
  const auto id = static_cast<FileId>(pid);
  out.file = paths_.view(id).empty() ? kNoFile : id;
  return true;
}

CommLog CompactReader::read_comm() {
  require(read_ == nrec_, "comm log read before records were drained");
  return detail::read_comm(is_, nranks_);
}

TraceBundle read_compact(std::istream& is) {
  CompactReader reader(is);
  TraceBundle b;
  b.nranks = reader.nranks();
  b.paths = reader.paths();
  b.records.reserve(std::min<std::uint64_t>(reader.record_count(), 1u << 20));
  Record r;
  while (reader.next(r)) b.records.push_back(r);
  b.comm = reader.read_comm();
  return b;
}

}  // namespace pfsem::trace
