#pragma once
// Communication event log.
//
// Recorder also captures MPI communication calls; the paper uses them
// (Section 5.2) to validate that the timestamp order of conflicting I/O
// operations is enforced by the program's synchronization. We store matched
// events: point-to-point sends/receives and collectives with per-rank
// enter/exit times. The happens-before checker in pfsem::core rebuilds
// vector clocks from exactly this information.

#include <cstdint>
#include <vector>

#include "pfsem/util/types.hpp"

namespace pfsem::trace {

enum class CollectiveKind : std::uint8_t {
  Barrier,
  Bcast,
  Reduce,
  Allreduce,
  Gather,
  Allgather,
  Scatter,
  Alltoall,
};

[[nodiscard]] inline const char* to_string(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::Barrier: return "barrier";
    case CollectiveKind::Bcast: return "bcast";
    case CollectiveKind::Reduce: return "reduce";
    case CollectiveKind::Allreduce: return "allreduce";
    case CollectiveKind::Gather: return "gather";
    case CollectiveKind::Allgather: return "allgather";
    case CollectiveKind::Scatter: return "scatter";
    case CollectiveKind::Alltoall: return "alltoall";
  }
  return "?";
}

/// A matched point-to-point message. Happens-before edge: the send start
/// precedes the receive completion (the only edge MPI guarantees).
struct P2PEvent {
  Rank src = kNoRank;
  Rank dst = kNoRank;
  std::int32_t tag = 0;
  std::uint64_t bytes = 0;
  SimTime t_send_start = 0;  ///< global (skew-free) time
  SimTime t_send_end = 0;
  SimTime t_recv_start = 0;
  SimTime t_recv_end = 0;
};

/// One rank's participation interval in a collective.
struct CollectiveArrival {
  Rank rank = kNoRank;
  SimTime t_enter = 0;
  SimTime t_exit = 0;
};

/// A matched collective operation over an explicit participant group.
/// Happens-before edges by kind:
///   Barrier/Allreduce/Allgather/Alltoall : every enter -> every exit
///   Bcast/Scatter                        : root enter  -> every exit
///   Reduce/Gather                        : every enter -> root exit
struct CollectiveEvent {
  CollectiveKind kind = CollectiveKind::Barrier;
  Rank root = kNoRank;  ///< kNoRank for rootless collectives
  std::vector<CollectiveArrival> arrivals;
};

struct CommLog {
  std::vector<P2PEvent> p2p;
  std::vector<CollectiveEvent> collectives;

  void clear() {
    p2p.clear();
    collectives.clear();
  }
};

}  // namespace pfsem::trace
