#pragma once
// LEB128 varint and zig-zag primitives shared by the compact (v2) codec
// (compact.cpp) and the chunked spill codec (spill.hpp). Stream variants
// encode/decode against iostreams; the string variants append to a byte
// buffer for hot paths that batch a whole chunk before touching the
// stream. Both sides of every format in the repository use exactly these
// functions, so the encodings cannot drift apart.

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "pfsem/util/error.hpp"

namespace pfsem::trace::detail {

inline void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline std::uint64_t get_varint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = is.get();
    require(c != std::char_traits<char>::eof(), "truncated compact trace");
    require(shift < 64, "overlong varint in compact trace");
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if (!(c & 0x80)) break;
    shift += 7;
  }
  return v;
}

constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

inline void put_string(std::ostream& os, std::string_view s) {
  put_varint(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string get_string(std::istream& is) {
  const auto n = get_varint(is);
  require(n <= (1u << 20), "implausible string length in compact trace");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  require(static_cast<bool>(is), "truncated compact trace");
  return s;
}

}  // namespace pfsem::trace::detail
