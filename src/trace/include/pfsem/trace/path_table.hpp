#pragma once
// Deterministic string interner for file paths, modelled on the path table
// Recorder 2.0 keeps per trace directory: every distinct path is stored
// once and every record refers to it by a dense FileId. Ids are assigned
// in first-intern order (i.e. first-open order when capture interns at
// open time), which makes them reproducible run-to-run and lets analyses
// use plain vectors indexed by FileId instead of string-keyed maps.
//
// Storage is a deque so interned strings never move; the lookup index
// keeps string_views into that storage (heterogeneous find, no per-lookup
// allocation).

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "pfsem/util/error.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::trace {

class PathTable {
 public:
  PathTable() = default;

  // Copies keep the dense string table only; aliases are a capture-time
  // lookup aid and are rebuilt by the next rename, never serialized.
  PathTable(const PathTable& other) : strings_(other.strings_) { reindex(); }
  PathTable& operator=(const PathTable& other) {
    if (this != &other) {
      strings_ = other.strings_;
      alias_names_.clear();
      reindex();
    }
    return *this;
  }
  // Deque elements are stable under move, so the index stays valid.
  PathTable(PathTable&&) noexcept = default;
  PathTable& operator=(PathTable&&) noexcept = default;

  /// Id of `path`, appending it if new. Ids are dense and insertion-ordered.
  FileId intern(std::string_view path) {
    if (auto it = index_.find(path); it != index_.end()) return it->second;
    require(strings_.size() < static_cast<std::size_t>(kNoFile),
            "path table full");
    const FileId id = static_cast<FileId>(strings_.size());
    strings_.emplace_back(path);
    index_.emplace(std::string_view{strings_.back()}, id);
    return id;
  }

  /// Make `name` resolve to the live id `id` without appending a string:
  /// after a rename, opens of the new name keep the renamed file's dense
  /// slot instead of minting a second identity for the same bytes. The
  /// alias lives in the lookup index only — size() and the id -> path
  /// mapping are untouched, so per-file columns stay dense. No-op when
  /// `name` is already interned (rename onto an existing path keeps both
  /// identities); returns the id `name` now resolves to.
  FileId alias(std::string_view name, FileId id) {
    require(id < strings_.size(), "alias target FileId out of range");
    if (auto it = index_.find(name); it != index_.end()) return it->second;
    alias_names_.emplace_back(name);
    index_.emplace(std::string_view{alias_names_.back()}, id);
    return id;
  }

  /// Id of `path` if already interned, else kNoFile. Never allocates.
  [[nodiscard]] FileId find(std::string_view path) const {
    const auto it = index_.find(path);
    return it == index_.end() ? kNoFile : it->second;
  }

  /// O(1) id -> path view. `id` must be a live id from this table.
  [[nodiscard]] std::string_view view(FileId id) const {
    require(id < strings_.size(), "FileId out of range for this PathTable");
    return strings_[id];
  }

  /// Like view(), but kNoFile maps to the empty string (handy for output).
  [[nodiscard]] std::string_view view_or_empty(FileId id) const {
    return id == kNoFile ? std::string_view{} : view(id);
  }

  [[nodiscard]] std::size_t size() const { return strings_.size(); }
  [[nodiscard]] bool empty() const { return strings_.empty(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  void reindex() {
    index_.clear();
    index_.reserve(strings_.size());
    for (std::size_t i = 0; i < strings_.size(); ++i) {
      index_.emplace(std::string_view{strings_[i]}, static_cast<FileId>(i));
    }
  }

  std::deque<std::string> strings_;
  /// Stable storage for alias() names (index_ keys view into it).
  std::deque<std::string> alias_names_;
  std::unordered_map<std::string_view, FileId, Hash, Eq> index_;
};

}  // namespace pfsem::trace
