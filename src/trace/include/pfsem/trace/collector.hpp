#pragma once
// Trace capture. The simulated I/O stack calls Collector::emit with global
// simulated timestamps; the collector converts them to the emitting rank's
// local clock (applying the configured skew/drift) before storing, because
// that is all a real tracer ever sees. Matched communication events are
// appended to the embedded CommLog by pfsem::mpi through the same clock
// conversion.

#include <utility>
#include <vector>

#include "pfsem/sim/clock.hpp"
#include "pfsem/trace/bundle.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::trace {

class Collector {
 public:
  /// `clocks` may be empty (perfect clocks) or one ClockModel per rank.
  explicit Collector(int nranks, std::vector<sim::ClockModel> clocks = {})
      : clocks_(std::move(clocks)) {
    require(nranks > 0, "need at least one rank");
    require(clocks_.empty() || std::ssize(clocks_) == nranks,
            "clock vector must match rank count");
    bundle_.nranks = nranks;
  }

  [[nodiscard]] int nranks() const { return bundle_.nranks; }

  /// Local timestamp rank `r` would record for global time `t`.
  [[nodiscard]] SimTime local_time(Rank r, SimTime t) const {
    if (clocks_.empty()) return t;
    return clocks_[static_cast<std::size_t>(r)].local_time(t);
  }

  /// Intern `path` in the bundle's PathTable. Emission sites call this
  /// once at open time and pass the returned id on every subsequent op.
  [[nodiscard]] FileId intern(std::string_view path) {
    return bundle_.paths.intern(path);
  }

  /// Resolve a previously interned id ("" for kNoFile).
  [[nodiscard]] std::string_view path_view(FileId id) const {
    return bundle_.paths.view_or_empty(id);
  }

  /// Append a record whose tstart/tend are in *global* time; they are
  /// converted to the emitting rank's local clock here.
  void emit(Record r) {
    require(r.rank >= 0 && r.rank < bundle_.nranks, "record rank out of range");
    r.tstart = local_time(r.rank, r.tstart);
    r.tend = local_time(r.rank, r.tend);
    bundle_.records.push_back(std::move(r));
  }

  /// Record a matched point-to-point event (times given in global time).
  void emit_p2p(P2PEvent e) {
    e.t_send_start = local_time(e.src, e.t_send_start);
    e.t_send_end = local_time(e.src, e.t_send_end);
    e.t_recv_start = local_time(e.dst, e.t_recv_start);
    e.t_recv_end = local_time(e.dst, e.t_recv_end);
    bundle_.comm.p2p.push_back(e);
  }

  /// Record a matched collective (arrival times given in global time).
  void emit_collective(CollectiveEvent e) {
    for (auto& a : e.arrivals) {
      a.t_enter = local_time(a.rank, a.t_enter);
      a.t_exit = local_time(a.rank, a.t_exit);
    }
    bundle_.comm.collectives.push_back(std::move(e));
  }

  /// Number of records captured so far.
  [[nodiscard]] std::size_t size() const { return bundle_.records.size(); }

  /// Finish capture and take the bundle.
  [[nodiscard]] TraceBundle take() { return std::exchange(bundle_, TraceBundle{}); }

  /// Read-only view while capture is ongoing.
  [[nodiscard]] const TraceBundle& bundle() const { return bundle_; }

 private:
  TraceBundle bundle_;
  std::vector<sim::ClockModel> clocks_;
};

}  // namespace pfsem::trace
