#pragma once
// Trace capture. The simulated I/O stack calls Collector::emit with global
// simulated timestamps; the collector converts them to the emitting rank's
// local clock (applying the configured skew/drift) before storing, because
// that is all a real tracer ever sees. Matched communication events are
// appended to the embedded CommLog by pfsem::mpi through the same clock
// conversion.
//
// Two capture paths share one output contract (CaptureMode):
//
//  - Fast (default): each rank appends into its own arena (one copy,
//    converted in place, capacity pre-reserved via reserve()); the global
//    record order is recovered at flush time by a deterministic k-way
//    merge on the per-emit global sequence number, which IS emission
//    order, so the resulting bundle is byte-identical to the reference
//    path. Per-FileId record counts are tallied during capture and handed
//    to the bundle as column hints (TraceBundle::file_op_counts) so
//    TraceStore construction can pre-size its per-file columns.
//  - Reference: the retired single-growing-vector emitter (copy, convert,
//    move-append), retained as the differential oracle and the perf
//    baseline for bench_perf_scaling's capture-path floor.

#include <utility>
#include <vector>

#include "pfsem/obs/obs.hpp"
#include "pfsem/sim/clock.hpp"
#include "pfsem/trace/bundle.hpp"
#include "pfsem/trace/stream.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::trace {

/// Which emission path a Collector runs on (see file comment). Auto is a
/// harness-level policy (pick Reference below a rank threshold, Fast
/// above — see apps::Harness); a Collector itself must be constructed
/// with a resolved mode.
enum class CaptureMode : std::uint8_t { Fast, Reference, Auto };

class Collector {
 public:
  /// `clocks` may be empty (perfect clocks) or one ClockModel per rank.
  explicit Collector(int nranks, std::vector<sim::ClockModel> clocks = {},
                     CaptureMode mode = CaptureMode::Fast)
      : clocks_(std::move(clocks)), mode_(mode) {
    require(nranks > 0, "need at least one rank");
    require(mode_ != CaptureMode::Auto,
            "Collector needs a resolved capture mode (Auto is a harness "
            "policy)");
    require(clocks_.empty() || std::ssize(clocks_) == nranks,
            "clock vector must match rank count");
    bundle_.nranks = nranks;
    if (mode_ == CaptureMode::Fast) {
      arenas_.resize(static_cast<std::size_t>(nranks));
    }
  }

  [[nodiscard]] int nranks() const { return bundle_.nranks; }

  /// The emission path this collector runs on.
  [[nodiscard]] CaptureMode mode() const { return mode_; }

  /// Capacity hint from the run harness: expect about `per_rank_hint`
  /// records from each of `nranks` ranks. Purely an optimization — the
  /// arenas grow past the hint freely.
  void reserve(int nranks, std::size_t per_rank_hint);

  /// Local timestamp rank `r` would record for global time `t`.
  [[nodiscard]] SimTime local_time(Rank r, SimTime t) const {
    if (clocks_.empty()) return t;
    return clocks_[static_cast<std::size_t>(r)].local_time(t);
  }

  /// Intern `path` in the bundle's PathTable. Emission sites call this
  /// once at open time and pass the returned id on every subsequent op.
  [[nodiscard]] FileId intern(std::string_view path) {
    return bundle_.paths.intern(path);
  }

  /// Intern a rename: the record carries `from`'s id, and `to` becomes an
  /// alias of that id (no new path-table slot), so later opens of the new
  /// name continue the renamed file's history under one dense FileId.
  [[nodiscard]] FileId intern_rename(std::string_view from,
                                     std::string_view to) {
    const FileId id = bundle_.paths.intern(from);
    (void)bundle_.paths.alias(to, id);
    return id;
  }

  /// Resolve a previously interned id ("" for kNoFile).
  [[nodiscard]] std::string_view path_view(FileId id) const {
    return bundle_.paths.view_or_empty(id);
  }

  /// Append a record whose tstart/tend are in *global* time; they are
  /// converted to the emitting rank's local clock in place — the record
  /// is copied exactly once, straight into its rank's arena.
  void emit(const Record& r) {
    require(r.rank >= 0 && r.rank < bundle_.nranks, "record rank out of range");
    ++total_records_;
    // Observed before clock conversion: the record still carries global
    // timestamps here, and emission order is identical in both capture
    // modes, so everything derived in note_obs is capture-mode-stable.
    if (obs_ != nullptr) note_obs(r);
    if (mode_ == CaptureMode::Reference) {
      // Retired path, kept verbatim as the perf baseline: copy into a
      // local, convert, then move-append to the single global vector.
      Record tmp = r;
      tmp.tstart = local_time(tmp.rank, tmp.tstart);
      tmp.tend = local_time(tmp.rank, tmp.tend);
      bundle_.records.push_back(std::move(tmp));
      if (stream_sink_ != nullptr) note_stream(r);
      return;
    }
    if (r.file != kNoFile) {
      if (r.file >= file_counts_.size()) file_counts_.resize(r.file + 1, 0);
      ++file_counts_[r.file];
    }
    RankArena& a = arenas_[static_cast<std::size_t>(r.rank)];
    a.seqs.push_back(next_emit_seq_++);
    Record& dst = a.records.emplace_back(r);
    dst.tstart = local_time(dst.rank, dst.tstart);
    dst.tend = local_time(dst.rank, dst.tend);
    if (stream_sink_ != nullptr) note_stream(r);
  }

  /// Record a matched point-to-point event (times given in global time).
  void emit_p2p(P2PEvent e) {
    if (obs_ != nullptr) obs_->metrics.add(obs_->mpi_p2p);
    e.t_send_start = local_time(e.src, e.t_send_start);
    e.t_send_end = local_time(e.src, e.t_send_end);
    e.t_recv_start = local_time(e.dst, e.t_recv_start);
    e.t_recv_end = local_time(e.dst, e.t_recv_end);
    bundle_.comm.p2p.push_back(e);
  }

  /// Record a matched collective (arrival times given in global time).
  void emit_collective(CollectiveEvent e) {
    if (obs_ != nullptr) obs_->metrics.add(obs_->mpi_collectives);
    for (auto& a : e.arrivals) {
      a.t_enter = local_time(a.rank, a.t_enter);
      a.t_exit = local_time(a.rank, a.t_exit);
    }
    bundle_.comm.collectives.push_back(std::move(e));
  }

  /// Number of records captured so far (arenas included).
  [[nodiscard]] std::size_t size() const { return total_records_; }

  /// Finish capture and take the bundle (arenas merged, column hints
  /// attached). The collector is empty afterwards.
  [[nodiscard]] TraceBundle take();

  /// View of the bundle while capture is ongoing. Flushes the per-rank
  /// arenas into the canonical global record order first, so the view is
  /// always complete; capture may continue afterwards (later emits carry
  /// later sequence numbers, so order stays canonical).
  [[nodiscard]] const TraceBundle& bundle();

  /// Switch to streaming capture: records are handed to `sink` in global
  /// emission order in batches of `chunk_records` instead of accumulating
  /// in the bundle. Must be called before the first emit; bundle()/take()
  /// are unavailable afterwards — finish with take_stream(). Both capture
  /// modes stream (fast scatters its arenas per chunk, reference hands
  /// off its vector), producing identical streams.
  void enable_streaming(StreamSink* sink, std::size_t chunk_records);

  [[nodiscard]] bool streaming() const { return stream_sink_ != nullptr; }

  /// Finish a streaming capture: flush the final partial batch to the
  /// sink and hand over everything except the records. The collector is
  /// empty afterwards.
  [[nodiscard]] StreamMeta take_stream();

  /// Largest pending-record batch handed to the sink in one flush — the
  /// streaming path's record-buffer high-water mark. Never exceeds
  /// chunk_records (tests assert the bound).
  [[nodiscard]] std::size_t stream_peak_pending() const {
    return stream_peak_;
  }

  /// Attach an observability context (nullptr = off, the default). The
  /// collector then feeds the io.*/mpi.*/trace.* metrics and, when
  /// tracing is on, emits one per-rank span per captured record.
  void set_observer(obs::Run* run) { obs_ = run; }

 private:
  /// One rank's append arena: records in that rank's emission order, with
  /// the global emission sequence number alongside (the k-way merge key).
  struct RankArena {
    std::vector<Record> records;
    std::vector<std::uint64_t> seqs;
  };

  /// Drain every arena into bundle_.records in global emission order.
  void flush();

  /// Hand every pending record (in emission order) to the stream sink.
  void flush_stream();

  /// Streaming bookkeeping for one emitted record: tally the per-rank
  /// Posix count and flush once a chunk's worth of records is pending.
  void note_stream(const Record& r) {
    if (r.layer == Layer::Posix) {
      ++rank_posix_counts_[static_cast<std::size_t>(r.rank)];
    }
    if (total_records_ - stream_consumed_ >= stream_chunk_) flush_stream();
  }

  /// Observability slow path for one emitted record (global timestamps;
  /// called only when obs_ != nullptr, before clock conversion).
  void note_obs(const Record& r);

  TraceBundle bundle_;
  std::vector<sim::ClockModel> clocks_;
  std::vector<RankArena> arenas_;
  /// Records per FileId seen so far (Fast mode): the column hints.
  std::vector<std::uint32_t> file_counts_;
  std::uint64_t next_emit_seq_ = 0;
  std::size_t total_records_ = 0;
  CaptureMode mode_;
  /// Observability (off = nullptr; one branch per emit).
  obs::Run* obs_ = nullptr;
  /// Streaming capture (off = nullptr; one branch per emit).
  StreamSink* stream_sink_ = nullptr;
  std::size_t stream_chunk_ = 0;
  /// Records already handed to the sink; pending = total - consumed.
  std::uint64_t stream_consumed_ = 0;
  std::size_t stream_peak_ = 0;
  /// Scratch the fast path scatters each chunk into (reused across
  /// flushes, so its capacity is the chunk size, not the run size).
  std::vector<Record> stream_scratch_;
  std::vector<std::uint64_t> rank_posix_counts_;
};

}  // namespace pfsem::trace
