#pragma once
// Bounded spill store + chunked compact-v2 framing ("PFSEMCK1").
//
// A streaming capture spills fixed-size record chunks as the collector's
// arenas fill, then replays them after the run for analysis or transcode.
// The spill byte format is pinned (tests/test_compact_codec.cpp carries a
// hand-crafted fixture):
//
//   header   "PFSEMCK1"  varint(nranks)
//   chunk    'C'  varint(base_seq)  varint(nrec)  nrec × record
//   ...                                       (any number of chunks)
//   trailer  'T'  varint(total_records)
//            varint(npaths)  npaths × (varint(len) bytes)
//            comm log               (identical encoding to compact v2)
//
// Records use the compact-v2 field encoding (varint rank, zig-zag
// per-rank tstart delta — the delta chain continues *across* chunks —
// zig-zag duration, packed layer/origin/func, fd, ret, offset, count,
// flags) with one difference: the file field is varint(0) for "no file"
// and varint(file + 1) otherwise, because the intern table is unknown
// until the trailer so the empty-slot trick of compact v2 cannot work
// mid-stream. base_seq is the global emission seq of the chunk's first
// record; the reader rejects gaps and reordering.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pfsem/trace/stream.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::trace {

/// Append-only byte store with a memory ceiling: bytes live in one
/// in-memory buffer until the ceiling is crossed, then the buffer (and
/// everything after it) spills to a private temp file that is removed on
/// destruction. This is the only place the streaming pipeline's memory
/// can grow with run length, and it is capped here.
class SpillStore {
 public:
  static constexpr std::size_t kDefaultCeiling = std::size_t{64} << 20;

  explicit SpillStore(std::size_t memory_ceiling = kDefaultCeiling);
  ~SpillStore();
  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  void append(std::string_view bytes);

  /// Total bytes appended so far.
  [[nodiscard]] std::size_t bytes() const { return total_; }
  /// Peak in-memory buffer size — the store's RSS contribution.
  [[nodiscard]] std::size_t peak_memory() const { return peak_mem_; }
  [[nodiscard]] bool spilled() const { return !path_.empty(); }

  /// Fresh read stream over everything appended so far. The writer side
  /// must be done (appending after open_read() on a spilled store is an
  /// error).
  [[nodiscard]] std::unique_ptr<std::istream> open_read();

 private:
  std::size_t ceiling_;
  std::string mem_;
  std::string path_;
  std::ofstream file_;
  std::size_t total_ = 0;
  std::size_t peak_mem_ = 0;
  bool reading_ = false;
};

/// StreamSink that frames collector batches into PFSEMCK1 chunks on a
/// SpillStore. One collector batch == one chunk, so the chunk size is
/// whatever chunk_records the collector was configured with.
class ChunkWriter final : public StreamSink {
 public:
  ChunkWriter(SpillStore& store, int nranks);

  void on_records(std::uint64_t base_seq,
                  std::span<const Record> records) override;

  /// Write the trailer. Must be called exactly once, after the collector's
  /// take_stream() flushed the final batch.
  void finish(const StreamMeta& meta);

 private:
  SpillStore& store_;
  std::string buf_;
  std::vector<SimTime> last_t_;
  std::uint64_t expected_seq_ = 0;
  bool finished_ = false;
};

/// Replays a PFSEMCK1 stream record by record, validating framing as it
/// goes. Usage: construct, call next() until it returns false, then
/// read_trailer().
class ChunkReader {
 public:
  struct Trailer {
    std::uint64_t records = 0;
    PathTable paths;
    CommLog comm;
  };

  explicit ChunkReader(std::istream& is);

  [[nodiscard]] int nranks() const { return nranks_; }
  /// Records decoded so far.
  [[nodiscard]] std::uint64_t seen() const { return seen_; }

  /// Decode the next record; false once the trailer marker is reached.
  bool next(Record& out);

  /// Read and validate the trailer. Only valid after next() returned
  /// false.
  [[nodiscard]] Trailer read_trailer();

 private:
  std::istream& is_;
  int nranks_ = 0;
  std::vector<SimTime> last_t_;
  std::uint64_t seen_ = 0;
  std::uint64_t chunk_left_ = 0;
  std::uint64_t max_file_seen_ = 0;
  bool any_file_seen_ = false;
  bool at_trailer_ = false;
};

}  // namespace pfsem::trace
