#pragma once
// Streaming capture interface: a Collector in streaming mode hands
// finished records to a StreamSink in global emission (seq) order instead
// of accumulating a TraceBundle, and finishes by handing over a
// StreamMeta — everything a TraceBundle carries *except* the record
// column. The sink of record is ChunkWriter (spill.hpp), which frames the
// records into the pinned chunk format on a bounded SpillStore; tests
// install small in-memory sinks to observe the chunking contract.

#include <cstdint>
#include <span>
#include <vector>

#include "pfsem/trace/comm_log.hpp"
#include "pfsem/trace/path_table.hpp"
#include "pfsem/trace/record.hpp"

namespace pfsem::trace {

/// Receives the record stream of one capture. `base_seq` is the global
/// emission sequence number of `records[0]`; calls arrive with strictly
/// increasing, gapless base_seq (base_seq == total records delivered so
/// far), so the concatenation of all batches *is* the bundle's record
/// column in emission order.
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  virtual void on_records(std::uint64_t base_seq,
                          std::span<const Record> records) = 0;
};

/// Everything of a run's capture except the streamed-away records: the
/// geometry, the final intern table, the comm log, and the per-column
/// sizing hints. Produced by Collector::take_stream() once the run is
/// done — streaming analysis is a post-capture phase, so the path table
/// is final by the time anyone consumes this.
struct StreamMeta {
  int nranks = 0;
  PathTable paths;
  CommLog comm;
  /// Per-FileId op-count hints (fast capture only; same contract as
  /// TraceBundle::file_op_counts — advisory, never serialized).
  std::vector<std::uint32_t> file_op_counts;
  /// Per-rank count of Posix-layer records in the stream. The streaming
  /// reconstructor's reorder buffer uses these to retire ranks that have
  /// no Posix records left, so ranks that never touch the fs (or finish
  /// early) do not pin the release frontier. Advisory, never serialized.
  std::vector<std::uint64_t> rank_posix_counts;
  std::uint64_t records = 0;
};

}  // namespace pfsem::trace
