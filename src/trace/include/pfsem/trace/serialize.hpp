#pragma once
// Binary and text serialization of TraceBundles.
//
// The binary format is a compact little-endian stream (magic + version +
// varint-free fixed-width fields, length-prefixed strings) so bundles can
// be written by a run and re-analyzed later, mirroring Recorder's
// trace-directory workflow. The text form is for human inspection.

#include <iosfwd>

#include "pfsem/trace/bundle.hpp"

namespace pfsem::trace {

/// Serialize `bundle` to `os`. Throws pfsem::Error on stream failure.
void write_binary(const TraceBundle& bundle, std::ostream& os);

/// Parse a bundle previously written by write_binary. Throws pfsem::Error
/// on malformed input (bad magic, truncated stream, wrong version).
[[nodiscard]] TraceBundle read_binary(std::istream& is);

/// Human-readable dump (one line per record), optionally filtered by layer.
void write_text(const TraceBundle& bundle, std::ostream& os);

/// Compact format (Recorder 2.0's headline feature is trace compression):
/// LEB128 varints, zig-zag signed fields, per-rank timestamp deltas, and
/// an interned path table. Typically several times smaller than the
/// fixed-width binary format on real traces.
void write_compact(const TraceBundle& bundle, std::ostream& os);

/// Parse a bundle written by write_compact. Throws pfsem::Error on
/// malformed input.
[[nodiscard]] TraceBundle read_compact(std::istream& is);

}  // namespace pfsem::trace
