#pragma once
// Binary and text serialization of TraceBundles.
//
// The binary format is a compact little-endian stream (magic + version +
// varint-free fixed-width fields, length-prefixed strings) so bundles can
// be written by a run and re-analyzed later, mirroring Recorder's
// trace-directory workflow. The text form is for human inspection.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <istream>
#include <vector>

#include "pfsem/trace/bundle.hpp"

namespace pfsem::trace {

/// Serialize `bundle` to `os`. Throws pfsem::Error on stream failure.
void write_binary(const TraceBundle& bundle, std::ostream& os);

/// Parse a bundle previously written by write_binary. Throws pfsem::Error
/// on malformed input (bad magic, truncated stream, wrong version).
[[nodiscard]] TraceBundle read_binary(std::istream& is);

/// Human-readable dump (one line per record), optionally filtered by layer.
void write_text(const TraceBundle& bundle, std::ostream& os);

/// Compact format (Recorder 2.0's headline feature is trace compression):
/// LEB128 varints, zig-zag signed fields, per-rank timestamp deltas, and
/// an interned path table. Typically several times smaller than the
/// fixed-width binary format on real traces.
void write_compact(const TraceBundle& bundle, std::ostream& os);

/// Parse a bundle written by write_compact. Throws pfsem::Error on
/// malformed input.
[[nodiscard]] TraceBundle read_compact(std::istream& is);

/// Streaming writer core of the compact (v2) format: `scan` is invoked
/// once and must call its argument exactly `record_count` times, in
/// emission order, with each record to encode. write_compact() is this
/// with a scan over bundle.records — the two produce identical bytes for
/// identical inputs, which is what lets a spilled streaming capture
/// transcode to .trc without the bundle ever existing.
using RecordEmit = std::function<void(const Record&)>;
void write_compact_streamed(int nranks, const PathTable& paths,
                            const CommLog& comm, std::uint64_t record_count,
                            const std::function<void(const RecordEmit&)>& scan,
                            std::ostream& os);

/// Streaming reader over the compact (v2) format: decodes one record per
/// next() call instead of materializing a TraceBundle. Construct, drain
/// next() until it returns false, then read_comm(). Validation (and every
/// error message) matches read_compact, which is a thin wrapper over this.
class CompactReader {
 public:
  explicit CompactReader(std::istream& is);

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] const PathTable& paths() const { return paths_; }
  [[nodiscard]] std::uint64_t record_count() const { return nrec_; }

  /// Decode the next record; false once all records are consumed.
  bool next(Record& out);

  /// Read the trailing comm log. Only valid after next() returned false.
  [[nodiscard]] CommLog read_comm();

 private:
  std::istream& is_;
  int nranks_ = 0;
  PathTable paths_;
  std::uint64_t nrec_ = 0;
  std::uint64_t read_ = 0;
  std::vector<SimTime> last_t_;
};

namespace detail {
/// Comm-log encoding shared by the compact (v2) trailer and the chunk
/// spill trailer (spill.cpp) — one definition, formats cannot drift.
void write_comm(const CommLog& comm, std::ostream& os);
[[nodiscard]] CommLog read_comm(std::istream& is, int nranks);
}  // namespace detail

}  // namespace pfsem::trace
