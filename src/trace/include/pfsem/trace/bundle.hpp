#pragma once
// A TraceBundle is everything one application run produces for analysis:
// the per-call records from every layer, the matched communication events,
// and the job geometry. It is the single input format of pfsem::core, the
// way Recorder trace directories are the input of the paper's analysis.

#include <vector>

#include "pfsem/trace/comm_log.hpp"
#include "pfsem/trace/record.hpp"

namespace pfsem::trace {

struct TraceBundle {
  int nranks = 0;
  /// All records, in emission order (monotone in global simulated time).
  std::vector<Record> records;
  CommLog comm;

  /// Records of one rank, preserving order.
  [[nodiscard]] std::vector<Record> rank_records(Rank r) const {
    std::vector<Record> out;
    for (const auto& rec : records) {
      if (rec.rank == r) out.push_back(rec);
    }
    return out;
  }
};

}  // namespace pfsem::trace
