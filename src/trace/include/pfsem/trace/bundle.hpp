#pragma once
// A TraceBundle is everything one application run produces for analysis:
// the per-call records from every layer, the matched communication events,
// and the job geometry. It is the single input format of pfsem::core, the
// way Recorder trace directories are the input of the paper's analysis.

#include <string_view>
#include <vector>

#include "pfsem/trace/comm_log.hpp"
#include "pfsem/trace/path_table.hpp"
#include "pfsem/trace/record.hpp"

namespace pfsem::trace {

struct TraceBundle {
  int nranks = 0;
  /// Interned file paths; Record::file indexes into this table. Ids are
  /// assigned in first-intern (first-open) order — deterministic per run.
  PathTable paths;
  /// All records, in emission order (monotone in global simulated time).
  std::vector<Record> records;
  CommLog comm;
  /// Per-FileId record counts tallied during capture (column hints for
  /// TraceStore construction). Purely a capacity hint, NOT part of the
  /// serialized formats: empty for deserialized or hand-built bundles,
  /// sized to paths.size() when the fast capture path produced the bundle.
  std::vector<std::uint32_t> file_op_counts;

  /// Intern a path for use in a Record's `file` field.
  FileId intern(std::string_view path) { return paths.intern(path); }

  /// Path of `rec` resolved against this bundle's table ("" if none).
  [[nodiscard]] std::string_view path_of(const Record& rec) const {
    return rec.path_view(paths);
  }

  /// Records of one rank, preserving order.
  [[nodiscard]] std::vector<Record> rank_records(Rank r) const {
    std::vector<Record> out;
    for (const auto& rec : records) {
      if (rec.rank == r) out.push_back(rec);
    }
    return out;
  }
};

}  // namespace pfsem::trace
