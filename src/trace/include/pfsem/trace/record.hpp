#pragma once
// Trace record schema, modelled on Recorder 2.0 (Wang et al., IPDPSW'20),
// the tracer the paper uses: one record per intercepted call, carrying the
// API layer, entry/exit timestamps (from the *local*, possibly skewed rank
// clock), the calling rank, and the arguments needed to reconstruct byte
// ranges (fd/path/offset/count/whence/flags) — everything except buffer
// contents, exactly like the paper (Section 5).

#include <cstdint>
#include <string_view>

#include "pfsem/trace/path_table.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::trace {

/// API layer a function belongs to. `origin` on a Record additionally says
/// which layer *issued* the call, so e.g. a POSIX write issued from inside
/// HDF5 is {layer=Posix, origin=Hdf5} — this is how Figure 3 attributes
/// metadata operations to MPI / HDF5 / application.
enum class Layer : std::uint8_t { Posix, MpiIo, Hdf5, NetCdf, Adios, Silo, App };

[[nodiscard]] std::string_view to_string(Layer layer);

// X-macro master list of traced functions. Groups:
//  - POSIX data ops (drive the byte-level conflict analysis, Section 5.1)
//  - POSIX metadata/utility ops (the Section 6.4 footnote-3 monitored set)
//  - MPI-IO / HDF5 / NetCDF / ADIOS / Silo library entry points
#define PFSEM_FUNC_LIST(X)                                                    \
  /* --- POSIX data --- */                                                    \
  X(open) X(creat) X(close) X(read) X(write) X(pread) X(pwrite) X(lseek)      \
  X(fsync) X(fdatasync)                                                       \
  X(fopen) X(fclose) X(fread) X(fwrite) X(fseek) X(fflush)                    \
  /* --- POSIX metadata & utility (paper footnote 3) --- */                   \
  X(mmap) X(msync) X(stat) X(lstat) X(fstat) X(getcwd) X(mkdir) X(rmdir)      \
  X(chdir) X(link) X(unlink) X(symlink) X(readlink) X(rename) X(chmod)        \
  X(chown) X(utime) X(opendir) X(readdir) X(closedir) X(rewinddir) X(mknod)   \
  X(fcntl) X(dup) X(dup2) X(pipe) X(mkfifo) X(umask) X(fileno) X(access)      \
  X(tmpfile) X(remove) X(truncate) X(ftruncate)                               \
  /* --- MPI-IO --- */                                                        \
  X(mpi_file_open) X(mpi_file_close) X(mpi_file_read_at)                      \
  X(mpi_file_write_at) X(mpi_file_read_at_all) X(mpi_file_write_at_all)       \
  X(mpi_file_seek) X(mpi_file_sync) X(mpi_file_set_view)                      \
  X(mpi_file_set_size) X(mpi_file_get_size)                                   \
  /* --- HDF5 --- */                                                          \
  X(h5fcreate) X(h5fopen) X(h5fclose) X(h5fflush) X(h5dcreate) X(h5dopen)     \
  X(h5dwrite) X(h5dread) X(h5dclose) X(h5gcreate) X(h5acreate) X(h5awrite)    \
  /* --- NetCDF --- */                                                        \
  X(nc_create) X(nc_open) X(nc_close) X(nc_def_dim) X(nc_def_var)             \
  X(nc_enddef) X(nc_put_vara) X(nc_get_vara) X(nc_sync)                       \
  /* --- ADIOS --- */                                                         \
  X(adios_open) X(adios_close) X(adios_put) X(adios_get) X(adios_end_step)    \
  /* --- Silo --- */                                                          \
  X(db_create) X(db_open) X(db_close) X(db_put_quadmesh) X(db_put_quadvar)    \
  X(db_mkdir) X(db_set_dir)

enum class Func : std::uint16_t {
#define PFSEM_ENUM(name) name,
  PFSEM_FUNC_LIST(PFSEM_ENUM)
#undef PFSEM_ENUM
      count_
};

inline constexpr std::size_t kFuncCount = static_cast<std::size_t>(Func::count_);

[[nodiscard]] std::string_view to_string(Func f);

/// True for the POSIX calls the conflict detector treats as a *commit*
/// operation (paper Section 6.3, footnote 2: fsync, fdatasync, fflush,
/// fclose, close).
[[nodiscard]] constexpr bool is_commit_func(Func f) {
  return f == Func::fsync || f == Func::fdatasync || f == Func::fflush ||
         f == Func::fclose || f == Func::close;
}

/// True for POSIX metadata/utility operations monitored for Figure 3.
[[nodiscard]] bool is_metadata_func(Func f);

/// One traced call.
struct Record {
  SimTime tstart = 0;      ///< entry timestamp, local rank clock
  SimTime tend = 0;        ///< exit timestamp, local rank clock
  Rank rank = kNoRank;
  Layer layer = Layer::Posix;   ///< API layer of the function itself
  Layer origin = Layer::App;    ///< layer whose code issued the call
  Func func = Func::open;
  std::int32_t fd = -1;         ///< file descriptor (POSIX data ops)
  std::int64_t ret = 0;         ///< return value (fd for open, bytes for r/w)
  Offset offset = 0;            ///< explicit offset (pread/pwrite/lseek/...)
  std::uint64_t count = 0;      ///< byte count / size argument
  std::int32_t flags = 0;       ///< open flags or seek whence
  FileId file = kNoFile;        ///< interned file path where applicable

  /// Path of this record resolved against the bundle's PathTable
  /// (empty view when the call has no associated path).
  [[nodiscard]] std::string_view path_view(const PathTable& paths) const {
    return paths.view_or_empty(file);
  }

  [[nodiscard]] bool has_path() const { return file != kNoFile; }
};

/// open(2)-style flag bits used by the simulated stack (subset of POSIX).
enum OpenFlags : std::int32_t {
  kRdOnly = 0x0,
  kWrOnly = 0x1,
  kRdWr = 0x2,
  kCreate = 0x40,
  kTrunc = 0x200,
  kAppend = 0x400,
};

/// lseek whence values.
enum Whence : std::int32_t { kSeekSet = 0, kSeekCur = 1, kSeekEnd = 2 };

}  // namespace pfsem::trace
