#include "pfsem/trace/collector.hpp"

#include <algorithm>
#include <utility>

namespace pfsem::trace {

void Collector::reserve(int nranks, std::size_t per_rank_hint) {
  require(nranks == bundle_.nranks,
          "reserve(): rank count does not match this collector");
  if (stream_sink_ != nullptr) {
    // Streaming arenas never hold more than one chunk of pending records
    // across all ranks, so cap the pre-size: a 64K-rank streaming run must
    // not reserve a whole bundle's worth of arena capacity up front.
    per_rank_hint = std::min(
        per_rank_hint,
        stream_chunk_ / static_cast<std::size_t>(nranks) + 1);
  }
  if (mode_ == CaptureMode::Reference) {
    // The retired emitter had no per-rank structure; best it can do is
    // pre-size the one global vector.
    bundle_.records.reserve(static_cast<std::size_t>(nranks) * per_rank_hint);
    return;
  }
  for (auto& a : arenas_) {
    a.records.reserve(per_rank_hint);
    a.seqs.reserve(per_rank_hint);
  }
}

void Collector::enable_streaming(StreamSink* sink, std::size_t chunk_records) {
  require(sink != nullptr, "enable_streaming needs a sink");
  require(chunk_records > 0, "enable_streaming needs a positive chunk size");
  require(total_records_ == 0 && bundle_.records.empty(),
          "enable_streaming must be called before capture starts");
  stream_sink_ = sink;
  stream_chunk_ = chunk_records;
  rank_posix_counts_.assign(static_cast<std::size_t>(bundle_.nranks), 0);
}

void Collector::flush_stream() {
  const std::size_t pending =
      static_cast<std::size_t>(total_records_ - stream_consumed_);
  if (pending == 0) return;
  if (obs_ != nullptr) {
    obs_->metrics.add(obs_->trace_flushes);
    const auto bytes =
        static_cast<std::int64_t>(pending * sizeof(Record) +
                                  pending * sizeof(std::uint64_t));
    if (bytes > obs_->metrics.value(obs_->trace_arena_bytes)) {
      obs_->metrics.set(obs_->trace_arena_bytes, bytes);
    }
  }
  stream_peak_ = std::max(stream_peak_, pending);
  if (mode_ == CaptureMode::Fast) {
    // Same comparison-free scatter as flush(): the pending seqs are
    // exactly [stream_consumed_, total_records_), a permutation.
    stream_scratch_.resize(pending);
    for (auto& a : arenas_) {
      for (std::size_t j = 0; j < a.records.size(); ++j) {
        stream_scratch_[a.seqs[j] - stream_consumed_] =
            std::move(a.records[j]);
      }
      a.records.clear();
      a.seqs.clear();
    }
    stream_sink_->on_records(stream_consumed_, stream_scratch_);
  } else {
    stream_sink_->on_records(stream_consumed_, bundle_.records);
    bundle_.records.clear();
  }
  stream_consumed_ += pending;
  // Chunk boundaries are also the observability flush points: spans
  // buffered since the last chunk go out with it.
  if (obs_ != nullptr && obs_->tracing()) obs_->tracer.flush_stream();
}

StreamMeta Collector::take_stream() {
  require(stream_sink_ != nullptr, "collector is not in streaming mode");
  flush_stream();
  if (obs_ != nullptr) {
    obs_->metrics.set(obs_->trace_files,
                      static_cast<std::int64_t>(bundle_.paths.size()));
  }
  StreamMeta meta;
  meta.nranks = bundle_.nranks;
  meta.records = stream_consumed_;
  if (mode_ == CaptureMode::Fast) {
    // Same column-hint contract as take() (paths interned but never
    // attached to a record get a zero hint).
    file_counts_.resize(bundle_.paths.size(), 0);
    meta.file_op_counts = std::move(file_counts_);
    file_counts_ = {};
  }
  meta.rank_posix_counts = std::move(rank_posix_counts_);
  meta.paths = std::move(bundle_.paths);
  meta.comm = std::move(bundle_.comm);
  const int nranks = bundle_.nranks;
  bundle_ = TraceBundle{};
  bundle_.nranks = nranks;
  rank_posix_counts_.assign(static_cast<std::size_t>(nranks), 0);
  next_emit_seq_ = 0;
  total_records_ = 0;
  stream_consumed_ = 0;
  return meta;
}

void Collector::note_obs(const Record& r) {
  obs::MetricsRegistry& m = obs_->metrics;
  m.add(obs_->trace_records);
  m.add(obs_->io_ops);
  switch (r.func) {
    case Func::read:
    case Func::pread:
    case Func::fread:
      m.add(obs_->io_reads);
      m.add(obs_->io_read_bytes, r.count);
      m.observe(obs_->io_read_size, r.count);
      break;
    case Func::write:
    case Func::pwrite:
    case Func::fwrite:
      m.add(obs_->io_writes);
      m.add(obs_->io_write_bytes, r.count);
      m.observe(obs_->io_write_size, r.count);
      break;
    default:
      if (is_metadata_func(r.func)) m.add(obs_->io_meta);
      break;
  }
  if (obs_->tracing()) {
    // to_string(Func) views a stringized literal, so .data() is a stable
    // null-terminated name the tracer can keep by pointer.
    obs_->tracer.complete(
        {obs::kPidIo, r.rank}, to_string(r.func).data(), r.tstart,
        r.tend - r.tstart, {"bytes", static_cast<std::int64_t>(r.count)},
        {"file", r.file == kNoFile ? std::int64_t{-1}
                                   : static_cast<std::int64_t>(r.file)});
  }
}

void Collector::flush() {
  if (mode_ == CaptureMode::Reference) return;
  std::size_t pending = 0;
  for (const auto& a : arenas_) pending += a.records.size();
  if (pending == 0) return;
  if (obs_ != nullptr) {
    obs_->metrics.add(obs_->trace_flushes);
    const auto bytes =
        static_cast<std::int64_t>(pending * sizeof(Record) +
                                  pending * sizeof(std::uint64_t));
    if (bytes > obs_->metrics.value(obs_->trace_arena_bytes)) {
      obs_->metrics.set(obs_->trace_arena_bytes, bytes);
    }
  }

  // Deterministic merge on the global emission sequence number. Seqs are
  // handed out consecutively (one per emit, starting at 0) and every
  // earlier seq was consumed by a previous flush, so the pending seqs are
  // exactly [records.size(), records.size() + pending) — a permutation.
  // That turns the k-way merge into a comparison-free scatter: each record
  // lands at index `seq`, which is precisely the position the reference
  // single-emitter path would have appended it at.
  bundle_.records.resize(bundle_.records.size() + pending);
  for (auto& a : arenas_) {
    for (std::size_t j = 0; j < a.records.size(); ++j) {
      bundle_.records[a.seqs[j]] = std::move(a.records[j]);
    }
    a.records.clear();
    a.seqs.clear();
  }
}

const TraceBundle& Collector::bundle() {
  require(stream_sink_ == nullptr,
          "collector is in streaming mode; records are not materialized");
  flush();
  return bundle_;
}

TraceBundle Collector::take() {
  require(stream_sink_ == nullptr,
          "collector is in streaming mode; use take_stream()");
  flush();
  if (obs_ != nullptr) {
    obs_->metrics.set(obs_->trace_files,
                      static_cast<std::int64_t>(bundle_.paths.size()));
  }
  if (mode_ == CaptureMode::Fast) {
    // Attach the per-file column hints, sized to the full path table
    // (paths interned but never attached to a record get a zero hint).
    file_counts_.resize(bundle_.paths.size(), 0);
    bundle_.file_op_counts = std::move(file_counts_);
    file_counts_ = {};
  }
  next_emit_seq_ = 0;
  total_records_ = 0;
  return std::exchange(bundle_, TraceBundle{});
}

}  // namespace pfsem::trace
