#include "pfsem/trace/collector.hpp"

#include <utility>

namespace pfsem::trace {

void Collector::reserve(int nranks, std::size_t per_rank_hint) {
  require(nranks == bundle_.nranks,
          "reserve(): rank count does not match this collector");
  if (mode_ == CaptureMode::Reference) {
    // The retired emitter had no per-rank structure; best it can do is
    // pre-size the one global vector.
    bundle_.records.reserve(static_cast<std::size_t>(nranks) * per_rank_hint);
    return;
  }
  for (auto& a : arenas_) {
    a.records.reserve(per_rank_hint);
    a.seqs.reserve(per_rank_hint);
  }
}

void Collector::note_obs(const Record& r) {
  obs::MetricsRegistry& m = obs_->metrics;
  m.add(obs_->trace_records);
  m.add(obs_->io_ops);
  switch (r.func) {
    case Func::read:
    case Func::pread:
    case Func::fread:
      m.add(obs_->io_reads);
      m.add(obs_->io_read_bytes, r.count);
      m.observe(obs_->io_read_size, r.count);
      break;
    case Func::write:
    case Func::pwrite:
    case Func::fwrite:
      m.add(obs_->io_writes);
      m.add(obs_->io_write_bytes, r.count);
      m.observe(obs_->io_write_size, r.count);
      break;
    default:
      if (is_metadata_func(r.func)) m.add(obs_->io_meta);
      break;
  }
  if (obs_->tracing()) {
    // to_string(Func) views a stringized literal, so .data() is a stable
    // null-terminated name the tracer can keep by pointer.
    obs_->tracer.complete(
        {obs::kPidIo, r.rank}, to_string(r.func).data(), r.tstart,
        r.tend - r.tstart, {"bytes", static_cast<std::int64_t>(r.count)},
        {"file", r.file == kNoFile ? std::int64_t{-1}
                                   : static_cast<std::int64_t>(r.file)});
  }
}

void Collector::flush() {
  if (mode_ == CaptureMode::Reference) return;
  std::size_t pending = 0;
  for (const auto& a : arenas_) pending += a.records.size();
  if (pending == 0) return;
  if (obs_ != nullptr) {
    obs_->metrics.add(obs_->trace_flushes);
    const auto bytes =
        static_cast<std::int64_t>(pending * sizeof(Record) +
                                  pending * sizeof(std::uint64_t));
    if (bytes > obs_->metrics.value(obs_->trace_arena_bytes)) {
      obs_->metrics.set(obs_->trace_arena_bytes, bytes);
    }
  }

  // Deterministic merge on the global emission sequence number. Seqs are
  // handed out consecutively (one per emit, starting at 0) and every
  // earlier seq was consumed by a previous flush, so the pending seqs are
  // exactly [records.size(), records.size() + pending) — a permutation.
  // That turns the k-way merge into a comparison-free scatter: each record
  // lands at index `seq`, which is precisely the position the reference
  // single-emitter path would have appended it at.
  bundle_.records.resize(bundle_.records.size() + pending);
  for (auto& a : arenas_) {
    for (std::size_t j = 0; j < a.records.size(); ++j) {
      bundle_.records[a.seqs[j]] = std::move(a.records[j]);
    }
    a.records.clear();
    a.seqs.clear();
  }
}

const TraceBundle& Collector::bundle() {
  flush();
  return bundle_;
}

TraceBundle Collector::take() {
  flush();
  if (obs_ != nullptr) {
    obs_->metrics.set(obs_->trace_files,
                      static_cast<std::int64_t>(bundle_.paths.size()));
  }
  if (mode_ == CaptureMode::Fast) {
    // Attach the per-file column hints, sized to the full path table
    // (paths interned but never attached to a record get a zero hint).
    file_counts_.resize(bundle_.paths.size(), 0);
    bundle_.file_op_counts = std::move(file_counts_);
    file_counts_ = {};
  }
  next_emit_seq_ = 0;
  total_records_ = 0;
  return std::exchange(bundle_, TraceBundle{});
}

}  // namespace pfsem::trace
