#include "pfsem/trace/spill.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <sstream>
#include <utility>

#include "pfsem/trace/serialize.hpp"
#include "pfsem/trace/varint.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::trace {

namespace {

constexpr char kChunkMagic[8] = {'P', 'F', 'S', 'E', 'M', 'C', 'K', '1'};
constexpr char kChunkMarker = 'C';
constexpr char kTrailerMarker = 'T';

using detail::get_string;
using detail::get_varint;
using detail::put_varint;
using detail::unzigzag;
using detail::zigzag;

std::string fresh_spill_path() {
  static std::atomic<unsigned> counter{0};
  const auto n = counter.fetch_add(1, std::memory_order_relaxed);
  const auto name = "pfsem-spill-" + std::to_string(::getpid()) + "-" +
                    std::to_string(n) + ".bin";
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace

SpillStore::SpillStore(std::size_t memory_ceiling)
    : ceiling_(memory_ceiling) {}

SpillStore::~SpillStore() {
  if (!path_.empty()) {
    file_.close();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
}

void SpillStore::append(std::string_view bytes) {
  if (path_.empty() && mem_.size() + bytes.size() > ceiling_) {
    require(!reading_, "SpillStore::append after open_read");
    path_ = fresh_spill_path();
    file_.open(path_, std::ios::binary | std::ios::trunc);
    require(static_cast<bool>(file_), "cannot open spill file " + path_);
    file_.write(mem_.data(), static_cast<std::streamsize>(mem_.size()));
    mem_.clear();
    mem_.shrink_to_fit();
  }
  if (path_.empty()) {
    mem_.append(bytes);
    peak_mem_ = std::max(peak_mem_, mem_.size());
  } else {
    require(!reading_, "SpillStore::append after open_read");
    file_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    require(static_cast<bool>(file_), "spill file write failure");
  }
  total_ += bytes.size();
}

std::unique_ptr<std::istream> SpillStore::open_read() {
  if (path_.empty()) {
    // Unspilled: hand out a copy so the store stays re-readable; small by
    // definition (below the ceiling).
    return std::make_unique<std::istringstream>(mem_, std::ios::binary);
  }
  reading_ = true;
  file_.flush();
  auto in = std::make_unique<std::ifstream>(path_, std::ios::binary);
  require(static_cast<bool>(*in), "cannot reopen spill file " + path_);
  return in;
}

ChunkWriter::ChunkWriter(SpillStore& store, int nranks) : store_(store) {
  require(nranks > 0, "ChunkWriter needs a positive rank count");
  last_t_.assign(static_cast<std::size_t>(nranks), 0);
  buf_.assign(kChunkMagic, sizeof kChunkMagic);
  put_varint(buf_, static_cast<std::uint64_t>(nranks));
  store_.append(buf_);
}

void ChunkWriter::on_records(std::uint64_t base_seq,
                             std::span<const Record> records) {
  require(!finished_, "ChunkWriter fed after finish");
  require(base_seq == expected_seq_, "ChunkWriter fed out of order");
  if (records.empty()) return;
  buf_.clear();
  buf_.push_back(kChunkMarker);
  put_varint(buf_, base_seq);
  put_varint(buf_, records.size());
  for (const auto& r : records) {
    auto& prev = last_t_[static_cast<std::size_t>(r.rank)];
    put_varint(buf_, static_cast<std::uint64_t>(r.rank));
    put_varint(buf_, zigzag(r.tstart - prev));  // delta chain spans chunks
    put_varint(buf_, zigzag(r.tend - r.tstart));
    prev = r.tstart;
    put_varint(buf_, static_cast<std::uint64_t>(r.layer) |
                         (static_cast<std::uint64_t>(r.origin) << 3) |
                         (static_cast<std::uint64_t>(r.func) << 6));
    put_varint(buf_, zigzag(r.fd));
    put_varint(buf_, zigzag(r.ret));
    put_varint(buf_, r.offset);
    put_varint(buf_, r.count);
    put_varint(buf_, zigzag(r.flags));
    put_varint(buf_, r.file == kNoFile
                         ? 0
                         : static_cast<std::uint64_t>(r.file) + 1);
  }
  store_.append(buf_);
  expected_seq_ += records.size();
}

void ChunkWriter::finish(const StreamMeta& meta) {
  require(!finished_, "ChunkWriter finished twice");
  require(meta.records == expected_seq_,
          "stream meta record count does not match the chunks written");
  finished_ = true;
  std::ostringstream trailer(std::ios::binary);
  trailer.put(kTrailerMarker);
  put_varint(trailer, meta.records);
  put_varint(trailer, meta.paths.size());
  for (std::size_t i = 0; i < meta.paths.size(); ++i) {
    detail::put_string(trailer, meta.paths.view(static_cast<FileId>(i)));
  }
  detail::write_comm(meta.comm, trailer);
  store_.append(trailer.str());
}

ChunkReader::ChunkReader(std::istream& is) : is_(is) {
  char magic[8];
  is_.read(magic, sizeof magic);
  require(static_cast<bool>(is_) &&
              std::equal(std::begin(magic), std::end(magic), kChunkMagic),
          "not a pfsem chunk stream");
  nranks_ = static_cast<int>(get_varint(is_));
  require(nranks_ > 0 && nranks_ < (1 << 24), "bad rank count");
  last_t_.assign(static_cast<std::size_t>(nranks_), 0);
}

bool ChunkReader::next(Record& out) {
  while (chunk_left_ == 0) {
    if (at_trailer_) return false;
    const int marker = is_.get();
    require(marker != std::char_traits<char>::eof(),
            "truncated chunk stream");
    if (marker == kTrailerMarker) {
      at_trailer_ = true;
      return false;
    }
    require(marker == kChunkMarker, "bad chunk marker in stream");
    const auto base_seq = get_varint(is_);
    require(base_seq == seen_, "out-of-order chunk in stream");
    chunk_left_ = get_varint(is_);
  }
  --chunk_left_;
  ++seen_;
  const auto rank = get_varint(is_);
  require(rank < static_cast<std::uint64_t>(nranks_), "bad record rank");
  out.rank = static_cast<Rank>(rank);
  auto& prev = last_t_[rank];
  out.tstart = prev + unzigzag(get_varint(is_));
  out.tend = out.tstart + unzigzag(get_varint(is_));
  prev = out.tstart;
  const auto packed = get_varint(is_);
  out.layer = static_cast<Layer>(packed & 0x7);
  out.origin = static_cast<Layer>((packed >> 3) & 0x7);
  const auto func = packed >> 6;
  require(func < kFuncCount, "bad function id in chunk stream");
  out.func = static_cast<Func>(func);
  out.fd = static_cast<std::int32_t>(unzigzag(get_varint(is_)));
  out.ret = unzigzag(get_varint(is_));
  out.offset = get_varint(is_);
  out.count = get_varint(is_);
  out.flags = static_cast<std::int32_t>(unzigzag(get_varint(is_)));
  const auto fid = get_varint(is_);
  if (fid == 0) {
    out.file = kNoFile;
  } else {
    out.file = static_cast<FileId>(fid - 1);
    max_file_seen_ = std::max(max_file_seen_, fid - 1);
    any_file_seen_ = true;
  }
  return true;
}

ChunkReader::Trailer ChunkReader::read_trailer() {
  require(at_trailer_, "trailer read before the record stream was drained");
  Trailer t;
  t.records = get_varint(is_);
  require(t.records == seen_, "record count mismatch in chunk stream");
  const auto npaths = get_varint(is_);
  require(npaths <= (1u << 24), "implausible path-table size");
  for (std::uint64_t i = 0; i < npaths; ++i) {
    const std::string s = get_string(is_);
    const FileId id = t.paths.intern(s);
    require(id == static_cast<FileId>(i), "duplicate path in chunk table");
  }
  require(!any_file_seen_ || max_file_seen_ < t.paths.size(),
          "bad path id in chunk stream");
  t.comm = detail::read_comm(is_, nranks_);
  return t;
}

}  // namespace pfsem::trace
