#include "pfsem/trace/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "pfsem/util/error.hpp"

namespace pfsem::trace {
namespace {

constexpr char kMagic[8] = {'P', 'F', 'S', 'E', 'M', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  require(static_cast<bool>(is), "truncated trace stream");
  return v;
}

void put_string(std::ostream& os, std::string_view s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto n = get<std::uint32_t>(is);
  require(n <= (1u << 20), "implausible string length in trace stream");
  std::string s(n, '\0');
  is.read(s.data(), n);
  require(static_cast<bool>(is), "truncated trace stream");
  return s;
}

// The v1 on-disk format predates path interning and stores the path string
// inline per record; the writer resolves ids against the bundle's table and
// the reader interns on the way in, so old fixtures load unchanged.
void put_record(std::ostream& os, const TraceBundle& bundle, const Record& r) {
  put(os, r.tstart);
  put(os, r.tend);
  put(os, r.rank);
  put(os, static_cast<std::uint8_t>(r.layer));
  put(os, static_cast<std::uint8_t>(r.origin));
  put(os, static_cast<std::uint16_t>(r.func));
  put(os, r.fd);
  put(os, r.ret);
  put(os, r.offset);
  put(os, r.count);
  put(os, r.flags);
  put_string(os, bundle.path_of(r));
}

Record get_record(std::istream& is, TraceBundle& bundle) {
  Record r;
  r.tstart = get<SimTime>(is);
  r.tend = get<SimTime>(is);
  r.rank = get<Rank>(is);
  r.layer = static_cast<Layer>(get<std::uint8_t>(is));
  r.origin = static_cast<Layer>(get<std::uint8_t>(is));
  const auto func = get<std::uint16_t>(is);
  require(func < kFuncCount, "bad function id in trace stream");
  r.func = static_cast<Func>(func);
  r.fd = get<std::int32_t>(is);
  r.ret = get<std::int64_t>(is);
  r.offset = get<Offset>(is);
  r.count = get<std::uint64_t>(is);
  r.flags = get<std::int32_t>(is);
  const std::string path = get_string(is);
  r.file = path.empty() ? kNoFile : bundle.intern(path);
  return r;
}

}  // namespace

void write_binary(const TraceBundle& bundle, std::ostream& os) {
  os.write(kMagic, sizeof kMagic);
  put(os, kVersion);
  put<std::int32_t>(os, bundle.nranks);
  put<std::uint64_t>(os, bundle.records.size());
  for (const auto& r : bundle.records) put_record(os, bundle, r);
  put<std::uint64_t>(os, bundle.comm.p2p.size());
  for (const auto& e : bundle.comm.p2p) {
    put(os, e.src);
    put(os, e.dst);
    put(os, e.tag);
    put(os, e.bytes);
    put(os, e.t_send_start);
    put(os, e.t_send_end);
    put(os, e.t_recv_start);
    put(os, e.t_recv_end);
  }
  put<std::uint64_t>(os, bundle.comm.collectives.size());
  for (const auto& c : bundle.comm.collectives) {
    put(os, static_cast<std::uint8_t>(c.kind));
    put(os, c.root);
    put<std::uint32_t>(os, static_cast<std::uint32_t>(c.arrivals.size()));
    for (const auto& a : c.arrivals) {
      put(os, a.rank);
      put(os, a.t_enter);
      put(os, a.t_exit);
    }
  }
  require(static_cast<bool>(os), "trace stream write failure");
}

TraceBundle read_binary(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof magic);
  require(static_cast<bool>(is) && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
          "not a pfsem trace stream");
  require(get<std::uint32_t>(is) == kVersion, "unsupported trace version");
  TraceBundle b;
  b.nranks = get<std::int32_t>(is);
  require(b.nranks > 0, "bad rank count in trace stream");
  const auto nrec = get<std::uint64_t>(is);
  // Counts are untrusted: reserve only a bounded prefix; a corrupted huge
  // count then fails as a clean truncated-stream error instead of OOM.
  b.records.reserve(std::min<std::uint64_t>(nrec, 1u << 20));
  for (std::uint64_t i = 0; i < nrec; ++i) {
    b.records.push_back(get_record(is, b));
  }
  const auto np2p = get<std::uint64_t>(is);
  b.comm.p2p.reserve(std::min<std::uint64_t>(np2p, 1u << 20));
  for (std::uint64_t i = 0; i < np2p; ++i) {
    P2PEvent e;
    e.src = get<Rank>(is);
    e.dst = get<Rank>(is);
    e.tag = get<std::int32_t>(is);
    e.bytes = get<std::uint64_t>(is);
    e.t_send_start = get<SimTime>(is);
    e.t_send_end = get<SimTime>(is);
    e.t_recv_start = get<SimTime>(is);
    e.t_recv_end = get<SimTime>(is);
    b.comm.p2p.push_back(e);
  }
  const auto ncoll = get<std::uint64_t>(is);
  b.comm.collectives.reserve(std::min<std::uint64_t>(ncoll, 1u << 20));
  for (std::uint64_t i = 0; i < ncoll; ++i) {
    CollectiveEvent c;
    c.kind = static_cast<CollectiveKind>(get<std::uint8_t>(is));
    c.root = get<Rank>(is);
    const auto na = get<std::uint32_t>(is);
    c.arrivals.reserve(std::min<std::uint32_t>(na, 1u << 16));
    for (std::uint32_t j = 0; j < na; ++j) {
      CollectiveArrival a;
      a.rank = get<Rank>(is);
      a.t_enter = get<SimTime>(is);
      a.t_exit = get<SimTime>(is);
      c.arrivals.push_back(a);
    }
    b.comm.collectives.push_back(std::move(c));
  }
  return b;
}

void write_text(const TraceBundle& bundle, std::ostream& os) {
  os << "# nranks=" << bundle.nranks << " records=" << bundle.records.size()
     << " p2p=" << bundle.comm.p2p.size()
     << " collectives=" << bundle.comm.collectives.size() << "\n";
  for (const auto& r : bundle.records) {
    os << r.tstart << ' ' << r.tend << " r" << r.rank << ' ' << to_string(r.layer)
       << '/' << to_string(r.origin) << ' ' << to_string(r.func);
    if (const auto path = bundle.path_of(r); !path.empty()) {
      os << " path=" << path;
    }
    if (r.fd >= 0) os << " fd=" << r.fd;
    os << " off=" << r.offset << " cnt=" << r.count << " flags=" << r.flags
       << " ret=" << r.ret << '\n';
  }
}

}  // namespace pfsem::trace
