#include "pfsem/trace/record.hpp"

#include <array>

namespace pfsem::trace {

std::string_view to_string(Layer layer) {
  switch (layer) {
    case Layer::Posix: return "POSIX";
    case Layer::MpiIo: return "MPI-IO";
    case Layer::Hdf5: return "HDF5";
    case Layer::NetCdf: return "NetCDF";
    case Layer::Adios: return "ADIOS";
    case Layer::Silo: return "Silo";
    case Layer::App: return "APP";
  }
  return "?";
}

std::string_view to_string(Func f) {
  static constexpr std::array<std::string_view, kFuncCount> names = {
#define PFSEM_NAME(name) #name,
      PFSEM_FUNC_LIST(PFSEM_NAME)
#undef PFSEM_NAME
  };
  const auto i = static_cast<std::size_t>(f);
  return i < names.size() ? names[i] : "?";
}

bool is_metadata_func(Func f) {
  switch (f) {
    case Func::mmap:
    case Func::msync:
    case Func::stat:
    case Func::lstat:
    case Func::fstat:
    case Func::getcwd:
    case Func::mkdir:
    case Func::rmdir:
    case Func::chdir:
    case Func::link:
    case Func::unlink:
    case Func::symlink:
    case Func::readlink:
    case Func::rename:
    case Func::chmod:
    case Func::chown:
    case Func::utime:
    case Func::opendir:
    case Func::readdir:
    case Func::closedir:
    case Func::rewinddir:
    case Func::mknod:
    case Func::fcntl:
    case Func::dup:
    case Func::dup2:
    case Func::pipe:
    case Func::mkfifo:
    case Func::umask:
    case Func::fileno:
    case Func::access:
    case Func::tmpfile:
    case Func::remove:
    case Func::truncate:
    case Func::ftruncate:
      return true;
    default:
      return false;
  }
}

}  // namespace pfsem::trace
