// pfsem — command-line front end to the toolkit.
//
//   pfsem list                         list bundled application models
//   pfsem run <config> [options]       simulate + full analysis report
//   pfsem trace <config> <out.trc>     simulate and save the trace
//   pfsem analyze <trace.trc>          analyze a saved trace
//   pfsem report <config|trace.trc>    full Recorder-style run report
//   pfsem advise <config|trace.trc>    weakest-safe-model verdict only
//   pfsem tune <config|trace.trc>      per-file consistency tuning report
//   pfsem remedy <config|trace.trc>    minimal commit insertions clearing
//                                      cross-process conflicts
//
// Options for run/trace/advise/tune on a config:
//   --ranks N        MPI ranks (default 64)
//   --skew NS        max injected clock skew in ns (default 0)
//   --seed S         workload seed
//   --faults SPEC    fault plan (see docs/faults.md), e.g.
//                    "eio:p=0.01,ops=write;crash:rank=3,t=2ms"
//   --mds N          metadata servers: run on the multi-server PfsCluster
//                    backend with N namespace shards (see docs/topology.md)
//   --ost M          data servers for the cluster backend
//   --stripe K       stripe block size, power of two; K/M suffixes are
//                    KiB/MiB (default 64K). Implies the cluster backend.
//   --fault-seed S   fault-injection seed (default 1)
//   --retries N      I/O retries per op after the first attempt (default 0)
//   --threads N      analysis threads (N >= 1; omit for all hardware
//                    threads; output is byte-identical for every N)
//   --capture MODE   capture path: "fast" (bucketed scheduler + per-rank
//                    emission arenas, default), "reference" (the retained
//                    pre-optimization heap scheduler + global emitter;
//                    bundles are byte-identical either way), or "auto"
//                    (pick the pair by rank count)
//   --stream         report/trace only: chunked streaming pipeline —
//                    records spill to a bounded store as they are
//                    captured and the analysis consumes them
//                    incrementally, so peak memory stays flat in rank
//                    count. Output is byte-identical to the default
//                    materialized path (see docs/performance.md).
//   --chunk-records N  streaming chunk size in records (default 65536)
//   --spill-mem MB   in-memory spill ceiling before chunks go to a temp
//                    file (default 64)
//   --obs            observability: print the run's metrics summary
//   --obs-out FILE   write the stable metrics dump (byte-identical across
//                    --threads and --capture; see docs/observability.md)
//   --obs-trace FILE write a Chrome trace_event JSON timeline (load in
//                    ui.perfetto.dev or chrome://tracing)

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "pfsem/exec/pool.hpp"
#include "pfsem/obs/obs.hpp"

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/advisor.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/happens_before.hpp"
#include "pfsem/core/metadata_census.hpp"
#include "pfsem/core/metadata_conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/pattern.hpp"
#include "pfsem/core/remedy.hpp"
#include "pfsem/core/report.hpp"
#include "pfsem/core/stream_analyze.hpp"
#include "pfsem/core/tuning.hpp"
#include "pfsem/trace/serialize.hpp"
#include "pfsem/trace/spill.hpp"
#include "pfsem/util/table.hpp"

namespace {

using namespace pfsem;

struct Options {
  int ranks = 64;
  SimDuration skew = 0;
  std::uint64_t seed = 42;
  bool strict = false;   // remedy: include same-process conflicts
  bool compact = false;  // trace: write the compact format
  std::string faults;    // fault plan spec ("" = fault-free)
  std::uint64_t fault_seed = 1;
  // Multi-server topology (--mds/--ost/--stripe); any flag selects the
  // PfsCluster backend (fault-free output is byte-identical to Pfs).
  bool cluster = false;
  int mds = 1;
  int ost = 1;
  Offset stripe = 64u << 10;
  int retries = 0;  // retries per op after the first attempt
  int threads = 0;  // analysis threads (0 = all hardware threads)
  bool capture_reference = false;  // run the retained reference capture path
  bool capture_auto = false;       // resolve the capture pair by rank count
  // Chunked streaming pipeline (--stream; report and trace only).
  bool stream = false;
  std::size_t chunk_records = std::size_t{1} << 16;
  std::size_t spill_mem_mb = 64;
  // Observability (--obs / --obs-out / --obs-trace).
  bool obs_print = false;     // print the metrics summary
  std::string obs_out;        // stable metrics dump destination ("" = none)
  std::string obs_trace;      // Chrome trace JSON destination ("" = none)
  // The run context outlives simulation AND analysis (shared so Options
  // stays copyable; obs::Run itself is not).
  std::shared_ptr<obs::Run> obs_run;
  // Open for the whole run when --stream + --obs-trace: the tracer
  // flushes spans into it at chunk boundaries instead of buffering.
  std::shared_ptr<std::ofstream> obs_trace_os;
  // Filled by obtain() when the run executed under fault injection.
  bool ran_faults = false;
  fault::FaultStats fault_stats;
};

int usage() {
  std::cerr << "usage: pfsem <list|run|trace|analyze|advise|tune> [args]\n"
               "  pfsem list\n"
               "  pfsem run <config> [--ranks N] [--skew NS] [--seed S]\n"
               "            [--faults SPEC] [--fault-seed S] [--retries N]\n"
               "  pfsem trace <config> <out.trc> [--compact] [options]\n"
               "  pfsem analyze <trace.trc>\n"
               "  pfsem report <config|trace.trc> [options]\n"
               "  pfsem advise <config|trace.trc> [options]\n"
               "  pfsem tune <config|trace.trc> [options]\n"
               "  pfsem remedy <config|trace.trc> [--strict] [options]\n"
               "common options: --threads N (N >= 1; omit for all cores),\n"
               "                --capture fast|reference|auto, --obs,\n"
               "                --obs-out <file>, --obs-trace <file>,\n"
               "                --mds N --ost M --stripe K (multi-server "
               "cluster backend)\n"
               "report/trace:   --stream [--chunk-records N] [--spill-mem "
               "MB]\n"
               "                (chunked streaming pipeline; output is "
               "byte-identical)\n";
  return 2;
}

/// Parse a --stripe value: BYTES with an optional K/M (KiB/MiB) suffix;
/// must come out a positive power of two.
Offset parse_stripe(const std::string& s) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    throw Error("--stripe wants BYTES[K|M], got '" + s + "'");
  }
  const std::string suffix = s.substr(pos);
  if (suffix == "K" || suffix == "k") v <<= 10;
  else if (suffix == "M" || suffix == "m") v <<= 20;
  else if (!suffix.empty()) {
    throw Error("--stripe wants BYTES[K|M], got '" + s + "'");
  }
  if (v == 0 || (v & (v - 1)) != 0) {
    throw Error("--stripe wants a positive power-of-two block size, got '" +
                s + "'");
  }
  return static_cast<Offset>(v);
}

Options parse_options(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + a);
      return argv[++i];
    };
    if (a == "--ranks") opt.ranks = std::stoi(next());
    else if (a == "--skew") opt.skew = std::stoll(next());
    else if (a == "--seed") opt.seed = std::stoull(next());
    else if (a == "--strict") opt.strict = true;
    else if (a == "--compact") opt.compact = true;
    else if (a == "--faults") opt.faults = next();
    else if (a == "--fault-seed") opt.fault_seed = std::stoull(next());
    else if (a == "--mds") {
      opt.mds = std::stoi(next());
      opt.cluster = true;
      if (opt.mds < 1) {
        throw Error("--mds wants at least one metadata server, got " +
                    std::to_string(opt.mds));
      }
    }
    else if (a == "--ost") {
      opt.ost = std::stoi(next());
      opt.cluster = true;
      if (opt.ost < 1) {
        throw Error("--ost wants at least one data server, got " +
                    std::to_string(opt.ost));
      }
    }
    else if (a == "--stripe") {
      opt.stripe = parse_stripe(next());
      opt.cluster = true;
    }
    else if (a == "--retries") opt.retries = std::stoi(next());
    else if (a == "--threads") {
      opt.threads = std::stoi(next());
      if (opt.threads <= 0) {
        throw Error("--threads wants a positive thread count, got " +
                    std::to_string(opt.threads) +
                    " (omit the flag to use all hardware threads)");
      }
    }
    else if (a == "--capture") {
      const std::string mode = next();
      if (mode == "reference") opt.capture_reference = true;
      else if (mode == "auto") opt.capture_auto = true;
      else if (mode != "fast") {
        throw Error("--capture wants fast|reference|auto");
      }
    }
    else if (a == "--stream") opt.stream = true;
    else if (a == "--chunk-records") {
      const long long v = std::stoll(next());
      if (v < 1) {
        throw Error("--chunk-records wants a positive record count, got " +
                    std::to_string(v));
      }
      opt.chunk_records = static_cast<std::size_t>(v);
    }
    else if (a == "--spill-mem") {
      const long long v = std::stoll(next());
      if (v < 1) {
        throw Error("--spill-mem wants a positive MiB ceiling, got " +
                    std::to_string(v));
      }
      opt.spill_mem_mb = static_cast<std::size_t>(v);
    }
    else if (a == "--obs") opt.obs_print = true;
    else if (a == "--obs-out") opt.obs_out = next();
    else if (a == "--obs-trace") opt.obs_trace = next();
    else throw Error("unknown option " + a);
  }
  if (opt.obs_print || !opt.obs_out.empty() || !opt.obs_trace.empty()) {
    opt.obs_run = std::make_shared<obs::Run>(
        obs::Config{.metrics = true, .tracing = !opt.obs_trace.empty()});
    // The analysis pool is wired globally (pools are transient objects
    // created inside the analysis functions).
    exec::set_observer(opt.obs_run.get());
    if (opt.stream && !opt.obs_trace.empty()) {
      // Streaming runs flush spans at chunk boundaries, so the trace
      // file must be open for the whole run.
      opt.obs_trace_os = std::make_shared<std::ofstream>(opt.obs_trace);
      if (!*opt.obs_trace_os) throw Error("cannot write " + opt.obs_trace);
      opt.obs_run->tracer.stream_to(opt.obs_trace_os.get());
    }
  }
  return opt;
}

/// Write the --obs-out / --obs-trace artifacts and print the summary.
/// Call once per command, after all analysis is done.
void finish_obs(const Options& opt) {
  if (opt.obs_run == nullptr) return;
  if (!opt.obs_out.empty()) {
    std::ofstream os(opt.obs_out);
    opt.obs_run->metrics.dump(os);
    if (!os) throw Error("cannot write " + opt.obs_out);
  }
  if (!opt.obs_trace.empty()) {
    if (opt.obs_run->tracer.streaming()) {
      opt.obs_run->tracer.finish_stream();
      if (!*opt.obs_trace_os) throw Error("cannot write " + opt.obs_trace);
    } else {
      std::ofstream os(opt.obs_trace);
      opt.obs_run->tracer.write_chrome_json(os);
      if (!os) throw Error("cannot write " + opt.obs_trace);
    }
  }
  if (opt.obs_print) {
    std::cout << "\n" << obs::summary(*opt.obs_run);
  }
  exec::set_observer(nullptr);
}

/// Everything a named-config simulation needs, shared between the
/// materialized and the streaming entry points.
struct SimSetup {
  apps::AppConfig cfg;
  std::vector<sim::ClockModel> clocks;
  apps::FaultSetup setup;
  bool has_faults = false;
};

SimSetup make_setup(Options& opt) {
  SimSetup s;
  s.cfg.nranks = opt.ranks;
  s.cfg.ranks_per_node = std::max(1, opt.ranks / 8);
  s.cfg.seed = opt.seed;
  s.cfg.obs = opt.obs_run.get();
  s.cfg.stream_chunk_records = opt.chunk_records;
  if (opt.capture_auto) {
    s.cfg.capture = trace::CaptureMode::Auto;
  } else if (opt.capture_reference) {
    s.cfg.scheduler = sim::SchedulerKind::Heap;
    s.cfg.capture = trace::CaptureMode::Reference;
  }
  if (opt.skew > 0) {
    s.clocks = sim::make_skewed_clocks(opt.ranks, opt.skew, 100.0, opt.seed);
  }
  if (!opt.faults.empty()) {
    s.setup.plan = fault::FaultPlan::parse(opt.faults);
    s.setup.seed = opt.fault_seed;
    s.setup.retry.max_attempts = opt.retries + 1;
    s.has_faults = true;
    opt.ran_faults = true;
  }
  return s;
}

vfs::ClusterConfig make_cluster_config(const Options& opt) {
  vfs::ClusterConfig ccfg;
  ccfg.mds_count = opt.mds;
  ccfg.ost_count = opt.ost;
  ccfg.stripe = opt.stripe;
  return ccfg;
}

/// Obtain a trace either by simulating a named config or loading a file.
trace::TraceBundle obtain(const std::string& what, Options& opt) {
  if (const auto* info = apps::find_app(what)) {
    SimSetup s = make_setup(opt);
    const apps::FaultSetup* setup_ptr = s.has_faults ? &s.setup : nullptr;
    if (opt.cluster) {
      return apps::run_app_cluster(*info, s.cfg, make_cluster_config(opt),
                                   std::move(s.clocks), setup_ptr,
                                   &opt.fault_stats);
    }
    return apps::run_app(*info, s.cfg, {}, std::move(s.clocks), setup_ptr,
                         &opt.fault_stats);
  }
  require(opt.faults.empty(),
          "--faults needs a named config to simulate, not a saved trace");
  require(!opt.cluster,
          "--mds/--ost/--stripe need a named config to simulate, not a "
          "saved trace");
  std::ifstream is(what, std::ios::binary);
  if (!is) throw Error("'" + what + "' is neither a known config nor a readable trace file");
  // Auto-detect the format by magic.
  char magic[8] = {};
  is.read(magic, sizeof magic);
  is.seekg(0);
  if (std::string_view(magic, 8) == "PFSEMTR2") return trace::read_compact(is);
  return trace::read_binary(is);
}

/// Simulate a named config in streaming mode: records flow into `sink`
/// chunk by chunk and only the StreamMeta survives the harness.
trace::StreamMeta stream_config(const apps::AppInfo& info, Options& opt,
                                trace::StreamSink& sink) {
  SimSetup s = make_setup(opt);
  const apps::FaultSetup* setup_ptr = s.has_faults ? &s.setup : nullptr;
  if (opt.cluster) {
    return apps::run_app_cluster_stream(info, sink, s.cfg,
                                        make_cluster_config(opt),
                                        std::move(s.clocks), setup_ptr,
                                        &opt.fault_stats);
  }
  return apps::run_app_stream(info, sink, s.cfg, {}, std::move(s.clocks),
                              setup_ptr, &opt.fault_stats);
}

/// Spill a named config's records to a bounded store, then drain them.
/// The harness (and the simulated file system) is destroyed before
/// `drain` runs, so capture and analysis memory never coexist.
template <typename Drain>
auto spill_and_drain(const apps::AppInfo& info, Options& opt, Drain drain) {
  trace::SpillStore store(opt.spill_mem_mb << 20);
  trace::StreamMeta meta;
  {
    trace::ChunkWriter writer(store, opt.ranks);
    meta = stream_config(info, opt, writer);
    writer.finish(meta);
  }
  const auto in = store.open_read();
  trace::ChunkReader reader(*in);
  return drain(std::move(meta), reader);
}

/// `pfsem report <config> --stream`: full report without ever holding
/// the record array; byte-identical to the materialized path.
core::RunReport stream_report_config(const apps::AppInfo& info, Options& opt) {
  return spill_and_drain(
      info, opt, [&](trace::StreamMeta meta, trace::ChunkReader& reader) {
        core::StreamAnalyzer analyzer(meta.nranks, std::move(meta.paths),
                                      std::move(meta.rank_posix_counts),
                                      meta.file_op_counts);
        trace::Record rec;
        while (reader.next(rec)) analyzer.feed(rec);
        (void)reader.read_trailer();  // validates the framing end to end
        auto res = analyzer.finish();
        const auto pairs = core::detect_file_overlaps(res.log, {}, opt.threads);
        const auto conflicts =
            core::detect_conflicts(res.log, pairs, {.threads = opt.threads});
        return core::assemble_report(std::move(res.stats), res.records,
                                     res.log.nranks, res.log, conflicts,
                                     opt.threads);
      });
}

/// `pfsem report <trace.trc> --stream`: analyze a compact-v2 trace file
/// incrementally. Two passes: the first counts per-rank POSIX records so
/// the analyzer's reorder buffer can retire finished ranks.
core::RunReport stream_report_file(const std::string& path, Options& opt) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw Error("'" + path +
                "' is neither a known config nor a readable trace file");
  }
  char magic[8] = {};
  is.read(magic, sizeof magic);
  is.clear();
  is.seekg(0);
  require(std::string_view(magic, 8) == "PFSEMTR2",
          "--stream on a trace file needs the compact format "
          "(pfsem trace <config> <out.trc> --compact)");
  require(opt.faults.empty(),
          "--faults needs a named config to simulate, not a saved trace");
  require(!opt.cluster,
          "--mds/--ost/--stripe need a named config to simulate, not a "
          "saved trace");
  std::vector<std::uint64_t> posix_counts;
  {
    trace::CompactReader pass1(is);
    posix_counts.assign(static_cast<std::size_t>(pass1.nranks()), 0);
    trace::Record rec;
    while (pass1.next(rec)) {
      if (rec.layer == trace::Layer::Posix) {
        ++posix_counts[static_cast<std::size_t>(rec.rank)];
      }
    }
  }
  is.clear();
  is.seekg(0);
  trace::CompactReader reader(is);
  core::StreamAnalyzer analyzer(reader.nranks(), reader.paths(),
                                std::move(posix_counts));
  trace::Record rec;
  while (reader.next(rec)) analyzer.feed(rec);
  (void)reader.read_comm();  // validates the tail of the file
  auto res = analyzer.finish();
  const auto pairs = core::detect_file_overlaps(res.log, {}, opt.threads);
  const auto conflicts =
      core::detect_conflicts(res.log, pairs, {.threads = opt.threads});
  return core::assemble_report(std::move(res.stats), res.records,
                               res.log.nranks, res.log, conflicts,
                               opt.threads);
}

void print_report(const trace::TraceBundle& bundle, int threads) {
  const auto log = core::reconstruct_accesses(bundle);
  // Sweep every file once; conflict detection reuses the pairs.
  const auto pairs = core::detect_file_overlaps(log, {}, threads);
  const auto report = core::detect_conflicts(log, pairs, {.threads = threads});
  const auto pattern = core::classify_high_level(log, bundle.nranks);
  const auto local = core::local_pattern(log, threads);
  const auto global = core::global_pattern(log, threads);
  const auto census = core::census_metadata(bundle);
  core::HappensBefore hb(bundle.comm, bundle.nranks);
  const auto advice = core::advise(report, &hb, threads);
  const auto meta =
      core::detect_metadata_dependencies(bundle, &hb, {.threads = threads});

  std::cout << "ranks: " << bundle.nranks
            << "   records: " << bundle.records.size()
            << "   files: " << log.file_count() << "\n";
  std::cout << "pattern: " << pattern.xy << " "
            << core::to_string(pattern.layout) << " (dominant "
            << pattern.dominant_file << ")\n";
  std::cout << "transitions  local: " << fmt_pct(local.frac_consecutive())
            << " consecutive / " << fmt_pct(local.frac_random())
            << " random   global: " << fmt_pct(global.frac_consecutive())
            << " consecutive / " << fmt_pct(global.frac_random()) << " random\n";
  auto classes = [](const core::ConflictMatrix& m) {
    std::string s;
    if (m.waw_s) s += "WAW-S ";
    if (m.waw_d) s += "WAW-D ";
    if (m.raw_s) s += "RAW-S ";
    if (m.raw_d) s += "RAW-D ";
    return s.empty() ? std::string("none") : s;
  };
  std::cout << "conflicts   session: " << classes(report.session)
            << "  commit: " << classes(report.commit) << "\n";
  std::cout << "data races: " << (advice.race_free ? "none" : "PRESENT") << "\n";
  std::cout << "metadata deps: " << meta.cross_process << " cross-process, "
            << meta.unsynchronized << " not MPI-ordered\n";
  std::cout << "metadata ops used: " << census.distinct_ops() << "\n";
  std::cout << "verdict: weakest safe model = " << vfs::to_string(advice.weakest)
            << "\n  " << advice.rationale << "\n";
}

void print_tuning(const trace::TraceBundle& bundle, int threads) {
  const auto log = core::reconstruct_accesses(bundle);
  const auto tuning = core::per_file_tuning(log, threads);
  Table t({"file", "weakest model", "bytes", "session pairs", "commit pairs"});
  for (const auto& f : tuning.files) {
    t.add_row({f.path, vfs::to_string(f.weakest), std::to_string(f.bytes),
               std::to_string(f.session_pairs), std::to_string(f.commit_pairs)});
  }
  t.print(std::cout);
  std::cout << "\n" << fmt_pct(tuning.relaxed_fraction())
            << " of accessed bytes tolerate weaker-than-POSIX semantics; "
            << fmt_pct(tuning.eventual_fraction())
            << " even tolerate eventual consistency.\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "list") {
      Table t({"Configuration", "Application", "I/O Library"});
      for (const auto& info : apps::registry()) {
        t.add_row({info.name, info.app, info.iolib});
      }
      t.print(std::cout);
      return 0;
    }
    if (cmd == "run" && argc >= 3) {
      auto opt = parse_options(argc, argv, 3);
      require(!opt.stream, "--stream is supported by report and trace only");
      print_report(obtain(argv[2], opt), opt.threads);
      if (opt.ran_faults) {
        std::cout << "\n";
        core::print_degraded(apps::degraded_summary(opt.fault_stats),
                             std::cout);
      }
      finish_obs(opt);
      return 0;
    }
    if (cmd == "trace" && argc >= 4) {
      auto opt = parse_options(argc, argv, 4);
      std::uint64_t records = 0;
      if (opt.stream) {
        require(opt.compact,
                "trace --stream writes the compact format; add --compact");
        const auto* info = apps::find_app(argv[2]);
        require(info != nullptr,
                "trace --stream simulates a named config (got '" +
                    std::string(argv[2]) + "')");
        std::ofstream os(argv[3], std::ios::binary);
        spill_and_drain(
            *info, opt, [&](trace::StreamMeta meta, trace::ChunkReader& rd) {
              trace::write_compact_streamed(
                  meta.nranks, meta.paths, meta.comm, meta.records,
                  [&](const trace::RecordEmit& emit) {
                    trace::Record rec;
                    while (rd.next(rec)) emit(rec);
                    (void)rd.read_trailer();
                  },
                  os);
              records = meta.records;
              return 0;
            });
        if (!os) throw Error(std::string("cannot write ") + argv[3]);
      } else {
        const auto bundle = obtain(argv[2], opt);
        std::ofstream os(argv[3], std::ios::binary);
        if (opt.compact) {
          trace::write_compact(bundle, os);
        } else {
          trace::write_binary(bundle, os);
        }
        if (!os) throw Error(std::string("cannot write ") + argv[3]);
        records = bundle.records.size();
      }
      std::cout << "wrote " << records << " records to " << argv[3] << "\n";
      if (opt.ran_faults) {
        core::print_degraded(apps::degraded_summary(opt.fault_stats),
                             std::cout);
      }
      finish_obs(opt);
      return 0;
    }
    if (cmd == "analyze" && argc >= 3) {
      auto opt = parse_options(argc, argv, 3);
      require(!opt.stream, "--stream is supported by report and trace only");
      print_report(obtain(argv[2], opt), opt.threads);
      finish_obs(opt);
      return 0;
    }
    if (cmd == "report" && argc >= 3) {
      auto opt = parse_options(argc, argv, 3);
      core::RunReport rep;
      if (opt.stream) {
        const auto* info = apps::find_app(argv[2]);
        rep = info != nullptr ? stream_report_config(*info, opt)
                              : stream_report_file(argv[2], opt);
      } else {
        const auto bundle = obtain(argv[2], opt);
        const auto log = core::reconstruct_accesses(bundle);
        const auto pairs = core::detect_file_overlaps(log, {}, opt.threads);
        const auto conflicts =
            core::detect_conflicts(log, pairs, {.threads = opt.threads});
        rep = core::build_report(bundle, log, conflicts, opt.threads);
      }
      if (opt.ran_faults) {
        rep.degraded = apps::degraded_summary(opt.fault_stats);
      }
      if (opt.obs_run != nullptr && opt.obs_print) {
        // Rendered into the report body (instead of the trailing print).
        rep.obs_summary = obs::summary(*opt.obs_run);
        opt.obs_print = false;
      }
      core::print_report(rep, std::cout);
      finish_obs(opt);
      return 0;
    }
    if (cmd == "advise" && argc >= 3) {
      auto opt = parse_options(argc, argv, 3);
      require(!opt.stream, "--stream is supported by report and trace only");
      const auto bundle = obtain(argv[2], opt);
      const auto log = core::reconstruct_accesses(bundle);
      const auto report = core::detect_conflicts(
          log, core::ConflictOptions{.threads = opt.threads});
      core::HappensBefore hb(bundle.comm, bundle.nranks);
      const auto advice = core::advise(report, &hb, opt.threads);
      std::cout << vfs::to_string(advice.weakest) << "\n" << advice.rationale
                << "\n";
      finish_obs(opt);
      return 0;
    }
    if (cmd == "tune" && argc >= 3) {
      auto opt = parse_options(argc, argv, 3);
      require(!opt.stream, "--stream is supported by report and trace only");
      const auto bundle = obtain(argv[2], opt);
      print_tuning(bundle, opt.threads);
      finish_obs(opt);
      return 0;
    }
    if (cmd == "remedy" && argc >= 3) {
      auto opt = parse_options(argc, argv, 3);
      require(!opt.stream, "--stream is supported by report and trace only");
      const auto bundle = obtain(argv[2], opt);
      const auto log = core::reconstruct_accesses(bundle);
      const core::RemedyOptions ropt{.strict = opt.strict};
      const auto plan = core::suggest_commits(log, ropt);
      if (plan.commits.empty()) {
        std::cout << "no commit insertions needed: no cross-process "
                     "commit-semantics conflicts (or the program already "
                     "commits in every window)\n";
      } else {
        Table t({"file", "process", "insert fsync after (s)",
                 "and before (s)", "pairs cleared"});
        for (const auto& c : plan.commits) {
          t.add_row({c.path, std::to_string(c.rank),
                     fmt(to_seconds(c.after), 6), fmt(to_seconds(c.before), 6),
                     std::to_string(c.pairs_cleared)});
        }
        t.print(std::cout);
        const auto left = core::verify_plan(log, plan, ropt);
        std::cout << "\nafter applying the plan: "
                  << (left.any() ? "conflicts REMAIN" : "no conflicts remain")
                  << "\n";
      }
      if (plan.uncoverable > 0) {
        std::cout << plan.uncoverable
                  << " pair(s) have no insertion window (accesses adjacent "
                     "in time)\n";
      }
      finish_obs(opt);
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "pfsem: " << e.what() << "\n";
    return 1;
  }
}
