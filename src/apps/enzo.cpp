// ENZO non-cosmological collapse test (Table 5).
//
// N-N consecutive: at every data dump each rank writes its own HDF5 file
// (grid data per dataset). ENZO's HDF5 usage re-reads the symbol-table
// node before appending each new dataset entry; the read overlaps the
// entries the same process wrote earlier with no commit in between —
// the RAW-S conflict of Table 4 (present under session *and* commit
// semantics).

#include <string>

#include "pfsem/apps/programs.hpp"
#include "pfsem/iolib/hdf5_lite.hpp"
#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::apps {

void run_enzo(Harness& h) {
  const auto& cfg = h.config();
  iolib::H5Options opt;
  opt.metadata_readback = true;  // the RAW-S source
  iolib::Hdf5Lite h5(h.ctx(), opt);
  iolib::PosixIo posix(h.ctx());

  h.preload("CollapseTest.enzo", 8192);
  const int dumps = cfg.steps / cfg.checkpoint_every;
  constexpr int kGridsPerFile = 8;

  h.run([&](Rank r) -> sim::Task<void> {
    // Every rank reads the shared parameter file at startup.
    const int pfd = co_await posix.open(r, "CollapseTest.enzo", trace::kRdOnly);
    co_await posix.read(r, pfd, 8192);
    co_await posix.close(r, pfd);
    co_await h.world().barrier(r);

    for (int d = 0; d < dumps; ++d) {
      for (int s = 0; s < cfg.checkpoint_every; ++s) {
        co_await h.compute(r, 150'000);
        co_await h.world().allreduce(r, 8);
      }
      const std::string path = "DD" + std::to_string(1000 + d) + "/data" +
                               std::to_string(1000 + d) + ".cpu" +
                               std::to_string(10000 + r);
      const mpi::Group self{r};
      auto* f = co_await h5.create(r, path, self);
      const std::uint64_t grid_bytes = cfg.bytes_per_rank / kGridsPerFile;
      for (int g = 0; g < kGridsPerFile; ++g) {
        const std::string name = "Grid" + std::to_string(g) + "/Density";
        co_await h5.dataset_create(r, f, name, grid_bytes);
        co_await h5.dataset_write(r, f, name, 0, grid_bytes);
      }
      co_await h5.close(r, f);
      co_await h.world().barrier(r);
    }
  });
}

}  // namespace pfsem::apps
