// LBANN autoencoder on CIFAR-10 (Table 5; Section 6.2.3).
//
// The read-intensive outlier of the study: every rank reads the *entire*
// dataset file into memory with plain POSIX read() calls. Locally each
// rank's accesses are perfectly consecutive (byte 0 to EOF); globally the
// interleaving of 64 concurrent readers makes the PFS-side pattern look
// largely random (Figure 1). N-1 consecutive in Table 3; no conflicts.

#include <string>

#include "pfsem/apps/programs.hpp"
#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::apps {

void run_lbann(Harness& h) {
  const auto& cfg = h.config();
  iolib::PosixIo posix(h.ctx());
  const Offset dataset_bytes =
      std::max<Offset>(cfg.bytes_per_rank * 64, 8 * 1024 * 1024);
  constexpr Offset kChunk = 256 * 1024;
  h.preload("cifar10_train.bin", dataset_bytes);
  const int epochs = 2;

  h.run([&](Rank r) -> sim::Task<void> {
    // Data ingestion: every rank streams the full dataset.
    const int fd = co_await posix.open(r, "cifar10_train.bin", trace::kRdOnly);
    for (Offset off = 0; off < dataset_bytes; off += kChunk) {
      co_await posix.read(r, fd, std::min(kChunk, dataset_bytes - off));
      co_await h.compute(r, 20'000);  // decode/normalize
    }
    co_await posix.close(r, fd);
    co_await h.world().barrier(r);

    // Training epochs: allreduce of gradients per mini-batch.
    for (int e = 0; e < epochs; ++e) {
      for (int batch = 0; batch < 20; ++batch) {
        co_await h.compute(r, 80'000);
        co_await h.world().allreduce(r, 64 * 1024);
      }
      // Rank 0 saves the model between epochs (small, conflict-free).
      if (r == 0) {
        const int mfd = co_await posix.open(
            r, "model.epoch." + std::to_string(e),
            trace::kCreate | trace::kTrunc | trace::kWrOnly);
        co_await posix.write(r, mfd, 512 * 1024);
        co_await posix.close(r, mfd);
      }
      co_await h.world().barrier(r);
    }
  });
}

}  // namespace pfsem::apps
