// POSIX-based scientific applications: NWChem, GAMESS, Nek5000, GTC,
// MILC-QCD (serial + parallel), VASP.
//
// Conflict signatures (Table 4):
//   NWChem — WAW-S and RAW-S: rank 0 rewinds the trajectory file each
//     print step to re-read and rewrite the frame-count header in place.
//   GAMESS — WAW-S: each writer rank rewinds its dictionary file (F10) to
//     rewrite the master index record.
//   Nek5000, GTC, MILC, VASP — conflict-free.

#include <string>

#include "pfsem/apps/programs.hpp"
#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::apps {

void run_nwchem(Harness& h) {
  const auto& cfg = h.config();
  iolib::PosixIo posix(h.ctx());
  h.preload("dynamics.nw", 4096);
  constexpr Offset kHeader = 4096;
  const int data_steps = 30;
  const int print_every = 5;

  h.run([&](Rank r) -> sim::Task<void> {
    const int pfd = co_await posix.open(r, "dynamics.nw", trace::kRdOnly);
    co_await posix.read(r, pfd, 4096);
    co_await posix.close(r, pfd);
    co_await h.world().barrier(r);

    // N-N: every rank streams integral blocks into its own scratch file.
    const int aofd = co_await posix.open(
        r, "nwchem.aoints." + std::to_string(r),
        trace::kCreate | trace::kTrunc | trace::kWrOnly);

    // 1-1: rank 0 owns the trajectory file.
    int trj = -1;
    if (r == 0) {
      trj = co_await posix.open(r, "dynamics.trj",
                                trace::kCreate | trace::kTrunc | trace::kRdWr);
      co_await posix.write(r, trj, kHeader);  // initial header
    }

    for (int step = 1; step <= data_steps; ++step) {
      co_await h.compute(r, 250'000);
      co_await h.world().allreduce(r, 32);  // energy terms
      co_await posix.write(r, aofd, cfg.bytes_per_rank / data_steps);
      // Solute coordinates go to the trajectory every step (Table 5).
      co_await h.world().gather(r, 0, 2048);
      if (r == 0) {
        co_await posix.lseek(r, trj, 0, trace::kSeekEnd);
        co_await posix.write(r, trj, 2048 * static_cast<std::uint64_t>(cfg.nranks));
        if (step % print_every == 0) {
          // Re-read and rewrite the header in place: RAW-S then WAW-S,
          // with no commit in between.
          co_await posix.lseek(r, trj, 0, trace::kSeekSet);
          co_await posix.read(r, trj, kHeader);
          co_await posix.lseek(r, trj, 0, trace::kSeekSet);
          co_await posix.write(r, trj, kHeader);
          co_await posix.lseek(r, trj, 0, trace::kSeekEnd);
        }
      }
    }
    co_await posix.close(r, aofd);
    if (r == 0) co_await posix.close(r, trj);
  });
}

void run_gamess(Harness& h) {
  const auto& cfg = h.config();
  iolib::PosixIo posix(h.ctx());
  h.preload("exam01.inp", 2048);
  constexpr Offset kMasterIndex = 2048;
  const int writers_stride = 8;  // M = nranks/8 I/O ranks
  const int iterations = 10;

  h.run([&](Rank r) -> sim::Task<void> {
    if (r == 0) {
      const int fd = co_await posix.open(r, "exam01.inp", trace::kRdOnly);
      co_await posix.read(r, fd, 2048);
      co_await posix.close(r, fd);
    }
    co_await h.world().bcast(r, 0, 2048);

    const bool writer = r % writers_stride == 0;
    int fd = -1;
    if (writer) {
      fd = co_await posix.open(r, "gamess.F10." + std::to_string(r),
                               trace::kCreate | trace::kTrunc | trace::kRdWr);
      co_await posix.write(r, fd, kMasterIndex);  // initial master index
    }
    for (int it = 0; it < iterations; ++it) {
      co_await h.compute(r, 400'000);
      co_await h.world().allreduce(r, 64);  // SCF density
      if (!writer) continue;
      // Several dictionary records stream out per SCF iteration (record
      // size stays >= 8 KiB so records read as data, not metadata)...
      const std::uint64_t per_iter = cfg.bytes_per_rank / iterations;
      const int nrecs = std::max<int>(1, static_cast<int>(per_iter / 8192));
      co_await posix.lseek(r, fd, 0, trace::kSeekEnd);
      for (int rec = 0; rec < nrecs; ++rec) {
        co_await posix.write(r, fd, per_iter / static_cast<std::uint64_t>(nrecs));
      }
      // ...then the master index record is rewritten in place: WAW-S.
      co_await posix.lseek(r, fd, 0, trace::kSeekSet);
      co_await posix.write(r, fd, kMasterIndex);
    }
    if (writer) co_await posix.close(r, fd);
  });
}

void run_nek5000(Harness& h) {
  const auto& cfg = h.config();
  iolib::PosixIo posix(h.ctx());
  h.preload("eddy_uv.rea", 32768);
  const int steps = 1000;
  const int checkpoint_every = 100;

  h.run([&](Rank r) -> sim::Task<void> {
    if (r == 0) {
      const int fd = co_await posix.open(r, "eddy_uv.rea", trace::kRdOnly);
      co_await posix.read(r, fd, 32768);
      co_await posix.close(r, fd);
    }
    co_await h.world().bcast(r, 0, 32768);

    int ckpt = 0;
    for (int step = 1; step <= steps; ++step) {
      co_await h.compute(r, 30'000);
      if (step % 10 == 0) co_await h.world().allreduce(r, 16);  // error norm
      if (step % checkpoint_every != 0) continue;
      co_await h.world().gather(r, 0, cfg.bytes_per_rank / 4);
      if (r == 0) {
        const int fd = co_await posix.open(
            r, "eddy_uv0.f" + std::to_string(10000 + ckpt),
            trace::kCreate | trace::kTrunc | trace::kWrOnly);
        // Velocity + pressure fields, streamed sequentially.
        for (int field = 0; field < 3; ++field) {
          co_await posix.write(
              r, fd,
              cfg.bytes_per_rank / 4 * static_cast<std::uint64_t>(cfg.nranks) / 3);
        }
        co_await posix.close(r, fd);
      }
      co_await h.world().barrier(r);
      ++ckpt;
    }
  });
}

void run_gtc(Harness& h) {
  const auto& cfg = h.config();
  iolib::PosixIo posix(h.ctx());
  h.preload("gtc.input", 2048);

  h.run([&](Rank r) -> sim::Task<void> {
    if (r == 0) {
      const int fd = co_await posix.open(r, "gtc.input", trace::kRdOnly);
      co_await posix.read(r, fd, 2048);
      co_await posix.close(r, fd);
    }
    co_await h.world().bcast(r, 0, 2048);

    int hist = -1;
    if (r == 0) {
      hist = co_await posix.open(r, "history.out",
                                 trace::kCreate | trace::kTrunc | trace::kWrOnly);
    }
    for (int step = 1; step <= cfg.steps; ++step) {
      co_await h.compute(r, 120'000);
      co_await h.world().reduce(r, 0, 128);  // diagnostics to rank 0
      if (r == 0) co_await posix.write(r, hist, 8192);
      if (step % (cfg.checkpoint_every * 2) == 0) {
        co_await h.world().gather(r, 0, cfg.bytes_per_rank / 2);
        if (r == 0) {
          const int fd = co_await posix.open(
              r, "restart_dir/DATA_RESTART." + std::to_string(step),
              trace::kCreate | trace::kTrunc | trace::kWrOnly);
          co_await posix.write(
              r, fd,
              cfg.bytes_per_rank / 2 * static_cast<std::uint64_t>(cfg.nranks));
          co_await posix.close(r, fd);
        }
        co_await h.world().barrier(r);
      }
    }
    if (r == 0) co_await posix.close(r, hist);
  });
}

void run_milc(Harness& h, bool parallel) {
  const auto& cfg = h.config();
  iolib::PosixIo posix(h.ctx());
  h.preload("milc.in", 4096);
  const int trajectories = 4;

  h.run([&](Rank r) -> sim::Task<void> {
    if (r == 0) {
      const int fd = co_await posix.open(r, "milc.in", trace::kRdOnly);
      co_await posix.read(r, fd, 4096);
      co_await posix.close(r, fd);
    }
    co_await h.world().bcast(r, 0, 4096);

    for (int t = 0; t < trajectories; ++t) {
      for (int s = 0; s < 5; ++s) {
        co_await h.compute(r, 300'000);
        co_await h.world().allreduce(r, 64);  // plaquette
      }
      const std::string lat = "milc_lat." + std::to_string(t);
      if (parallel) {
        // save_parallel: every rank writes its lattice sites into the
        // shared file at an equally-spaced offset: N-1 strided.
        co_await h.world().barrier(r);
        const int fd = co_await posix.open(
            r, lat, trace::kCreate | trace::kWrOnly);
        co_await posix.pwrite(
            r, fd, 1024 + static_cast<Offset>(r) * cfg.bytes_per_rank,
            cfg.bytes_per_rank);
        co_await posix.close(r, fd);
        co_await h.world().barrier(r);
      } else {
        // save_serial: rank 0 gathers and writes everything: 1-1.
        co_await h.world().gather(r, 0, cfg.bytes_per_rank);
        if (r == 0) {
          const int fd = co_await posix.open(
              r, lat, trace::kCreate | trace::kTrunc | trace::kWrOnly);
          co_await posix.write(r, fd, 1024);  // lattice header
          co_await posix.write(
              r, fd, cfg.bytes_per_rank * static_cast<std::uint64_t>(cfg.nranks));
          co_await posix.close(r, fd);
        }
        co_await h.world().barrier(r);
      }
    }
  });
}

void run_vasp(Harness& h) {
  iolib::PosixIo posix(h.ctx());
  // The wavefunction/structure inputs dominate the run's bytes: every
  // rank reads them fully (N-1 consecutive, Table 3), while rank 0
  // appends the OUTCAR log (the 1-1 entry).
  const Offset kWavecar = 4 * 1024 * 1024;
  h.preload("WAVECAR", kWavecar);
  h.preload("POSCAR", 16384);
  const int ionic_steps = 5;

  h.run([&](Rank r) -> sim::Task<void> {
    int fd = co_await posix.open(r, "POSCAR", trace::kRdOnly);
    co_await posix.read(r, fd, 16384);
    co_await posix.close(r, fd);
    fd = co_await posix.open(r, "WAVECAR", trace::kRdOnly);
    for (Offset off = 0; off < kWavecar; off += 512 * 1024) {
      co_await posix.read(r, fd, 512 * 1024);
    }
    co_await posix.close(r, fd);
    co_await h.world().barrier(r);

    int outcar = -1;
    if (r == 0) {
      outcar = co_await posix.open(r, "OUTCAR",
                                   trace::kCreate | trace::kTrunc | trace::kWrOnly);
    }
    for (int step = 0; step < ionic_steps; ++step) {
      co_await h.compute(r, 500'000);
      co_await h.world().allreduce(r, 128);  // charge density mixing
      co_await h.world().reduce(r, 0, 1024);
      if (r == 0) co_await posix.write(r, outcar, 16384);
    }
    if (r == 0) {
      co_await posix.write(r, outcar, 65536);  // final elastic summary
      co_await posix.close(r, outcar);
      const int cfd = co_await posix.open(
          r, "CONTCAR", trace::kCreate | trace::kTrunc | trace::kWrOnly);
      co_await posix.write(r, cfd, 16384);
      co_await posix.close(r, cfd);
    }
  });
}

}  // namespace pfsem::apps
