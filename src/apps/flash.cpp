// FLASH (Section 6.2.2, 6.3; Table 5: 2D Sedov explosion, 100 steps,
// checkpoint every 20).
//
// Two configurations:
//  * FLASH-fbs   — fixed block size: HDF5 raw data goes through collective
//    MPI-IO (6 aggregators), giving the M-1 strided-cyclic class and the
//    Figure 2(a) shape (large tiled aggregator writes + ~30 ranks doing
//    small metadata writes at the file head).
//  * FLASH-nofbs — dynamic block size: every rank writes its own irregular
//    chunks independently, giving N-1 strided locally-monotonic accesses
//    that look ~50% random from the PFS's global view (Figure 1, 2(e,f)).
//
// Both flush metadata (H5Fflush) after every dataset — the source of the
// only cross-process conflict in the study: WAW on the shared metadata
// region under session semantics, cleared by the fsync under commit
// semantics (Section 6.3, Table 4).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "pfsem/apps/programs.hpp"
#include "pfsem/iolib/hdf5_lite.hpp"
#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::apps {

namespace {
constexpr int kDatasetsPerCheckpoint = 10;
constexpr int kPlotDatasets = 4;
}  // namespace

void run_flash(Harness& h, bool fbs) {
  const auto& cfg = h.config();
  iolib::H5Options opt;
  opt.flush_after_dataset = true;
  opt.metadata_writers = 30;
  opt.collective_data = fbs;
  opt.aggregators = 6;
  iolib::Hdf5Lite h5(h.ctx(), opt);
  // Plot files are written by rank 0 with independent I/O regardless of
  // the data mode (Figure 2(c)); metadata is still distributed.
  iolib::H5Options plot_opt = opt;
  plot_opt.collective_data = false;
  // Only rank 0 writes plot data, so the per-dataset collective flush
  // (which every rank must enter) is disabled; plot files are flushed by
  // the close path like any other HDF5 file.
  plot_opt.flush_after_dataset = false;
  iolib::Hdf5Lite h5plot(h.ctx(), plot_opt);
  iolib::PosixIo posix(h.ctx());

  h.preload("flash.par", 4096);

  // Per-rank chunk tables (fbs = equal chunks; nofbs = irregular dynamic
  // blocks, identical on every rank), precomputed once per dataset as a
  // prefix-sum so each rank reads its offset and size in O(1). The naive
  // form — every rank rebuilding the table and summing ranks [0, r) —
  // is O(nranks^2) per dataset and dominates capture beyond ~4K ranks.
  const int ncheckpoints = cfg.steps / cfg.checkpoint_every;
  // prefix[c][d] has nranks+1 entries; rank r's chunk is
  // [prefix[r], prefix[r+1]) within the dataset.
  std::vector<std::vector<std::vector<std::uint64_t>>> prefix(
      static_cast<std::size_t>(std::max(ncheckpoints, 0)));
  for (int c = 0; c < ncheckpoints; ++c) {
    auto& per_dataset = prefix[static_cast<std::size_t>(c)];
    per_dataset.resize(kDatasetsPerCheckpoint);
    for (int d = 0; d < kDatasetsPerCheckpoint; ++d) {
      auto& p = per_dataset[static_cast<std::size_t>(d)];
      p.resize(static_cast<std::size_t>(cfg.nranks) + 1);
      p[0] = 0;
      const std::uint64_t base = cfg.bytes_per_rank / kDatasetsPerCheckpoint;
      for (Rank r = 0; r < cfg.nranks; ++r) {
        const std::uint64_t size =
            fbs ? base
                : h.shaped(static_cast<std::uint64_t>(c) * 131 +
                               static_cast<std::uint64_t>(d),
                           r, base / 2, base * 2);
        p[static_cast<std::size_t>(r) + 1] = p[static_cast<std::size_t>(r)] + size;
      }
    }
  }

  h.run([&](Rank r) -> sim::Task<void> {
    // Initialization: rank 0 reads the parameter deck, broadcasts it.
    if (r == 0) {
      const int fd = co_await posix.open(r, "flash.par", trace::kRdOnly);
      co_await posix.read(r, fd, 4096);
      co_await posix.close(r, fd);
    }
    co_await h.world().bcast(r, 0, 4096);

    int checkpoint = 0;
    for (int step = 1; step <= cfg.steps; ++step) {
      co_await h.compute(r, 200'000);
      co_await h.world().allreduce(r, 8);  // dt reduction
      if (step % cfg.checkpoint_every != 0) continue;

      // ---- checkpoint file ----
      const std::string chk =
          "flash_hdf5_chk_" + std::to_string(1000 + checkpoint);
      auto* f = co_await h5.create(r, chk, h.world().all());
      for (int d = 0; d < kDatasetsPerCheckpoint; ++d) {
        const auto& p = prefix[static_cast<std::size_t>(checkpoint)]
                              [static_cast<std::size_t>(d)];
        const std::string name = "var" + std::to_string(d);
        co_await h5.dataset_create(r, f, name, p[p.size() - 1]);
        const auto off =
            static_cast<Offset>(p[static_cast<std::size_t>(r)]);
        co_await h5.dataset_write(r, f, name, off,
                                  p[static_cast<std::size_t>(r) + 1] -
                                      p[static_cast<std::size_t>(r)]);
      }
      co_await h5.close(r, f);

      // ---- plot file: rank 0 writes data, metadata stays distributed ----
      const std::string plt =
          "flash_hdf5_plt_cnt_" + std::to_string(1000 + checkpoint);
      auto* p = co_await h5plot.create(r, plt, h.world().all());
      for (int d = 0; d < kPlotDatasets; ++d) {
        const std::string name = "plotvar" + std::to_string(d);
        const std::uint64_t total = cfg.bytes_per_rank / 4;
        co_await h5plot.dataset_create(r, p, name, total);
        if (r == 0) co_await h5plot.dataset_write(r, p, name, 0, total);
      }
      co_await h5plot.close(r, p);
      ++checkpoint;
    }
  });
}

}  // namespace pfsem::apps
