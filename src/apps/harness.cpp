#include "pfsem/apps/harness.hpp"

#include <algorithm>

#include "pfsem/util/error.hpp"

namespace pfsem::apps {

namespace {

/// Resolve CaptureMode::Auto into a concrete capture/scheduler pair
/// before anything reads the config (the collector refuses Auto).
AppConfig resolve_capture(AppConfig cfg) {
  if (cfg.capture == trace::CaptureMode::Auto) {
    cfg.capture = resolved_capture_mode(cfg.capture, cfg.nranks);
    cfg.scheduler = cfg.capture == trace::CaptureMode::Reference
                        ? sim::SchedulerKind::Heap
                        : sim::SchedulerKind::Bucketed;
  }
  return cfg;
}

}  // namespace

Harness::Harness(AppConfig cfg, vfs::PfsConfig pfs_cfg,
                 std::vector<sim::ClockModel> clocks)
    : Harness(cfg, std::make_unique<vfs::Pfs>(pfs_cfg), std::move(clocks)) {
  concrete_pfs_ = static_cast<vfs::Pfs*>(fs_.get());
}

Harness::Harness(AppConfig cfg, vfs::ClusterConfig cluster_cfg,
                 std::vector<sim::ClockModel> clocks)
    : Harness(cfg, std::make_unique<vfs::PfsCluster>(cluster_cfg),
              std::move(clocks)) {
  concrete_cluster_ = static_cast<vfs::PfsCluster*>(fs_.get());
}

Harness::Harness(AppConfig cfg, std::unique_ptr<vfs::FileSystem> fs,
                 std::vector<sim::ClockModel> clocks)
    : cfg_(resolve_capture(cfg)),
      collector_(cfg_.nranks, std::move(clocks), cfg_.capture),
      engine_(cfg_.scheduler),
      fs_(std::move(fs)),
      world_(engine_, collector_,
             mpi::WorldConfig{.nranks = cfg_.nranks,
                              .ranks_per_node = cfg_.ranks_per_node,
                              .seed = cfg_.seed}) {
  require(fs_ != nullptr, "Harness needs a file system backend");
  if (cfg_.obs != nullptr) {
    engine_.set_observer(cfg_.obs);
    collector_.set_observer(cfg_.obs);
  }
  // Streaming must be armed before reserve(): the collector caps the
  // arena pre-size to one chunk when it knows records stream out.
  if (cfg_.stream_sink != nullptr) {
    collector_.enable_streaming(cfg_.stream_sink, cfg_.stream_chunk_records);
  }
  // Pre-size the collector's per-rank arenas. The registered app models
  // emit a few records per rank per time step (open/write/close plus
  // library bookkeeping), so steps-derived guesses land within a small
  // factor; an explicit hint wins when the caller knows better.
  const std::size_t hint =
      cfg_.ops_per_rank_hint != 0
          ? cfg_.ops_per_rank_hint
          : static_cast<std::size_t>(std::max(cfg_.steps, 1)) * 4 + 32;
  collector_.reserve(cfg_.nranks, hint);
  rank_rngs_.reserve(static_cast<std::size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r) {
    rank_rngs_.emplace_back(cfg.seed * 1000003 + static_cast<std::uint64_t>(r));
  }
}

vfs::Pfs& Harness::pfs() {
  require(concrete_pfs_ != nullptr,
          "pfs(): a custom file-system backend is in use");
  return *concrete_pfs_;
}

vfs::PfsCluster& Harness::cluster() {
  require(concrete_cluster_ != nullptr,
          "cluster(): the backend is not a PfsCluster");
  return *concrete_cluster_;
}

sim::Task<void> Harness::compute(Rank r, SimDuration base) {
  // Operation-boundary crash check: a crashed rank never starts another
  // time step (iolib and mpi enforce the same at their entry points).
  if (injector_ != nullptr && injector_->crashed(r)) throw sim::TaskKilled(r);
  auto& rng = rank_rngs_[static_cast<std::size_t>(r)];
  const auto jitter =
      static_cast<SimDuration>(rng.below(static_cast<std::uint64_t>(base / 4 + 1)));
  co_await engine_.delay(base + jitter);
}

void Harness::set_faults(const fault::FaultPlan& plan,
                         std::uint64_t fault_seed) {
  // Server events need a matching multi-server topology; fail loudly at
  // arm time rather than silently dropping an event mid-run.
  if (concrete_cluster_ != nullptr) {
    plan.validate_topology(concrete_cluster_->config().mds_count,
                           concrete_cluster_->config().ost_count);
  } else {
    plan.validate_topology(0, 0);
  }
  injector_ =
      std::make_unique<fault::Injector>(plan, fault_seed, cfg_.ranks_per_node);
  injector_->set_observer(cfg_.obs);
  fs_->set_fault_injector(injector_.get());
  world_.set_fault_injector(injector_.get());
}

std::uint64_t Harness::shaped(std::uint64_t salt, Rank r, std::uint64_t lo,
                              std::uint64_t hi) const {
  require(hi >= lo, "shaped: bad range");
  // SplitMix64-style stateless hash of (seed, salt, rank).
  std::uint64_t z = cfg_.seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(r) * 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return lo + z % (hi - lo + 1);
}

void Harness::run(const std::function<sim::Task<void>(Rank)>& program) {
  if (injector_ != nullptr) {
    // One scheduler root per planned crash: at the crash instant, mark the
    // victim dead (every later op boundary kills its program) and discard
    // its non-durable writes per the active consistency model.
    for (const auto& [victim, when] : injector_->crash_schedule(cfg_.nranks)) {
      engine_.spawn(
          [](Harness* h, Rank rank, SimTime t) -> sim::Task<void> {
            co_await h->engine_.delay(t);
            h->injector_->mark_crashed(rank, h->engine_.now());
            h->injector_->note_lost_writes(
                h->fs_->crash_rank(rank, h->engine_.now()));
          }(this, victim, when));
    }
    // One root per planned server crash/restart: fault domains flip state
    // at their simulated instants, in deterministic DES order (the
    // schedule is pre-sorted, and spawn order breaks time ties).
    if (concrete_cluster_ != nullptr) {
      for (const fault::ServerEvent& ev : injector_->server_schedule()) {
        engine_.spawn(
            [](Harness* h, fault::ServerEvent e) -> sim::Task<void> {
              co_await h->engine_.delay(e.t);
              h->concrete_cluster_->apply_server_event(e, h->engine_.now());
            }(this, ev));
      }
    }
  }
  for (Rank r = 0; r < cfg_.nranks; ++r) {
    engine_.spawn(
        [](Harness* h, Rank rank,
           std::function<sim::Task<void>(Rank)> body) -> sim::Task<void> {
          // The paper's methodology: a startup barrier defines time zero and
          // bounds clock skew before any traced I/O happens.
          co_await h->world().barrier(rank);
          obs::Run* const orun = h->cfg_.obs;
          const SimTime t0 = h->engine_.now();
          // Span even for crashed ranks: note the kill, emit, rethrow
          // (the emit is synchronous, so no co_await inside the catch).
          try {
            co_await body(rank);
          } catch (const sim::TaskKilled&) {
            if (orun != nullptr && orun->tracing()) {
              orun->tracer.complete({obs::kPidHarness, rank}, "rank-program",
                                    t0, h->engine_.now() - t0, {"killed", 1});
            }
            throw;
          }
          if (orun != nullptr && orun->tracing()) {
            orun->tracer.complete({obs::kPidHarness, rank}, "rank-program", t0,
                                  h->engine_.now() - t0);
          }
        }(this, r, program),
        /*label=*/r);
  }
  engine_.run();
  if (cfg_.obs != nullptr &&
      (concrete_pfs_ != nullptr || concrete_cluster_ != nullptr)) {
    // Publish the backend's introspection counters as gauges. Stable:
    // lock/OST traffic is a pure function of the simulated op sequence.
    auto& m = cfg_.obs->metrics;
    const vfs::LockStats& ls = concrete_pfs_ != nullptr
                                   ? concrete_pfs_->lock_stats()
                                   : concrete_cluster_->lock_stats();
    const vfs::OstStats& os = concrete_pfs_ != nullptr
                                  ? concrete_pfs_->ost_stats()
                                  : concrete_cluster_->ost_stats();
    m.set(cfg_.obs->vfs_lock_requests, static_cast<std::int64_t>(ls.requests));
    m.set(cfg_.obs->vfs_lock_revocations,
          static_cast<std::int64_t>(ls.revocations));
    m.set(cfg_.obs->vfs_meta_ops, static_cast<std::int64_t>(ls.meta_ops));
    std::uint64_t ost_bytes = 0;
    for (const std::uint64_t b : os.bytes) ost_bytes += b;
    m.set(cfg_.obs->vfs_ost_bytes, static_cast<std::int64_t>(ost_bytes));
    if (concrete_cluster_ != nullptr) {
      // Per-server gauges, registered dynamically (topology is a run
      // parameter, not part of the static catalogue). Stable: per-shard
      // routing and striping are pure functions of the op sequence.
      const auto& mds = concrete_cluster_->mds_states();
      for (std::size_t i = 0; i < mds.size(); ++i) {
        const std::string base = "vfs.mds" + std::to_string(i);
        m.set(m.gauge(base + ".meta_ops"),
              static_cast<std::int64_t>(mds[i].meta_ops));
        m.set(m.gauge(base + ".failovers"),
              static_cast<std::int64_t>(mds[i].failovers));
        m.set(m.gauge(base + ".up"), mds[i].up ? 1 : 0);
      }
      for (std::size_t i = 0; i < os.bytes.size(); ++i) {
        const std::string base = "vfs.ost" + std::to_string(i);
        m.set(m.gauge(base + ".bytes"),
              static_cast<std::int64_t>(os.bytes[i]));
        m.set(m.gauge(base + ".up"),
              concrete_cluster_->ost_states()[i].up ? 1 : 0);
      }
    }
  }
}

core::DegradedSummary degraded_summary(const fault::FaultStats& stats) {
  core::DegradedSummary d;
  d.faults_injected = stats.transient_faults;
  d.faults_eio = stats.faults_eio;
  d.faults_enospc = stats.faults_enospc;
  d.retries = stats.retries;
  d.giveups = stats.giveups;
  d.mpi_drops = stats.mpi_drops;
  d.slowed_transfers = stats.slowed_transfers;
  d.delayed_writes = stats.delayed_writes;
  d.writes_lost = stats.writes_lost;
  d.crashed_ranks.assign(stats.crashed_ranks.begin(),
                         stats.crashed_ranks.end());
  d.server_crashes = stats.server_crashes;
  d.server_restarts = stats.server_restarts;
  d.mds_failovers = stats.mds_failovers;
  d.failover_redirects = stats.failover_redirects;
  d.degraded_reads = stats.degraded_reads;
  d.crashed_servers = stats.crashed_servers;
  return d;
}

}  // namespace pfsem::apps
