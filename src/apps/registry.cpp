#include "pfsem/apps/registry.hpp"

#include "pfsem/apps/programs.hpp"

namespace pfsem::apps {

namespace {

std::vector<AppInfo> build_registry() {
  std::vector<AppInfo> apps;
  auto add = [&](std::string name, std::string app, std::string iolib,
                 std::string desc, Expectation e,
                 std::function<void(Harness&)> run) {
    apps.push_back({std::move(name), std::move(app), std::move(iolib),
                    std::move(desc), e, std::move(run)});
  };

  // --- FLASH (Table 4: WAW-S + WAW-D under session; cleared by commit) ---
  add("FLASH-fbs", "FLASH", "HDF5",
      "2D Sedov explosion, fixed block size -> collective I/O; checkpoint "
      "every 20 of 100 steps",
      {.xy = "M-1", .layout = "strided-cyclic", .waw_s = true, .waw_d = true,
       .commit_clears = true},
      [](Harness& h) { run_flash(h, /*fbs=*/true); });
  add("FLASH-nofbs", "FLASH", "HDF5",
      "2D Sedov explosion, dynamic block size -> independent I/O",
      {.xy = "N-1", .layout = "strided", .waw_s = true, .waw_d = true,
       .commit_clears = true},
      [](Harness& h) { run_flash(h, /*fbs=*/false); });

  add("ENZO", "ENZO", "HDF5",
      "Non-cosmological collapse test; one HDF5 file per rank per dump",
      {.xy = "N-N", .layout = "consecutive", .raw_s = true},
      [](Harness& h) { run_enzo(h); });

  add("NWChem", "NWChem", "POSIX",
      "3-Carboxybenzisoxazole gas-phase dynamics; per-rank scratch + rank-0 "
      "trajectory with in-place header rewrites",
      {.xy = "N-N", .layout = "consecutive", .waw_s = true, .raw_s = true},
      [](Harness& h) { run_nwchem(h); });

  add("pF3D-IO", "pF3D-IO", "POSIX",
      "One pF3D checkpoint step; file per process + trailer read-back",
      {.xy = "N-N", .layout = "consecutive", .raw_s = true},
      [](Harness& h) { run_pf3d(h); });

  add("MACSio", "MACSio", "Silo",
      "ALE3D I/O proxy; Silo multifile with baton-ordered group files",
      {.xy = "N-M", .layout = "strided", .waw_s = true},
      [](Harness& h) { run_macsio(h); });

  add("GAMESS", "GAMESS", "POSIX",
      "Closed-shell test on ethyl alcohol; per-writer dictionary files with "
      "in-place master-index rewrites",
      {.xy = "M-M", .layout = "consecutive", .waw_s = true},
      [](Harness& h) { run_gamess(h); });

  // --- LAMMPS, five dump back-ends ---
  add("LAMMPS-ADIOS", "LAMMPS", "ADIOS",
      "2D LJ flow; dump every 20 of 100 steps via ADIOS2 BP4",
      {.xy = "M-M", .layout = "consecutive", .waw_s = true},
      [](Harness& h) { run_lammps(h, LammpsIo::Adios); });
  add("LAMMPS-NetCDF", "LAMMPS", "NetCDF",
      "2D LJ flow; dump via classic NetCDF with in-place numrecs updates",
      {.xy = "1-1", .layout = "consecutive", .waw_s = true},
      [](Harness& h) { run_lammps(h, LammpsIo::NetCdf); });
  add("LAMMPS-HDF5", "LAMMPS", "HDF5", "2D LJ flow; rank-0 h5md dump files",
      {.xy = "1-1", .layout = "consecutive"},
      [](Harness& h) { run_lammps(h, LammpsIo::Hdf5); });
  add("LAMMPS-MPIIO", "LAMMPS", "MPI-IO",
      "2D LJ flow; collective per-step dump files",
      {.xy = "M-1", .layout = "strided"},
      [](Harness& h) { run_lammps(h, LammpsIo::MpiIo); });
  add("LAMMPS-POSIX", "LAMMPS", "POSIX",
      "2D LJ flow; rank-0 text dump appended per step",
      {.xy = "1-1", .layout = "consecutive"},
      [](Harness& h) { run_lammps(h, LammpsIo::Posix); });

  add("MILC-QCD Serial", "MILC-QCD", "POSIX",
      "Lattice QCD save_serial: rank 0 writes the lattice",
      {.xy = "1-1", .layout = "consecutive"},
      [](Harness& h) { run_milc(h, /*parallel=*/false); });
  add("MILC-QCD Parallel", "MILC-QCD", "POSIX",
      "Lattice QCD save_parallel: every rank writes its sites",
      {.xy = "N-1", .layout = "strided"},
      [](Harness& h) { run_milc(h, /*parallel=*/true); });

  add("ParaDiS-HDF5", "ParaDiS", "HDF5",
      "Dislocation dynamics restart dumps; HDF5 back-end",
      {.xy = "N-1", .layout = "strided"},
      [](Harness& h) { run_paradis(h, /*hdf5=*/true); });
  add("ParaDiS-POSIX", "ParaDiS", "POSIX",
      "Dislocation dynamics restart dumps; POSIX back-end",
      {.xy = "N-1", .layout = "strided"},
      [](Harness& h) { run_paradis(h, /*hdf5=*/false); });

  add("VASP", "VASP", "POSIX",
      "GaAs elastic properties; all ranks read inputs, rank 0 writes OUTCAR",
      {.xy = "N-1", .layout = "consecutive"},
      [](Harness& h) { run_vasp(h); });

  add("LBANN", "LBANN", "POSIX",
      "Autoencoder on CIFAR-10; every rank reads the whole dataset",
      {.xy = "N-1", .layout = "consecutive"},
      [](Harness& h) { run_lbann(h); });

  add("QMCPACK", "QMCPACK", "HDF5",
      "Diffusion Monte Carlo of a water molecule; rank-0 HDF5 checkpoints",
      {.xy = "1-1", .layout = "consecutive"},
      [](Harness& h) { run_qmcpack(h); });

  add("Nek5000", "Nek5000", "POSIX",
      "Eddy solutions; checkpoint every 100 of 1000 steps via rank 0",
      {.xy = "1-1", .layout = "consecutive"},
      [](Harness& h) { run_nek5000(h); });

  add("GTC", "GTC", "POSIX",
      "Gyrokinetic toroidal code built-in 64p example; rank-0 output",
      {.xy = "1-1", .layout = "consecutive"},
      [](Harness& h) { run_gtc(h); });

  add("Chombo", "Chombo", "HDF5",
      "3D variable-coefficient AMR Poisson solve; shared HDF5 file",
      {.xy = "N-1", .layout = "strided"},
      [](Harness& h) { run_chombo(h); });

  add("HACC-IO MPI-IO", "HACC-IO", "MPI-IO",
      "HACC checkpoint kernel; shared file, independent writes at rank "
      "offsets (not classified in the paper's Table 3)",
      {.xy = "", .layout = ""},
      [](Harness& h) { run_hacc(h, /*mpiio=*/true); });
  add("HACC-IO POSIX", "HACC-IO", "POSIX",
      "HACC checkpoint kernel; file per process",
      {.xy = "N-N", .layout = "consecutive"},
      [](Harness& h) { run_hacc(h, /*mpiio=*/false); });

  add("VPIC-IO", "VPIC-IO", "HDF5",
      "1D particle array, 8 variables, collective HDF5 into one file",
      {.xy = "M-1", .layout = "strided-cyclic"},
      [](Harness& h) { run_vpic(h); });

  return apps;
}

}  // namespace

const std::vector<AppInfo>& registry() {
  static const std::vector<AppInfo> apps = build_registry();
  return apps;
}

const AppInfo* find_app(std::string_view name) {
  for (const auto& info : registry()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

namespace {

void arm_and_run(Harness& h, const AppInfo& info, const FaultSetup* faults,
                 fault::FaultStats* stats_out) {
  if (faults != nullptr) {
    h.set_faults(faults->plan, faults->seed);
    h.set_retry_policy(faults->retry);
  }
  info.run(h);
  if (stats_out != nullptr) {
    *stats_out = h.injector() != nullptr ? h.injector()->stats()
                                         : fault::FaultStats{};
  }
}

trace::TraceBundle run_on(Harness& h, const AppInfo& info,
                          const FaultSetup* faults,
                          fault::FaultStats* stats_out) {
  arm_and_run(h, info, faults, stats_out);
  return h.finish();
}

}  // namespace

trace::TraceBundle run_app(const AppInfo& info, AppConfig cfg,
                           vfs::PfsConfig pfs_cfg,
                           std::vector<sim::ClockModel> clocks,
                           const FaultSetup* faults,
                           fault::FaultStats* stats_out) {
  Harness h(cfg, pfs_cfg, std::move(clocks));
  return run_on(h, info, faults, stats_out);
}

trace::TraceBundle run_app_cluster(const AppInfo& info, AppConfig cfg,
                                   vfs::ClusterConfig cluster_cfg,
                                   std::vector<sim::ClockModel> clocks,
                                   const FaultSetup* faults,
                                   fault::FaultStats* stats_out) {
  Harness h(cfg, cluster_cfg, std::move(clocks));
  return run_on(h, info, faults, stats_out);
}

trace::StreamMeta run_app_stream(const AppInfo& info, trace::StreamSink& sink,
                                 AppConfig cfg, vfs::PfsConfig pfs_cfg,
                                 std::vector<sim::ClockModel> clocks,
                                 const FaultSetup* faults,
                                 fault::FaultStats* stats_out) {
  cfg.stream_sink = &sink;
  Harness h(cfg, pfs_cfg, std::move(clocks));
  arm_and_run(h, info, faults, stats_out);
  return h.finish_stream();
}

trace::StreamMeta run_app_cluster_stream(const AppInfo& info,
                                         trace::StreamSink& sink, AppConfig cfg,
                                         vfs::ClusterConfig cluster_cfg,
                                         std::vector<sim::ClockModel> clocks,
                                         const FaultSetup* faults,
                                         fault::FaultStats* stats_out) {
  cfg.stream_sink = &sink;
  Harness h(cfg, cluster_cfg, std::move(clocks));
  arm_and_run(h, info, faults, stats_out);
  return h.finish_stream();
}

}  // namespace pfsem::apps
