// HDF5-based scientific applications: QMCPACK, VPIC-IO, Chombo, ParaDiS.
// All four are conflict-free in the paper (Table 4); they differ in their
// Table-3 classes, which these models reproduce:
//   QMCPACK  — 1-1 consecutive (rank-0 checkpoints)
//   VPIC-IO  — M-1 strided-cyclic (collective writes, one round per
//              particle variable)
//   Chombo   — N-1 strided (independent ragged AMR box writes, collective
//              metadata on rank 0)
//   ParaDiS  — N-1 strided for both back-ends; the HDF5 build adds the
//              lstat/fstat/ftruncate metadata calls seen in Figure 3.

#include <string>

#include "pfsem/apps/programs.hpp"
#include "pfsem/iolib/hdf5_lite.hpp"
#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::apps {

void run_qmcpack(Harness& h) {
  const auto& cfg = h.config();
  iolib::Hdf5Lite h5(h.ctx(), {});
  iolib::PosixIo posix(h.ctx());
  h.preload("H2O.xml", 16384);
  const int blocks = 40;
  const int checkpoint_every = 20;

  h.run([&](Rank r) -> sim::Task<void> {
    if (r == 0) {
      const int fd = co_await posix.open(r, "H2O.xml", trace::kRdOnly);
      co_await posix.read(r, fd, 16384);
      co_await posix.close(r, fd);
    }
    co_await h.world().bcast(r, 0, 16384);

    int ckpt = 0;
    for (int b = 1; b <= blocks; ++b) {
      co_await h.compute(r, 300'000);
      co_await h.world().allreduce(r, 64);  // walker population control
      if (b % checkpoint_every != 0) continue;
      // Walker configurations are gathered and written by rank 0.
      co_await h.world().gather(r, 0, cfg.bytes_per_rank / 8);
      if (r == 0) {
        const std::string path =
            "qmc.s" + std::to_string(100 + ckpt) + ".config.h5";
        const mpi::Group root_group{0};
        auto* f = co_await h5.create(r, path, root_group);
        const std::uint64_t total =
            cfg.bytes_per_rank / 8 * static_cast<std::uint64_t>(cfg.nranks);
        static constexpr const char* kNames[] = {"walkers", "weights", "state"};
        for (const char* name : kNames) {
          co_await h5.dataset_create(r, f, name, total / 3);
          co_await h5.dataset_write(r, f, name, 0, total / 3);
        }
        co_await h5.close(r, f);
      }
      co_await h.world().barrier(r);
      ++ckpt;
    }
  });
}

void run_vpic(Harness& h) {
  const auto& cfg = h.config();
  iolib::H5Options opt;
  opt.collective_data = true;
  opt.aggregators = 6;
  iolib::Hdf5Lite h5(h.ctx(), opt);
  // Eight particle variables, each a 1D array partitioned across ranks —
  // one collective round per variable gives the strided-cyclic shape.
  static const char* kVars[] = {"x", "y", "z", "ux", "uy", "uz", "q", "id"};

  h.run([&](Rank r) -> sim::Task<void> {
    co_await h.compute(r, 200'000);
    auto* f = co_await h5.create(r, "vpic_particles.h5", h.world().all());
    const std::uint64_t per_rank = cfg.bytes_per_rank / 8;
    for (const char* v : kVars) {
      const std::uint64_t total =
          per_rank * static_cast<std::uint64_t>(cfg.nranks);
      co_await h5.dataset_create(r, f, v, total);
      co_await h5.dataset_write(r, f, v, static_cast<Offset>(r) * per_rank,
                                per_rank);
    }
    co_await h5.close(r, f);
  });
}

void run_chombo(Harness& h) {
  const auto& cfg = h.config();
  iolib::H5Options opt;
  opt.collective_metadata = true;  // rank 0 performs all metadata I/O
  iolib::Hdf5Lite h5(h.ctx(), opt);
  constexpr int kBoxesPerRank = 4;

  h.run([&](Rank r) -> sim::Task<void> {
    co_await h.compute(r, 250'000);
    co_await h.world().allreduce(r, 8);  // residual norm
    auto* f = co_await h5.create(r, "chombo_poisson.hdf5", h.world().all());
    // One big ragged dataset of AMR box data: each rank owns kBoxesPerRank
    // boxes of irregular size, laid out rank-major with irregular extents.
    // Each box slot carries 4 KiB of allocation padding, so successive
    // box writes leave gaps: monotonic-with-gaps per rank = "strided".
    constexpr std::uint64_t kBoxPad = 4096;
    std::uint64_t total = 0;
    for (Rank q = 0; q < cfg.nranks; ++q) {
      for (int b = 0; b < kBoxesPerRank; ++b) {
        total += kBoxPad + h.shaped(900 + static_cast<std::uint64_t>(b), q,
                                    cfg.bytes_per_rank / 8, cfg.bytes_per_rank / 4);
      }
    }
    co_await h5.dataset_create(r, f, "level_0/data", total);
    // My boxes start after all lower ranks' boxes.
    Offset off = 0;
    for (Rank q = 0; q < r; ++q) {
      for (int b = 0; b < kBoxesPerRank; ++b) {
        off += kBoxPad + h.shaped(900 + static_cast<std::uint64_t>(b), q,
                                  cfg.bytes_per_rank / 8, cfg.bytes_per_rank / 4);
      }
    }
    for (int b = 0; b < kBoxesPerRank; ++b) {
      const std::uint64_t bytes =
          h.shaped(900 + static_cast<std::uint64_t>(b), r,
                   cfg.bytes_per_rank / 8, cfg.bytes_per_rank / 4);
      co_await h5.dataset_write(r, f, "level_0/data", off, bytes);
      off += bytes + kBoxPad;
      co_await h.compute(r, 50'000);  // box-to-box packing work
    }
    co_await h5.close(r, f);
  });
}

void run_paradis(Harness& h, bool hdf5) {
  const auto& cfg = h.config();
  iolib::Hdf5Lite h5(h.ctx(), {});
  iolib::PosixIo posix(h.ctx());
  h.preload("copper.ctrl", 4096);
  const int dumps = cfg.steps / cfg.checkpoint_every;
  // Fixed per-rank segment with allocation padding: per-process segments
  // separated by gaps -> the N-1 "strided" class of Table 3.
  const std::uint64_t seg = cfg.bytes_per_rank;
  const std::uint64_t padded = seg + 8192;

  h.run([&](Rank r) -> sim::Task<void> {
    if (r == 0) {
      const int fd = co_await posix.open(r, "copper.ctrl", trace::kRdOnly);
      co_await posix.read(r, fd, 4096);
      co_await posix.close(r, fd);
    }
    co_await h.world().bcast(r, 0, 4096);

    for (int d = 0; d < dumps; ++d) {
      for (int s = 0; s < cfg.checkpoint_every; ++s) {
        co_await h.compute(r, 180'000);
        co_await h.world().allreduce(r, 16);  // force contributions
      }
      const std::string base = "paradis_rs" + std::to_string(1000 + d);
      if (hdf5) {
        auto* f = co_await h5.create(r, base + ".h5", h.world().all());
        co_await h5.dataset_create(
            r, f, "nodes", padded * static_cast<std::uint64_t>(cfg.nranks));
        co_await h5.dataset_write(r, f, "nodes",
                                  static_cast<Offset>(r) * padded, seg);
        co_await h5.close(r, f);
      } else {
        const int fd = co_await posix.open(
            r, base + ".data", trace::kCreate | trace::kWrOnly);
        co_await posix.pwrite(r, fd, static_cast<Offset>(r) * padded, seg);
        co_await posix.close(r, fd);
      }
      co_await h.world().barrier(r);
    }
  });
}

}  // namespace pfsem::apps
