// LAMMPS 2D LJ flow, 100 steps, dump every 20 (Table 5), with the five
// dump back-ends the paper runs (Section 6.2.1, 6.3):
//
//   POSIX  — rank 0 gathers and appends to one text dump: 1-1 consecutive,
//            no conflicts.
//   MPI-IO — collective dump into a fresh per-step file: M-1 strided (the
//            aggregators), no conflicts.
//   HDF5   — rank 0 writes per-dump HDF5 files: 1-1 consecutive, and the
//            h5md layout adds metadata ops but no overlapping rewrites.
//   NetCDF — rank 0 appends records to one classic-format file whose
//            numrecs header bytes are rewritten in place every dump:
//            WAW-S under session and commit semantics.
//   ADIOS  — aggregated subfiles (M-M consecutive) plus the single-byte
//            md.idx overwrite by rank 0: WAW-S under both semantics.

#include <string>

#include "pfsem/apps/programs.hpp"
#include "pfsem/iolib/adios_lite.hpp"
#include "pfsem/iolib/hdf5_lite.hpp"
#include "pfsem/iolib/mpi_io.hpp"
#include "pfsem/iolib/netcdf_lite.hpp"
#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::apps {

void run_lammps(Harness& h, LammpsIo io) {
  const auto& cfg = h.config();
  iolib::PosixIo posix(h.ctx());
  iolib::MpiIo mpiio(h.ctx(), {.aggregators = 6});
  iolib::Hdf5Lite h5(h.ctx(), {});
  iolib::NetCdfLite nc(h.ctx());
  iolib::AdiosLite adios(h.ctx(), {.aggregators = 8});

  h.preload("in.flow", 2048);
  const std::uint64_t dump_bytes = cfg.bytes_per_rank / 4;  // atom coords

  h.run([&](Rank r) -> sim::Task<void> {
    if (r == 0) {
      const int fd = co_await posix.open(r, "in.flow", trace::kRdOnly);
      co_await posix.read(r, fd, 2048);
      co_await posix.close(r, fd);
    }
    co_await h.world().bcast(r, 0, 2048);

    // Persistent single-file back-ends are set up once.
    int posix_fd = -1;
    iolib::NcFile* ncf = nullptr;
    iolib::AdiosFile* bp = nullptr;
    if (io == LammpsIo::Posix && r == 0) {
      posix_fd = co_await posix.open(
          r, "dump.lammpstrj", trace::kCreate | trace::kTrunc | trace::kWrOnly);
    }
    if (io == LammpsIo::NetCdf && r == 0) {
      ncf = co_await nc.create(r, "dump.nc");
      co_await nc.def_var(r, ncf, "coordinates");
      co_await nc.enddef(r, ncf);
    }
    if (io == LammpsIo::Adios) {
      bp = co_await adios.open(r, "dump", h.world().all());
    }

    int dump = 0;
    for (int step = 1; step <= cfg.steps; ++step) {
      co_await h.compute(r, 100'000);
      co_await h.world().allreduce(r, 8);
      if (step % cfg.checkpoint_every != 0) continue;

      switch (io) {
        case LammpsIo::Posix: {
          co_await h.world().gather(r, 0, dump_bytes);
          if (r == 0) {
            co_await posix.write(
                r, posix_fd,
                dump_bytes * static_cast<std::uint64_t>(cfg.nranks));
          }
          break;
        }
        case LammpsIo::MpiIo: {
          const std::string path = "dump." + std::to_string(step) + ".mpiio";
          auto* f = co_await mpiio.open(
              r, path, trace::kCreate | trace::kTrunc | trace::kWrOnly,
              h.world().all());
          co_await mpiio.write_at_all(
              r, f, static_cast<Offset>(r) * dump_bytes, dump_bytes);
          co_await mpiio.close(r, f);
          break;
        }
        case LammpsIo::Hdf5: {
          co_await h.world().gather(r, 0, dump_bytes);
          if (r == 0) {
            const std::string path = "dump_" + std::to_string(step) + ".h5";
            const mpi::Group root_group{0};
            auto* f = co_await h5.create(r, path, root_group);
            const std::uint64_t total =
                dump_bytes * static_cast<std::uint64_t>(cfg.nranks);
            co_await h5.dataset_create(r, f, "particles/position", total);
            co_await h5.dataset_write(r, f, "particles/position", 0, total);
            co_await h5.close(r, f);
          }
          co_await h.world().barrier(r);
          break;
        }
        case LammpsIo::NetCdf: {
          co_await h.world().gather(r, 0, dump_bytes);
          if (r == 0) {
            co_await nc.put_record(
                r, ncf, dump_bytes * static_cast<std::uint64_t>(cfg.nranks));
          }
          break;
        }
        case LammpsIo::Adios: {
          co_await adios.put(r, bp, dump_bytes);
          co_await adios.end_step(r, bp);
          break;
        }
      }
      ++dump;
    }

    if (io == LammpsIo::Posix && r == 0) co_await posix.close(r, posix_fd);
    if (io == LammpsIo::NetCdf && r == 0) co_await nc.close(r, ncf);
    if (io == LammpsIo::Adios) co_await adios.close(r, bp);
  });
}

}  // namespace pfsem::apps
