#pragma once
// Application registry: the 17 studied applications/benchmarks in all 25
// (application, I/O library) configurations of the paper (Tables 2-5),
// each as a synthetic workload model that reproduces the application's
// documented I/O structure, together with the paper's expected results
// for that configuration so benches and tests can compare shape.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "pfsem/apps/harness.hpp"
#include "pfsem/trace/bundle.hpp"

namespace pfsem::apps {

/// Ground truth from the paper for one configuration.
struct Expectation {
  /// Table 3 high-level class ("" when the paper's table omits the config).
  std::string xy;
  std::string layout;  ///< "consecutive" / "strided" / "strided-cyclic"
  /// Table 4: conflict classes under session semantics.
  bool waw_s = false, waw_d = false, raw_s = false, raw_d = false;
  /// Section 6.3: do this config's conflicts disappear under commit
  /// semantics? (True only for FLASH.)
  bool commit_clears = false;

  [[nodiscard]] bool any_conflict() const {
    return waw_s || waw_d || raw_s || raw_d;
  }
};

struct AppInfo {
  std::string name;   ///< configuration name, e.g. "LAMMPS-NetCDF"
  std::string app;    ///< application, e.g. "LAMMPS"
  std::string iolib;  ///< "POSIX", "MPI-IO", "HDF5", "NetCDF", "ADIOS", "Silo"
  std::string description;  ///< Table 5 style workload description
  Expectation expect;
  std::function<void(Harness&)> run;
};

/// All configurations, in the paper's presentation order.
[[nodiscard]] const std::vector<AppInfo>& registry();

/// Lookup by configuration name; nullptr if unknown.
[[nodiscard]] const AppInfo* find_app(std::string_view name);

/// Fault-injection wiring for run_app: the plan, the fault seed (drives the
/// injector's RNG — same plan + seed reproduces the run bit-identically),
/// and the iolib retry policy.
struct FaultSetup {
  fault::FaultPlan plan;
  std::uint64_t seed = 1;
  iolib::RetryPolicy retry;
};

/// Convenience: build a harness, run the configuration, return its trace.
/// Pass `faults` to run under fault injection; `stats_out` (optional)
/// receives the degraded-mode statistics after the run.
[[nodiscard]] trace::TraceBundle run_app(const AppInfo& info, AppConfig cfg = {},
                                         vfs::PfsConfig pfs_cfg = {},
                                         std::vector<sim::ClockModel> clocks = {},
                                         const FaultSetup* faults = nullptr,
                                         fault::FaultStats* stats_out = nullptr);

/// run_app against a multi-server PfsCluster backend. With no faults the
/// returned bundle is byte-identical to run_app's for any topology (the
/// cluster's differential oracle, tests/test_cluster.cpp).
[[nodiscard]] trace::TraceBundle run_app_cluster(
    const AppInfo& info, AppConfig cfg, vfs::ClusterConfig cluster_cfg,
    std::vector<sim::ClockModel> clocks = {},
    const FaultSetup* faults = nullptr,
    fault::FaultStats* stats_out = nullptr);

/// Streaming counterpart of run_app: records stream into `sink` in
/// chunks of cfg.stream_chunk_records as the run progresses, and only
/// the StreamMeta comes back — the harness (and the simulated fs) is
/// destroyed before the caller analyzes, so capture memory and analysis
/// memory never coexist. The caller finishes the sink afterwards
/// (ChunkWriter::finish(meta) for the spill framing).
[[nodiscard]] trace::StreamMeta run_app_stream(
    const AppInfo& info, trace::StreamSink& sink, AppConfig cfg = {},
    vfs::PfsConfig pfs_cfg = {}, std::vector<sim::ClockModel> clocks = {},
    const FaultSetup* faults = nullptr,
    fault::FaultStats* stats_out = nullptr);

/// run_app_stream against a multi-server PfsCluster backend.
[[nodiscard]] trace::StreamMeta run_app_cluster_stream(
    const AppInfo& info, trace::StreamSink& sink, AppConfig cfg,
    vfs::ClusterConfig cluster_cfg, std::vector<sim::ClockModel> clocks = {},
    const FaultSetup* faults = nullptr,
    fault::FaultStats* stats_out = nullptr);

}  // namespace pfsem::apps
