#pragma once
// Run harness: wires one simulated application run together — DES engine,
// MPI world, PFS under test, trace collector — and launches one coroutine
// per rank behind a startup barrier (the paper's time-0 normalization
// point). The result of a run is a TraceBundle, the input of pfsem::core.

#include <functional>
#include <memory>
#include <vector>

#include "pfsem/core/report.hpp"
#include "pfsem/fault/injector.hpp"
#include "pfsem/iolib/context.hpp"
#include "pfsem/mpi/world.hpp"
#include "pfsem/sim/clock.hpp"
#include "pfsem/sim/engine.hpp"
#include "pfsem/trace/collector.hpp"
#include "pfsem/util/rng.hpp"
#include "pfsem/vfs/cluster.hpp"
#include "pfsem/vfs/filesystem.hpp"
#include "pfsem/vfs/pfs.hpp"

namespace pfsem::apps {

/// Below this rank count, CaptureMode::Auto resolves to the reference
/// pair (Reference capture + Heap scheduler). The bucket ring + arenas
/// win on pending-set depth — O(1) vs O(log n) per event — so they need
/// enough in-flight coroutines to pay for their setup. Remeasured after
/// the collective-path fixes (which shrank the shared capture cost both
/// pairs carry): on FLASH-fbs end-to-end capture the reference pair
/// stays ~10-20% faster through 8K ranks and the fast pair pulls ahead
/// by 16K (1.04x there, growing with depth; 2.3x in the isolated
/// scheduler/emitter microbench, whose 32K-root pending set is the
/// regime large runs actually hit). The bench's capture_crossover
/// experiment records the curve below the threshold.
inline constexpr int kAutoCaptureRankThreshold = 16'384;

/// The capture mode Auto resolves to at this rank count (identity for
/// the concrete modes). Pure, so tests can pin the policy on both sides
/// of the threshold without simulating threshold-sized runs; the harness
/// applies it (plus the matching scheduler) before capture starts.
[[nodiscard]] constexpr trace::CaptureMode resolved_capture_mode(
    trace::CaptureMode mode, int nranks) {
  if (mode != trace::CaptureMode::Auto) return mode;
  return nranks < kAutoCaptureRankThreshold ? trace::CaptureMode::Reference
                                            : trace::CaptureMode::Fast;
}

struct AppConfig {
  int nranks = 64;
  int ranks_per_node = 8;
  /// Number of simulated time steps (apps derive dump cadence from this).
  int steps = 100;
  int checkpoint_every = 20;
  /// Nominal per-rank payload of one checkpoint/dump. Scaled down from the
  /// paper's runs (e.g. pF3D's 2 GB/process) to keep traces tractable; the
  /// access *structure* is what the analysis consumes.
  std::uint64_t bytes_per_rank = 256 * 1024;
  std::uint64_t seed = 42;
  /// Capture-path implementation selectors. The defaults are the fast
  /// path; the reference pair (Heap + Reference) is the retained pre-
  /// optimization oracle — both must produce byte-identical bundles
  /// (tests/test_capture_diff.cpp). CaptureMode::Auto picks the whole
  /// pair by rank count (reference below kAutoCaptureRankThreshold, fast
  /// at or above it), overriding `scheduler` — safe precisely because
  /// the pairs are byte-identical.
  sim::SchedulerKind scheduler = sim::SchedulerKind::Bucketed;
  trace::CaptureMode capture = trace::CaptureMode::Fast;
  /// Expected records per rank, used to pre-size the collector's arenas
  /// (0 = derive a heuristic from `steps`). Purely a capacity hint.
  std::size_t ops_per_rank_hint = 0;
  /// Streaming capture (nullptr = materialize, the default): the
  /// collector hands records to this sink in batches of
  /// `stream_chunk_records` instead of accumulating a bundle. Finish the
  /// run with finish_stream() instead of finish(); registry.hpp's
  /// run_app_stream wires both ends. Non-owning.
  trace::StreamSink* stream_sink = nullptr;
  std::size_t stream_chunk_records = std::size_t{1} << 16;
  /// Observability context (nullptr = off, the default). Non-owning: the
  /// driver (CLI, test) owns the Run; the harness wires it into the
  /// engine, collector, injector, and every façade built from ctx(),
  /// and publishes the vfs.* gauges after run().
  obs::Run* obs = nullptr;
};

class Harness {
 public:
  explicit Harness(AppConfig cfg, vfs::PfsConfig pfs_cfg = {},
                   std::vector<sim::ClockModel> clocks = {});
  /// Run against a multi-server PfsCluster backend (docs/topology.md);
  /// enables server fault-domain events in the fault plan.
  Harness(AppConfig cfg, vfs::ClusterConfig cluster_cfg,
          std::vector<sim::ClockModel> clocks = {});
  /// Run against a custom file-system backend (e.g. vfs::BurstBufferPfs).
  Harness(AppConfig cfg, std::unique_ptr<vfs::FileSystem> fs,
          std::vector<sim::ClockModel> clocks = {});

  [[nodiscard]] const AppConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] mpi::World& world() { return world_; }
  /// The file system under test.
  [[nodiscard]] vfs::FileSystem& fs() { return *fs_; }
  /// The default Pfs backend (throws if a custom backend was supplied).
  [[nodiscard]] vfs::Pfs& pfs();
  /// The PfsCluster backend (throws unless built with a ClusterConfig).
  [[nodiscard]] vfs::PfsCluster& cluster();
  /// The PfsCluster backend, or nullptr when another backend is in use.
  [[nodiscard]] vfs::PfsCluster* cluster_or_null() { return concrete_cluster_; }
  [[nodiscard]] trace::Collector& collector() { return collector_; }
  [[nodiscard]] iolib::IoContext ctx() {
    return {&engine_, &world_, fs_.get(), &collector_, injector_.get(),
            retry_, cfg_.obs};
  }

  /// Arm fault injection for this run (call before run()): builds the
  /// injector and wires it into the file system and the MPI world. run()
  /// then schedules the plan's crashes.
  void set_faults(const fault::FaultPlan& plan, std::uint64_t fault_seed);
  /// Retry policy handed to every façade built from ctx().
  void set_retry_policy(iolib::RetryPolicy policy) {
    retry_ = std::move(policy);
  }
  /// nullptr when no faults are armed.
  [[nodiscard]] fault::Injector* injector() { return injector_.get(); }

  /// Stage an input file before the run (visible under every model).
  void preload(const std::string& path, Offset size) {
    fs_->preload(path, size);
  }

  /// A compute phase: `base` plus a small deterministic per-rank jitter,
  /// so ranks drift apart the way real time steps do.
  [[nodiscard]] sim::Task<void> compute(Rank r, SimDuration base);

  /// Deterministic per-rank value in [lo, hi] for workload shaping
  /// (irregular block sizes etc.); depends only on (seed, salt, r).
  [[nodiscard]] std::uint64_t shaped(std::uint64_t salt, Rank r,
                                     std::uint64_t lo, std::uint64_t hi) const;

  /// Spawn `program(r)` for every rank behind a startup barrier and run
  /// the simulation to completion.
  void run(const std::function<sim::Task<void>(Rank)>& program);

  /// Take the captured trace (call after run()).
  [[nodiscard]] trace::TraceBundle finish() { return collector_.take(); }

  /// Finish a streaming run (cfg.stream_sink != nullptr): flush the tail
  /// chunk to the sink and take everything except the records.
  [[nodiscard]] trace::StreamMeta finish_stream() {
    return collector_.take_stream();
  }

 private:
  AppConfig cfg_;
  trace::Collector collector_;
  sim::Engine engine_;
  std::unique_ptr<vfs::FileSystem> fs_;
  vfs::Pfs* concrete_pfs_ = nullptr;  // set when the default backend is used
  vfs::PfsCluster* concrete_cluster_ = nullptr;  // set for ClusterConfig runs
  mpi::World world_;
  std::vector<Rng> rank_rngs_;
  std::unique_ptr<fault::Injector> injector_;
  iolib::RetryPolicy retry_;
};

/// Convert the injector's run stats into the report's degraded summary
/// (lives here so pfsem::core stays independent of pfsem::fault).
[[nodiscard]] core::DegradedSummary degraded_summary(
    const fault::FaultStats& stats);

}  // namespace pfsem::apps
