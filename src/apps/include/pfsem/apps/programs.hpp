#pragma once
// Per-application workload models (implementation entry points used by the
// registry). Each function drives a full simulated run of one application
// configuration against the harness' PFS; see the .cpp files for the I/O
// structure each one reproduces and the paper sections it is drawn from.

#include "pfsem/apps/harness.hpp"

namespace pfsem::apps {

// FLASH Sedov explosion, HDF5 checkpoints + plot files; fbs = fixed block
// size -> collective I/O, nofbs = dynamic block size -> independent I/O.
void run_flash(Harness& h, bool fbs);

// ENZO collapse test: one HDF5 file per rank per dump, with symbol-table
// readback (the RAW-S source).
void run_enzo(Harness& h);

// LAMMPS 2D LJ flow with one of five dump back-ends.
enum class LammpsIo { Posix, MpiIo, Hdf5, NetCdf, Adios };
void run_lammps(Harness& h, LammpsIo io);

// QMCPACK diffusion Monte Carlo: rank-0 HDF5 checkpoints.
void run_qmcpack(Harness& h);
// VPIC-IO particle benchmark: collective HDF5, 8 variables, one file.
void run_vpic(Harness& h);
// Chombo AMR Poisson: shared HDF5 file, collective metadata, ragged boxes.
void run_chombo(Harness& h);
// ParaDiS dislocation dynamics restart dumps, POSIX or HDF5 back-end.
void run_paradis(Harness& h, bool hdf5);

// NWChem gas-phase dynamics: per-rank scratch + rank-0 trajectory with
// in-place header rewrite and read-back (WAW-S + RAW-S).
void run_nwchem(Harness& h);
// GAMESS closed-shell test: M writer ranks, per-writer dictionary file
// with in-place master-index rewrites (WAW-S).
void run_gamess(Harness& h);
// Nek5000 eddy: rank-0 gathers and writes checkpoint fields.
void run_nek5000(Harness& h);
// GTC gyrokinetic toroidal code: rank-0 history/restart output.
void run_gtc(Harness& h);
// MILC-QCD lattice save; parallel = every rank writes its sites into one
// shared file, serial = rank 0 writes everything.
void run_milc(Harness& h, bool parallel);
// VASP GaAs relaxation: all ranks read POSCAR, rank 0 writes OUTCAR.
void run_vasp(Harness& h);

// LBANN autoencoder on CIFAR-10: every rank reads the whole dataset.
void run_lbann(Harness& h);

// EXTENSION (paper Section 7): a two-application workflow coupled through
// the file system alone — producer ranks write simulation snapshots,
// consumer ranks (a separate analysis "job", no MPI channel between the
// groups) poll for completion markers and read them. `pipelined` =
// consumers open each snapshot only after its marker appears (close->open
// chains make session semantics sufficient); eager = consumers pre-open
// the snapshot files at startup (stale sessions: RAW-D under session
// semantics). Either way the marker files create cross-job *metadata*
// dependencies no MPI synchronization covers.
void run_workflow(Harness& h, bool pipelined);

// pF3D-IO checkpoint kernel: file per process + trailer read-back (RAW-S).
void run_pf3d(Harness& h);
// HACC-IO particle checkpoint kernel, POSIX (file per process) or MPI-IO
// (shared file, independent writes at rank offsets).
void run_hacc(Harness& h, bool mpiio);
// MACSio multi-purpose I/O proxy: Silo multifile with baton passing.
void run_macsio(Harness& h);

}  // namespace pfsem::apps
