// Multi-application workflow model (paper Section 7 / Section 3.5):
// simulation data pipelined to an analysis job through the PFS, with no
// MPI communication between the two jobs. The producer half of the ranks
// writes each snapshot as an N/2-1 shared file and then creates a ".done"
// marker; the consumer half polls for the marker and reads the snapshot.
//
// pipelined == true : consumers open the snapshot only after the marker
//   exists. Every producer write is followed by the producer's close and
//   the consumer's open (condition 4 of Section 5.2), so session
//   semantics suffices for the data — but the *marker visibility* is a
//   cross-job metadata dependency that MPI-based happens-before cannot
//   order (core::detect_metadata_dependencies flags it).
//
// pipelined == false: consumers pre-open every snapshot file at startup
//   (a common "keep the fd hot" anti-pattern); their sessions predate the
//   producers' writes, so reads are RAW-D conflicts under session
//   semantics and the data demands commit (or strong) semantics.

#include <string>

#include "pfsem/apps/programs.hpp"
#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::apps {

void run_workflow(Harness& h, bool pipelined) {
  const auto& cfg = h.config();
  iolib::PosixIo posix(h.ctx());
  const int half = cfg.nranks / 2;
  const int snapshots = 3;
  const std::uint64_t slice = cfg.bytes_per_rank;

  // Producer-job and consumer-job communicators (no inter-job channel).
  mpi::Group producers, consumers;
  for (Rank r = 0; r < half; ++r) producers.push_back(r);
  for (Rank r = half; r < cfg.nranks; ++r) consumers.push_back(r);

  h.run([&, half](Rank r) -> sim::Task<void> {
    const bool is_producer = r < half;
    if (is_producer) {
      for (int k = 0; k < snapshots; ++k) {
        // Simulate, then write this rank's slice of the snapshot.
        co_await h.compute(r, 400'000);
        // Producer-job time step (collectives stay inside the job).
        co_await h.world().collective(r, trace::CollectiveKind::Allreduce,
                                      kNoRank, 8, producers);
        const std::string data = "workflow/snap_" + std::to_string(k) + ".data";
        const int fd = co_await posix.open(r, data, trace::kCreate | trace::kWrOnly);
        co_await posix.pwrite(r, fd, static_cast<Offset>(r) * slice, slice);
        co_await posix.close(r, fd);
        co_await h.world().barrier(r, producers);
        if (r == 0) {
          // Publish the completion marker once every slice is closed.
          const std::string done = "workflow/snap_" + std::to_string(k) + ".done";
          const int dfd = co_await posix.open(r, done, trace::kCreate | trace::kWrOnly);
          co_await posix.close(r, dfd);
        }
      }
    } else {
      // Analysis job: no MPI edge to the producers — coupling is only
      // through the file system.
      std::vector<int> eager_fds;
      if (!pipelined) {
        for (int k = 0; k < snapshots; ++k) {
          const std::string data = "workflow/snap_" + std::to_string(k) + ".data";
          eager_fds.push_back(
              co_await posix.open(r, data, trace::kCreate | trace::kRdWr));
        }
      }
      for (int k = 0; k < snapshots; ++k) {
        const std::string done = "workflow/snap_" + std::to_string(k) + ".done";
        // Poll for the marker (observing a namespace mutation made by the
        // other job).
        while ((co_await posix.access(r, done)) != 0) {
          co_await h.engine().delay(2'000'000);  // 2 ms poll interval
        }
        const std::string data = "workflow/snap_" + std::to_string(k) + ".data";
        int fd;
        if (pipelined) {
          fd = co_await posix.open(r, data, trace::kRdOnly);
        } else {
          fd = eager_fds[static_cast<std::size_t>(k)];
        }
        // Read the slice this analysis rank is responsible for.
        const Offset off = static_cast<Offset>(r - half) * slice;
        co_await posix.pread(r, fd, off, slice);
        co_await h.compute(r, 200'000);  // analysis kernel
        if (pipelined) co_await posix.close(r, fd);
        co_await h.world().barrier(r, consumers);
      }
      if (!pipelined) {
        for (int fd : eager_fds) co_await posix.close(r, fd);
      }
    }
  });
}

}  // namespace pfsem::apps
