// I/O benchmark kernels: pF3D-IO, HACC-IO (POSIX and MPI-IO), MACSio.
//
//   pF3D-IO — one checkpoint step, file per process (N-N consecutive);
//     each process reads back a verification trailer it just wrote with
//     no commit in between: the RAW-S conflict of Table 4.
//   HACC-IO — particle checkpoint; POSIX mode writes a file per process
//     (N-N consecutive), MPI-IO mode writes one shared file with
//     independent writes at rank offsets.
//   MACSio  — Silo multifile mode (N-M strided): ranks share group files
//     in baton order; the in-turn TOC double-write is the WAW-S of
//     Table 4, and the baton's close->open chain is why no cross-process
//     conflict survives session semantics.

#include <string>

#include "pfsem/apps/programs.hpp"
#include "pfsem/iolib/mpi_io.hpp"
#include "pfsem/iolib/posix_io.hpp"
#include "pfsem/iolib/silo_lite.hpp"

namespace pfsem::apps {

void run_pf3d(Harness& h) {
  const auto& cfg = h.config();
  iolib::PosixIo posix(h.ctx());
  // The paper's kernel writes ~2 GB per process; we keep the structure
  // (many large sequential chunks + trailer read-back) at reduced scale.
  const std::uint64_t total = cfg.bytes_per_rank * 8;
  const std::uint64_t kChunk = std::max<std::uint64_t>(total / 16, 64 * 1024);
  constexpr Offset kTrailer = 4096;

  h.run([&](Rank r) -> sim::Task<void> {
    co_await h.compute(r, 100'000);
    const std::string path = "pf3d_chk/dump_" + std::to_string(r);
    const int fd = co_await posix.open(
        r, path, trace::kCreate | trace::kTrunc | trace::kRdWr);
    for (std::uint64_t off = 0; off < total; off += kChunk) {
      co_await posix.write(r, fd, std::min(kChunk, total - off));
    }
    // Verification: re-read the trailer just written (no fsync before).
    co_await posix.lseek(r, fd, -static_cast<std::int64_t>(kTrailer),
                         trace::kSeekEnd);
    co_await posix.read(r, fd, kTrailer);
    co_await posix.close(r, fd);
    co_await h.world().barrier(r);
  });
}

void run_hacc(Harness& h, bool mpiio) {
  const auto& cfg = h.config();
  iolib::PosixIo posix(h.ctx());
  iolib::MpiIo mio(h.ctx(), {.aggregators = 6});
  // Nine particle properties (x,y,z,vx,vy,vz,phi,pid,mask), written as
  // contiguous per-variable blocks like the GenericIO checkpoint.
  constexpr int kVars = 9;
  const std::uint64_t var_bytes = cfg.bytes_per_rank / kVars;

  h.run([&](Rank r) -> sim::Task<void> {
    co_await h.compute(r, 150'000);
    if (mpiio) {
      auto* f = co_await mio.open(r, "hacc_checkpoint.mpiio",
                                  trace::kCreate | trace::kWrOnly,
                                  h.world().all());
      // Independent writes: rank r owns one contiguous region, written
      // variable by variable.
      Offset base = static_cast<Offset>(r) * var_bytes * kVars;
      for (int v = 0; v < kVars; ++v) {
        co_await mio.write_at(r, f, base, var_bytes);
        base += var_bytes;
      }
      co_await mio.close(r, f);
    } else {
      const int fd = co_await posix.open(
          r, "hacc_checkpoint." + std::to_string(r),
          trace::kCreate | trace::kTrunc | trace::kWrOnly);
      for (int v = 0; v < kVars; ++v) {
        co_await posix.write(r, fd, var_bytes);
      }
      co_await posix.close(r, fd);
    }
    co_await h.world().barrier(r);
  });
}

void run_macsio(Harness& h) {
  const auto& cfg = h.config();
  iolib::SiloLite silo(h.ctx());
  const int group_size = cfg.ranks_per_node;  // one group file per node
  const int dumps = cfg.steps / cfg.checkpoint_every;

  h.run([&](Rank r) -> sim::Task<void> {
    const int g = r / group_size;
    mpi::Group group;
    for (int i = 0; i < group_size; ++i) group.push_back(g * group_size + i);
    for (int d = 0; d < dumps; ++d) {
      co_await h.compute(r, 200'000);
      co_await h.world().barrier(r);
      const std::string path = "macsio_silo_" + std::to_string(g) + "_" +
                               std::to_string(d) + ".silo";
      co_await silo.write_group_file(r, path, group, cfg.bytes_per_rank, d);
      co_await h.world().barrier(r);
    }
  });
}

}  // namespace pfsem::apps
