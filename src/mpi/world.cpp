#include "pfsem/mpi/world.hpp"

#include <algorithm>
#include <bit>
#include <coroutine>

#include "pfsem/fault/injector.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::mpi {

// ---------------------------------------------------------------------
// internal state

struct World::PendingCollective {
  trace::CollectiveKind kind{};
  Rank root = kNoRank;
  std::uint64_t max_bytes = 0;
  std::vector<trace::CollectiveArrival> arrivals;          // t_enter global
  std::vector<std::pair<Rank, std::coroutine_handle<>>> waiters;
  std::vector<char> joined;                                // by group position
  std::vector<SimTime> exits;                              // by group position
};

struct World::Mailbox {
  struct PendingSend {
    std::uint64_t bytes = 0;
    SimTime t_start = 0;
    std::coroutine_handle<> handle;  // null for eager (buffered) sends
    SimTime t_send_end = 0;          // valid for eager sends
  };
  struct PendingRecv {
    SimTime t_start = 0;
    std::coroutine_handle<> handle;
    std::uint64_t* bytes_out = nullptr;
  };
  std::deque<PendingSend> sends;
  std::deque<PendingRecv> recvs;
};

namespace {

/// Position of `r` in the sorted group; throws if absent.
std::size_t group_pos(const Group& g, Rank r) {
  auto it = std::lower_bound(g.begin(), g.end(), r);
  require(it != g.end() && *it == r, "rank not a member of collective group");
  return static_cast<std::size_t>(it - g.begin());
}

}  // namespace

World::World(sim::Engine& engine, trace::Collector& collector, WorldConfig cfg)
    : engine_(&engine), collector_(&collector), cfg_(cfg), rng_(cfg.seed) {
  require(cfg_.nranks > 0, "world needs at least one rank");
  require(cfg_.ranks_per_node > 0, "ranks_per_node must be positive");
  all_.resize(static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r) all_[static_cast<std::size_t>(r)] = r;
}

World::~World() = default;

SimDuration World::transfer_time(std::uint64_t bytes) const {
  return static_cast<SimDuration>(static_cast<double>(bytes) / cfg_.net_bytes_per_ns);
}

void World::check_alive(Rank r) const {
  if (injector_ != nullptr && injector_->crashed(r)) throw sim::TaskKilled(r);
}

// ---------------------------------------------------------------------
// point-to-point

sim::Task<void> World::send(Rank from, Rank to, int tag, std::uint64_t bytes) {
  require(from != to, "self-send is not supported");
  check_alive(from);
  if (injector_ != nullptr) {
    // Dropped message: the sender times out and retransmits, which shows
    // up as extra latency before the (reliable) protocol below runs.
    const SimDuration drop = injector_->mpi_delay(from, to, engine_->now());
    if (drop > 0) {
      co_await engine_->delay(drop);
      check_alive(from);
    }
  }
  auto key = std::tuple{from, to, tag};
  auto& slot = mailboxes_[key];
  if (!slot) slot = std::make_unique<Mailbox>();
  Mailbox& mb = *slot;
  const SimTime t0 = engine_->now();

  if (!mb.recvs.empty()) {
    // A receiver is already parked: match immediately (rendezvous).
    auto pr = mb.recvs.front();
    mb.recvs.pop_front();
    const SimTime t_recv_end =
        std::max(t0 + cfg_.p2p_latency, pr.t_start) + transfer_time(bytes);
    const SimTime t_send_end = t_recv_end;
    *pr.bytes_out = bytes;
    collector_->emit_p2p({from, to, tag, bytes, t0, t_send_end, pr.t_start, t_recv_end});
    engine_->schedule(t_recv_end, pr.handle);
    co_await engine_->delay(t_send_end - t0);
    co_return;
  }

  if (bytes <= cfg_.eager_threshold) {
    // Eager protocol: buffer the payload and complete locally; the
    // matching receive finishes the transfer later.
    const SimTime t_send_end = t0 + cfg_.p2p_latency;
    mb.sends.push_back({bytes, t0, {}, t_send_end});
    co_await engine_->delay(t_send_end - t0);
    co_return;
  }

  // Rendezvous: park until a matching receive arrives; the receiver
  // completes the match.
  struct SendWait {
    Mailbox* mb;
    std::uint64_t bytes;
    SimTime t_start;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      mb->sends.push_back({bytes, t_start, h, 0});
    }
    void await_resume() const noexcept {}
  };
  co_await SendWait{&mb, bytes, t0};
}

sim::Task<std::uint64_t> World::recv(Rank me, Rank from, int tag) {
  check_alive(me);
  auto key = std::tuple{from, me, tag};
  auto& slot = mailboxes_[key];
  if (!slot) slot = std::make_unique<Mailbox>();
  Mailbox& mb = *slot;
  const SimTime t0 = engine_->now();

  if (!mb.sends.empty()) {
    auto ps = mb.sends.front();
    mb.sends.pop_front();
    const SimTime t_recv_end =
        std::max(ps.t_start + cfg_.p2p_latency, t0) + transfer_time(ps.bytes);
    const SimTime t_send_end = ps.handle ? t_recv_end : ps.t_send_end;
    collector_->emit_p2p(
        {from, me, tag, ps.bytes, ps.t_start, t_send_end, t0, t_recv_end});
    if (ps.handle) engine_->schedule(t_send_end, ps.handle);
    co_await engine_->delay(t_recv_end - t0);
    co_return ps.bytes;
  }

  std::uint64_t bytes = 0;
  struct RecvWait {
    Mailbox* mb;
    SimTime t_start;
    std::uint64_t* out;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      mb->recvs.push_back({t_start, h, out});
    }
    void await_resume() const noexcept {}
  };
  co_await RecvWait{&mb, t0, &bytes};
  co_return bytes;
}

// ---------------------------------------------------------------------
// collectives

std::deque<std::unique_ptr<World::PendingCollective>>& World::queue_for(
    const Group& group) {
  // A collective group is sorted and duplicate-free, so one the size of
  // the world can only be the world itself — route it past the
  // content-keyed map, whose O(nranks) key compare per joining rank
  // would make every world collective O(nranks^2).
  if (group.size() == all_.size()) return world_pending_;
  return pending_[group];
}

World::PendingCollective& World::join_collective(const Group& group, Rank me,
                                                 trace::CollectiveKind kind,
                                                 Rank root, std::uint64_t bytes,
                                                 SimTime t_enter) {
  require(!group.empty(), "collective group must be sorted and non-empty");
  const std::size_t pos = group_pos(group, me);
  auto& queue = queue_for(group);
  for (auto& p : queue) {
    if (!p->joined[pos]) {
      require(p->kind == kind && p->root == root,
              "collective mismatch: ranks joined different operations");
      p->joined[pos] = 1;
      p->max_bytes = std::max(p->max_bytes, bytes);
      p->arrivals.push_back({me, t_enter, 0});
      return *p;
    }
  }
  // Full content validation once per collective, on the rank that opens
  // it — an O(group) check per *join* would put world collectives right
  // back at O(nranks^2).
  require(std::is_sorted(group.begin(), group.end()),
          "collective group must be sorted and non-empty");
  auto p = std::make_unique<PendingCollective>();
  p->kind = kind;
  p->root = root;
  p->max_bytes = bytes;
  p->joined.assign(group.size(), 0);
  p->joined[pos] = 1;
  p->arrivals.push_back({me, t_enter, 0});
  p->exits.assign(group.size(), 0);
  queue.push_back(std::move(p));
  return *queue.back();
}

void World::complete_collective(const Group& group, PendingCollective& p) {
  SimTime latest = 0;
  for (const auto& a : p.arrivals) latest = std::max(latest, a.t_enter);
  const int hops = std::bit_width(group.size() - 1);  // ceil(log2(P))
  const SimTime t_done = latest + cfg_.collective_base +
                         cfg_.collective_hop * hops + transfer_time(p.max_bytes);
  for (auto& a : p.arrivals) {
    const SimDuration jitter =
        cfg_.exit_jitter == 0
            ? 0
            : static_cast<SimDuration>(
                  rng_.below(static_cast<std::uint64_t>(cfg_.exit_jitter) + 1));
    a.t_exit = t_done + jitter;
    p.exits[group_pos(group, a.rank)] = a.t_exit;
  }
  trace::CollectiveEvent ev;
  ev.kind = p.kind;
  ev.root = p.root;
  ev.arrivals = p.arrivals;
  collector_->emit_collective(std::move(ev));
  for (auto& [rank, handle] : p.waiters) {
    engine_->schedule(p.exits[group_pos(group, rank)], handle);
  }
}

sim::Task<void> World::collective(Rank me, trace::CollectiveKind kind, Rank root,
                                  std::uint64_t bytes, const Group& group) {
  check_alive(me);
  const SimTime t_enter = engine_->now();
  PendingCollective& p = join_collective(group, me, kind, root, bytes, t_enter);
  if (p.arrivals.size() == group.size()) {
    complete_collective(group, p);
    const SimTime my_exit = p.exits[group_pos(group, me)];
    // Remove the completed collective before suspending; `p` dies here.
    auto& queue = queue_for(group);
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->get() == &p) {
        queue.erase(it);
        break;
      }
    }
    co_await engine_->delay(my_exit - engine_->now());
    co_return;
  }
  struct CollectiveWait {
    PendingCollective* p;
    Rank me;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { p->waiters.emplace_back(me, h); }
    void await_resume() const noexcept {}
  };
  co_await CollectiveWait{&p, me};
}

sim::Task<void> World::barrier(Rank me) { return barrier(me, all_); }

sim::Task<void> World::barrier(Rank me, const Group& group) {
  return collective(me, trace::CollectiveKind::Barrier, kNoRank, 0, group);
}

sim::Task<void> World::bcast(Rank me, Rank root, std::uint64_t bytes) {
  return collective(me, trace::CollectiveKind::Bcast, root, bytes, all_);
}

sim::Task<void> World::reduce(Rank me, Rank root, std::uint64_t bytes) {
  return collective(me, trace::CollectiveKind::Reduce, root, bytes, all_);
}

sim::Task<void> World::allreduce(Rank me, std::uint64_t bytes) {
  return collective(me, trace::CollectiveKind::Allreduce, kNoRank, bytes, all_);
}

sim::Task<void> World::gather(Rank me, Rank root, std::uint64_t bytes_each) {
  return gather(me, root, bytes_each, all_);
}

sim::Task<void> World::gather(Rank me, Rank root, std::uint64_t bytes_each,
                              const Group& group) {
  return collective(me, trace::CollectiveKind::Gather, root,
                    bytes_each * group.size(), group);
}

sim::Task<void> World::allgather(Rank me, std::uint64_t bytes_each) {
  return collective(me, trace::CollectiveKind::Allgather, kNoRank,
                    bytes_each * all_.size(), all_);
}

sim::Task<void> World::scatter(Rank me, Rank root, std::uint64_t bytes_each) {
  return collective(me, trace::CollectiveKind::Scatter, root,
                    bytes_each * all_.size(), all_);
}

sim::Task<void> World::alltoall(Rank me, std::uint64_t bytes_each) {
  return collective(me, trace::CollectiveKind::Alltoall, kNoRank,
                    bytes_each * all_.size(), all_);
}

}  // namespace pfsem::mpi
