#pragma once
// Simulated MPI communication for the DES engine.
//
// A World hosts `nranks` simulated processes placed on nodes
// (ranks_per_node each, matching the paper's 8x8 / 32x32 job geometries).
// It provides the communication operations the studied applications and
// I/O libraries need — barrier, point-to-point send/recv with tag
// matching, and rooted/rootless collectives over arbitrary rank groups —
// with a simple latency/bandwidth cost model and deterministic per-rank
// completion jitter, so that per-rank timestamps spread realistically.
//
// Every matched operation is appended to the trace CommLog; the
// happens-before checker (core/happens_before.hpp) consumes those events
// to validate that conflicting I/O is synchronized, as in Section 5.2 of
// the paper.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "pfsem/sim/engine.hpp"
#include "pfsem/trace/collector.hpp"
#include "pfsem/util/rng.hpp"

namespace pfsem::fault {
class Injector;
}  // namespace pfsem::fault

namespace pfsem::mpi {

/// Sorted set of participating ranks in a collective.
using Group = std::vector<Rank>;

struct WorldConfig {
  int nranks = 64;
  int ranks_per_node = 8;
  /// One-way point-to-point latency.
  SimDuration p2p_latency = 2'000;  // 2 us
  /// Messages up to this size complete eagerly at the sender (buffered
  /// copy); larger sends rendezvous with the matching receive.
  std::uint64_t eager_threshold = 64 * 1024;
  /// Network bandwidth for message payloads.
  double net_bytes_per_ns = 10.0;  // 10 GB/s
  /// Fixed cost to enter/exit a collective, plus a per-hop cost times
  /// ceil(log2(P)) for the fan-in/fan-out tree.
  SimDuration collective_base = 3'000;
  SimDuration collective_hop = 1'500;
  /// Max deterministic per-rank jitter added to collective exits. This is
  /// what spreads "simultaneous" post-barrier activity across ranks.
  SimDuration exit_jitter = 4'000;
  std::uint64_t seed = 0x5eed;
};

class World {
 public:
  World(sim::Engine& engine, trace::Collector& collector, WorldConfig cfg);
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] trace::Collector& collector() { return *collector_; }
  [[nodiscard]] int nranks() const { return cfg_.nranks; }
  [[nodiscard]] int node_of(Rank r) const { return r / cfg_.ranks_per_node; }
  [[nodiscard]] const WorldConfig& config() const { return cfg_; }

  /// Group containing every rank.
  [[nodiscard]] const Group& all() const { return all_; }

  /// Attach a fault injector (nullptr detaches; not owned). Messages may
  /// then be dropped-and-retransmitted (extra delivery delay), and any
  /// operation entered by a crashed rank throws sim::TaskKilled.
  void set_fault_injector(fault::Injector* injector) { injector_ = injector; }

  // --- point-to-point -------------------------------------------------
  /// Blocking send; completes once the message is delivered (rendezvous).
  [[nodiscard]] sim::Task<void> send(Rank from, Rank to, int tag,
                                     std::uint64_t bytes);
  /// Blocking receive matching (from, tag); returns the payload size.
  [[nodiscard]] sim::Task<std::uint64_t> recv(Rank me, Rank from, int tag);

  // --- collectives ----------------------------------------------------
  // Each must be called exactly once per participating rank, in the same
  // order on every rank (normal SPMD discipline); a kind/root mismatch
  // between ranks joining the same collective throws.
  [[nodiscard]] sim::Task<void> barrier(Rank me);
  [[nodiscard]] sim::Task<void> barrier(Rank me, const Group& group);
  [[nodiscard]] sim::Task<void> bcast(Rank me, Rank root, std::uint64_t bytes);
  [[nodiscard]] sim::Task<void> reduce(Rank me, Rank root, std::uint64_t bytes);
  [[nodiscard]] sim::Task<void> allreduce(Rank me, std::uint64_t bytes);
  [[nodiscard]] sim::Task<void> gather(Rank me, Rank root, std::uint64_t bytes_each);
  [[nodiscard]] sim::Task<void> gather(Rank me, Rank root, std::uint64_t bytes_each,
                                       const Group& group);
  [[nodiscard]] sim::Task<void> allgather(Rank me, std::uint64_t bytes_each);
  [[nodiscard]] sim::Task<void> scatter(Rank me, Rank root, std::uint64_t bytes_each);
  [[nodiscard]] sim::Task<void> alltoall(Rank me, std::uint64_t bytes_each);

  /// Generic collective over an explicit group (used by the wrappers).
  [[nodiscard]] sim::Task<void> collective(Rank me, trace::CollectiveKind kind,
                                           Rank root, std::uint64_t bytes,
                                           const Group& group);

 private:
  struct PendingCollective;
  struct Mailbox;

  PendingCollective& join_collective(const Group& group, Rank me,
                                     trace::CollectiveKind kind, Rank root,
                                     std::uint64_t bytes, SimTime t_enter);
  /// The pending queue this group's collectives park in (world-sized
  /// groups get the dedicated O(1) slot).
  std::deque<std::unique_ptr<PendingCollective>>& queue_for(const Group& group);
  void complete_collective(const Group& group, PendingCollective& p);
  [[nodiscard]] SimDuration transfer_time(std::uint64_t bytes) const;
  /// Fail-stop check at an operation boundary: a crashed rank unwinds.
  void check_alive(Rank r) const;

  sim::Engine* engine_;
  trace::Collector* collector_;
  WorldConfig cfg_;
  Group all_;
  Rng rng_;
  /// Pending queue for full-world collectives. A sorted duplicate-free
  /// group the size of the world IS the world, so these never need the
  /// content-keyed map below — which matters: a map lookup keyed by the
  /// whole member vector costs O(nranks) per joining rank, turning every
  /// world collective into O(nranks^2).
  std::deque<std::unique_ptr<PendingCollective>> world_pending_;
  std::map<Group, std::deque<std::unique_ptr<PendingCollective>>> pending_;
  std::map<std::tuple<Rank, Rank, int>, std::unique_ptr<Mailbox>> mailboxes_;
  fault::Injector* injector_ = nullptr;  ///< not owned; nullptr = no faults
};

}  // namespace pfsem::mpi
