#pragma once
// Abstract file-system interface the simulated I/O stack runs against.
// Implemented by vfs::Pfs (the consistency-model-parameterized parallel
// file system) and vfs::BurstBufferPfs (a node-local burst-buffer tier
// with commit semantics, UnifyFS/BurstFS style). Every operation takes
// the current simulated time and returns a simulated cost the caller
// advances the clock by.

#include <string>
#include <vector>

#include "pfsem/vfs/pfs_types.hpp"

namespace pfsem::fault {
class Injector;
}  // namespace pfsem::fault

namespace pfsem::vfs {

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual OpenResult open(Rank r, const std::string& path, int flags,
                          SimTime now) = 0;
  virtual MetaResult close(Rank r, int fd, SimTime now) = 0;
  virtual WriteResult write(Rank r, int fd, std::uint64_t count, SimTime now) = 0;
  virtual WriteResult pwrite(Rank r, int fd, Offset off, std::uint64_t count,
                             SimTime now) = 0;
  virtual ReadResult read(Rank r, int fd, std::uint64_t count, SimTime now) = 0;
  virtual ReadResult pread(Rank r, int fd, Offset off, std::uint64_t count,
                           SimTime now) = 0;
  virtual MetaResult lseek(Rank r, int fd, std::int64_t delta, int whence,
                           SimTime now) = 0;
  virtual MetaResult fsync(Rank r, int fd, SimTime now) = 0;
  virtual MetaResult ftruncate(Rank r, int fd, Offset length, SimTime now) = 0;

  virtual MetaResult stat(const std::string& path, SimTime now) = 0;
  virtual MetaResult access(const std::string& path, SimTime now) = 0;
  virtual MetaResult unlink(const std::string& path, SimTime now) = 0;
  virtual MetaResult mkdir(const std::string& path, SimTime now) = 0;
  virtual MetaResult rename(const std::string& from, const std::string& to,
                            SimTime now) = 0;

  /// Stage pre-existing ("genesis") input data, visible to every process
  /// under every model, with no trace records and no conflicts.
  virtual void preload(const std::string& path, Offset size) = 0;

  /// Attach a fault injector (nullptr detaches). The injector may fail or
  /// delay any subsequent operation; the file system does not own it.
  virtual void set_fault_injector(fault::Injector* injector) = 0;

  /// Fail-stop crash of rank `r` at time `now`: discard every write by `r`
  /// that is not yet durable under the active consistency model (laminated
  /// files always survive), drop its open descriptors *without* the
  /// close-time commit/publish, and release its locks. Returns the version
  /// tags of the writes that were lost.
  virtual std::vector<VersionTag> crash_rank(Rank r, SimTime now) = 0;

  /// Metadata round-trip latency (used by the POSIX facade for utility
  /// calls with no data movement).
  [[nodiscard]] virtual SimDuration meta_latency() const = 0;
};

}  // namespace pfsem::vfs
