#pragma once
// Shared value types of the simulated file systems: consistency models,
// configuration, per-operation results, and traffic counters. Split out of
// pfs.hpp so the FileSystem interface and alternative backends (burst
// buffer) can share them.

#include <cstdint>
#include <string>
#include <vector>

#include "pfsem/util/extent.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::vfs {

enum class ConsistencyModel : std::uint8_t { Strong, Commit, Session, Eventual };

[[nodiscard]] const char* to_string(ConsistencyModel m);

/// Unique id of a write operation; 0 denotes never-written ("hole") bytes.
using VersionTag = std::uint64_t;

struct PfsConfig {
  ConsistencyModel model = ConsistencyModel::Strong;
  /// Eventual model: delay until a write is visible to other processes.
  SimDuration eventual_propagation = 50'000'000;  // 50 ms
  /// Metadata-server round trip (open/close/stat/...).
  SimDuration meta_latency = 30'000;  // 30 us
  /// Per-data-op base latency (client->OSS round trip).
  SimDuration data_latency = 50'000;  // 50 us
  /// Aggregate data bandwidth (per OST when striping).
  double bytes_per_ns = 5.0;  // 5 GB/s
  /// Extra latency charged per lock message under the strong model.
  SimDuration lock_latency = 10'000;  // 10 us
  /// Byte granularity of distributed locks (strong model only).
  Offset lock_block = 1u << 20;
  /// Lustre-style striping: files are striped round-robin over
  /// `stripe_count` object storage targets in `stripe_size` chunks; each
  /// OST serves `bytes_per_ns` of bandwidth independently, so an access
  /// costs the *maximum* per-OST transfer, and every OST touched by an
  /// access is one more RPC. stripe_count == 1 reproduces the unstriped
  /// model exactly.
  int stripe_count = 1;
  Offset stripe_size = 1u << 20;
};

/// Per-OST traffic counters (requests and bytes served), for the striping
/// ablation benches.
struct OstStats {
  std::vector<std::uint64_t> requests;
  std::vector<std::uint64_t> bytes;
};

/// A slice of a read result: which write (and writer) produced these bytes.
struct ReadExtent {
  Extent ext;
  VersionTag version = 0;  ///< 0 = hole (never written / not yet visible)
  Rank writer = kNoRank;
};

// Every result carries `err`, a simulated environment errno (values from
// pfsem/fault/plan.hpp; 0 = none). `err != 0` marks a *transient
// environment fault* (injected EIO/ENOSPC, laminated-file EROFS) that the
// iolib retry policy may absorb; a semantic failure (ret/fd == -1 with
// err == 0, e.g. opening a missing file) is part of the modelled behaviour
// and is never retried.
struct OpenResult {
  int fd = -1;
  SimDuration cost = 0;
  int err = 0;
};
struct WriteResult {
  VersionTag version = 0;
  Offset offset = 0;  ///< where the write landed (relevant for O_APPEND)
  SimDuration cost = 0;
  int err = 0;
};
struct ReadResult {
  std::vector<ReadExtent> extents;
  Offset offset = 0;
  std::uint64_t bytes = 0;  ///< bytes actually read (clipped at EOF)
  SimDuration cost = 0;
  int err = 0;
};
struct MetaResult {
  std::int64_t ret = 0;  ///< 0/-1 success/failure, or a size for stat
  SimDuration cost = 0;
  int err = 0;
};

/// Counters for the strong-model lock cost ablation (bench_perf_vfs).
struct LockStats {
  std::uint64_t requests = 0;     ///< lock acquisitions sent to the MDS
  std::uint64_t revocations = 0;  ///< conflicting holders called back
  std::uint64_t meta_ops = 0;     ///< metadata-server round trips
};

}  // namespace pfsem::vfs
