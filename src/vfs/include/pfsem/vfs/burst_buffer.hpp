#pragma once
// Burst-buffer file system (UnifyFS / BurstFS class, paper Section 2.3).
//
// Writes land in the writing process's *node-local* buffer at NVMe speed;
// they become globally visible only on a commit (fsync/close), which
// publishes the write's extent metadata to a distributed key-value index
// — exactly the commit consistency semantics of Section 3.2, and exactly
// why these file systems cannot offer POSIX semantics cheaply.
//
// Cost model:
//   write          : node-local latency + bytes / local bandwidth
//   fsync / close  : one index-publish round trip per *extent batch*
//   read           : local if every byte visible to the reader was
//                    written on the reader's own node (or preloaded),
//                    otherwise a remote fetch over the interconnect
//   laminate       : publish everything and freeze (see Pfs::laminate)
//
// Visibility bookkeeping is delegated to an inner vfs::Pfs configured
// with the commit model, so the burst buffer inherits the verified
// semantics implementation and only layers placement + cost on top.

#include <memory>

#include "pfsem/vfs/pfs.hpp"

namespace pfsem::vfs {

struct BurstBufferConfig {
  int ranks_per_node = 8;
  /// Node-local NVMe characteristics.
  SimDuration local_latency = 5'000;  // 5 us
  double local_bytes_per_ns = 20.0;   // 20 GB/s per node
  /// Publishing committed extents to the distributed index.
  SimDuration index_publish_latency = 40'000;  // 40 us
  /// Fetching remote (other-node) data over the interconnect.
  SimDuration remote_latency = 15'000;  // 15 us
  double remote_bytes_per_ns = 10.0;    // 10 GB/s
  /// Namespace operations (metadata service).
  SimDuration meta_latency = 20'000;  // 20 us
};

/// Statistics for the burst-buffer ablation benches.
struct BurstBufferStats {
  std::uint64_t local_writes = 0;
  std::uint64_t local_bytes = 0;
  std::uint64_t index_publishes = 0;
  std::uint64_t local_reads = 0;
  std::uint64_t remote_reads = 0;
  std::uint64_t remote_bytes = 0;
};

class BurstBufferPfs final : public FileSystem {
 public:
  explicit BurstBufferPfs(BurstBufferConfig cfg = {});
  ~BurstBufferPfs() override;

  [[nodiscard]] const BurstBufferConfig& config() const { return cfg_; }
  [[nodiscard]] const BurstBufferStats& stats() const { return stats_; }
  [[nodiscard]] SimDuration meta_latency() const override {
    return cfg_.meta_latency;
  }
  /// The inner commit-semantics store (for oracle checks in tests).
  [[nodiscard]] Pfs& inner() { return *inner_; }

  OpenResult open(Rank r, const std::string& path, int flags,
                  SimTime now) override;
  MetaResult close(Rank r, int fd, SimTime now) override;
  WriteResult write(Rank r, int fd, std::uint64_t count, SimTime now) override;
  WriteResult pwrite(Rank r, int fd, Offset off, std::uint64_t count,
                     SimTime now) override;
  ReadResult read(Rank r, int fd, std::uint64_t count, SimTime now) override;
  ReadResult pread(Rank r, int fd, Offset off, std::uint64_t count,
                   SimTime now) override;
  MetaResult lseek(Rank r, int fd, std::int64_t delta, int whence,
                   SimTime now) override;
  MetaResult fsync(Rank r, int fd, SimTime now) override;
  MetaResult ftruncate(Rank r, int fd, Offset length, SimTime now) override;

  MetaResult stat(const std::string& path, SimTime now) override;
  MetaResult access(const std::string& path, SimTime now) override;
  MetaResult unlink(const std::string& path, SimTime now) override;
  MetaResult mkdir(const std::string& path, SimTime now) override;
  MetaResult rename(const std::string& from, const std::string& to,
                    SimTime now) override;

  /// Stage pre-existing input data (replicated to every node's view).
  void preload(const std::string& path, Offset size) override {
    inner_->preload(path, size);
  }
  /// Faults are injected by the inner store (shared visibility bookkeeping);
  /// this backend only skips its placement stats on failed attempts.
  void set_fault_injector(fault::Injector* injector) override {
    inner_->set_fault_injector(injector);
  }
  /// Crash durability is the inner commit model's: node-local writes not
  /// yet published to the index die with the process.
  std::vector<VersionTag> crash_rank(Rank r, SimTime now) override {
    return inner_->crash_rank(r, now);
  }
  /// Lamination: publish + freeze (Section 3.2).
  MetaResult laminate(const std::string& path, SimTime now);

 private:
  [[nodiscard]] int node_of(Rank r) const { return r / cfg_.ranks_per_node; }
  [[nodiscard]] SimDuration local_transfer(std::uint64_t bytes) const;
  [[nodiscard]] SimDuration remote_transfer(std::uint64_t bytes) const;

  BurstBufferConfig cfg_;
  std::unique_ptr<Pfs> inner_;
  BurstBufferStats stats_;
};

}  // namespace pfsem::vfs
