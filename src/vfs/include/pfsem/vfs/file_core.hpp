#pragma once
// Shared semantic core of the simulated parallel file systems: the
// per-file write history, the distributed-lock cost model, and the
// visibility/durability rules of the four consistency models. Extracted
// from Pfs so the single-server backend and the multi-server PfsCluster
// (cluster.hpp) resolve reads, charge locks, and decide crash durability
// with the *same* code — the differential oracle ("fault-free output is
// byte-identical across topologies", tests/test_cluster.cpp) then holds by
// construction instead of by parallel maintenance.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pfsem/util/extent.hpp"
#include "pfsem/util/types.hpp"
#include "pfsem/vfs/pfs_types.hpp"

namespace pfsem::fault {
class Injector;
}

namespace pfsem::vfs::detail {

/// One recorded write. t_commit/t_publish start at kTimeNever and are set
/// by fsync (commit) and close (commit + publish) respectively.
struct WriteRecord {
  VersionTag id = 0;
  Rank writer = kNoRank;
  Extent ext;
  SimTime t_write = 0;
  SimTime t_commit = kTimeNever;
  SimTime t_publish = kTimeNever;
};

struct LockBlock {
  bool exclusive = false;
  std::set<Rank> holders;
};

/// Piece of a resolved read range: [begin, end) carries version v by w.
struct Seg {
  Offset end = 0;
  VersionTag v = 0;
  Rank w = kNoRank;
};

/// Overwrite [e.begin, e.end) in the segment map with (v, w).
void assign(std::map<Offset, Seg>& m, Extent e, VersionTag v, Rank w);

/// Flatten the segment map into ReadExtents, merging adjacent segments
/// that carry the same version.
[[nodiscard]] std::vector<ReadExtent> emit_extents(
    const std::map<Offset, Seg>& m);

/// The per-file state every backend keeps: the write history, its block
/// index, the distributed-lock table, and the lamination flag.
struct FileCore {
  std::string path;
  std::vector<WriteRecord> writes;
  Offset size = 0;
  bool laminated = false;
  std::map<Offset, LockBlock> locks;  // keyed by block index
  /// Block index over `writes` (4 MiB buckets): resolve_view() only scans
  /// writes overlapping the read's blocks instead of the whole history.
  static constexpr Offset kIndexBlock = 4u << 20;
  std::map<Offset, std::vector<std::uint32_t>> write_index;

  void index_write(std::uint32_t idx) {
    const Extent& e = writes[idx].ext;
    if (e.empty()) return;
    const Offset first = e.begin / kIndexBlock;
    const Offset last = (e.end - 1) / kIndexBlock;
    for (Offset b = first; b <= last; ++b) write_index[b].push_back(idx);
  }
  void rebuild_index() {
    write_index.clear();
    for (std::uint32_t i = 0; i < writes.size(); ++i) index_write(i);
  }
};

/// Consistency environment shared by visibility resolution and crash
/// durability: the model, its propagation knob, and the (optional) fault
/// injector whose visibility spikes and network partitions stretch keys.
struct ResolveEnv {
  ConsistencyModel model = ConsistencyModel::Strong;
  SimDuration eventual_propagation = 0;
  const fault::Injector* injector = nullptr;
};

/// What rank `r` reading [off, off+count) of `f` at `now` observes under
/// `env` (session semantics key off `session_open`, the reader's open
/// time). Cross-partition writes (fault plan `partition:` clauses) have
/// their visibility key clamped to the partition heal time.
[[nodiscard]] std::vector<ReadExtent> resolve_view(
    const FileCore& f, const ResolveEnv& env, Rank r, SimTime now,
    SimTime session_open, Offset off, std::uint64_t count);

/// What a POSIX-strong PFS would return for this range right now — the
/// oracle tests compare weaker-model reads against to detect staleness.
[[nodiscard]] std::vector<ReadExtent> strong_view_of(const FileCore& f,
                                                     Offset off,
                                                     std::uint64_t count);

/// Would `w` survive a crash of its writer at `now`? Mirrors the
/// visibility rules of resolve_view(): strong writes hit stable storage
/// synchronously; commit writes survive iff fsync'd/closed; session
/// writes iff published by a close; eventual writes iff their propagation
/// (plus any spike) has elapsed.
[[nodiscard]] bool write_durable(const WriteRecord& w, const ResolveEnv& env,
                                 SimTime now);

/// Distributed-lock cost knobs (strong model only; zero cost otherwise).
struct LockParams {
  ConsistencyModel model = ConsistencyModel::Strong;
  SimDuration lock_latency = 0;
  Offset lock_block = 1u << 20;
};

/// Acquire (or upgrade) `r`'s locks covering `ext`, charging one
/// lock_latency per request and per conflicting-holder revocation.
[[nodiscard]] SimDuration charge_locks(FileCore& f, Rank r, Extent ext,
                                       bool exclusive, const LockParams& p,
                                       LockStats& stats);

/// Fail-stop crash of rank `r` against every live file: erase its
/// non-durable writes (laminated files are globally published and always
/// survive), rebuild indexes and sizes, release its locks. Returns the
/// discarded version tags, sorted.
std::vector<VersionTag> apply_rank_crash(
    std::vector<std::shared_ptr<FileCore>>& files, Rank r, SimTime now,
    const ResolveEnv& env);

}  // namespace pfsem::vfs::detail
