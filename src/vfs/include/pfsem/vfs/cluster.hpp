#pragma once
// OrangeFS/PVFS2-style multi-server parallel file system with server
// fault domains (docs/topology.md).
//
// Topology: N metadata servers shard the namespace by path hash (FNV-1a);
// M data servers (OSTs) hold file data striped in power-of-two `stripe`
// blocks (block b lives on OST b % M). Clients are stateless lookup →
// handle machines: the open() round trip resolves the path on its
// metadata shard, and data operations then go straight to the OSTs —
// which is why data I/O keeps working while a metadata server is down.
//
// Fault domains (driven by fault plan crash_mds / crash_ost /
// restart_server events, applied by the harness at their simulated
// instants):
//  - MDS crash: each shard has `mds_replicas - 1` standby replicas. The
//    first client metadata op that hits the dead primary observes
//    EHOSTDOWN and promotes a standby; the iolib failover retry redirects
//    the op, which then succeeds — degraded but alive. When no replica
//    remains, every op on the shard fails EHOSTDOWN until the client's
//    failover budget is exhausted: a loud permanent failure.
//    Commit points that cannot surface an errno (close, laminate) ride
//    the promoted replica silently; with no replica left their metadata
//    effect (commit/publish) is lost.
//  - OST crash: writes still succeed (client write-behind; the data
//    replays when the server returns), but reads resolve normally and
//    then *punch holes* over stripe blocks served by a down OST — a
//    degraded read that reports exactly which bytes are unavailable.
//    restart_server makes those stripes readable again.
//  - Network partitions (fault plan `partition:`) are model-level: the
//    shared visibility core defers cross-partition keys to the heal time
//    (file_core.hpp), so split-brain staleness is observable under every
//    consistency model, on this backend and on single-server Pfs alike.
//
// Differential oracle: with no faults, every operation has the same
// result and the same simulated cost as single-server Pfs regardless of
// (N, M, stripe) — semantics come from the shared file core, metadata
// ops cost one meta_latency wherever the shard lives, and transfers are
// client-link-bound (PfsConfig::bytes_per_ns is the aggregate), so trace
// bundles and reports are byte-identical across topologies.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "pfsem/fault/plan.hpp"
#include "pfsem/trace/path_table.hpp"
#include "pfsem/vfs/file_core.hpp"
#include "pfsem/vfs/filesystem.hpp"
#include "pfsem/vfs/pfs_types.hpp"

namespace pfsem::vfs {

struct ClusterConfig {
  /// Consistency model and cost knobs; stripe_count/stripe_size are
  /// ignored (the cluster topology below replaces them).
  PfsConfig base;
  int mds_count = 1;       ///< metadata servers (namespace shards)
  int ost_count = 1;       ///< data servers
  Offset stripe = 64u << 10;  ///< power-of-two stripe block (64 KiB)
  int mds_replicas = 2;    ///< primary + standbys per metadata shard
};

/// Availability and traffic of one metadata shard.
struct MdsState {
  bool up = true;
  int standbys = 0;            ///< standby replicas still available
  std::uint64_t meta_ops = 0;  ///< ops served by this shard
  std::uint64_t failovers = 0; ///< standby promotions on this shard
};

/// Availability of one data server (traffic lives in OstStats).
struct OstState {
  bool up = true;
};

class PfsCluster final : public FileSystem {
 public:
  explicit PfsCluster(ClusterConfig cfg = {});
  ~PfsCluster() override;
  PfsCluster(const PfsCluster&) = delete;
  PfsCluster& operator=(const PfsCluster&) = delete;

  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] const LockStats& lock_stats() const { return locks_; }
  [[nodiscard]] const OstStats& ost_stats() const { return osts_; }
  [[nodiscard]] const std::vector<MdsState>& mds_states() const { return mds_; }
  [[nodiscard]] const std::vector<OstState>& ost_states() const { return ost_; }
  [[nodiscard]] SimDuration meta_latency() const override {
    return cfg_.base.meta_latency;
  }

  /// Metadata shard serving `path` (FNV-1a hash mod mds_count).
  [[nodiscard]] int shard_of(std::string_view path) const;

  // --- file data operations (see FileSystem) ----------------------------
  OpenResult open(Rank r, const std::string& path, int flags,
                  SimTime now) override;
  MetaResult close(Rank r, int fd, SimTime now) override;
  WriteResult write(Rank r, int fd, std::uint64_t count, SimTime now) override;
  WriteResult pwrite(Rank r, int fd, Offset off, std::uint64_t count,
                     SimTime now) override;
  ReadResult read(Rank r, int fd, std::uint64_t count, SimTime now) override;
  ReadResult pread(Rank r, int fd, Offset off, std::uint64_t count,
                   SimTime now) override;
  MetaResult lseek(Rank r, int fd, std::int64_t delta, int whence,
                   SimTime now) override;
  MetaResult fsync(Rank r, int fd, SimTime now) override;
  MetaResult ftruncate(Rank r, int fd, Offset length, SimTime now) override;

  /// UnifyFS-style lamination; a commit point, so it rides a promoted
  /// replica silently (never fails with EHOSTDOWN).
  MetaResult laminate(const std::string& path, SimTime now);

  // --- namespace / metadata operations ----------------------------------
  MetaResult stat(const std::string& path, SimTime now) override;
  MetaResult access(const std::string& path, SimTime now) override;
  MetaResult unlink(const std::string& path, SimTime now) override;
  MetaResult mkdir(const std::string& path, SimTime now) override;
  MetaResult rename(const std::string& from, const std::string& to,
                    SimTime now) override;

  void preload(const std::string& path, Offset size) override;

  // --- fault injection (pfsem::fault) ------------------------------------
  void set_fault_injector(fault::Injector* injector) override;
  std::vector<VersionTag> crash_rank(Rank r, SimTime now) override;

  /// Apply one server crash/restart at its simulated instant (called from
  /// the harness's per-event killable roots, in deterministic DES order).
  void apply_server_event(const fault::ServerEvent& ev, SimTime now);

  // --- introspection (tests & benches) ----------------------------------
  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] Offset file_size(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> list_files() const;
  [[nodiscard]] std::vector<ReadExtent> strong_view(const std::string& path,
                                                    Offset off,
                                                    std::uint64_t count) const;

 private:
  using File = detail::FileCore;
  struct OpenFile;

  [[nodiscard]] detail::ResolveEnv env() const {
    return {cfg_.base.model, cfg_.base.eventual_propagation, injector_};
  }
  std::shared_ptr<File> lookup(const std::string& path) const;
  std::shared_ptr<File>& slot(const std::string& path);
  /// Availability check + per-shard accounting for one metadata op. 0 =
  /// served. A dead primary with a standby promotes it; `can_fail` ops
  /// observe EHOSTDOWN once (the client failover redirects), commit
  /// points (can_fail = false) ride the new primary silently.
  int mds_route(int shard, SimTime now, bool can_fail = true);
  SimDuration charge_locks(File& f, Rank r, Extent ext, bool exclusive);
  SimDuration charge_transfer(Extent ext, SimTime now);
  /// Replace resolved bytes on down-OST stripe blocks with holes; true if
  /// the range touched a down OST.
  bool punch_dead_stripes(std::vector<ReadExtent>& extents, Extent range);
  int inject(fault::OpClass c, Rank r, SimTime now);

  ClusterConfig cfg_;
  trace::PathTable names_;
  std::vector<std::shared_ptr<File>> files_;
  std::set<FileId> dirs_;
  std::map<std::pair<Rank, int>, std::unique_ptr<OpenFile>> open_files_;
  std::map<Rank, int> next_fd_;
  VersionTag next_version_ = 1;
  LockStats locks_;
  OstStats osts_;
  std::vector<MdsState> mds_;
  std::vector<OstState> ost_;
  bool any_ost_down_ = false;  ///< fast-path guard for punch_dead_stripes
  fault::Injector* injector_ = nullptr;  ///< not owned; nullptr = no faults
};

}  // namespace pfsem::vfs
