#pragma once
// In-memory parallel file system simulator with pluggable consistency
// semantics, implementing the four models of Section 3 of the paper:
//
//   Strong   — POSIX sequential consistency: a write is visible to every
//              process the moment it returns (Lustre/GPFS/BeeGFS class).
//   Commit   — writes become globally visible when the writer executes a
//              commit (fsync/close) (UnifyFS/BurstFS/SymphonyFS class).
//   Session  — writes become visible to a reader only if the writer closed
//              the file before the reader opened it (NFS/Gfarm-BB class).
//   Eventual — writes propagate after a configurable delay with no
//              synchronization at all (PLFS/echofs class).
//
// Data buffers are never stored: each write gets a unique VersionTag and
// reads return the tags visible to the reading process, so tests can tell
// exactly *which* write a read observed and detect stale data. A read that
// would return different bytes than POSIX-strong semantics is observable
// staleness — the ground truth the conflict detector predicts.
//
// The Pfs is not coroutine-aware: operations take the current simulated
// time and return a simulated cost which the caller (pfsem::iolib) awaits.
// Under the strong model a distributed-lock cost model charges lock
// acquisition/revocation traffic, the overhead the paper identifies as the
// price of POSIX semantics (Section 3.1); data transfers are striped
// round-robin across OSTs (PfsConfig::stripe_count).

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pfsem/trace/path_table.hpp"
#include "pfsem/vfs/file_core.hpp"
#include "pfsem/vfs/filesystem.hpp"
#include "pfsem/vfs/pfs_types.hpp"

namespace pfsem::vfs {

class Pfs final : public FileSystem {
 public:
  explicit Pfs(PfsConfig cfg = {});
  ~Pfs() override;
  Pfs(const Pfs&) = delete;
  Pfs& operator=(const Pfs&) = delete;

  [[nodiscard]] const PfsConfig& config() const { return cfg_; }
  [[nodiscard]] const LockStats& lock_stats() const { return locks_; }
  [[nodiscard]] const OstStats& ost_stats() const { return osts_; }
  [[nodiscard]] SimDuration meta_latency() const override {
    return cfg_.meta_latency;
  }

  // --- file data operations (see FileSystem) ----------------------------
  OpenResult open(Rank r, const std::string& path, int flags,
                  SimTime now) override;
  MetaResult close(Rank r, int fd, SimTime now) override;
  WriteResult write(Rank r, int fd, std::uint64_t count, SimTime now) override;
  WriteResult pwrite(Rank r, int fd, Offset off, std::uint64_t count,
                     SimTime now) override;
  ReadResult read(Rank r, int fd, std::uint64_t count, SimTime now) override;
  ReadResult pread(Rank r, int fd, Offset off, std::uint64_t count,
                   SimTime now) override;
  MetaResult lseek(Rank r, int fd, std::int64_t delta, int whence,
                   SimTime now) override;
  MetaResult fsync(Rank r, int fd, SimTime now) override;
  MetaResult ftruncate(Rank r, int fd, Offset length, SimTime now) override;

  /// UnifyFS-style lamination (Section 3.2): make every write to `path`
  /// globally visible and the file permanently read-only. Subsequent
  /// writes fail with ret -1 regardless of model.
  MetaResult laminate(const std::string& path, SimTime now);

  // --- namespace / metadata operations ----------------------------------
  MetaResult stat(const std::string& path, SimTime now) override;
  MetaResult access(const std::string& path, SimTime now) override;
  MetaResult unlink(const std::string& path, SimTime now) override;
  MetaResult mkdir(const std::string& path, SimTime now) override;
  MetaResult rename(const std::string& from, const std::string& to,
                    SimTime now) override;

  /// Create `path` with `size` bytes of pre-existing ("genesis") content,
  /// visible to every process under every consistency model — input files
  /// staged before the traced job starts (datasets, configuration decks).
  /// Emits no trace records and no conflicts.
  void preload(const std::string& path, Offset size) override;

  // --- fault injection (pfsem::fault) ------------------------------------
  void set_fault_injector(fault::Injector* injector) override;
  std::vector<VersionTag> crash_rank(Rank r, SimTime now) override;

  // --- introspection (tests & benches) ----------------------------------
  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] Offset file_size(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> list_files() const;

  /// What a POSIX-strong PFS would return for this range right now — the
  /// oracle tests compare weaker-model reads against to detect staleness.
  [[nodiscard]] std::vector<ReadExtent> strong_view(const std::string& path,
                                                    Offset off,
                                                    std::uint64_t count) const;

 private:
  /// Per-file semantics live in the shared core (file_core.hpp) so the
  /// multi-server PfsCluster resolves reads with identical code.
  using File = detail::FileCore;
  struct OpenFile;

  File& file_for_fd(Rank r, int fd);
  std::shared_ptr<File> lookup(const std::string& path) const;
  /// Slot for `path` in the id-indexed file vector, interning on demand.
  /// A null slot means the name is known but no file currently exists
  /// (never created, unlinked, or renamed away).
  std::shared_ptr<File>& slot(const std::string& path);
  SimDuration charge_locks(File& f, Rank r, Extent ext, bool exclusive);
  /// Transfer cost of `ext` across the striped OSTs (updates ost_stats).
  /// An active OST slowdown (fault injection) stretches the affected
  /// per-OST transfer times.
  SimDuration charge_transfer(Extent ext, SimTime now);
  /// Injected errno for one operation (0 when no injector / no fault).
  int inject(int op_class, Rank r, SimTime now);
  std::vector<ReadExtent> resolve(const File& f, Rank r, SimTime now,
                                  SimTime session_open, Offset off,
                                  std::uint64_t count) const;

  PfsConfig cfg_;
  /// Namespace: every path ever seen is interned once; live files occupy
  /// the matching slot of the dense id-indexed vector and directories are
  /// a set of interned ids. No string-keyed map on the simulation path.
  trace::PathTable names_;
  std::vector<std::shared_ptr<File>> files_;
  std::set<FileId> dirs_;
  std::map<std::pair<Rank, int>, std::unique_ptr<OpenFile>> open_files_;
  std::map<Rank, int> next_fd_;
  VersionTag next_version_ = 1;
  LockStats locks_;
  OstStats osts_;
  fault::Injector* injector_ = nullptr;  ///< not owned; nullptr = no faults
};

}  // namespace pfsem::vfs
