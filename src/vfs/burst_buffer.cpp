#include "pfsem/vfs/burst_buffer.hpp"

namespace pfsem::vfs {

BurstBufferPfs::BurstBufferPfs(BurstBufferConfig cfg) : cfg_(cfg) {
  PfsConfig inner;
  inner.model = ConsistencyModel::Commit;  // the BB semantics class
  inner.meta_latency = cfg_.meta_latency;
  // Inner costs are discarded; this backend prices operations itself.
  inner.data_latency = 0;
  inner_ = std::make_unique<Pfs>(inner);
}

BurstBufferPfs::~BurstBufferPfs() = default;

SimDuration BurstBufferPfs::local_transfer(std::uint64_t bytes) const {
  return cfg_.local_latency +
         static_cast<SimDuration>(static_cast<double>(bytes) /
                                  cfg_.local_bytes_per_ns);
}

SimDuration BurstBufferPfs::remote_transfer(std::uint64_t bytes) const {
  return cfg_.remote_latency +
         static_cast<SimDuration>(static_cast<double>(bytes) /
                                  cfg_.remote_bytes_per_ns);
}

OpenResult BurstBufferPfs::open(Rank r, const std::string& path, int flags,
                                SimTime now) {
  auto res = inner_->open(r, path, flags, now);
  res.cost = cfg_.meta_latency;
  return res;
}

MetaResult BurstBufferPfs::close(Rank r, int fd, SimTime now) {
  auto res = inner_->close(r, fd, now);
  // close publishes the caller's extents (a commit).
  ++stats_.index_publishes;
  res.cost = cfg_.index_publish_latency;
  return res;
}

WriteResult BurstBufferPfs::write(Rank r, int fd, std::uint64_t count,
                                  SimTime now) {
  auto res = inner_->write(r, fd, count, now);
  if (res.err != 0) {  // failed attempt: device latency, no bytes landed
    res.cost = cfg_.local_latency;
    return res;
  }
  ++stats_.local_writes;
  stats_.local_bytes += count;
  res.cost = local_transfer(count);
  return res;
}

WriteResult BurstBufferPfs::pwrite(Rank r, int fd, Offset off,
                                   std::uint64_t count, SimTime now) {
  auto res = inner_->pwrite(r, fd, off, count, now);
  if (res.err != 0) {
    res.cost = cfg_.local_latency;
    return res;
  }
  ++stats_.local_writes;
  stats_.local_bytes += count;
  res.cost = local_transfer(count);
  return res;
}

ReadResult BurstBufferPfs::read(Rank r, int fd, std::uint64_t count,
                                SimTime now) {
  auto res = inner_->read(r, fd, count, now);
  if (res.err != 0) {
    res.cost = cfg_.local_latency;
    return res;
  }
  // Price by data placement: bytes written on the reader's node (or
  // preloaded everywhere) are local; others cross the interconnect.
  std::uint64_t local = 0, remote = 0;
  for (const auto& e : res.extents) {
    if (e.writer != kNoRank && node_of(e.writer) != node_of(r)) {
      remote += e.ext.size();
    } else {
      local += e.ext.size();
    }
  }
  if (remote > 0) {
    ++stats_.remote_reads;
    stats_.remote_bytes += remote;
    res.cost = remote_transfer(remote) + local_transfer(local);
  } else {
    ++stats_.local_reads;
    res.cost = local_transfer(local);
  }
  return res;
}

ReadResult BurstBufferPfs::pread(Rank r, int fd, Offset off,
                                 std::uint64_t count, SimTime now) {
  auto res = inner_->pread(r, fd, off, count, now);
  if (res.err != 0) {
    res.cost = cfg_.local_latency;
    return res;
  }
  std::uint64_t local = 0, remote = 0;
  for (const auto& e : res.extents) {
    if (e.writer != kNoRank && node_of(e.writer) != node_of(r)) {
      remote += e.ext.size();
    } else {
      local += e.ext.size();
    }
  }
  if (remote > 0) {
    ++stats_.remote_reads;
    stats_.remote_bytes += remote;
    res.cost = remote_transfer(remote) + local_transfer(local);
  } else {
    ++stats_.local_reads;
    res.cost = local_transfer(local);
  }
  return res;
}

MetaResult BurstBufferPfs::lseek(Rank r, int fd, std::int64_t delta, int whence,
                                 SimTime now) {
  return inner_->lseek(r, fd, delta, whence, now);
}

MetaResult BurstBufferPfs::fsync(Rank r, int fd, SimTime now) {
  auto res = inner_->fsync(r, fd, now);
  res.cost = cfg_.index_publish_latency;  // the failed round trip still costs
  if (res.err == 0) ++stats_.index_publishes;
  return res;
}

MetaResult BurstBufferPfs::ftruncate(Rank r, int fd, Offset length,
                                     SimTime now) {
  auto res = inner_->ftruncate(r, fd, length, now);
  res.cost = cfg_.meta_latency;
  return res;
}

MetaResult BurstBufferPfs::stat(const std::string& path, SimTime now) {
  auto res = inner_->stat(path, now);
  res.cost = cfg_.meta_latency;
  return res;
}

MetaResult BurstBufferPfs::access(const std::string& path, SimTime now) {
  auto res = inner_->access(path, now);
  res.cost = cfg_.meta_latency;
  return res;
}

MetaResult BurstBufferPfs::unlink(const std::string& path, SimTime now) {
  auto res = inner_->unlink(path, now);
  res.cost = cfg_.meta_latency;
  return res;
}

MetaResult BurstBufferPfs::mkdir(const std::string& path, SimTime now) {
  auto res = inner_->mkdir(path, now);
  res.cost = cfg_.meta_latency;
  return res;
}

MetaResult BurstBufferPfs::rename(const std::string& from, const std::string& to,
                                  SimTime now) {
  auto res = inner_->rename(from, to, now);
  res.cost = cfg_.meta_latency;
  return res;
}

MetaResult BurstBufferPfs::laminate(const std::string& path, SimTime now) {
  auto res = inner_->laminate(path, now);
  ++stats_.index_publishes;
  res.cost = cfg_.index_publish_latency;
  return res;
}

}  // namespace pfsem::vfs
