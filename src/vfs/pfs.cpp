#include "pfsem/vfs/pfs.hpp"

#include <algorithm>

#include "pfsem/fault/injector.hpp"
#include "pfsem/trace/record.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::vfs {

const char* to_string(ConsistencyModel m) {
  switch (m) {
    case ConsistencyModel::Strong: return "strong";
    case ConsistencyModel::Commit: return "commit";
    case ConsistencyModel::Session: return "session";
    case ConsistencyModel::Eventual: return "eventual";
  }
  return "?";
}

using detail::WriteRecord;

struct Pfs::OpenFile {
  std::shared_ptr<File> file;
  int flags = 0;
  Offset offset = 0;
  SimTime t_open = 0;
};

Pfs::Pfs(PfsConfig cfg) : cfg_(cfg) {
  require(cfg_.stripe_count >= 1, "stripe_count must be >= 1");
  require(cfg_.stripe_size > 0, "stripe_size must be positive");
  dirs_.insert(names_.intern("/"));
  osts_.requests.assign(static_cast<std::size_t>(cfg_.stripe_count), 0);
  osts_.bytes.assign(static_cast<std::size_t>(cfg_.stripe_count), 0);
}
Pfs::~Pfs() = default;

std::shared_ptr<Pfs::File> Pfs::lookup(const std::string& path) const {
  const FileId id = names_.find(path);
  return id == kNoFile || id >= files_.size() ? nullptr : files_[id];
}

std::shared_ptr<Pfs::File>& Pfs::slot(const std::string& path) {
  const FileId id = names_.intern(path);
  if (id >= files_.size()) files_.resize(id + 1);
  return files_[id];
}

Pfs::File& Pfs::file_for_fd(Rank r, int fd) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "bad file descriptor");
  return *it->second->file;
}

// ----------------------------------------------------------------------
// lock cost model (strong semantics only)

SimDuration Pfs::charge_locks(File& f, Rank r, Extent ext, bool exclusive) {
  return detail::charge_locks(
      f, r, ext, exclusive, {cfg_.model, cfg_.lock_latency, cfg_.lock_block},
      locks_);
}

SimDuration Pfs::charge_transfer(Extent ext, SimTime now) {
  if (ext.empty()) return 0;
  const auto n = static_cast<std::size_t>(cfg_.stripe_count);
  bool slowed = false;
  // Per-OST transfer time, stretched by any active slowdown window.
  auto ost_time = [&](std::size_t ost, Offset bytes) {
    double t = static_cast<double>(bytes) / cfg_.bytes_per_ns;
    if (injector_ != nullptr) {
      const double factor = injector_->transfer_factor(static_cast<int>(ost), now);
      if (factor > 1.0) {
        t *= factor;
        slowed = true;
      }
    }
    return static_cast<SimDuration>(t);
  };
  SimDuration cost = 0;
  if (n == 1) {
    ++osts_.requests[0];
    osts_.bytes[0] += ext.size();
    cost = ost_time(0, ext.size());
  } else {
    // Distribute the extent over the round-robin stripe layout.
    std::vector<Offset> per_ost(n, 0);
    Offset pos = ext.begin;
    while (pos < ext.end) {
      const Offset stripe_idx = pos / cfg_.stripe_size;
      const Offset stripe_end = (stripe_idx + 1) * cfg_.stripe_size;
      const Offset chunk = std::min(ext.end, stripe_end) - pos;
      per_ost[static_cast<std::size_t>(stripe_idx % n)] += chunk;
      pos += chunk;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (per_ost[i] == 0) continue;
      ++osts_.requests[i];
      osts_.bytes[i] += per_ost[i];
      cost = std::max(cost, ost_time(i, per_ost[i]));
    }
  }
  if (slowed) injector_->note_slowed_transfer();
  return cost;
}

int Pfs::inject(int op_class, Rank r, SimTime now) {
  if (injector_ == nullptr) return 0;
  return injector_->on_op(static_cast<fault::OpClass>(op_class), r, now);
}

void Pfs::set_fault_injector(fault::Injector* injector) { injector_ = injector; }

// ----------------------------------------------------------------------
// open / close

OpenResult Pfs::open(Rank r, const std::string& path, int flags, SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), r, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(path);
  if (!f) {
    if (!(flags & trace::kCreate)) return {-1, cfg_.meta_latency};
    f = std::make_shared<File>();
    f->path = path;
    slot(path) = f;
  }
  if (flags & trace::kTrunc) {
    f->writes.clear();
    f->write_index.clear();
    f->size = 0;
  }
  auto of = std::make_unique<OpenFile>();
  of->file = f;
  of->flags = flags;
  of->offset = 0;
  of->t_open = now;
  int& next = next_fd_[r];
  if (next < 3) next = 3;
  const int fd = next++;
  open_files_[{r, fd}] = std::move(of);
  return {fd, cfg_.meta_latency};
}

MetaResult Pfs::close(Rank r, int fd, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "close: bad file descriptor");
  File& f = *it->second->file;
  // close is both a commit (paper footnote 2) and the session publish point.
  for (auto& w : f.writes) {
    if (w.writer != r) continue;
    if (w.t_commit == kTimeNever) w.t_commit = now;
    if (w.t_publish == kTimeNever) w.t_publish = now;
  }
  // Release this rank's locks.
  if (cfg_.model == ConsistencyModel::Strong) {
    for (auto& [blk, lock] : f.locks) lock.holders.erase(r);
  }
  open_files_.erase(it);
  ++locks_.meta_ops;
  return {0, cfg_.meta_latency};
}

// ----------------------------------------------------------------------
// data ops

WriteResult Pfs::write(Rank r, int fd, std::uint64_t count, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "write: bad file descriptor");
  OpenFile& of = *it->second;
  const Offset off = (of.flags & trace::kAppend) ? of.file->size : of.offset;
  WriteResult res = pwrite(r, fd, off, count, now);
  if (res.err == 0) of.offset = off + count;  // a failed attempt wrote nothing
  return res;
}

WriteResult Pfs::pwrite(Rank r, int fd, Offset off, std::uint64_t count,
                        SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "pwrite: bad file descriptor");
  File& f = *it->second->file;
  if (f.laminated) {
    // Read-only forever; EROFS is permanent, so retries never absorb it.
    return {0, off, cfg_.data_latency, fault::kErofs};
  }
  // Inject before allocating the version tag: a failed attempt writes
  // nothing, so a retried run consumes the exact same tags as a fault-free
  // one (the retry-absorption property the tests assert).
  if (const int e = inject(static_cast<int>(fault::OpClass::Write), r, now)) {
    return {0, off, cfg_.data_latency, e};
  }
  WriteRecord w;
  w.id = next_version_++;
  w.writer = r;
  w.ext = {off, off + count};
  w.t_write = now;
  if (cfg_.model == ConsistencyModel::Strong) {
    w.t_commit = now;
    w.t_publish = now;
  }
  f.writes.push_back(w);
  f.index_write(static_cast<std::uint32_t>(f.writes.size() - 1));
  f.size = std::max(f.size, w.ext.end);
  if (cfg_.model == ConsistencyModel::Eventual && injector_ != nullptr &&
      injector_->visibility_extra(now) > 0) {
    injector_->note_delayed_write();
  }
  SimDuration cost = cfg_.data_latency + charge_transfer(w.ext, now);
  cost += charge_locks(f, r, w.ext, /*exclusive=*/true);
  return {w.id, off, cost};
}

ReadResult Pfs::read(Rank r, int fd, std::uint64_t count, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "read: bad file descriptor");
  OpenFile& of = *it->second;
  ReadResult res = pread(r, fd, of.offset, count, now);
  of.offset += res.bytes;
  return res;
}

ReadResult Pfs::pread(Rank r, int fd, Offset off, std::uint64_t count,
                      SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "pread: bad file descriptor");
  OpenFile& of = *it->second;
  File& f = *of.file;
  ReadResult res;
  res.offset = off;
  if (const int e = inject(static_cast<int>(fault::OpClass::Read), r, now)) {
    res.err = e;
    res.cost = cfg_.data_latency;
    return res;
  }
  res.bytes = off >= f.size ? 0 : std::min<std::uint64_t>(count, f.size - off);
  if (res.bytes > 0) {
    res.extents = resolve(f, r, now, of.t_open, off, res.bytes);
  }
  res.cost = cfg_.data_latency + charge_transfer({off, off + res.bytes}, now);
  res.cost += charge_locks(f, r, {off, off + res.bytes}, /*exclusive=*/false);
  return res;
}

MetaResult Pfs::lseek(Rank r, int fd, std::int64_t delta, int whence,
                      SimTime now) {
  (void)now;
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "lseek: bad file descriptor");
  OpenFile& of = *it->second;
  std::int64_t base = 0;
  switch (whence) {
    case trace::kSeekSet: base = 0; break;
    case trace::kSeekCur: base = static_cast<std::int64_t>(of.offset); break;
    case trace::kSeekEnd: base = static_cast<std::int64_t>(of.file->size); break;
    default: require(false, "lseek: bad whence");
  }
  const std::int64_t pos = base + delta;
  if (pos < 0) return {-1, 0};
  of.offset = static_cast<Offset>(pos);
  return {pos, 0};
}

MetaResult Pfs::fsync(Rank r, int fd, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "fsync: bad file descriptor");
  if (const int e = inject(static_cast<int>(fault::OpClass::Sync), r, now)) {
    return {-1, cfg_.meta_latency, e};  // nothing committed this attempt
  }
  File& f = *it->second->file;
  for (auto& w : f.writes) {
    if (w.writer == r && w.t_commit == kTimeNever) w.t_commit = now;
  }
  ++locks_.meta_ops;
  return {0, cfg_.meta_latency};
}

MetaResult Pfs::laminate(const std::string& path, SimTime now) {
  auto f = lookup(path);
  if (!f) return {-1, cfg_.meta_latency};
  for (auto& w : f->writes) {
    if (w.t_commit == kTimeNever) w.t_commit = now;
    if (w.t_publish == kTimeNever) w.t_publish = now;
  }
  f->laminated = true;
  ++locks_.meta_ops;
  return {0, cfg_.meta_latency};
}

MetaResult Pfs::ftruncate(Rank r, int fd, Offset length, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "ftruncate: bad file descriptor");
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), r, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  File& f = *it->second->file;
  if (length < f.size) {
    // Clip recorded writes so re-grown regions read as holes, like a real
    // zero-filling truncate.
    std::erase_if(f.writes, [&](const WriteRecord& w) { return w.ext.begin >= length; });
    for (auto& w : f.writes) w.ext.end = std::min(w.ext.end, length);
    f.rebuild_index();
  }
  f.size = length;
  ++locks_.meta_ops;
  return {0, cfg_.meta_latency};
}

// ----------------------------------------------------------------------
// namespace ops

// Path-based metadata ops carry no rank; injected faults target kNoRank
// (transient faults apply to every rank anyway — only crash filtering is
// per-rank, and that happens in the facade, which knows the caller).

MetaResult Pfs::stat(const std::string& path, SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), kNoRank, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(path);
  if (f) return {static_cast<std::int64_t>(f->size), cfg_.meta_latency};
  if (dirs_.contains(names_.find(path))) return {0, cfg_.meta_latency};
  return {-1, cfg_.meta_latency};
}

MetaResult Pfs::access(const std::string& path, SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), kNoRank, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  return {lookup(path) || dirs_.contains(names_.find(path)) ? 0 : -1,
          cfg_.meta_latency};
}

MetaResult Pfs::unlink(const std::string& path, SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), kNoRank, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(path);
  if (!f) return {-1, cfg_.meta_latency};
  slot(path).reset();
  return {0, cfg_.meta_latency};
}

MetaResult Pfs::mkdir(const std::string& path, SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), kNoRank, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  return {dirs_.insert(names_.intern(path)).second ? 0 : -1,
          cfg_.meta_latency};
}

MetaResult Pfs::rename(const std::string& from, const std::string& to,
                       SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), kNoRank, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(from);
  if (!f) return {-1, cfg_.meta_latency};
  slot(from).reset();
  f->path = to;
  slot(to) = f;
  return {0, cfg_.meta_latency};
}

// ----------------------------------------------------------------------
// visibility resolution

std::vector<ReadExtent> Pfs::resolve(const File& f, Rank r, SimTime now,
                                     SimTime session_open, Offset off,
                                     std::uint64_t count) const {
  return detail::resolve_view(f,
                              {cfg_.model, cfg_.eventual_propagation, injector_},
                              r, now, session_open, off, count);
}

std::vector<ReadExtent> Pfs::strong_view(const std::string& path, Offset off,
                                         std::uint64_t count) const {
  auto f = lookup(path);
  require(f != nullptr, "strong_view: no such file");
  return detail::strong_view_of(*f, off, count);
}

std::vector<VersionTag> Pfs::crash_rank(Rank r, SimTime now) {
  std::vector<VersionTag> lost = detail::apply_rank_crash(
      files_, r, now, {cfg_.model, cfg_.eventual_propagation, injector_});
  // Drop the rank's descriptors *without* the close-time commit/publish —
  // a crashed process never reaches close().
  std::erase_if(open_files_,
                [&](const auto& kv) { return kv.first.first == r; });
  return lost;
}

void Pfs::preload(const std::string& path, Offset size) {
  require(!exists(path), "preload: file already exists: " + path);
  auto f = std::make_shared<File>();
  f->path = path;
  WriteRecord w;
  w.id = next_version_++;
  w.writer = kNoRank;
  w.ext = {0, size};
  w.t_write = -1;
  w.t_commit = -1;
  w.t_publish = -1;
  f->writes.push_back(w);
  f->index_write(0);
  f->size = size;
  slot(path) = std::move(f);
}

bool Pfs::exists(const std::string& path) const { return lookup(path) != nullptr; }

Offset Pfs::file_size(const std::string& path) const {
  auto f = lookup(path);
  return f ? f->size : 0;
}

std::vector<std::string> Pfs::list_files() const {
  std::vector<std::string> out;
  for (const auto& f : files_) {
    if (f) out.push_back(f->path);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pfsem::vfs
