#include "pfsem/vfs/pfs.hpp"

#include <algorithm>

#include "pfsem/fault/injector.hpp"
#include "pfsem/trace/record.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::vfs {

const char* to_string(ConsistencyModel m) {
  switch (m) {
    case ConsistencyModel::Strong: return "strong";
    case ConsistencyModel::Commit: return "commit";
    case ConsistencyModel::Session: return "session";
    case ConsistencyModel::Eventual: return "eventual";
  }
  return "?";
}

namespace {

/// One recorded write. t_commit/t_publish start at kTimeNever and are set
/// by fsync (commit) and close (commit + publish) respectively.
struct WriteRecord {
  VersionTag id = 0;
  Rank writer = kNoRank;
  Extent ext;
  SimTime t_write = 0;
  SimTime t_commit = kTimeNever;
  SimTime t_publish = kTimeNever;
};

struct LockBlock {
  bool exclusive = false;
  std::set<Rank> holders;
};

/// Piece of a resolved read range: [begin, end) carries version v by w.
struct Seg {
  Offset end = 0;
  VersionTag v = 0;
  Rank w = kNoRank;
};

/// Overwrite [e.begin, e.end) in the segment map with (v, w).
void assign(std::map<Offset, Seg>& m, Extent e, VersionTag v, Rank w) {
  auto split = [&m](Offset x) {
    auto it = m.upper_bound(x);
    if (it == m.begin()) return;
    --it;
    if (it->first < x && x < it->second.end) {
      Seg right = it->second;
      it->second.end = x;
      m.emplace(x, right);
    }
  };
  split(e.begin);
  split(e.end);
  auto it = m.lower_bound(e.begin);
  while (it != m.end() && it->first < e.end) it = m.erase(it);
  m.emplace(e.begin, Seg{e.end, v, w});
}

}  // namespace

struct Pfs::File {
  std::string path;
  std::vector<WriteRecord> writes;
  Offset size = 0;
  bool laminated = false;
  std::map<Offset, LockBlock> locks;  // keyed by block index
  /// Block index over `writes` (4 MiB buckets): resolve() only scans
  /// writes overlapping the read's blocks instead of the whole history.
  static constexpr Offset kIndexBlock = 4u << 20;
  std::map<Offset, std::vector<std::uint32_t>> write_index;

  void index_write(std::uint32_t idx) {
    const Extent& e = writes[idx].ext;
    if (e.empty()) return;
    const Offset first = e.begin / kIndexBlock;
    const Offset last = (e.end - 1) / kIndexBlock;
    for (Offset b = first; b <= last; ++b) write_index[b].push_back(idx);
  }
  void rebuild_index() {
    write_index.clear();
    for (std::uint32_t i = 0; i < writes.size(); ++i) index_write(i);
  }
};

struct Pfs::OpenFile {
  std::shared_ptr<File> file;
  int flags = 0;
  Offset offset = 0;
  SimTime t_open = 0;
};

Pfs::Pfs(PfsConfig cfg) : cfg_(cfg) {
  require(cfg_.stripe_count >= 1, "stripe_count must be >= 1");
  require(cfg_.stripe_size > 0, "stripe_size must be positive");
  dirs_.insert(names_.intern("/"));
  osts_.requests.assign(static_cast<std::size_t>(cfg_.stripe_count), 0);
  osts_.bytes.assign(static_cast<std::size_t>(cfg_.stripe_count), 0);
}
Pfs::~Pfs() = default;

std::shared_ptr<Pfs::File> Pfs::lookup(const std::string& path) const {
  const FileId id = names_.find(path);
  return id == kNoFile || id >= files_.size() ? nullptr : files_[id];
}

std::shared_ptr<Pfs::File>& Pfs::slot(const std::string& path) {
  const FileId id = names_.intern(path);
  if (id >= files_.size()) files_.resize(id + 1);
  return files_[id];
}

Pfs::File& Pfs::file_for_fd(Rank r, int fd) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "bad file descriptor");
  return *it->second->file;
}

// ----------------------------------------------------------------------
// lock cost model (strong semantics only)

SimDuration Pfs::charge_locks(File& f, Rank r, Extent ext, bool exclusive) {
  if (cfg_.model != ConsistencyModel::Strong || ext.empty()) return 0;
  SimDuration cost = 0;
  const Offset first = ext.begin / cfg_.lock_block;
  const Offset last = (ext.end - 1) / cfg_.lock_block;
  for (Offset b = first; b <= last; ++b) {
    LockBlock& blk = f.locks[b];
    // An exclusive request is satisfied only by a sole exclusive hold; a
    // shared request is satisfied by any existing hold of ours (a sole
    // exclusive hold also permits reading).
    const bool held_ok =
        exclusive ? (blk.exclusive && blk.holders.size() == 1 &&
                     blk.holders.contains(r))
                  : blk.holders.contains(r);
    if (held_ok) continue;
    ++locks_.requests;
    cost += cfg_.lock_latency;
    // Call back conflicting holders.
    std::size_t conflicting = 0;
    if (exclusive) {
      conflicting = blk.holders.size() - (blk.holders.contains(r) ? 1 : 0);
    } else if (blk.exclusive && !blk.holders.contains(r)) {
      conflicting = blk.holders.size();
    }
    if (conflicting > 0) {
      locks_.revocations += conflicting;
      cost += cfg_.lock_latency * static_cast<SimDuration>(conflicting);
    }
    if (exclusive) {
      blk.holders = {r};
      blk.exclusive = true;
    } else {
      if (blk.exclusive) blk.holders.clear();
      blk.exclusive = false;
      blk.holders.insert(r);
    }
  }
  return cost;
}

SimDuration Pfs::charge_transfer(Extent ext, SimTime now) {
  if (ext.empty()) return 0;
  const auto n = static_cast<std::size_t>(cfg_.stripe_count);
  bool slowed = false;
  // Per-OST transfer time, stretched by any active slowdown window.
  auto ost_time = [&](std::size_t ost, Offset bytes) {
    double t = static_cast<double>(bytes) / cfg_.bytes_per_ns;
    if (injector_ != nullptr) {
      const double factor = injector_->transfer_factor(static_cast<int>(ost), now);
      if (factor > 1.0) {
        t *= factor;
        slowed = true;
      }
    }
    return static_cast<SimDuration>(t);
  };
  SimDuration cost = 0;
  if (n == 1) {
    ++osts_.requests[0];
    osts_.bytes[0] += ext.size();
    cost = ost_time(0, ext.size());
  } else {
    // Distribute the extent over the round-robin stripe layout.
    std::vector<Offset> per_ost(n, 0);
    Offset pos = ext.begin;
    while (pos < ext.end) {
      const Offset stripe_idx = pos / cfg_.stripe_size;
      const Offset stripe_end = (stripe_idx + 1) * cfg_.stripe_size;
      const Offset chunk = std::min(ext.end, stripe_end) - pos;
      per_ost[static_cast<std::size_t>(stripe_idx % n)] += chunk;
      pos += chunk;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (per_ost[i] == 0) continue;
      ++osts_.requests[i];
      osts_.bytes[i] += per_ost[i];
      cost = std::max(cost, ost_time(i, per_ost[i]));
    }
  }
  if (slowed) injector_->note_slowed_transfer();
  return cost;
}

int Pfs::inject(int op_class, Rank r, SimTime now) {
  if (injector_ == nullptr) return 0;
  return injector_->on_op(static_cast<fault::OpClass>(op_class), r, now);
}

void Pfs::set_fault_injector(fault::Injector* injector) { injector_ = injector; }

// ----------------------------------------------------------------------
// open / close

OpenResult Pfs::open(Rank r, const std::string& path, int flags, SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), r, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(path);
  if (!f) {
    if (!(flags & trace::kCreate)) return {-1, cfg_.meta_latency};
    f = std::make_shared<File>();
    f->path = path;
    slot(path) = f;
  }
  if (flags & trace::kTrunc) {
    f->writes.clear();
    f->write_index.clear();
    f->size = 0;
  }
  auto of = std::make_unique<OpenFile>();
  of->file = f;
  of->flags = flags;
  of->offset = 0;
  of->t_open = now;
  int& next = next_fd_[r];
  if (next < 3) next = 3;
  const int fd = next++;
  open_files_[{r, fd}] = std::move(of);
  return {fd, cfg_.meta_latency};
}

MetaResult Pfs::close(Rank r, int fd, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "close: bad file descriptor");
  File& f = *it->second->file;
  // close is both a commit (paper footnote 2) and the session publish point.
  for (auto& w : f.writes) {
    if (w.writer != r) continue;
    if (w.t_commit == kTimeNever) w.t_commit = now;
    if (w.t_publish == kTimeNever) w.t_publish = now;
  }
  // Release this rank's locks.
  if (cfg_.model == ConsistencyModel::Strong) {
    for (auto& [blk, lock] : f.locks) lock.holders.erase(r);
  }
  open_files_.erase(it);
  ++locks_.meta_ops;
  return {0, cfg_.meta_latency};
}

// ----------------------------------------------------------------------
// data ops

WriteResult Pfs::write(Rank r, int fd, std::uint64_t count, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "write: bad file descriptor");
  OpenFile& of = *it->second;
  const Offset off = (of.flags & trace::kAppend) ? of.file->size : of.offset;
  WriteResult res = pwrite(r, fd, off, count, now);
  if (res.err == 0) of.offset = off + count;  // a failed attempt wrote nothing
  return res;
}

WriteResult Pfs::pwrite(Rank r, int fd, Offset off, std::uint64_t count,
                        SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "pwrite: bad file descriptor");
  File& f = *it->second->file;
  if (f.laminated) {
    // Read-only forever; EROFS is permanent, so retries never absorb it.
    return {0, off, cfg_.data_latency, fault::kErofs};
  }
  // Inject before allocating the version tag: a failed attempt writes
  // nothing, so a retried run consumes the exact same tags as a fault-free
  // one (the retry-absorption property the tests assert).
  if (const int e = inject(static_cast<int>(fault::OpClass::Write), r, now)) {
    return {0, off, cfg_.data_latency, e};
  }
  WriteRecord w;
  w.id = next_version_++;
  w.writer = r;
  w.ext = {off, off + count};
  w.t_write = now;
  if (cfg_.model == ConsistencyModel::Strong) {
    w.t_commit = now;
    w.t_publish = now;
  }
  f.writes.push_back(w);
  f.index_write(static_cast<std::uint32_t>(f.writes.size() - 1));
  f.size = std::max(f.size, w.ext.end);
  if (cfg_.model == ConsistencyModel::Eventual && injector_ != nullptr &&
      injector_->visibility_extra(now) > 0) {
    injector_->note_delayed_write();
  }
  SimDuration cost = cfg_.data_latency + charge_transfer(w.ext, now);
  cost += charge_locks(f, r, w.ext, /*exclusive=*/true);
  return {w.id, off, cost};
}

ReadResult Pfs::read(Rank r, int fd, std::uint64_t count, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "read: bad file descriptor");
  OpenFile& of = *it->second;
  ReadResult res = pread(r, fd, of.offset, count, now);
  of.offset += res.bytes;
  return res;
}

ReadResult Pfs::pread(Rank r, int fd, Offset off, std::uint64_t count,
                      SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "pread: bad file descriptor");
  OpenFile& of = *it->second;
  File& f = *of.file;
  ReadResult res;
  res.offset = off;
  if (const int e = inject(static_cast<int>(fault::OpClass::Read), r, now)) {
    res.err = e;
    res.cost = cfg_.data_latency;
    return res;
  }
  res.bytes = off >= f.size ? 0 : std::min<std::uint64_t>(count, f.size - off);
  if (res.bytes > 0) {
    res.extents = resolve(f, r, now, of.t_open, off, res.bytes);
  }
  res.cost = cfg_.data_latency + charge_transfer({off, off + res.bytes}, now);
  res.cost += charge_locks(f, r, {off, off + res.bytes}, /*exclusive=*/false);
  return res;
}

MetaResult Pfs::lseek(Rank r, int fd, std::int64_t delta, int whence,
                      SimTime now) {
  (void)now;
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "lseek: bad file descriptor");
  OpenFile& of = *it->second;
  std::int64_t base = 0;
  switch (whence) {
    case trace::kSeekSet: base = 0; break;
    case trace::kSeekCur: base = static_cast<std::int64_t>(of.offset); break;
    case trace::kSeekEnd: base = static_cast<std::int64_t>(of.file->size); break;
    default: require(false, "lseek: bad whence");
  }
  const std::int64_t pos = base + delta;
  if (pos < 0) return {-1, 0};
  of.offset = static_cast<Offset>(pos);
  return {pos, 0};
}

MetaResult Pfs::fsync(Rank r, int fd, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "fsync: bad file descriptor");
  if (const int e = inject(static_cast<int>(fault::OpClass::Sync), r, now)) {
    return {-1, cfg_.meta_latency, e};  // nothing committed this attempt
  }
  File& f = *it->second->file;
  for (auto& w : f.writes) {
    if (w.writer == r && w.t_commit == kTimeNever) w.t_commit = now;
  }
  ++locks_.meta_ops;
  return {0, cfg_.meta_latency};
}

MetaResult Pfs::laminate(const std::string& path, SimTime now) {
  auto f = lookup(path);
  if (!f) return {-1, cfg_.meta_latency};
  for (auto& w : f->writes) {
    if (w.t_commit == kTimeNever) w.t_commit = now;
    if (w.t_publish == kTimeNever) w.t_publish = now;
  }
  f->laminated = true;
  ++locks_.meta_ops;
  return {0, cfg_.meta_latency};
}

MetaResult Pfs::ftruncate(Rank r, int fd, Offset length, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "ftruncate: bad file descriptor");
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), r, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  File& f = *it->second->file;
  if (length < f.size) {
    // Clip recorded writes so re-grown regions read as holes, like a real
    // zero-filling truncate.
    std::erase_if(f.writes, [&](const WriteRecord& w) { return w.ext.begin >= length; });
    for (auto& w : f.writes) w.ext.end = std::min(w.ext.end, length);
    f.rebuild_index();
  }
  f.size = length;
  ++locks_.meta_ops;
  return {0, cfg_.meta_latency};
}

// ----------------------------------------------------------------------
// namespace ops

// Path-based metadata ops carry no rank; injected faults target kNoRank
// (transient faults apply to every rank anyway — only crash filtering is
// per-rank, and that happens in the facade, which knows the caller).

MetaResult Pfs::stat(const std::string& path, SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), kNoRank, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(path);
  if (f) return {static_cast<std::int64_t>(f->size), cfg_.meta_latency};
  if (dirs_.contains(names_.find(path))) return {0, cfg_.meta_latency};
  return {-1, cfg_.meta_latency};
}

MetaResult Pfs::access(const std::string& path, SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), kNoRank, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  return {lookup(path) || dirs_.contains(names_.find(path)) ? 0 : -1,
          cfg_.meta_latency};
}

MetaResult Pfs::unlink(const std::string& path, SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), kNoRank, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(path);
  if (!f) return {-1, cfg_.meta_latency};
  slot(path).reset();
  return {0, cfg_.meta_latency};
}

MetaResult Pfs::mkdir(const std::string& path, SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), kNoRank, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  return {dirs_.insert(names_.intern(path)).second ? 0 : -1,
          cfg_.meta_latency};
}

MetaResult Pfs::rename(const std::string& from, const std::string& to,
                       SimTime now) {
  if (const int e = inject(static_cast<int>(fault::OpClass::Meta), kNoRank, now)) {
    return {-1, cfg_.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(from);
  if (!f) return {-1, cfg_.meta_latency};
  slot(from).reset();
  f->path = to;
  slot(to) = f;
  return {0, cfg_.meta_latency};
}

// ----------------------------------------------------------------------
// visibility resolution

std::vector<ReadExtent> Pfs::resolve(const File& f, Rank r, SimTime now,
                                     SimTime session_open, Offset off,
                                     std::uint64_t count) const {
  const Extent range{off, off + count};
  // Collect visible writes with their effective-visibility key.
  struct Cand {
    SimTime key;
    const WriteRecord* w;
  };
  std::vector<Cand> cands;
  // Gather candidate writes from the block index (deduplicated: a write
  // spanning several blocks appears once per block).
  std::vector<std::uint32_t> candidates;
  {
    const Offset first = range.begin / File::kIndexBlock;
    const Offset last = range.end == 0 ? 0 : (range.end - 1) / File::kIndexBlock;
    for (auto it = f.write_index.lower_bound(first);
         it != f.write_index.end() && it->first <= last; ++it) {
      candidates.insert(candidates.end(), it->second.begin(), it->second.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }
  for (std::uint32_t ci : candidates) {
    const auto& w = f.writes[ci];
    if (!w.ext.overlaps(range)) continue;
    SimTime key = kTimeNever;
    if (w.writer == r || w.writer == kNoRank || f.laminated) {
      // Own writes are always visible in order; genesis (preloaded) data
      // predates the run and laminated files are globally visible under
      // every model.
      key = w.t_write;
    } else {
      switch (cfg_.model) {
        case ConsistencyModel::Strong:
          key = w.t_write;
          break;
        case ConsistencyModel::Commit:
          key = w.t_commit;
          if (key == kTimeNever || key > now) continue;
          break;
        case ConsistencyModel::Session:
          key = w.t_publish;
          if (key == kTimeNever || key > session_open) continue;
          break;
        case ConsistencyModel::Eventual:
          key = w.t_write + cfg_.eventual_propagation;
          // A visibility spike active when the write was issued stretches
          // its propagation further.
          if (injector_ != nullptr) key += injector_->visibility_extra(w.t_write);
          if (key > now) continue;
          break;
      }
    }
    if (key > now) continue;
    cands.push_back({key, &w});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    return a.key != b.key ? a.key < b.key : a.w->id < b.w->id;
  });
  std::map<Offset, Seg> m;
  m.emplace(range.begin, Seg{range.end, 0, kNoRank});
  for (const auto& c : cands) {
    assign(m, c.w->ext.intersect(range), c.w->id, c.w->writer);
  }
  std::vector<ReadExtent> out;
  for (const auto& [begin, seg] : m) {
    if (!out.empty() && out.back().version == seg.v &&
        out.back().writer == seg.w && out.back().ext.end == begin) {
      out.back().ext.end = seg.end;
    } else {
      out.push_back({{begin, seg.end}, seg.v, seg.w});
    }
  }
  return out;
}

std::vector<ReadExtent> Pfs::strong_view(const std::string& path, Offset off,
                                         std::uint64_t count) const {
  auto f = lookup(path);
  require(f != nullptr, "strong_view: no such file");
  const Extent range{off, off + count};
  std::map<Offset, Seg> m;
  m.emplace(range.begin, Seg{range.end, 0, kNoRank});
  // Writes are stored in write order; later writes overwrite earlier ones.
  for (const auto& w : f->writes) {
    if (w.ext.overlaps(range)) assign(m, w.ext.intersect(range), w.id, w.writer);
  }
  std::vector<ReadExtent> out;
  for (const auto& [begin, seg] : m) {
    if (!out.empty() && out.back().version == seg.v &&
        out.back().writer == seg.w && out.back().ext.end == begin) {
      out.back().ext.end = seg.end;
    } else {
      out.push_back({{begin, seg.end}, seg.v, seg.w});
    }
  }
  return out;
}

std::vector<VersionTag> Pfs::crash_rank(Rank r, SimTime now) {
  // Durability at the crash instant mirrors the visibility rules of
  // resolve(): strong writes hit stable storage synchronously; commit
  // writes survive iff fsync'd/closed; session writes iff published by a
  // close; eventual writes iff their propagation (plus any spike) has
  // elapsed. Laminated files are globally published and always survive.
  auto durable = [&](const WriteRecord& w) {
    switch (cfg_.model) {
      case ConsistencyModel::Strong: return true;
      case ConsistencyModel::Commit:
        return w.t_commit != kTimeNever && w.t_commit <= now;
      case ConsistencyModel::Session:
        return w.t_publish != kTimeNever && w.t_publish <= now;
      case ConsistencyModel::Eventual: {
        SimTime key = w.t_write + cfg_.eventual_propagation;
        if (injector_ != nullptr) key += injector_->visibility_extra(w.t_write);
        return key <= now;
      }
    }
    return true;
  };
  std::vector<VersionTag> lost;
  for (auto& f : files_) {
    if (!f) continue;
    if (!f->laminated) {
      const std::size_t before = f->writes.size();
      std::erase_if(f->writes, [&](const WriteRecord& w) {
        if (w.writer != r || durable(w)) return false;
        lost.push_back(w.id);
        return true;
      });
      if (f->writes.size() != before) {
        f->rebuild_index();
        Offset size = 0;
        for (const auto& w : f->writes) size = std::max(size, w.ext.end);
        f->size = size;
      }
    }
    for (auto& [blk, lock] : f->locks) lock.holders.erase(r);
  }
  // Drop the rank's descriptors *without* the close-time commit/publish —
  // a crashed process never reaches close().
  std::erase_if(open_files_,
                [&](const auto& kv) { return kv.first.first == r; });
  std::sort(lost.begin(), lost.end());
  return lost;
}

void Pfs::preload(const std::string& path, Offset size) {
  require(!exists(path), "preload: file already exists: " + path);
  auto f = std::make_shared<File>();
  f->path = path;
  WriteRecord w;
  w.id = next_version_++;
  w.writer = kNoRank;
  w.ext = {0, size};
  w.t_write = -1;
  w.t_commit = -1;
  w.t_publish = -1;
  f->writes.push_back(w);
  f->index_write(0);
  f->size = size;
  slot(path) = std::move(f);
}

bool Pfs::exists(const std::string& path) const { return lookup(path) != nullptr; }

Offset Pfs::file_size(const std::string& path) const {
  auto f = lookup(path);
  return f ? f->size : 0;
}

std::vector<std::string> Pfs::list_files() const {
  std::vector<std::string> out;
  for (const auto& f : files_) {
    if (f) out.push_back(f->path);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pfsem::vfs
