#include "pfsem/vfs/cluster.hpp"

#include <algorithm>

#include "pfsem/fault/injector.hpp"
#include "pfsem/trace/record.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::vfs {

using detail::WriteRecord;

struct PfsCluster::OpenFile {
  std::shared_ptr<File> file;
  int flags = 0;
  Offset offset = 0;
  SimTime t_open = 0;
};

PfsCluster::PfsCluster(ClusterConfig cfg) : cfg_(cfg) {
  require(cfg_.mds_count >= 1, "PfsCluster: mds_count must be >= 1");
  require(cfg_.ost_count >= 1, "PfsCluster: ost_count must be >= 1");
  require(cfg_.stripe > 0 && (cfg_.stripe & (cfg_.stripe - 1)) == 0,
          "PfsCluster: stripe must be a positive power of two");
  require(cfg_.mds_replicas >= 1, "PfsCluster: mds_replicas must be >= 1");
  dirs_.insert(names_.intern("/"));
  mds_.assign(static_cast<std::size_t>(cfg_.mds_count), MdsState{});
  for (auto& s : mds_) s.standbys = cfg_.mds_replicas - 1;
  ost_.assign(static_cast<std::size_t>(cfg_.ost_count), OstState{});
  osts_.requests.assign(static_cast<std::size_t>(cfg_.ost_count), 0);
  osts_.bytes.assign(static_cast<std::size_t>(cfg_.ost_count), 0);
}
PfsCluster::~PfsCluster() = default;

int PfsCluster::shard_of(std::string_view path) const {
  // FNV-1a, fixed here (not std::hash) so the shard layout — and with it
  // every per-server counter — is identical on every platform.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<int>(h % static_cast<std::uint64_t>(cfg_.mds_count));
}

std::shared_ptr<PfsCluster::File> PfsCluster::lookup(
    const std::string& path) const {
  const FileId id = names_.find(path);
  return id == kNoFile || id >= files_.size() ? nullptr : files_[id];
}

std::shared_ptr<PfsCluster::File>& PfsCluster::slot(const std::string& path) {
  const FileId id = names_.intern(path);
  if (id >= files_.size()) files_.resize(id + 1);
  return files_[id];
}

int PfsCluster::mds_route(int shard, SimTime now, bool can_fail) {
  MdsState& s = mds_[static_cast<std::size_t>(shard)];
  if (!s.up) {
    if (s.standbys <= 0) return fault::kEhostdown;  // no replica remains
    // Detection happens on the first client op against the dead primary:
    // promote a standby. A failable op still reports EHOSTDOWN for this
    // attempt — the client's failover retry redirects and succeeds.
    --s.standbys;
    s.up = true;
    ++s.failovers;
    if (injector_ != nullptr) injector_->note_mds_failover(shard, now);
    if (can_fail) return fault::kEhostdown;
  }
  ++s.meta_ops;
  return 0;
}

SimDuration PfsCluster::charge_locks(File& f, Rank r, Extent ext,
                                     bool exclusive) {
  return detail::charge_locks(
      f, r, ext, exclusive,
      {cfg_.base.model, cfg_.base.lock_latency, cfg_.base.lock_block}, locks_);
}

SimDuration PfsCluster::charge_transfer(Extent ext, SimTime now) {
  if (ext.empty()) return 0;
  const auto n = static_cast<std::size_t>(cfg_.ost_count);
  // Distribute the extent over the round-robin stripe layout for per-OST
  // accounting and fault routing. The transfer *time* is client-link
  // bound (bytes_per_ns is the aggregate bandwidth), so topology never
  // changes fault-free costs — the differential-oracle invariant.
  std::vector<Offset> per_ost(n, 0);
  Offset pos = ext.begin;
  while (pos < ext.end) {
    const Offset block = pos / cfg_.stripe;
    const Offset block_end = (block + 1) * cfg_.stripe;
    const Offset chunk = std::min(ext.end, block_end) - pos;
    per_ost[static_cast<std::size_t>(block % n)] += chunk;
    pos += chunk;
  }
  double factor = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (per_ost[i] == 0) continue;
    ++osts_.requests[i];
    osts_.bytes[i] += per_ost[i];
    if (injector_ != nullptr) {
      factor = std::max(factor,
                        injector_->transfer_factor(static_cast<int>(i), now));
    }
  }
  if (factor > 1.0) injector_->note_slowed_transfer();
  return static_cast<SimDuration>(
      static_cast<double>(ext.size()) / cfg_.base.bytes_per_ns * factor);
}

bool PfsCluster::punch_dead_stripes(std::vector<ReadExtent>& extents,
                                    Extent range) {
  if (!any_ost_down_ || range.empty()) return false;
  const auto n = static_cast<std::uint64_t>(cfg_.ost_count);
  std::map<Offset, detail::Seg> m;
  for (const auto& re : extents) {
    m.emplace(re.ext.begin, detail::Seg{re.ext.end, re.version, re.writer});
  }
  bool punched = false;
  Offset pos = range.begin;
  while (pos < range.end) {
    const Offset block = pos / cfg_.stripe;
    const Offset block_end = (block + 1) * cfg_.stripe;
    const Offset end = std::min(range.end, block_end);
    if (!ost_[static_cast<std::size_t>(block % n)].up) {
      detail::assign(m, {pos, end}, 0, kNoRank);
      punched = true;
    }
    pos = end;
  }
  if (punched) extents = detail::emit_extents(m);
  return punched;
}

int PfsCluster::inject(fault::OpClass c, Rank r, SimTime now) {
  if (injector_ == nullptr) return 0;
  return injector_->on_op(c, r, now);
}

void PfsCluster::set_fault_injector(fault::Injector* injector) {
  injector_ = injector;
}

// ----------------------------------------------------------------------
// open / close

OpenResult PfsCluster::open(Rank r, const std::string& path, int flags,
                            SimTime now) {
  if (const int e = inject(fault::OpClass::Meta, r, now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  if (const int e = mds_route(shard_of(path), now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(path);
  if (!f) {
    if (!(flags & trace::kCreate)) return {-1, cfg_.base.meta_latency};
    f = std::make_shared<File>();
    f->path = path;
    slot(path) = f;
  }
  if (flags & trace::kTrunc) {
    f->writes.clear();
    f->write_index.clear();
    f->size = 0;
  }
  auto of = std::make_unique<OpenFile>();
  of->file = f;
  of->flags = flags;
  of->offset = 0;
  of->t_open = now;
  int& next = next_fd_[r];
  if (next < 3) next = 3;
  const int fd = next++;
  open_files_[{r, fd}] = std::move(of);
  return {fd, cfg_.base.meta_latency};
}

MetaResult PfsCluster::close(Rank r, int fd, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "close: bad file descriptor");
  File& f = *it->second->file;
  // close is both a commit (paper footnote 2) and the session publish
  // point; it cannot surface an errno (the facade ignores it), so a dead
  // shard with a standby promotes silently. With no replica left the
  // commit/publish metadata update is *lost* — the fd still closes.
  const int err = mds_route(shard_of(f.path), now, /*can_fail=*/false);
  if (err == 0) {
    for (auto& w : f.writes) {
      if (w.writer != r) continue;
      if (w.t_commit == kTimeNever) w.t_commit = now;
      if (w.t_publish == kTimeNever) w.t_publish = now;
    }
  }
  // Release this rank's locks.
  if (cfg_.base.model == ConsistencyModel::Strong) {
    for (auto& [blk, lock] : f.locks) lock.holders.erase(r);
  }
  open_files_.erase(it);
  ++locks_.meta_ops;
  return {0, cfg_.base.meta_latency, err};
}

// ----------------------------------------------------------------------
// data ops

WriteResult PfsCluster::write(Rank r, int fd, std::uint64_t count,
                              SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "write: bad file descriptor");
  OpenFile& of = *it->second;
  const Offset off = (of.flags & trace::kAppend) ? of.file->size : of.offset;
  WriteResult res = pwrite(r, fd, off, count, now);
  if (res.err == 0) of.offset = off + count;  // a failed attempt wrote nothing
  return res;
}

WriteResult PfsCluster::pwrite(Rank r, int fd, Offset off, std::uint64_t count,
                               SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "pwrite: bad file descriptor");
  File& f = *it->second->file;
  if (f.laminated) {
    // Read-only forever; EROFS is permanent, so retries never absorb it.
    return {0, off, cfg_.base.data_latency, fault::kErofs};
  }
  // Inject before allocating the version tag: a failed attempt writes
  // nothing, so a retried run consumes the exact same tags as a fault-free
  // one (the retry-absorption property the tests assert). Writes go
  // straight to the OSTs with the open handle — no MDS availability check
  // — and succeed even onto a down OST (client write-behind; the data
  // replays at restart, until which reads of those stripes return holes).
  if (const int e = inject(fault::OpClass::Write, r, now)) {
    return {0, off, cfg_.base.data_latency, e};
  }
  WriteRecord w;
  w.id = next_version_++;
  w.writer = r;
  w.ext = {off, off + count};
  w.t_write = now;
  if (cfg_.base.model == ConsistencyModel::Strong) {
    w.t_commit = now;
    w.t_publish = now;
  }
  f.writes.push_back(w);
  f.index_write(static_cast<std::uint32_t>(f.writes.size() - 1));
  f.size = std::max(f.size, w.ext.end);
  if (cfg_.base.model == ConsistencyModel::Eventual && injector_ != nullptr &&
      injector_->visibility_extra(now) > 0) {
    injector_->note_delayed_write();
  }
  SimDuration cost = cfg_.base.data_latency + charge_transfer(w.ext, now);
  cost += charge_locks(f, r, w.ext, /*exclusive=*/true);
  return {w.id, off, cost};
}

ReadResult PfsCluster::read(Rank r, int fd, std::uint64_t count, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "read: bad file descriptor");
  OpenFile& of = *it->second;
  ReadResult res = pread(r, fd, of.offset, count, now);
  of.offset += res.bytes;
  return res;
}

ReadResult PfsCluster::pread(Rank r, int fd, Offset off, std::uint64_t count,
                             SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "pread: bad file descriptor");
  OpenFile& of = *it->second;
  File& f = *of.file;
  ReadResult res;
  res.offset = off;
  if (const int e = inject(fault::OpClass::Read, r, now)) {
    res.err = e;
    res.cost = cfg_.base.data_latency;
    return res;
  }
  res.bytes = off >= f.size ? 0 : std::min<std::uint64_t>(count, f.size - off);
  if (res.bytes > 0) {
    res.extents =
        detail::resolve_view(f, env(), r, now, of.t_open, off, res.bytes);
    // Degraded mode: stripe blocks on a down OST read as holes (the cost
    // is still charged in full — the client waits out the request either
    // way).
    if (punch_dead_stripes(res.extents, {off, off + res.bytes}) &&
        injector_ != nullptr) {
      injector_->note_degraded_read();
    }
  }
  res.cost = cfg_.base.data_latency + charge_transfer({off, off + res.bytes}, now);
  res.cost += charge_locks(f, r, {off, off + res.bytes}, /*exclusive=*/false);
  return res;
}

MetaResult PfsCluster::lseek(Rank r, int fd, std::int64_t delta, int whence,
                             SimTime now) {
  (void)now;
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "lseek: bad file descriptor");
  OpenFile& of = *it->second;
  std::int64_t base = 0;
  switch (whence) {
    case trace::kSeekSet: base = 0; break;
    case trace::kSeekCur: base = static_cast<std::int64_t>(of.offset); break;
    case trace::kSeekEnd: base = static_cast<std::int64_t>(of.file->size); break;
    default: require(false, "lseek: bad whence");
  }
  const std::int64_t pos = base + delta;
  if (pos < 0) return {-1, 0};
  of.offset = static_cast<Offset>(pos);
  return {pos, 0};
}

MetaResult PfsCluster::fsync(Rank r, int fd, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "fsync: bad file descriptor");
  if (const int e = inject(fault::OpClass::Sync, r, now)) {
    return {-1, cfg_.base.meta_latency, e};  // nothing committed this attempt
  }
  File& f = *it->second->file;
  if (const int e = mds_route(shard_of(f.path), now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  for (auto& w : f.writes) {
    if (w.writer == r && w.t_commit == kTimeNever) w.t_commit = now;
  }
  ++locks_.meta_ops;
  return {0, cfg_.base.meta_latency};
}

MetaResult PfsCluster::laminate(const std::string& path, SimTime now) {
  auto f = lookup(path);
  if (!f) return {-1, cfg_.base.meta_latency};
  const int err = mds_route(shard_of(path), now, /*can_fail=*/false);
  if (err == 0) {
    for (auto& w : f->writes) {
      if (w.t_commit == kTimeNever) w.t_commit = now;
      if (w.t_publish == kTimeNever) w.t_publish = now;
    }
    f->laminated = true;
  }
  ++locks_.meta_ops;
  return {err == 0 ? 0 : -1, cfg_.base.meta_latency, err};
}

MetaResult PfsCluster::ftruncate(Rank r, int fd, Offset length, SimTime now) {
  auto it = open_files_.find({r, fd});
  require(it != open_files_.end(), "ftruncate: bad file descriptor");
  if (const int e = inject(fault::OpClass::Meta, r, now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  File& f = *it->second->file;
  if (const int e = mds_route(shard_of(f.path), now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  if (length < f.size) {
    // Clip recorded writes so re-grown regions read as holes, like a real
    // zero-filling truncate.
    std::erase_if(f.writes,
                  [&](const WriteRecord& w) { return w.ext.begin >= length; });
    for (auto& w : f.writes) w.ext.end = std::min(w.ext.end, length);
    f.rebuild_index();
  }
  f.size = length;
  ++locks_.meta_ops;
  return {0, cfg_.base.meta_latency};
}

// ----------------------------------------------------------------------
// namespace ops

MetaResult PfsCluster::stat(const std::string& path, SimTime now) {
  if (const int e = inject(fault::OpClass::Meta, kNoRank, now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  if (const int e = mds_route(shard_of(path), now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(path);
  if (f) return {static_cast<std::int64_t>(f->size), cfg_.base.meta_latency};
  if (dirs_.contains(names_.find(path))) return {0, cfg_.base.meta_latency};
  return {-1, cfg_.base.meta_latency};
}

MetaResult PfsCluster::access(const std::string& path, SimTime now) {
  if (const int e = inject(fault::OpClass::Meta, kNoRank, now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  if (const int e = mds_route(shard_of(path), now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  ++locks_.meta_ops;
  return {lookup(path) || dirs_.contains(names_.find(path)) ? 0 : -1,
          cfg_.base.meta_latency};
}

MetaResult PfsCluster::unlink(const std::string& path, SimTime now) {
  if (const int e = inject(fault::OpClass::Meta, kNoRank, now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  if (const int e = mds_route(shard_of(path), now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  ++locks_.meta_ops;
  auto f = lookup(path);
  if (!f) return {-1, cfg_.base.meta_latency};
  slot(path).reset();
  return {0, cfg_.base.meta_latency};
}

MetaResult PfsCluster::mkdir(const std::string& path, SimTime now) {
  if (const int e = inject(fault::OpClass::Meta, kNoRank, now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  if (const int e = mds_route(shard_of(path), now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  ++locks_.meta_ops;
  return {dirs_.insert(names_.intern(path)).second ? 0 : -1,
          cfg_.base.meta_latency};
}

MetaResult PfsCluster::rename(const std::string& from, const std::string& to,
                              SimTime now) {
  if (const int e = inject(fault::OpClass::Meta, kNoRank, now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  // A rename spans two shards (source and destination directory entries);
  // both must be reachable. One aggregate meta op either way, so the
  // fault-free cost and counters match the single-server backend.
  if (const int e = mds_route(shard_of(from), now)) {
    return {-1, cfg_.base.meta_latency, e};
  }
  if (shard_of(to) != shard_of(from)) {
    if (const int e = mds_route(shard_of(to), now)) {
      return {-1, cfg_.base.meta_latency, e};
    }
  }
  ++locks_.meta_ops;
  auto f = lookup(from);
  if (!f) return {-1, cfg_.base.meta_latency};
  slot(from).reset();
  f->path = to;
  slot(to) = f;
  return {0, cfg_.base.meta_latency};
}

// ----------------------------------------------------------------------
// faults & server lifecycle

std::vector<VersionTag> PfsCluster::crash_rank(Rank r, SimTime now) {
  std::vector<VersionTag> lost = detail::apply_rank_crash(files_, r, now, env());
  // Drop the rank's descriptors *without* the close-time commit/publish —
  // a crashed process never reaches close().
  std::erase_if(open_files_,
                [&](const auto& kv) { return kv.first.first == r; });
  return lost;
}

void PfsCluster::apply_server_event(const fault::ServerEvent& ev, SimTime now) {
  if (ev.kind == fault::ServerKind::Mds) {
    require(ev.id >= 0 && ev.id < cfg_.mds_count,
            "apply_server_event: mds id out of range");
    MdsState& s = mds_[static_cast<std::size_t>(ev.id)];
    if (!ev.restart) {
      // A crash while the primary is already down takes out a standby.
      if (s.up) s.up = false;
      else if (s.standbys > 0) --s.standbys;
      if (injector_ != nullptr) {
        injector_->note_server_crash(fault::ServerKind::Mds, ev.id, now);
      }
    } else {
      // Rejoin: as primary if the shard is headless, else as a standby.
      if (!s.up) s.up = true;
      else ++s.standbys;
      if (injector_ != nullptr) {
        injector_->note_server_restart(fault::ServerKind::Mds, ev.id, now);
      }
    }
  } else {
    require(ev.id >= 0 && ev.id < cfg_.ost_count,
            "apply_server_event: ost id out of range");
    ost_[static_cast<std::size_t>(ev.id)].up = !ev.restart ? false : true;
    if (injector_ != nullptr) {
      if (!ev.restart) {
        injector_->note_server_crash(fault::ServerKind::Ost, ev.id, now);
      } else {
        injector_->note_server_restart(fault::ServerKind::Ost, ev.id, now);
      }
    }
  }
  any_ost_down_ = false;
  for (const auto& o : ost_) any_ost_down_ |= !o.up;
}

// ----------------------------------------------------------------------
// preload & introspection

void PfsCluster::preload(const std::string& path, Offset size) {
  require(!exists(path), "preload: file already exists: " + path);
  auto f = std::make_shared<File>();
  f->path = path;
  WriteRecord w;
  w.id = next_version_++;
  w.writer = kNoRank;
  w.ext = {0, size};
  w.t_write = -1;
  w.t_commit = -1;
  w.t_publish = -1;
  f->writes.push_back(w);
  f->index_write(0);
  f->size = size;
  slot(path) = std::move(f);
}

bool PfsCluster::exists(const std::string& path) const {
  return lookup(path) != nullptr;
}

Offset PfsCluster::file_size(const std::string& path) const {
  auto f = lookup(path);
  return f ? f->size : 0;
}

std::vector<std::string> PfsCluster::list_files() const {
  std::vector<std::string> out;
  for (const auto& f : files_) {
    if (f) out.push_back(f->path);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ReadExtent> PfsCluster::strong_view(const std::string& path,
                                                Offset off,
                                                std::uint64_t count) const {
  auto f = lookup(path);
  require(f != nullptr, "strong_view: no such file");
  return detail::strong_view_of(*f, off, count);
}

}  // namespace pfsem::vfs
