#include "pfsem/vfs/file_core.hpp"

#include <algorithm>

#include "pfsem/fault/injector.hpp"

namespace pfsem::vfs::detail {

void assign(std::map<Offset, Seg>& m, Extent e, VersionTag v, Rank w) {
  auto split = [&m](Offset x) {
    auto it = m.upper_bound(x);
    if (it == m.begin()) return;
    --it;
    if (it->first < x && x < it->second.end) {
      Seg right = it->second;
      it->second.end = x;
      m.emplace(x, right);
    }
  };
  split(e.begin);
  split(e.end);
  auto it = m.lower_bound(e.begin);
  while (it != m.end() && it->first < e.end) it = m.erase(it);
  m.emplace(e.begin, Seg{e.end, v, w});
}

std::vector<ReadExtent> emit_extents(const std::map<Offset, Seg>& m) {
  std::vector<ReadExtent> out;
  for (const auto& [begin, seg] : m) {
    if (!out.empty() && out.back().version == seg.v &&
        out.back().writer == seg.w && out.back().ext.end == begin) {
      out.back().ext.end = seg.end;
    } else {
      out.push_back({{begin, seg.end}, seg.v, seg.w});
    }
  }
  return out;
}

std::vector<ReadExtent> resolve_view(const FileCore& f, const ResolveEnv& env,
                                     Rank r, SimTime now, SimTime session_open,
                                     Offset off, std::uint64_t count) {
  const Extent range{off, off + count};
  // Collect visible writes with their effective-visibility key.
  struct Cand {
    SimTime key;
    const WriteRecord* w;
  };
  std::vector<Cand> cands;
  // Gather candidate writes from the block index (deduplicated: a write
  // spanning several blocks appears once per block).
  std::vector<std::uint32_t> candidates;
  {
    const Offset first = range.begin / FileCore::kIndexBlock;
    const Offset last =
        range.end == 0 ? 0 : (range.end - 1) / FileCore::kIndexBlock;
    for (auto it = f.write_index.lower_bound(first);
         it != f.write_index.end() && it->first <= last; ++it) {
      candidates.insert(candidates.end(), it->second.begin(), it->second.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }
  for (std::uint32_t ci : candidates) {
    const auto& w = f.writes[ci];
    if (!w.ext.overlaps(range)) continue;
    SimTime key = kTimeNever;
    SimTime threshold = now;
    if (w.writer == r || w.writer == kNoRank || f.laminated) {
      // Own writes are always visible in order; genesis (preloaded) data
      // predates the run and laminated files are globally visible under
      // every model.
      key = w.t_write;
    } else {
      switch (env.model) {
        case ConsistencyModel::Strong:
          key = w.t_write;
          break;
        case ConsistencyModel::Commit:
          key = w.t_commit;
          if (key == kTimeNever) continue;
          break;
        case ConsistencyModel::Session:
          key = w.t_publish;
          if (key == kTimeNever) continue;
          threshold = session_open;
          break;
        case ConsistencyModel::Eventual:
          key = w.t_write + env.eventual_propagation;
          // A visibility spike active when the write was issued stretches
          // its propagation further.
          if (env.injector != nullptr) {
            key += env.injector->visibility_extra(w.t_write);
          }
          break;
      }
      // Split brain: a write from the other side of an active network
      // partition stays invisible until the partition heals, whatever the
      // model says — observable staleness even under strong semantics.
      if (env.injector != nullptr) {
        key = env.injector->partition_defer(w.writer, r, key);
      }
    }
    if (key > threshold) continue;
    cands.push_back({key, &w});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    return a.key != b.key ? a.key < b.key : a.w->id < b.w->id;
  });
  std::map<Offset, Seg> m;
  m.emplace(range.begin, Seg{range.end, 0, kNoRank});
  for (const auto& c : cands) {
    assign(m, c.w->ext.intersect(range), c.w->id, c.w->writer);
  }
  return emit_extents(m);
}

std::vector<ReadExtent> strong_view_of(const FileCore& f, Offset off,
                                       std::uint64_t count) {
  const Extent range{off, off + count};
  std::map<Offset, Seg> m;
  m.emplace(range.begin, Seg{range.end, 0, kNoRank});
  // Writes are stored in write order; later writes overwrite earlier ones.
  for (const auto& w : f.writes) {
    if (w.ext.overlaps(range)) assign(m, w.ext.intersect(range), w.id, w.writer);
  }
  return emit_extents(m);
}

bool write_durable(const WriteRecord& w, const ResolveEnv& env, SimTime now) {
  switch (env.model) {
    case ConsistencyModel::Strong: return true;
    case ConsistencyModel::Commit:
      return w.t_commit != kTimeNever && w.t_commit <= now;
    case ConsistencyModel::Session:
      return w.t_publish != kTimeNever && w.t_publish <= now;
    case ConsistencyModel::Eventual: {
      SimTime key = w.t_write + env.eventual_propagation;
      if (env.injector != nullptr) {
        key += env.injector->visibility_extra(w.t_write);
      }
      return key <= now;
    }
  }
  return true;
}

SimDuration charge_locks(FileCore& f, Rank r, Extent ext, bool exclusive,
                         const LockParams& p, LockStats& stats) {
  if (p.model != ConsistencyModel::Strong || ext.empty()) return 0;
  SimDuration cost = 0;
  const Offset first = ext.begin / p.lock_block;
  const Offset last = (ext.end - 1) / p.lock_block;
  for (Offset b = first; b <= last; ++b) {
    LockBlock& blk = f.locks[b];
    // An exclusive request is satisfied only by a sole exclusive hold; a
    // shared request is satisfied by any existing hold of ours (a sole
    // exclusive hold also permits reading).
    const bool held_ok =
        exclusive ? (blk.exclusive && blk.holders.size() == 1 &&
                     blk.holders.contains(r))
                  : blk.holders.contains(r);
    if (held_ok) continue;
    ++stats.requests;
    cost += p.lock_latency;
    // Call back conflicting holders.
    std::size_t conflicting = 0;
    if (exclusive) {
      conflicting = blk.holders.size() - (blk.holders.contains(r) ? 1 : 0);
    } else if (blk.exclusive && !blk.holders.contains(r)) {
      conflicting = blk.holders.size();
    }
    if (conflicting > 0) {
      stats.revocations += conflicting;
      cost += p.lock_latency * static_cast<SimDuration>(conflicting);
    }
    if (exclusive) {
      blk.holders = {r};
      blk.exclusive = true;
    } else {
      if (blk.exclusive) blk.holders.clear();
      blk.exclusive = false;
      blk.holders.insert(r);
    }
  }
  return cost;
}

std::vector<VersionTag> apply_rank_crash(
    std::vector<std::shared_ptr<FileCore>>& files, Rank r, SimTime now,
    const ResolveEnv& env) {
  std::vector<VersionTag> lost;
  for (auto& f : files) {
    if (!f) continue;
    if (!f->laminated) {
      const std::size_t before = f->writes.size();
      std::erase_if(f->writes, [&](const WriteRecord& w) {
        if (w.writer != r || write_durable(w, env, now)) return false;
        lost.push_back(w.id);
        return true;
      });
      if (f->writes.size() != before) {
        f->rebuild_index();
        Offset size = 0;
        for (const auto& w : f->writes) size = std::max(size, w.ext.end);
        f->size = size;
      }
    }
    for (auto& [blk, lock] : f->locks) lock.holders.erase(r);
  }
  std::sort(lost.begin(), lost.end());
  return lost;
}

}  // namespace pfsem::vfs::detail
