#pragma once
// Runtime side of fault injection: turns a (FaultPlan, seed) pair into
// per-operation decisions and accumulates the degraded-mode statistics the
// run report prints.
//
// Determinism: the injector owns one Rng seeded from the fault seed, and
// every probabilistic decision (transient errors, MPI drops) draws from it
// in simulation-event order — which the DES engine makes deterministic —
// so identical (workload seed, fault plan, fault seed) triples reproduce
// bit-identical traces and identical FaultStats. Window checks (slowdowns,
// visibility spikes) and the crash schedule are pure functions of time and
// consume no randomness.
//
// The injector is wired by the harness into every layer that can fail:
// vfs backends (transient errors, slowdowns, spikes, crash durability),
// mpi::World (message drops, crashed-sender/receiver fail-stop), and
// iolib (retry accounting, crash checks at operation boundaries).

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "pfsem/fault/plan.hpp"
#include "pfsem/obs/obs.hpp"
#include "pfsem/util/rng.hpp"

namespace pfsem::fault {

/// Degraded-mode counters for one run. Everything here is deterministic
/// under a fixed (plan, seed); tests compare whole structs.
struct FaultStats {
  std::uint64_t transient_faults = 0;  ///< transient errors injected
  std::uint64_t faults_eio = 0;        ///< ... of which EIO
  std::uint64_t faults_enospc = 0;     ///< ... of which ENOSPC
  std::uint64_t retries = 0;           ///< retry attempts consumed (iolib)
  std::uint64_t giveups = 0;           ///< ops that exhausted their budget
  std::uint64_t slowed_transfers = 0;  ///< transfers hit by a slowdown window
  std::uint64_t delayed_writes = 0;    ///< writes hit by a visibility spike
  std::uint64_t mpi_drops = 0;         ///< messages dropped then retransmitted
  std::uint64_t writes_lost = 0;       ///< versions discarded by crashes
  std::uint64_t server_crashes = 0;    ///< MDS/OST fail-stop events fired
  std::uint64_t server_restarts = 0;   ///< servers that rejoined the cluster
  std::uint64_t mds_failovers = 0;     ///< standby replicas promoted to primary
  std::uint64_t failover_redirects = 0;  ///< client ops re-sent after EHOSTDOWN
  std::uint64_t degraded_reads = 0;    ///< reads with holes from dead OSTs
  std::vector<std::uint64_t> lost_versions;  ///< the discarded version tags
  std::vector<Rank> crashed_ranks;           ///< in crash order
  std::vector<std::string> crashed_servers;  ///< "mds1", "ost0", ... in order

  bool operator==(const FaultStats&) const = default;
};

class Injector {
 public:
  /// `ranks_per_node` resolves crash:node= clauses to rank sets.
  Injector(FaultPlan plan, std::uint64_t seed, int ranks_per_node);
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  /// Transient-fault decision for one operation: 0 = proceed, otherwise
  /// the simulated errno to fail with. Draws randomness; call exactly once
  /// per attempted operation.
  [[nodiscard]] int on_op(OpClass c, Rank r, SimTime now);

  /// Multiplicative slowdown for a transfer touching OST `ost` at `now`
  /// (>= 1.0). Pure; use note_slowed_transfer() to count affected ops.
  [[nodiscard]] double transfer_factor(int ost, SimTime now) const;

  /// Extra propagation delay (eventual model) for a write issued at
  /// `t_write`. Pure function of the plan.
  [[nodiscard]] SimDuration visibility_extra(SimTime t_write) const;

  /// Extra delivery latency for a message sent at `now` (0 = first try).
  /// Draws randomness; call exactly once per send.
  [[nodiscard]] SimDuration mpi_delay(Rank from, Rank to, SimTime now);

  /// Crash schedule resolved to (rank, time) pairs, node clauses expanded,
  /// sorted by (time, rank). Ranks outside [0, nranks) are dropped.
  [[nodiscard]] std::vector<std::pair<Rank, SimTime>> crash_schedule(
      int nranks) const;

  /// Server crash/restart events sorted by (time, restart-last, kind, id).
  /// Pure function of the plan; the harness spawns one killable root per
  /// event that applies it to the PfsCluster at the event instant.
  [[nodiscard]] std::vector<ServerEvent> server_schedule() const;

  /// Split-brain visibility: clamp the visibility key of a write by
  /// `writer` as seen by `reader` to the heal time of every partition the
  /// key falls into with writer and reader on opposite sides. Pure
  /// function of the plan (windows checked against the undeferred key).
  [[nodiscard]] SimTime partition_defer(Rank writer, Rank reader,
                                        SimTime key) const;

  /// Fail-stop bookkeeping: mark_crashed is called by the crash scheduler
  /// at the crash instant (`now` feeds the observability event stream);
  /// crashed() is checked by iolib/mpi/harness at every operation
  /// boundary of the victim.
  void mark_crashed(Rank r, SimTime now = 0);
  [[nodiscard]] bool crashed(Rank r) const { return crashed_.contains(r); }

  /// Attach an observability context (nullptr = off, the default). The
  /// injector then mirrors FaultStats into the fault.* metrics and, when
  /// tracing is on, emits one instant event per injected fault (kind,
  /// rank, simulated time) so degraded-mode reports can cite exactly
  /// what fired.
  void set_observer(obs::Run* run) { obs_ = run; }

  // --- degraded-mode accounting hooks ---------------------------------
  void note_retry() {
    ++stats_.retries;
    if (obs_ != nullptr) obs_->metrics.add(obs_->io_retries);
  }
  void note_giveup() {
    ++stats_.giveups;
    if (obs_ != nullptr) obs_->metrics.add(obs_->io_giveups);
  }
  void note_slowed_transfer() {
    ++stats_.slowed_transfers;
    if (obs_ != nullptr) obs_->metrics.add(obs_->fault_slowdowns);
  }
  void note_delayed_write() {
    ++stats_.delayed_writes;
    if (obs_ != nullptr) obs_->metrics.add(obs_->fault_delays);
  }
  void note_lost_writes(const std::vector<std::uint64_t>& versions);
  /// Server-domain accounting (called by vfs::PfsCluster / iolib).
  void note_server_crash(ServerKind kind, int id, SimTime now);
  void note_server_restart(ServerKind kind, int id, SimTime now);
  void note_mds_failover(int shard, SimTime now);
  void note_failover_redirect() {
    ++stats_.failover_redirects;
    if (obs_ != nullptr) obs_->metrics.add(obs_->fault_redirects);
  }
  void note_degraded_read() {
    ++stats_.degraded_reads;
    if (obs_ != nullptr) obs_->metrics.add(obs_->fault_degraded_reads);
  }

 private:
  FaultPlan plan_;
  Rng rng_;
  int ranks_per_node_;
  std::set<Rank> crashed_;
  /// Crash instants of currently-down servers, so a restart can close the
  /// degraded-mode span it opened.
  std::map<std::pair<ServerKind, int>, SimTime> server_down_since_;
  FaultStats stats_;
  /// Observability (off = nullptr; one branch per accounting site).
  obs::Run* obs_ = nullptr;
};

}  // namespace pfsem::fault
