#pragma once
// Deterministic fault plans.
//
// A FaultPlan is a declarative, seed-driven schedule of environment faults
// for one simulated run: transient I/O errors (EIO/ENOSPC) with a
// configurable probability per operation class, OST slowdown windows
// (stragglers), delayed-visibility spikes for the eventual model, dropped-
// then-retransmitted MPI messages, and fail-stop rank/node crashes at a
// fixed simulated time. Plans are pure data; the fault::Injector turns a
// (plan, seed) pair into concrete per-operation decisions. Because the DES
// engine dispatches events in a deterministic order, the same plan + seed
// always produces bit-identical traces and identical degraded-mode stats.
//
// The spec grammar (parsed by FaultPlan::parse, documented in
// docs/faults.md) is a semicolon-separated clause list:
//
//   eio:p=0.01,ops=write        transient EIO on 1% of writes
//   enospc:p=0.001,ops=data     transient ENOSPC on reads+writes
//   slow:factor=10,from=1ms,to=3ms[,ost=2]   OST slowdown window
//   vis:extra=20ms,from=0,to=5ms             visibility spike (eventual)
//   drop:p=0.05,timeout=1ms     MPI message drop + retransmit delay
//   crash:rank=3,t=2ms          fail-stop crash of rank 3 at t=2ms
//   crash:node=1,t=2ms          crash every rank on node 1
//
// Server fault domains (multi-server PfsCluster backend, docs/topology.md):
//
//   crash_mds:id=1,t=2ms        fail-stop crash of metadata server 1
//   crash_ost:id=0,t=2ms        fail-stop crash of data server (OST) 0
//   restart_server:mds=1,t=8ms  metadata server 1 rejoins the cluster
//   restart_server:ost=0,t=8ms  OST 0 rejoins (its stripes readable again)
//   partition:ranks=0-3,from=1ms,to=4ms   network partition: ranks 0..3
//                               are split from the rest; cross-partition
//                               write visibility defers to the heal time

#include <string>
#include <vector>

#include "pfsem/util/types.hpp"

namespace pfsem::fault {

/// Operation classes transient faults can target.
enum class OpClass : std::uint8_t { Read = 0, Write = 1, Meta = 2, Sync = 3 };
inline constexpr int kOpClasses = 4;

[[nodiscard]] const char* to_string(OpClass c);

// Simulated errno values (numerically equal to Linux's, but self-contained
// so the simulation does not depend on the host's <cerrno>).
inline constexpr int kEio = 5;     ///< I/O error (transient, retryable)
inline constexpr int kEnospc = 28; ///< no space left (transient, retryable)
inline constexpr int kErofs = 30;  ///< read-only file (laminated; permanent)
inline constexpr int kEhostdown = 112;  ///< server dead (failover, not retry)

/// Human name for a simulated errno ("EIO", "ENOSPC", ...).
[[nodiscard]] const char* errno_name(int err);

/// Inject `err` on each matching operation with probability `probability`.
struct TransientFault {
  int err = kEio;
  double probability = 0.0;
  bool ops[kOpClasses] = {false, false, false, false};

  [[nodiscard]] bool applies(OpClass c) const {
    return ops[static_cast<int>(c)];
  }
};

/// Multiply per-OST transfer time by `factor` during [from, to).
struct OstSlowdown {
  double factor = 1.0;
  SimTime from = 0;
  SimTime to = kTimeNever;
  int ost = -1;  ///< -1 = every OST (whole-PFS congestion)
};

/// Writes issued during [from, to) take `extra` additional propagation
/// time before becoming visible under the eventual model.
struct VisibilitySpike {
  SimDuration extra = 0;
  SimTime from = 0;
  SimTime to = kTimeNever;
};

/// Drop each MPI message with probability `probability`; the sender
/// retransmits after `retransmit` (so the message is delayed, not lost).
struct MpiDrop {
  double probability = 0.0;
  SimDuration retransmit = 1'000'000;  // 1 ms
};

/// Fail-stop crash: exactly one of `rank` / `node` is set.
struct CrashEvent {
  Rank rank = kNoRank;
  int node = -1;
  SimTime t = 0;
};

/// Which server class a server-level fault event targets.
enum class ServerKind : std::uint8_t { Mds = 0, Ost = 1 };

[[nodiscard]] const char* to_string(ServerKind k);

/// Human name of server `id` of `kind` ("mds1", "ost0", ...).
[[nodiscard]] std::string server_name(ServerKind kind, int id);

/// Fail-stop crash (`restart == false`) or rejoin (`restart == true`) of
/// one PfsCluster server at simulated time `t`.
struct ServerEvent {
  ServerKind kind = ServerKind::Mds;
  int id = 0;
  SimTime t = 0;
  bool restart = false;
};

/// Network partition: ranks [lo, hi] are cut off from every other rank
/// during [from, to). Both sides keep running on their own view; a write
/// issued by one side becomes visible to the other only once the
/// partition heals (visibility key clamped to `to`) — the split-brain
/// divergence is observable even under the strong model.
struct Partition {
  Rank lo = 0;
  Rank hi = 0;
  SimTime from = 0;
  SimTime to = kTimeNever;  ///< heal time; kTimeNever = never heals

  [[nodiscard]] bool inside(Rank r) const { return r >= lo && r <= hi; }
};

struct FaultPlan {
  std::vector<TransientFault> transients;
  std::vector<OstSlowdown> slowdowns;
  std::vector<VisibilitySpike> spikes;
  std::vector<MpiDrop> drops;
  std::vector<CrashEvent> crashes;
  std::vector<ServerEvent> server_events;
  std::vector<Partition> partitions;

  [[nodiscard]] bool empty() const {
    return transients.empty() && slowdowns.empty() && spikes.empty() &&
           drops.empty() && crashes.empty() && server_events.empty() &&
           partitions.empty();
  }

  /// Parse the spec grammar above; throws pfsem::Error on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Check every server event against a concrete cluster topology;
  /// throws pfsem::Error on a server id >= the configured server count.
  /// A single-server backend passes (0, 0): any server event is an error
  /// there (the plan needs a PfsCluster, i.e. --mds/--ost).
  void validate_topology(int mds_count, int ost_count) const;
};

}  // namespace pfsem::fault
