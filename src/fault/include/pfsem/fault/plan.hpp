#pragma once
// Deterministic fault plans.
//
// A FaultPlan is a declarative, seed-driven schedule of environment faults
// for one simulated run: transient I/O errors (EIO/ENOSPC) with a
// configurable probability per operation class, OST slowdown windows
// (stragglers), delayed-visibility spikes for the eventual model, dropped-
// then-retransmitted MPI messages, and fail-stop rank/node crashes at a
// fixed simulated time. Plans are pure data; the fault::Injector turns a
// (plan, seed) pair into concrete per-operation decisions. Because the DES
// engine dispatches events in a deterministic order, the same plan + seed
// always produces bit-identical traces and identical degraded-mode stats.
//
// The spec grammar (parsed by FaultPlan::parse, documented in
// docs/faults.md) is a semicolon-separated clause list:
//
//   eio:p=0.01,ops=write        transient EIO on 1% of writes
//   enospc:p=0.001,ops=data     transient ENOSPC on reads+writes
//   slow:factor=10,from=1ms,to=3ms[,ost=2]   OST slowdown window
//   vis:extra=20ms,from=0,to=5ms             visibility spike (eventual)
//   drop:p=0.05,timeout=1ms     MPI message drop + retransmit delay
//   crash:rank=3,t=2ms          fail-stop crash of rank 3 at t=2ms
//   crash:node=1,t=2ms          crash every rank on node 1

#include <string>
#include <vector>

#include "pfsem/util/types.hpp"

namespace pfsem::fault {

/// Operation classes transient faults can target.
enum class OpClass : std::uint8_t { Read = 0, Write = 1, Meta = 2, Sync = 3 };
inline constexpr int kOpClasses = 4;

[[nodiscard]] const char* to_string(OpClass c);

// Simulated errno values (numerically equal to Linux's, but self-contained
// so the simulation does not depend on the host's <cerrno>).
inline constexpr int kEio = 5;     ///< I/O error (transient, retryable)
inline constexpr int kEnospc = 28; ///< no space left (transient, retryable)
inline constexpr int kErofs = 30;  ///< read-only file (laminated; permanent)

/// Human name for a simulated errno ("EIO", "ENOSPC", ...).
[[nodiscard]] const char* errno_name(int err);

/// Inject `err` on each matching operation with probability `probability`.
struct TransientFault {
  int err = kEio;
  double probability = 0.0;
  bool ops[kOpClasses] = {false, false, false, false};

  [[nodiscard]] bool applies(OpClass c) const {
    return ops[static_cast<int>(c)];
  }
};

/// Multiply per-OST transfer time by `factor` during [from, to).
struct OstSlowdown {
  double factor = 1.0;
  SimTime from = 0;
  SimTime to = kTimeNever;
  int ost = -1;  ///< -1 = every OST (whole-PFS congestion)
};

/// Writes issued during [from, to) take `extra` additional propagation
/// time before becoming visible under the eventual model.
struct VisibilitySpike {
  SimDuration extra = 0;
  SimTime from = 0;
  SimTime to = kTimeNever;
};

/// Drop each MPI message with probability `probability`; the sender
/// retransmits after `retransmit` (so the message is delayed, not lost).
struct MpiDrop {
  double probability = 0.0;
  SimDuration retransmit = 1'000'000;  // 1 ms
};

/// Fail-stop crash: exactly one of `rank` / `node` is set.
struct CrashEvent {
  Rank rank = kNoRank;
  int node = -1;
  SimTime t = 0;
};

struct FaultPlan {
  std::vector<TransientFault> transients;
  std::vector<OstSlowdown> slowdowns;
  std::vector<VisibilitySpike> spikes;
  std::vector<MpiDrop> drops;
  std::vector<CrashEvent> crashes;

  [[nodiscard]] bool empty() const {
    return transients.empty() && slowdowns.empty() && spikes.empty() &&
           drops.empty() && crashes.empty();
  }

  /// Parse the spec grammar above; throws pfsem::Error on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
};

}  // namespace pfsem::fault
