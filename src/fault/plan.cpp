#include "pfsem/fault/plan.hpp"

#include <cstdlib>

#include "pfsem/util/error.hpp"

namespace pfsem::fault {

const char* to_string(OpClass c) {
  switch (c) {
    case OpClass::Read: return "read";
    case OpClass::Write: return "write";
    case OpClass::Meta: return "meta";
    case OpClass::Sync: return "sync";
  }
  return "?";
}

const char* errno_name(int err) {
  switch (err) {
    case 0: return "OK";
    case kEio: return "EIO";
    case kEnospc: return "ENOSPC";
    case kErofs: return "EROFS";
    case kEhostdown: return "EHOSTDOWN";
  }
  return "E?";
}

const char* to_string(ServerKind k) {
  return k == ServerKind::Mds ? "mds" : "ost";
}

std::string server_name(ServerKind kind, int id) {
  return std::string(to_string(kind)) + std::to_string(id);
}

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

double parse_double(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  require(end != nullptr && *end == '\0' && !v.empty(),
          "fault plan: bad numeric value for '" + key + "': " + v);
  return d;
}

long long parse_int(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const long long n = std::strtoll(v.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !v.empty(),
          "fault plan: bad integer value for '" + key + "': " + v);
  return n;
}

/// Durations accept an optional unit suffix: ns (default), us, ms, s.
SimDuration parse_duration(const std::string& key, std::string v) {
  SimDuration scale = 1;
  auto ends_with = [&v](const char* suf) {
    const std::string s(suf);
    return v.size() >= s.size() && v.compare(v.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with("ns")) {
    v.resize(v.size() - 2);
  } else if (ends_with("us")) {
    scale = 1'000;
    v.resize(v.size() - 2);
  } else if (ends_with("ms")) {
    scale = 1'000'000;
    v.resize(v.size() - 2);
  } else if (ends_with("s")) {
    scale = 1'000'000'000;
    v.resize(v.size() - 1);
  }
  return parse_int(key, v) * scale;
}

void parse_ops(const std::string& v, TransientFault& f) {
  for (const auto& tok : split(v, '|')) {
    if (tok == "read") {
      f.ops[static_cast<int>(OpClass::Read)] = true;
    } else if (tok == "write") {
      f.ops[static_cast<int>(OpClass::Write)] = true;
    } else if (tok == "meta") {
      f.ops[static_cast<int>(OpClass::Meta)] = true;
    } else if (tok == "sync") {
      f.ops[static_cast<int>(OpClass::Sync)] = true;
    } else if (tok == "data") {
      f.ops[static_cast<int>(OpClass::Read)] = true;
      f.ops[static_cast<int>(OpClass::Write)] = true;
    } else if (tok == "all") {
      for (auto& b : f.ops) b = true;
    } else {
      require(false, "fault plan: unknown op class '" + tok + "'");
    }
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const auto& raw_clause : split(spec, ';')) {
    const std::string clause = trim(raw_clause);
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    const std::string kind = clause.substr(0, colon);
    std::vector<std::pair<std::string, std::string>> kv;
    if (colon != std::string::npos) {
      for (const auto& raw_item : split(clause.substr(colon + 1), ',')) {
        const std::string item = trim(raw_item);
        if (item.empty()) continue;
        const std::size_t eq = item.find('=');
        require(eq != std::string::npos,
                "fault plan: expected key=value, got '" + item + "'");
        kv.emplace_back(trim(item.substr(0, eq)),
                        trim(item.substr(eq + 1)));
      }
    }
    auto reject = [&](const std::string& key) {
      require(false, "fault plan: unknown key '" + key + "' in '" + kind +
                         "' clause");
    };
    if (kind == "eio" || kind == "enospc") {
      TransientFault f;
      f.err = kind == "eio" ? kEio : kEnospc;
      bool ops_given = false;
      for (const auto& [k, v] : kv) {
        if (k == "p") f.probability = parse_double(k, v);
        else if (k == "ops") { parse_ops(v, f); ops_given = true; }
        else reject(k);
      }
      if (!ops_given) parse_ops("data", f);  // default: reads + writes
      require(f.probability >= 0.0 && f.probability <= 1.0,
              "fault plan: probability must be in [0, 1]");
      plan.transients.push_back(f);
    } else if (kind == "slow") {
      OstSlowdown s;
      bool ost_given = false;
      for (const auto& [k, v] : kv) {
        if (k == "factor") s.factor = parse_double(k, v);
        else if (k == "from") s.from = parse_duration(k, v);
        else if (k == "to") s.to = parse_duration(k, v);
        else if (k == "ost") { s.ost = static_cast<int>(parse_int(k, v)); ost_given = true; }
        else reject(k);
      }
      require(s.factor >= 1.0, "fault plan: slow factor must be >= 1");
      require(s.from >= 0 && s.from < s.to,
              "fault plan: slow window must satisfy 0 <= from < to");
      require(!ost_given || s.ost >= 0, "fault plan: slow ost must be >= 0");
      plan.slowdowns.push_back(s);
    } else if (kind == "vis") {
      VisibilitySpike s;
      for (const auto& [k, v] : kv) {
        if (k == "extra") s.extra = parse_duration(k, v);
        else if (k == "from") s.from = parse_duration(k, v);
        else if (k == "to") s.to = parse_duration(k, v);
        else reject(k);
      }
      require(s.extra >= 0, "fault plan: vis extra must be >= 0");
      require(s.from >= 0 && s.from < s.to,
              "fault plan: vis window must satisfy 0 <= from < to");
      plan.spikes.push_back(s);
    } else if (kind == "drop") {
      MpiDrop d;
      for (const auto& [k, v] : kv) {
        if (k == "p") d.probability = parse_double(k, v);
        else if (k == "timeout") d.retransmit = parse_duration(k, v);
        else reject(k);
      }
      require(d.probability >= 0.0 && d.probability <= 1.0,
              "fault plan: probability must be in [0, 1]");
      plan.drops.push_back(d);
    } else if (kind == "crash") {
      CrashEvent c;
      bool rank_given = false, node_given = false;
      for (const auto& [k, v] : kv) {
        if (k == "rank") { c.rank = static_cast<Rank>(parse_int(k, v)); rank_given = true; }
        else if (k == "node") { c.node = static_cast<int>(parse_int(k, v)); node_given = true; }
        else if (k == "t") c.t = parse_duration(k, v);
        else reject(k);
      }
      require(rank_given != node_given,
              "fault plan: crash needs exactly one of rank= or node=");
      require(!rank_given || c.rank >= 0,
              "fault plan: crash rank must be >= 0");
      require(!node_given || c.node >= 0,
              "fault plan: crash node must be >= 0");
      require(c.t >= 0, "fault plan: crash time must be >= 0");
      plan.crashes.push_back(c);
    } else if (kind == "crash_mds" || kind == "crash_ost") {
      ServerEvent e;
      e.kind = kind == "crash_mds" ? ServerKind::Mds : ServerKind::Ost;
      bool id_given = false;
      for (const auto& [k, v] : kv) {
        if (k == "id") { e.id = static_cast<int>(parse_int(k, v)); id_given = true; }
        else if (k == "t") e.t = parse_duration(k, v);
        else reject(k);
      }
      require(id_given, "fault plan: " + kind + " needs id=");
      require(e.id >= 0, "fault plan: " + kind + " id must be >= 0");
      require(e.t >= 0, "fault plan: " + kind + " time must be >= 0");
      plan.server_events.push_back(e);
    } else if (kind == "restart_server") {
      ServerEvent e;
      e.restart = true;
      bool mds_given = false, ost_given = false;
      for (const auto& [k, v] : kv) {
        if (k == "mds") { e.kind = ServerKind::Mds; e.id = static_cast<int>(parse_int(k, v)); mds_given = true; }
        else if (k == "ost") { e.kind = ServerKind::Ost; e.id = static_cast<int>(parse_int(k, v)); ost_given = true; }
        else if (k == "t") e.t = parse_duration(k, v);
        else reject(k);
      }
      require(mds_given != ost_given,
              "fault plan: restart_server needs exactly one of mds= or ost=");
      require(e.id >= 0, "fault plan: restart_server id must be >= 0");
      require(e.t >= 0, "fault plan: restart_server time must be >= 0");
      plan.server_events.push_back(e);
    } else if (kind == "partition") {
      Partition p;
      bool ranks_given = false;
      for (const auto& [k, v] : kv) {
        if (k == "ranks") {
          const std::size_t dash = v.find('-');
          require(dash != std::string::npos,
                  "fault plan: partition ranks must be LO-HI, got '" + v + "'");
          p.lo = static_cast<Rank>(parse_int(k, v.substr(0, dash)));
          p.hi = static_cast<Rank>(parse_int(k, v.substr(dash + 1)));
          ranks_given = true;
        } else if (k == "from") p.from = parse_duration(k, v);
        else if (k == "to") p.to = parse_duration(k, v);
        else reject(k);
      }
      require(ranks_given, "fault plan: partition needs ranks=LO-HI");
      require(p.lo >= 0 && p.lo <= p.hi,
              "fault plan: partition ranks must satisfy 0 <= LO <= HI");
      require(p.from >= 0 && p.from < p.to,
              "fault plan: partition window must satisfy 0 <= from < to");
      plan.partitions.push_back(p);
    } else {
      require(false, "fault plan: unknown clause kind '" + kind + "'");
    }
  }
  return plan;
}

void FaultPlan::validate_topology(int mds_count, int ost_count) const {
  for (const auto& e : server_events) {
    const int limit = e.kind == ServerKind::Mds ? mds_count : ost_count;
    if (limit <= 0) {
      require(false, "fault plan: server event '" + server_name(e.kind, e.id) +
                         "' needs a multi-server PfsCluster backend "
                         "(run with --mds/--ost)");
    }
    require(e.id < limit,
            "fault plan: server id " + std::to_string(e.id) +
                " out of range for " + std::to_string(limit) + " " +
                std::string(to_string(e.kind)) + " server(s)");
  }
}

}  // namespace pfsem::fault
