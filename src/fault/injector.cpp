#include "pfsem/fault/injector.hpp"

#include <algorithm>

#include "pfsem/util/error.hpp"

namespace pfsem::fault {

Injector::Injector(FaultPlan plan, std::uint64_t seed, int ranks_per_node)
    : plan_(std::move(plan)), rng_(seed), ranks_per_node_(ranks_per_node) {
  require(ranks_per_node_ >= 1, "Injector: ranks_per_node must be >= 1");
}

int Injector::on_op(OpClass c, Rank r, SimTime now) {
  for (const auto& t : plan_.transients) {
    if (!t.applies(c) || t.probability <= 0.0) continue;
    // One draw per matching rule, in plan order, keeps the stream
    // deterministic no matter which rule fires.
    if (!rng_.chance(t.probability)) continue;
    ++stats_.transient_faults;
    if (t.err == kEio) ++stats_.faults_eio;
    if (t.err == kEnospc) ++stats_.faults_enospc;
    if (obs_ != nullptr) {
      obs_->metrics.add(obs_->fault_transient);
      if (t.err == kEio) obs_->metrics.add(obs_->fault_eio);
      if (t.err == kEnospc) obs_->metrics.add(obs_->fault_enospc);
      if (obs_->tracing()) {
        obs_->tracer.instant({obs::kPidFault, r},
                             t.err == kEio      ? "transient EIO"
                             : t.err == kEnospc ? "transient ENOSPC"
                                                : "transient fault",
                             now, {"errno", t.err});
      }
    }
    return t.err;
  }
  return 0;
}

double Injector::transfer_factor(int ost, SimTime now) const {
  double factor = 1.0;
  for (const auto& s : plan_.slowdowns) {
    if (now < s.from || now >= s.to) continue;
    if (s.ost >= 0 && s.ost != ost) continue;
    factor = std::max(factor, s.factor);
  }
  return factor;
}

SimDuration Injector::visibility_extra(SimTime t_write) const {
  SimDuration extra = 0;
  for (const auto& s : plan_.spikes) {
    if (t_write < s.from || t_write >= s.to) continue;
    extra = std::max(extra, s.extra);
  }
  return extra;
}

SimDuration Injector::mpi_delay(Rank from, Rank to, SimTime now) {
  SimDuration delay = 0;
  for (const auto& d : plan_.drops) {
    if (d.probability <= 0.0) continue;
    if (!rng_.chance(d.probability)) continue;
    ++stats_.mpi_drops;
    delay += d.retransmit;
    if (obs_ != nullptr) {
      obs_->metrics.add(obs_->fault_mpi_drops);
      if (obs_->tracing()) {
        obs_->tracer.instant({obs::kPidFault, from}, "mpi drop", now,
                             {"to", to}, {"retransmit_ns", d.retransmit});
      }
    }
  }
  return delay;
}

std::vector<std::pair<Rank, SimTime>> Injector::crash_schedule(
    int nranks) const {
  std::vector<std::pair<Rank, SimTime>> out;
  for (const auto& c : plan_.crashes) {
    if (c.rank != kNoRank) {
      if (c.rank >= 0 && c.rank < nranks) out.emplace_back(c.rank, c.t);
    } else {
      const Rank first = static_cast<Rank>(c.node) * ranks_per_node_;
      for (Rank r = first; r < first + ranks_per_node_; ++r) {
        if (r >= 0 && r < nranks) out.emplace_back(r, c.t);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second < b.second : a.first < b.first;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const auto& a, const auto& b) {
                          return a.first == b.first;
                        }),
            out.end());
  return out;
}

std::vector<ServerEvent> Injector::server_schedule() const {
  std::vector<ServerEvent> out = plan_.server_events;
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.restart != b.restart) return !a.restart;  // crash before restart
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.id < b.id;
  });
  return out;
}

SimTime Injector::partition_defer(Rank writer, Rank reader,
                                  SimTime key) const {
  if (writer == reader || writer == kNoRank || reader == kNoRank) return key;
  SimTime deferred = key;
  for (const auto& p : plan_.partitions) {
    if (key < p.from || key >= p.to) continue;
    if (p.inside(writer) == p.inside(reader)) continue;
    deferred = std::max(deferred, p.to);
  }
  return deferred;
}

void Injector::note_server_crash(ServerKind kind, int id, SimTime now) {
  ++stats_.server_crashes;
  stats_.crashed_servers.push_back(server_name(kind, id));
  server_down_since_[{kind, id}] = now;
  if (obs_ != nullptr) {
    obs_->metrics.add(obs_->fault_server_crashes);
    if (obs_->tracing()) {
      obs_->tracer.instant({obs::kPidFault, id},
                           kind == ServerKind::Mds ? "mds crash" : "ost crash",
                           now);
    }
  }
}

void Injector::note_server_restart(ServerKind kind, int id, SimTime now) {
  ++stats_.server_restarts;
  const auto it = server_down_since_.find({kind, id});
  if (obs_ != nullptr) {
    obs_->metrics.add(obs_->fault_server_restarts);
    if (obs_->tracing()) {
      // The degraded-mode window as one span: crash instant -> restart.
      const SimTime since = it != server_down_since_.end() ? it->second : now;
      obs_->tracer.complete(
          {obs::kPidFault, id},
          kind == ServerKind::Mds ? "mds degraded" : "ost degraded", since,
          now - since);
    }
  }
  if (it != server_down_since_.end()) server_down_since_.erase(it);
}

void Injector::note_mds_failover(int shard, SimTime now) {
  ++stats_.mds_failovers;
  if (obs_ != nullptr) {
    obs_->metrics.add(obs_->fault_failovers);
    if (obs_->tracing()) {
      obs_->tracer.instant({obs::kPidFault, shard}, "mds failover", now);
    }
  }
}

void Injector::mark_crashed(Rank r, SimTime now) {
  if (!crashed_.insert(r).second) return;
  stats_.crashed_ranks.push_back(r);
  if (obs_ != nullptr) {
    obs_->metrics.add(obs_->fault_crashes);
    if (obs_->tracing()) {
      obs_->tracer.instant({obs::kPidFault, r}, "crash", now);
    }
  }
}

void Injector::note_lost_writes(const std::vector<std::uint64_t>& versions) {
  stats_.writes_lost += versions.size();
  stats_.lost_versions.insert(stats_.lost_versions.end(), versions.begin(),
                              versions.end());
  if (obs_ != nullptr) {
    obs_->metrics.add(obs_->fault_writes_lost, versions.size());
  }
}

}  // namespace pfsem::fault
