#include "pfsem/iolib/mpi_io.hpp"

#include <algorithm>
#include <limits>

#include "pfsem/util/error.hpp"
#include "pfsem/util/extent.hpp"

namespace pfsem::iolib {

/// Shared state of one collectively-opened file.
struct MpiFile {
  std::string path;       ///< display/open path; `file` is its interned id
  FileId file = kNoFile;
  mpi::Group group;
  std::vector<Rank> aggregators;
  std::map<Rank, int> fds;
  int open_count = 0;

  /// Staging for collective transfers: one generation per *per-rank* call
  /// index, so ranks at different speeds never mix up epochs. Only the
  /// hull of the contributions matters downstream, so it is folded in as
  /// ranks arrive — a per-rank rescan of all contributions would make
  /// every collective write O(group^2).
  struct Pending {
    Offset lo = std::numeric_limits<Offset>::max();
    Offset hi = 0;
    std::size_t done = 0;
  };
  std::map<std::uint64_t, Pending> pending;
  std::map<Rank, std::uint64_t> generation;
};

MpiIo::MpiIo(IoContext ctx, MpiIoOptions opt)
    : ctx_(ctx), opt_(opt), posix_(ctx, trace::Layer::MpiIo) {
  require(ctx_.valid(), "MpiIo needs a fully-wired IoContext");
  require(opt_.aggregators > 0, "need at least one aggregator");
}

MpiIo::~MpiIo() = default;

void MpiIo::emit(Rank r, trace::Func f, SimTime t0, Offset off,
                 std::uint64_t count, FileId file) {
  trace::Record rec;
  rec.tstart = t0;
  rec.tend = ctx_.engine->now();
  rec.rank = r;
  rec.layer = trace::Layer::MpiIo;
  rec.origin = opt_.origin;
  rec.func = f;
  rec.offset = off;
  rec.count = count;
  rec.file = file;
  ctx_.collector->emit(rec);
}

sim::Task<MpiFile*> MpiIo::open(Rank r, const std::string& path, int flags,
                                const mpi::Group& group) {
  const SimTime t0 = ctx_.engine->now();
  const FileId file = ctx_.collector->intern(path);
  auto& slot = handles_[file];
  if (!slot) {
    slot = std::make_unique<MpiFile>();
    slot->path = path;
    slot->file = file;
    slot->group = group;
    // Evenly-spaced aggregator ranks within the group (ROMIO default-ish).
    const int naggr = std::min<int>(opt_.aggregators,
                                    static_cast<int>(group.size()));
    for (int i = 0; i < naggr; ++i) {
      slot->aggregators.push_back(
          group[static_cast<std::size_t>(i) * group.size() / naggr]);
    }
  }
  MpiFile* fh = slot.get();
  // O(1) endpoint check: a full vector compare per joining rank would be
  // O(group^2) per open (groups are sorted, so ends pin the extremes).
  require(fh->group.size() == group.size() &&
              fh->group.front() == group.front() &&
              fh->group.back() == group.back(),
          "MPI_File_open group mismatch across ranks");
  ++fh->open_count;
  // ROMIO stats the file then every rank opens it.
  co_await posix_.stat(r, path);
  fh->fds[r] = co_await posix_.open(r, path, flags);
  co_await ctx_.world->barrier(r, group);
  emit(r, trace::Func::mpi_file_open, t0, 0, 0, file);
  co_return fh;
}

sim::Task<void> MpiIo::close(Rank r, MpiFile* fh) {
  const SimTime t0 = ctx_.engine->now();
  co_await ctx_.world->barrier(r, fh->group);
  co_await posix_.close(r, fh->fds.at(r));
  const FileId file = fh->file;
  emit(r, trace::Func::mpi_file_close, t0, 0, 0, file);
  if (--fh->open_count == 0) handles_.erase(file);
}

sim::Task<void> MpiIo::write_at(Rank r, MpiFile* fh, Offset off,
                                std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  co_await posix_.pwrite(r, fh->fds.at(r), off, count);
  emit(r, trace::Func::mpi_file_write_at, t0, off, count, fh->file);
}

sim::Task<void> MpiIo::read_at(Rank r, MpiFile* fh, Offset off,
                               std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  co_await posix_.pread(r, fh->fds.at(r), off, count);
  emit(r, trace::Func::mpi_file_read_at, t0, off, count, fh->file);
}

sim::Task<void> MpiIo::collective_transfer(Rank r, MpiFile* fh, Offset off,
                                           std::uint64_t count, bool is_write) {
  // Phase 1: exchange access ranges (modelled by the barrier's all-to-all
  // synchronization; contribution hulls are staged in the shared handle).
  const std::uint64_t gen = fh->generation[r]++;
  {
    auto& stage = fh->pending[gen];
    const Extent ext{off, off + count};
    if (!ext.empty()) {
      stage.lo = std::min(stage.lo, ext.begin);
      stage.hi = std::max(stage.hi, ext.end);
    }
  }
  co_await ctx_.world->barrier(r, fh->group);

  // Phase 2: aggregators access their contiguous file domain.
  auto& p = fh->pending.at(gen);
  const Offset lo = p.lo;
  const Offset hi = p.hi;
  const auto it = std::find(fh->aggregators.begin(), fh->aggregators.end(), r);
  if (it != fh->aggregators.end() && hi > lo) {
    const auto naggr = static_cast<Offset>(fh->aggregators.size());
    const auto idx = static_cast<Offset>(it - fh->aggregators.begin());
    const Offset span = hi - lo;
    const Offset chunk = (span + naggr - 1) / naggr;
    const Extent domain{lo + idx * chunk, std::min(hi, lo + (idx + 1) * chunk)};
    if (!domain.empty()) {
      // Shuffle: the aggregator collects (or distributes) its domain's data
      // from/to the group; charged as a network transfer delay. (A real
      // ROMIO uses point-to-point exchanges; the barriers above/below
      // already provide the happens-before structure they would add.)
      co_await ctx_.engine->delay(static_cast<SimDuration>(
          static_cast<double>(domain.size()) /
          ctx_.world->config().net_bytes_per_ns));
      if (is_write) {
        co_await posix_.pwrite(r, fh->fds.at(r), domain.begin, domain.size());
      } else {
        co_await posix_.pread(r, fh->fds.at(r), domain.begin, domain.size());
      }
    }
  }
  co_await ctx_.world->barrier(r, fh->group);
  if (++fh->pending.at(gen).done == fh->group.size()) fh->pending.erase(gen);
}

sim::Task<void> MpiIo::write_at_all(Rank r, MpiFile* fh, Offset off,
                                    std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  co_await collective_transfer(r, fh, off, count, /*is_write=*/true);
  emit(r, trace::Func::mpi_file_write_at_all, t0, off, count, fh->file);
}

sim::Task<void> MpiIo::read_at_all(Rank r, MpiFile* fh, Offset off,
                                   std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  co_await collective_transfer(r, fh, off, count, /*is_write=*/false);
  emit(r, trace::Func::mpi_file_read_at_all, t0, off, count, fh->file);
}

sim::Task<void> MpiIo::sync(Rank r, MpiFile* fh) {
  const SimTime t0 = ctx_.engine->now();
  co_await posix_.fsync(r, fh->fds.at(r));
  emit(r, trace::Func::mpi_file_sync, t0, 0, 0, fh->file);
}

sim::Task<void> MpiIo::set_size(Rank r, MpiFile* fh, Offset size) {
  const SimTime t0 = ctx_.engine->now();
  co_await posix_.ftruncate(r, fh->fds.at(r), size);
  emit(r, trace::Func::mpi_file_set_size, t0, 0, size, fh->file);
}

}  // namespace pfsem::iolib
