#include "pfsem/iolib/silo_lite.hpp"

#include <algorithm>

#include "pfsem/util/error.hpp"

namespace pfsem::iolib {

namespace {
constexpr Extent kToc{0, 1024};       // PDB symbol table at the file head
constexpr Offset kDataStart = 1024;
constexpr int kBatonTag = 7001;
}  // namespace

SiloLite::SiloLite(IoContext ctx) : ctx_(ctx), posix_(ctx, trace::Layer::Silo) {
  require(ctx_.valid(), "SiloLite needs a fully-wired IoContext");
}

SiloLite::~SiloLite() = default;

void SiloLite::emit(Rank r, trace::Func func, SimTime t0, std::uint64_t count,
                    FileId file) {
  trace::Record rec;
  rec.tstart = t0;
  rec.tend = ctx_.engine->now();
  rec.rank = r;
  rec.layer = trace::Layer::Silo;
  rec.origin = trace::Layer::App;
  rec.func = func;
  rec.count = count;
  rec.file = file;
  ctx_.collector->emit(rec);
}

sim::Task<void> SiloLite::write_group_file(Rank r, const std::string& path,
                                           const mpi::Group& group,
                                           std::uint64_t bytes, int dump_index) {
  const auto pos_it = std::find(group.begin(), group.end(), r);
  require(pos_it != group.end(), "rank not in silo group");
  const auto pos = static_cast<std::size_t>(pos_it - group.begin());

  // Wait for the baton from the previous rank in the group.
  if (pos > 0) {
    (void)co_await ctx_.world->recv(r, group[pos - 1], kBatonTag + dump_index);
  }

  const SimTime t0 = ctx_.engine->now();
  const bool creating = pos == 0;
  const FileId file = ctx_.collector->intern(path);
  co_await posix_.access(r, path);
  const int fd = co_await posix_.open(
      r, path, creating ? (trace::kCreate | trace::kTrunc | trace::kRdWr)
                        : trace::kRdWr);
  if (creating) {
    emit(r, trace::Func::db_create, t0, 0, file);
  } else {
    emit(r, trace::Func::db_open, t0, 0, file);
    // Read the existing TOC to find where to append.
    co_await posix_.pread(r, fd, kToc.begin, kToc.size());
  }
  // Append this rank's domain block after the blocks written so far. Each
  // slot carries PDB bookkeeping padding, so blocks are strided rather
  // than densely tiled (MACSio's N-M strided class in Table 3). The block
  // streams out in several sequential chunks, like PDB buffered writes.
  constexpr Offset kBlockPad = 4096;
  constexpr Offset kChunks = 8;
  const Offset block_off =
      kDataStart + static_cast<Offset>(pos) * (bytes + kBlockPad);
  const SimTime tw0 = ctx_.engine->now();
  const Offset chunk = std::max<Offset>(1, bytes / kChunks);
  for (Offset done = 0; done < bytes;) {
    const Offset n = std::min(chunk, bytes - done);
    co_await posix_.pwrite(r, fd, block_off + done, n);
    done += n;
  }
  emit(r, trace::Func::db_put_quadvar, tw0, bytes, file);
  // Update the TOC twice (directory entry, then variable entry) with no
  // commit in between -> the MACSio WAW-S signature.
  const SimTime tt0 = ctx_.engine->now();
  co_await posix_.pwrite(r, fd, kToc.begin, kToc.size());
  emit(r, trace::Func::db_mkdir, tt0, kToc.size(), file);
  const SimTime tt1 = ctx_.engine->now();
  co_await posix_.pwrite(r, fd, kToc.begin, kToc.size());
  emit(r, trace::Func::db_set_dir, tt1, kToc.size(), file);
  // Close before passing the baton: the close->open pair is what clears
  // the cross-rank TOC conflict under session semantics.
  co_await posix_.close(r, fd);
  emit(r, trace::Func::db_close, tt1, 0, file);

  if (pos + 1 < group.size()) {
    co_await ctx_.world->send(r, group[pos + 1], kBatonTag + dump_index, 8);
  }
}

}  // namespace pfsem::iolib
