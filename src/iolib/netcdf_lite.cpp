#include "pfsem/iolib/netcdf_lite.hpp"

#include "pfsem/util/error.hpp"

namespace pfsem::iolib {

namespace {
constexpr Offset kHeaderSize = 8192;     // classic header block
constexpr Extent kNumrecs{4, 8};         // record-count field inside it
}  // namespace

struct NcFile {
  std::string path;       ///< display/open path; `file` is its interned id
  FileId file = kNoFile;
  int fd = -1;
  int nvars = 0;
  Offset data_end = kHeaderSize;
  bool defined = false;
};

NetCdfLite::NetCdfLite(IoContext ctx)
    : ctx_(ctx), posix_(ctx, trace::Layer::NetCdf) {
  require(ctx_.valid(), "NetCdfLite needs a fully-wired IoContext");
}

NetCdfLite::~NetCdfLite() = default;

void NetCdfLite::emit(Rank r, trace::Func func, SimTime t0, std::uint64_t count,
                      FileId file) {
  trace::Record rec;
  rec.tstart = t0;
  rec.tend = ctx_.engine->now();
  rec.rank = r;
  rec.layer = trace::Layer::NetCdf;
  rec.origin = trace::Layer::App;
  rec.func = func;
  rec.count = count;
  rec.file = file;
  ctx_.collector->emit(rec);
}

sim::Task<NcFile*> NetCdfLite::create(Rank r, const std::string& path) {
  const SimTime t0 = ctx_.engine->now();
  // netcdf resolves the path and probes for an existing file.
  co_await posix_.getcwd(r);
  co_await posix_.access(r, path);
  auto f = std::make_unique<NcFile>();
  f->path = path;
  f->file = ctx_.collector->intern(path);
  f->fd = co_await posix_.open(r, path, trace::kCreate | trace::kTrunc | trace::kRdWr);
  NcFile* out = f.get();
  files_.push_back(std::move(f));
  emit(r, trace::Func::nc_create, t0, 0, out->file);
  co_return out;
}

sim::Task<void> NetCdfLite::def_var(Rank r, NcFile* f, const std::string& name) {
  const SimTime t0 = ctx_.engine->now();
  ++f->nvars;
  co_await ctx_.engine->delay(200);
  emit(r, trace::Func::nc_def_var, t0, 0,
       ctx_.collector->intern(f->path + ":" + name));
}

sim::Task<void> NetCdfLite::enddef(Rank r, NcFile* f) {
  const SimTime t0 = ctx_.engine->now();
  require(!f->defined, "enddef called twice");
  f->defined = true;
  co_await posix_.pwrite(r, f->fd, 0, kHeaderSize);
  emit(r, trace::Func::nc_enddef, t0, kHeaderSize, f->file);
}

sim::Task<void> NetCdfLite::put_record(Rank r, NcFile* f, std::uint64_t bytes) {
  const SimTime t0 = ctx_.engine->now();
  require(f->defined, "put_record before enddef");
  // Record data streams out in buffered chunks (one per variable slab).
  const std::uint64_t chunk = std::max<std::uint64_t>(bytes / 8, 1);
  for (std::uint64_t done = 0; done < bytes;) {
    const std::uint64_t n = std::min(chunk, bytes - done);
    co_await posix_.pwrite(r, f->fd, f->data_end + done, n);
    done += n;
  }
  f->data_end += bytes;
  // In-place numrecs update: overlaps the enddef header write and every
  // previous update, with no commit in between -> WAW-S under session
  // *and* commit semantics, exactly the LAMMPS-NetCDF signature.
  co_await posix_.pwrite(r, f->fd, kNumrecs.begin, kNumrecs.size());
  emit(r, trace::Func::nc_put_vara, t0, bytes, f->file);
}

sim::Task<void> NetCdfLite::close(Rank r, NcFile* f) {
  const SimTime t0 = ctx_.engine->now();
  co_await posix_.close(r, f->fd);
  emit(r, trace::Func::nc_close, t0, 0, f->file);
}

}  // namespace pfsem::iolib
