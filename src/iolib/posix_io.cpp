#include "pfsem/iolib/posix_io.hpp"

#include "pfsem/util/error.hpp"

namespace pfsem::iolib {

PosixIo::PosixIo(IoContext ctx, trace::Layer origin)
    : ctx_(ctx), origin_(origin) {
  require(ctx_.valid(), "PosixIo needs a fully-wired IoContext");
}

void PosixIo::emit(Rank r, trace::Func f, SimTime t0, SimTime t1, int fd,
                   std::int64_t ret, Offset off, std::uint64_t count, int flags,
                   std::string path) {
  trace::Record rec;
  rec.tstart = t0;
  rec.tend = t1;
  rec.rank = r;
  rec.layer = trace::Layer::Posix;
  rec.origin = origin_;
  rec.func = f;
  rec.fd = fd;
  rec.ret = ret;
  rec.offset = off;
  rec.count = count;
  rec.flags = flags;
  rec.path = std::move(path);
  ctx_.collector->emit(std::move(rec));
}

const std::string& PosixIo::path_of(Rank r, int fd) const {
  auto it = fd_paths_.find({r, fd});
  require(it != fd_paths_.end(), "path_of: unknown fd");
  return it->second;
}

sim::Task<int> PosixIo::open(Rank r, std::string path, int flags) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->open(r, path, flags, t0);
  require(res.fd >= 0, "simulated open failed: " + path);
  co_await ctx_.engine->delay(res.cost);
  fd_paths_[{r, res.fd}] = path;
  emit(r, trace::Func::open, t0, ctx_.engine->now(), res.fd, res.fd, 0, 0,
       flags, std::move(path));
  co_return res.fd;
}

sim::Task<void> PosixIo::close(Rank r, int fd) {
  const SimTime t0 = ctx_.engine->now();
  std::string path = path_of(r, fd);
  auto res = ctx_.pfs->close(r, fd, t0);
  co_await ctx_.engine->delay(res.cost);
  fd_paths_.erase({r, fd});
  emit(r, trace::Func::close, t0, ctx_.engine->now(), fd, res.ret, 0, 0, 0,
       std::move(path));
}

sim::Task<std::uint64_t> PosixIo::write(Rank r, int fd, std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->write(r, fd, count, t0);
  co_await ctx_.engine->delay(res.cost);
  // res.offset is ground truth for validating offset reconstruction only.
  emit(r, trace::Func::write, t0, ctx_.engine->now(), fd,
       static_cast<std::int64_t>(count), res.offset, count, 0, path_of(r, fd));
  co_return count;
}

sim::Task<std::uint64_t> PosixIo::read(Rank r, int fd, std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->read(r, fd, count, t0);
  co_await ctx_.engine->delay(res.cost);
  last_read_ = res.extents;
  emit(r, trace::Func::read, t0, ctx_.engine->now(), fd,
       static_cast<std::int64_t>(res.bytes), res.offset, count, 0,
       path_of(r, fd));
  co_return res.bytes;
}

sim::Task<std::uint64_t> PosixIo::pwrite(Rank r, int fd, Offset off,
                                         std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->pwrite(r, fd, off, count, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::pwrite, t0, ctx_.engine->now(), fd,
       static_cast<std::int64_t>(count), off, count, 0, path_of(r, fd));
  co_return count;
}

sim::Task<std::uint64_t> PosixIo::pread(Rank r, int fd, Offset off,
                                        std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->pread(r, fd, off, count, t0);
  co_await ctx_.engine->delay(res.cost);
  last_read_ = res.extents;
  emit(r, trace::Func::pread, t0, ctx_.engine->now(), fd,
       static_cast<std::int64_t>(res.bytes), off, count, 0, path_of(r, fd));
  co_return res.bytes;
}

sim::Task<std::int64_t> PosixIo::lseek(Rank r, int fd, std::int64_t offset,
                                       int whence) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->lseek(r, fd, offset, whence, t0);
  require(res.ret >= 0, "simulated lseek failed");
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::lseek, t0, ctx_.engine->now(), fd, res.ret,
       static_cast<Offset>(offset), 0, whence, path_of(r, fd));
  co_return res.ret;
}

sim::Task<void> PosixIo::fsync(Rank r, int fd) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->fsync(r, fd, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::fsync, t0, ctx_.engine->now(), fd, res.ret, 0, 0, 0,
       path_of(r, fd));
}

sim::Task<void> PosixIo::fdatasync(Rank r, int fd) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->fsync(r, fd, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::fdatasync, t0, ctx_.engine->now(), fd, res.ret, 0, 0, 0,
       path_of(r, fd));
}

sim::Task<void> PosixIo::ftruncate(Rank r, int fd, Offset length) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->ftruncate(r, fd, length, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::ftruncate, t0, ctx_.engine->now(), fd, res.ret, length,
       0, 0, path_of(r, fd));
}

sim::Task<void> PosixIo::meta_call(Rank r, trace::Func f, std::string path,
                                   SimDuration cost, std::int64_t ret) {
  const SimTime t0 = ctx_.engine->now();
  co_await ctx_.engine->delay(cost);
  emit(r, f, t0, ctx_.engine->now(), -1, ret, 0, 0, 0, std::move(path));
}

sim::Task<std::int64_t> PosixIo::stat(Rank r, std::string path) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->stat(path, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::stat, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       std::move(path));
  co_return res.ret;
}

sim::Task<std::int64_t> PosixIo::lstat(Rank r, std::string path) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->stat(path, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::lstat, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       std::move(path));
  co_return res.ret;
}

sim::Task<std::int64_t> PosixIo::fstat(Rank r, int fd) {
  const SimTime t0 = ctx_.engine->now();
  std::string path = path_of(r, fd);
  auto res = ctx_.pfs->stat(path, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::fstat, t0, ctx_.engine->now(), fd, res.ret, 0, 0, 0,
       std::move(path));
  co_return res.ret;
}

sim::Task<std::int64_t> PosixIo::access(Rank r, std::string path) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->access(path, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::access, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       std::move(path));
  co_return res.ret;
}

sim::Task<void> PosixIo::unlink(Rank r, std::string path) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->unlink(path, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::unlink, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       std::move(path));
}

sim::Task<void> PosixIo::mkdir(Rank r, std::string path) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->mkdir(path, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::mkdir, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       std::move(path));
}

sim::Task<void> PosixIo::rename(Rank r, std::string from, std::string to) {
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->rename(from, to, t0);
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::rename, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       from + " -> " + to);
}

sim::Task<void> PosixIo::getcwd(Rank r) {
  return meta_call(r, trace::Func::getcwd, "", 100, 0);
}
sim::Task<void> PosixIo::umask(Rank r) {
  return meta_call(r, trace::Func::umask, "", 100, 0);
}
sim::Task<void> PosixIo::fcntl(Rank r, int fd) {
  return meta_call(r, trace::Func::fcntl, path_of(r, fd), 200, 0);
}
sim::Task<void> PosixIo::dup(Rank r, int fd) {
  return meta_call(r, trace::Func::dup, path_of(r, fd), 200, 0);
}
sim::Task<void> PosixIo::readdir(Rank r, std::string path) {
  return meta_call(r, trace::Func::readdir, std::move(path),
                   ctx_.pfs->meta_latency(), 0);
}

}  // namespace pfsem::iolib
