#include "pfsem/iolib/posix_io.hpp"

#include <string>

#include "pfsem/fault/injector.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::iolib {

namespace {

/// Fail-stop boundary check shared by every façade entry point.
void check_crash(const IoContext& ctx, Rank r) {
  if (ctx.injector != nullptr && ctx.injector->crashed(r)) {
    throw sim::TaskKilled(r);
  }
}

/// Issue `op` (a callable taking the current simulated time and returning
/// a vfs result struct), awaiting its cost; while the result carries a
/// retryable simulated errno, back off in simulated time and re-issue.
/// Exhausting the budget — or a non-retryable errno such as EROFS from a
/// laminated file — throws pfsem::Error; the degraded-mode stats count it
/// as a give-up. Retries are invisible to callers: the returned result is
/// the first successful attempt's.
template <class Op>
auto with_retry(IoContext& ctx, Rank r, Op op)
    -> sim::Task<decltype(op(SimTime{}))> {
  check_crash(ctx, r);
  auto res = op(ctx.engine->now());
  co_await ctx.engine->delay(res.cost);
  int failovers = 0;
  for (int attempt = 1; res.err != 0;) {
    // Server failover is its own budget: EHOSTDOWN means a dead server,
    // and the redirect (after detection + reconnect time) lands on the
    // standby the cluster promoted. Exhausting it — no replica remains —
    // is a loud permanent failure, like any other give-up.
    if (ctx.retry.is_failover(res.err)) {
      if (failovers >= ctx.retry.failover_attempts) {
        if (ctx.injector != nullptr) ctx.injector->note_giveup();
        if (ctx.obs != nullptr && ctx.obs->tracing()) {
          ctx.obs->tracer.instant({obs::kPidIo, r}, "failover give-up",
                                  ctx.engine->now(), {"errno", res.err},
                                  {"redirects", failovers});
        }
        throw Error("simulated I/O failed permanently: no server replica "
                    "remains after " +
                    std::to_string(failovers) +
                    " failover redirect(s): " + fault::errno_name(res.err));
      }
      ++failovers;
      if (ctx.injector != nullptr) ctx.injector->note_failover_redirect();
      if (ctx.obs != nullptr && ctx.obs->tracing()) {
        ctx.obs->tracer.instant({obs::kPidIo, r}, "failover redirect",
                                ctx.engine->now(), {"errno", res.err},
                                {"redirect", failovers});
      }
      co_await ctx.engine->delay(ctx.retry.failover_backoff);
      check_crash(ctx, r);
      res = op(ctx.engine->now());
      co_await ctx.engine->delay(res.cost);
      continue;
    }
    if (!ctx.retry.is_retryable(res.err) ||
        attempt >= ctx.retry.max_attempts) {
      if (ctx.injector != nullptr) ctx.injector->note_giveup();
      if (ctx.obs != nullptr && ctx.obs->tracing()) {
        ctx.obs->tracer.instant({obs::kPidIo, r}, "retry give-up",
                                ctx.engine->now(), {"errno", res.err},
                                {"attempts", attempt});
      }
      throw Error("simulated I/O failed permanently after " +
                  std::to_string(attempt) +
                  " attempt(s): " + fault::errno_name(res.err));
    }
    if (ctx.injector != nullptr) ctx.injector->note_retry();
    if (ctx.obs != nullptr && ctx.obs->tracing()) {
      ctx.obs->tracer.instant({obs::kPidIo, r}, "retry", ctx.engine->now(),
                              {"errno", res.err}, {"attempt", attempt});
    }
    co_await ctx.engine->delay(ctx.retry.backoff_for(attempt));
    check_crash(ctx, r);
    res = op(ctx.engine->now());
    co_await ctx.engine->delay(res.cost);
    ++attempt;
  }
  co_return res;
}

}  // namespace

PosixIo::PosixIo(IoContext ctx, trace::Layer origin)
    : ctx_(ctx), origin_(origin) {
  require(ctx_.valid(), "PosixIo needs a fully-wired IoContext");
}

void PosixIo::check_alive(Rank r) const { check_crash(ctx_, r); }

void PosixIo::emit(Rank r, trace::Func f, SimTime t0, SimTime t1, int fd,
                   std::int64_t ret, Offset off, std::uint64_t count, int flags,
                   FileId file) {
  trace::Record rec;
  rec.tstart = t0;
  rec.tend = t1;
  rec.rank = r;
  rec.layer = trace::Layer::Posix;
  rec.origin = origin_;
  rec.func = f;
  rec.fd = fd;
  rec.ret = ret;
  rec.offset = off;
  rec.count = count;
  rec.flags = flags;
  rec.file = file;
  ctx_.collector->emit(rec);
}

FileId PosixIo::file_of(Rank r, int fd) const {
  auto it = fd_files_.find({r, fd});
  require(it != fd_files_.end(), "file_of: unknown fd");
  return it->second;
}

sim::Task<int> PosixIo::open(Rank r, std::string path, int flags) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->open(r, path, flags, now);
  });
  require(res.fd >= 0, "simulated open failed: " + path);
  // Paths are interned once at open; every later record on this fd
  // carries the id.
  const FileId file = ctx_.collector->intern(path);
  fd_files_[{r, res.fd}] = file;
  emit(r, trace::Func::open, t0, ctx_.engine->now(), res.fd, res.fd, 0, 0,
       flags, file);
  co_return res.fd;
}

sim::Task<void> PosixIo::close(Rank r, int fd) {
  check_alive(r);
  const SimTime t0 = ctx_.engine->now();
  const FileId file = file_of(r, fd);
  auto res = ctx_.pfs->close(r, fd, t0);
  co_await ctx_.engine->delay(res.cost);
  fd_files_.erase({r, fd});
  emit(r, trace::Func::close, t0, ctx_.engine->now(), fd, res.ret, 0, 0, 0,
       file);
}

sim::Task<std::uint64_t> PosixIo::write(Rank r, int fd, std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->write(r, fd, count, now);
  });
  // res.offset is ground truth for validating offset reconstruction only.
  emit(r, trace::Func::write, t0, ctx_.engine->now(), fd,
       static_cast<std::int64_t>(count), res.offset, count, 0, file_of(r, fd));
  co_return count;
}

sim::Task<std::uint64_t> PosixIo::read(Rank r, int fd, std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->read(r, fd, count, now);
  });
  last_read_ = res.extents;
  emit(r, trace::Func::read, t0, ctx_.engine->now(), fd,
       static_cast<std::int64_t>(res.bytes), res.offset, count, 0,
       file_of(r, fd));
  co_return res.bytes;
}

sim::Task<std::uint64_t> PosixIo::pwrite(Rank r, int fd, Offset off,
                                         std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->pwrite(r, fd, off, count, now);
  });
  (void)res;
  emit(r, trace::Func::pwrite, t0, ctx_.engine->now(), fd,
       static_cast<std::int64_t>(count), off, count, 0, file_of(r, fd));
  co_return count;
}

sim::Task<std::uint64_t> PosixIo::pread(Rank r, int fd, Offset off,
                                        std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->pread(r, fd, off, count, now);
  });
  last_read_ = res.extents;
  emit(r, trace::Func::pread, t0, ctx_.engine->now(), fd,
       static_cast<std::int64_t>(res.bytes), off, count, 0, file_of(r, fd));
  co_return res.bytes;
}

sim::Task<std::int64_t> PosixIo::lseek(Rank r, int fd, std::int64_t offset,
                                       int whence) {
  check_alive(r);
  const SimTime t0 = ctx_.engine->now();
  auto res = ctx_.pfs->lseek(r, fd, offset, whence, t0);
  require(res.ret >= 0, "simulated lseek failed");
  co_await ctx_.engine->delay(res.cost);
  emit(r, trace::Func::lseek, t0, ctx_.engine->now(), fd, res.ret,
       static_cast<Offset>(offset), 0, whence, file_of(r, fd));
  co_return res.ret;
}

sim::Task<void> PosixIo::fsync(Rank r, int fd) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->fsync(r, fd, now);
  });
  emit(r, trace::Func::fsync, t0, ctx_.engine->now(), fd, res.ret, 0, 0, 0,
       file_of(r, fd));
}

sim::Task<void> PosixIo::fdatasync(Rank r, int fd) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->fsync(r, fd, now);
  });
  emit(r, trace::Func::fdatasync, t0, ctx_.engine->now(), fd, res.ret, 0, 0, 0,
       file_of(r, fd));
}

sim::Task<void> PosixIo::ftruncate(Rank r, int fd, Offset length) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->ftruncate(r, fd, length, now);
  });
  emit(r, trace::Func::ftruncate, t0, ctx_.engine->now(), fd, res.ret, length,
       0, 0, file_of(r, fd));
}

sim::Task<void> PosixIo::meta_call(Rank r, trace::Func f, FileId file,
                                   SimDuration cost, std::int64_t ret) {
  check_alive(r);
  const SimTime t0 = ctx_.engine->now();
  co_await ctx_.engine->delay(cost);
  emit(r, f, t0, ctx_.engine->now(), -1, ret, 0, 0, 0, file);
}

sim::Task<std::int64_t> PosixIo::stat(Rank r, std::string path) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->stat(path, now);
  });
  emit(r, trace::Func::stat, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       ctx_.collector->intern(path));
  co_return res.ret;
}

sim::Task<std::int64_t> PosixIo::lstat(Rank r, std::string path) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->stat(path, now);
  });
  emit(r, trace::Func::lstat, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       ctx_.collector->intern(path));
  co_return res.ret;
}

sim::Task<std::int64_t> PosixIo::fstat(Rank r, int fd) {
  const SimTime t0 = ctx_.engine->now();
  const FileId file = file_of(r, fd);
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->stat(std::string(ctx_.collector->path_view(file)), now);
  });
  emit(r, trace::Func::fstat, t0, ctx_.engine->now(), fd, res.ret, 0, 0, 0,
       file);
  co_return res.ret;
}

sim::Task<std::int64_t> PosixIo::access(Rank r, std::string path) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->access(path, now);
  });
  emit(r, trace::Func::access, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       ctx_.collector->intern(path));
  co_return res.ret;
}

sim::Task<std::int64_t> PosixIo::unlink(Rank r, std::string path) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->unlink(path, now);
  });
  emit(r, trace::Func::unlink, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       ctx_.collector->intern(path));
  co_return res.ret;
}

sim::Task<std::int64_t> PosixIo::mkdir(Rank r, std::string path) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->mkdir(path, now);
  });
  emit(r, trace::Func::mkdir, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       ctx_.collector->intern(path));
  co_return res.ret;
}

sim::Task<std::int64_t> PosixIo::rename(Rank r, std::string from,
                                        std::string to) {
  const SimTime t0 = ctx_.engine->now();
  auto res = co_await with_retry(ctx_, r, [&](SimTime now) {
    return ctx_.pfs->rename(from, to, now);
  });
  // The record carries the source path's id; on success the destination
  // name aliases that id so the file keeps one dense slot across the
  // rename. A failed rename touches no namespace, so no alias.
  const FileId file = res.ret == 0 ? ctx_.collector->intern_rename(from, to)
                                   : ctx_.collector->intern(from);
  emit(r, trace::Func::rename, t0, ctx_.engine->now(), -1, res.ret, 0, 0, 0,
       file);
  co_return res.ret;
}

sim::Task<void> PosixIo::getcwd(Rank r) {
  return meta_call(r, trace::Func::getcwd, kNoFile, 100, 0);
}
sim::Task<void> PosixIo::umask(Rank r) {
  return meta_call(r, trace::Func::umask, kNoFile, 100, 0);
}
sim::Task<void> PosixIo::fcntl(Rank r, int fd) {
  return meta_call(r, trace::Func::fcntl, file_of(r, fd), 200, 0);
}
sim::Task<void> PosixIo::dup(Rank r, int fd) {
  return meta_call(r, trace::Func::dup, file_of(r, fd), 200, 0);
}
sim::Task<void> PosixIo::readdir(Rank r, std::string path) {
  return meta_call(r, trace::Func::readdir, ctx_.collector->intern(path),
                   ctx_.pfs->meta_latency(), 0);
}

}  // namespace pfsem::iolib
