#include "pfsem/iolib/hdf5_lite.hpp"

#include <algorithm>

#include "pfsem/util/error.hpp"

namespace pfsem::iolib {

namespace {
// On-disk layout constants of the modelled HDF5 format.
constexpr Extent kSuperblock{0, 96};
constexpr Offset kSymtabBase = 96;       // symbol-table node after superblock
constexpr Offset kSymtabEntry = 64;      // bytes per dataset entry
constexpr Offset kObjHeader = 512;       // object header block size
constexpr Offset kDataStart = 4192;      // first allocatable byte
constexpr Offset kAlign = 512;

constexpr Offset align_up(Offset x) { return (x + kAlign - 1) / kAlign * kAlign; }
}  // namespace

/// Shared state of one HDF5 file (one instance per path, shared by the
/// group's rank coroutines like a real collectively-opened file handle).
struct H5File {
  std::string path;       ///< display/open path; `file` is its interned id
  FileId file = kNoFile;
  mpi::Group group;
  std::vector<Rank> meta_writers;
  std::map<Rank, int> fds;    // independent (sec2) data path
  MpiFile* mfile = nullptr;   // collective (mpio) data path
  Offset eoa = kDataStart;
  std::uint64_t nobjects = 0;
  std::map<Rank, std::uint64_t> flush_gen;
  /// Dataset extents plus the interned id of the composite
  /// "<file>/<dataset>" trace path, assigned once at dataset_create.
  struct Dataset {
    Extent ext;
    FileId id = kNoFile;
  };
  std::map<std::string, Dataset> datasets;
  int open_count = 0;
};

Hdf5Lite::Hdf5Lite(IoContext ctx, H5Options opt)
    : ctx_(ctx),
      opt_(opt),
      posix_(ctx, trace::Layer::Hdf5),
      mpiio_(ctx, MpiIoOptions{opt.aggregators, trace::Layer::Hdf5}) {
  require(ctx_.valid(), "Hdf5Lite needs a fully-wired IoContext");
  require(opt_.metadata_writers > 0, "need at least one metadata writer");
}

Hdf5Lite::~Hdf5Lite() = default;

void Hdf5Lite::emit(Rank r, trace::Func func, SimTime t0, std::uint64_t count,
                    FileId file) {
  trace::Record rec;
  rec.tstart = t0;
  rec.tend = ctx_.engine->now();
  rec.rank = r;
  rec.layer = trace::Layer::Hdf5;
  rec.origin = trace::Layer::App;
  rec.func = func;
  rec.count = count;
  rec.file = file;
  ctx_.collector->emit(rec);
}

Rank Hdf5Lite::metadata_owner(const H5File& f, std::uint64_t object_index) const {
  if (opt_.collective_metadata) return f.group.front();
  return f.meta_writers[object_index % f.meta_writers.size()];
}

sim::Task<H5File*> Hdf5Lite::create(Rank r, const std::string& path,
                                    const mpi::Group& group) {
  const SimTime t0 = ctx_.engine->now();
  const FileId file = ctx_.collector->intern(path);
  auto& slot = handles_[file];
  if (!slot) {
    slot = std::make_unique<H5File>();
    slot->path = path;
    slot->file = file;
    slot->group = group;
    // Rotating metadata-writer subset: evenly spaced ranks of the group.
    const auto nw = std::min<std::size_t>(
        static_cast<std::size_t>(opt_.metadata_writers), group.size());
    for (std::size_t i = 0; i < nw; ++i) {
      slot->meta_writers.push_back(group[i * group.size() / nw]);
    }
  }
  H5File* f = slot.get();
  // O(1) endpoint check; a full compare per joining rank is O(group^2).
  require(f->group.size() == group.size() &&
              f->group.front() == group.front() &&
              f->group.back() == group.back(),
          "H5Fcreate group mismatch across ranks");
  ++f->open_count;
  // HDF5 existence probe before creating.
  co_await posix_.lstat(r, path);
  if (opt_.collective_data && group.size() > 1) {
    if (!f->mfile) {
      f->mfile = co_await mpiio_.open(
          r, path, trace::kCreate | trace::kTrunc | trace::kRdWr, group);
    } else {
      co_await mpiio_.open(r, path, trace::kCreate | trace::kTrunc | trace::kRdWr,
                           group);
    }
  } else {
    f->fds[r] =
        co_await posix_.open(r, path, trace::kCreate | trace::kRdWr);
    if (group.size() > 1) co_await ctx_.world->barrier(r, group);
  }
  emit(r, trace::Func::h5fcreate, t0, 0, file);
  co_return f;
}

sim::Task<void> Hdf5Lite::dataset_create(Rank r, H5File* f,
                                         const std::string& name,
                                         std::uint64_t total_bytes) {
  const SimTime t0 = ctx_.engine->now();
  // Deterministic shared-state update: only the first arriving rank
  // allocates; the object index is fixed before anyone writes.
  std::uint64_t index;
  if (auto it = f->datasets.find(name); it == f->datasets.end()) {
    index = f->nobjects++;
    const Offset hdr = f->eoa;
    const Offset base = hdr + kObjHeader;
    f->datasets[name] = {Extent{base, base + total_bytes},
                         ctx_.collector->intern(f->path + "/" + name)};
    f->eoa = align_up(base + total_bytes);
  } else {
    index = f->nobjects - 1;  // co-arrivals of the same create
  }
  // Metadata for one object is spread over several cache entries, each
  // flushed by a different owning rank (symbol-table node, object header,
  // header continuation) — this is why the paper observes ~30 of 64 ranks
  // performing small metadata writes (Figure 2a/2c). The pieces are
  // disjoint, so distributed ownership adds no conflicts.
  const Rank entry_owner = metadata_owner(*f, 3 * index);
  const Rank header_owner = metadata_owner(*f, 3 * index + 1);
  const Rank cont_owner = metadata_owner(*f, 3 * index + 2);
  const auto& ds = f->datasets.at(name).ext;
  const Offset hdr = ds.begin - kObjHeader;
  if (r == entry_owner) {
    // ENZO-style symbol-table readback: scan the node before extending it.
    if (opt_.metadata_readback && index > 0) {
      const Offset node_len = kSymtabEntry * index;
      if (f->mfile) {
        co_await mpiio_.read_at(r, f->mfile, kSymtabBase, node_len);
      } else {
        co_await posix_.pread(r, f->fds.at(r), kSymtabBase, node_len);
      }
    }
    const Offset entry_off = kSymtabBase + kSymtabEntry * index;
    if (f->mfile) {
      co_await mpiio_.write_at(r, f->mfile, entry_off, kSymtabEntry);
    } else {
      co_await posix_.pwrite(r, f->fds.at(r), entry_off, kSymtabEntry);
    }
  }
  if (r == header_owner) {
    if (f->mfile) {
      co_await mpiio_.write_at(r, f->mfile, hdr, kObjHeader / 2);
    } else {
      co_await posix_.pwrite(r, f->fds.at(r), hdr, kObjHeader / 2);
    }
  }
  if (r == cont_owner) {
    if (f->mfile) {
      co_await mpiio_.write_at(r, f->mfile, hdr + kObjHeader / 2, kObjHeader / 2);
    } else {
      co_await posix_.pwrite(r, f->fds.at(r), hdr + kObjHeader / 2,
                             kObjHeader / 2);
    }
  }
  if (f->group.size() > 1) co_await ctx_.world->barrier(r, f->group);
  emit(r, trace::Func::h5dcreate, t0, total_bytes, f->datasets.at(name).id);
}

sim::Task<void> Hdf5Lite::dataset_write(Rank r, H5File* f,
                                        const std::string& name, Offset rel_off,
                                        std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  const auto& [ds, ds_id] = f->datasets.at(name);
  require(ds.begin + rel_off + count <= ds.end, "hyperslab out of bounds");
  if (f->mfile) {
    co_await mpiio_.write_at_all(r, f->mfile, ds.begin + rel_off, count);
  } else {
    co_await posix_.pwrite(r, f->fds.at(r), ds.begin + rel_off, count);
  }
  emit(r, trace::Func::h5dwrite, t0, count, ds_id);
  if (opt_.flush_after_dataset) co_await flush(r, f);
}

sim::Task<void> Hdf5Lite::dataset_read(Rank r, H5File* f,
                                       const std::string& name, Offset rel_off,
                                       std::uint64_t count) {
  const SimTime t0 = ctx_.engine->now();
  const auto& [ds, ds_id] = f->datasets.at(name);
  if (f->mfile) {
    co_await mpiio_.read_at(r, f->mfile, ds.begin + rel_off, count);
  } else {
    co_await posix_.pread(r, f->fds.at(r), ds.begin + rel_off, count);
  }
  emit(r, trace::Func::h5dread, t0, count, ds_id);
}

sim::Task<void> Hdf5Lite::flush(Rank r, H5File* f) {
  const SimTime t0 = ctx_.engine->now();
  const std::uint64_t epoch = f->flush_gen[r]++;
  // The rank holding the dirty shared accumulator rewrites the file head,
  // then everyone persists with fsync — the commit that makes FLASH's
  // conflicts vanish under commit semantics.
  const Rank writer = opt_.collective_metadata
                          ? f->group.front()
                          : f->meta_writers[epoch % f->meta_writers.size()];
  if (r == writer) {
    if (f->mfile) {
      co_await mpiio_.write_at(r, f->mfile, kSuperblock.begin,
                               kSuperblock.size());
    } else {
      co_await posix_.pwrite(r, f->fds.at(r), kSuperblock.begin,
                             kSuperblock.size());
    }
  }
  if (f->mfile) {
    co_await mpiio_.sync(r, f->mfile);
  } else {
    co_await posix_.fsync(r, f->fds.at(r));
  }
  if (f->group.size() > 1) co_await ctx_.world->barrier(r, f->group);
  emit(r, trace::Func::h5fflush, t0, 0, f->file);
}

sim::Task<void> Hdf5Lite::close(Rank r, H5File* f) {
  const SimTime t0 = ctx_.engine->now();
  if (f->group.size() > 1) co_await ctx_.world->barrier(r, f->group);
  const Rank leader = f->group.front();
  if (r == leader) {
    // Final superblock write + truncate to end-of-allocation.
    if (f->mfile) {
      co_await mpiio_.write_at(r, f->mfile, kSuperblock.begin,
                               kSuperblock.size());
      co_await mpiio_.set_size(r, f->mfile, f->eoa);
    } else {
      co_await posix_.pwrite(r, f->fds.at(r), kSuperblock.begin,
                             kSuperblock.size());
      co_await posix_.fstat(r, f->fds.at(r));
      co_await posix_.ftruncate(r, f->fds.at(r), f->eoa);
    }
  }
  const FileId file = f->file;
  if (f->mfile) {
    MpiFile* m = f->mfile;
    if (--f->open_count == 0) handles_.erase(file);
    co_await mpiio_.close(r, m);
  } else {
    co_await posix_.close(r, f->fds.at(r));
    if (--f->open_count == 0) handles_.erase(file);
  }
  emit(r, trace::Func::h5fclose, t0, 0, file);
}

}  // namespace pfsem::iolib
