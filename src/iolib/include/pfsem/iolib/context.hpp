#pragma once
// Shared wiring for one simulated application run: the DES engine, the MPI
// world, the PFS under test, and the trace collector. Every I/O-library
// façade holds one of these by value (it is a bundle of non-owning
// pointers; the driver owns the underlying objects).

#include "pfsem/iolib/retry.hpp"
#include "pfsem/mpi/world.hpp"
#include "pfsem/obs/obs.hpp"
#include "pfsem/sim/engine.hpp"
#include "pfsem/trace/collector.hpp"
#include "pfsem/vfs/filesystem.hpp"
#include "pfsem/vfs/pfs.hpp"

namespace pfsem::fault {
class Injector;
}  // namespace pfsem::fault

namespace pfsem::iolib {

struct IoContext {
  sim::Engine* engine = nullptr;
  mpi::World* world = nullptr;
  vfs::FileSystem* pfs = nullptr;
  trace::Collector* collector = nullptr;
  /// Optional fault wiring (nullptr / default policy = fault-free run).
  fault::Injector* injector = nullptr;
  RetryPolicy retry = {};
  /// Optional observability context (nullptr = off): retry loops emit
  /// retry / give-up instants on the owning rank's I/O track.
  obs::Run* obs = nullptr;

  [[nodiscard]] bool valid() const {
    return engine && world && pfs && collector;
  }
};

}  // namespace pfsem::iolib
