#pragma once
// Miniature MPI-IO (ROMIO-style) over the simulated POSIX layer.
//
// Independent operations (write_at/read_at) map 1:1 onto pwrite/pread by
// the calling rank. Collective operations (write_at_all/read_at_all)
// model two-phase collective buffering: ranks exchange their access
// ranges, the union is split into contiguous file domains, and a fixed
// set of aggregator ranks performs one large POSIX access per domain —
// which is why collective runs show few writers with large consecutive
// accesses (paper Section 6.2.2: six aggregators for 64-rank FLASH-fbs).
//
// Every MPI-IO entry point emits a Layer::MpiIo record; the POSIX calls it
// issues are tagged origin=MpiIo.

#include <string>

#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::iolib {

struct MpiIoOptions {
  /// Number of collective-buffering aggregator ranks (ROMIO cb_nodes).
  int aggregators = 6;
  /// Layer whose code drives this MPI-IO instance (App for direct use,
  /// Hdf5 when HDF5 sits on top); stamped as origin on MPI-IO records.
  trace::Layer origin = trace::Layer::App;
};

struct MpiFile;

class MpiIo {
 public:
  explicit MpiIo(IoContext ctx, MpiIoOptions opt = {});
  ~MpiIo();
  MpiIo(const MpiIo&) = delete;
  MpiIo& operator=(const MpiIo&) = delete;

  /// Collective open over `group`; every member must call it.
  sim::Task<MpiFile*> open(Rank r, const std::string& path, int flags,
                           const mpi::Group& group);
  /// Collective close; the handle is invalid after the last member returns.
  sim::Task<void> close(Rank r, MpiFile* fh);

  sim::Task<void> write_at(Rank r, MpiFile* fh, Offset off, std::uint64_t count);
  sim::Task<void> read_at(Rank r, MpiFile* fh, Offset off, std::uint64_t count);
  sim::Task<void> write_at_all(Rank r, MpiFile* fh, Offset off,
                               std::uint64_t count);
  sim::Task<void> read_at_all(Rank r, MpiFile* fh, Offset off,
                              std::uint64_t count);
  /// MPI_File_sync: flush the caller's data (maps to fsync = a commit op).
  sim::Task<void> sync(Rank r, MpiFile* fh);
  /// MPI_File_set_size: truncate/extend (maps to ftruncate).
  sim::Task<void> set_size(Rank r, MpiFile* fh, Offset size);

  [[nodiscard]] PosixIo& posix() { return posix_; }

 private:
  sim::Task<void> collective_transfer(Rank r, MpiFile* fh, Offset off,
                                      std::uint64_t count, bool is_write);
  void emit(Rank r, trace::Func f, SimTime t0, Offset off, std::uint64_t count,
            FileId file);

  IoContext ctx_;
  MpiIoOptions opt_;
  PosixIo posix_;
  std::map<FileId, std::unique_ptr<MpiFile>> handles_;
};

}  // namespace pfsem::iolib
