#pragma once
// Traced POSIX I/O façade.
//
// Every method performs the operation against the simulated PFS, advances
// simulated time by the operation's cost, and emits one trace record —
// the equivalent of Recorder's LD_PRELOAD interposition on the POSIX API.
// The `origin` passed at construction tags records with the layer whose
// code issued the call (application, MPI-IO, HDF5, ...), which is what
// lets the metadata census (Figure 3) attribute operations per layer.
//
// Note on record contents: like a real tracer, records carry only call
// arguments and return values. For write/read the file offset is *not* an
// argument — the analysis must reconstruct it (Section 5.1). We do stash
// the true landing offset in Record::offset as ground truth so tests can
// validate the reconstruction, but core::OffsetTracker never reads it for
// offset-implicit calls.

#include <string>

#include "pfsem/iolib/context.hpp"
#include "pfsem/sim/task.hpp"
#include "pfsem/trace/record.hpp"

namespace pfsem::iolib {

class PosixIo {
 public:
  PosixIo(IoContext ctx, trace::Layer origin = trace::Layer::App);

  // Fault behaviour: when the context carries a fault::Injector, every
  // operation checks the caller for a fail-stop crash at entry (throwing
  // sim::TaskKilled) and re-issues attempts that fail with a retryable
  // simulated errno per ctx.retry, backing off in simulated time. An
  // exhausted budget or a non-retryable errno (e.g. EROFS from writing a
  // laminated file) throws pfsem::Error.

  /// Returns the new fd. Throws on simulated failure (missing file).
  sim::Task<int> open(Rank r, std::string path, int flags);
  sim::Task<void> close(Rank r, int fd);

  /// write/read at the descriptor's current offset; return byte count.
  sim::Task<std::uint64_t> write(Rank r, int fd, std::uint64_t count);
  sim::Task<std::uint64_t> read(Rank r, int fd, std::uint64_t count);
  /// Positioned variants (offset is an explicit argument, as in POSIX).
  sim::Task<std::uint64_t> pwrite(Rank r, int fd, Offset off, std::uint64_t count);
  sim::Task<std::uint64_t> pread(Rank r, int fd, Offset off, std::uint64_t count);
  /// Returns the resulting absolute offset.
  sim::Task<std::int64_t> lseek(Rank r, int fd, std::int64_t offset, int whence);

  sim::Task<void> fsync(Rank r, int fd);
  sim::Task<void> fdatasync(Rank r, int fd);
  sim::Task<void> ftruncate(Rank r, int fd, Offset length);

  /// Metadata & utility calls (monitored set of Section 6.4 / Figure 3).
  sim::Task<std::int64_t> stat(Rank r, std::string path);
  sim::Task<std::int64_t> lstat(Rank r, std::string path);
  sim::Task<std::int64_t> fstat(Rank r, int fd);
  sim::Task<std::int64_t> access(Rank r, std::string path);
  /// Namespace edits return the simulated 0/-1 result so callers can react
  /// (a missing target is information, not noise — see apps/).
  sim::Task<std::int64_t> unlink(Rank r, std::string path);
  sim::Task<std::int64_t> mkdir(Rank r, std::string path);
  sim::Task<std::int64_t> rename(Rank r, std::string from, std::string to);
  sim::Task<void> getcwd(Rank r);
  sim::Task<void> umask(Rank r);
  sim::Task<void> fcntl(Rank r, int fd);
  sim::Task<void> dup(Rank r, int fd);
  sim::Task<void> readdir(Rank r, std::string path);

  /// Last read's resolved version extents (for staleness checks in tests).
  [[nodiscard]] const std::vector<vfs::ReadExtent>& last_read_extents() const {
    return last_read_;
  }

  /// Interned path id associated with an fd this façade opened (for fstat
  /// records). Resolve to text via the collector's path table.
  [[nodiscard]] FileId file_of(Rank r, int fd) const;

 private:
  sim::Task<void> meta_call(Rank r, trace::Func f, FileId file,
                            SimDuration cost, std::int64_t ret);
  /// Fail-stop boundary check: throws sim::TaskKilled for a crashed rank.
  void check_alive(Rank r) const;
  void emit(Rank r, trace::Func f, SimTime t0, SimTime t1, int fd,
            std::int64_t ret, Offset off, std::uint64_t count, int flags,
            FileId file);

  IoContext ctx_;
  trace::Layer origin_;
  std::map<std::pair<Rank, int>, FileId> fd_files_;
  std::vector<vfs::ReadExtent> last_read_;
};

}  // namespace pfsem::iolib
