#pragma once
// Miniature HDF5 over the simulated POSIX / MPI-IO layers.
//
// Models the pieces of HDF5 behaviour the paper identifies as the source
// of access-pattern randomness and of every HDF5-related conflict:
//
//  * Interspersed metadata — a 96-byte superblock at offset 0, a symbol
//    table region behind it, and per-dataset object headers allocated
//    between raw-data regions, so metadata accesses are small and land at
//    low offsets while data accesses stream (Section 6.2.1, Figure 2).
//  * Distributed metadata writers — for a shared file, metadata entries
//    are written by a rotating subset of ~metadata_writers ranks, not by
//    the MPI-IO aggregators (the paper observes ~30 of 64 ranks doing
//    metadata writes, Figure 2(a,c)). With collective_metadata=true only
//    the group leader writes metadata (the paper's suggested FLASH fix).
//  * flush() (H5Fflush) — rewrites the dirty shared-accumulator region at
//    the file head and then fsyncs. Calling it between dataset writes is
//    exactly what gives FLASH its WAW-S/WAW-D conflicts under session
//    semantics and makes them disappear under commit semantics
//    (Section 6.3). flush_after_dataset enables the FLASH behaviour.
//  * metadata_readback — on dataset creation the metadata owner re-reads
//    the symbol-table node it appended to earlier, producing ENZO's RAW-S
//    conflict.
//  * close() — writes the superblock once, fstats and truncates the file
//    to its end-of-allocation (the lstat/fstat/ftruncate calls that
//    distinguish ParaDiS-HDF5 from ParaDiS-POSIX in Figure 3), closes.

#include <string>

#include "pfsem/iolib/mpi_io.hpp"
#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::iolib {

struct H5Options {
  /// Only the group leader performs metadata I/O (H5Pset_coll_metadata_write).
  bool collective_metadata = false;
  /// Call flush() automatically after every dataset write epoch (FLASH).
  bool flush_after_dataset = false;
  /// Re-read the symbol-table node before extending it (ENZO).
  bool metadata_readback = false;
  /// Size of the rotating metadata-writer subset for shared files.
  int metadata_writers = 30;
  /// Route raw dataset data through collective MPI-IO (FLASH-fbs, VPIC).
  bool collective_data = false;
  /// Aggregator count when collective_data is on.
  int aggregators = 6;
};

struct H5File;

class Hdf5Lite {
 public:
  explicit Hdf5Lite(IoContext ctx, H5Options opt = {});
  ~Hdf5Lite();
  Hdf5Lite(const Hdf5Lite&) = delete;
  Hdf5Lite& operator=(const Hdf5Lite&) = delete;

  /// Collective create over `group` (pass a single-rank group for serial
  /// HDF5 use, e.g. one file per process or rank-0-only I/O).
  sim::Task<H5File*> create(Rank r, const std::string& path,
                            const mpi::Group& group);
  /// Collective: allocate a dataset of `total_bytes`; the metadata owner
  /// writes the symbol-table entry and object header.
  sim::Task<void> dataset_create(Rank r, H5File* f, const std::string& name,
                                 std::uint64_t total_bytes);
  /// Each rank writes `count` raw bytes at `rel_off` within the dataset.
  sim::Task<void> dataset_write(Rank r, H5File* f, const std::string& name,
                                Offset rel_off, std::uint64_t count);
  /// Each rank reads `count` raw bytes at `rel_off` within the dataset.
  sim::Task<void> dataset_read(Rank r, H5File* f, const std::string& name,
                               Offset rel_off, std::uint64_t count);
  /// H5Fflush: rewrite dirty shared metadata, then fsync (a commit).
  sim::Task<void> flush(Rank r, H5File* f);
  /// H5Fclose: final superblock write, fstat+ftruncate to EOA, close.
  sim::Task<void> close(Rank r, H5File* f);

  [[nodiscard]] PosixIo& posix() { return posix_; }

 private:
  Rank metadata_owner(const H5File& f, std::uint64_t object_index) const;
  void emit(Rank r, trace::Func func, SimTime t0, std::uint64_t count,
            FileId file);

  IoContext ctx_;
  H5Options opt_;
  PosixIo posix_;
  MpiIo mpiio_;
  std::map<FileId, std::unique_ptr<H5File>> handles_;
};

}  // namespace pfsem::iolib
