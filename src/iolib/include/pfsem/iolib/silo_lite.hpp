#pragma once
// Miniature Silo (PDB-style) over the simulated POSIX layer, with the
// MACSio multifile ("poor man's parallel I/O") discipline: the ranks
// sharing one group file write in baton order — each rank opens the file,
// appends its domain block, rewrites the table of contents at the file
// head, closes, and passes the baton to the next rank via a point-to-point
// message. The same-process TOC rewrite (written twice per turn with no
// commit between) is MACSio's WAW-S conflict; the cross-rank TOC rewrites
// are cleared by the close->open session pairs the baton enforces, which
// is why MACSio shows no D conflicts (Table 4).

#include <string>

#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::iolib {

struct SiloFile;

class SiloLite {
 public:
  explicit SiloLite(IoContext ctx);
  ~SiloLite();
  SiloLite(const SiloLite&) = delete;
  SiloLite& operator=(const SiloLite&) = delete;

  /// Baton-ordered group write: rank `r` (a member of `group`) waits for
  /// the baton, opens `path`, writes its `bytes` block + TOC, closes, and
  /// forwards the baton. Every member must call this once per dump.
  sim::Task<void> write_group_file(Rank r, const std::string& path,
                                   const mpi::Group& group, std::uint64_t bytes,
                                   int dump_index);

  [[nodiscard]] PosixIo& posix() { return posix_; }

 private:
  void emit(Rank r, trace::Func func, SimTime t0, std::uint64_t count,
            FileId file);

  IoContext ctx_;
  PosixIo posix_;
};

}  // namespace pfsem::iolib
