#pragma once
// Miniature ADIOS2 (BP4-style) over the simulated POSIX layer.
//
// Output is a directory (name.bp/) holding one data subfile per
// aggregator (the M-M pattern of LAMMPS-ADIOS in Table 3), an append-only
// metadata log (md.0), and a tiny index file (md.idx) whose first byte is
// overwritten in place at every step by rank 0 — the paper names exactly
// this single-byte overwrite of */md.idx as the cause of LAMMPS-ADIOS's
// WAW-S conflict (Section 6.3). mkdir/getcwd/unlink calls give ADIOS its
// distinctive Figure 3 metadata footprint.

#include <string>

#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::iolib {

struct AdiosFile;

struct AdiosOptions {
  /// Number of data subfiles / aggregator ranks (BP4 NumAggregators).
  int aggregators = 8;
};

class AdiosLite {
 public:
  explicit AdiosLite(IoContext ctx, AdiosOptions opt = {});
  ~AdiosLite();
  AdiosLite(const AdiosLite&) = delete;
  AdiosLite& operator=(const AdiosLite&) = delete;

  /// Collective open of an output "file" (directory) over `group`.
  sim::Task<AdiosFile*> open(Rank r, const std::string& name,
                             const mpi::Group& group);
  /// Stage `bytes` of this rank's data for the current step.
  sim::Task<void> put(Rank r, AdiosFile* f, std::uint64_t bytes);
  /// Close the step: aggregators append staged data to their subfile;
  /// rank 0 appends to the metadata log and overwrites the index byte.
  sim::Task<void> end_step(Rank r, AdiosFile* f);
  sim::Task<void> close(Rank r, AdiosFile* f);

  [[nodiscard]] PosixIo& posix() { return posix_; }

 private:
  void emit(Rank r, trace::Func func, SimTime t0, std::uint64_t count,
            FileId file);

  IoContext ctx_;
  AdiosOptions opt_;
  PosixIo posix_;
  std::map<FileId, std::unique_ptr<AdiosFile>> handles_;
};

}  // namespace pfsem::iolib
