#pragma once
// I/O retry policy for transient environment faults (pfsem::fault).
//
// The POSIX façade re-issues an operation whose result carries a retryable
// simulated errno, waiting an exponentially growing backoff in *simulated*
// time between attempts. Semantic failures (err == 0, e.g. opening a
// missing file) are modelled behaviour and are never retried; a
// non-retryable errno or an exhausted budget surfaces as a pfsem::Error
// ("gave up"), which the degraded-mode report counts.

#include <algorithm>
#include <vector>

#include "pfsem/fault/plan.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::iolib {

struct RetryPolicy {
  /// Total attempts per operation (1 = fail on the first error).
  int max_attempts = 1;
  /// Backoff before the first retry; each further retry multiplies it.
  SimDuration backoff = 200'000;  // 200 us
  double multiplier = 2.0;
  /// Simulated errnos worth retrying; everything else fails immediately.
  std::vector<int> retryable = {fault::kEio, fault::kEnospc};

  /// Server failover (multi-server PfsCluster, docs/topology.md):
  /// EHOSTDOWN marks a dead server, not a transient error. The façade
  /// redirects — re-issues after `failover_backoff` of detection +
  /// reconnect time, landing on the promoted replica — up to
  /// `failover_attempts` times per operation; exhausting the budget
  /// (no replica remains) fails loudly. Budgeted separately from
  /// `max_attempts` so transient-retry tuning never masks a dead server.
  int failover_attempts = 2;
  SimDuration failover_backoff = 500'000;  // 500 us

  [[nodiscard]] bool is_retryable(int err) const {
    return std::find(retryable.begin(), retryable.end(), err) !=
           retryable.end();
  }
  [[nodiscard]] bool is_failover(int err) const {
    return err == fault::kEhostdown;
  }
  /// Backoff before retry number `attempt` (1-based: the retry after the
  /// first failed attempt waits backoff_for(1) == backoff).
  [[nodiscard]] SimDuration backoff_for(int attempt) const {
    double d = static_cast<double>(backoff);
    for (int i = 1; i < attempt; ++i) d *= multiplier;
    return static_cast<SimDuration>(d);
  }
};

}  // namespace pfsem::iolib
