#pragma once
// Miniature NetCDF (classic format) over the simulated POSIX layer.
//
// Models the single behaviour that matters for the paper's results: the
// classic-format header at the start of the file holds the record count
// (numrecs), and every record append rewrites those header bytes in place
// without any intervening commit — the WAW-S conflict the paper observes
// for LAMMPS-NetCDF under both session and commit semantics (Table 4).
// NetCDF also introduces extra metadata calls (getcwd/access) relative to
// plain POSIX use, which shows up in the Figure 3 census.

#include <string>

#include "pfsem/iolib/posix_io.hpp"

namespace pfsem::iolib {

struct NcFile;

class NetCdfLite {
 public:
  explicit NetCdfLite(IoContext ctx);
  ~NetCdfLite();
  NetCdfLite(const NetCdfLite&) = delete;
  NetCdfLite& operator=(const NetCdfLite&) = delete;

  /// Create a classic-format file (single-writer API, like LAMMPS dumps).
  sim::Task<NcFile*> create(Rank r, const std::string& path);
  /// Define a variable (metadata only until enddef).
  sim::Task<void> def_var(Rank r, NcFile* f, const std::string& name);
  /// Leave define mode: write the header block.
  sim::Task<void> enddef(Rank r, NcFile* f);
  /// Append one record of `bytes` data, then rewrite numrecs in place.
  sim::Task<void> put_record(Rank r, NcFile* f, std::uint64_t bytes);
  sim::Task<void> close(Rank r, NcFile* f);

  [[nodiscard]] PosixIo& posix() { return posix_; }

 private:
  void emit(Rank r, trace::Func func, SimTime t0, std::uint64_t count,
            FileId file);

  IoContext ctx_;
  PosixIo posix_;
  std::vector<std::unique_ptr<NcFile>> files_;
};

}  // namespace pfsem::iolib
