#include "pfsem/iolib/adios_lite.hpp"

#include <algorithm>

#include "pfsem/util/error.hpp"

namespace pfsem::iolib {

struct AdiosFile {
  std::string dir;        // "<name>.bp"
  FileId file = kNoFile;  // interned id of `dir`
  mpi::Group group;
  std::vector<Rank> aggregators;
  std::map<Rank, int> data_fds;  // aggregator -> its subfile fd
  int md_fd = -1;                // rank 0: md.0 log
  int idx_fd = -1;               // rank 0: md.idx index
  std::map<Rank, std::uint64_t> staged;
  int open_count = 0;
};

AdiosLite::AdiosLite(IoContext ctx, AdiosOptions opt)
    : ctx_(ctx), opt_(opt), posix_(ctx, trace::Layer::Adios) {
  require(ctx_.valid(), "AdiosLite needs a fully-wired IoContext");
  require(opt_.aggregators > 0, "need at least one aggregator");
}

AdiosLite::~AdiosLite() = default;

void AdiosLite::emit(Rank r, trace::Func func, SimTime t0, std::uint64_t count,
                     FileId file) {
  trace::Record rec;
  rec.tstart = t0;
  rec.tend = ctx_.engine->now();
  rec.rank = r;
  rec.layer = trace::Layer::Adios;
  rec.origin = trace::Layer::App;
  rec.func = func;
  rec.count = count;
  rec.file = file;
  ctx_.collector->emit(rec);
}

sim::Task<AdiosFile*> AdiosLite::open(Rank r, const std::string& name,
                                      const mpi::Group& group) {
  const SimTime t0 = ctx_.engine->now();
  const std::string dir = name + ".bp";
  const FileId file = ctx_.collector->intern(dir);
  auto& slot = handles_[file];
  if (!slot) {
    slot = std::make_unique<AdiosFile>();
    slot->dir = dir;
    slot->file = file;
    slot->group = group;
    const auto naggr =
        std::min<std::size_t>(static_cast<std::size_t>(opt_.aggregators),
                              group.size());
    for (std::size_t i = 0; i < naggr; ++i) {
      slot->aggregators.push_back(group[i * group.size() / naggr]);
    }
  }
  AdiosFile* f = slot.get();
  ++f->open_count;
  co_await posix_.getcwd(r);
  const Rank leader = group.front();
  if (r == leader) {
    co_await posix_.mkdir(r, dir);
    // Stale output from a previous run would confuse the reader index.
    co_await posix_.unlink(r, dir + "/md.idx");
  }
  co_await ctx_.world->barrier(r, group);
  const auto agg_it =
      std::find(f->aggregators.begin(), f->aggregators.end(), r);
  if (agg_it != f->aggregators.end()) {
    const auto sub = static_cast<int>(agg_it - f->aggregators.begin());
    f->data_fds[r] = co_await posix_.open(
        r, dir + "/data." + std::to_string(sub),
        trace::kCreate | trace::kTrunc | trace::kWrOnly);
  }
  if (r == leader) {
    f->md_fd = co_await posix_.open(r, dir + "/md.0",
                                    trace::kCreate | trace::kTrunc | trace::kWrOnly);
    f->idx_fd = co_await posix_.open(
        r, dir + "/md.idx", trace::kCreate | trace::kTrunc | trace::kRdWr);
  }
  co_await ctx_.world->barrier(r, group);
  emit(r, trace::Func::adios_open, t0, 0, file);
  co_return f;
}

sim::Task<void> AdiosLite::put(Rank r, AdiosFile* f, std::uint64_t bytes) {
  const SimTime t0 = ctx_.engine->now();
  f->staged[r] += bytes;
  co_await ctx_.engine->delay(500);  // buffer copy
  emit(r, trace::Func::adios_put, t0, bytes, f->file);
}

sim::Task<void> AdiosLite::end_step(Rank r, AdiosFile* f) {
  const SimTime t0 = ctx_.engine->now();
  // Ranks ship staged data to their aggregator; model as a barrier plus
  // the aggregator writing the aggregate sequentially (append).
  co_await ctx_.world->barrier(r, f->group);
  if (f->data_fds.contains(r)) {
    // This aggregator serves group.size()/naggr ranks.
    const std::uint64_t per_rank = f->staged.contains(r) ? f->staged[r] : 0;
    const std::uint64_t total =
        per_rank * (f->group.size() / f->aggregators.size());
    if (total > 0) co_await posix_.write(r, f->data_fds[r], total);
  }
  if (r == f->group.front()) {
    co_await posix_.write(r, f->md_fd, 256);
    // Single-byte in-place overwrite of the index: the LAMMPS-ADIOS WAW-S.
    co_await posix_.pwrite(r, f->idx_fd, 0, 1);
    co_await posix_.write(r, f->idx_fd, 64);
  }
  f->staged[r] = 0;
  co_await ctx_.world->barrier(r, f->group);
  emit(r, trace::Func::adios_end_step, t0, 0, f->file);
}

sim::Task<void> AdiosLite::close(Rank r, AdiosFile* f) {
  const SimTime t0 = ctx_.engine->now();
  co_await ctx_.world->barrier(r, f->group);
  if (f->data_fds.contains(r)) co_await posix_.close(r, f->data_fds[r]);
  if (r == f->group.front()) {
    co_await posix_.close(r, f->md_fd);
    co_await posix_.close(r, f->idx_fd);
  }
  const FileId file = f->file;
  if (--f->open_count == 0) handles_.erase(file);
  emit(r, trace::Func::adios_close, t0, 0, file);
}

}  // namespace pfsem::iolib
