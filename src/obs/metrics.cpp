#include "pfsem/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

namespace pfsem::obs {

Counter MetricsRegistry::counter(const std::string& name, Stability st) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    require(it->second.first == Kind::Counter,
            "obs metric '" + name + "' already registered with another kind");
    require(counters_[it->second.second].stability == st,
            "obs metric '" + name + "' already registered with another stability");
    return Counter{it->second.second};
  }
  const auto slot = static_cast<std::uint32_t>(counters_.size());
  counters_.push_back({name, st, 0});
  index_.emplace(name, std::make_pair(Kind::Counter, slot));
  return Counter{slot};
}

Gauge MetricsRegistry::gauge(const std::string& name, Stability st) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    require(it->second.first == Kind::Gauge,
            "obs metric '" + name + "' already registered with another kind");
    require(gauges_[it->second.second].stability == st,
            "obs metric '" + name + "' already registered with another stability");
    return Gauge{it->second.second};
  }
  const auto slot = static_cast<std::uint32_t>(gauges_.size());
  gauges_.push_back({name, st, 0});
  index_.emplace(name, std::make_pair(Kind::Gauge, slot));
  return Gauge{slot};
}

Hist MetricsRegistry::histogram(const std::string& name, Stability st) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    require(it->second.first == Kind::Hist,
            "obs metric '" + name + "' already registered with another kind");
    require(hists_[it->second.second].stability == st,
            "obs metric '" + name + "' already registered with another stability");
    return Hist{it->second.second};
  }
  const auto slot = static_cast<std::uint32_t>(hists_.size());
  hists_.emplace_back();
  hists_.back().name = name;
  hists_.back().stability = st;
  index_.emplace(name, std::make_pair(Kind::Hist, slot));
  return Hist{slot};
}

std::size_t MetricsRegistry::bucket_of(std::uint64_t v) {
  // bit_width(0) == 0 and bit_width(2^(k-1)..2^k - 1) == k, so bit_width
  // IS the bucket index; values >= 2^63 have bit_width 64, the overflow
  // bucket.
  return static_cast<std::size_t>(std::bit_width(v));
}

std::string MetricsRegistry::bucket_label(std::size_t k) {
  if (k == 0) return "0";
  if (k == kHistBuckets - 1) return "[2^63,inf)";
  auto pow2 = [](std::size_t e) {
    return std::to_string(std::uint64_t{1} << e);
  };
  return "[" + pow2(k - 1) + "," + pow2(k) + ")";
}

void MetricsRegistry::dump(std::ostream& os, bool include_volatile) const {
  auto render = [&](Stability want, std::vector<std::string>& lines) {
    for (const auto& c : counters_) {
      if (c.stability != want) continue;
      lines.push_back("counter " + c.name + " " + std::to_string(c.value));
    }
    for (const auto& g : gauges_) {
      if (g.stability != want) continue;
      lines.push_back("gauge " + g.name + " " + std::to_string(g.value));
    }
    for (const auto& h : hists_) {
      if (h.stability != want) continue;
      std::string line = "hist " + h.name + " count=" + std::to_string(h.count) +
                         " sum=" + std::to_string(h.sum);
      for (std::size_t k = 0; k < kHistBuckets; ++k) {
        if (h.buckets[k] == 0) continue;
        line += " b" + std::to_string(k) + "=" + std::to_string(h.buckets[k]);
      }
      lines.push_back(std::move(line));
    }
    // Lines start with the metric kind; sorting by the full line still
    // groups deterministically because names are unique.
    std::sort(lines.begin(), lines.end());
  };

  os << "# pfsem obs metrics v1\n";
  std::vector<std::string> stable;
  render(Stability::Stable, stable);
  for (const auto& l : stable) os << l << "\n";
  if (!include_volatile) return;
  std::vector<std::string> vol;
  render(Stability::Volatile, vol);
  if (vol.empty()) return;
  os << "# volatile (implementation-dependent; excluded from determinism "
        "diffs)\n";
  for (const auto& l : vol) os << l << "\n";
}

}  // namespace pfsem::obs
