#include "pfsem/obs/tracer.hpp"

#include <ostream>
#include <set>
#include <string>

namespace pfsem::obs {

namespace {

const char* pid_name(std::int32_t pid) {
  switch (pid) {
    case kPidHarness: return "programs (per rank, sim time)";
    case kPidSim: return "sim scheduler (sim time)";
    case kPidIo: return "io (per rank, sim time)";
    case kPidPool: return "analysis pool (wall time)";
    case kPidFault: return "fault injector (sim time)";
    default: return "pfsem";
  }
}

std::string tid_name(std::int32_t pid, std::int32_t tid) {
  switch (pid) {
    case kPidSim: return tid == 0 ? "ring tier" : "heap tier";
    case kPidPool: return "worker " + std::to_string(tid);
    default: return "rank " + std::to_string(tid);
  }
}

/// Nanoseconds -> the format's microseconds, printed as a fixed-point
/// decimal (integer math only, so output bytes are deterministic).
void write_us(std::ostream& os, std::int64_t ns) {
  if (ns < 0) ns = 0;  // tracer never records negative times
  os << ns / 1000 << '.';
  const auto frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Metadata first: name every (pid, tid) pair in use so Perfetto shows
  // subsystem/lane labels instead of bare numbers.
  std::set<std::int32_t> pids;
  std::set<std::pair<std::int32_t, std::int32_t>> tracks;
  for (const auto& e : events_) {
    pids.insert(e.pid);
    tracks.insert({e.pid, e.tid});
  }
  for (const auto pid : pids) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << pid_name(pid) << "\"}}";
  }
  for (const auto& [pid, tid] : tracks) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << tid_name(pid, tid)
       << "\"}}";
  }

  for (const auto& e : events_) {
    sep();
    os << "{\"name\":\"" << e.name << "\",\"ph\":\"" << e.ph << "\",\"ts\":";
    write_us(os, e.ts);
    if (e.ph == 'X') {
      os << ",\"dur\":";
      write_us(os, e.dur);
    } else if (e.ph == 'i') {
      os << ",\"s\":\"t\"";  // instant scoped to its thread lane
    }
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (e.a0.key != nullptr) {
      os << ",\"args\":{\"" << e.a0.key << "\":" << e.a0.value;
      if (e.a1.key != nullptr) os << ",\"" << e.a1.key << "\":" << e.a1.value;
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

}  // namespace pfsem::obs
