#include "pfsem/obs/tracer.hpp"

#include <ostream>
#include <set>
#include <string>

namespace pfsem::obs {

namespace {

const char* pid_name(std::int32_t pid) {
  switch (pid) {
    case kPidHarness: return "programs (per rank, sim time)";
    case kPidSim: return "sim scheduler (sim time)";
    case kPidIo: return "io (per rank, sim time)";
    case kPidPool: return "analysis pool (wall time)";
    case kPidFault: return "fault injector (sim time)";
    default: return "pfsem";
  }
}

std::string tid_name(std::int32_t pid, std::int32_t tid) {
  switch (pid) {
    case kPidSim: return tid == 0 ? "ring tier" : "heap tier";
    case kPidPool: return "worker " + std::to_string(tid);
    default: return "rank " + std::to_string(tid);
  }
}

/// Nanoseconds -> the format's microseconds, printed as a fixed-point
/// decimal (integer math only, so output bytes are deterministic).
void write_us(std::ostream& os, std::int64_t ns) {
  if (ns < 0) ns = 0;  // tracer never records negative times
  os << ns / 1000 << '.';
  const auto frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

/// One event object (no separator handling; callers sep() first).
void write_event_json(std::ostream& os, const Tracer::Event& e) {
  os << "{\"name\":\"" << e.name << "\",\"ph\":\"" << e.ph << "\",\"ts\":";
  write_us(os, e.ts);
  if (e.ph == 'X') {
    os << ",\"dur\":";
    write_us(os, e.dur);
  } else if (e.ph == 'i') {
    os << ",\"s\":\"t\"";  // instant scoped to its thread lane
  }
  os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
  if (e.a0.key != nullptr) {
    os << ",\"args\":{\"" << e.a0.key << "\":" << e.a0.value;
    if (e.a1.key != nullptr) os << ",\"" << e.a1.key << "\":" << e.a1.value;
    os << "}";
  }
  os << "}";
}

void write_process_meta(std::ostream& os, std::int32_t pid) {
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
     << ",\"tid\":0,\"args\":{\"name\":\"" << pid_name(pid) << "\"}}";
}

void write_thread_meta(std::ostream& os, std::int32_t pid, std::int32_t tid) {
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << tid_name(pid, tid)
     << "\"}}";
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Metadata first: name every (pid, tid) pair in use so Perfetto shows
  // subsystem/lane labels instead of bare numbers.
  std::set<std::int32_t> pids;
  std::set<std::pair<std::int32_t, std::int32_t>> tracks;
  for (const auto& e : events_) {
    pids.insert(e.pid);
    tracks.insert({e.pid, e.tid});
  }
  for (const auto pid : pids) {
    sep();
    write_process_meta(os, pid);
  }
  for (const auto& [pid, tid] : tracks) {
    sep();
    write_thread_meta(os, pid, tid);
  }

  for (const auto& e : events_) {
    sep();
    write_event_json(os, e);
  }
  os << "\n]}\n";
}

void Tracer::stream_to(std::ostream* os) {
  stream_os_ = os;
  stream_first_ = true;
  stream_pids_seen_.clear();
  stream_tracks_seen_.clear();
  if (os == nullptr) return;
  *os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

void Tracer::flush_stream() {
  if (stream_os_ == nullptr || events_.empty()) return;
  std::ostream& os = *stream_os_;
  auto sep = [&] {
    if (!stream_first_) os << ",";
    stream_first_ = false;
    os << "\n";
  };
  // Flat vectors instead of sets: a handful of subsystems/lanes, scanned
  // per event — cheaper than node allocation at this cardinality.
  auto seen = [](auto& v, auto key) {
    for (const auto& k : v) {
      if (k == key) return true;
    }
    v.push_back(key);
    return false;
  };
  for (const auto& e : events_) {
    if (!seen(stream_pids_seen_, e.pid)) {
      sep();
      write_process_meta(os, e.pid);
    }
    if (!seen(stream_tracks_seen_, std::pair{e.pid, e.tid})) {
      sep();
      write_thread_meta(os, e.pid, e.tid);
    }
    sep();
    write_event_json(os, e);
  }
  events_.clear();
}

void Tracer::finish_stream() {
  if (stream_os_ == nullptr) return;
  flush_stream();
  *stream_os_ << "\n]}\n";
  stream_os_ = nullptr;
  stream_first_ = true;
  stream_pids_seen_.clear();
  stream_tracks_seen_.clear();
}

}  // namespace pfsem::obs
