#include "pfsem/obs/obs.hpp"

#include <sstream>

#include "pfsem/util/table.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::obs {

Run::Run(Config c)
    : cfg(c), wall_origin(std::chrono::steady_clock::now()) {
  const auto S = Stability::Stable;
  const auto V = Stability::Volatile;
  sim_events = metrics.counter("sim.events_dispatched", S);
  sim_roots = metrics.counter("sim.roots_spawned", S);
  sim_roots_killed = metrics.counter("sim.roots_killed", S);
  sim_end_time = metrics.gauge("sim.end_time_ns", S);
  sim_ring_pops = metrics.counter("sim.ring_pops", V);
  sim_heap_pops = metrics.counter("sim.heap_pops", V);
  sim_heap_scheduled = metrics.counter("sim.heap_scheduled", V);
  sim_compactions = metrics.counter("sim.bucket_compactions", V);

  trace_records = metrics.counter("trace.records", S);
  trace_files = metrics.gauge("trace.files_interned", S);
  trace_flushes = metrics.counter("trace.arena_flushes", V);
  trace_arena_bytes = metrics.gauge("trace.arena_bytes_peak", V);

  io_ops = metrics.counter("io.ops", S);
  io_reads = metrics.counter("io.reads", S);
  io_writes = metrics.counter("io.writes", S);
  io_meta = metrics.counter("io.meta_ops", S);
  io_read_bytes = metrics.counter("io.read_bytes", S);
  io_write_bytes = metrics.counter("io.write_bytes", S);
  io_read_size = metrics.histogram("io.read_size", S);
  io_write_size = metrics.histogram("io.write_size", S);
  io_retries = metrics.counter("io.retries", S);
  io_giveups = metrics.counter("io.giveups", S);

  mpi_p2p = metrics.counter("mpi.p2p_events", S);
  mpi_collectives = metrics.counter("mpi.collectives", S);

  vfs_lock_requests = metrics.gauge("vfs.lock_requests", S);
  vfs_lock_revocations = metrics.gauge("vfs.lock_revocations", S);
  vfs_meta_ops = metrics.gauge("vfs.meta_ops", S);
  vfs_ost_bytes = metrics.gauge("vfs.ost_bytes", S);

  fault_transient = metrics.counter("fault.transient", S);
  fault_eio = metrics.counter("fault.eio", S);
  fault_enospc = metrics.counter("fault.enospc", S);
  fault_mpi_drops = metrics.counter("fault.mpi_drops", S);
  fault_slowdowns = metrics.counter("fault.slowed_transfers", S);
  fault_delays = metrics.counter("fault.delayed_writes", S);
  fault_crashes = metrics.counter("fault.crashes", S);
  fault_writes_lost = metrics.counter("fault.writes_lost", S);
  fault_server_crashes = metrics.counter("fault.server_crashes", S);
  fault_server_restarts = metrics.counter("fault.server_restarts", S);
  fault_failovers = metrics.counter("fault.mds_failovers", S);
  fault_redirects = metrics.counter("fault.failover_redirects", S);
  fault_degraded_reads = metrics.counter("fault.degraded_reads", S);

  pool_jobs = metrics.counter("pool.jobs", V);
  pool_items = metrics.counter("pool.items", V);
  pool_steals = metrics.counter("pool.steals", V);
  pool_workers = metrics.gauge("pool.workers", V);
}

std::string summary(const Run& run) {
  const MetricsRegistry& m = run.metrics;
  std::ostringstream os;
  os << "== observability ==\n";
  os << "sim: " << m.value(run.sim_events) << " events dispatched, "
     << m.value(run.sim_roots) << " roots (" << m.value(run.sim_roots_killed)
     << " killed), end t=" << fmt(to_seconds(m.value(run.sim_end_time)), 6)
     << " s\n";
  os << "capture: " << m.value(run.trace_records) << " records, "
     << m.value(run.trace_files) << " files interned\n";
  os << "io: " << m.value(run.io_ops) << " ops (" << m.value(run.io_reads)
     << " reads / " << m.value(run.io_writes) << " writes / "
     << m.value(run.io_meta) << " metadata), " << m.value(run.io_read_bytes)
     << " B read, " << m.value(run.io_write_bytes) << " B written, "
     << m.value(run.io_retries) << " retries, " << m.value(run.io_giveups)
     << " give-ups\n";
  os << "mpi: " << m.value(run.mpi_p2p) << " p2p, "
     << m.value(run.mpi_collectives) << " collectives\n";
  os << "vfs: " << m.value(run.vfs_lock_requests) << " lock requests ("
     << m.value(run.vfs_lock_revocations) << " revocations), "
     << m.value(run.vfs_meta_ops) << " MDS round trips, "
     << m.value(run.vfs_ost_bytes) << " B across OSTs\n";
  const auto faults = m.value(run.fault_transient);
  const auto crashes = m.value(run.fault_crashes);
  const auto server_crashes = m.value(run.fault_server_crashes);
  if (faults == 0 && crashes == 0 && server_crashes == 0 &&
      m.value(run.fault_mpi_drops) == 0) {
    os << "faults: none\n";
  } else {
    os << "faults: " << faults << " transient (" << m.value(run.fault_eio)
       << " EIO, " << m.value(run.fault_enospc) << " ENOSPC), "
       << m.value(run.fault_mpi_drops) << " MPI drops, " << crashes
       << " crashes, " << m.value(run.fault_writes_lost) << " writes lost\n";
    if (server_crashes > 0) {
      os << "  servers: " << server_crashes << " crashed, "
         << m.value(run.fault_server_restarts) << " restarted, "
         << m.value(run.fault_failovers) << " MDS failovers, "
         << m.value(run.fault_redirects) << " redirected ops, "
         << m.value(run.fault_degraded_reads) << " degraded reads\n";
    }
    // Cite the exact injections when the tracer captured them, so a
    // degraded-mode report names what fired, not just how often.
    std::size_t cited = 0, total = 0;
    std::string cites;
    for (const auto& e : run.tracer.events()) {
      if (e.pid != kPidFault) continue;
      ++total;
      if (cited >= 8) continue;
      if (!cites.empty()) cites += "; ";
      cites += std::string(e.name) + " r" + std::to_string(e.tid) + " @" +
               fmt(to_seconds(e.ts), 6) + "s";
      ++cited;
    }
    if (total > 0) {
      os << "  fault events: " << cites;
      if (total > cited) os << "; ... " << total - cited << " more";
      os << "\n";
    }
  }
  // Deliberately nothing volatile here: the summary rides inside
  // analysis output whose byte-identity across --threads is a core
  // guarantee. Pool activity (jobs/items/steals, per-worker busy
  // spans) lives in the Chrome trace and the include_volatile dump.
  return os.str();
}

}  // namespace pfsem::obs
