#pragma once
// pfsem::obs span/event tracer: an in-memory log of timeline events
// exported as Chrome trace_event JSON ("JSON Array Format"), loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Events are addressed by a Track — the Chrome (pid, tid) pair. Each
// instrumented subsystem owns a pid (constants below); the tid is the
// natural lane within it (rank for I/O and programs, worker index for
// the analysis pool, tier for the scheduler). Timestamps are simulated
// nanoseconds for everything driven by the DES; only the analysis pool
// — which runs offline, outside simulated time — records wall-clock
// nanoseconds relative to the obs::Run's creation (its pid is labelled
// accordingly in the export).
//
// Names and arg keys must be string literals (or otherwise outlive the
// tracer): events store the pointers, not copies, so appending an event
// is a vector push_back and nothing else.

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "pfsem/util/types.hpp"

namespace pfsem::obs {

/// Chrome process ids, one per instrumented subsystem.
inline constexpr std::int32_t kPidHarness = 1;  ///< per-rank programs
inline constexpr std::int32_t kPidSim = 2;      ///< scheduler tiers
inline constexpr std::int32_t kPidIo = 3;       ///< per-rank I/O ops
inline constexpr std::int32_t kPidPool = 4;     ///< analysis pool (wall clock)
inline constexpr std::int32_t kPidFault = 5;    ///< injected faults

struct Track {
  std::int32_t pid = 0;
  std::int32_t tid = 0;
};

/// Optional numeric argument attached to an event (key may be null).
/// Namespace-scoped (not nested in Tracer) so it is a complete aggregate
/// where the default arguments below are parsed.
struct Arg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

class Tracer {
 public:
  struct Event {
    const char* name = nullptr;
    char ph = 'X';  ///< 'X' complete span, 'i' instant
    std::int32_t pid = 0;
    std::int32_t tid = 0;
    std::int64_t ts = 0;   ///< start, nanoseconds
    std::int64_t dur = 0;  ///< duration, nanoseconds ('X' only)
    Arg a0, a1;
  };

  /// A complete span [ts, ts + dur).
  void complete(Track t, const char* name, std::int64_t ts, std::int64_t dur,
                Arg a0 = {}, Arg a1 = {}) {
    events_.push_back({name, 'X', t.pid, t.tid, ts, dur < 0 ? 0 : dur, a0, a1});
  }

  /// A zero-duration instant event.
  void instant(Track t, const char* name, std::int64_t ts, Arg a0 = {},
               Arg a1 = {}) {
    events_.push_back({name, 'i', t.pid, t.tid, ts, 0, a0, a1});
  }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Write the whole log as Chrome trace_event JSON: metadata events
  /// naming every (pid, tid) in use, then one object per event with the
  /// required ph/ts/pid keys (ts/dur converted to fractional
  /// microseconds, the format's native unit).
  void write_chrome_json(std::ostream& os) const;

  /// Streaming export: write the JSON header to `os` now, then flush
  /// buffered events to it incrementally (flush_stream, driven by the
  /// collector's chunk boundaries) and close the array with
  /// finish_stream(). Metadata events are emitted lazily, the first time
  /// a (pid, tid) appears — the same information as the batch export,
  /// interleaved instead of front-loaded, which the format allows.
  void stream_to(std::ostream* os);

  [[nodiscard]] bool streaming() const { return stream_os_ != nullptr; }

  /// Write everything buffered since the last flush and clear the buffer.
  void flush_stream();

  /// Flush the tail and write the JSON footer. The tracer detaches from
  /// the stream and may be reused afterwards.
  void finish_stream();

 private:
  std::vector<Event> events_;
  std::ostream* stream_os_ = nullptr;
  bool stream_first_ = true;
  std::vector<std::int32_t> stream_pids_seen_;
  std::vector<std::pair<std::int32_t, std::int32_t>> stream_tracks_seen_;
};

}  // namespace pfsem::obs
