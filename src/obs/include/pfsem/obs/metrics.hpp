#pragma once
// pfsem::obs metrics: a registry of named counters, gauges, and
// log2-bucketed histograms that is deterministic by construction.
//
// Hot-path discipline: handles are registered once at wiring time (cold)
// and are plain indices into flat arrays, so an update is one add/store
// behind the caller's single `if (obs != nullptr)` branch — the whole
// cost of compiled-in-but-disabled observability.
//
// Determinism contract: a metric registered `Stability::Stable` may
// derive only from simulated time and event counts — never wall clock,
// thread ids, or scheduling races — so the stable dump is byte-identical
// across `--threads N` and `--capture fast|reference` and can itself be
// diff-tested (tests/test_obs.cpp). Implementation-dependent values
// (scheduler-tier hit counts, pool steal counts, arena occupancy) must
// be registered `Stability::Volatile`; dump() excludes them unless asked.
//
// The registry is not thread-safe: updates must come from one thread at
// a time (the DES simulation is single-threaded; the analysis pool
// accumulates per-worker and publishes from the calling thread).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "pfsem/util/error.hpp"

namespace pfsem::obs {

/// Whether a metric participates in the byte-identical stable dump
/// (see file comment).
enum class Stability : std::uint8_t { Stable, Volatile };

/// Typed hot-path handles: plain slots into the kind-specific arrays.
struct Counter {
  std::uint32_t slot = 0;
};
struct Gauge {
  std::uint32_t slot = 0;
};
struct Hist {
  std::uint32_t slot = 0;
};

class MetricsRegistry {
 public:
  /// Histogram buckets: bucket 0 holds value 0; bucket k (1..64) holds
  /// values in [2^(k-1), 2^k); bucket 64 is the open-ended overflow
  /// bucket (it also catches every value with the top bit set).
  static constexpr std::size_t kHistBuckets = 65;

  /// Register (or re-find) a metric. Registering an existing name
  /// returns the existing handle; the kind and stability must match.
  Counter counter(const std::string& name, Stability st = Stability::Stable);
  Gauge gauge(const std::string& name, Stability st = Stability::Stable);
  Hist histogram(const std::string& name, Stability st = Stability::Stable);

  // --- hot-path updates -------------------------------------------------
  void add(Counter c, std::uint64_t delta = 1) {
    counters_[c.slot].value += delta;
  }
  void set(Gauge g, std::int64_t v) { gauges_[g.slot].value = v; }
  void observe(Hist h, std::uint64_t v) {
    HistData& d = hists_[h.slot];
    ++d.buckets[bucket_of(v)];
    ++d.count;
    d.sum += v;  // u64 wrap-around is well-defined and deterministic
  }

  // --- introspection ----------------------------------------------------
  [[nodiscard]] std::uint64_t value(Counter c) const {
    return counters_[c.slot].value;
  }
  [[nodiscard]] std::int64_t value(Gauge g) const {
    return gauges_[g.slot].value;
  }
  [[nodiscard]] std::uint64_t count(Hist h) const { return hists_[h.slot].count; }
  [[nodiscard]] std::uint64_t sum(Hist h) const { return hists_[h.slot].sum; }
  [[nodiscard]] std::uint64_t bucket(Hist h, std::size_t k) const {
    return hists_[h.slot].buckets[k];
  }

  /// Bucket index for `v` (see kHistBuckets).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v);
  /// Human label for bucket k ("0", "[1,2)", "[2^63,inf)").
  [[nodiscard]] static std::string bucket_label(std::size_t k);

  /// Render the registry as text, one metric per line, sorted by name.
  /// The default (stable-only) dump is the byte-diffable artifact;
  /// `include_volatile` appends the implementation-dependent section.
  void dump(std::ostream& os, bool include_volatile = false) const;

 private:
  struct CounterData {
    std::string name;
    Stability stability;
    std::uint64_t value = 0;
  };
  struct GaugeData {
    std::string name;
    Stability stability;
    std::int64_t value = 0;
  };
  struct HistData {
    std::string name;
    Stability stability;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t buckets[kHistBuckets] = {};
  };
  enum class Kind : std::uint8_t { Counter, Gauge, Hist };

  /// Dedupe table: name -> (kind, slot). Registration-time only.
  std::map<std::string, std::pair<Kind, std::uint32_t>> index_;
  std::vector<CounterData> counters_;
  std::vector<GaugeData> gauges_;
  std::vector<HistData> hists_;
};

}  // namespace pfsem::obs
