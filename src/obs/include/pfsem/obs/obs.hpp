#pragma once
// pfsem::obs — built-in observability for the capture/analysis stack.
//
// One obs::Run is the per-run observability context: a deterministic
// MetricsRegistry plus a span/event Tracer, with every hot-path handle
// pre-registered as a plain struct field so instrumented code pays one
// branch on a pre-fetched handle when observability is disabled and one
// array add when it is enabled.
//
// Wiring: everything is off by default. A caller that wants
// observability constructs a Run and hands its address to the stack
// (apps::AppConfig::obs wires the harness, engine, collector, injector,
// and iolib facades; exec::set_observer covers the analysis pool, which
// is constructed deep inside the analysis functions). Components never
// own the Run; the driver (CLI, test) does.
//
// See docs/observability.md for the metric catalogue, the span schema,
// and the determinism contract.

#include <chrono>
#include <string>

#include "pfsem/obs/metrics.hpp"
#include "pfsem/obs/tracer.hpp"

namespace pfsem::obs {

struct Config {
  /// Record counters/gauges/histograms and the run summary.
  bool metrics = false;
  /// Record timeline spans/events for Chrome-trace export. Costs one
  /// in-memory Event per I/O record; enable for runs you will look at.
  bool tracing = false;

  [[nodiscard]] bool any() const { return metrics || tracing; }
};

struct Run {
  explicit Run(Config c);
  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  Config cfg;
  MetricsRegistry metrics;
  Tracer tracer;
  /// Wall-clock origin for the analysis pool's spans (the only wall
  /// timestamps in the trace; everything else is simulated time).
  std::chrono::steady_clock::time_point wall_origin;

  [[nodiscard]] bool tracing() const { return cfg.tracing; }
  /// Nanoseconds of wall clock since this Run was created.
  [[nodiscard]] std::int64_t wall_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - wall_origin)
        .count();
  }

  // --- pre-registered handles (the metric catalogue) --------------------
  // sim::Engine
  Counter sim_events;        ///< events dispatched (stable)
  Counter sim_roots;         ///< root tasks spawned (stable)
  Counter sim_roots_killed;  ///< roots terminated by TaskKilled (stable)
  Gauge sim_end_time;        ///< simulated time when run() drained (stable)
  Counter sim_ring_pops;     ///< near-time ring dispatches (volatile)
  Counter sim_heap_pops;     ///< heap dispatches (volatile)
  Counter sim_heap_scheduled;  ///< events routed to the far-future heap (volatile)
  Counter sim_compactions;   ///< bucket consumed-prefix compactions (volatile)
  // trace::Collector
  Counter trace_records;  ///< records captured (stable)
  Gauge trace_files;      ///< paths interned at take() (stable)
  Counter trace_flushes;  ///< arena flushes (volatile)
  Gauge trace_arena_bytes;  ///< arena bytes at the largest flush (volatile)
  // iolib / vfs (fed from the collector's emit stream + retry loops)
  Counter io_ops;         ///< every traced call (stable)
  Counter io_reads;       ///< POSIX-layer read/pread (stable)
  Counter io_writes;      ///< POSIX-layer write/pwrite (stable)
  Counter io_meta;        ///< metadata/utility calls (stable)
  Counter io_read_bytes;  ///< bytes returned by POSIX-layer reads (stable)
  Counter io_write_bytes;  ///< bytes written by POSIX-layer writes (stable)
  Hist io_read_size;      ///< POSIX-layer read request sizes (stable)
  Hist io_write_size;     ///< POSIX-layer write request sizes (stable)
  Counter io_retries;     ///< retry attempts consumed (stable)
  Counter io_giveups;     ///< ops that exhausted their retry budget (stable)
  // mpi (fed from the collector's matched-event stream)
  Counter mpi_p2p;          ///< matched point-to-point events (stable)
  Counter mpi_collectives;  ///< matched collectives (stable)
  // vfs::Pfs (published by the harness after the run)
  Gauge vfs_lock_requests;     ///< MDS lock acquisitions (stable)
  Gauge vfs_lock_revocations;  ///< conflicting holders called back (stable)
  Gauge vfs_meta_ops;          ///< metadata-server round trips (stable)
  Gauge vfs_ost_bytes;         ///< bytes transferred across all OSTs (stable)
  // fault::Injector
  Counter fault_transient;    ///< transient errors injected (stable)
  Counter fault_eio;          ///< ... of which EIO (stable)
  Counter fault_enospc;       ///< ... of which ENOSPC (stable)
  Counter fault_mpi_drops;    ///< messages dropped + retransmitted (stable)
  Counter fault_slowdowns;    ///< transfers hit by OST slowdowns (stable)
  Counter fault_delays;       ///< writes hit by visibility spikes (stable)
  Counter fault_crashes;      ///< ranks fail-stopped (stable)
  Counter fault_writes_lost;  ///< versions discarded by crashes (stable)
  Counter fault_server_crashes;   ///< MDS/OST servers fail-stopped (stable)
  Counter fault_server_restarts;  ///< servers rejoined (stable)
  Counter fault_failovers;        ///< standby MDS replicas promoted (stable)
  Counter fault_redirects;        ///< client ops re-sent after EHOSTDOWN (stable)
  Counter fault_degraded_reads;   ///< reads with dead-OST holes (stable)
  // exec::ThreadPool (wall-clock side; never in the stable dump)
  Counter pool_jobs;    ///< parallel_for invocations (volatile)
  Counter pool_items;   ///< loop indices executed (volatile)
  Counter pool_steals;  ///< ranges stolen from another deque (volatile)
  Gauge pool_workers;   ///< participants of the widest pool seen (volatile)
};

/// Compact human-readable summary of a Run — the block appended to the
/// run report (core::RunReport::obs_summary) and printed by the CLI.
/// Includes the injected-fault event list when tracing captured one.
[[nodiscard]] std::string summary(const Run& run);

}  // namespace pfsem::obs
