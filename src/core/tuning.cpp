#include "pfsem/core/tuning.hpp"

#include <string>
#include <vector>

#include "pfsem/core/overlap.hpp"

namespace pfsem::core {

namespace {

/// Per-file conflict class flags. The capped example list may omit
/// pairs, so presence flags are computed from the full pair set of each
/// file, not from ConflictReport examples.
struct Flags {
  bool session_d = false, commit_d = false;
  bool any_pair = false;
  std::uint64_t session_pairs = 0, commit_pairs = 0;
};

Flags classify_pairs(const FileLog& fl, std::span<const OverlapPair> pairs) {
  Flags f;
  for (const auto& p : pairs) {
    const Access* a = &fl.accesses[p.first];
    const Access* b = &fl.accesses[p.second];
    if (b->t < a->t || (b->t == a->t && b->rank < a->rank)) std::swap(a, b);
    if (a->type != AccessType::Write) continue;
    f.any_pair = true;
    const bool same = a->rank == b->rank;
    if (a->t_commit > b->t) {
      ++f.commit_pairs;
      if (!same) f.commit_d = true;
    }
    if (!(a->t_close < b->t_open)) {
      ++f.session_pairs;
      if (!same) f.session_d = true;
    }
  }
  return f;
}

TuningReport assemble(const AccessLog& log, const std::vector<Flags>& flags) {
  using vfs::ConsistencyModel;
  TuningReport out;
  // Output promises path order; flags are indexed by FileId.
  for (const FileId id : log.ids_by_path()) {
    const FileLog& fl = log.files[id];
    static const Flags kNone;
    const Flags& f = id < flags.size() ? flags[id] : kNone;
    FileTuning ft;
    ft.path = std::string(log.path(id));
    ft.bytes = fl.read_bytes() + fl.write_bytes();
    ft.session_pairs = f.session_pairs;
    ft.commit_pairs = f.commit_pairs;
    if (!f.any_pair) {
      ft.weakest = ConsistencyModel::Eventual;
    } else if (!f.session_d) {
      ft.weakest = ConsistencyModel::Session;
    } else if (!f.commit_d) {
      ft.weakest = ConsistencyModel::Commit;
    } else {
      ft.weakest = ConsistencyModel::Strong;
    }
    out.total_bytes += ft.bytes;
    if (ft.weakest != ConsistencyModel::Strong) out.relaxed_bytes += ft.bytes;
    if (ft.weakest == ConsistencyModel::Eventual) out.eventual_bytes += ft.bytes;
    out.files.push_back(std::move(ft));
  }
  return out;
}

}  // namespace

TuningReport per_file_tuning(const AccessLog& log, int threads) {
  return per_file_tuning(log, detect_file_overlaps(log, {}, threads));
}

TuningReport per_file_tuning(const AccessLog& log, const FileOverlaps& pairs) {
  std::vector<Flags> flags(log.files.size());
  for (std::size_t id = 0; id < log.files.size() && id < pairs.size(); ++id) {
    flags[id] = classify_pairs(log.files[id], pairs[id]);
  }
  return assemble(log, flags);
}

}  // namespace pfsem::core
