#pragma once
// Semantics advisor — the paper's bottom line turned into an API: given a
// run's conflict report (and optionally a happens-before validation),
// recommend the weakest PFS consistency model the application can run on
// correctly (Sections 6.3, 7).

#include <string>

#include "pfsem/core/conflict.hpp"
#include "pfsem/core/happens_before.hpp"
#include "pfsem/vfs/pfs.hpp"

namespace pfsem::core {

struct Advice {
  /// Weakest safe model, assuming the PFS orders same-process accesses
  /// correctly (true of every PFS the paper lists except BurstFS).
  vfs::ConsistencyModel weakest = vfs::ConsistencyModel::Session;
  /// Weakest safe model for a PFS with no same-process ordering either.
  vfs::ConsistencyModel weakest_strict = vfs::ConsistencyModel::Session;
  /// False if conflicting accesses were found that are not ordered by the
  /// program's synchronization — a data race; no semantics can fix that.
  bool race_free = true;
  /// Human-readable justification.
  std::string rationale;
};

/// Derive advice from the conflict report. Pass the HappensBefore checker
/// to additionally validate race-freedom (Section 5.2); pass nullptr to
/// assume race-freedom like the paper does after validation. `threads`
/// fans the happens-before checks out (1 = sequential, 0 = all cores).
[[nodiscard]] Advice advise(const ConflictReport& report,
                            const HappensBefore* hb = nullptr,
                            int threads = 1);

}  // namespace pfsem::core
