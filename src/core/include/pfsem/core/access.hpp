#pragma once
// Byte-level access model — the output of offset reconstruction and the
// input of every analysis. Follows the paper's expanded record format
// (Section 5.2): each I/O operation becomes a tuple
//   (t, r, os, oe, type, to, tc)
// where `to` is the last preceding open and `tc` the first succeeding
// commit by the same process on the same file. We carry the first
// succeeding *close* separately because the session-semantics condition
// needs a close specifically, while the commit condition accepts any of
// fsync/fdatasync/fflush/close/fclose (paper footnote 2).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pfsem/util/extent.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::core {

enum class AccessType : std::uint8_t { Read, Write };

[[nodiscard]] constexpr const char* to_string(AccessType t) {
  return t == AccessType::Read ? "read" : "write";
}

struct Access {
  SimTime t = 0;  ///< entry timestamp (local rank clock)
  Rank rank = kNoRank;
  Extent ext;     ///< [os, oe) byte range
  AccessType type = AccessType::Read;
  /// Last open of this file by `rank` at or before `t`.
  SimTime t_open = 0;
  /// First commit op (fsync/fdatasync/fflush/close/fclose) by `rank` on
  /// this file after `t`; kTimeNever if none.
  SimTime t_commit = kTimeNever;
  /// First close by `rank` on this file after `t`; kTimeNever if none.
  SimTime t_close = kTimeNever;
  /// Index into TraceBundle::records this access was derived from.
  std::size_t record_index = 0;
};

/// All reconstructed activity on one file.
struct FileLog {
  std::string path;
  /// Accesses in timestamp order.
  std::vector<Access> accesses;
  /// Per-rank sorted open/close/commit timestamps (for condition checks).
  std::map<Rank, std::vector<SimTime>> opens;
  std::map<Rank, std::vector<SimTime>> closes;
  std::map<Rank, std::vector<SimTime>> commits;

  [[nodiscard]] std::uint64_t write_bytes() const {
    std::uint64_t n = 0;
    for (const auto& a : accesses) {
      if (a.type == AccessType::Write) n += a.ext.size();
    }
    return n;
  }
  [[nodiscard]] std::uint64_t read_bytes() const {
    std::uint64_t n = 0;
    for (const auto& a : accesses) {
      if (a.type == AccessType::Read) n += a.ext.size();
    }
    return n;
  }
};

/// Reconstructed byte-level activity of a whole run.
struct AccessLog {
  int nranks = 0;
  std::map<std::string, FileLog> files;
};

}  // namespace pfsem::core
