#pragma once
// Byte-level access model — the output of offset reconstruction and the
// input of every analysis. Follows the paper's expanded record format
// (Section 5.2): each I/O operation becomes a tuple
//   (t, r, os, oe, type, to, tc)
// where `to` is the last preceding open and `tc` the first succeeding
// commit by the same process on the same file. We carry the first
// succeeding *close* separately because the session-semantics condition
// needs a close specifically, while the commit condition accepts any of
// fsync/fdatasync/fflush/close/fclose (paper footnote 2).
//
// Files are identified by interned FileId throughout: the store is
// columnar, one FileLog slot per table id in a dense vector, so analyses
// shard per file with an O(1) index instead of walking a string-keyed map.

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pfsem/trace/path_table.hpp"
#include "pfsem/util/extent.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::core {

enum class AccessType : std::uint8_t { Read, Write };

[[nodiscard]] constexpr const char* to_string(AccessType t) {
  return t == AccessType::Read ? "read" : "write";
}

struct Access {
  SimTime t = 0;  ///< entry timestamp (local rank clock)
  Rank rank = kNoRank;
  Extent ext;     ///< [os, oe) byte range
  AccessType type = AccessType::Read;
  /// Last open of this file by `rank` at or before `t`.
  SimTime t_open = 0;
  /// First commit op (fsync/fdatasync/fflush/close/fclose) by `rank` on
  /// this file after `t`; kTimeNever if none.
  SimTime t_commit = kTimeNever;
  /// First close by `rank` on this file after `t`; kTimeNever if none.
  SimTime t_close = kTimeNever;
  /// Index into TraceBundle::records this access was derived from.
  std::size_t record_index = 0;
};

/// All reconstructed activity on one file. A slot is *active* once the
/// run touched the file (open/data/commit op); interned-but-untouched
/// paths keep an inactive placeholder slot so the vector stays dense.
struct FileLog {
  FileId file = kNoFile;  ///< own id; kNoFile while the slot is inactive
  /// Accesses in timestamp order.
  std::vector<Access> accesses;
  /// Per-rank sorted open/close/commit timestamps (for condition checks).
  std::map<Rank, std::vector<SimTime>> opens;
  std::map<Rank, std::vector<SimTime>> closes;
  std::map<Rank, std::vector<SimTime>> commits;

  [[nodiscard]] bool active() const { return file != kNoFile; }

  [[nodiscard]] std::uint64_t write_bytes() const {
    std::uint64_t n = 0;
    for (const auto& a : accesses) {
      if (a.type == AccessType::Write) n += a.ext.size();
    }
    return n;
  }
  [[nodiscard]] std::uint64_t read_bytes() const {
    std::uint64_t n = 0;
    for (const auto& a : accesses) {
      if (a.type == AccessType::Read) n += a.ext.size();
    }
    return n;
  }
};

/// Reconstructed byte-level activity of a whole run: a PathTable plus a
/// dense FileLog column indexed by FileId.
struct TraceStore {
  int nranks = 0;
  /// Interned paths; FileLog slot i describes paths.view(i).
  trace::PathTable paths;
  /// Dense per-file logs; files[id] may be inactive (see FileLog::active).
  std::vector<FileLog> files;

  /// Slot for `id`, growing the column and marking the slot active.
  FileLog& file(FileId id) {
    require(id != kNoFile && id < paths.size(),
            "FileId not interned in this store");
    if (files.size() < paths.size()) files.resize(paths.size());
    FileLog& fl = files[id];
    fl.file = id;
    return fl;
  }

  /// Slot for `path`, interning it if new (test/bench convenience that
  /// mirrors the old map's operator[]).
  FileLog& file(std::string_view path) { return file(paths.intern(path)); }

  /// Insert or replace the whole log for `path` (test/bench convenience
  /// that mirrors the old map's insert; keeps the slot's id consistent).
  FileLog& put(std::string_view path, FileLog fl) {
    const FileId id = paths.intern(path);
    if (files.size() < paths.size()) files.resize(paths.size());
    fl.file = id;
    files[id] = std::move(fl);
    return files[id];
  }

  /// Active slot for `path`; throws if absent (mirrors the old map's
  /// at()). Tests and tools use this; analyses index by FileId.
  [[nodiscard]] const FileLog& at(std::string_view path) const {
    const FileLog* fl = find(path);
    require(fl != nullptr, "no such file in store: " + std::string(path));
    return *fl;
  }

  /// Active slot for `path`, or nullptr if the path was never touched.
  [[nodiscard]] const FileLog* find(std::string_view path) const {
    const FileId id = paths.find(path);
    if (id == kNoFile || id >= files.size() || !files[id].active()) {
      return nullptr;
    }
    return &files[id];
  }

  [[nodiscard]] std::string_view path(FileId id) const {
    return paths.view(id);
  }

  /// Number of active files (what the old string-keyed map counted).
  [[nodiscard]] std::size_t file_count() const {
    std::size_t n = 0;
    for (const auto& fl : files) n += fl.active();
    return n;
  }

  /// Active ids in first-open (id) order.
  [[nodiscard]] std::vector<FileId> active_ids() const {
    std::vector<FileId> ids;
    ids.reserve(files.size());
    for (const auto& fl : files) {
      if (fl.active()) ids.push_back(fl.file);
    }
    return ids;
  }

  /// Active ids sorted by path — the iteration order of the retired
  /// std::map, for user-facing output that promises path order.
  [[nodiscard]] std::vector<FileId> ids_by_path() const {
    std::vector<FileId> ids = active_ids();
    std::sort(ids.begin(), ids.end(), [&](FileId a, FileId b) {
      return paths.view(a) < paths.view(b);
    });
    return ids;
  }
};

/// Historical name: analyses consume the reconstructed store.
using AccessLog = TraceStore;

/// Arena view of a TraceStore: every access copied into one flat
/// file-major vector, with per-file index slices, so parallel analysis
/// shards index files by FileId (slice index == FileId, no map walking
/// inside tasks) and read contiguous memory. Holds pointers into the
/// source store, so the store must outlive the view.
struct FlatAccessLog {
  int nranks = 0;
  std::vector<Access> arena;  ///< all accesses, grouped by file, id order
  struct FileSlice {
    FileId file = kNoFile;          ///< slot id (kNoFile: inactive slot)
    const FileLog* log = nullptr;   ///< source (open/close/commit tables)
    std::size_t begin = 0, end = 0; ///< [begin, end) into `arena`
  };
  /// One slice per store slot, index == FileId (inactive slots empty).
  std::vector<FileSlice> files;

  [[nodiscard]] std::span<const Access> accesses(std::size_t f) const {
    return {arena.data() + files[f].begin, files[f].end - files[f].begin};
  }

  [[nodiscard]] static FlatAccessLog from(const TraceStore& log) {
    FlatAccessLog flat;
    flat.nranks = log.nranks;
    std::size_t total = 0;
    for (const auto& fl : log.files) total += fl.accesses.size();
    flat.arena.reserve(total);
    flat.files.reserve(log.files.size());
    for (std::size_t id = 0; id < log.files.size(); ++id) {
      const FileLog& fl = log.files[id];
      const std::size_t begin = flat.arena.size();
      flat.arena.insert(flat.arena.end(), fl.accesses.begin(),
                        fl.accesses.end());
      flat.files.push_back(
          {fl.active() ? static_cast<FileId>(id) : kNoFile, &fl, begin,
           flat.arena.size()});
    }
    return flat;
  }
};

}  // namespace pfsem::core
