#pragma once
// Byte-level access model — the output of offset reconstruction and the
// input of every analysis. Follows the paper's expanded record format
// (Section 5.2): each I/O operation becomes a tuple
//   (t, r, os, oe, type, to, tc)
// where `to` is the last preceding open and `tc` the first succeeding
// commit by the same process on the same file. We carry the first
// succeeding *close* separately because the session-semantics condition
// needs a close specifically, while the commit condition accepts any of
// fsync/fdatasync/fflush/close/fclose (paper footnote 2).

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "pfsem/util/extent.hpp"
#include "pfsem/util/types.hpp"

namespace pfsem::core {

enum class AccessType : std::uint8_t { Read, Write };

[[nodiscard]] constexpr const char* to_string(AccessType t) {
  return t == AccessType::Read ? "read" : "write";
}

struct Access {
  SimTime t = 0;  ///< entry timestamp (local rank clock)
  Rank rank = kNoRank;
  Extent ext;     ///< [os, oe) byte range
  AccessType type = AccessType::Read;
  /// Last open of this file by `rank` at or before `t`.
  SimTime t_open = 0;
  /// First commit op (fsync/fdatasync/fflush/close/fclose) by `rank` on
  /// this file after `t`; kTimeNever if none.
  SimTime t_commit = kTimeNever;
  /// First close by `rank` on this file after `t`; kTimeNever if none.
  SimTime t_close = kTimeNever;
  /// Index into TraceBundle::records this access was derived from.
  std::size_t record_index = 0;
};

/// All reconstructed activity on one file.
struct FileLog {
  std::string path;
  /// Accesses in timestamp order.
  std::vector<Access> accesses;
  /// Per-rank sorted open/close/commit timestamps (for condition checks).
  std::map<Rank, std::vector<SimTime>> opens;
  std::map<Rank, std::vector<SimTime>> closes;
  std::map<Rank, std::vector<SimTime>> commits;

  [[nodiscard]] std::uint64_t write_bytes() const {
    std::uint64_t n = 0;
    for (const auto& a : accesses) {
      if (a.type == AccessType::Write) n += a.ext.size();
    }
    return n;
  }
  [[nodiscard]] std::uint64_t read_bytes() const {
    std::uint64_t n = 0;
    for (const auto& a : accesses) {
      if (a.type == AccessType::Read) n += a.ext.size();
    }
    return n;
  }
};

/// Reconstructed byte-level activity of a whole run.
struct AccessLog {
  int nranks = 0;
  std::map<std::string, FileLog> files;
};

/// Arena view of an AccessLog: every access copied into one flat
/// file-major vector, with per-file index slices, so parallel analysis
/// shards index files by number (no map walking inside tasks) and read
/// contiguous memory. Holds pointers into the source log (map nodes are
/// stable), so the log must outlive the view.
struct FlatAccessLog {
  int nranks = 0;
  std::vector<Access> arena;  ///< all accesses, grouped by file, path order
  struct FileSlice {
    const std::string* path = nullptr;  ///< map key of the source entry
    const FileLog* file = nullptr;      ///< source (open/close/commit tables)
    std::size_t begin = 0, end = 0;     ///< [begin, end) into `arena`
  };
  std::vector<FileSlice> files;  ///< in path (map iteration) order

  [[nodiscard]] std::span<const Access> accesses(std::size_t f) const {
    return {arena.data() + files[f].begin, files[f].end - files[f].begin};
  }

  [[nodiscard]] static FlatAccessLog from(const AccessLog& log) {
    FlatAccessLog flat;
    flat.nranks = log.nranks;
    std::size_t total = 0;
    for (const auto& [path, fl] : log.files) total += fl.accesses.size();
    flat.arena.reserve(total);
    flat.files.reserve(log.files.size());
    for (const auto& [path, fl] : log.files) {
      const std::size_t begin = flat.arena.size();
      flat.arena.insert(flat.arena.end(), fl.accesses.begin(), fl.accesses.end());
      flat.files.push_back({&path, &fl, begin, flat.arena.size()});
    }
    return flat;
  }
};

}  // namespace pfsem::core
