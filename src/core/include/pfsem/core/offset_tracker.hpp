#pragma once
// Offset reconstruction (paper Section 5.1).
//
// POSIX traces do not carry the file offset for offset-implicit calls
// (read/write); the analysis must rebuild it from open flags (O_APPEND /
// O_TRUNC), lseek whence values (SEEK_SET/CUR/END), and the byte counts of
// prior operations, tracking the most up-to-date size of every file.
// Records are processed in timestamp order across ranks (local clocks —
// the same approximation the paper argues is safe given that clock skew
// is orders of magnitude smaller than synchronized-operation spacing).
//
// The tracker deliberately ignores Record::offset for read/write calls —
// that field is simulation ground truth used only by tests to validate
// this reconstruction.

#include "pfsem/core/access.hpp"
#include "pfsem/trace/bundle.hpp"

namespace pfsem::core {

struct OffsetTrackerOptions {
  /// If true, throw when the reconstructed offset of a read/write
  /// disagrees with the ground-truth offset recorded by the simulator.
  bool validate_against_ground_truth = false;
};

/// Rebuild byte-level accesses (with open/commit/close annotations) from a
/// raw trace bundle. Only Layer::Posix records participate; higher-layer
/// records are bookkeeping for attribution, exactly as in Recorder.
[[nodiscard]] AccessLog reconstruct_accesses(const trace::TraceBundle& bundle,
                                             OffsetTrackerOptions opts = {});

}  // namespace pfsem::core
