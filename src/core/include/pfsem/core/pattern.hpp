#pragma once
// Access-pattern classification (Section 4, Section 6.2).
//
// Two granularities, as in the paper:
//
//  * Byte-level transition mix (Figure 1): with o_i/n_i the offset/length
//    of the i-th access in a sequence, the transition to access i+1 is
//    "consecutive" when o_{i+1} = o_i + n_i, "monotonic"² when
//    o_{i+1} > o_i + n_i, and "random" otherwise. The *local* mix
//    classifies each (rank, file) sequence; the *global* mix classifies
//    each file's time-ordered merge across ranks.
//
//  * High-level X-Y class + file layout (Table 3): X = how many processes
//    perform I/O (N = all, M = a proper subset, 1 = one), Y = how files
//    are shared (matching per-process files, one shared file, or M group
//    files), and the layout of the dominant shared file — Consecutive,
//    Strided (process i accesses offset a*i+b per phase), StridedCyclic
//    (the strided pattern repeats over multiple rounds), or Random.

#include <string>

#include "pfsem/core/access.hpp"

namespace pfsem::core {

/// Figure-1 transition counts.
struct TransitionMix {
  std::uint64_t consecutive = 0;
  std::uint64_t monotonic = 0;
  std::uint64_t random = 0;

  [[nodiscard]] std::uint64_t total() const {
    return consecutive + monotonic + random;
  }
  [[nodiscard]] double frac_consecutive() const {
    return total() ? static_cast<double>(consecutive) / static_cast<double>(total()) : 0;
  }
  [[nodiscard]] double frac_monotonic() const {
    return total() ? static_cast<double>(monotonic) / static_cast<double>(total()) : 0;
  }
  [[nodiscard]] double frac_random() const {
    return total() ? static_cast<double>(random) / static_cast<double>(total()) : 0;
  }
  TransitionMix& operator+=(const TransitionMix& o) {
    consecutive += o.consecutive;
    monotonic += o.monotonic;
    random += o.random;
    return *this;
  }
};

/// Per-(rank,file) sequences, aggregated (Figure 1b). Fans out one task
/// per file (each file splits into per-rank sequences internally) when
/// threads != 1; the integer sums make the merge order-invariant.
[[nodiscard]] TransitionMix local_pattern(const AccessLog& log, int threads = 1);
/// Per-file time-ordered global sequences, aggregated (Figure 1a).
[[nodiscard]] TransitionMix global_pattern(const AccessLog& log, int threads = 1);

enum class FileLayout : std::uint8_t { Consecutive, Strided, StridedCyclic, Random };

[[nodiscard]] const char* to_string(FileLayout l);

/// Table-3 classification result for one run.
struct HighLevelPattern {
  std::string xy;  ///< "N-N", "N-M", "N-1", "M-M", "M-1", "1-1"
  FileLayout layout = FileLayout::Consecutive;
  int io_ranks = 0;        ///< processes that touched the dominant family
  int family_files = 0;    ///< files in the dominant family
  std::string dominant_file;
};

struct PatternOptions {
  /// Accesses smaller than this are library metadata, excluded from the
  /// Table-3 layout classification (HDF5 superblock writes etc.).
  std::uint64_t min_data_bytes = 4096;
  /// Gaps up to this many bytes between successive accesses still count
  /// as "consecutive" for Table-3 classification: interspersed library
  /// metadata (HDF5 object headers) fills them, so the paper's tables
  /// treat such streams as consecutive.
  std::uint64_t consecutive_gap_tolerance = 1024;
};

/// Classify the run's dominant (most-bytes) output pattern.
[[nodiscard]] HighLevelPattern classify_high_level(const AccessLog& log,
                                                   int nranks,
                                                   PatternOptions opts = {});

/// Classify the layout of a single file's data accesses.
[[nodiscard]] FileLayout classify_file_layout(const FileLog& file,
                                              PatternOptions opts = {});

}  // namespace pfsem::core
