#pragma once
// Streaming reconstruction: consume a run's records in global emission
// (seq) order — replayed from a collector spill (trace/spill.hpp) or a
// compact trace stream — and build the same AccessLog and record
// counters the materialized pipeline derives from a full TraceBundle,
// without the bundle ever existing.
//
// The materialized pipeline stable-sorts Posix records by tstart before
// replaying them (offset_tracker.cpp); emission order is completion
// order, so a record can arrive after one with a later tstart. A reorder
// buffer restores the exact (tstart, emission-index) processing order:
// within one rank, Posix operations are sequential and non-overlapping,
// so each rank's Posix tstarts arrive monotonically. Once every rank
// still owing Posix records has advanced past time F (the release
// frontier), no future Posix record can start before F and everything
// buffered up to F replays through the shared OffsetStepper. Ranks whose
// remaining-record budget (StreamMeta::rank_posix_counts) hits zero stop
// pinning the frontier, so compute-only ranks and M:1 writer sets cost
// nothing; without budgets (unknown counts) the buffer degrades
// gracefully — it grows toward the Posix record count, never past it —
// and drains at finish().

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "pfsem/core/access.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/report.hpp"
#include "pfsem/trace/path_table.hpp"
#include "pfsem/trace/record.hpp"

namespace pfsem::core {

namespace detail {
class OffsetStepper;
}

class StreamAnalyzer {
 public:
  struct Result {
    AccessLog log;
    RecordStats stats;
    std::uint64_t records = 0;  ///< all layers, not just Posix
  };

  /// `paths` is the run's final intern table (streaming analysis is the
  /// post-capture phase of a spilled run, so the table is complete);
  /// `rank_posix_counts` the per-rank Posix record totals (empty =
  /// unknown, see file comment); `hints` the optional per-FileId op
  /// counts used to pre-size access columns.
  StreamAnalyzer(int nranks, trace::PathTable paths,
                 std::vector<std::uint64_t> rank_posix_counts = {},
                 const std::vector<std::uint32_t>& hints = {},
                 OffsetTrackerOptions opts = {});
  ~StreamAnalyzer();
  StreamAnalyzer(const StreamAnalyzer&) = delete;
  StreamAnalyzer& operator=(const StreamAnalyzer&) = delete;

  /// Feed the next record in emission order (its seq is implicit: the
  /// number of records fed before it).
  void feed(const trace::Record& rec);

  /// Drain the reorder buffer, annotate, and hand over the results.
  [[nodiscard]] Result finish();

  /// Reorder-buffer high-water mark (records buffered at once) — the
  /// streaming analyzer's only run-length-dependent memory besides the
  /// log itself; tests assert it stays small when budgets are known.
  [[nodiscard]] std::size_t peak_buffered() const { return peak_buffered_; }

 private:
  struct Pending {
    SimTime tstart = 0;
    std::uint64_t seq = 0;
    trace::Record rec;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.tstart != b.tstart ? a.tstart > b.tstart : a.seq > b.seq;
    }
  };
  struct FrontierEntry {
    SimTime t = 0;
    Rank rank = kNoRank;
    bool operator>(const FrontierEntry& o) const { return t > o.t; }
  };

  void release_ready();

  Result out_;
  std::unique_ptr<detail::OffsetStepper> stepper_;
  std::priority_queue<Pending, std::vector<Pending>, Later> buffer_;
  /// Lazy-deletion min-heap over (last Posix tstart, rank): the top
  /// non-stale, non-retired entry is the release frontier.
  std::priority_queue<FrontierEntry, std::vector<FrontierEntry>,
                      std::greater<>>
      frontier_;
  std::vector<SimTime> last_tstart_;
  std::vector<std::uint64_t> remaining_;  ///< Posix records still owed
  std::vector<char> seen_;
  /// Ranks owing Posix records that have not emitted one yet — their
  /// bound is unknown, so no release while any remain.
  int unseen_active_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_buffered_ = 0;
};

}  // namespace pfsem::core
