#pragma once
// Overlap detection — Algorithm 1 of the paper.
//
// Accesses are sorted by starting offset; for each tuple we scan forward
// until the next start offset passes our end offset, at which point no
// later tuple can overlap (starts are sorted). Worst case quadratic (all
// intervals overlapping), in practice near-linear — the claim the
// bench_perf_overlap binary measures against a naive O(n^2) baseline.

#include <cstddef>
#include <span>
#include <vector>

#include "pfsem/core/access.hpp"

namespace pfsem::core {

/// Indices (into the input span) of two overlapping accesses.
struct OverlapPair {
  std::size_t first = 0;
  std::size_t second = 0;
};

struct OverlapOptions {
  /// Skip pairs where neither side is a write (a read-read overlap can
  /// never conflict; Section 4.1). Keeps read-heavy workloads like LBANN
  /// from generating millions of irrelevant pairs.
  bool writes_only = true;
};

/// Algorithm 1: all overlapping pairs among `accesses`.
[[nodiscard]] std::vector<OverlapPair> detect_overlaps(
    std::span<const Access> accesses, OverlapOptions opts = {});

/// Naive O(n^2) reference used as the property-test oracle and the
/// baseline in the performance benches.
[[nodiscard]] std::vector<OverlapPair> detect_overlaps_naive(
    std::span<const Access> accesses, OverlapOptions opts = {});

/// The paper's process-pair overlap table P[ri][rj] (Algorithm 1 output).
[[nodiscard]] std::vector<std::vector<bool>> overlap_rank_table(
    std::span<const Access> accesses, int nranks);

}  // namespace pfsem::core
