#pragma once
// Overlap detection — Algorithm 1 of the paper.
//
// Three interchangeable engines, all returning the same canonical pair
// list (asserted against each other by tests/test_overlap_diff.cpp):
//
//   detect_overlaps       sweep-line over an active set (the default).
//                         Accesses are begin-sorted; each incoming access
//                         pairs with every still-live earlier interval,
//                         and — key difference from the scan — with
//                         writes_only set, read-read candidate pairs are
//                         never even visited, because reads and writes
//                         live in separate active lists. Long-lived
//                         intervals (header regions rewritten every
//                         checkpoint) therefore cost O(n log n + output)
//                         instead of the scan's O(n^2) visit storm.
//   detect_overlaps_scan  the paper's Algorithm 1 verbatim (sorted
//                         starts, scan forward, early break). Kept as the
//                         differential-test oracle and bench baseline.
//   detect_overlaps_naive the O(n^2) brute-force oracle.
//
// Empty extents are dropped before any engine runs (they overlap
// nothing by definition, and pre-filtering keeps them from perturbing
// the sorted order or the early-break condition of the scan).

#include <cstddef>
#include <span>
#include <vector>

#include "pfsem/core/access.hpp"

namespace pfsem::exec {
class ThreadPool;
}  // namespace pfsem::exec

namespace pfsem::core {

/// Indices (into the input span) of two overlapping accesses.
struct OverlapPair {
  std::size_t first = 0;
  std::size_t second = 0;

  friend constexpr bool operator==(const OverlapPair&, const OverlapPair&) = default;
};

struct OverlapOptions {
  /// Skip pairs where neither side is a write (a read-read overlap can
  /// never conflict; Section 4.1). Keeps read-heavy workloads like LBANN
  /// from generating millions of irrelevant pairs.
  bool writes_only = true;
};

/// Algorithm 1: all overlapping pairs among `accesses` (sweep-line).
[[nodiscard]] std::vector<OverlapPair> detect_overlaps(
    std::span<const Access> accesses, OverlapOptions opts = {});

/// Parallel sweep-line: identical output to detect_overlaps, computed
/// as begin-sorted slices fanned out over `pool` (each slice seeds its
/// active set from the prefix before it, so slices are independent).
[[nodiscard]] std::vector<OverlapPair> detect_overlaps(
    std::span<const Access> accesses, OverlapOptions opts,
    exec::ThreadPool& pool);

/// The paper's Algorithm 1 as literally written: sorted starts, forward
/// scan, early break. Oracle/baseline for the sweep-line.
[[nodiscard]] std::vector<OverlapPair> detect_overlaps_scan(
    std::span<const Access> accesses, OverlapOptions opts = {});

/// Naive O(n^2) reference used as the property-test oracle and the
/// baseline in the performance benches.
[[nodiscard]] std::vector<OverlapPair> detect_overlaps_naive(
    std::span<const Access> accesses, OverlapOptions opts = {});

/// Per-file overlap pairs for a whole log, computed once so downstream
/// consumers (conflict detection, tuning, the rank table) stop redoing
/// the sweep per call site. Indexed by FileId (== store slot index);
/// inactive slots hold empty vectors. Sharded over `threads`
/// (1 = sequential).
using FileOverlaps = std::vector<std::vector<OverlapPair>>;
[[nodiscard]] FileOverlaps detect_file_overlaps(const AccessLog& log,
                                                OverlapOptions opts = {},
                                                int threads = 1);

/// Same, over a prebuilt flat view and an existing pool; returns one
/// pair vector per flat file slice, in flat order. This is the shard
/// fan-out detect_conflicts rides on: one task per (file, begin-sorted
/// slice), flattened into a single task list so the pool is never
/// entered reentrantly.
[[nodiscard]] std::vector<std::vector<OverlapPair>> detect_file_overlaps(
    const FlatAccessLog& flat, OverlapOptions opts, exec::ThreadPool& pool);

/// The paper's process-pair overlap table P[ri][rj] (Algorithm 1 output).
/// This overload runs its own sweep, after coalescing each rank's
/// contiguous extents (merging [a,b)+[b,c) of one rank changes no
/// rank-pair bit but collapses long per-rank streams to a handful of
/// segments).
[[nodiscard]] std::vector<std::vector<bool>> overlap_rank_table(
    std::span<const Access> accesses, int nranks);

/// Rank table from precomputed pairs (e.g. one file's entry of
/// detect_file_overlaps, computed with writes_only = false) — avoids
/// rerunning the sweep when the pairs already exist.
[[nodiscard]] std::vector<std::vector<bool>> overlap_rank_table(
    std::span<const Access> accesses, std::span<const OverlapPair> pairs,
    int nranks);

}  // namespace pfsem::core
