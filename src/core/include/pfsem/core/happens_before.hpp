#pragma once
// Happens-before reconstruction from communication events (Section 5.2).
//
// The paper validates its timestamp-based ordering by matching sends to
// receives and collective invocations and checking that conflicting I/O
// operations are ordered by the program's synchronization. We rebuild the
// same partial order with vector clocks over the matched CommLog events:
//
//   * program order within a rank;
//   * P2P: send start -> receive completion;
//   * Barrier/Allreduce/Allgather/Alltoall: every enter -> every exit;
//   * Bcast/Scatter: root enter -> every exit;
//   * Reduce/Gather: every enter -> root exit.
//
// ordered(r1,t1,r2,t2) asks whether an operation at local time t1 on r1
// must precede an operation at t2 on r2: there must be a release event on
// r1 at/after t1 whose knowledge reaches r2 by an acquire completing
// at/before t2.

#include <vector>

#include "pfsem/core/conflict.hpp"
#include "pfsem/trace/comm_log.hpp"

namespace pfsem::core {

class HappensBefore {
 public:
  HappensBefore(const trace::CommLog& comm, int nranks);

  /// True if (r1, t1) happens-before (r2, t2) under the reconstructed
  /// synchronization order. Same-rank queries reduce to t1 <= t2.
  [[nodiscard]] bool ordered(Rank r1, SimTime t1, Rank r2, SimTime t2) const;

  [[nodiscard]] int nranks() const { return nranks_; }

 private:
  using Clock = std::vector<std::uint32_t>;

  struct Node {
    Rank rank;
    SimTime t_enter;  ///< release point (knowledge leaves at/after this)
    SimTime t_exit;   ///< acquire point (knowledge arrives by this)
    std::uint32_t seq;  ///< index of this node within its rank's timeline
    Clock clock;        ///< knowledge after this node completes
  };

  /// Per-rank timelines of nodes, each sorted by time.
  std::vector<std::vector<Node>> timeline_;
  int nranks_;
};

/// Validation result for one run (the Section 5.2 experiment).
struct RaceCheck {
  std::uint64_t checked = 0;
  std::uint64_t synchronized = 0;  ///< pairs ordered by happens-before
  std::uint64_t racy = 0;          ///< pairs with no ordering: data races
};

/// Check that every potential-conflict pair in `report` is ordered by the
/// communication structure (timestamp order matches execution order).
/// ordered() is a const lookup, so the pairs fan out over `threads`
/// chunks; the counter sums are order-invariant.
[[nodiscard]] RaceCheck validate_synchronization(const ConflictReport& report,
                                                 const HappensBefore& hb,
                                                 int threads = 1);

}  // namespace pfsem::core
