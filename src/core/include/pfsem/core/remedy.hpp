#pragma once
// Conflict remedies (paper Section 4.1): "A programmer running the
// application on a PFS with weak consistency can prevent the conflicts by
// inserting commit operations at suitable points, or the designer of a
// parallel I/O library can insert commit operations automatically."
//
// Given a conflict report, this module computes the minimal set of
// synchronization insertions that clears every cross-process conflict:
//
//   commit semantics : an fsync by the first accessor's process, on the
//     conflicting file, somewhere in the (t1, t2) window of each pair. A
//     single fsync can clear many pairs; we cover each (rank, file)'s
//     windows greedily (classic interval-point covering, which is optimal
//     for this 1-D problem).
//
//   session semantics: a close by the writer followed by a (re)open by the
//     second accessor inside the window.
//
// The FLASH case is the worked example: one fsync per metadata flush epoch
// (which H5Fflush already performs) is exactly the suggested set.

#include <string>
#include <vector>

#include "pfsem/core/conflict.hpp"

namespace pfsem::core {

/// One suggested insertion: process `rank` should commit `path` somewhere
/// in (after, before) — any simulated time strictly inside works.
struct CommitSuggestion {
  std::string path;
  Rank rank = kNoRank;
  SimTime after = 0;   ///< latest first-access entry among covered pairs
  SimTime before = 0;  ///< earliest second-access entry among covered pairs
  std::uint64_t pairs_cleared = 0;
};

struct RemedyPlan {
  /// Minimal fsync insertions clearing all cross-process commit-semantics
  /// conflicts (same-process pairs are listed too when strict = true).
  std::vector<CommitSuggestion> commits;
  /// Pairs that cannot be cleared by any commit insertion (the two
  /// accesses are too interleaved: t windows are empty).
  std::uint64_t uncoverable = 0;
};

struct RemedyOptions {
  /// Include same-process conflicts (for BurstFS-class PFSs that do not
  /// order same-process accesses either).
  bool strict = false;
};

/// Compute the minimal commit-insertion plan for `log`.
[[nodiscard]] RemedyPlan suggest_commits(const AccessLog& log,
                                         RemedyOptions opts = {});

/// Re-run the commit-semantics conflict check as if every suggestion in
/// `plan` had been applied (used to verify the plan actually clears the
/// conflicts).
[[nodiscard]] ConflictMatrix verify_plan(const AccessLog& log,
                                         const RemedyPlan& plan,
                                         RemedyOptions opts = {});

}  // namespace pfsem::core
