#pragma once
// EXTENSION (paper Section 7 future work): consistency requirements of
// *metadata* operations.
//
// The paper's conflict algorithm covers data operations only; its future
// work asks which applications additionally depend on strong *metadata*
// consistency — i.e. on namespace mutations (create/mkdir/unlink/rename)
// by one process being visible to later namespace observations (open of
// an existing file, stat, access, readdir) by another. PFSs like BatchFS
// and GekkoFS batch or decentralize metadata updates, so a cross-process
// namespace dependency is only safe if the program synchronizes it (or
// the PFS flushes on the relevant boundary).
//
// We extract every namespace mutation/observation from the POSIX trace,
// pair each observation with the nearest preceding mutation of the same
// path by a different process, and (optionally) check each dependency
// against the happens-before order — unsynchronized dependencies are the
// metadata analogue of a data race.

#include <map>
#include <vector>

#include "pfsem/core/happens_before.hpp"
#include "pfsem/trace/bundle.hpp"

namespace pfsem::core {

enum class NsOpKind : std::uint8_t { Mutate, Observe };

/// One namespace-affecting operation. The path is carried as its
/// interned id; resolve against the bundle's PathTable for display.
struct NsOp {
  SimTime t = 0;
  Rank rank = kNoRank;
  trace::Func func = trace::Func::open;
  FileId file = kNoFile;
  NsOpKind kind = NsOpKind::Observe;
  /// Hard observations *require* the name to exist (open without O_CREAT,
  /// readdir); soft ones are successful stat/access probes whose callers
  /// typically tolerate ENOENT and retry (polling).
  bool hard = false;
};

/// A cross-process namespace dependency: `observe` can only behave
/// correctly if it sees the effect of `mutate`.
struct MetadataDependency {
  NsOp mutate;
  NsOp observe;
  bool synchronized = true;  ///< ordered by happens-before (when hb given)
};

struct MetadataConflictReport {
  std::vector<MetadataDependency> dependencies;
  std::uint64_t cross_process = 0;
  std::uint64_t unsynchronized = 0;
  std::uint64_t hard_cross_process = 0;
  std::uint64_t hard_unsynchronized = 0;
  /// Distinct paths (by interned id) involved in cross-process
  /// dependencies, with their dependency counts.
  std::map<FileId, std::uint64_t> paths;

  /// Safe on a lazily-consistent metadata PFS *provided* it publishes
  /// metadata on synchronization boundaries: every dependency whose
  /// caller requires the name to exist is program-ordered. (Soft
  /// stat/access probes degrade to extra polling, not incorrectness.)
  [[nodiscard]] bool lazy_metadata_safe() const {
    return hard_unsynchronized == 0;
  }
  /// No cross-process namespace dependencies at all: metadata consistency
  /// is irrelevant to this application.
  [[nodiscard]] bool metadata_independent() const { return cross_process == 0; }
};

struct MetadataConflictOptions {
  /// Max stored dependency examples (counters stay exact).
  std::size_t max_examples = 256;
  /// Analysis threads (1 = sequential, 0 = all hardware threads). The
  /// mutate/observe pairing consults only a path and its ancestors, all
  /// sharing the path's first component, so ops shard by that component
  /// and results merge in global trace order — byte-identical output.
  int threads = 1;
};

/// Extract namespace dependencies from a trace. Pass `hb` to classify
/// each dependency as synchronized or racy; with hb == nullptr every
/// dependency is reported as synchronized=true (unknown).
[[nodiscard]] MetadataConflictReport detect_metadata_dependencies(
    const trace::TraceBundle& bundle, const HappensBefore* hb = nullptr,
    MetadataConflictOptions opts = {});

}  // namespace pfsem::core
