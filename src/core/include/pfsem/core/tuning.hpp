#pragma once
// EXTENSION (paper Section 2.3): tunable, per-file consistency.
//
// Several systems (Kuhn et al.; Vilayannur et al.) let applications pick
// consistency semantics per file or per open via hints. The paper's
// whole-application verdict is conservative: one conflicting metadata
// file forces a model on every file. This module computes the weakest
// safe model *per file*, plus an aggregate showing how much of the
// application's I/O could run relaxed if the PFS supported per-file
// tuning — e.g. LAMMPS-ADIOS needs commit/strong semantics only for the
// tiny md.idx index while the bulk data subfiles tolerate eventual
// consistency.

#include <string>
#include <vector>

#include "pfsem/core/conflict.hpp"
#include "pfsem/core/overlap.hpp"
#include "pfsem/vfs/pfs.hpp"

namespace pfsem::core {

struct FileTuning {
  std::string path;
  /// Weakest safe model for this file (same-process ordering assumed).
  vfs::ConsistencyModel weakest = vfs::ConsistencyModel::Eventual;
  std::uint64_t bytes = 0;  ///< data bytes accessed in this file
  std::uint64_t session_pairs = 0;
  std::uint64_t commit_pairs = 0;
};

struct TuningReport {
  std::vector<FileTuning> files;  ///< sorted by path
  std::uint64_t total_bytes = 0;
  std::uint64_t relaxed_bytes = 0;  ///< bytes on files weaker than strong
  std::uint64_t eventual_bytes = 0; ///< bytes on conflict-free files

  [[nodiscard]] double relaxed_fraction() const {
    return total_bytes == 0
               ? 1.0
               : static_cast<double>(relaxed_bytes) / static_cast<double>(total_bytes);
  }
  [[nodiscard]] double eventual_fraction() const {
    return total_bytes == 0
               ? 1.0
               : static_cast<double>(eventual_bytes) / static_cast<double>(total_bytes);
  }
};

/// Per-file weakest-model assignment from the access log. `threads`
/// parallelizes the per-file overlap sweeps (0 = all hardware threads).
[[nodiscard]] TuningReport per_file_tuning(const AccessLog& log,
                                           int threads = 1);

/// Same, reusing precomputed per-file overlap pairs (as returned by
/// detect_file_overlaps) so callers that already ran conflict detection
/// don't sweep every file a second time. Files absent from `pairs` are
/// treated as overlap-free.
[[nodiscard]] TuningReport per_file_tuning(const AccessLog& log,
                                           const FileOverlaps& pairs);

}  // namespace pfsem::core
