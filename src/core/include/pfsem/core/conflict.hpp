#pragma once
// Conflict detection under commit and session semantics (Section 5.2).
//
// Two accesses (t1,r1,os1,oe1,type1) and (t2,r2,os2,oe2,type2), t1 < t2,
// form a *potential conflict* when they overlap and the first is a write
// (RAW/WAW x same-process/different-process, Section 4.1). Whether the
// potential conflict is real depends on the PFS model:
//
//   commit semantics : conflict unless r1 executes a commit operation in
//                      (t1, t2) on the file (first-succeeding-commit
//                      tc1 <= t2 clears it);
//   session semantics: conflict unless r1 closes the file and r2 then
//                      (re)opens it, i.e. t1 < tclose1 < topen2 < t2.
//
// A write-after-read pair can never conflict (the read completes before
// the write starts in a race-free program), so it is not reported.

#include <vector>

#include "pfsem/core/access.hpp"
#include "pfsem/core/overlap.hpp"

namespace pfsem::core {

enum class ConflictKind : std::uint8_t { WAW, RAW };

[[nodiscard]] constexpr const char* to_string(ConflictKind k) {
  return k == ConflictKind::WAW ? "WAW" : "RAW";
}

/// One potential-conflict pair and its status under each semantics.
/// The file is carried as its interned id; resolve against the store's
/// (or bundle's) PathTable for display.
struct Conflict {
  FileId file = kNoFile;
  Access first;   ///< the earlier access (always a write)
  Access second;  ///< the later access
  ConflictKind kind = ConflictKind::WAW;
  bool same_process = false;
  bool under_commit = false;   ///< violates commit semantics
  bool under_session = false;  ///< violates session semantics
};

/// Table-4-style summary: which conflict classes appear at all.
struct ConflictMatrix {
  bool waw_s = false, waw_d = false, raw_s = false, raw_d = false;
  std::uint64_t count = 0;

  [[nodiscard]] bool any() const { return waw_s || waw_d || raw_s || raw_d; }
  /// True if every conflict involves only a single process — the case the
  /// paper notes nearly all PFSs handle correctly anyway (Section 6.3).
  [[nodiscard]] bool same_process_only() const {
    return any() && !waw_d && !raw_d;
  }
};

struct ConflictReport {
  /// Every potential-conflict pair that is real under at least one of the
  /// two semantics (capped per file; counts are exact).
  std::vector<Conflict> conflicts;
  ConflictMatrix session;
  ConflictMatrix commit;
  /// Overlapping write-involved pairs regardless of semantics (if zero,
  /// even eventual consistency is trivially safe for this run).
  std::uint64_t potential_pairs = 0;
};

struct ConflictOptions {
  /// Max example Conflict entries retained per file (counts stay exact).
  std::size_t max_examples_per_file = 64;
  /// Analysis threads: 1 = the sequential reference path, 0 = all
  /// hardware threads, N = exactly N. Any value produces byte-identical
  /// reports (shards merge in deterministic file/pair order).
  int threads = 1;
};

/// Run overlap detection + the semantics conditions over every file.
/// Fans out one task per (file, begin-sorted slice) shard on a
/// work-stealing pool when opts.threads != 1.
[[nodiscard]] ConflictReport detect_conflicts(const AccessLog& log,
                                              ConflictOptions opts = {});

/// Same, but consuming precomputed per-file overlap pairs (from
/// detect_file_overlaps with default options) instead of redoing the
/// sweep — the path report/advise use to share one pair computation.
[[nodiscard]] ConflictReport detect_conflicts(const AccessLog& log,
                                              const FileOverlaps& pairs,
                                              ConflictOptions opts = {});

}  // namespace pfsem::core
