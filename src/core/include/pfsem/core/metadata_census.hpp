#pragma once
// Metadata-operation census (Section 6.4, Figure 3).
//
// Counts which POSIX metadata/utility operations a run used and which
// layer issued them (MPI-IO library, HDF5, or application/other), over
// the same monitored-call set as the paper's footnote 3.

#include <array>
#include <map>
#include <string>
#include <vector>

#include "pfsem/trace/bundle.hpp"

namespace pfsem::core {

struct MetadataCensus {
  /// usage[func] = set of issuing layers with call counts.
  std::map<trace::Func, std::map<trace::Layer, std::uint64_t>> usage;

  [[nodiscard]] bool used(trace::Func f) const { return usage.contains(f); }
  [[nodiscard]] std::uint64_t total(trace::Func f) const {
    auto it = usage.find(f);
    if (it == usage.end()) return 0;
    std::uint64_t n = 0;
    for (const auto& [layer, c] : it->second) n += c;
    return n;
  }
  /// Distinct metadata operations used at all.
  [[nodiscard]] std::size_t distinct_ops() const { return usage.size(); }
};

/// Census over the POSIX metadata records of a bundle.
[[nodiscard]] MetadataCensus census_metadata(const trace::TraceBundle& bundle);

/// The monitored operations in a stable presentation order (Figure 3 axis).
[[nodiscard]] const std::vector<trace::Func>& monitored_metadata_funcs();

}  // namespace pfsem::core
