#pragma once
// Per-run report generation, mirroring the detailed reports the paper
// publishes alongside its traces (Section 7: "a detailed report for each
// application run, including information such as I/O sizes, function
// counters, conflicts detected for each file, etc.").

#include <array>
#include <iosfwd>
#include <map>
#include <string>

#include "pfsem/core/access.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/pattern.hpp"
#include "pfsem/trace/bundle.hpp"

namespace pfsem::core {

/// Power-of-two request-size histogram (Darshan-style buckets).
struct SizeHistogram {
  // bucket k counts requests with size in [2^k, 2^(k+1)); bucket 0 also
  // holds zero/1-byte requests; the last bucket is open-ended.
  static constexpr std::size_t kBuckets = 32;
  std::array<std::uint64_t, kBuckets> counts{};

  void add(std::uint64_t size);
  [[nodiscard]] std::uint64_t total() const;
  /// Human label for bucket k ("4KiB-8KiB").
  [[nodiscard]] static std::string bucket_label(std::size_t k);
};

struct FileReport {
  std::string path;
  std::uint64_t reads = 0, writes = 0;
  std::uint64_t read_bytes = 0, write_bytes = 0;
  std::uint64_t session_conflicts = 0, commit_conflicts = 0;
  FileLayout layout = FileLayout::Consecutive;
};

struct RunReport {
  int nranks = 0;
  std::uint64_t records = 0;
  /// Per traced function: call count.
  std::map<trace::Func, std::uint64_t> function_counts;
  /// Per layer: record count.
  std::map<trace::Layer, std::uint64_t> layer_counts;
  SizeHistogram read_sizes;
  SizeHistogram write_sizes;
  std::map<std::string, FileReport> files;
  HighLevelPattern pattern;
  TransitionMix local, global;
  /// Total simulated wall time covered by the trace.
  SimTime span = 0;
};

/// Build the full report for one run.
[[nodiscard]] RunReport build_report(const trace::TraceBundle& bundle,
                                     const AccessLog& log,
                                     const ConflictReport& conflicts);

/// Render as human-readable text.
void print_report(const RunReport& report, std::ostream& os);

}  // namespace pfsem::core
