#pragma once
// Per-run report generation, mirroring the detailed reports the paper
// publishes alongside its traces (Section 7: "a detailed report for each
// application run, including information such as I/O sizes, function
// counters, conflicts detected for each file, etc.").

#include <array>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pfsem/core/access.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/pattern.hpp"
#include "pfsem/trace/bundle.hpp"

namespace pfsem::core {

/// Power-of-two request-size histogram (Darshan-style buckets).
struct SizeHistogram {
  // bucket k counts requests with size in [2^k, 2^(k+1)); bucket 0 also
  // holds zero/1-byte requests; the last bucket is open-ended.
  static constexpr std::size_t kBuckets = 32;
  std::array<std::uint64_t, kBuckets> counts{};

  void add(std::uint64_t size);
  [[nodiscard]] std::uint64_t total() const;
  /// Human label for bucket k ("4KiB-8KiB").
  [[nodiscard]] static std::string bucket_label(std::size_t k);
};

struct FileReport {
  std::string path;
  std::uint64_t reads = 0, writes = 0;
  std::uint64_t read_bytes = 0, write_bytes = 0;
  std::uint64_t session_conflicts = 0, commit_conflicts = 0;
  FileLayout layout = FileLayout::Consecutive;
};

/// Degraded-mode summary of a fault-injected run: what the environment did
/// to the application and what survived. Plain counters so core stays
/// independent of pfsem::fault (apps::degraded_summary converts the
/// injector's stats into this).
struct DegradedSummary {
  std::uint64_t faults_injected = 0;  ///< transient errors raised
  std::uint64_t faults_eio = 0;
  std::uint64_t faults_enospc = 0;
  std::uint64_t retries = 0;           ///< retry attempts consumed
  std::uint64_t giveups = 0;           ///< ops that exhausted their budget
  std::uint64_t mpi_drops = 0;         ///< messages dropped + retransmitted
  std::uint64_t slowed_transfers = 0;  ///< transfers hit by OST slowdowns
  std::uint64_t delayed_writes = 0;    ///< writes hit by visibility spikes
  std::uint64_t writes_lost = 0;       ///< versions discarded by crashes
  std::vector<int> crashed_ranks;      ///< in crash order

  // Server fault domains (multi-server PfsCluster backend only; all zero
  // on single-server runs, and the report omits the block entirely then).
  std::uint64_t server_crashes = 0;
  std::uint64_t server_restarts = 0;
  std::uint64_t mds_failovers = 0;       ///< standby replicas promoted
  std::uint64_t failover_redirects = 0;  ///< client ops redirected (EHOSTDOWN)
  std::uint64_t degraded_reads = 0;      ///< reads with holes over dead OSTs
  std::vector<std::string> crashed_servers;  ///< "mds0", "ost3", ... in order

  /// A crash means some rank's trace stops early: per-file counters and
  /// conflict analysis describe a truncated run, not the intended one.
  [[nodiscard]] bool analysis_truncated() const {
    return !crashed_ranks.empty();
  }
};

/// Partial record counters over any slice of the trace; merging partials
/// in any order gives the sequential totals (all fields are sums or
/// min/max), so both the chunked parallel scan of build_report and the
/// one-record-at-a-time streaming feed produce identical values.
struct RecordStats {
  std::map<trace::Func, std::uint64_t> function_counts;
  std::map<trace::Layer, std::uint64_t> layer_counts;
  SizeHistogram read_sizes;
  SizeHistogram write_sizes;
  SimTime lo = kTimeNever, hi = 0;

  void feed(const trace::Record& rec);
  void merge(const RecordStats& p);
};

struct RunReport {
  int nranks = 0;
  std::uint64_t records = 0;
  /// Per traced function: call count.
  std::map<trace::Func, std::uint64_t> function_counts;
  /// Per layer: record count.
  std::map<trace::Layer, std::uint64_t> layer_counts;
  SizeHistogram read_sizes;
  SizeHistogram write_sizes;
  std::map<std::string, FileReport> files;
  HighLevelPattern pattern;
  TransitionMix local, global;
  /// Total simulated wall time covered by the trace.
  SimTime span = 0;
  /// Present when the run executed under fault injection.
  std::optional<DegradedSummary> degraded;
  /// Present when the run executed with observability on: the
  /// pre-rendered obs::summary() block (plain text so core stays
  /// independent of pfsem::obs, mirroring DegradedSummary).
  std::optional<std::string> obs_summary;
};

/// Build the full report for one run. `threads` fans the record-counter
/// scan and the per-file summaries out over the analysis pool (1 =
/// sequential, 0 = all hardware threads); counters merge in chunk order
/// so the report is identical for every thread count.
[[nodiscard]] RunReport build_report(const trace::TraceBundle& bundle,
                                     const AccessLog& log,
                                     const ConflictReport& conflicts,
                                     int threads = 1);

/// The record-independent second half of build_report: given finished
/// record counters (however they were accumulated — chunked scan or
/// streaming feed), derive the per-file summaries, conflict counts, and
/// pattern classifications. build_report is a record scan plus this; the
/// streaming pipeline calls it directly, so both paths render identical
/// reports from identical inputs.
[[nodiscard]] RunReport assemble_report(RecordStats stats,
                                        std::uint64_t records, int nranks,
                                        const AccessLog& log,
                                        const ConflictReport& conflicts,
                                        int threads = 1);

/// Render as human-readable text.
void print_report(const RunReport& report, std::ostream& os);

/// Render the degraded-mode section alone (print_report calls this when
/// the report carries one).
void print_degraded(const DegradedSummary& d, std::ostream& os);

}  // namespace pfsem::core
