#pragma once
// Cache-benefit estimation — quantifying the paper's Section 6.2
// conclusion: "these results clearly indicate that PFS performance can be
// improved by read-ahead or by aggregating delayed writes, both at the
// client and at the server side."
//
// Given a reconstructed access log, replay the accesses through two
// simple cache policies:
//
//  * read-ahead: after every miss, prefetch a window following the missed
//    range; a later read hits if it falls inside the current window.
//    Evaluated twice — per (rank, file) local sequence (client-side
//    cache) and per-file global time-ordered sequence (server-side
//    cache) — so the local/global pattern gap of Figure 1 turns into a
//    concrete hit-rate gap.
//
//  * write aggregation: consecutive writes accumulate into a buffer that
//    flushes when full or when the stream jumps; the aggregation factor
//    is how many application writes the PFS sees per flushed request.

#include "pfsem/core/access.hpp"

namespace pfsem::core {

struct CacheModelOptions {
  Offset readahead_window = 1 << 20;      ///< bytes prefetched past a miss
  Offset aggregation_buffer = 4 << 20;    ///< client write-back buffer
};

struct CacheBenefit {
  // client-side (per rank+file sequences)
  std::uint64_t client_reads = 0, client_hits = 0;
  std::uint64_t writes = 0, write_flushes = 0;
  // server-side (per file, global time order)
  std::uint64_t server_reads = 0, server_hits = 0;

  [[nodiscard]] double client_hit_rate() const {
    return client_reads ? static_cast<double>(client_hits) /
                              static_cast<double>(client_reads)
                        : 0.0;
  }
  [[nodiscard]] double server_hit_rate() const {
    return server_reads ? static_cast<double>(server_hits) /
                              static_cast<double>(server_reads)
                        : 0.0;
  }
  /// Application writes per PFS request after aggregation (>= 1).
  [[nodiscard]] double aggregation_factor() const {
    return write_flushes ? static_cast<double>(writes) /
                               static_cast<double>(write_flushes)
                         : 1.0;
  }
};

/// Replay `log` through the cache policies.
[[nodiscard]] CacheBenefit estimate_cache_benefit(const AccessLog& log,
                                                  CacheModelOptions opts = {});

}  // namespace pfsem::core
