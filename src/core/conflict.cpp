#include "pfsem/core/conflict.hpp"

#include <algorithm>

#include "pfsem/core/overlap.hpp"

namespace pfsem::core {

namespace {

void note(ConflictMatrix& m, ConflictKind kind, bool same) {
  ++m.count;
  if (kind == ConflictKind::WAW) {
    (same ? m.waw_s : m.waw_d) = true;
  } else {
    (same ? m.raw_s : m.raw_d) = true;
  }
}

}  // namespace

ConflictReport detect_conflicts(const AccessLog& log, ConflictOptions opts) {
  ConflictReport report;
  for (const auto& [path, fl] : log.files) {
    std::size_t kept_for_file = 0;
    const auto pairs = detect_overlaps(fl.accesses);
    for (const auto& p : pairs) {
      const Access* a = &fl.accesses[p.first];
      const Access* b = &fl.accesses[p.second];
      if (b->t < a->t || (b->t == a->t && b->rank < a->rank)) std::swap(a, b);
      if (a->type != AccessType::Write) continue;  // WAR never conflicts
      ++report.potential_pairs;

      const ConflictKind kind =
          b->type == AccessType::Write ? ConflictKind::WAW : ConflictKind::RAW;
      const bool same = a->rank == b->rank;

      // Commit condition: no commit by a's process in (t1, t2).
      const bool under_commit = a->t_commit > b->t;
      // Session condition: not (t1 < tclose1 < topen2 < t2).
      const bool under_session = !(a->t_close < b->t_open);

      if (!under_commit && !under_session) continue;
      if (under_commit) note(report.commit, kind, same);
      if (under_session) note(report.session, kind, same);
      if (kept_for_file < opts.max_examples_per_file) {
        Conflict c;
        c.path = path;
        c.first = *a;
        c.second = *b;
        c.kind = kind;
        c.same_process = same;
        c.under_commit = under_commit;
        c.under_session = under_session;
        report.conflicts.push_back(std::move(c));
        ++kept_for_file;
      }
    }
  }
  return report;
}

}  // namespace pfsem::core
