#include "pfsem/core/conflict.hpp"

#include <algorithm>

#include "pfsem/core/overlap.hpp"
#include "pfsem/exec/pool.hpp"

namespace pfsem::core {

namespace {

void note(ConflictMatrix& m, ConflictKind kind, bool same) {
  ++m.count;
  if (kind == ConflictKind::WAW) {
    (same ? m.waw_s : m.waw_d) = true;
  } else {
    (same ? m.raw_s : m.raw_d) = true;
  }
}

void merge(ConflictMatrix& into, const ConflictMatrix& part) {
  into.waw_s |= part.waw_s;
  into.waw_d |= part.waw_d;
  into.raw_s |= part.raw_s;
  into.raw_d |= part.raw_d;
  into.count += part.count;
}

/// One file's contribution to the report: the inner loop of the
/// original sequential detect_conflicts, verbatim, over precomputed
/// (canonical-order) pairs. Runs as one shard task; shard results merge
/// in file order, so parallel output is byte-identical to sequential.
ConflictReport evaluate_file(FileId file, std::span<const Access> accesses,
                             std::span<const OverlapPair> pairs,
                             const ConflictOptions& opts) {
  ConflictReport part;
  std::size_t kept_for_file = 0;
  for (const auto& p : pairs) {
    const Access* a = &accesses[p.first];
    const Access* b = &accesses[p.second];
    if (b->t < a->t || (b->t == a->t && b->rank < a->rank)) std::swap(a, b);
    if (a->type != AccessType::Write) continue;  // WAR never conflicts
    ++part.potential_pairs;

    const ConflictKind kind =
        b->type == AccessType::Write ? ConflictKind::WAW : ConflictKind::RAW;
    const bool same = a->rank == b->rank;

    // Commit condition: no commit by a's process in (t1, t2).
    const bool under_commit = a->t_commit > b->t;
    // Session condition: not (t1 < tclose1 < topen2 < t2).
    const bool under_session = !(a->t_close < b->t_open);

    if (!under_commit && !under_session) continue;
    if (under_commit) note(part.commit, kind, same);
    if (under_session) note(part.session, kind, same);
    if (kept_for_file < opts.max_examples_per_file) {
      Conflict c;
      c.file = file;
      c.first = *a;
      c.second = *b;
      c.kind = kind;
      c.same_process = same;
      c.under_commit = under_commit;
      c.under_session = under_session;
      part.conflicts.push_back(std::move(c));
      ++kept_for_file;
    }
  }
  return part;
}

ConflictReport merge_file_parts(std::vector<ConflictReport> parts) {
  ConflictReport report;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.conflicts.size();
  report.conflicts.reserve(total);
  for (auto& part : parts) {
    std::move(part.conflicts.begin(), part.conflicts.end(),
              std::back_inserter(report.conflicts));
    merge(report.session, part.session);
    merge(report.commit, part.commit);
    report.potential_pairs += part.potential_pairs;
  }
  return report;
}

}  // namespace

ConflictReport detect_conflicts(const AccessLog& log, ConflictOptions opts) {
  const auto flat = FlatAccessLog::from(log);
  exec::ThreadPool pool(opts.threads);
  // Stage 1: overlap pairs, one task per (file, begin-sorted slice).
  const auto pairs = detect_file_overlaps(flat, {}, pool);
  // Stage 2: semantics conditions, one task per file.
  std::vector<ConflictReport> parts(flat.files.size());
  pool.parallel_for(flat.files.size(), [&](std::size_t f) {
    parts[f] =
        evaluate_file(flat.files[f].file, flat.accesses(f), pairs[f], opts);
  });
  return merge_file_parts(std::move(parts));
}

ConflictReport detect_conflicts(const AccessLog& log, const FileOverlaps& pairs,
                                ConflictOptions opts) {
  const auto flat = FlatAccessLog::from(log);
  exec::ThreadPool pool(opts.threads);
  std::vector<ConflictReport> parts(flat.files.size());
  pool.parallel_for(flat.files.size(), [&](std::size_t f) {
    if (f >= pairs.size() || pairs[f].empty()) return;
    parts[f] =
        evaluate_file(flat.files[f].file, flat.accesses(f), pairs[f], opts);
  });
  return merge_file_parts(std::move(parts));
}

}  // namespace pfsem::core
