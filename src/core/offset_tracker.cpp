#include "pfsem/core/offset_tracker.hpp"

#include <algorithm>

#include "offset_stepper.hpp"

namespace pfsem::core {

namespace detail {

void annotate_accesses(AccessLog& log) {
  for (auto& fl : log.files) {
    for (auto& [rank, v] : fl.opens) std::sort(v.begin(), v.end());
    for (auto& [rank, v] : fl.closes) std::sort(v.begin(), v.end());
    for (auto& [rank, v] : fl.commits) std::sort(v.begin(), v.end());
    std::stable_sort(fl.accesses.begin(), fl.accesses.end(),
                     [](const Access& a, const Access& b) { return a.t < b.t; });
    for (auto& a : fl.accesses) {
      if (auto it = fl.opens.find(a.rank); it != fl.opens.end()) {
        auto ub = std::upper_bound(it->second.begin(), it->second.end(), a.t);
        a.t_open = ub == it->second.begin() ? 0 : *std::prev(ub);
      }
      auto first_after = [&](const std::map<Rank, std::vector<SimTime>>& m) {
        auto it = m.find(a.rank);
        if (it == m.end()) return kTimeNever;
        auto ub = std::upper_bound(it->second.begin(), it->second.end(), a.t);
        return ub == it->second.end() ? kTimeNever : *ub;
      };
      a.t_commit = first_after(fl.commits);
      a.t_close = first_after(fl.closes);
    }
  }
}

}  // namespace detail

AccessLog reconstruct_accesses(const trace::TraceBundle& bundle,
                               OffsetTrackerOptions opts) {
  // Sort POSIX records by (local) timestamp, the order the paper uses.
  std::vector<std::size_t> order;
  order.reserve(bundle.records.size());
  for (std::size_t i = 0; i < bundle.records.size(); ++i) {
    if (bundle.records[i].layer == trace::Layer::Posix) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return bundle.records[a].tstart < bundle.records[b].tstart;
  });

  AccessLog log;
  log.nranks = bundle.nranks;
  // Adopt the bundle's intern table: record FileIds are store FileIds.
  log.paths = bundle.paths;
  log.files.resize(log.paths.size());
  // Column hints from the fast capture path: pre-size each file's access
  // column so the grouping below appends without regrowth. The hints
  // count every record touching the file (opens/commits included), so
  // they are a slight overestimate of the data-op count — fine for
  // reserve.
  if (!bundle.file_op_counts.empty()) {
    const std::size_t n =
        std::min(bundle.file_op_counts.size(), log.files.size());
    for (std::size_t id = 0; id < n; ++id) {
      if (bundle.file_op_counts[id] > 0) {
        log.files[id].accesses.reserve(bundle.file_op_counts[id]);
      }
    }
  }

  detail::OffsetStepper stepper(log, opts);
  for (std::size_t index : order) stepper.step(bundle.records[index], index);
  detail::annotate_accesses(log);
  return log;
}

}  // namespace pfsem::core
