#include "pfsem/core/offset_tracker.hpp"

#include <algorithm>
#include <string>

#include "pfsem/util/error.hpp"

namespace pfsem::core {

namespace {

struct FdState {
  FileId file = kNoFile;
  Offset offset = 0;
  int flags = 0;
};

}  // namespace

AccessLog reconstruct_accesses(const trace::TraceBundle& bundle,
                               OffsetTrackerOptions opts) {
  using trace::Func;

  // Sort POSIX records by (local) timestamp, the order the paper uses.
  std::vector<std::size_t> order;
  order.reserve(bundle.records.size());
  for (std::size_t i = 0; i < bundle.records.size(); ++i) {
    if (bundle.records[i].layer == trace::Layer::Posix) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return bundle.records[a].tstart < bundle.records[b].tstart;
  });

  AccessLog log;
  log.nranks = bundle.nranks;
  // Adopt the bundle's intern table: record FileIds are store FileIds.
  log.paths = bundle.paths;
  log.files.resize(log.paths.size());
  // Column hints from the fast capture path: pre-size each file's access
  // column so the grouping below appends without regrowth. The hints
  // count every record touching the file (opens/commits included), so
  // they are a slight overestimate of the data-op count — fine for
  // reserve.
  if (!bundle.file_op_counts.empty()) {
    const std::size_t n =
        std::min(bundle.file_op_counts.size(), log.files.size());
    for (std::size_t id = 0; id < n; ++id) {
      if (bundle.file_op_counts[id] > 0) {
        log.files[id].accesses.reserve(bundle.file_op_counts[id]);
      }
    }
  }
  std::map<std::pair<Rank, int>, FdState> fds;
  std::vector<Offset> sizes(log.paths.size(), 0);  // up-to-date size per file

  auto add_access = [&](const trace::Record& rec, std::size_t index, FileId f,
                        Offset off, std::uint64_t len, AccessType type) {
    if (len == 0) return;
    Access a;
    a.t = rec.tstart;
    a.rank = rec.rank;
    a.ext = {off, off + len};
    a.type = type;
    a.record_index = index;
    log.file(f).accesses.push_back(a);
    if (type == AccessType::Write) {
      Offset& size = sizes[f];
      size = std::max(size, a.ext.end);
    }
    if (opts.validate_against_ground_truth &&
        (rec.func == Func::read || rec.func == Func::write ||
         rec.func == Func::pread || rec.func == Func::pwrite)) {
      require(off == rec.offset,
              "offset reconstruction mismatch on " +
                  std::string(log.paths.view(f)) + ": got " +
                  std::to_string(off) + ", truth " + std::to_string(rec.offset));
    }
  };

  for (std::size_t index : order) {
    const trace::Record& rec = bundle.records[index];
    const std::pair<Rank, int> key{rec.rank, rec.fd};
    switch (rec.func) {
      case Func::open: {
        require(rec.ret >= 0, "trace contains failed open");
        require(rec.file != kNoFile, "open record without a path");
        FdState st;
        st.file = rec.file;
        st.flags = rec.flags;
        if (rec.flags & trace::kTrunc) sizes[st.file] = 0;
        st.offset = 0;
        fds[{rec.rank, static_cast<int>(rec.ret)}] = st;
        log.file(rec.file).opens[rec.rank].push_back(rec.tstart);
        break;
      }
      case Func::close: {
        auto it = fds.find(key);
        if (it != fds.end()) {
          auto& fl = log.file(it->second.file);
          fl.closes[rec.rank].push_back(rec.tstart);
          fl.commits[rec.rank].push_back(rec.tstart);
          fds.erase(it);
        }
        break;
      }
      case Func::read:
      case Func::write: {
        auto it = fds.find(key);
        require(it != fds.end(), "read/write on unknown fd in trace");
        FdState& st = it->second;
        const bool is_write = rec.func == Func::write;
        Offset off = st.offset;
        if (is_write && (st.flags & trace::kAppend)) off = sizes[st.file];
        const auto len = static_cast<std::uint64_t>(rec.ret);
        add_access(rec, index, st.file, off, len,
                   is_write ? AccessType::Write : AccessType::Read);
        st.offset = off + len;
        break;
      }
      case Func::pread:
      case Func::pwrite: {
        auto it = fds.find(key);
        require(it != fds.end(), "pread/pwrite on unknown fd in trace");
        add_access(rec, index, it->second.file, rec.offset,
                   static_cast<std::uint64_t>(rec.ret),
                   rec.func == Func::pwrite ? AccessType::Write
                                            : AccessType::Read);
        break;
      }
      case Func::lseek: {
        auto it = fds.find(key);
        require(it != fds.end(), "lseek on unknown fd in trace");
        FdState& st = it->second;
        const auto delta = static_cast<std::int64_t>(rec.offset);
        std::int64_t base = 0;
        switch (rec.flags) {
          case trace::kSeekSet: base = 0; break;
          case trace::kSeekCur: base = static_cast<std::int64_t>(st.offset); break;
          case trace::kSeekEnd:
            base = static_cast<std::int64_t>(sizes[st.file]);
            break;
          default: require(false, "bad whence in trace");
        }
        st.offset = static_cast<Offset>(base + delta);
        break;
      }
      case Func::fsync:
      case Func::fdatasync: {
        auto it = fds.find(key);
        require(it != fds.end(), "fsync on unknown fd in trace");
        log.file(it->second.file).commits[rec.rank].push_back(rec.tstart);
        break;
      }
      case Func::ftruncate: {
        auto it = fds.find(key);
        if (it != fds.end()) sizes[it->second.file] = rec.offset;
        break;
      }
      default:
        break;  // metadata/utility ops don't contribute byte accesses
    }
  }

  // Annotate every access with (t_open, t_commit, t_close) per Section 5.2.
  for (auto& fl : log.files) {
    for (auto& [rank, v] : fl.opens) std::sort(v.begin(), v.end());
    for (auto& [rank, v] : fl.closes) std::sort(v.begin(), v.end());
    for (auto& [rank, v] : fl.commits) std::sort(v.begin(), v.end());
    std::stable_sort(fl.accesses.begin(), fl.accesses.end(),
                     [](const Access& a, const Access& b) { return a.t < b.t; });
    for (auto& a : fl.accesses) {
      if (auto it = fl.opens.find(a.rank); it != fl.opens.end()) {
        auto ub = std::upper_bound(it->second.begin(), it->second.end(), a.t);
        a.t_open = ub == it->second.begin() ? 0 : *std::prev(ub);
      }
      auto first_after = [&](const std::map<Rank, std::vector<SimTime>>& m) {
        auto it = m.find(a.rank);
        if (it == m.end()) return kTimeNever;
        auto ub = std::upper_bound(it->second.begin(), it->second.end(), a.t);
        return ub == it->second.end() ? kTimeNever : *ub;
      };
      a.t_commit = first_after(fl.commits);
      a.t_close = first_after(fl.closes);
    }
  }
  return log;
}

}  // namespace pfsem::core
