#include "pfsem/core/overlap.hpp"

#include <algorithm>
#include <numeric>

namespace pfsem::core {

namespace {

/// Canonicalize so pair ordering is deterministic regardless of algorithm.
void canonicalize(std::vector<OverlapPair>& pairs) {
  for (auto& p : pairs) {
    if (p.first > p.second) std::swap(p.first, p.second);
  }
  std::sort(pairs.begin(), pairs.end(), [](const OverlapPair& a, const OverlapPair& b) {
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  });
}

bool relevant(const Access& a, const Access& b, const OverlapOptions& opts) {
  return !opts.writes_only || a.type == AccessType::Write ||
         b.type == AccessType::Write;
}

}  // namespace

std::vector<OverlapPair> detect_overlaps(std::span<const Access> accesses,
                                         OverlapOptions opts) {
  std::vector<std::size_t> order(accesses.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return accesses[a].ext.begin < accesses[b].ext.begin;
  });
  std::vector<OverlapPair> pairs;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Access& ai = accesses[order[i]];
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      const Access& aj = accesses[order[j]];
      if (aj.ext.begin >= ai.ext.end) break;  // sorted starts: no more overlaps
      if (ai.ext.empty() || aj.ext.empty()) continue;
      if (!relevant(ai, aj, opts)) continue;
      pairs.push_back({order[i], order[j]});
    }
  }
  canonicalize(pairs);
  return pairs;
}

std::vector<OverlapPair> detect_overlaps_naive(std::span<const Access> accesses,
                                               OverlapOptions opts) {
  std::vector<OverlapPair> pairs;
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    for (std::size_t j = i + 1; j < accesses.size(); ++j) {
      if (!accesses[i].ext.overlaps(accesses[j].ext)) continue;
      if (!relevant(accesses[i], accesses[j], opts)) continue;
      pairs.push_back({i, j});
    }
  }
  canonicalize(pairs);
  return pairs;
}

std::vector<std::vector<bool>> overlap_rank_table(std::span<const Access> accesses,
                                                  int nranks) {
  std::vector table(static_cast<std::size_t>(nranks),
                    std::vector<bool>(static_cast<std::size_t>(nranks), false));
  for (const auto& p : detect_overlaps(accesses, {.writes_only = false})) {
    const auto ri = static_cast<std::size_t>(accesses[p.first].rank);
    const auto rj = static_cast<std::size_t>(accesses[p.second].rank);
    table[ri][rj] = true;
    table[rj][ri] = true;
  }
  return table;
}

}  // namespace pfsem::core
