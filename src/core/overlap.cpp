#include "pfsem/core/overlap.hpp"

#include <algorithm>

#include "pfsem/exec/pool.hpp"

namespace pfsem::core {

namespace {

/// Canonicalize so pair ordering is deterministic regardless of algorithm
/// (and of how many shards produced the pairs).
void canonicalize(std::vector<OverlapPair>& pairs) {
  for (auto& p : pairs) {
    if (p.first > p.second) std::swap(p.first, p.second);
  }
  std::sort(pairs.begin(), pairs.end(), [](const OverlapPair& a, const OverlapPair& b) {
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  });
}

bool relevant(const Access& a, const Access& b, const OverlapOptions& opts) {
  return !opts.writes_only || a.type == AccessType::Write ||
         b.type == AccessType::Write;
}

/// Indices of the non-empty extents, sorted by (begin, index). Empty
/// extents overlap nothing and are dropped here, before any engine runs.
std::vector<std::uint32_t> begin_order(std::span<const Access> accesses) {
  std::vector<std::uint32_t> order;
  order.reserve(accesses.size());
  for (std::uint32_t i = 0; i < accesses.size(); ++i) {
    if (!accesses[i].ext.empty()) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return accesses[a].ext.begin != accesses[b].ext.begin
               ? accesses[a].ext.begin < accesses[b].ext.begin
               : a < b;
  });
  return order;
}

/// Scan one active list against an incoming access: entries that ended
/// at or before `begin` are expired and compacted away; every survivor
/// overlaps the incoming access (its begin is <= ours, its end is past
/// ours) and emits a pair.
void scan_actives(std::span<const Access> accesses,
                  std::vector<std::uint32_t>& act, Offset begin,
                  std::uint32_t incoming, std::vector<OverlapPair>& out) {
  std::size_t keep = 0;
  for (const std::uint32_t j : act) {
    if (accesses[j].ext.end <= begin) continue;
    act[keep++] = j;
    out.push_back({j, incoming});
  }
  act.resize(keep);
}

/// Sweep the begin-sorted slice order[lo,hi), seeding the active sets
/// from the prefix order[0,lo). Emits exactly the pairs whose
/// later-sorted member lies in the slice, so disjoint slices partition
/// the full pair set — the unit of parallelism.
///
/// Reads and writes live in separate active lists: an incoming write
/// pairs with both, an incoming read only with the writes (when
/// writes_only is set), so read-read candidates are never visited.
void sweep_slice(std::span<const Access> accesses,
                 std::span<const std::uint32_t> order, std::size_t lo,
                 std::size_t hi, const OverlapOptions& opts,
                 std::vector<OverlapPair>& out) {
  if (lo >= hi) return;
  std::vector<std::uint32_t> active_w, active_r;
  if (lo > 0) {
    // Only prefix intervals still alive at the slice's first begin can
    // pair with anything in the slice.
    const Offset first_begin = accesses[order[lo]].ext.begin;
    for (std::size_t k = 0; k < lo; ++k) {
      const std::uint32_t j = order[k];
      if (accesses[j].ext.end <= first_begin) continue;
      (accesses[j].type == AccessType::Write ? active_w : active_r).push_back(j);
    }
  }
  for (std::size_t k = lo; k < hi; ++k) {
    const std::uint32_t idx = order[k];
    const Access& a = accesses[idx];
    const bool is_write = a.type == AccessType::Write;
    scan_actives(accesses, active_w, a.ext.begin, idx, out);
    if (is_write || !opts.writes_only) {
      scan_actives(accesses, active_r, a.ext.begin, idx, out);
    }
    (is_write ? active_w : active_r).push_back(idx);
  }
}

/// Slice bounds for splitting `n` sorted accesses into `shards` chunks.
std::vector<std::size_t> slice_bounds(std::size_t n, std::size_t shards) {
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  for (std::size_t s = 1; s < shards; ++s) bounds.push_back(n * s / shards);
  bounds.push_back(n);
  return bounds;
}

}  // namespace

std::vector<OverlapPair> detect_overlaps(std::span<const Access> accesses,
                                         OverlapOptions opts) {
  const auto order = begin_order(accesses);
  std::vector<OverlapPair> pairs;
  sweep_slice(accesses, order, 0, order.size(), opts, pairs);
  canonicalize(pairs);
  return pairs;
}

std::vector<OverlapPair> detect_overlaps(std::span<const Access> accesses,
                                         OverlapOptions opts,
                                         exec::ThreadPool& pool) {
  constexpr std::size_t kMinParallel = 4096;
  const auto order = begin_order(accesses);
  if (pool.size() <= 1 || order.size() < kMinParallel) {
    std::vector<OverlapPair> pairs;
    sweep_slice(accesses, order, 0, order.size(), opts, pairs);
    canonicalize(pairs);
    return pairs;
  }
  const auto shards = static_cast<std::size_t>(pool.size()) * 4;
  const auto bounds = slice_bounds(order.size(), shards);
  std::vector<std::vector<OverlapPair>> parts(shards);
  pool.parallel_for(shards, [&](std::size_t s) {
    sweep_slice(accesses, order, bounds[s], bounds[s + 1], opts, parts[s]);
  });
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<OverlapPair> pairs;
  pairs.reserve(total);
  for (const auto& p : parts) pairs.insert(pairs.end(), p.begin(), p.end());
  canonicalize(pairs);
  return pairs;
}

std::vector<OverlapPair> detect_overlaps_scan(std::span<const Access> accesses,
                                              OverlapOptions opts) {
  const auto order = begin_order(accesses);
  std::vector<OverlapPair> pairs;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Access& ai = accesses[order[i]];
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      const Access& aj = accesses[order[j]];
      if (aj.ext.begin >= ai.ext.end) break;  // sorted starts: no more overlaps
      if (!relevant(ai, aj, opts)) continue;
      pairs.push_back({order[i], order[j]});
    }
  }
  canonicalize(pairs);
  return pairs;
}

std::vector<OverlapPair> detect_overlaps_naive(std::span<const Access> accesses,
                                               OverlapOptions opts) {
  std::vector<OverlapPair> pairs;
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    for (std::size_t j = i + 1; j < accesses.size(); ++j) {
      if (!accesses[i].ext.overlaps(accesses[j].ext)) continue;
      if (!relevant(accesses[i], accesses[j], opts)) continue;
      pairs.push_back({i, j});
    }
  }
  canonicalize(pairs);
  return pairs;
}

std::vector<std::vector<OverlapPair>> detect_file_overlaps(
    const FlatAccessLog& flat, OverlapOptions opts, exec::ThreadPool& pool) {
  const std::size_t nfiles = flat.files.size();
  // Phase A: begin-sorted order per file.
  std::vector<std::vector<std::uint32_t>> orders(nfiles);
  pool.parallel_for(nfiles, [&](std::size_t f) {
    orders[f] = begin_order(flat.accesses(f));
  });
  // Task list: split each file into begin-sorted slices so one huge
  // file still fans out across the pool. Slice size targets ~4 tasks
  // per participant over the whole log, with a floor that keeps the
  // per-slice prefix rescan amortized.
  std::size_t total = 0;
  for (const auto& o : orders) total += o.size();
  // A single-participant pool gets one slice per file: threads=1 then
  // runs the pristine sequential sweep and stays a genuine oracle.
  const std::size_t chunk =
      pool.size() <= 1
          ? std::max<std::size_t>(total, 1)
          : std::max<std::size_t>(
                2048, total / (static_cast<std::size_t>(pool.size()) * 4) + 1);
  struct SliceTask {
    std::size_t file, lo, hi, slot;
  };
  std::vector<SliceTask> tasks;
  std::vector<std::size_t> first_slot(nfiles + 1, 0);
  for (std::size_t f = 0; f < nfiles; ++f) {
    first_slot[f] = tasks.size();
    const std::size_t n = orders[f].size();
    for (std::size_t lo = 0; lo < n; lo += chunk) {
      tasks.push_back({f, lo, std::min(n, lo + chunk), tasks.size()});
    }
    if (n == 0) tasks.push_back({f, 0, 0, tasks.size()});
  }
  first_slot[nfiles] = tasks.size();
  // Phase B: sweep every slice independently.
  std::vector<std::vector<OverlapPair>> slice_pairs(tasks.size());
  pool.parallel_for(tasks.size(), [&](std::size_t t) {
    const SliceTask& st = tasks[t];
    sweep_slice(flat.accesses(st.file), orders[st.file], st.lo, st.hi, opts,
                slice_pairs[st.slot]);
  });
  // Phase C: per file, concatenate its slices and canonicalize — the
  // deterministic reduction that makes shard count invisible.
  std::vector<std::vector<OverlapPair>> out(nfiles);
  pool.parallel_for(nfiles, [&](std::size_t f) {
    std::size_t count = 0;
    for (std::size_t s = first_slot[f]; s < first_slot[f + 1]; ++s) {
      count += slice_pairs[s].size();
    }
    out[f].reserve(count);
    for (std::size_t s = first_slot[f]; s < first_slot[f + 1]; ++s) {
      out[f].insert(out[f].end(), slice_pairs[s].begin(), slice_pairs[s].end());
    }
    canonicalize(out[f]);
  });
  return out;
}

FileOverlaps detect_file_overlaps(const AccessLog& log, OverlapOptions opts,
                                  int threads) {
  // Flat slices are built one per store slot, so the returned vector is
  // already indexed by FileId.
  const auto flat = FlatAccessLog::from(log);
  exec::ThreadPool pool(threads);
  return detect_file_overlaps(flat, opts, pool);
}

namespace {

/// Coalesce each rank's extents: sort by begin and merge runs of
/// exactly-contiguous (end == next begin) extents. A merged run tiles
/// its range with no gaps, so "overlaps the merged extent" is exactly
/// "overlaps some constituent" — no rank-pair bit changes — while long
/// per-rank consecutive streams collapse to a handful of segments.
/// Overlapping same-rank extents are deliberately NOT merged: their
/// mutual pair is what sets the diagonal table[r][r] bit.
std::vector<Access> coalesce_per_rank(std::span<const Access> accesses) {
  std::vector<Access> reduced(accesses.begin(), accesses.end());
  std::erase_if(reduced, [](const Access& a) { return a.ext.empty(); });
  std::sort(reduced.begin(), reduced.end(), [](const Access& a, const Access& b) {
    return a.rank != b.rank ? a.rank < b.rank : a.ext.begin < b.ext.begin;
  });
  std::size_t out = 0;
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    if (out > 0 && reduced[out - 1].rank == reduced[i].rank &&
        reduced[out - 1].ext.end == reduced[i].ext.begin) {
      reduced[out - 1].ext.end = reduced[i].ext.end;
    } else {
      reduced[out++] = reduced[i];
    }
  }
  reduced.resize(out);
  return reduced;
}

void fill_rank_table(std::span<const Access> accesses,
                     std::span<const OverlapPair> pairs,
                     std::vector<std::vector<bool>>& table) {
  for (const auto& p : pairs) {
    const auto ri = static_cast<std::size_t>(accesses[p.first].rank);
    const auto rj = static_cast<std::size_t>(accesses[p.second].rank);
    table[ri][rj] = true;
    table[rj][ri] = true;
  }
}

}  // namespace

std::vector<std::vector<bool>> overlap_rank_table(std::span<const Access> accesses,
                                                  int nranks) {
  std::vector table(static_cast<std::size_t>(nranks),
                    std::vector<bool>(static_cast<std::size_t>(nranks), false));
  const auto reduced = coalesce_per_rank(accesses);
  fill_rank_table(reduced, detect_overlaps(reduced, {.writes_only = false}),
                  table);
  return table;
}

std::vector<std::vector<bool>> overlap_rank_table(std::span<const Access> accesses,
                                                  std::span<const OverlapPair> pairs,
                                                  int nranks) {
  std::vector table(static_cast<std::size_t>(nranks),
                    std::vector<bool>(static_cast<std::size_t>(nranks), false));
  fill_rank_table(accesses, pairs, table);
  return table;
}

}  // namespace pfsem::core
