#include "pfsem/core/pattern.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "pfsem/exec/pool.hpp"

namespace pfsem::core {

const char* to_string(FileLayout l) {
  switch (l) {
    case FileLayout::Consecutive: return "consecutive";
    case FileLayout::Strided: return "strided";
    case FileLayout::StridedCyclic: return "strided-cyclic";
    case FileLayout::Random: return "random";
  }
  return "?";
}

namespace {

void count_transitions(TransitionMix& mix, const std::vector<const Access*>& seq) {
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const Offset prev_end = seq[i - 1]->ext.end;
    const Offset begin = seq[i]->ext.begin;
    if (begin == prev_end) {
      ++mix.consecutive;
    } else if (begin > prev_end) {
      ++mix.monotonic;
    } else {
      ++mix.random;
    }
  }
}

/// Data accesses of the file: metadata-sized ops filtered out, and only
/// the dominant access type kept (a verification read-back must not make
/// a write-streamed file look random, and vice versa). Falls back to the
/// unfiltered list if the filter removes everything.
std::vector<const Access*> data_accesses(const FileLog& file,
                                         const PatternOptions& opts) {
  std::uint64_t wbytes = 0, rbytes = 0;
  for (const auto& a : file.accesses) {
    if (a.ext.size() < opts.min_data_bytes) continue;
    (a.type == AccessType::Write ? wbytes : rbytes) += a.ext.size();
  }
  const AccessType dominant =
      wbytes >= rbytes ? AccessType::Write : AccessType::Read;
  std::vector<const Access*> out;
  for (const auto& a : file.accesses) {
    if (a.ext.size() >= opts.min_data_bytes && a.type == dominant) {
      out.push_back(&a);
    }
  }
  if (out.empty()) {
    for (const auto& a : file.accesses) out.push_back(&a);
  }
  return out;
}

/// True if every adjacent transition moves forward by at most `gap` bytes
/// (interspersed metadata is allowed to fill small gaps).
bool is_consecutive(const std::vector<const Access*>& seq, Offset gap = 0) {
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const Offset begin = seq[i]->ext.begin;
    const Offset prev_end = seq[i - 1]->ext.end;
    if (begin < prev_end || begin > prev_end + gap) return false;
  }
  return true;
}

bool is_monotonic(const std::vector<const Access*>& seq) {
  for (std::size_t i = 1; i < seq.size(); ++i) {
    if (seq[i]->ext.begin < seq[i - 1]->ext.end) return false;
  }
  return true;
}

/// All gaps between successive accesses equal (arithmetic progression of
/// starts with constant stride >= access size).
bool is_arithmetic(const std::vector<const Access*>& seq) {
  if (seq.size() < 2) return false;
  const auto stride = static_cast<std::int64_t>(seq[1]->ext.begin) -
                      static_cast<std::int64_t>(seq[0]->ext.begin);
  if (stride <= 0) return false;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const auto d = static_cast<std::int64_t>(seq[i]->ext.begin) -
                   static_cast<std::int64_t>(seq[i - 1]->ext.begin);
    if (d != stride) return false;
  }
  return true;
}

/// Offsets of one "round" (one access per rank), sorted by rank, equally
/// spaced — the paper's "process i accesses offset a*i+b" phase shape.
/// Returns the stride a, or 0 when the round is not affine.
std::int64_t round_stride(std::vector<std::pair<Rank, Offset>> round) {
  if (round.size() < 2) return 0;
  std::sort(round.begin(), round.end());
  const auto stride = static_cast<std::int64_t>(round[1].second) -
                      static_cast<std::int64_t>(round[0].second);
  if (stride <= 0) return 0;
  for (std::size_t i = 1; i < round.size(); ++i) {
    const auto d = static_cast<std::int64_t>(round[i].second) -
                   static_cast<std::int64_t>(round[i - 1].second);
    if (d != stride) return 0;
  }
  return stride;
}

}  // namespace

namespace {

/// Sum per-file TransitionMix partials computed on the pool. Addition is
/// commutative over exact integers, so any completion order yields the
/// identical aggregate.
TransitionMix sum_per_file(const AccessLog& log, int threads,
                           const std::function<TransitionMix(const FileLog&)>& per_file) {
  // One task per store slot (FileId); inactive slots contribute an empty
  // mix and integer sums make the merge order-invariant.
  std::vector<TransitionMix> parts(log.files.size());
  exec::parallel_for(threads, log.files.size(),
                     [&](std::size_t f) { parts[f] = per_file(log.files[f]); });
  TransitionMix mix;
  for (const auto& p : parts) mix += p;
  return mix;
}

}  // namespace

TransitionMix local_pattern(const AccessLog& log, int threads) {
  return sum_per_file(log, threads, [](const FileLog& file) {
    TransitionMix mix;
    std::map<Rank, std::vector<const Access*>> per_rank;
    for (const auto& a : file.accesses) per_rank[a.rank].push_back(&a);
    for (const auto& [rank, seq] : per_rank) count_transitions(mix, seq);
    return mix;
  });
}

TransitionMix global_pattern(const AccessLog& log, int threads) {
  return sum_per_file(log, threads, [](const FileLog& file) {
    TransitionMix mix;
    std::vector<const Access*> seq;
    seq.reserve(file.accesses.size());
    for (const auto& a : file.accesses) seq.push_back(&a);  // time order
    count_transitions(mix, seq);
    return mix;
  });
}

FileLayout classify_file_layout(const FileLog& file, PatternOptions opts) {
  const auto data = data_accesses(file, opts);
  if (data.size() < 2) return FileLayout::Consecutive;

  std::map<Rank, std::vector<const Access*>> per_rank;
  for (const auto* a : data) per_rank[a->rank].push_back(a);

  // Rule 1: every rank's own stream is consecutive (small metadata-fill
  // gaps tolerated). A single writer, or every rank covering the same
  // range, is the paper's "consecutive" class; per-process segments at
  // offset a*i+b (tiled or gapped) are its "strided" class.
  const Offset gap_tol = opts.consecutive_gap_tolerance;
  const bool all_rank_consecutive = std::all_of(
      per_rank.begin(), per_rank.end(),
      [gap_tol](const auto& kv) { return is_consecutive(kv.second, gap_tol); });
  if (all_rank_consecutive) {
    if (per_rank.size() == 1) return FileLayout::Consecutive;
    // Per-rank overall segments.
    std::vector<Extent> segs;
    for (const auto& [rank, seq] : per_rank) {
      segs.push_back({seq.front()->ext.begin, seq.back()->ext.end});
    }
    std::sort(segs.begin(), segs.end(),
              [](const Extent& a, const Extent& b) { return a.begin < b.begin; });
    const bool identical = std::all_of(
        segs.begin(), segs.end(), [&](const Extent& e) { return e == segs[0]; });
    if (identical) return FileLayout::Consecutive;  // e.g. everyone reads all
    bool disjoint = true;
    for (std::size_t i = 1; i < segs.size(); ++i) {
      if (segs[i].begin < segs[i - 1].end) {
        disjoint = false;
        break;
      }
    }
    if (disjoint) return FileLayout::Strided;  // one segment per process
  }

  // Rule 2: round structure — split the time-ordered stream each time a
  // rank repeats; affine rounds repeated over >= 2 rounds are the
  // collective-I/O "strided cyclic" shape, a single affine round is
  // "strided".
  {
    std::vector<std::vector<std::pair<Rank, Offset>>> rounds;
    std::set<Rank> seen;
    rounds.emplace_back();
    for (const auto* a : data) {
      if (seen.contains(a->rank)) {
        rounds.emplace_back();
        seen.clear();
      }
      seen.insert(a->rank);
      rounds.back().emplace_back(a->rank, a->ext.begin);
    }
    std::size_t multi = 0, affine = 0;
    std::int64_t common_stride = 0;
    bool strides_agree = true;
    for (auto& r : rounds) {
      if (r.size() < 2) continue;
      ++multi;
      const std::int64_t stride = round_stride(r);
      if (stride > 0) {
        ++affine;
        if (common_stride == 0) {
          common_stride = stride;
        } else if (stride != common_stride) {
          strides_agree = false;  // incidental affinity, not a cyclic phase
        }
      }
    }
    if (multi >= 2 && strides_agree && affine * 5 >= multi * 4) {
      return FileLayout::StridedCyclic;
    }
    if (multi == 1 && affine == 1 && rounds.size() <= 2) return FileLayout::Strided;
  }

  // Rule 3: per-rank arithmetic progressions (array-of-structs striding).
  if (std::all_of(per_rank.begin(), per_rank.end(), [](const auto& kv) {
        return kv.second.size() < 2 || is_arithmetic(kv.second) ||
               is_consecutive(kv.second);
      })) {
    return FileLayout::Strided;
  }

  // Rule 4: per-rank monotonic forward progress with irregular gaps
  // (independent-I/O FLASH), still "strided" in the paper's loose sense.
  if (std::all_of(per_rank.begin(), per_rank.end(),
                  [](const auto& kv) { return is_monotonic(kv.second); })) {
    return FileLayout::Strided;
  }

  return FileLayout::Random;
}

HighLevelPattern classify_high_level(const AccessLog& log, int nranks,
                                     PatternOptions opts) {
  // Group files into families: digit runs in the path are wildcards, so
  // "chk_0001" and "chk_0002" (or per-rank "out.17") are one family.
  auto family_key = [](std::string_view path) {
    std::string key;
    bool in_digits = false;
    for (char ch : path) {
      if (ch >= '0' && ch <= '9') {
        if (!in_digits) key += '#';
        in_digits = true;
      } else {
        key += ch;
        in_digits = false;
      }
    }
    return key;
  };

  struct Family {
    std::uint64_t bytes = 0;
    std::set<Rank> ranks;
    std::size_t max_writers_per_file = 0;
    std::size_t max_io_ranks_per_file = 0;
    int files = 0;
    FileId dominant = kNoFile;
    std::uint64_t dominant_bytes = 0;
  };
  // Families interned like paths: dense ids, Family slots in a vector.
  // Files are visited in path order (the retired map's iteration order),
  // so dominant-file ties resolve exactly as before.
  trace::PathTable family_keys;
  std::vector<Family> families;
  for (const FileId id : log.ids_by_path()) {
    const FileLog& file = log.files[id];
    const auto data = data_accesses(file, opts);
    std::uint64_t bytes = 0;
    std::set<Rank> writers, io_ranks;
    for (const auto* a : data) {
      bytes += a->ext.size();
      io_ranks.insert(a->rank);
      if (a->type == AccessType::Write) writers.insert(a->rank);
    }
    if (bytes == 0) continue;
    const FileId fam_id = family_keys.intern(family_key(log.path(id)));
    if (fam_id >= families.size()) families.resize(fam_id + 1);
    Family& fam = families[fam_id];
    fam.bytes += bytes;
    fam.ranks.insert(io_ranks.begin(), io_ranks.end());
    fam.max_writers_per_file = std::max(fam.max_writers_per_file, writers.size());
    fam.max_io_ranks_per_file =
        std::max(fam.max_io_ranks_per_file, io_ranks.size());
    ++fam.files;
    if (bytes > fam.dominant_bytes) {
      fam.dominant_bytes = bytes;
      fam.dominant = id;
    }
  }

  HighLevelPattern out;
  // Scan families in sorted-key order so byte-count ties pick the same
  // family the string-keyed map did.
  std::vector<FileId> fam_order(families.size());
  for (FileId i = 0; i < families.size(); ++i) fam_order[i] = i;
  std::sort(fam_order.begin(), fam_order.end(), [&](FileId a, FileId b) {
    return family_keys.view(a) < family_keys.view(b);
  });
  const Family* best = nullptr;
  for (const FileId i : fam_order) {
    if (!best || families[i].bytes > best->bytes) best = &families[i];
  }
  if (!best || best->dominant == kNoFile) {
    out.xy = "0-0";
    return out;
  }

  const auto w = static_cast<int>(best->ranks.size());
  const char x = w == nranks ? 'N' : (w == 1 ? '1' : 'M');
  // Sharing shape: per-process files vs one shared file vs group files.
  const std::size_t per_file =
      std::max<std::size_t>(best->max_writers_per_file, 1);
  char y;
  if (per_file <= 1 && best->max_io_ranks_per_file <= 1) {
    y = x;  // matching per-process files: N-N / M-M / 1-1
  } else if (best->max_io_ranks_per_file >= best->ranks.size()) {
    y = '1';  // every participating rank shares each file
  } else {
    y = 'M';  // group files
  }
  out.xy = std::string(1, x) + "-" + std::string(1, y);
  out.layout = classify_file_layout(log.files[best->dominant], opts);
  out.io_ranks = w;
  out.family_files = best->files;
  out.dominant_file = std::string(log.path(best->dominant));
  return out;
}

}  // namespace pfsem::core
