#include "pfsem/core/prefetch.hpp"

#include <map>
#include <vector>

namespace pfsem::core {

namespace {

/// Streaming read-ahead policy over one access sequence.
struct ReadAhead {
  Extent window;  // currently-prefetched range
  std::uint64_t reads = 0, hits = 0;

  void read(const Extent& e, Offset readahead) {
    ++reads;
    if (window.contains(e)) {
      ++hits;
      // Sequential streams keep the window sliding forward.
      if (e.end + readahead / 2 > window.end) {
        window = {e.end, e.end + readahead};
      }
      return;
    }
    window = {e.end, e.end + readahead};  // miss: refill behind the read
  }
};

/// Write-back aggregation over one access sequence.
struct Aggregator {
  Extent buffer;  // pending contiguous dirty range
  std::uint64_t writes = 0, flushes = 0;

  void write(const Extent& e, Offset capacity) {
    ++writes;
    if (buffer.empty()) {
      buffer = e;
      return;
    }
    if (e.begin == buffer.end && buffer.size() + e.size() <= capacity) {
      buffer.end = e.end;  // extend the pending run
      return;
    }
    ++flushes;  // non-contiguous (or full): the PFS sees one request
    buffer = e;
  }
  void finish() {
    if (!buffer.empty()) ++flushes;
  }
};

}  // namespace

CacheBenefit estimate_cache_benefit(const AccessLog& log,
                                    CacheModelOptions opts) {
  CacheBenefit out;
  for (const auto& fl : log.files) {
    // Client side: per-rank sequences.
    std::map<Rank, std::vector<const Access*>> per_rank;
    for (const auto& a : fl.accesses) per_rank[a.rank].push_back(&a);
    for (const auto& [rank, seq] : per_rank) {
      ReadAhead ra;
      Aggregator agg;
      for (const auto* a : seq) {
        if (a->type == AccessType::Read) {
          ra.read(a->ext, opts.readahead_window);
        } else {
          agg.write(a->ext, opts.aggregation_buffer);
        }
      }
      agg.finish();
      out.client_reads += ra.reads;
      out.client_hits += ra.hits;
      out.writes += agg.writes;
      out.write_flushes += agg.flushes;
    }
    // Server side: global time order sees the interleaving of all ranks.
    ReadAhead server;
    for (const auto& a : fl.accesses) {
      if (a.type == AccessType::Read) {
        server.read(a.ext, opts.readahead_window);
      }
    }
    out.server_reads += server.reads;
    out.server_hits += server.hits;
  }
  return out;
}

}  // namespace pfsem::core
