#include "pfsem/core/happens_before.hpp"

#include <algorithm>

#include "pfsem/exec/pool.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::core {

namespace {

/// Merge key: the global position of an event is approximated by its
/// latest participant exit; the simulator emits events in completion
/// order, so this reconstructs a causally consistent processing order
/// (clock skew is orders of magnitude below event spacing, Section 5.2).
struct MergedEvent {
  SimTime completion;
  bool is_p2p;
  std::size_t index;
};

}  // namespace

HappensBefore::HappensBefore(const trace::CommLog& comm, int nranks)
    : timeline_(static_cast<std::size_t>(nranks)), nranks_(nranks) {
  std::vector<MergedEvent> events;
  events.reserve(comm.p2p.size() + comm.collectives.size());
  for (std::size_t i = 0; i < comm.p2p.size(); ++i) {
    events.push_back({comm.p2p[i].t_recv_end, true, i});
  }
  for (std::size_t i = 0; i < comm.collectives.size(); ++i) {
    SimTime done = 0;
    for (const auto& a : comm.collectives[i].arrivals) {
      done = std::max(done, a.t_exit);
    }
    events.push_back({done, false, i});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     return a.completion < b.completion;
                   });

  std::vector<Clock> cur(static_cast<std::size_t>(nranks),
                         Clock(static_cast<std::size_t>(nranks), 0));
  std::vector<std::uint32_t> seq(static_cast<std::size_t>(nranks), 0);

  auto push_node = [&](Rank r, SimTime t_enter, SimTime t_exit) {
    auto& s = seq[static_cast<std::size_t>(r)];
    ++s;
    auto& c = cur[static_cast<std::size_t>(r)];
    c[static_cast<std::size_t>(r)] = s;
    timeline_[static_cast<std::size_t>(r)].push_back(
        Node{r, t_enter, t_exit, s, c});
  };
  auto join = [&](Rank into, const Clock& from) {
    auto& c = cur[static_cast<std::size_t>(into)];
    for (std::size_t k = 0; k < c.size(); ++k) c[k] = std::max(c[k], from[k]);
  };

  for (const auto& ev : events) {
    if (ev.is_p2p) {
      const auto& p = comm.p2p[ev.index];
      require(p.src >= 0 && p.src < nranks && p.dst >= 0 && p.dst < nranks,
              "p2p event rank out of range");
      push_node(p.src, p.t_send_start, p.t_send_end);
      join(p.dst, cur[static_cast<std::size_t>(p.src)]);
      push_node(p.dst, p.t_recv_start, p.t_recv_end);
    } else {
      const auto& c = comm.collectives[ev.index];
      using K = trace::CollectiveKind;
      const bool root_releases = c.kind == K::Bcast || c.kind == K::Scatter;
      const bool root_acquires = c.kind == K::Reduce || c.kind == K::Gather;
      // The participation node of a releasing rank must itself be visible
      // to acquirers (its seq is what ordered() compares against), so
      // releasers' nodes are pushed before acquirers join.
      if (root_releases) {
        for (const auto& a : c.arrivals) {
          if (a.rank == c.root) push_node(a.rank, a.t_enter, a.t_exit);
        }
        const Clock root_clock = cur[static_cast<std::size_t>(c.root)];
        for (const auto& a : c.arrivals) {
          if (a.rank == c.root) continue;
          join(a.rank, root_clock);
          push_node(a.rank, a.t_enter, a.t_exit);
        }
      } else if (root_acquires) {
        for (const auto& a : c.arrivals) {
          if (a.rank != c.root) push_node(a.rank, a.t_enter, a.t_exit);
        }
        Clock merged = cur[static_cast<std::size_t>(c.root)];
        for (const auto& a : c.arrivals) {
          const auto& rc = cur[static_cast<std::size_t>(a.rank)];
          for (std::size_t k = 0; k < merged.size(); ++k) {
            merged[k] = std::max(merged[k], rc[k]);
          }
        }
        join(c.root, merged);
        for (const auto& a : c.arrivals) {
          if (a.rank == c.root) push_node(a.rank, a.t_enter, a.t_exit);
        }
      } else {
        // Rootless: everyone releases and acquires. Assign every
        // participant its event seq first, merge, then store the merged
        // clock on every node.
        for (const auto& a : c.arrivals) {
          auto& s = seq[static_cast<std::size_t>(a.rank)];
          ++s;
          cur[static_cast<std::size_t>(a.rank)][static_cast<std::size_t>(a.rank)] = s;
        }
        Clock merged(static_cast<std::size_t>(nranks), 0);
        for (const auto& a : c.arrivals) {
          const auto& rc = cur[static_cast<std::size_t>(a.rank)];
          for (std::size_t k = 0; k < merged.size(); ++k) {
            merged[k] = std::max(merged[k], rc[k]);
          }
        }
        for (const auto& a : c.arrivals) {
          cur[static_cast<std::size_t>(a.rank)] = merged;
          timeline_[static_cast<std::size_t>(a.rank)].push_back(
              Node{a.rank, a.t_enter, a.t_exit,
                   seq[static_cast<std::size_t>(a.rank)], merged});
        }
      }
    }
  }
}

bool HappensBefore::ordered(Rank r1, SimTime t1, Rank r2, SimTime t2) const {
  if (r1 == r2) return t1 <= t2;
  require(r1 >= 0 && r1 < nranks_ && r2 >= 0 && r2 < nranks_,
          "ordered(): rank out of range");
  const auto& tl1 = timeline_[static_cast<std::size_t>(r1)];
  const auto& tl2 = timeline_[static_cast<std::size_t>(r2)];
  // First release on r1 entering at/after t1.
  auto rel = std::lower_bound(
      tl1.begin(), tl1.end(), t1,
      [](const Node& n, SimTime t) { return n.t_enter < t; });
  if (rel == tl1.end()) return false;
  // Last acquire on r2 exiting at/before t2.
  auto acq = std::upper_bound(
      tl2.begin(), tl2.end(), t2,
      [](SimTime t, const Node& n) { return t < n.t_exit; });
  if (acq == tl2.begin()) return false;
  --acq;
  return acq->clock[static_cast<std::size_t>(r1)] >= rel->seq;
}

RaceCheck validate_synchronization(const ConflictReport& report,
                                   const HappensBefore& hb, int threads) {
  const auto& conflicts = report.conflicts;
  const int nthreads = exec::resolve_threads(threads);
  const std::size_t chunks =
      std::min<std::size_t>(conflicts.size(),
                            static_cast<std::size_t>(nthreads) * 4);
  RaceCheck rc;
  if (chunks == 0) return rc;
  std::vector<RaceCheck> parts(chunks);
  exec::parallel_for(nthreads, chunks, [&](std::size_t ch) {
    const std::size_t lo = conflicts.size() * ch / chunks;
    const std::size_t hi = conflicts.size() * (ch + 1) / chunks;
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& c = conflicts[i];
      ++parts[ch].checked;
      if (hb.ordered(c.first.rank, c.first.t, c.second.rank, c.second.t)) {
        ++parts[ch].synchronized;
      } else {
        ++parts[ch].racy;
      }
    }
  });
  for (const auto& p : parts) {
    rc.checked += p.checked;
    rc.synchronized += p.synchronized;
    rc.racy += p.racy;
  }
  return rc;
}

}  // namespace pfsem::core
