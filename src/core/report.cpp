#include "pfsem/core/report.hpp"

#include <algorithm>
#include <bit>
#include <ostream>
#include <span>

#include "pfsem/exec/pool.hpp"
#include "pfsem/util/table.hpp"

namespace pfsem::core {

void SizeHistogram::add(std::uint64_t size) {
  const std::size_t k =
      size <= 1 ? 0
                : std::min<std::size_t>(kBuckets - 1,
                                        static_cast<std::size_t>(
                                            std::bit_width(size) - 1));
  ++counts[k];
}

std::uint64_t SizeHistogram::total() const {
  std::uint64_t n = 0;
  for (auto c : counts) n += c;
  return n;
}

std::string SizeHistogram::bucket_label(std::size_t k) {
  auto human = [](std::uint64_t v) {
    if (v >= (1ull << 30)) return std::to_string(v >> 30) + "GiB";
    if (v >= (1ull << 20)) return std::to_string(v >> 20) + "MiB";
    if (v >= (1ull << 10)) return std::to_string(v >> 10) + "KiB";
    return std::to_string(v) + "B";
  };
  if (k == 0) return "0B-2B";
  if (k == kBuckets - 1) return ">=" + human(1ull << k);
  return human(1ull << k) + "-" + human(1ull << (k + 1));
}

void RecordStats::feed(const trace::Record& rec) {
  ++function_counts[rec.func];
  ++layer_counts[rec.layer];
  lo = std::min(lo, rec.tstart);
  hi = std::max(hi, rec.tend);
  if (rec.layer != trace::Layer::Posix) return;
  switch (rec.func) {
    case trace::Func::read:
    case trace::Func::pread:
      read_sizes.add(static_cast<std::uint64_t>(rec.ret));
      break;
    case trace::Func::write:
    case trace::Func::pwrite:
      write_sizes.add(static_cast<std::uint64_t>(rec.ret));
      break;
    default:
      break;
  }
}

void RecordStats::merge(const RecordStats& p) {
  for (const auto& [f, n] : p.function_counts) function_counts[f] += n;
  for (const auto& [l, n] : p.layer_counts) layer_counts[l] += n;
  for (std::size_t k = 0; k < SizeHistogram::kBuckets; ++k) {
    read_sizes.counts[k] += p.read_sizes.counts[k];
    write_sizes.counts[k] += p.write_sizes.counts[k];
  }
  lo = std::min(lo, p.lo);
  hi = std::max(hi, p.hi);
}

RunReport build_report(const trace::TraceBundle& bundle, const AccessLog& log,
                       const ConflictReport& conflicts, int threads) {
  const int nthreads = exec::resolve_threads(threads);
  const std::size_t chunks = std::min<std::size_t>(
      bundle.records.size(), static_cast<std::size_t>(nthreads) * 4);
  RecordStats stats;
  if (chunks > 0) {
    std::vector<RecordStats> parts(chunks);
    exec::parallel_for(nthreads, chunks, [&](std::size_t ch) {
      const std::size_t lo = bundle.records.size() * ch / chunks;
      const std::size_t hi = bundle.records.size() * (ch + 1) / chunks;
      for (const auto& rec : std::span(bundle.records).subspan(lo, hi - lo)) {
        parts[ch].feed(rec);
      }
    });
    for (auto& p : parts) stats.merge(p);
  }
  return assemble_report(std::move(stats), bundle.records.size(),
                         bundle.nranks, log, conflicts, threads);
}

RunReport assemble_report(RecordStats stats, std::uint64_t records,
                          int nranks, const AccessLog& log,
                          const ConflictReport& conflicts, int threads) {
  RunReport rep;
  rep.nranks = nranks;
  rep.records = records;
  const int nthreads = exec::resolve_threads(threads);
  rep.function_counts = std::move(stats.function_counts);
  rep.layer_counts = std::move(stats.layer_counts);
  rep.read_sizes = stats.read_sizes;
  rep.write_sizes = stats.write_sizes;
  rep.span = rep.records > 0 ? stats.hi - stats.lo : 0;

  // Per-file summaries are independent; compute into FileId-indexed
  // slots and insert into the (path-sorted, user-facing) map afterwards.
  const std::vector<FileId> ids = log.active_ids();
  std::vector<FileReport> file_parts(ids.size());
  exec::parallel_for(nthreads, ids.size(), [&](std::size_t f) {
    const FileLog& fl = log.files[ids[f]];
    FileReport fr;
    fr.path = std::string(log.path(ids[f]));
    for (const auto& a : fl.accesses) {
      if (a.type == AccessType::Read) {
        ++fr.reads;
        fr.read_bytes += a.ext.size();
      } else {
        ++fr.writes;
        fr.write_bytes += a.ext.size();
      }
    }
    fr.layout = classify_file_layout(fl);
    file_parts[f] = std::move(fr);
  });
  std::vector<FileReport*> by_id(log.files.size(), nullptr);
  for (std::size_t f = 0; f < file_parts.size(); ++f) {
    FileReport& slot = rep.files[file_parts[f].path];
    slot = std::move(file_parts[f]);
    by_id[ids[f]] = &slot;
  }
  for (const auto& c : conflicts.conflicts) {
    if (c.file == kNoFile || c.file >= by_id.size() || !by_id[c.file]) continue;
    by_id[c.file]->session_conflicts += c.under_session ? 1 : 0;
    by_id[c.file]->commit_conflicts += c.under_commit ? 1 : 0;
  }
  rep.pattern = classify_high_level(log, nranks);
  rep.local = local_pattern(log, threads);
  rep.global = global_pattern(log, threads);
  return rep;
}

void print_report(const RunReport& rep, std::ostream& os) {
  os << "== run report ==\n"
     << "ranks: " << rep.nranks << "   records: " << rep.records
     << "   traced span: " << fmt(to_seconds(rep.span), 3) << " s\n"
     << "pattern: " << rep.pattern.xy << " " << to_string(rep.pattern.layout)
     << "\n"
     << "transitions local c/m/r: " << fmt_pct(rep.local.frac_consecutive())
     << "/" << fmt_pct(rep.local.frac_monotonic()) << "/"
     << fmt_pct(rep.local.frac_random())
     << "   global: " << fmt_pct(rep.global.frac_consecutive()) << "/"
     << fmt_pct(rep.global.frac_monotonic()) << "/"
     << fmt_pct(rep.global.frac_random()) << "\n";

  os << "\nfunction counters:\n";
  Table fc({"function", "layer-of-call", "count"});
  for (const auto& [func, count] : rep.function_counts) {
    // Layer shown is the function's own API layer.
    fc.add_row({std::string(trace::to_string(func)), "", std::to_string(count)});
  }
  fc.print(os);

  os << "\nrequest sizes:\n";
  Table hist({"bucket", "reads", "writes"});
  for (std::size_t k = 0; k < SizeHistogram::kBuckets; ++k) {
    if (rep.read_sizes.counts[k] == 0 && rep.write_sizes.counts[k] == 0) {
      continue;
    }
    hist.add_row({SizeHistogram::bucket_label(k),
                  std::to_string(rep.read_sizes.counts[k]),
                  std::to_string(rep.write_sizes.counts[k])});
  }
  hist.print(os);

  os << "\nper-file summary:\n";
  Table files({"file", "reads", "writes", "read bytes", "write bytes",
               "layout", "session conf.", "commit conf."});
  for (const auto& [path, fr] : rep.files) {
    files.add_row({path, std::to_string(fr.reads), std::to_string(fr.writes),
                   std::to_string(fr.read_bytes),
                   std::to_string(fr.write_bytes),
                   std::string(to_string(fr.layout)),
                   std::to_string(fr.session_conflicts),
                   std::to_string(fr.commit_conflicts)});
  }
  files.print(os);

  if (rep.degraded) {
    os << "\n";
    print_degraded(*rep.degraded, os);
  }

  if (rep.obs_summary) {
    os << "\n" << *rep.obs_summary;
  }
}

void print_degraded(const DegradedSummary& d, std::ostream& os) {
  os << "== degraded mode ==\n";
  Table t({"counter", "value"});
  t.add_row({"transient faults injected", std::to_string(d.faults_injected)});
  t.add_row({"  of which EIO", std::to_string(d.faults_eio)});
  t.add_row({"  of which ENOSPC", std::to_string(d.faults_enospc)});
  t.add_row({"retries consumed", std::to_string(d.retries)});
  t.add_row({"give-ups (budget exhausted)", std::to_string(d.giveups)});
  t.add_row({"MPI messages dropped", std::to_string(d.mpi_drops)});
  t.add_row({"transfers slowed (OST)", std::to_string(d.slowed_transfers)});
  t.add_row({"writes delayed (visibility)", std::to_string(d.delayed_writes)});
  t.add_row({"writes lost to crashes", std::to_string(d.writes_lost)});
  std::string ranks;
  for (const int r : d.crashed_ranks) {
    if (!ranks.empty()) ranks += ", ";
    ranks += std::to_string(r);
  }
  t.add_row({"ranks crashed", ranks.empty() ? "none" : ranks});
  t.print(os);
  if (d.server_crashes > 0 || d.server_restarts > 0) {
    os << "\n== server fault domains ==\n";
    Table s({"counter", "value"});
    std::string names;
    for (const std::string& n : d.crashed_servers) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    s.add_row({"servers crashed", names.empty() ? "none" : names});
    s.add_row({"server restarts", std::to_string(d.server_restarts)});
    s.add_row({"MDS failovers (standby promoted)",
               std::to_string(d.mds_failovers)});
    s.add_row({"client ops redirected", std::to_string(d.failover_redirects)});
    s.add_row({"degraded reads (holes over dead OSTs)",
               std::to_string(d.degraded_reads)});
    s.print(os);
    os << "surviving semantics: metadata ops ride promoted standby replicas; "
          "reads over a dead data server return holes (degraded reads); "
          "writes stay durable via client write-behind\n";
  }
  os << (d.analysis_truncated()
             ? "analysis: TRUNCATED (at least one rank crashed; per-file "
               "counters and conflicts describe a partial run)\n"
             : "analysis: valid (no rank crashed; faults were absorbed)\n");
}

}  // namespace pfsem::core
