#include "pfsem/core/report.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "pfsem/util/table.hpp"

namespace pfsem::core {

void SizeHistogram::add(std::uint64_t size) {
  const std::size_t k =
      size <= 1 ? 0
                : std::min<std::size_t>(kBuckets - 1,
                                        static_cast<std::size_t>(
                                            std::bit_width(size) - 1));
  ++counts[k];
}

std::uint64_t SizeHistogram::total() const {
  std::uint64_t n = 0;
  for (auto c : counts) n += c;
  return n;
}

std::string SizeHistogram::bucket_label(std::size_t k) {
  auto human = [](std::uint64_t v) {
    if (v >= (1ull << 30)) return std::to_string(v >> 30) + "GiB";
    if (v >= (1ull << 20)) return std::to_string(v >> 20) + "MiB";
    if (v >= (1ull << 10)) return std::to_string(v >> 10) + "KiB";
    return std::to_string(v) + "B";
  };
  if (k == 0) return "0B-2B";
  if (k == kBuckets - 1) return ">=" + human(1ull << k);
  return human(1ull << k) + "-" + human(1ull << (k + 1));
}

RunReport build_report(const trace::TraceBundle& bundle, const AccessLog& log,
                       const ConflictReport& conflicts) {
  RunReport rep;
  rep.nranks = bundle.nranks;
  rep.records = bundle.records.size();
  SimTime lo = kTimeNever, hi = 0;
  for (const auto& rec : bundle.records) {
    ++rep.function_counts[rec.func];
    ++rep.layer_counts[rec.layer];
    lo = std::min(lo, rec.tstart);
    hi = std::max(hi, rec.tend);
    if (rec.layer != trace::Layer::Posix) continue;
    switch (rec.func) {
      case trace::Func::read:
      case trace::Func::pread:
        rep.read_sizes.add(static_cast<std::uint64_t>(rec.ret));
        break;
      case trace::Func::write:
      case trace::Func::pwrite:
        rep.write_sizes.add(static_cast<std::uint64_t>(rec.ret));
        break;
      default:
        break;
    }
  }
  rep.span = rep.records > 0 ? hi - lo : 0;

  for (const auto& [path, fl] : log.files) {
    FileReport fr;
    fr.path = path;
    for (const auto& a : fl.accesses) {
      if (a.type == AccessType::Read) {
        ++fr.reads;
        fr.read_bytes += a.ext.size();
      } else {
        ++fr.writes;
        fr.write_bytes += a.ext.size();
      }
    }
    fr.layout = classify_file_layout(fl);
    rep.files[path] = std::move(fr);
  }
  for (const auto& c : conflicts.conflicts) {
    auto it = rep.files.find(c.path);
    if (it == rep.files.end()) continue;
    it->second.session_conflicts += c.under_session ? 1 : 0;
    it->second.commit_conflicts += c.under_commit ? 1 : 0;
  }
  rep.pattern = classify_high_level(log, bundle.nranks);
  rep.local = local_pattern(log);
  rep.global = global_pattern(log);
  return rep;
}

void print_report(const RunReport& rep, std::ostream& os) {
  os << "== run report ==\n"
     << "ranks: " << rep.nranks << "   records: " << rep.records
     << "   traced span: " << fmt(to_seconds(rep.span), 3) << " s\n"
     << "pattern: " << rep.pattern.xy << " " << to_string(rep.pattern.layout)
     << "\n"
     << "transitions local c/m/r: " << fmt_pct(rep.local.frac_consecutive())
     << "/" << fmt_pct(rep.local.frac_monotonic()) << "/"
     << fmt_pct(rep.local.frac_random())
     << "   global: " << fmt_pct(rep.global.frac_consecutive()) << "/"
     << fmt_pct(rep.global.frac_monotonic()) << "/"
     << fmt_pct(rep.global.frac_random()) << "\n";

  os << "\nfunction counters:\n";
  Table fc({"function", "layer-of-call", "count"});
  for (const auto& [func, count] : rep.function_counts) {
    // Layer shown is the function's own API layer.
    fc.add_row({std::string(trace::to_string(func)), "", std::to_string(count)});
  }
  fc.print(os);

  os << "\nrequest sizes:\n";
  Table hist({"bucket", "reads", "writes"});
  for (std::size_t k = 0; k < SizeHistogram::kBuckets; ++k) {
    if (rep.read_sizes.counts[k] == 0 && rep.write_sizes.counts[k] == 0) {
      continue;
    }
    hist.add_row({SizeHistogram::bucket_label(k),
                  std::to_string(rep.read_sizes.counts[k]),
                  std::to_string(rep.write_sizes.counts[k])});
  }
  hist.print(os);

  os << "\nper-file summary:\n";
  Table files({"file", "reads", "writes", "read bytes", "write bytes",
               "layout", "session conf.", "commit conf."});
  for (const auto& [path, fr] : rep.files) {
    files.add_row({path, std::to_string(fr.reads), std::to_string(fr.writes),
                   std::to_string(fr.read_bytes),
                   std::to_string(fr.write_bytes),
                   std::string(to_string(fr.layout)),
                   std::to_string(fr.session_conflicts),
                   std::to_string(fr.commit_conflicts)});
  }
  files.print(os);

  if (rep.degraded) {
    os << "\n";
    print_degraded(*rep.degraded, os);
  }
}

void print_degraded(const DegradedSummary& d, std::ostream& os) {
  os << "== degraded mode ==\n";
  Table t({"counter", "value"});
  t.add_row({"transient faults injected", std::to_string(d.faults_injected)});
  t.add_row({"  of which EIO", std::to_string(d.faults_eio)});
  t.add_row({"  of which ENOSPC", std::to_string(d.faults_enospc)});
  t.add_row({"retries consumed", std::to_string(d.retries)});
  t.add_row({"give-ups (budget exhausted)", std::to_string(d.giveups)});
  t.add_row({"MPI messages dropped", std::to_string(d.mpi_drops)});
  t.add_row({"transfers slowed (OST)", std::to_string(d.slowed_transfers)});
  t.add_row({"writes delayed (visibility)", std::to_string(d.delayed_writes)});
  t.add_row({"writes lost to crashes", std::to_string(d.writes_lost)});
  std::string ranks;
  for (const int r : d.crashed_ranks) {
    if (!ranks.empty()) ranks += ", ";
    ranks += std::to_string(r);
  }
  t.add_row({"ranks crashed", ranks.empty() ? "none" : ranks});
  t.print(os);
  os << (d.analysis_truncated()
             ? "analysis: TRUNCATED (at least one rank crashed; per-file "
               "counters and conflicts describe a partial run)\n"
             : "analysis: valid (no rank crashed; faults were absorbed)\n");
}

}  // namespace pfsem::core
