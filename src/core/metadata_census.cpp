#include "pfsem/core/metadata_census.hpp"

namespace pfsem::core {

MetadataCensus census_metadata(const trace::TraceBundle& bundle) {
  MetadataCensus census;
  for (const auto& rec : bundle.records) {
    if (rec.layer != trace::Layer::Posix) continue;
    if (!trace::is_metadata_func(rec.func)) continue;
    ++census.usage[rec.func][rec.origin];
  }
  return census;
}

const std::vector<trace::Func>& monitored_metadata_funcs() {
  using trace::Func;
  static const std::vector<Func> funcs = {
      Func::mmap,    Func::msync,   Func::stat,     Func::lstat,
      Func::fstat,   Func::getcwd,  Func::mkdir,    Func::rmdir,
      Func::chdir,   Func::link,    Func::unlink,   Func::symlink,
      Func::readlink, Func::rename, Func::chmod,    Func::chown,
      Func::utime,   Func::opendir, Func::readdir,  Func::closedir,
      Func::rewinddir, Func::mknod, Func::fcntl,    Func::dup,
      Func::dup2,    Func::pipe,    Func::mkfifo,   Func::umask,
      Func::fileno,  Func::access,  Func::tmpfile,  Func::remove,
      Func::truncate, Func::ftruncate,
  };
  return funcs;
}

}  // namespace pfsem::core
