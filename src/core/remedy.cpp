#include "pfsem/core/remedy.hpp"

#include <algorithm>
#include <map>

#include "pfsem/core/overlap.hpp"

namespace pfsem::core {

namespace {

/// An open window (after, before) in which a commit by (rank, path)
/// clears one conflicting pair.
struct Window {
  SimTime after;
  SimTime before;
};

/// The conflicting pairs of one file, as commit windows per first-rank.
void collect_windows(const FileLog& fl, bool strict,
                     std::map<Rank, std::vector<Window>>& windows,
                     std::uint64_t& uncoverable) {
  for (const auto& p : detect_overlaps(fl.accesses)) {
    const Access* a = &fl.accesses[p.first];
    const Access* b = &fl.accesses[p.second];
    if (b->t < a->t || (b->t == a->t && b->rank < a->rank)) std::swap(a, b);
    if (a->type != AccessType::Write) continue;
    const bool same = a->rank == b->rank;
    if (same && !strict) continue;
    const bool commit_conflict = a->t_commit > b->t;
    if (!commit_conflict) continue;
    if (a->t + 1 >= b->t) {
      ++uncoverable;  // no room to insert anything between the accesses
      continue;
    }
    windows[a->rank].push_back({a->t, b->t});
  }
}

}  // namespace

RemedyPlan suggest_commits(const AccessLog& log, RemedyOptions opts) {
  RemedyPlan plan;
  // Suggestions are user-facing and promised in path order.
  for (const FileId id : log.ids_by_path()) {
    const FileLog& fl = log.files[id];
    const std::string path{log.path(id)};
    std::map<Rank, std::vector<Window>> windows;
    collect_windows(fl, opts.strict, windows, plan.uncoverable);
    for (auto& [rank, v] : windows) {
      // Greedy 1-D stabbing: sort by window end; one commit just before
      // the earliest uncovered end clears every window containing it.
      std::sort(v.begin(), v.end(), [](const Window& x, const Window& y) {
        return x.before < y.before;
      });
      std::size_t i = 0;
      while (i < v.size()) {
        CommitSuggestion s;
        s.path = path;
        s.rank = rank;
        s.before = v[i].before;
        s.after = v[i].after;
        s.pairs_cleared = 0;
        // Cover every later window that still contains an *integer*
        // stabbing point strictly inside (s.after, s.before): the point
        // s.after + 1 must stay below this window's `before` bound and
        // above its `after`.
        for (; i < v.size() && v[i].after + 1 < s.before; ++i) {
          s.after = std::max(s.after, v[i].after);
          ++s.pairs_cleared;
        }
        plan.commits.push_back(std::move(s));
      }
    }
  }
  return plan;
}

ConflictMatrix verify_plan(const AccessLog& log, const RemedyPlan& plan,
                           RemedyOptions opts) {
  // Augment the per-(file, rank) commit tables with the suggested points
  // and re-evaluate condition 3. Suggestions carry display paths; resolve
  // them back to ids once, so the lookup below is id-keyed.
  std::map<std::pair<FileId, Rank>, std::vector<SimTime>> inserted;
  for (const auto& s : plan.commits) {
    const FileId id = log.paths.find(s.path);
    if (id == kNoFile) continue;
    // s.after + 1 is strictly inside every covered window by construction.
    inserted[{id, s.rank}].push_back(s.after + 1);
  }
  for (auto& [key, v] : inserted) std::sort(v.begin(), v.end());

  ConflictMatrix out;
  for (const FileId id : log.active_ids()) {
    const FileLog& fl = log.files[id];
    for (const auto& p : detect_overlaps(fl.accesses)) {
      const Access* a = &fl.accesses[p.first];
      const Access* b = &fl.accesses[p.second];
      if (b->t < a->t || (b->t == a->t && b->rank < a->rank)) std::swap(a, b);
      if (a->type != AccessType::Write) continue;
      const bool same = a->rank == b->rank;
      if (same && !opts.strict) continue;
      bool conflict = a->t_commit > b->t;
      if (conflict) {
        auto it = inserted.find({id, a->rank});
        if (it != inserted.end()) {
          auto ub = std::upper_bound(it->second.begin(), it->second.end(), a->t);
          if (ub != it->second.end() && *ub < b->t) conflict = false;
        }
      }
      if (!conflict) continue;
      ++out.count;
      const ConflictKind kind =
          b->type == AccessType::Write ? ConflictKind::WAW : ConflictKind::RAW;
      if (kind == ConflictKind::WAW) {
        (same ? out.waw_s : out.waw_d) = true;
      } else {
        (same ? out.raw_s : out.raw_d) = true;
      }
    }
  }
  return out;
}

}  // namespace pfsem::core
