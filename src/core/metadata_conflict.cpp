#include "pfsem/core/metadata_conflict.hpp"

#include <algorithm>

namespace pfsem::core {

namespace {

using trace::Func;

/// Does this record mutate the namespace? An open with O_CREAT mutates
/// only when it actually created the file — we approximate "created" as
/// "first successful O_CREAT open of this path in the trace", tracked by
/// the caller.
bool is_observe(Func f) {
  switch (f) {
    case Func::stat:
    case Func::lstat:
    case Func::access:
    case Func::readdir:
    case Func::opendir:
      return true;
    default:
      return false;
  }
}

bool is_plain_mutate(Func f) {
  switch (f) {
    case Func::mkdir:
    case Func::rmdir:
    case Func::unlink:
    case Func::rename:
    case Func::symlink:
    case Func::link:
    case Func::mknod:
      return true;
    default:
      return false;
  }
}

}  // namespace

MetadataConflictReport detect_metadata_dependencies(
    const trace::TraceBundle& bundle, const HappensBefore* hb,
    MetadataConflictOptions opts) {
  // Collect namespace ops in timestamp order.
  std::vector<NsOp> ops;
  std::map<std::string, bool> created;  // path -> already seen a create
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < bundle.records.size(); ++i) {
    if (bundle.records[i].layer == trace::Layer::Posix) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return bundle.records[a].tstart < bundle.records[b].tstart;
  });
  for (std::size_t idx : order) {
    const auto& rec = bundle.records[idx];
    if (rec.path.empty()) continue;
    NsOp op;
    op.t = rec.tstart;
    op.rank = rec.rank;
    op.func = rec.func;
    op.path = rec.path;
    if (rec.func == Func::open && rec.ret >= 0) {
      bool& was_created = created[rec.path];
      if (rec.flags & trace::kCreate) {
        if (was_created) continue;  // concurrent O_CREAT: create-tolerant
        was_created = true;
        op.kind = NsOpKind::Mutate;  // this open created the file
      } else {
        op.kind = NsOpKind::Observe;  // the name *must* already exist
        op.hard = true;
      }
    } else if (is_plain_mutate(rec.func)) {
      op.kind = NsOpKind::Mutate;
    } else if (is_observe(rec.func)) {
      if (rec.ret < 0) continue;  // failed probe: nothing was observed
      op.kind = NsOpKind::Observe;
      op.hard = rec.func == Func::readdir || rec.func == Func::opendir;
    } else {
      continue;
    }
    ops.push_back(std::move(op));
  }

  // Pair each op with the nearest preceding mutation of the same path by
  // a different process.
  MetadataConflictReport report;
  std::map<std::string, const NsOp*> last_mutate;
  // Nearest preceding mutation of this exact path, or of an ancestor
  // directory (creating "out.bp" is what makes "out.bp/data.0" reachable).
  auto find_mutate = [&](const std::string& path) -> const NsOp* {
    if (auto it = last_mutate.find(path); it != last_mutate.end()) {
      return it->second;
    }
    for (auto pos = path.rfind('/'); pos != std::string::npos && pos > 0;
         pos = path.rfind('/', pos - 1)) {
      if (auto it = last_mutate.find(path.substr(0, pos));
          it != last_mutate.end()) {
        return it->second;
      }
    }
    return nullptr;
  };
  for (const auto& op : ops) {
    if (const NsOp* m = find_mutate(op.path); m && m->rank != op.rank) {
      ++report.cross_process;
      if (op.hard) ++report.hard_cross_process;
      ++report.paths[op.path];
      MetadataDependency dep;
      dep.mutate = *m;
      dep.observe = op;
      if (hb) {
        dep.synchronized =
            hb->ordered(dep.mutate.rank, dep.mutate.t, op.rank, op.t);
      }
      if (!dep.synchronized) {
        ++report.unsynchronized;
        if (op.hard) ++report.hard_unsynchronized;
      }
      if (report.dependencies.size() < opts.max_examples) {
        report.dependencies.push_back(std::move(dep));
      }
    }
    // Pointers into `ops` stay valid: the vector is fully built above.
    if (op.kind == NsOpKind::Mutate) last_mutate[op.path] = &op;
  }
  return report;
}

}  // namespace pfsem::core
