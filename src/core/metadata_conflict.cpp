#include "pfsem/core/metadata_conflict.hpp"

#include <algorithm>
#include <string_view>

#include "pfsem/exec/pool.hpp"

namespace pfsem::core {

namespace {

using trace::Func;

/// Does this record mutate the namespace? An open with O_CREAT mutates
/// only when it actually created the file — we approximate "created" as
/// "first successful O_CREAT open of this path in the trace", tracked by
/// the caller.
bool is_observe(Func f) {
  switch (f) {
    case Func::stat:
    case Func::lstat:
    case Func::access:
    case Func::readdir:
    case Func::opendir:
      return true;
    default:
      return false;
  }
}

bool is_plain_mutate(Func f) {
  switch (f) {
    case Func::mkdir:
    case Func::rmdir:
    case Func::unlink:
    case Func::rename:
    case Func::symlink:
    case Func::link:
    case Func::mknod:
      return true;
    default:
      return false;
  }
}

}  // namespace

MetadataConflictReport detect_metadata_dependencies(
    const trace::TraceBundle& bundle, const HappensBefore* hb,
    MetadataConflictOptions opts) {
  const std::size_t npaths = bundle.paths.size();
  // Collect namespace ops in timestamp order. All per-path state below is
  // a FileId-indexed vector over the bundle's intern table.
  std::vector<NsOp> ops;
  std::vector<unsigned char> created(npaths, 0);  // id -> create seen
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < bundle.records.size(); ++i) {
    if (bundle.records[i].layer == trace::Layer::Posix) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return bundle.records[a].tstart < bundle.records[b].tstart;
  });
  for (std::size_t idx : order) {
    const auto& rec = bundle.records[idx];
    if (!rec.has_path() || bundle.paths.view(rec.file).empty()) continue;
    NsOp op;
    op.t = rec.tstart;
    op.rank = rec.rank;
    op.func = rec.func;
    op.file = rec.file;
    if (rec.func == Func::open && rec.ret >= 0) {
      unsigned char& was_created = created[rec.file];
      if (rec.flags & trace::kCreate) {
        if (was_created) continue;  // concurrent O_CREAT: create-tolerant
        was_created = 1;
        op.kind = NsOpKind::Mutate;  // this open created the file
      } else {
        op.kind = NsOpKind::Observe;  // the name *must* already exist
        op.hard = true;
      }
    } else if (is_plain_mutate(rec.func)) {
      op.kind = NsOpKind::Mutate;
    } else if (is_observe(rec.func)) {
      if (rec.ret < 0) continue;  // failed probe: nothing was observed
      op.kind = NsOpKind::Observe;
      op.hard = rec.func == Func::readdir || rec.func == Func::opendir;
    } else {
      continue;
    }
    ops.push_back(op);
  }

  // Pair each op with the nearest preceding mutation of the same path by
  // a different process. The pairing for a path consults only that path
  // and its ancestor directories, all of which share the path's first
  // component ("out.bp" for "out.bp/data.0", "/scratch" for
  // "/scratch/run/chk.h5"), so ops shard by that component and each
  // shard walks its subset in global trace order independently. Shard
  // keys are interned like paths: dense shard ids, vector-of-vectors
  // grouping instead of a string-keyed map.
  trace::PathTable shard_keys;
  std::vector<FileId> shard_of_file(npaths, kNoFile);
  std::vector<std::vector<std::size_t>> shards;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    FileId& s = shard_of_file[ops[i].file];
    if (s == kNoFile) {
      const std::string_view path = bundle.paths.view(ops[i].file);
      s = shard_keys.intern(path.substr(0, path.find('/', 1)));
      if (s >= shards.size()) shards.resize(s + 1);
    }
    shards[s].push_back(i);
  }

  // Every path (and each of its ancestors) belongs to exactly one shard,
  // so the shards write disjoint slots of this shared last-mutate column.
  std::vector<const NsOp*> last_mutate(npaths, nullptr);

  struct Part {
    MetadataConflictReport report;
    std::vector<std::size_t> dep_op;  ///< global op index per stored dep
  };
  std::vector<Part> parts(shards.size());
  exec::parallel_for(opts.threads, shards.size(), [&](std::size_t s) {
    Part& part = parts[s];
    // Nearest preceding mutation of this exact path, or of an ancestor
    // directory (creating "out.bp" is what makes "out.bp/data.0"
    // reachable). Ancestors resolve through the intern table; a prefix
    // that was never interned was never mutated in the trace.
    auto find_mutate = [&](FileId file) -> const NsOp* {
      if (const NsOp* m = last_mutate[file]) return m;
      const std::string_view path = bundle.paths.view(file);
      for (auto pos = path.rfind('/'); pos != std::string_view::npos && pos > 0;
           pos = path.rfind('/', pos - 1)) {
        const FileId anc = bundle.paths.find(path.substr(0, pos));
        if (anc != kNoFile && last_mutate[anc]) return last_mutate[anc];
      }
      return nullptr;
    };
    for (const std::size_t idx : shards[s]) {
      const NsOp& op = ops[idx];
      if (const NsOp* m = find_mutate(op.file); m && m->rank != op.rank) {
        ++part.report.cross_process;
        if (op.hard) ++part.report.hard_cross_process;
        ++part.report.paths[op.file];
        MetadataDependency dep;
        dep.mutate = *m;
        dep.observe = op;
        if (hb) {
          dep.synchronized =
              hb->ordered(dep.mutate.rank, dep.mutate.t, op.rank, op.t);
        }
        if (!dep.synchronized) {
          ++part.report.unsynchronized;
          if (op.hard) ++part.report.hard_unsynchronized;
        }
        // Keep up to the global cap per shard: the merge below truncates
        // to the first max_examples in global order, and those can all
        // come from one shard.
        if (part.report.dependencies.size() < opts.max_examples) {
          part.report.dependencies.push_back(std::move(dep));
          part.dep_op.push_back(idx);
        }
      }
      // Pointers into `ops` stay valid: the vector is fully built above.
      if (op.kind == NsOpKind::Mutate) last_mutate[op.file] = &op;
    }
  });

  // Deterministic reduction: sum the counters, merge the (disjoint)
  // path maps, and interleave the stored examples back into global
  // trace order before applying the cap — byte-identical to the
  // sequential walk regardless of shard count.
  MetadataConflictReport report;
  struct Tagged {
    std::size_t op_index;
    MetadataDependency* dep;
  };
  std::vector<Tagged> tagged;
  for (auto& part : parts) {
    report.cross_process += part.report.cross_process;
    report.unsynchronized += part.report.unsynchronized;
    report.hard_cross_process += part.report.hard_cross_process;
    report.hard_unsynchronized += part.report.hard_unsynchronized;
    report.paths.merge(part.report.paths);
    for (std::size_t d = 0; d < part.report.dependencies.size(); ++d) {
      tagged.push_back({part.dep_op[d], &part.report.dependencies[d]});
    }
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const Tagged& a, const Tagged& b) { return a.op_index < b.op_index; });
  const std::size_t keep = std::min(tagged.size(), opts.max_examples);
  report.dependencies.reserve(keep);
  for (std::size_t d = 0; d < keep; ++d) {
    report.dependencies.push_back(std::move(*tagged[d].dep));
  }
  return report;
}

}  // namespace pfsem::core
