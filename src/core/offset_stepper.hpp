#pragma once
// Incremental core of offset reconstruction (private to pfsem_core).
//
// OffsetStepper replays Posix records one at a time — in (tstart,
// emission-index) order — against the per-fd / per-file state machine of
// Section 5.1; annotate_accesses is the (t_open, t_commit, t_close) pass
// of Section 5.2. Extracted from reconstruct_accesses so the one-shot
// bundle path (offset_tracker.cpp) and the streaming analyzer
// (stream_analyze.cpp) run the *same* transition code on the same order —
// identical AccessLogs by construction, which is what the streaming
// differential tests pin down.

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "pfsem/core/access.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/trace/record.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::core::detail {

class OffsetStepper {
 public:
  /// `log` must already carry its final path table (files sized to it);
  /// the stepper appends accesses/opens/commits/closes as records arrive.
  OffsetStepper(AccessLog& log, OffsetTrackerOptions opts)
      : log_(log), opts_(opts), sizes_(log.paths.size(), 0) {}

  /// Replay one Posix record; `index` is its global emission index (the
  /// tie-break key of the processing order, recorded on each Access).
  void step(const trace::Record& rec, std::size_t index) {
    using trace::Func;
    const std::pair<Rank, int> key{rec.rank, rec.fd};
    switch (rec.func) {
      case Func::open: {
        require(rec.ret >= 0, "trace contains failed open");
        require(rec.file != kNoFile, "open record without a path");
        FdState st;
        st.file = rec.file;
        st.flags = rec.flags;
        if (rec.flags & trace::kTrunc) sizes_[st.file] = 0;
        st.offset = 0;
        fds_[{rec.rank, static_cast<int>(rec.ret)}] = st;
        log_.file(rec.file).opens[rec.rank].push_back(rec.tstart);
        break;
      }
      case Func::close: {
        auto it = fds_.find(key);
        if (it != fds_.end()) {
          auto& fl = log_.file(it->second.file);
          fl.closes[rec.rank].push_back(rec.tstart);
          fl.commits[rec.rank].push_back(rec.tstart);
          fds_.erase(it);
        }
        break;
      }
      case Func::read:
      case Func::write: {
        auto it = fds_.find(key);
        require(it != fds_.end(), "read/write on unknown fd in trace");
        FdState& st = it->second;
        const bool is_write = rec.func == Func::write;
        Offset off = st.offset;
        if (is_write && (st.flags & trace::kAppend)) off = sizes_[st.file];
        const auto len = static_cast<std::uint64_t>(rec.ret);
        add_access(rec, index, st.file, off, len,
                   is_write ? AccessType::Write : AccessType::Read);
        st.offset = off + len;
        break;
      }
      case Func::pread:
      case Func::pwrite: {
        auto it = fds_.find(key);
        require(it != fds_.end(), "pread/pwrite on unknown fd in trace");
        add_access(rec, index, it->second.file, rec.offset,
                   static_cast<std::uint64_t>(rec.ret),
                   rec.func == Func::pwrite ? AccessType::Write
                                            : AccessType::Read);
        break;
      }
      case Func::lseek: {
        auto it = fds_.find(key);
        require(it != fds_.end(), "lseek on unknown fd in trace");
        FdState& st = it->second;
        const auto delta = static_cast<std::int64_t>(rec.offset);
        std::int64_t base = 0;
        switch (rec.flags) {
          case trace::kSeekSet: base = 0; break;
          case trace::kSeekCur:
            base = static_cast<std::int64_t>(st.offset);
            break;
          case trace::kSeekEnd:
            base = static_cast<std::int64_t>(sizes_[st.file]);
            break;
          default: require(false, "bad whence in trace");
        }
        st.offset = static_cast<Offset>(base + delta);
        break;
      }
      case Func::fsync:
      case Func::fdatasync: {
        auto it = fds_.find(key);
        require(it != fds_.end(), "fsync on unknown fd in trace");
        log_.file(it->second.file).commits[rec.rank].push_back(rec.tstart);
        break;
      }
      case Func::ftruncate: {
        auto it = fds_.find(key);
        if (it != fds_.end()) sizes_[it->second.file] = rec.offset;
        break;
      }
      default:
        break;  // metadata/utility ops don't contribute byte accesses
    }
  }

 private:
  struct FdState {
    FileId file = kNoFile;
    Offset offset = 0;
    int flags = 0;
  };

  void add_access(const trace::Record& rec, std::size_t index, FileId f,
                  Offset off, std::uint64_t len, AccessType type) {
    using trace::Func;
    if (len == 0) return;
    Access a;
    a.t = rec.tstart;
    a.rank = rec.rank;
    a.ext = {off, off + len};
    a.type = type;
    a.record_index = index;
    log_.file(f).accesses.push_back(a);
    if (type == AccessType::Write) {
      Offset& size = sizes_[f];
      size = std::max(size, a.ext.end);
    }
    if (opts_.validate_against_ground_truth &&
        (rec.func == Func::read || rec.func == Func::write ||
         rec.func == Func::pread || rec.func == Func::pwrite)) {
      require(off == rec.offset,
              "offset reconstruction mismatch on " +
                  std::string(log_.paths.view(f)) + ": got " +
                  std::to_string(off) + ", truth " +
                  std::to_string(rec.offset));
    }
  }

  AccessLog& log_;
  OffsetTrackerOptions opts_;
  std::map<std::pair<Rank, int>, FdState> fds_;
  std::vector<Offset> sizes_;  // up-to-date size per file
};

/// Annotate every access with (t_open, t_commit, t_close) per Section
/// 5.2. Defined in offset_tracker.cpp.
void annotate_accesses(AccessLog& log);

}  // namespace pfsem::core::detail
