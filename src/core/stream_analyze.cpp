#include "pfsem/core/stream_analyze.hpp"

#include <algorithm>

#include "offset_stepper.hpp"

namespace pfsem::core {

namespace {

// Sentinel budget for ranks whose Posix totals are unknown: never
// retires, so the frontier stays conservative.
constexpr std::uint64_t kUnknownBudget = ~std::uint64_t{0};

}  // namespace

StreamAnalyzer::StreamAnalyzer(int nranks, trace::PathTable paths,
                               std::vector<std::uint64_t> rank_posix_counts,
                               const std::vector<std::uint32_t>& hints,
                               OffsetTrackerOptions opts) {
  require(nranks > 0, "need at least one rank");
  require(rank_posix_counts.empty() ||
              std::ssize(rank_posix_counts) == nranks,
          "rank posix counts must match rank count");
  out_.log.nranks = nranks;
  out_.log.paths = std::move(paths);
  out_.log.files.resize(out_.log.paths.size());
  // Same column pre-size as reconstruct_accesses (purely an allocation
  // hint; the logs are identical with or without it).
  if (!hints.empty()) {
    const std::size_t n = std::min(hints.size(), out_.log.files.size());
    for (std::size_t id = 0; id < n; ++id) {
      if (hints[id] > 0) out_.log.files[id].accesses.reserve(hints[id]);
    }
  }
  stepper_ = std::make_unique<detail::OffsetStepper>(out_.log, opts);

  const auto n = static_cast<std::size_t>(nranks);
  last_tstart_.assign(n, 0);
  seen_.assign(n, 0);
  if (rank_posix_counts.empty()) {
    remaining_.assign(n, kUnknownBudget);
    unseen_active_ = nranks;
  } else {
    remaining_ = std::move(rank_posix_counts);
    unseen_active_ = 0;
    for (const auto c : remaining_) unseen_active_ += c > 0 ? 1 : 0;
  }
}

StreamAnalyzer::~StreamAnalyzer() = default;

void StreamAnalyzer::feed(const trace::Record& rec) {
  out_.stats.feed(rec);
  const std::uint64_t seq = next_seq_++;
  if (rec.layer != trace::Layer::Posix) return;
  require(rec.rank >= 0 && rec.rank < out_.log.nranks,
          "record rank out of range in stream");
  const auto r = static_cast<std::size_t>(rec.rank);
  require(remaining_[r] > 0, "rank posix count mismatch in stream");
  if (!seen_[r]) {
    seen_[r] = 1;
    --unseen_active_;
  }
  last_tstart_[r] = rec.tstart;
  if (remaining_[r] != kUnknownBudget) --remaining_[r];
  if (remaining_[r] > 0) frontier_.push({rec.tstart, rec.rank});
  buffer_.push({rec.tstart, seq, rec});
  peak_buffered_ = std::max(peak_buffered_, buffer_.size());
  release_ready();
}

void StreamAnalyzer::release_ready() {
  while (!buffer_.empty()) {
    // Current frontier: smallest last-seen Posix tstart over ranks still
    // owing records (stale and retired entries are skipped lazily).
    while (!frontier_.empty()) {
      const FrontierEntry& top = frontier_.top();
      const auto r = static_cast<std::size_t>(top.rank);
      if (remaining_[r] == 0 || top.t != last_tstart_[r]) {
        frontier_.pop();
        continue;
      }
      break;
    }
    if (unseen_active_ > 0) return;  // some owing rank has no bound yet
    if (!frontier_.empty() && buffer_.top().tstart > frontier_.top().t) {
      return;
    }
    // Releasing at tstart == frontier is safe on ties: any future record
    // with the same tstart carries a larger seq, and the stable sort the
    // materialized path runs orders equal tstarts by seq.
    const Pending& p = buffer_.top();
    stepper_->step(p.rec, static_cast<std::size_t>(p.seq));
    buffer_.pop();
  }
}

StreamAnalyzer::Result StreamAnalyzer::finish() {
  while (!buffer_.empty()) {
    const Pending& p = buffer_.top();
    stepper_->step(p.rec, static_cast<std::size_t>(p.seq));
    buffer_.pop();
  }
  detail::annotate_accesses(out_.log);
  out_.records = next_seq_;
  return std::move(out_);
}

}  // namespace pfsem::core
