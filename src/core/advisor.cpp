#include "pfsem/core/advisor.hpp"

namespace pfsem::core {

namespace {

using vfs::ConsistencyModel;

/// Weakest model given which semantics show conflicts.
ConsistencyModel pick(bool no_pairs, bool session_conflicts,
                      bool commit_conflicts) {
  if (no_pairs) return ConsistencyModel::Eventual;
  if (!session_conflicts) return ConsistencyModel::Session;
  if (!commit_conflicts) return ConsistencyModel::Commit;
  return ConsistencyModel::Strong;
}

}  // namespace

Advice advise(const ConflictReport& report, const HappensBefore* hb,
              int threads) {
  Advice advice;
  if (hb) {
    const RaceCheck rc = validate_synchronization(report, *hb, threads);
    advice.race_free = rc.racy == 0;
  }

  const bool no_pairs = report.potential_pairs == 0;
  // "Handled same-process ordering" view: only D conflicts matter.
  const bool session_d = report.session.waw_d || report.session.raw_d;
  const bool commit_d = report.commit.waw_d || report.commit.raw_d;
  advice.weakest = pick(no_pairs, session_d, commit_d);
  // Strict view: S conflicts count too (BurstFS-class PFS).
  advice.weakest_strict =
      pick(no_pairs, report.session.any(), report.commit.any());

  if (!advice.race_free) {
    advice.rationale =
        "conflicting accesses are not ordered by program synchronization: "
        "the outcome is non-deterministic even under POSIX semantics";
  } else if (no_pairs) {
    advice.rationale =
        "no overlapping write-involved accesses at all; even eventual "
        "consistency is safe";
  } else if (advice.weakest == ConsistencyModel::Session) {
    advice.rationale =
        report.session.any()
            ? "conflicts exist but involve a single process only; any PFS "
              "that orders same-process accesses (all studied except "
              "BurstFS) is safe with session semantics"
            : "no conflicts under session semantics";
  } else if (advice.weakest == ConsistencyModel::Commit) {
    advice.rationale =
        "cross-process conflicts under session semantics are cleared by "
        "commit operations (fsync/close) the application already performs";
  } else {
    advice.rationale =
        "cross-process conflicts persist even under commit semantics; "
        "strong (POSIX) semantics required";
  }
  return advice;
}

}  // namespace pfsem::core
