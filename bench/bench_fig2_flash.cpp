// Figure 2 — detailed FLASH write patterns. Reproduces the six panels as
// data series (offset vs. time per rank) plus summary statistics:
//   (a) checkpoint file, collective I/O (FLASH-fbs): few aggregators,
//       large tiled writes; ~30 ranks do small metadata writes at the head
//   (b,e) checkpoint over time: fbs serialized through aggregators vs
//       nofbs massively parallel
//   (c) plot file, collective: rank 0 writes data, ~30 ranks metadata
//   (d) checkpoint file, independent I/O (FLASH-nofbs): every rank writes
//   (f) a single rank's accesses in nofbs are (mostly) monotonic
//
// Writes one CSV per panel into bench_out/ and prints the summary.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>

#include "bench_common.hpp"

namespace {

using namespace pfsem;

struct FileStats {
  std::set<Rank> data_writers;
  std::set<Rank> meta_writers;
  std::uint64_t data_writes = 0;
  std::uint64_t meta_writes = 0;
};

FileStats stats_for(const core::FileLog& fl) {
  FileStats st;
  for (const auto& a : fl.accesses) {
    if (a.type != core::AccessType::Write) continue;
    if (a.ext.size() >= 4096) {
      st.data_writers.insert(a.rank);
      ++st.data_writes;
    } else {
      st.meta_writers.insert(a.rank);
      ++st.meta_writes;
    }
  }
  return st;
}

void dump_csv(const std::string& path, const core::FileLog& fl,
              std::optional<Rank> only_rank = std::nullopt) {
  std::ofstream os(path);
  os << "time_s,rank,offset_begin,offset_end,bytes,kind\n";
  for (const auto& a : fl.accesses) {
    if (a.type != core::AccessType::Write) continue;
    if (only_rank && a.rank != *only_rank) continue;
    os << to_seconds(a.t) << ',' << a.rank << ',' << a.ext.begin << ','
       << a.ext.end << ',' << a.ext.size() << ','
       << (a.ext.size() >= 4096 ? "data" : "metadata") << '\n';
  }
}

const core::FileLog* find_file(const core::AccessLog& log,
                               const std::string& needle) {
  for (const auto& fl : log.files) {
    if (!fl.active()) continue;
    if (log.path(fl.file).find(needle) != std::string::npos) return &fl;
  }
  return nullptr;
}

}  // namespace

int main() {
  using bench::analyze_app;
  std::filesystem::create_directories("bench_out");

  const auto fbs = analyze_app(*apps::find_app("FLASH-fbs"));
  const auto nofbs = analyze_app(*apps::find_app("FLASH-nofbs"));

  const auto* fbs_chk = find_file(fbs.log, "chk_1000");
  const auto* fbs_plt = find_file(fbs.log, "plt_cnt_1000");
  const auto* nofbs_chk = find_file(nofbs.log, "chk_1000");
  if (!fbs_chk || !fbs_plt || !nofbs_chk) {
    std::cerr << "missing FLASH output files in trace\n";
    return 1;
  }

  dump_csv("bench_out/fig2a_fbs_checkpoint.csv", *fbs_chk);
  dump_csv("bench_out/fig2b_fbs_checkpoint_time.csv", *fbs_chk);
  dump_csv("bench_out/fig2c_fbs_plotfile.csv", *fbs_plt);
  dump_csv("bench_out/fig2d_nofbs_checkpoint.csv", *nofbs_chk);
  dump_csv("bench_out/fig2e_nofbs_checkpoint_time.csv", *nofbs_chk);
  dump_csv("bench_out/fig2f_nofbs_rank0.csv", *nofbs_chk, Rank{0});

  bench::heading("Figure 2: FLASH write-pattern summary (64 ranks)");
  Table t({"panel", "file", "data writers", "metadata writers", "data writes",
           "meta writes"});
  auto row = [&](const char* panel, const char* name, const core::FileLog& fl) {
    const auto st = stats_for(fl);
    t.add_row({panel, name, std::to_string(st.data_writers.size()),
               std::to_string(st.meta_writers.size()),
               std::to_string(st.data_writes), std::to_string(st.meta_writes)});
    return st;
  };
  const auto a = row("(a,b) fbs checkpoint", "collective", *fbs_chk);
  const auto c = row("(c) fbs plot file", "collective", *fbs_plt);
  const auto d = row("(d,e) nofbs checkpoint", "independent", *nofbs_chk);
  t.print(std::cout);

  // Panel (f): rank 0's own transitions in the nofbs checkpoint.
  core::TransitionMix rank0;
  {
    const core::Access* prev = nullptr;
    for (const auto& acc : nofbs_chk->accesses) {
      if (acc.rank != 0 || acc.type != core::AccessType::Write) continue;
      if (prev) {
        if (acc.ext.begin == prev->ext.end) ++rank0.consecutive;
        else if (acc.ext.begin > prev->ext.end) ++rank0.monotonic;
        else ++rank0.random;
      }
      prev = &acc;
    }
  }
  std::cout << "\n(f) nofbs rank-0 transitions: consecutive "
            << fmt_pct(rank0.frac_consecutive()) << ", monotonic "
            << fmt_pct(rank0.frac_monotonic()) << ", random "
            << fmt_pct(rank0.frac_random()) << " (paper: mostly monotonic)\n";

  std::cout << "\nShape checks vs the paper:\n"
            << "  fbs checkpoint data writers = " << a.data_writers.size()
            << " (paper: 6 aggregators)\n"
            << "  fbs checkpoint metadata writers = " << a.meta_writers.size()
            << " (paper: ~30)\n"
            << "  fbs plot data writers = " << c.data_writers.size()
            << " (paper: only rank 0), metadata writers = "
            << c.meta_writers.size() << " (paper: ~30)\n"
            << "  nofbs checkpoint data writers = " << d.data_writers.size()
            << " (paper: all 64)\n"
            << "CSV series written to bench_out/fig2*.csv\n";

  const bool ok = a.data_writers.size() == 6 && a.meta_writers.size() >= 20 &&
                  c.data_writers.size() == 1 && d.data_writers.size() == 64 &&
                  rank0.frac_random() < 0.2;
  std::cout << (ok ? "SHAPE OK\n" : "SHAPE MISMATCH\n");
  return ok ? 0 : 1;
}
