// EXTENSION bench: striping-layout interactions. The paper's Section 2.1
// notes PFSs stripe file data across data servers; how an application's
// access pattern lines up with the stripe layout decides OST request
// counts and balance. Classic results reproduced on the simulated PFS:
// stripe-aligned N-1 writes touch one OST per request, misaligned writes
// double the RPC count, and tiny strided records spray requests across
// every OST.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "pfsem/trace/record.hpp"
#include "pfsem/vfs/pfs.hpp"

namespace {

using namespace pfsem;

struct Scenario {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t max_ost = 0, min_ost = 0;
  std::uint64_t revocations = 0;
  double cost_ms = 0;
};

Scenario run_case(const std::string& name, Offset op_size, Offset op_stride,
                  Offset base_offset, bool file_per_process) {
  constexpr int kRanks = 16;
  constexpr int kRounds = 8;
  vfs::PfsConfig cfg;
  // Strong (POSIX) semantics with the lock granularity equal to the
  // stripe size, Lustre-style: misaligned accesses share lock blocks with
  // their neighbours and ping-pong the extents.
  cfg.model = vfs::ConsistencyModel::Strong;
  cfg.stripe_count = 8;
  cfg.stripe_size = 1 << 20;
  cfg.lock_block = 1 << 20;
  vfs::Pfs fs(cfg);

  std::vector<int> fds;
  for (Rank r = 0; r < kRanks; ++r) {
    const std::string path =
        file_per_process ? "out." + std::to_string(r) : "shared";
    fds.push_back(fs.open(r, path, trace::kCreate | trace::kWrOnly, 0).fd);
  }
  SimTime t = 0;
  SimDuration cost = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (Rank r = 0; r < kRanks; ++r) {
      const Offset off = base_offset +
                         static_cast<Offset>(r) * op_stride +
                         static_cast<Offset>(round) * op_stride * kRanks;
      cost += fs.pwrite(r, fds[static_cast<std::size_t>(r)], off, op_size,
                        t += 10)
                  .cost;
    }
  }
  Scenario s;
  s.name = name;
  const auto& osts = fs.ost_stats();
  for (auto q : osts.requests) s.requests += q;
  s.max_ost = *std::max_element(osts.bytes.begin(), osts.bytes.end());
  s.min_ost = *std::min_element(osts.bytes.begin(), osts.bytes.end());
  s.revocations = fs.lock_stats().revocations;
  s.cost_ms = static_cast<double>(cost) * 1e-6;
  return s;
}

}  // namespace

int main() {
  bench::heading("Extension: stripe layout vs access pattern (8 OSTs, 1 MiB stripes)");
  const Offset mib = 1 << 20;
  std::vector<Scenario> rows;
  rows.push_back(run_case("N-1 aligned (1MiB at k*1MiB)", mib, mib, 0, false));
  rows.push_back(
      run_case("N-1 misaligned (1MiB at k*1MiB+512K)", mib, mib, 512 * 1024,
               false));
  rows.push_back(
      run_case("N-1 small strided (64KiB records)", 64 * 1024, 64 * 1024, 0,
               false));
  rows.push_back(run_case("file-per-process (1MiB appends)", mib, mib, 0, true));

  Table t({"scenario", "OST requests", "lock revocations", "max OST bytes",
           "min OST bytes", "sim cost (ms)"});
  for (const auto& s : rows) {
    t.add_row({s.name, std::to_string(s.requests),
               std::to_string(s.revocations), std::to_string(s.max_ost),
               std::to_string(s.min_ost), fmt(s.cost_ms, 2)});
  }
  t.print(std::cout);

  const bool ok =
      // misalignment doubles the OST request count for the same bytes...
      rows[1].requests >= rows[0].requests * 2 * 9 / 10 &&
      // ...and, under POSIX semantics, shares lock blocks with the
      // neighbouring rank: revocation ping-pong the aligned run avoids.
      rows[1].revocations > rows[0].revocations &&
      // aligned 1-MiB round-robin keeps OSTs balanced.
      rows[0].max_ost == rows[0].min_ost &&
      // file-per-process avoids all lock conflicts.
      rows[3].revocations == 0;
  std::cout << "\nAligned accesses touch one OST and one private lock block "
               "each; misaligned accesses split every request across two "
               "OSTs (the per-op latency actually *improves* from the "
               "parallel transfer — the damage is the doubled RPC load and "
               "the lock-revocation ping-pong with neighbouring ranks, "
               "which dominate once servers are contended); "
               "file-per-process avoids lock conflicts entirely. "
            << (ok ? "SHAPE OK\n" : "SHAPE MISMATCH\n");
  return ok ? 0 : 1;
}
