// EXTENSION bench: why relaxed semantics matter — the performance story.
// The paper's premise (Sections 1-3) is that PFSs with weaker semantics
// exist because they are *faster*, provided applications tolerate them.
// This bench runs the same checkpoint-heavy workloads on three backends:
//
//   strong  — the POSIX-semantics PFS with its distributed-lock traffic
//   commit  — the same PFS hardware, locks disabled (relaxed semantics)
//   burst   — the node-local burst-buffer tier with commit semantics
//             (UnifyFS/BurstFS class, only *possible* because the
//             applications tolerate commit semantics)
//
// and reports total simulated run time. The advisor's Table-4 verdicts say
// which applications may run on `commit`/`burst` at all; this bench shows
// what they gain by doing so.

#include <iostream>

#include "bench_common.hpp"
#include "pfsem/vfs/burst_buffer.hpp"

namespace {

using namespace pfsem;

double run_seconds(const apps::AppInfo& info,
                   std::unique_ptr<vfs::FileSystem> fs) {
  apps::AppConfig cfg = bench::paper_scale();
  apps::Harness h(cfg, std::move(fs));
  info.run(h);
  return to_seconds(h.engine().now());
}

double run_seconds(const apps::AppInfo& info, vfs::ConsistencyModel model) {
  vfs::PfsConfig cfg;
  cfg.model = model;
  return run_seconds(info, std::make_unique<vfs::Pfs>(cfg));
}

}  // namespace

int main() {
  bench::heading(
      "Extension: simulated run time by backend (strong PFS vs relaxed PFS "
      "vs burst buffer)");
  Table t({"Configuration", "strong PFS (s)", "commit PFS (s)",
           "burst buffer (s)", "BB speedup vs strong", "BB-safe?"});
  bool ok = true;
  for (const char* name :
       {"pF3D-IO", "HACC-IO POSIX", "FLASH-fbs", "NWChem", "VPIC-IO"}) {
    const auto* info = apps::find_app(name);
    const double strong = run_seconds(*info, vfs::ConsistencyModel::Strong);
    const double commit = run_seconds(*info, vfs::ConsistencyModel::Commit);
    vfs::BurstBufferConfig bb_cfg;
    bb_cfg.ranks_per_node = bench::paper_scale().ranks_per_node;
    const double burst =
        run_seconds(*info, std::make_unique<vfs::BurstBufferPfs>(bb_cfg));
    // Is the app safe on a commit-semantics system? (Table 4 verdict.)
    const bool safe = !info->expect.raw_d || info->expect.commit_clears;
    t.add_row({name, fmt(strong, 3), fmt(commit, 3), fmt(burst, 3),
               fmt(strong / burst, 2) + "x", safe ? "yes" : "no"});
    ok &= burst < strong;
    ok &= commit <= strong + 1e-9;
  }
  t.print(std::cout);
  std::cout
      << "\nThe burst buffer (node-local writes + commit-time index "
         "publish) beats the strong-semantics PFS on every checkpoint "
         "workload — and per Table 4 these applications all tolerate the "
         "commit semantics it provides. This closes the paper's loop: the "
         "semantics applications *need* (weak) matches the semantics fast "
         "storage tiers *offer*. "
      << (ok ? "SHAPE OK\n" : "SHAPE MISMATCH\n");
  return ok ? 0 : 1;
}
