// Performance bench: Algorithm 1 (sorted sweep) vs the naive O(n^2)
// baseline, across record counts and overlap densities. Demonstrates the
// paper's Section 5.1 claim that, sorting aside, the sweep is near-linear
// on realistic (mostly disjoint) I/O records while the worst case is
// quadratic.

#include <benchmark/benchmark.h>

#include "pfsem/core/overlap.hpp"
#include "pfsem/util/rng.hpp"

namespace {

using namespace pfsem;

/// Realistic checkpoint-like records: mostly disjoint per-rank segments
/// plus a *bounded* number of overlapping metadata rewrites (a file's
/// header is rewritten once per flush epoch, not once per data block, so
/// the overlap-cluster size does not grow with the record count — which
/// is why the paper observes near-linear behaviour in practice).
std::vector<core::Access> realistic(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<core::Access> v;
  v.reserve(n);
  constexpr std::size_t kHeaderRewrites = 64;
  for (std::size_t i = 0; i < n; ++i) {
    core::Access a;
    a.rank = static_cast<Rank>(rng.below(64));
    a.type = rng.chance(0.8) ? core::AccessType::Write : core::AccessType::Read;
    a.t = static_cast<SimTime>(i);
    if (i % std::max<std::size_t>(n / kHeaderRewrites, 1) == 0) {
      a.ext = {0, 96};  // shared header rewrite
    } else {
      const Offset begin = static_cast<Offset>(i) * 70'000;
      a.ext = {begin, begin + 65'536};
    }
    v.push_back(a);
  }
  return v;
}

/// Adversarial: every interval overlaps every other.
std::vector<core::Access> adversarial(std::size_t n) {
  std::vector<core::Access> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::Access a;
    a.rank = static_cast<Rank>(i % 64);
    a.type = core::AccessType::Write;
    a.ext = {static_cast<Offset>(i), 1'000'000'000};
    v.push_back(a);
  }
  return v;
}

/// Adversarial for the *scan*: long-lived read intervals (a shared input
/// deck every rank keeps mapped) with a handful of writes. Under the
/// default writes_only filter the output is tiny (read-write pairs only),
/// but the scan still visits all ~n^2/2 read-read candidates because its
/// stop condition is begin-order, not relevance. The sweep keeps reads
/// and writes in separate active lists, so a read only ever scans the
/// writes — this is the O(n^2) -> O(n log n + output) case.
std::vector<core::Access> long_reads(std::size_t n) {
  std::vector<core::Access> v;
  v.reserve(n);
  constexpr std::size_t kWriters = 16;
  for (std::size_t i = 0; i < n; ++i) {
    core::Access a;
    a.rank = static_cast<Rank>(i % 64);
    a.t = static_cast<SimTime>(i);
    if (i % std::max<std::size_t>(n / kWriters, 1) == 0) {
      a.type = core::AccessType::Write;
      a.ext = {static_cast<Offset>(i), static_cast<Offset>(i) + 4096};
    } else {
      a.type = core::AccessType::Read;
      a.ext = {static_cast<Offset>(i), 1'000'000'000};
    }
    v.push_back(a);
  }
  return v;
}

void BM_Algorithm1_Realistic(benchmark::State& state) {
  const auto v = realistic(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_overlaps(v));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm1_Realistic)->Range(1 << 10, 1 << 16)->Complexity();

void BM_Naive_Realistic(benchmark::State& state) {
  const auto v = realistic(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_overlaps_naive(v));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Naive_Realistic)->Range(1 << 10, 1 << 13)->Complexity();

void BM_Algorithm1_Adversarial(benchmark::State& state) {
  const auto v = adversarial(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_overlaps(v));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm1_Adversarial)->Range(1 << 8, 1 << 11)->Complexity();

void BM_Scan_Realistic(benchmark::State& state) {
  const auto v = realistic(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_overlaps_scan(v));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Scan_Realistic)->Range(1 << 10, 1 << 16)->Complexity();

void BM_Sweep_LongReads(benchmark::State& state) {
  const auto v = long_reads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_overlaps(v));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Sweep_LongReads)->Range(1 << 10, 1 << 15)->Complexity();

void BM_Scan_LongReads(benchmark::State& state) {
  const auto v = long_reads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_overlaps_scan(v));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Scan_LongReads)->Range(1 << 10, 1 << 13)->Complexity();

void BM_RankTable(benchmark::State& state) {
  const auto v = realistic(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::overlap_rank_table(v, 64));
  }
}
BENCHMARK(BM_RankTable)->Range(1 << 10, 1 << 14);

}  // namespace
