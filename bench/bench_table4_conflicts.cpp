// Table 4 — conflicts detected under session semantics (WAW/RAW x
// same/different process), plus the Section 6.3 companion result: under
// commit semantics FLASH's conflicts disappear and everything else is
// unchanged. Also prints the advisor's weakest-safe-model verdict, i.e.
// the paper's headline "16 of 17 applications can use weaker semantics".

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace pfsem;
  using bench::analyze_app;
  using bench::check;

  bench::heading("Table 4: conflicts with session semantics (measured vs paper)");
  Table t({"Configuration", "I/O Lib", "WAW-S", "WAW-D", "RAW-S", "RAW-D",
           "paper", "match"});
  int ok_count = 0;
  std::vector<std::pair<std::string, core::Advice>> advice;
  for (const auto& info : apps::registry()) {
    const auto a = analyze_app(info);
    const auto& s = a.report.session;
    const bool ok = s.waw_s == info.expect.waw_s && s.waw_d == info.expect.waw_d &&
                    s.raw_s == info.expect.raw_s && s.raw_d == info.expect.raw_d;
    if (ok) ++ok_count;
    std::string paper;
    if (info.expect.waw_s) paper += "WAW-S ";
    if (info.expect.waw_d) paper += "WAW-D ";
    if (info.expect.raw_s) paper += "RAW-S ";
    if (info.expect.raw_d) paper += "RAW-D ";
    if (paper.empty()) paper = "-";
    t.add_row({info.name, info.iolib, check(s.waw_s), check(s.waw_d),
               check(s.raw_s), check(s.raw_d), paper, bench::match_mark(ok)});
    advice.emplace_back(info.name, a.advice);

    // Commit-semantics companion check (Section 6.3).
    const auto& c = a.report.commit;
    if (info.expect.commit_clears) {
      if (c.any()) {
        std::cout << "UNEXPECTED: " << info.name
                  << " still conflicts under commit semantics\n";
      }
    } else if (c.waw_s != info.expect.waw_s || c.waw_d != info.expect.waw_d ||
               c.raw_s != info.expect.raw_s || c.raw_d != info.expect.raw_d) {
      std::cout << "UNEXPECTED: " << info.name
                << " conflict classes changed under commit semantics\n";
    }
  }
  t.print(std::cout);
  std::cout << "\nMatched " << ok_count << "/" << apps::registry().size()
            << " configurations; under commit semantics the FLASH conflicts "
               "disappear and all other rows are unchanged (checked above).\n";

  bench::heading("Advisor: weakest safe consistency model per configuration");
  Table adv({"Configuration", "weakest model", "weakest (strict PFS)",
             "race-free"});
  int weaker_than_posix = 0;
  for (const auto& [name, a] : advice) {
    adv.add_row({name, vfs::to_string(a.weakest), vfs::to_string(a.weakest_strict),
                 a.race_free ? "yes" : "NO"});
    if (a.weakest != vfs::ConsistencyModel::Strong) ++weaker_than_posix;
  }
  adv.print(std::cout);
  std::cout << "\nHeadline: " << weaker_than_posix << "/"
            << apps::registry().size()
            << " configurations can run on a PFS with weaker-than-POSIX "
               "semantics (paper: 16 of 17 applications).\n";
  return ok_count == static_cast<int>(apps::registry().size()) ? 0 : 1;
}
