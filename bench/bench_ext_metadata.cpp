// EXTENSION bench (paper Section 7 future work): metadata-operation
// consistency requirements. For every configuration, count cross-process
// namespace dependencies (a rank observing a name another rank created/
// removed), split into hard (open-existing/readdir — correctness depends
// on visibility) and soft (successful stat/access probes — tolerate
// ENOENT and retry), and check each against MPI happens-before.
//
// Verdict per app: can it run on a PFS with *lazy/decentralized metadata*
// (BatchFS, GekkoFS) that publishes namespace updates only at
// synchronization boundaries?

#include <iostream>

#include "bench_common.hpp"
#include "pfsem/core/metadata_conflict.hpp"

int main() {
  using namespace pfsem;
  using bench::analyze_app;

  bench::heading(
      "Extension: cross-process namespace dependencies per configuration");
  Table t({"Configuration", "deps", "hard", "not MPI-ordered",
           "hard not ordered", "lazy-metadata safe?"});
  bool all_intra_job_safe = true;
  for (const auto& info : apps::registry()) {
    const auto cfg = bench::paper_scale();
    const auto bundle = apps::run_app(info, cfg);
    core::HappensBefore hb(bundle.comm, cfg.nranks);
    const auto rep = core::detect_metadata_dependencies(bundle, &hb);
    t.add_row({info.name, std::to_string(rep.cross_process),
               std::to_string(rep.hard_cross_process),
               std::to_string(rep.unsynchronized),
               std::to_string(rep.hard_unsynchronized),
               rep.metadata_independent()
                   ? "yes (independent)"
                   : (rep.lazy_metadata_safe() ? "yes (synchronized)" : "NO")});
    all_intra_job_safe &= rep.lazy_metadata_safe();
  }
  t.print(std::cout);
  std::cout
      << "\nFinding: every single-job configuration either has no "
         "cross-process namespace dependencies or has them ordered by its "
         "own MPI synchronization — so (matching the paper's observation "
         "about GekkoFS/BatchFS) relaxed *metadata* consistency that "
         "publishes on sync boundaries is sufficient for all of them: "
      << (all_intra_job_safe ? "CONFIRMED" : "VIOLATED") << "\n";
  return all_intra_job_safe ? 0 : 1;
}
