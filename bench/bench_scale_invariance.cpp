// Section 6.1 — scale invariance: the paper ran every application at 64
// and 1024 ranks and found no difference in the I/O-pattern classes. We
// sweep 16 / 64 / 256 ranks over a representative subset and compare the
// Table-3 class and Table-4 conflict classes across scales.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace pfsem;
  using bench::analyze_app;

  const char* names[] = {"FLASH-fbs",  "FLASH-nofbs", "ENZO",
                         "NWChem",     "LAMMPS-NetCDF", "LAMMPS-ADIOS",
                         "MACSio",     "MILC-QCD Parallel", "VPIC-IO",
                         "LBANN"};
  const int scales[] = {16, 64, 256};

  bench::heading("Scale invariance of pattern & conflict classes");
  Table t({"Configuration", "ranks", "X-Y", "layout", "session conflicts",
           "stable"});
  bool all_stable = true;
  for (const char* name : names) {
    const auto* info = apps::find_app(name);
    std::string base_sig;
    for (int n : scales) {
      apps::AppConfig cfg = bench::paper_scale();
      cfg.nranks = n;
      cfg.ranks_per_node = std::max(1, n / 8);
      const auto a = analyze_app(*info, cfg);
      std::string conflicts;
      if (a.report.session.waw_s) conflicts += "WAW-S ";
      if (a.report.session.waw_d) conflicts += "WAW-D ";
      if (a.report.session.raw_s) conflicts += "RAW-S ";
      if (a.report.session.raw_d) conflicts += "RAW-D ";
      if (conflicts.empty()) conflicts = "-";
      const std::string sig = a.pattern.xy + "|" +
                              core::to_string(a.pattern.layout) + "|" +
                              conflicts;
      const bool stable = base_sig.empty() || sig == base_sig;
      if (base_sig.empty()) base_sig = sig;
      all_stable &= stable;
      t.add_row({name, std::to_string(n), a.pattern.xy,
                 std::string(core::to_string(a.pattern.layout)), conflicts,
                 stable ? "yes" : "NO"});
    }
  }
  t.print(std::cout);

  // The paper's exact comparison: 8 nodes x 8 ppn (64 ranks) versus
  // 32 nodes x 32 ppn (1024 ranks), on a smaller subset for runtime.
  bench::heading("Paper geometry check: 64 ranks (8x8) vs 1024 ranks (32x32)");
  Table big({"Configuration", "64-rank signature", "1024-rank signature",
             "stable"});
  for (const char* name :
       {"FLASH-fbs", "LAMMPS-NetCDF", "MILC-QCD Parallel", "LBANN"}) {
    const auto* info = apps::find_app(name);
    auto signature = [&](int n, int ppn) {
      apps::AppConfig cfg = bench::paper_scale();
      cfg.nranks = n;
      cfg.ranks_per_node = ppn;
      const auto a = analyze_app(*info, cfg);
      std::string conflicts;
      if (a.report.session.waw_s) conflicts += "WAW-S ";
      if (a.report.session.waw_d) conflicts += "WAW-D ";
      if (a.report.session.raw_s) conflicts += "RAW-S ";
      if (a.report.session.raw_d) conflicts += "RAW-D ";
      if (conflicts.empty()) conflicts = "-";
      return a.pattern.xy + " " + core::to_string(a.pattern.layout) + " [" +
             conflicts + "]";
    };
    const auto small_sig = signature(64, 8);
    const auto large_sig = signature(1024, 32);
    const bool stable = small_sig == large_sig;
    all_stable &= stable;
    big.add_row({name, small_sig, large_sig, stable ? "yes" : "NO"});
  }
  big.print(std::cout);

  std::cout << "\nAll classes stable across scales: "
            << (all_stable ? "yes (paper: no differences due to scale)"
                           : "NO")
            << "\n";
  return all_stable ? 0 : 1;
}
