// Table 1 — HPC file systems and their consistency semantics — plus
// behavioural litmus probes demonstrating each model's visibility rules on
// the simulated PFS (the definitions of Sections 3.1-3.4 in executable
// form).

#include <iostream>

#include "bench_common.hpp"
#include "pfsem/trace/record.hpp"
#include "pfsem/vfs/pfs.hpp"

namespace {

using namespace pfsem;
using vfs::ConsistencyModel;

/// Which write does a remote reader observe after each synchronization
/// step? Probes the model with the canonical write -> fsync -> close ->
/// reopen ladder.
struct Probe {
  bool after_write = false;
  bool after_fsync = false;
  bool after_close = false;
  bool after_reopen = false;
};

Probe probe(ConsistencyModel model) {
  vfs::PfsConfig cfg;
  cfg.model = model;
  cfg.eventual_propagation = 1'000'000'000;  // 1 s, beyond this probe window
  vfs::Pfs fs(cfg);
  auto fresh = [&](Rank reader, int fd, SimTime t, vfs::VersionTag v) {
    const auto res = fs.pread(reader, fd, 0, 64, t);
    return !res.extents.empty() && res.extents.front().version == v;
  };
  Probe p;
  const int w = fs.open(0, "probe", trace::kCreate | trace::kRdWr, 0).fd;
  const int early = fs.open(1, "probe", trace::kRdWr, 5).fd;
  const auto ver = fs.pwrite(0, w, 0, 64, 10).version;
  p.after_write = fresh(1, early, 20, ver);
  fs.fsync(0, w, 30);
  p.after_fsync = fresh(1, early, 40, ver);
  fs.close(0, w, 50);
  p.after_close = fresh(1, early, 60, ver);
  const int reopened = fs.open(1, "probe", trace::kRdOnly, 70).fd;
  p.after_reopen = fresh(1, reopened, 80, ver);
  return p;
}

}  // namespace

int main() {
  using pfsem::Table;
  pfsem::bench::heading("Table 1: HPC file systems and their consistency semantics");
  Table t1({"Consistency Semantics", "File Systems"});
  t1.add_row({"Strong Consistency",
              "GPFS, Lustre, GekkoFS, BeeGFS, BatchFS, OrangeFS"});
  t1.add_row({"Commit Consistency", "BSCFS, UnifyFS, SymphonyFS, BurstFS"});
  t1.add_row({"Session Consistency", "NFS, AFS, DDN IME, Gfarm/BB"});
  t1.add_row({"Eventual Consistency", "PLFS, echofs, MarFS"});
  t1.print(std::cout);

  pfsem::bench::heading(
      "Model litmus probes (is a remote write visible to a reader after "
      "each step of write -> fsync -> close -> reader reopen?)");
  Table t2({"model", "after write", "after fsync", "after close",
            "after reopen"});
  for (auto m :
       {vfs::ConsistencyModel::Strong, vfs::ConsistencyModel::Commit,
        vfs::ConsistencyModel::Session, vfs::ConsistencyModel::Eventual}) {
    const auto p = probe(m);
    auto yn = [](bool v) { return v ? std::string("visible") : std::string("-"); };
    t2.add_row({pfsem::vfs::to_string(m), yn(p.after_write), yn(p.after_fsync),
                yn(p.after_close), yn(p.after_reopen)});
  }
  t2.print(std::cout);
  std::cout << "\nExpected shape: strong=visible immediately; commit=after "
               "fsync; session=only in a session opened after the writer's "
               "close; eventual=not within this probe's window.\n";
  return 0;
}
