#pragma once
// Shared helpers for the table/figure reproduction binaries: run one
// application configuration at the paper's scale (64 ranks, 8 per node)
// and hand back the full analysis.

#include <iostream>
#include <string>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/advisor.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/happens_before.hpp"
#include "pfsem/core/metadata_census.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/pattern.hpp"
#include "pfsem/util/table.hpp"

namespace pfsem::bench {

inline apps::AppConfig paper_scale() {
  apps::AppConfig cfg;
  cfg.nranks = 64;
  cfg.ranks_per_node = 8;  // the paper's 8 nodes x 8 ppn geometry
  cfg.bytes_per_rank = 256 * 1024;
  return cfg;
}

struct Analysis {
  trace::TraceBundle bundle;
  core::AccessLog log;
  core::ConflictReport report;
  core::HighLevelPattern pattern;
  core::TransitionMix local;
  core::TransitionMix global;
  core::MetadataCensus census;
  core::Advice advice;
  core::RaceCheck races;
};

/// `threads` parallelizes the analysis stages; outputs are identical for
/// every value (default 1 keeps the reproduction binaries sequential).
inline Analysis analyze_app(const apps::AppInfo& info,
                            apps::AppConfig cfg = paper_scale(),
                            vfs::PfsConfig pfs_cfg = {},
                            std::vector<sim::ClockModel> clocks = {},
                            int threads = 1) {
  Analysis a;
  a.bundle = apps::run_app(info, cfg, pfs_cfg, std::move(clocks));
  a.log = core::reconstruct_accesses(a.bundle);
  a.report = core::detect_conflicts(a.log, core::ConflictOptions{.threads = threads});
  a.pattern = core::classify_high_level(a.log, cfg.nranks);
  a.local = core::local_pattern(a.log, threads);
  a.global = core::global_pattern(a.log, threads);
  a.census = core::census_metadata(a.bundle);
  core::HappensBefore hb(a.bundle.comm, cfg.nranks);
  a.races = core::validate_synchronization(a.report, hb, threads);
  a.advice = core::advise(a.report, &hb, threads);
  return a;
}

inline std::string check(bool v) { return v ? "Y" : ""; }
inline std::string match_mark(bool ok) { return ok ? "ok" : "DIFF"; }

inline void heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace pfsem::bench
