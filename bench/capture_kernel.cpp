#include "capture_kernel.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <vector>

#include "pfsem/trace/serialize.hpp"

namespace pfsem_bench {

namespace {

using namespace pfsem;

double now_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

}  // namespace

CaptureRun run_capture(sim::SchedulerKind kind, trace::CaptureMode mode,
                       int roots, int rounds, int reps) {
  constexpr int kRanks = 64;
  CaptureRun out;
  trace::TraceBundle bundle;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_seconds();
    sim::Engine engine(kind);
    trace::Collector collector(kRanks, {}, mode);
    collector.reserve(kRanks, static_cast<std::size_t>(roots) *
                                  static_cast<std::size_t>(rounds) / kRanks);
    std::vector<FileId> files;
    files.reserve(kRanks);
    for (int f = 0; f < kRanks; ++f) {
      files.push_back(
          collector.intern("/scratch/capture/shard." + std::to_string(f)));
    }
    auto proc = [](sim::Engine* eng, trace::Collector* col, Rank rank,
                   FileId file, int id, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        // Each emitted record rides on a burst of fairness round-trips —
        // the shape of contended collective I/O, where ranks yield many
        // times per operation. Almost all delays are 0 with a sprinkle of
        // near-ring and far-heap delays so both tiers stay live (the mix
        // is deterministic per task), keeping the pending set ~roots deep.
        for (int s = 0; s < 8; ++s) {
          SimDuration d = 0;
          const int step = i * 8 + s;
          if ((step + id) % 61 == 7) d = 1 + (id % 3);
          if ((step + id) % 257 == 21) d = 100 + (id % 50);
          co_await eng->delay(d);
        }
        trace::Record rec;
        rec.tstart = eng->now();
        rec.tend = eng->now() + 1;
        rec.rank = rank;
        rec.func = trace::Func::pwrite;
        rec.offset = static_cast<Offset>(i) * 4096;
        rec.count = 4096;
        rec.ret = 4096;
        rec.file = file;
        col->emit(rec);
      }
    };
    for (int id = 0; id < roots; ++id) {
      engine.spawn(proc(&engine, &collector, static_cast<Rank>(id % kRanks),
                        files[static_cast<std::size_t>(id % kRanks)], id,
                        rounds));
    }
    engine.run();
    bundle = collector.take();
    out.events = engine.events_dispatched();
    best = std::min(best, now_seconds() - t0);
  }
  out.seconds = best;
  std::ostringstream os;
  trace::write_compact(bundle, os);
  out.compact_bytes = os.str();
  return out;
}

}  // namespace pfsem_bench
