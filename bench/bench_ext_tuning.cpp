// EXTENSION bench (paper Section 2.3): per-file tunable consistency.
// The paper's per-application verdict is conservative: one conflicting
// library-metadata file (ADIOS's md.idx, NetCDF's header) forces a model
// onto gigabytes of conflict-free bulk data. This bench computes the
// weakest safe model per *file* and shows how much of each application's
// I/O could run fully relaxed if the PFS accepted per-file hints — and
// estimates the lock-traffic saving on the simulated strong-semantics
// PFS.

#include <iostream>

#include "bench_common.hpp"
#include "pfsem/core/tuning.hpp"

int main() {
  using namespace pfsem;
  using bench::analyze_app;

  bench::heading("Extension: per-file consistency tuning");
  Table t({"Configuration", "whole-app model", "files", "strong files",
           "relaxed bytes", "eventual bytes"});
  double worst_relaxed = 1.0;
  std::string worst_app;
  for (const auto& info : apps::registry()) {
    const auto a = analyze_app(info);
    const auto tuning = core::per_file_tuning(a.log);
    int strong_files = 0;
    for (const auto& f : tuning.files) {
      if (f.weakest == vfs::ConsistencyModel::Strong) ++strong_files;
    }
    t.add_row({info.name, vfs::to_string(a.advice.weakest),
               std::to_string(tuning.files.size()),
               std::to_string(strong_files),
               fmt_pct(tuning.relaxed_fraction()),
               fmt_pct(tuning.eventual_fraction())});
    if (tuning.relaxed_fraction() < worst_relaxed) {
      worst_relaxed = tuning.relaxed_fraction();
      worst_app = info.name;
    }
  }
  t.print(std::cout);
  std::cout << "\nEvery configuration keeps >= " << fmt_pct(worst_relaxed)
            << " of its bytes on weaker-than-POSIX semantics (minimum: "
            << worst_app
            << "); the conflicting files are always small library-metadata "
               "files, so per-file hints recover nearly all relaxed-"
               "semantics benefit even for the conflicting applications.\n";

  // Concrete illustration: LAMMPS-ADIOS — whole-app session requirement
  // is caused by one index file of a few hundred bytes.
  const auto a = analyze_app(*apps::find_app("LAMMPS-ADIOS"));
  const auto tuning = core::per_file_tuning(a.log);
  bench::heading("LAMMPS-ADIOS per-file detail");
  Table d({"file", "weakest model", "bytes", "session pairs"});
  for (const auto& f : tuning.files) {
    d.add_row({f.path, vfs::to_string(f.weakest), std::to_string(f.bytes),
               std::to_string(f.session_pairs)});
  }
  d.print(std::cout);

  const bool ok = worst_relaxed > 0.9;
  std::cout << (ok ? "SHAPE OK\n" : "SHAPE MISMATCH\n");
  return ok ? 0 : 1;
}
