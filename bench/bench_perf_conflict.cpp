// Performance bench for conflict detection: end-to-end trace analysis
// throughput (reconstruction + detection on a real FLASH trace) and the
// Section 5.2 ablation — annotating each record with its next commit /
// close by a single traversal versus per-pair binary searches over the
// commit tables (the two implementation strategies the paper discusses).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/overlap.hpp"

namespace {

using namespace pfsem;

const trace::TraceBundle& flash_bundle() {
  static const trace::TraceBundle bundle = [] {
    return apps::run_app(*apps::find_app("FLASH-fbs"), bench::paper_scale());
  }();
  return bundle;
}

void BM_OffsetReconstruction_Flash(benchmark::State& state) {
  const auto& bundle = flash_bundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::reconstruct_accesses(bundle));
  }
  state.counters["records"] = static_cast<double>(bundle.records.size());
}
BENCHMARK(BM_OffsetReconstruction_Flash);

void BM_ConflictDetection_Flash(benchmark::State& state) {
  const auto log = core::reconstruct_accesses(flash_bundle());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_conflicts(log));
  }
}
BENCHMARK(BM_ConflictDetection_Flash);

/// Thread-scaling sweep over the same trace; output is byte-identical at
/// every thread count, so the only variable is wall time. On a machine
/// with fewer cores than the Arg the extra workers just contend.
void BM_ConflictDetection_Flash_Threads(benchmark::State& state) {
  const auto log = core::reconstruct_accesses(flash_bundle());
  const core::ConflictOptions opts{.threads = static_cast<int>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_conflicts(log, opts));
  }
}
BENCHMARK(BM_ConflictDetection_Flash_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_EndToEnd_Flash(benchmark::State& state) {
  const auto& bundle = flash_bundle();
  for (auto _ : state) {
    const auto log = core::reconstruct_accesses(bundle);
    benchmark::DoNotOptimize(core::detect_conflicts(log));
  }
}
BENCHMARK(BM_EndToEnd_Flash);

// --- ablation: traversal annotation vs per-pair binary search -----------

struct SyntheticFile {
  core::FileLog fl;
  std::vector<core::OverlapPair> pairs;
};

SyntheticFile synthetic_file(std::size_t accesses, std::size_t commits) {
  SyntheticFile sf;
  Rng rng(99);
  for (std::size_t i = 0; i < accesses; ++i) {
    core::Access a;
    a.t = static_cast<SimTime>(i * 100);
    a.rank = static_cast<Rank>(rng.below(64));
    a.type = core::AccessType::Write;
    a.ext = {0, 96};  // everything overlaps: max pair pressure
    a.t_commit = kTimeNever;
    sf.fl.accesses.push_back(a);
  }
  for (Rank r = 0; r < 64; ++r) {
    auto& v = sf.fl.commits[r];
    for (std::size_t c = 0; c < commits; ++c) {
      v.push_back(static_cast<SimTime>(rng.below(accesses * 100)));
    }
    std::sort(v.begin(), v.end());
  }
  sf.pairs = core::detect_overlaps(sf.fl.accesses);
  return sf;
}

/// Strategy A (ours): one pass per rank to annotate t_commit, then O(1)
/// per pair.
void BM_CommitCondition_Annotated(benchmark::State& state) {
  auto sf = synthetic_file(2000, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    // annotate
    for (auto& a : sf.fl.accesses) {
      const auto& v = sf.fl.commits[a.rank];
      auto ub = std::upper_bound(v.begin(), v.end(), a.t);
      a.t_commit = ub == v.end() ? kTimeNever : *ub;
    }
    // evaluate pairs
    std::uint64_t conflicts = 0;
    for (const auto& p : sf.pairs) {
      const auto& a = sf.fl.accesses[p.first];
      const auto& b = sf.fl.accesses[p.second];
      const auto& first = a.t <= b.t ? a : b;
      const auto& second = a.t <= b.t ? b : a;
      conflicts += first.t_commit > second.t ? 1 : 0;
    }
    benchmark::DoNotOptimize(conflicts);
  }
  state.counters["pairs"] = static_cast<double>(sf.pairs.size());
}
BENCHMARK(BM_CommitCondition_Annotated)->Arg(4)->Arg(64)->Arg(1024);

/// Strategy B (paper's alternative): binary search the commit table per
/// pair.
void BM_CommitCondition_BinarySearchPerPair(benchmark::State& state) {
  auto sf = synthetic_file(2000, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::uint64_t conflicts = 0;
    for (const auto& p : sf.pairs) {
      const auto& a = sf.fl.accesses[p.first];
      const auto& b = sf.fl.accesses[p.second];
      const auto& first = a.t <= b.t ? a : b;
      const auto& second = a.t <= b.t ? b : a;
      const auto& v = sf.fl.commits[first.rank];
      auto ub = std::upper_bound(v.begin(), v.end(), first.t);
      const SimTime tc = ub == v.end() ? kTimeNever : *ub;
      conflicts += tc > second.t ? 1 : 0;
    }
    benchmark::DoNotOptimize(conflicts);
  }
}
BENCHMARK(BM_CommitCondition_BinarySearchPerPair)->Arg(4)->Arg(64)->Arg(1024);

// --- happens-before reconstruction (Section 5.2 validation) --------------

void BM_HappensBeforeBuild_Flash(benchmark::State& state) {
  const auto& bundle = flash_bundle();
  for (auto _ : state) {
    core::HappensBefore hb(bundle.comm, bundle.nranks);
    benchmark::DoNotOptimize(&hb);
  }
  state.counters["collectives"] =
      static_cast<double>(bundle.comm.collectives.size());
}
BENCHMARK(BM_HappensBeforeBuild_Flash);

void BM_HappensBeforeQuery_Flash(benchmark::State& state) {
  const auto& bundle = flash_bundle();
  core::HappensBefore hb(bundle.comm, bundle.nranks);
  const auto log = core::reconstruct_accesses(bundle);
  const auto report = core::detect_conflicts(log);
  for (auto _ : state) {
    std::uint64_t ordered = 0;
    for (const auto& c : report.conflicts) {
      ordered += hb.ordered(c.first.rank, c.first.t, c.second.rank, c.second.t);
    }
    benchmark::DoNotOptimize(ordered);
  }
  state.counters["pairs"] = static_cast<double>(report.conflicts.size());
}
BENCHMARK(BM_HappensBeforeQuery_Flash);

// --- ablation: sort-based merge (Section 5.1 remark) ---------------------

void BM_SortRecords(benchmark::State& state) {
  const auto& bundle = flash_bundle();
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < bundle.records.size(); ++i) order.push_back(i);
  for (auto _ : state) {
    auto copy = order;
    std::stable_sort(copy.begin(), copy.end(), [&](std::size_t x, std::size_t y) {
      return bundle.records[x].tstart < bundle.records[y].tstart;
    });
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_SortRecords);

/// The paper notes per-rank records are already sorted, so a k-way merge
/// could replace the sort.
void BM_KWayMergeRecords(benchmark::State& state) {
  const auto& bundle = flash_bundle();
  std::vector<std::vector<std::size_t>> per_rank(64);
  for (std::size_t i = 0; i < bundle.records.size(); ++i) {
    per_rank[static_cast<std::size_t>(bundle.records[i].rank)].push_back(i);
  }
  for (auto _ : state) {
    using Head = std::pair<SimTime, std::size_t>;  // (time, rank)
    std::vector<std::size_t> cursor(64, 0);
    std::priority_queue<Head, std::vector<Head>, std::greater<>> heap;
    for (std::size_t r = 0; r < 64; ++r) {
      if (!per_rank[r].empty()) {
        heap.emplace(bundle.records[per_rank[r][0]].tstart, r);
      }
    }
    std::vector<std::size_t> merged;
    merged.reserve(bundle.records.size());
    while (!heap.empty()) {
      const auto [t, r] = heap.top();
      heap.pop();
      merged.push_back(per_rank[r][cursor[r]]);
      if (++cursor[r] < per_rank[r].size()) {
        heap.emplace(bundle.records[per_rank[r][cursor[r]]].tstart, r);
      }
    }
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_KWayMergeRecords);

}  // namespace
