// Ablation bench for the PFS models: the cost of strong (POSIX) semantics
// versus the relaxed models. Measures operation cost (simulated lock
// traffic is charged as latency) and reports the lock request/revocation
// counters for shared-file workloads — the Section 3.1 argument that
// distributed locking makes strong semantics expensive under sharing.

#include <benchmark/benchmark.h>

#include "pfsem/trace/record.hpp"
#include "pfsem/vfs/pfs.hpp"

namespace {

using namespace pfsem;
using vfs::ConsistencyModel;

vfs::PfsConfig cfg_for(ConsistencyModel m) {
  vfs::PfsConfig cfg;
  cfg.model = m;
  cfg.lock_block = 1 << 20;
  return cfg;
}

/// N ranks interleave 64 KiB writes across a shared file: under strong
/// semantics adjacent ranks keep stealing each other's block locks.
void shared_file_contention(benchmark::State& state, ConsistencyModel m) {
  const int nranks = 16;
  const std::uint64_t chunk = 64 * 1024;
  for (auto _ : state) {
    state.PauseTiming();
    vfs::Pfs fs(cfg_for(m));
    std::vector<int> fds;
    for (Rank r = 0; r < nranks; ++r) {
      fds.push_back(fs.open(r, "shared", trace::kCreate | trace::kRdWr, 0).fd);
    }
    state.ResumeTiming();
    SimTime t = 0;
    SimDuration total_cost = 0;
    for (int round = 0; round < 64; ++round) {
      for (Rank r = 0; r < nranks; ++r) {
        // Interleaved offsets: rank r writes round-major so block owners
        // alternate (worst case for lock caching).
        const Offset off =
            (static_cast<Offset>(round) * nranks + static_cast<Offset>(r)) * chunk;
        total_cost += fs.pwrite(r, fds[static_cast<std::size_t>(r)], off, chunk,
                                t += 10)
                          .cost;
      }
    }
    benchmark::DoNotOptimize(total_cost);
    state.counters["sim_cost_ms"] = static_cast<double>(total_cost) * 1e-6;
    state.counters["lock_requests"] =
        static_cast<double>(fs.lock_stats().requests);
    state.counters["lock_revocations"] =
        static_cast<double>(fs.lock_stats().revocations);
  }
}

void BM_SharedWrite_Strong(benchmark::State& state) {
  shared_file_contention(state, ConsistencyModel::Strong);
}
void BM_SharedWrite_Commit(benchmark::State& state) {
  shared_file_contention(state, ConsistencyModel::Commit);
}
void BM_SharedWrite_Session(benchmark::State& state) {
  shared_file_contention(state, ConsistencyModel::Session);
}
void BM_SharedWrite_Eventual(benchmark::State& state) {
  shared_file_contention(state, ConsistencyModel::Eventual);
}
BENCHMARK(BM_SharedWrite_Strong);
BENCHMARK(BM_SharedWrite_Commit);
BENCHMARK(BM_SharedWrite_Session);
BENCHMARK(BM_SharedWrite_Eventual);

/// False sharing: many small writes inside one lock block ping-ponging
/// between two ranks — the pathological strong-semantics case the paper's
/// Section 3.1 describes (small block reads/writes under high sharing).
void BM_FalseSharing_Strong(benchmark::State& state) {
  for (auto _ : state) {
    vfs::Pfs fs(cfg_for(ConsistencyModel::Strong));
    const int a = fs.open(0, "f", trace::kCreate | trace::kRdWr, 0).fd;
    const int b = fs.open(1, "f", trace::kRdWr, 0).fd;
    SimTime t = 0;
    SimDuration cost = 0;
    for (int i = 0; i < 1000; ++i) {
      cost += fs.pwrite(0, a, static_cast<Offset>(i % 64) * 128, 128, t += 10).cost;
      cost += fs.pwrite(1, b, static_cast<Offset>(i % 64) * 128 + 64, 64, t += 10).cost;
    }
    benchmark::DoNotOptimize(cost);
    state.counters["revocations_per_op"] =
        static_cast<double>(fs.lock_stats().revocations) / 2000.0;
    state.counters["sim_cost_ms"] = static_cast<double>(cost) * 1e-6;
  }
}
BENCHMARK(BM_FalseSharing_Strong);

/// Same access pattern on disjoint per-rank regions: locks are acquired
/// once and reused — strong semantics is cheap without sharing.
void BM_DisjointRegions_Strong(benchmark::State& state) {
  for (auto _ : state) {
    vfs::Pfs fs(cfg_for(ConsistencyModel::Strong));
    const int a = fs.open(0, "f", trace::kCreate | trace::kRdWr, 0).fd;
    const int b = fs.open(1, "f", trace::kRdWr, 0).fd;
    SimTime t = 0;
    SimDuration cost = 0;
    for (int i = 0; i < 1000; ++i) {
      cost += fs.pwrite(0, a, static_cast<Offset>(i % 64) * 128, 128, t += 10).cost;
      cost += fs.pwrite(1, b, (1 << 21) + static_cast<Offset>(i % 64) * 128, 128,
                        t += 10)
                  .cost;
    }
    benchmark::DoNotOptimize(cost);
    state.counters["revocations_per_op"] =
        static_cast<double>(fs.lock_stats().revocations) / 2000.0;
    state.counters["sim_cost_ms"] = static_cast<double>(cost) * 1e-6;
  }
}
BENCHMARK(BM_DisjointRegions_Strong);

/// Visibility-resolution read throughput as write history grows.
void BM_ReadResolution(benchmark::State& state) {
  vfs::Pfs fs(cfg_for(ConsistencyModel::Commit));
  const int w = fs.open(0, "f", trace::kCreate | trace::kRdWr, 0).fd;
  SimTime t = 0;
  const auto writes = state.range(0);
  for (std::int64_t i = 0; i < writes; ++i) {
    (void)fs.pwrite(0, w, static_cast<Offset>(i % 256) * 4096, 4096, t += 10);
  }
  fs.fsync(0, w, t += 10);
  const int r = fs.open(1, "f", trace::kRdOnly, t += 10).fd;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.pread(1, r, 0, 256 * 4096, t));
  }
  state.SetComplexityN(writes);
}
BENCHMARK(BM_ReadResolution)->Range(256, 1 << 14)->Complexity();

}  // namespace
