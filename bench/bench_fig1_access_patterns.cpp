// Figure 1 — overview of low-level access patterns: (a) the global mix of
// consecutive/monotonic/random transitions from the PFS's perspective and
// (b) the local mix from each process's perspective, per configuration.
//
// Shape targets from the paper: local random accesses are rare everywhere;
// globally, independent-I/O FLASH (nofbs) and LBANN show large random
// fractions; POSIX rank-0 writers are ~100% consecutive both ways.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace pfsem;
  using bench::analyze_app;

  Table ga({"Configuration", "consecutive", "monotonic", "random", "transitions"});
  Table lo({"Configuration", "consecutive", "monotonic", "random", "transitions"});

  double flash_nofbs_random = 0, lbann_random = 0;
  double worst_local_random = 0;
  std::string worst_local_app;
  for (const auto& info : apps::registry()) {
    const auto a = analyze_app(info);
    ga.add_row({info.name, fmt_pct(a.global.frac_consecutive()),
                fmt_pct(a.global.frac_monotonic()),
                fmt_pct(a.global.frac_random()),
                std::to_string(a.global.total())});
    lo.add_row({info.name, fmt_pct(a.local.frac_consecutive()),
                fmt_pct(a.local.frac_monotonic()),
                fmt_pct(a.local.frac_random()),
                std::to_string(a.local.total())});
    if (info.name == "FLASH-nofbs") flash_nofbs_random = a.global.frac_random();
    if (info.name == "LBANN") lbann_random = a.global.frac_random();
    if (a.local.frac_random() > worst_local_random) {
      worst_local_random = a.local.frac_random();
      worst_local_app = info.name;
    }
  }
  bench::heading("Figure 1(a): global pattern from the PFS's perspective");
  ga.print(std::cout);
  bench::heading("Figure 1(b): local pattern from each process's perspective");
  lo.print(std::cout);

  std::cout << "\nShape checks vs the paper:\n"
            << "  FLASH-nofbs global random fraction: "
            << fmt_pct(flash_nofbs_random) << " (paper: ~50%, high)\n"
            << "  LBANN global random fraction:       " << fmt_pct(lbann_random)
            << " (paper: large, reads interleave)\n"
            << "  largest local random fraction:      "
            << fmt_pct(worst_local_random) << " (" << worst_local_app
            << ") — locally random accesses are rare (paper: rare)\n";
  const bool ok = flash_nofbs_random > 0.3 && lbann_random > 0.3 &&
                  worst_local_random < 0.5;
  std::cout << (ok ? "SHAPE OK\n" : "SHAPE MISMATCH\n");
  return ok ? 0 : 1;
}
