#!/bin/sh
# Regenerate BENCH_perf.json at the repository root. Run from anywhere;
# builds the harness if needed. See docs/performance.md for the format.
#
#   run_perf.sh [--require-clean] [extra bench_perf_scaling args...]
#
# A dirty tree taints the numbers (the JSON's git_sha no longer names the
# code that produced them), so it is warned about loudly; --require-clean
# turns the warning into a hard failure (CI uses this so published
# numbers are always reproducible from the recorded SHA). All other
# arguments pass through to bench_perf_scaling — e.g. --check for the
# small-size correctness run, or --scale64k for the 65536-rank
# streaming-only point.
set -e
root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

require_clean=0
for arg in "$@"; do
  case "$arg" in
    --require-clean) require_clean=1 ;;
  esac
done
# Strip --require-clean from what we forward to the harness.
set -- $(for arg in "$@"; do [ "$arg" = "--require-clean" ] || printf '%s ' "$arg"; done)

sha=$(git -C "$root" rev-parse --short HEAD 2> /dev/null || echo unknown)
if ! git -C "$root" diff --quiet HEAD 2> /dev/null; then
  if [ "$require_clean" = 1 ]; then
    echo "run_perf.sh: FATAL: working tree is dirty and --require-clean" >&2
    echo "run_perf.sh: was given; commit or stash before benchmarking." >&2
    exit 1
  fi
  echo "==================================================================" >&2
  echo "run_perf.sh: WARNING: working tree is DIRTY — the recorded git_sha" >&2
  echo "run_perf.sh: ($sha-dirty) does not name the code being measured." >&2
  echo "run_perf.sh: Numbers produced now are NOT reproducible; do not" >&2
  echo "run_perf.sh: commit them. Pass --require-clean to make this fatal." >&2
  echo "==================================================================" >&2
  sha="$sha-dirty"
fi
# Stamp the run so numbers from different machines/dates are never
# confused: ISO-8601 UTC timestamp plus the hostname.
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
host=$(hostname 2> /dev/null || uname -n 2> /dev/null || echo unknown)
cmake -S "$root" -B "$root/build" > /dev/null
cmake --build "$root/build" --target bench_perf_scaling -j > /dev/null
exec "$root/build/bench/bench_perf_scaling" \
  --out "$root/BENCH_perf.json" --sha "$sha" \
  --timestamp "$stamp" --host "$host" "$@"
