#!/bin/sh
# Regenerate BENCH_perf.json at the repository root. Run from anywhere;
# builds the harness if needed. See docs/performance.md for the format.
set -e
root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cmake -S "$root" -B "$root/build" > /dev/null
cmake --build "$root/build" --target bench_perf_scaling -j > /dev/null
exec "$root/build/bench/bench_perf_scaling" --out "$root/BENCH_perf.json"
