#!/bin/sh
# Regenerate BENCH_perf.json at the repository root. Run from anywhere;
# builds the harness if needed. See docs/performance.md for the format.
set -e
root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
sha=$(git -C "$root" rev-parse --short HEAD 2> /dev/null || echo unknown)
if ! git -C "$root" diff --quiet HEAD 2> /dev/null; then
  sha="$sha-dirty"
fi
# Stamp the run so numbers from different machines/dates are never
# confused: ISO-8601 UTC timestamp plus the hostname.
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
host=$(hostname 2> /dev/null || uname -n 2> /dev/null || echo unknown)
cmake -S "$root" -B "$root/build" > /dev/null
cmake --build "$root/build" --target bench_perf_scaling -j > /dev/null
exec "$root/build/bench/bench_perf_scaling" \
  --out "$root/BENCH_perf.json" --sha "$sha" \
  --timestamp "$stamp" --host "$host"
