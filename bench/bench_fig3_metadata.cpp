// Figure 3 — POSIX metadata and utility operations used by each
// configuration, attributed to the layer that issued them (MPI-IO library,
// HDF5, application/other). Prints the matrix and the paper's qualitative
// checks: each app uses only a small subset; libraries add operations;
// rename/chown/utime are never used.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace pfsem;
  using bench::analyze_app;

  // Collect per-config censuses first.
  std::vector<std::pair<std::string, core::MetadataCensus>> rows;
  for (const auto& info : apps::registry()) {
    rows.emplace_back(info.name, analyze_app(info).census);
  }

  // Columns: only operations used by at least one configuration (the
  // paper's figure shows the full monitored axis; we print used ones and
  // list the never-used set after).
  std::vector<trace::Func> used_cols, never_used;
  for (trace::Func f : core::monitored_metadata_funcs()) {
    bool used = false;
    for (const auto& [name, census] : rows) used |= census.used(f);
    (used ? used_cols : never_used).push_back(f);
  }

  bench::heading(
      "Figure 3: metadata ops per configuration "
      "(M = issued by MPI-IO, H = by HDF5, N/D/S = NetCDF/ADIOS/Silo, A = app)");
  std::vector<std::string> header{"Configuration"};
  for (auto f : used_cols) header.emplace_back(trace::to_string(f));
  Table t(header);
  for (const auto& [name, census] : rows) {
    std::vector<std::string> cells{name};
    for (auto f : used_cols) {
      std::string cell;
      auto it = census.usage.find(f);
      if (it != census.usage.end()) {
        for (const auto& [layer, count] : it->second) {
          switch (layer) {
            case trace::Layer::MpiIo: cell += 'M'; break;
            case trace::Layer::Hdf5: cell += 'H'; break;
            case trace::Layer::NetCdf: cell += 'N'; break;
            case trace::Layer::Adios: cell += 'D'; break;
            case trace::Layer::Silo: cell += 'S'; break;
            default: cell += 'A'; break;
          }
        }
      }
      cells.push_back(cell);
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);

  std::cout << "\nNever used by any configuration (paper: e.g. rename, "
               "chown, utime are unused):\n  ";
  for (auto f : never_used) std::cout << trace::to_string(f) << ' ';
  std::cout << "\n";

  // Qualitative checks.
  auto census_of = [&](const std::string& name) -> const core::MetadataCensus& {
    for (const auto& [n, c] : rows) {
      if (n == name) return c;
    }
    throw Error("missing config " + name);
  };
  const auto& pd_posix = census_of("ParaDiS-POSIX");
  const auto& pd_hdf5 = census_of("ParaDiS-HDF5");
  const bool paradis_ok = pd_hdf5.used(trace::Func::lstat) &&
                          pd_hdf5.used(trace::Func::fstat) &&
                          pd_hdf5.used(trace::Func::ftruncate) &&
                          !pd_posix.used(trace::Func::lstat) &&
                          !pd_posix.used(trace::Func::ftruncate);
  const auto& lmp_posix = census_of("LAMMPS-POSIX");
  const auto& lmp_nc = census_of("LAMMPS-NetCDF");
  const auto& lmp_ad = census_of("LAMMPS-ADIOS");
  const bool lammps_ok = lmp_nc.distinct_ops() > lmp_posix.distinct_ops() &&
                         lmp_ad.used(trace::Func::getcwd) &&
                         lmp_ad.used(trace::Func::unlink);
  bool rename_unused = true;
  for (const auto& [n, c] : rows) {
    rename_unused &= !c.used(trace::Func::rename) &&
                     !c.used(trace::Func::chown) && !c.used(trace::Func::utime);
  }
  std::size_t max_ops = 0;
  for (const auto& [n, c] : rows) max_ops = std::max(max_ops, c.distinct_ops());

  std::cout << "\nShape checks vs the paper:\n"
            << "  ParaDiS-HDF5 adds lstat/fstat/ftruncate over ParaDiS-POSIX: "
            << (paradis_ok ? "yes" : "NO") << "\n"
            << "  LAMMPS I/O libraries add ops (getcwd/unlink etc.): "
            << (lammps_ok ? "yes" : "NO") << "\n"
            << "  rename/chown/utime never used: "
            << (rename_unused ? "yes" : "NO") << "\n"
            << "  largest per-config distinct-op count: " << max_ops << " of "
            << core::monitored_metadata_funcs().size()
            << " monitored (paper: small subsets only)\n";
  const bool ok = paradis_ok && lammps_ok && rename_unused && max_ops <= 12;
  std::cout << (ok ? "SHAPE OK\n" : "SHAPE MISMATCH\n");
  return ok ? 0 : 1;
}
