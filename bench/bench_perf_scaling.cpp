// Scaling harness for the parallel analysis pipeline. Unlike the
// google-benchmark binaries this one emits a machine-readable
// BENCH_perf.json so the numbers live in the repository:
//
//   bench_perf_scaling [--out FILE]    full sizes, write JSON (default
//                                      BENCH_perf.json in the cwd)
//   bench_perf_scaling --check         small sizes, assert correctness
//                                      (identical parallel/sequential
//                                      output always; speedup bounds only
//                                      where the host can express them)
//
// Experiments:
//   threads        detect_conflicts over a synthetic many-file log at
//                  1/2/4/8 threads — the work-stealing pool scaling curve;
//   sweep          sweep-line vs the paper's Algorithm-1 scan on an
//                  adversarial long-lived-read log — the single-thread
//                  algorithmic win;
//   reconstruction interned vs string-keyed record grouping;
//   capture        bucketed-ring scheduler + per-rank arenas vs the
//                  retained reference capture path on an adversarial
//                  delay(0)-heavy workload (--check floor: >=2x, and the
//                  two bundles must be byte-identical);
//   run_to_report  a registered app (FLASH-fbs) driven end to end —
//                  capture + full report — at ranks 64/256/1024, on both
//                  the materialized and the chunked streaming pipeline,
//                  with peak RSS per pipeline measured in a fresh
//                  subprocess each (--scale64k appends a 65536-rank
//                  streaming-only point; materializing it would need the
//                  whole record array in memory at once).
//   capture_crossover  FLASH-fbs capture wall time, fast vs reference
//                  pair, at small rank counts — locates the break-even
//                  that CaptureMode::Auto's rank threshold encodes.
//   cluster_failover  a read-heavy app (LBANN) on the multi-server
//                  PfsCluster, healthy vs one crashed MDS + one crashed
//                  OST: wall throughput, simulated time-to-recover
//                  (completion-time overhead of failover backoffs), and
//                  the degraded-read count.
//
// Subprocess mode (used internally for RSS measurement, and by the
// stream_rss_bounded ctest entry):
//   bench_perf_scaling --rss-probe stream|materialize RANKS
//                  run the FLASH-fbs run->report pipeline once in the
//                  given mode and print one line of key=value pairs
//                  including this process's getrusage peak RSS.

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <utility>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "capture_kernel.hpp"

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/report.hpp"
#include "pfsem/core/stream_analyze.hpp"
#include "pfsem/trace/record.hpp"
#include "pfsem/trace/serialize.hpp"
#include "pfsem/trace/spill.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/overlap.hpp"
#include "pfsem/exec/pool.hpp"
#include "pfsem/sim/engine.hpp"
#include "pfsem/trace/collector.hpp"
#include "pfsem/util/rng.hpp"

namespace {

using namespace pfsem;

double now_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Best-of-k wall time of `fn` in seconds.
template <typename Fn>
double best_of(int k, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < k; ++i) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

/// Synthetic many-file log: per file a checkpoint-like mix of mostly
/// disjoint per-rank writes plus a shared header that every rank rewrites
/// (real overlap pressure on every file).
core::AccessLog make_conflict_log(std::size_t nfiles,
                                  std::size_t accesses_per_file) {
  core::AccessLog log;
  log.nranks = 64;
  Rng rng(1234);
  for (std::size_t f = 0; f < nfiles; ++f) {
    auto& fl = log.file("/scratch/run/ckpt." + std::to_string(f));
    for (std::size_t i = 0; i < accesses_per_file; ++i) {
      core::Access a;
      a.rank = static_cast<Rank>(rng.below(64));
      a.t = static_cast<SimTime>(i * 1000 + f);
      a.t_open = 0;
      a.t_close = kTimeNever;
      a.t_commit = kTimeNever;
      a.type =
          rng.chance(0.75) ? core::AccessType::Write : core::AccessType::Read;
      if (i % 64 == 0) {
        a.ext = {0, 128};  // shared header rewrite
      } else {
        const Offset begin = static_cast<Offset>(rng.below(1u << 20)) * 4096;
        a.ext = {begin, begin + 4096};
      }
      fl.accesses.push_back(a);
    }
  }
  return log;
}

/// Adversarial single-file log for the sweep-vs-scan comparison: n mostly
/// long-lived reads and a few writes. The scan's stop condition is
/// begin-order, so it visits ~n^2/2 read-read candidates that the
/// default writes_only filter then rejects; the sweep never visits them.
std::vector<core::Access> long_reads(std::size_t n) {
  std::vector<core::Access> v;
  v.reserve(n);
  constexpr std::size_t kWriters = 16;
  for (std::size_t i = 0; i < n; ++i) {
    core::Access a;
    a.rank = static_cast<Rank>(i % 64);
    a.t = static_cast<SimTime>(i);
    if (i % std::max<std::size_t>(n / kWriters, 1) == 0) {
      a.type = core::AccessType::Write;
      a.ext = {static_cast<Offset>(i), static_cast<Offset>(i) + 4096};
    } else {
      a.type = core::AccessType::Read;
      a.ext = {static_cast<Offset>(i), 1'000'000'000};
    }
    v.push_back(a);
  }
  return v;
}

/// Canonical text form of a report, for exact equality checks.
std::string fingerprint(const core::ConflictReport& r) {
  std::ostringstream os;
  os << r.potential_pairs << '|' << r.session.count << r.session.waw_s
     << r.session.waw_d << r.session.raw_s << r.session.raw_d << '|'
     << r.commit.count << r.commit.waw_s << r.commit.waw_d << r.commit.raw_s
     << r.commit.raw_d << '\n';
  for (const auto& c : r.conflicts) {
    os << c.file << ' ' << c.first.rank << ' ' << c.first.t << ' '
       << c.first.ext.begin << ' ' << c.first.ext.end << ' ' << c.second.rank
       << ' ' << c.second.t << ' ' << c.second.ext.begin << ' '
       << c.second.ext.end << ' ' << static_cast<int>(c.kind) << ' '
       << c.same_process << c.under_commit << c.under_session << '\n';
  }
  return os.str();
}

struct ThreadPoint {
  int threads;
  double seconds;
};

/// Synthetic raw trace for the intern-vs-string grouping experiment:
/// `nrecords` data records spread round-robin over `nfiles` paths with
/// realistic path lengths (directory prefix + numbered leaf).
trace::TraceBundle make_bundle(std::size_t nfiles, std::size_t nrecords) {
  trace::TraceBundle bundle;
  bundle.nranks = 64;
  std::vector<FileId> ids;
  ids.reserve(nfiles);
  for (std::size_t f = 0; f < nfiles; ++f) {
    ids.push_back(bundle.intern("/scratch/project/run.0042/output/ckpt." +
                                std::to_string(f) + ".h5"));
  }
  Rng rng(99);
  for (std::size_t i = 0; i < nrecords; ++i) {
    trace::Record rec;
    rec.tstart = static_cast<SimTime>(i * 10);
    rec.tend = rec.tstart + 5;
    rec.rank = static_cast<Rank>(rng.below(64));
    rec.layer = trace::Layer::Posix;
    rec.func = trace::Func::pwrite;
    rec.offset = static_cast<std::int64_t>(rng.below(1u << 20)) * 4096;
    rec.count = 4096;
    rec.ret = 4096;
    rec.file = ids[i % nfiles];
    bundle.records.push_back(std::move(rec));
  }
  return bundle;
}

/// Per-record file grouping the way the retired design did it: resolve
/// every record to its path string and look the string up in a
/// string-keyed ordered map (what `AccessLog` used to be built on).
std::size_t group_by_string(const trace::TraceBundle& bundle) {
  std::map<std::string, std::vector<const trace::Record*>> groups;
  for (const auto& rec : bundle.records) {
    groups[std::string(bundle.path_of(rec))].push_back(&rec);
  }
  return groups.size();
}

/// The same grouping on the interned representation: the FileId indexes a
/// dense vector directly, no hashing or string compares per record.
std::size_t group_by_id(const trace::TraceBundle& bundle) {
  std::vector<std::vector<const trace::Record*>> groups(bundle.paths.size());
  for (const auto& rec : bundle.records) {
    groups[rec.file].push_back(&rec);
  }
  std::size_t active = 0;
  for (const auto& g : groups) active += !g.empty();
  return active;
}

// The capture-path kernel lives in capture_kernel.cpp (own TU so the
// timed coroutine loop's codegen is independent of this driver's size);
// see capture_kernel.hpp.
using pfsem_bench::CaptureRun;
using pfsem_bench::run_capture;

/// One end-to-end run→report point: capture FLASH-fbs at `ranks` on the
/// given capture path, then (fast path only) the full analysis + report.
struct RunToReportPoint {
  int ranks = 0;
  std::size_t records = 0;
  double capture_seconds = 0;
  double capture_reference_seconds = 0;
  double analysis_seconds = 0;
  // Chunked streaming pipeline (same workload, spill → merge → stream
  // analysis) plus peak RSS for both pipelines, each measured in a fresh
  // subprocess so neither allocator high-water pollutes the other.
  double stream_capture_seconds = 0;
  double stream_analysis_seconds = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t stream_peak_buffered = 0;
  long stream_rss_kb = 0;
  long materialized_rss_kb = 0;
  bool streaming_only = false;
};

/// This process's peak resident set, as the kernel accounts it (KiB on
/// Linux).
long current_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

std::string materialized_report_text(const trace::TraceBundle& bundle) {
  const auto log = core::reconstruct_accesses(bundle);
  const auto pairs = core::detect_file_overlaps(log);
  const auto conflicts = core::detect_conflicts(log, pairs, {});
  const auto rep = core::build_report(bundle, log, conflicts);
  std::ostringstream os;
  core::print_report(rep, os);
  return os.str();
}

/// The streaming run→report pipeline, timed phase by phase: capture
/// spills chunks into a 64 MiB-ceiling store, the harness dies, then one
/// replay pass drives the incremental analysis and the report.
struct StreamRun {
  std::uint64_t records = 0;
  double capture_seconds = 0;
  double analysis_seconds = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t peak_buffered = 0;
  std::string report;
};

StreamRun stream_run_to_report(const apps::AppInfo& info, int ranks) {
  StreamRun out;
  apps::AppConfig cfg;
  cfg.nranks = ranks;
  cfg.ranks_per_node = std::max(1, ranks / 8);
  trace::SpillStore store(64u << 20);
  trace::StreamMeta meta;
  double t0 = now_seconds();
  {
    trace::ChunkWriter writer(store, ranks);
    meta = apps::run_app_stream(info, writer, cfg);
    writer.finish(meta);
  }
  out.capture_seconds = now_seconds() - t0;
  out.spill_bytes = store.bytes();
  t0 = now_seconds();
  core::StreamAnalyzer analyzer(meta.nranks, std::move(meta.paths),
                                std::move(meta.rank_posix_counts),
                                meta.file_op_counts);
  {
    const auto in = store.open_read();
    trace::ChunkReader reader(*in);
    trace::Record rec;
    while (reader.next(rec)) analyzer.feed(rec);
    (void)reader.read_trailer();
  }
  out.peak_buffered = analyzer.peak_buffered();
  auto res = analyzer.finish();
  out.records = res.records;
  const auto pairs = core::detect_file_overlaps(res.log);
  const auto conflicts = core::detect_conflicts(res.log, pairs, {});
  const auto rep = core::assemble_report(std::move(res.stats), res.records,
                                         res.log.nranks, res.log, conflicts);
  std::ostringstream os;
  core::print_report(rep, os);
  out.report = os.str();
  out.analysis_seconds = now_seconds() - t0;
  return out;
}

/// Child mode for --rss-probe: one pipeline run, one line of key=value
/// output including this process's peak RSS.
int rss_probe_main(const std::string& mode, int ranks) {
  const auto* flash = apps::find_app("FLASH-fbs");
  if (flash == nullptr) return 1;
  if (mode == "stream") {
    const auto s = stream_run_to_report(*flash, ranks);
    std::cout << "records=" << s.records << " rss_kb=" << current_rss_kb()
              << " spill_bytes=" << s.spill_bytes
              << " peak_buffered=" << s.peak_buffered
              << " capture_seconds=" << s.capture_seconds
              << " analysis_seconds=" << s.analysis_seconds << "\n";
    return s.report.empty() ? 1 : 0;
  }
  if (mode == "materialize") {
    apps::AppConfig cfg;
    cfg.nranks = ranks;
    cfg.ranks_per_node = std::max(1, ranks / 8);
    double t0 = now_seconds();
    const auto bundle = apps::run_app(*flash, cfg);
    const double cap = now_seconds() - t0;
    t0 = now_seconds();
    const auto text = materialized_report_text(bundle);
    const double ana = now_seconds() - t0;
    std::cout << "records=" << bundle.records.size()
              << " rss_kb=" << current_rss_kb()
              << " spill_bytes=0 peak_buffered=0 capture_seconds=" << cap
              << " analysis_seconds=" << ana << "\n";
    return text.empty() ? 1 : 0;
  }
  std::cerr << "usage: bench_perf_scaling --rss-probe stream|materialize "
               "RANKS\n";
  return 2;
}

struct ProbeResult {
  bool ok = false;
  std::uint64_t records = 0;
  long rss_kb = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t peak_buffered = 0;
  double capture_seconds = 0;
  double analysis_seconds = 0;
};

/// Re-exec this binary as an --rss-probe child and parse its one-line
/// report. A fresh process per measurement is the only way getrusage's
/// high-water mark means anything.
ProbeResult probe_pipeline(const std::string& mode, int ranks) {
  ProbeResult r;
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
  if (n <= 0) return r;
  exe[n] = '\0';
  const std::string cmd = std::string(exe) + " --rss-probe " + mode + " " +
                          std::to_string(ranks) + " 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char line[512] = {};
  const bool got = std::fgets(line, sizeof line, pipe) != nullptr;
  const int rc = ::pclose(pipe);
  if (!got || rc != 0) return r;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    try {
      if (key == "records") r.records = std::stoull(val);
      else if (key == "rss_kb") r.rss_kb = std::stol(val);
      else if (key == "spill_bytes") r.spill_bytes = std::stoull(val);
      else if (key == "peak_buffered") r.peak_buffered = std::stoull(val);
      else if (key == "capture_seconds") r.capture_seconds = std::stod(val);
      else if (key == "analysis_seconds") r.analysis_seconds = std::stod(val);
    } catch (const std::exception&) {
      return r;
    }
  }
  r.ok = true;
  return r;
}

RunToReportPoint run_to_report(const apps::AppInfo& info, int ranks,
                               int reps) {
  RunToReportPoint pt;
  pt.ranks = ranks;
  apps::AppConfig cfg;
  cfg.nranks = ranks;
  cfg.ranks_per_node = std::max(1, ranks / 8);

  trace::TraceBundle bundle;
  pt.capture_seconds =
      best_of(reps, [&] { bundle = apps::run_app(info, cfg); });
  pt.records = bundle.records.size();

  apps::AppConfig ref_cfg = cfg;
  ref_cfg.scheduler = sim::SchedulerKind::Heap;
  ref_cfg.capture = trace::CaptureMode::Reference;
  pt.capture_reference_seconds =
      best_of(reps, [&] { (void)apps::run_app(info, ref_cfg); });

  std::string report_text;
  pt.analysis_seconds = best_of(reps, [&] {
    report_text = materialized_report_text(bundle);
    if (report_text.empty()) std::abort();  // keep the report alive
  });

  // The streaming pipeline on the identical workload; its report must be
  // byte-identical (the differential tests enforce this broadly, the
  // bench re-checks the exact configuration it publishes numbers for).
  StreamRun stream;
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto s = stream_run_to_report(info, ranks);
    if (s.capture_seconds + s.analysis_seconds < best) {
      best = s.capture_seconds + s.analysis_seconds;
      stream = std::move(s);
    }
  }
  if (stream.report != report_text) {
    std::cerr << "FAIL: streaming report differs from materialized at ranks="
              << ranks << "\n";
    std::abort();
  }
  pt.stream_capture_seconds = stream.capture_seconds;
  pt.stream_analysis_seconds = stream.analysis_seconds;
  pt.spill_bytes = stream.spill_bytes;
  pt.stream_peak_buffered = stream.peak_buffered;
  return pt;
}

int run(bool check, bool scale64k, const std::string& out_path,
        const std::string& sha, const std::string& timestamp,
        const std::string& host) {
  const int cores = exec::hardware_threads();
  const std::size_t nfiles = check ? 32 : 128;
  const std::size_t per_file = check ? 2'000 : 20'000;
  const std::size_t adversarial_n = check ? 8'192 : 16'384;
  const int reps = check ? 2 : 3;

  std::cout << "hardware threads: " << cores << "\n";

  // --- experiment 1: thread scaling of detect_conflicts ----------------
  const auto log = make_conflict_log(nfiles, per_file);
  const auto reference = core::detect_conflicts(log, core::ConflictOptions{.threads = 1});
  const std::string ref_print = fingerprint(reference);

  std::vector<ThreadPoint> points;
  for (const int t : {1, 2, 4, 8}) {
    core::ConflictReport got;
    const double secs = best_of(
        reps, [&] { got = core::detect_conflicts(log, core::ConflictOptions{.threads = t}); });
    if (fingerprint(got) != ref_print) {
      std::cerr << "FAIL: detect_conflicts(threads=" << t
                << ") differs from sequential\n";
      return 1;
    }
    points.push_back({t, secs});
    std::cout << "detect_conflicts threads=" << t << "  " << secs << " s\n";
  }

  // --- experiment 2: sweep vs scan on the adversarial log ---------------
  const auto adv = long_reads(adversarial_n);
  std::vector<core::OverlapPair> sweep_pairs, scan_pairs;
  // Interleaved best-of (sweep, scan, sweep, scan, ...): a transient load
  // spike on a shared host hits both sides instead of biasing the ratio
  // the --check floor asserts on. Check mode takes an extra rep — the
  // floor sits close to the single-core margin, so one noisy sample must
  // never decide it.
  double sweep_s = 1e300, scan_s = 1e300;
  for (int rep = 0; rep < (check ? 4 : reps); ++rep) {
    double t0 = now_seconds();
    sweep_pairs = core::detect_overlaps(adv);
    sweep_s = std::min(sweep_s, now_seconds() - t0);
    t0 = now_seconds();
    scan_pairs = core::detect_overlaps_scan(adv);
    scan_s = std::min(scan_s, now_seconds() - t0);
  }
  if (sweep_pairs != scan_pairs) {
    std::cerr << "FAIL: sweep and scan disagree on the adversarial log\n";
    return 1;
  }
  const double sweep_speedup = scan_s / sweep_s;
  std::cout << "sweep " << sweep_s << " s   scan " << scan_s
            << " s   speedup " << sweep_speedup << "x\n";

  // --- experiment 3: interned vs string-keyed record grouping -----------
  // The refactor's core claim: resolving each record's file by FileId into
  // a dense column beats hashing/comparing its path string into a
  // string-keyed map (the retired reconstruction hot path).
  const std::size_t rec_files = check ? 512 : 2'048;
  const std::size_t rec_records = check ? 400'000 : 4'000'000;
  const auto bundle = make_bundle(rec_files, rec_records);
  std::size_t string_groups = 0, id_groups = 0;
  const double string_s =
      best_of(reps, [&] { string_groups = group_by_string(bundle); });
  const double interned_s =
      best_of(reps, [&] { id_groups = group_by_id(bundle); });
  if (string_groups != id_groups) {
    std::cerr << "FAIL: interned grouping found " << id_groups
              << " files, string grouping found " << string_groups << "\n";
    return 1;
  }
  const double intern_speedup = string_s / interned_s;
  std::cout << "reconstruction grouping: string-keyed " << string_s
            << " s   interned " << interned_s << " s   speedup "
            << intern_speedup << "x\n";

  // --- experiment 4: capture path — bucketed+arenas vs reference --------
  // The reference pair (heap scheduler + single global emitter) is the
  // retained pre-PR capture path; the fast pair must produce the exact
  // same compact bytes and beat it >=2x on this delay(0)-heavy workload.
  const int cap_roots = check ? 32'768 : 65'536;
  const int cap_rounds = check ? 8 : 16;
  // Interleave the repetitions (fast, reference, fast, reference, ...) and
  // keep each side's best so a transient load spike on a shared host hits
  // both paths instead of biasing one of them.
  CaptureRun cap_fast, cap_ref;
  for (int rep = 0; rep < (check ? 4 : reps); ++rep) {
    auto f = run_capture(sim::SchedulerKind::Bucketed, trace::CaptureMode::Fast,
                         cap_roots, cap_rounds, 1);
    auto r = run_capture(sim::SchedulerKind::Heap, trace::CaptureMode::Reference,
                         cap_roots, cap_rounds, 1);
    if (rep == 0) {
      cap_fast = std::move(f);
      cap_ref = std::move(r);
    } else {
      cap_fast.seconds = std::min(cap_fast.seconds, f.seconds);
      cap_ref.seconds = std::min(cap_ref.seconds, r.seconds);
    }
  }
  if (cap_fast.compact_bytes != cap_ref.compact_bytes) {
    std::cerr << "FAIL: fast and reference capture paths produced "
                 "different bundles\n";
    return 1;
  }
  const double capture_speedup = cap_ref.seconds / cap_fast.seconds;
  std::cout << "capture path (" << cap_fast.events << " events): bucketed+arenas "
            << cap_fast.seconds << " s   heap+global " << cap_ref.seconds
            << " s   speedup " << capture_speedup << "x\n";

  // --- experiment 5: end-to-end run -> report on a registered app -------
  const auto* flash = apps::find_app("FLASH-fbs");
  if (flash == nullptr) {
    std::cerr << "FAIL: FLASH-fbs not in the registry\n";
    return 1;
  }
  std::vector<RunToReportPoint> r2r;
  for (const int ranks : check ? std::vector<int>{64}
                               : std::vector<int>{64, 256, 1024}) {
    auto pt = run_to_report(*flash, ranks, check ? 1 : 2);
    if (!check) {
      // Peak RSS per pipeline, each in its own child process so one
      // pipeline's allocator high-water can't shadow the other's.
      const auto sp = probe_pipeline("stream", ranks);
      const auto mp = probe_pipeline("materialize", ranks);
      if (sp.ok) pt.stream_rss_kb = sp.rss_kb;
      if (mp.ok) pt.materialized_rss_kb = mp.rss_kb;
    }
    std::cout << "run_to_report FLASH-fbs ranks=" << pt.ranks << "  records="
              << pt.records << "  capture " << pt.capture_seconds
              << " s (reference " << pt.capture_reference_seconds
              << " s)   analysis " << pt.analysis_seconds
              << " s   stream capture " << pt.stream_capture_seconds
              << " s + analysis " << pt.stream_analysis_seconds
              << " s (spill " << pt.spill_bytes << " B, rss "
              << pt.stream_rss_kb << " vs " << pt.materialized_rss_kb
              << " KiB)\n";
    r2r.push_back(pt);
  }
  if (scale64k) {
    // 65536 ranks is streaming-only territory: the materialized pipeline
    // would hold the whole ~26M-record array in memory at once. The point
    // comes entirely from a subprocess probe so its RSS is honest too.
    const int big = 65'536;
    std::cout << "run_to_report FLASH-fbs ranks=" << big
              << " (streaming-only, subprocess)...\n";
    const auto sp = probe_pipeline("stream", big);
    if (!sp.ok) {
      std::cerr << "FAIL: 65536-rank streaming probe did not complete\n";
      return 1;
    }
    RunToReportPoint pt;
    pt.ranks = big;
    pt.records = sp.records;
    pt.stream_capture_seconds = sp.capture_seconds;
    pt.stream_analysis_seconds = sp.analysis_seconds;
    pt.spill_bytes = sp.spill_bytes;
    pt.stream_peak_buffered = sp.peak_buffered;
    pt.stream_rss_kb = sp.rss_kb;
    pt.streaming_only = true;
    std::cout << "run_to_report FLASH-fbs ranks=" << pt.ranks << "  records="
              << pt.records << "  stream capture " << pt.stream_capture_seconds
              << " s + analysis " << pt.stream_analysis_seconds
              << " s (spill " << pt.spill_bytes << " B, rss "
              << pt.stream_rss_kb << " KiB)\n";
    r2r.push_back(pt);
  }

  // --- experiment 5b: capture crossover — where Auto's threshold sits ----
  // Below the crossover the fast path's per-rank arenas and bucket ring
  // cost more to set up than they save; CaptureMode::Auto switches to the
  // reference pair below kAutoCaptureRankThreshold ranks. Measure the pair
  // across the curve so the constant is data, not folklore (the big
  // points are single-rep: at 4K+ ranks one capture is seconds long and
  // the ratio, not the absolute time, is what the curve needs).
  struct CrossoverPoint {
    int ranks;
    double fast_seconds;
    double reference_seconds;
  };
  std::vector<CrossoverPoint> crossover;
  for (const int ranks : check ? std::vector<int>{16, 128}
                               : std::vector<int>{16, 64, 256, 1024, 4096,
                                                  8192}) {
    apps::AppConfig fast_cfg;
    fast_cfg.nranks = ranks;
    fast_cfg.ranks_per_node = std::max(1, ranks / 8);
    apps::AppConfig ref_cfg = fast_cfg;
    ref_cfg.scheduler = sim::SchedulerKind::Heap;
    ref_cfg.capture = trace::CaptureMode::Reference;
    // Interleaved best-of, same reasoning as experiment 4.
    double fast_s = 1e300, ref_s = 1e300;
    const int xreps = check ? 2 : (ranks >= 4'096 ? 1 : 3);
    for (int rep = 0; rep < xreps; ++rep) {
      double t0 = now_seconds();
      (void)apps::run_app(*flash, fast_cfg);
      fast_s = std::min(fast_s, now_seconds() - t0);
      t0 = now_seconds();
      (void)apps::run_app(*flash, ref_cfg);
      ref_s = std::min(ref_s, now_seconds() - t0);
    }
    crossover.push_back({ranks, fast_s, ref_s});
    std::cout << "capture_crossover ranks=" << ranks << "  fast " << fast_s
              << " s   reference " << ref_s << " s\n";
  }

  // --- experiment 6: cluster failover — degraded vs healthy -------------
  // The same workload on the multi-server backend, healthy and with one
  // MDS plus one OST crashed early in the run. Time-to-recover shows up
  // as the simulated completion-time overhead (failover backoff + holes);
  // wall throughput shows the capture-side cost of the degraded path.
  const auto* lbann = apps::find_app("LBANN");
  if (lbann == nullptr) {
    std::cerr << "FAIL: LBANN not in the registry\n";
    return 1;
  }
  apps::AppConfig cl_cfg;
  cl_cfg.nranks = check ? 64 : 256;
  cl_cfg.ranks_per_node = cl_cfg.nranks / 8;
  vfs::ClusterConfig cl_topo;
  cl_topo.mds_count = 2;
  cl_topo.ost_count = 4;
  auto sim_end = [](const trace::TraceBundle& b) {
    SimTime end = 0;
    for (const auto& r : b.records) end = std::max(end, r.tend);
    return end;
  };
  trace::TraceBundle cl_healthy;
  const double cl_healthy_s = best_of(
      reps, [&] { cl_healthy = apps::run_app_cluster(*lbann, cl_cfg, cl_topo); });
  apps::FaultSetup cl_setup;
  cl_setup.plan =
      fault::FaultPlan::parse("crash_mds:id=0,t=1ms; crash_ost:id=1,t=1ms");
  cl_setup.seed = 5;
  fault::FaultStats cl_stats;
  trace::TraceBundle cl_degraded;
  const double cl_degraded_s = best_of(reps, [&] {
    cl_degraded = apps::run_app_cluster(*lbann, cl_cfg, cl_topo, {}, &cl_setup,
                                        &cl_stats);
  });
  const SimTime cl_recover =
      sim_end(cl_degraded) - sim_end(cl_healthy);
  std::cout << "cluster_failover LBANN ranks=" << cl_cfg.nranks
            << "  healthy " << cl_healthy_s << " s   degraded "
            << cl_degraded_s << " s   sim overhead " << cl_recover
            << " ns   redirects " << cl_stats.failover_redirects
            << "   degraded reads " << cl_stats.degraded_reads << "\n";

  if (check) {
    if (cl_degraded.records.empty() || cl_stats.mds_failovers != 1 ||
        cl_stats.failover_redirects < 1) {
      std::cerr << "FAIL: cluster failover run must complete degraded with "
                   "one standby promotion (got failovers="
                << cl_stats.mds_failovers
                << ", redirects=" << cl_stats.failover_redirects << ")\n";
      return 1;
    }
    if (cl_stats.degraded_reads == 0) {
      std::cerr << "FAIL: LBANN reads over the dead OST must be degraded\n";
      return 1;
    }
    // Parallel output already proven identical above. Speedup bounds:
    // the algorithmic sweep-vs-scan win holds on any machine; the
    // thread-scaling bound needs real cores to express itself.
    if (sweep_speedup < 5.0) {
      std::cerr << "FAIL: sweep-vs-scan speedup " << sweep_speedup
                << "x below the 5x bound\n";
      return 1;
    }
    // Dense FileId indexing must beat per-record string-map lookups on any
    // host; 1.5x is a deliberately loose floor (typically 5-20x).
    if (intern_speedup < 1.5) {
      std::cerr << "FAIL: interned grouping speedup " << intern_speedup
                << "x below the 1.5x bound\n";
      return 1;
    }
    // The capture floor is algorithmic too: O(1) bucket ops vs O(log n)
    // heap ops on a ~16Ki-deep pending set, so it holds on any host.
    if (capture_speedup < 2.0) {
      std::cerr << "FAIL: capture-path speedup " << capture_speedup
                << "x below the 2x bound\n";
      return 1;
    }
    if (cores >= 2) {
      const double s2 = points[0].seconds / points[1].seconds;
      if (s2 < 1.0) {
        std::cerr << "FAIL: threads=2 slower than threads=1 (" << s2
                  << "x) on a " << cores << "-core host\n";
        return 1;
      }
      std::cout << "threads=2 speedup " << s2 << "x\n";
    } else {
      std::cout << "single-core host: thread-scaling bound skipped "
                   "(outputs still verified identical)\n";
    }
    std::cout << "CHECK PASSED\n";
    return 0;
  }

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  os << "{\n"
     << "  \"git_sha\": \"" << sha << "\",\n"
     << "  \"timestamp\": \"" << timestamp << "\",\n"
     << "  \"host\": \"" << host << "\",\n"
     << "  \"hardware_threads\": " << cores << ",\n"
     << "  \"conflict_scaling\": {\n"
     << "    \"files\": " << nfiles << ",\n"
     << "    \"accesses_per_file\": " << per_file << ",\n"
     << "    \"seconds_by_threads\": {";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << (i ? ", " : "") << "\"" << points[i].threads
       << "\": " << points[i].seconds;
  }
  os << "},\n"
     << "    \"speedup_by_threads\": {";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << (i ? ", " : "") << "\"" << points[i].threads
       << "\": " << points[0].seconds / points[i].seconds;
  }
  os << "}\n"
     << "  },\n"
     << "  \"sweep_vs_scan\": {\n"
     << "    \"accesses\": " << adversarial_n << ",\n"
     << "    \"sweep_seconds\": " << sweep_s << ",\n"
     << "    \"scan_seconds\": " << scan_s << ",\n"
     << "    \"speedup\": " << sweep_speedup << "\n"
     << "  },\n"
     << "  \"reconstruction_grouping\": {\n"
     << "    \"files\": " << rec_files << ",\n"
     << "    \"records\": " << rec_records << ",\n"
     << "    \"string_keyed_seconds\": " << string_s << ",\n"
     << "    \"interned_seconds\": " << interned_s << ",\n"
     << "    \"speedup\": " << intern_speedup << "\n"
     << "  },\n"
     << "  \"capture_path\": {\n"
     << "    \"roots\": " << cap_roots << ",\n"
     << "    \"rounds\": " << cap_rounds << ",\n"
     << "    \"events\": " << cap_fast.events << ",\n"
     << "    \"bucketed_arena_seconds\": " << cap_fast.seconds << ",\n"
     << "    \"heap_global_seconds\": " << cap_ref.seconds << ",\n"
     << "    \"speedup\": " << capture_speedup << "\n"
     << "  },\n"
     << "  \"run_to_report\": {\n"
     << "    \"app\": \"FLASH-fbs\",\n"
     << "    \"points\": [";
  for (std::size_t i = 0; i < r2r.size(); ++i) {
    const auto& pt = r2r[i];
    os << (i ? ", " : "") << "{\"ranks\": " << pt.ranks
       << ", \"records\": " << pt.records
       << ", \"streaming_only\": " << (pt.streaming_only ? "true" : "false");
    if (!pt.streaming_only) {
      os << ", \"capture_seconds\": " << pt.capture_seconds
         << ", \"capture_reference_seconds\": " << pt.capture_reference_seconds
         << ", \"analysis_seconds\": " << pt.analysis_seconds;
    }
    os << ", \"stream_capture_seconds\": " << pt.stream_capture_seconds
       << ", \"stream_analysis_seconds\": " << pt.stream_analysis_seconds
       << ", \"spill_bytes\": " << pt.spill_bytes
       << ", \"stream_peak_buffered\": " << pt.stream_peak_buffered
       << ", \"stream_rss_kb\": " << pt.stream_rss_kb;
    if (!pt.streaming_only) {
      os << ", \"materialized_rss_kb\": " << pt.materialized_rss_kb;
    }
    os << "}";
  }
  os << "]\n"
     << "  },\n"
     << "  \"capture_crossover\": {\n"
     << "    \"app\": \"FLASH-fbs\",\n"
     << "    \"auto_threshold_ranks\": "
     << apps::kAutoCaptureRankThreshold << ",\n"
     << "    \"points\": [";
  for (std::size_t i = 0; i < crossover.size(); ++i) {
    const auto& pt = crossover[i];
    os << (i ? ", " : "") << "{\"ranks\": " << pt.ranks
       << ", \"fast_seconds\": " << pt.fast_seconds
       << ", \"reference_seconds\": " << pt.reference_seconds << "}";
  }
  os << "]\n"
     << "  },\n"
     << "  \"cluster_failover\": {\n"
     << "    \"app\": \"LBANN\",\n"
     << "    \"ranks\": " << cl_cfg.nranks << ",\n"
     << "    \"mds\": " << cl_topo.mds_count << ",\n"
     << "    \"ost\": " << cl_topo.ost_count << ",\n"
     << "    \"healthy_seconds\": " << cl_healthy_s << ",\n"
     << "    \"degraded_seconds\": " << cl_degraded_s << ",\n"
     << "    \"healthy_records_per_second\": "
     << static_cast<double>(cl_healthy.records.size()) / cl_healthy_s << ",\n"
     << "    \"degraded_records_per_second\": "
     << static_cast<double>(cl_degraded.records.size()) / cl_degraded_s
     << ",\n"
     << "    \"healthy_sim_end_ns\": " << sim_end(cl_healthy) << ",\n"
     << "    \"degraded_sim_end_ns\": " << sim_end(cl_degraded) << ",\n"
     << "    \"recover_overhead_sim_ns\": " << cl_recover << ",\n"
     << "    \"mds_failovers\": " << cl_stats.mds_failovers << ",\n"
     << "    \"failover_redirects\": " << cl_stats.failover_redirects << ",\n"
     << "    \"degraded_reads\": " << cl_stats.degraded_reads << "\n"
     << "  }\n"
     << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool scale64k = false;
  std::string out = "BENCH_perf.json";
  std::string sha = "unknown";
  std::string timestamp = "unknown";
  std::string host = "unknown";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--scale64k") == 0) {
      scale64k = true;
    } else if (std::strcmp(argv[i], "--rss-probe") == 0 && i + 2 < argc) {
      const std::string mode = argv[i + 1];
      const int ranks = std::atoi(argv[i + 2]);
      if (ranks < 1) {
        std::cerr << "--rss-probe: RANKS must be >= 1\n";
        return 2;
      }
      return rss_probe_main(mode, ranks);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--sha") == 0 && i + 1 < argc) {
      sha = argv[++i];
    } else if (std::strcmp(argv[i], "--timestamp") == 0 && i + 1 < argc) {
      timestamp = argv[++i];
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else {
      std::cerr << "usage: bench_perf_scaling [--check] [--scale64k] "
                   "[--out FILE] [--sha SHA] [--timestamp TS] [--host NAME] "
                   "| --rss-probe stream|materialize RANKS\n";
      return 2;
    }
  }
  return run(check, scale64k, out, sha, timestamp, host);
}
