// Scaling harness for the parallel analysis pipeline. Unlike the
// google-benchmark binaries this one emits a machine-readable
// BENCH_perf.json so the numbers live in the repository:
//
//   bench_perf_scaling [--out FILE]    full sizes, write JSON (default
//                                      BENCH_perf.json in the cwd)
//   bench_perf_scaling --check         small sizes, assert correctness
//                                      (identical parallel/sequential
//                                      output always; speedup bounds only
//                                      where the host can express them)
//
// Experiments:
//   threads        detect_conflicts over a synthetic many-file log at
//                  1/2/4/8 threads — the work-stealing pool scaling curve;
//   sweep          sweep-line vs the paper's Algorithm-1 scan on an
//                  adversarial long-lived-read log — the single-thread
//                  algorithmic win;
//   reconstruction interned vs string-keyed record grouping;
//   capture        bucketed-ring scheduler + per-rank arenas vs the
//                  retained reference capture path on an adversarial
//                  delay(0)-heavy workload (--check floor: >=2x, and the
//                  two bundles must be byte-identical);
//   run_to_report  a registered app (FLASH-fbs) driven end to end —
//                  capture + full report — at ranks 64/256/1024.
//   cluster_failover  a read-heavy app (LBANN) on the multi-server
//                  PfsCluster, healthy vs one crashed MDS + one crashed
//                  OST: wall throughput, simulated time-to-recover
//                  (completion-time overhead of failover backoffs), and
//                  the degraded-read count.

#include <algorithm>
#include <utility>
#include <chrono>
#include <cstring>
#include <map>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/report.hpp"
#include "pfsem/trace/record.hpp"
#include "pfsem/trace/serialize.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/overlap.hpp"
#include "pfsem/exec/pool.hpp"
#include "pfsem/sim/engine.hpp"
#include "pfsem/trace/collector.hpp"
#include "pfsem/util/rng.hpp"

namespace {

using namespace pfsem;

double now_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Best-of-k wall time of `fn` in seconds.
template <typename Fn>
double best_of(int k, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < k; ++i) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

/// Synthetic many-file log: per file a checkpoint-like mix of mostly
/// disjoint per-rank writes plus a shared header that every rank rewrites
/// (real overlap pressure on every file).
core::AccessLog make_conflict_log(std::size_t nfiles,
                                  std::size_t accesses_per_file) {
  core::AccessLog log;
  log.nranks = 64;
  Rng rng(1234);
  for (std::size_t f = 0; f < nfiles; ++f) {
    auto& fl = log.file("/scratch/run/ckpt." + std::to_string(f));
    for (std::size_t i = 0; i < accesses_per_file; ++i) {
      core::Access a;
      a.rank = static_cast<Rank>(rng.below(64));
      a.t = static_cast<SimTime>(i * 1000 + f);
      a.t_open = 0;
      a.t_close = kTimeNever;
      a.t_commit = kTimeNever;
      a.type =
          rng.chance(0.75) ? core::AccessType::Write : core::AccessType::Read;
      if (i % 64 == 0) {
        a.ext = {0, 128};  // shared header rewrite
      } else {
        const Offset begin = static_cast<Offset>(rng.below(1u << 20)) * 4096;
        a.ext = {begin, begin + 4096};
      }
      fl.accesses.push_back(a);
    }
  }
  return log;
}

/// Adversarial single-file log for the sweep-vs-scan comparison: n mostly
/// long-lived reads and a few writes. The scan's stop condition is
/// begin-order, so it visits ~n^2/2 read-read candidates that the
/// default writes_only filter then rejects; the sweep never visits them.
std::vector<core::Access> long_reads(std::size_t n) {
  std::vector<core::Access> v;
  v.reserve(n);
  constexpr std::size_t kWriters = 16;
  for (std::size_t i = 0; i < n; ++i) {
    core::Access a;
    a.rank = static_cast<Rank>(i % 64);
    a.t = static_cast<SimTime>(i);
    if (i % std::max<std::size_t>(n / kWriters, 1) == 0) {
      a.type = core::AccessType::Write;
      a.ext = {static_cast<Offset>(i), static_cast<Offset>(i) + 4096};
    } else {
      a.type = core::AccessType::Read;
      a.ext = {static_cast<Offset>(i), 1'000'000'000};
    }
    v.push_back(a);
  }
  return v;
}

/// Canonical text form of a report, for exact equality checks.
std::string fingerprint(const core::ConflictReport& r) {
  std::ostringstream os;
  os << r.potential_pairs << '|' << r.session.count << r.session.waw_s
     << r.session.waw_d << r.session.raw_s << r.session.raw_d << '|'
     << r.commit.count << r.commit.waw_s << r.commit.waw_d << r.commit.raw_s
     << r.commit.raw_d << '\n';
  for (const auto& c : r.conflicts) {
    os << c.file << ' ' << c.first.rank << ' ' << c.first.t << ' '
       << c.first.ext.begin << ' ' << c.first.ext.end << ' ' << c.second.rank
       << ' ' << c.second.t << ' ' << c.second.ext.begin << ' '
       << c.second.ext.end << ' ' << static_cast<int>(c.kind) << ' '
       << c.same_process << c.under_commit << c.under_session << '\n';
  }
  return os.str();
}

struct ThreadPoint {
  int threads;
  double seconds;
};

/// Synthetic raw trace for the intern-vs-string grouping experiment:
/// `nrecords` data records spread round-robin over `nfiles` paths with
/// realistic path lengths (directory prefix + numbered leaf).
trace::TraceBundle make_bundle(std::size_t nfiles, std::size_t nrecords) {
  trace::TraceBundle bundle;
  bundle.nranks = 64;
  std::vector<FileId> ids;
  ids.reserve(nfiles);
  for (std::size_t f = 0; f < nfiles; ++f) {
    ids.push_back(bundle.intern("/scratch/project/run.0042/output/ckpt." +
                                std::to_string(f) + ".h5"));
  }
  Rng rng(99);
  for (std::size_t i = 0; i < nrecords; ++i) {
    trace::Record rec;
    rec.tstart = static_cast<SimTime>(i * 10);
    rec.tend = rec.tstart + 5;
    rec.rank = static_cast<Rank>(rng.below(64));
    rec.layer = trace::Layer::Posix;
    rec.func = trace::Func::pwrite;
    rec.offset = static_cast<std::int64_t>(rng.below(1u << 20)) * 4096;
    rec.count = 4096;
    rec.ret = 4096;
    rec.file = ids[i % nfiles];
    bundle.records.push_back(std::move(rec));
  }
  return bundle;
}

/// Per-record file grouping the way the retired design did it: resolve
/// every record to its path string and look the string up in a
/// string-keyed ordered map (what `AccessLog` used to be built on).
std::size_t group_by_string(const trace::TraceBundle& bundle) {
  std::map<std::string, std::vector<const trace::Record*>> groups;
  for (const auto& rec : bundle.records) {
    groups[std::string(bundle.path_of(rec))].push_back(&rec);
  }
  return groups.size();
}

/// The same grouping on the interned representation: the FileId indexes a
/// dense vector directly, no hashing or string compares per record.
std::size_t group_by_id(const trace::TraceBundle& bundle) {
  std::vector<std::vector<const trace::Record*>> groups(bundle.paths.size());
  for (const auto& rec : bundle.records) {
    groups[rec.file].push_back(&rec);
  }
  std::size_t active = 0;
  for (const auto& g : groups) active += !g.empty();
  return active;
}

/// Adversarial delay(0)-heavy capture workload: `roots` coroutines (spread
/// over 64 collector ranks) each do `rounds` fairness round-trips, almost
/// all at the current timestamp — the pending-event set stays ~`roots`
/// deep, so the reference heap pays O(log roots) with cold cache lines on
/// every event while the bucket ring pays O(1) — and emit one pwrite
/// record per round through the collector under test.
struct CaptureRun {
  double seconds = 0;
  std::string compact_bytes;
  std::uint64_t events = 0;
};

CaptureRun run_capture(sim::SchedulerKind kind, trace::CaptureMode mode,
                       int roots, int rounds, int reps) {
  constexpr int kRanks = 64;
  CaptureRun out;
  trace::TraceBundle bundle;
  const double secs = best_of(reps, [&] {
    sim::Engine engine(kind);
    trace::Collector collector(kRanks, {}, mode);
    collector.reserve(kRanks, static_cast<std::size_t>(roots) *
                                  static_cast<std::size_t>(rounds) / kRanks);
    std::vector<FileId> files;
    files.reserve(kRanks);
    for (int f = 0; f < kRanks; ++f) {
      files.push_back(
          collector.intern("/scratch/capture/shard." + std::to_string(f)));
    }
    auto proc = [](sim::Engine* eng, trace::Collector* col, Rank rank,
                   FileId file, int id, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        // Each emitted record rides on a burst of fairness round-trips —
        // the shape of contended collective I/O, where ranks yield many
        // times per operation. Almost all delays are 0 with a sprinkle of
        // near-ring and far-heap delays so both tiers stay live (the mix
        // is deterministic per task), keeping the pending set ~roots deep.
        for (int s = 0; s < 8; ++s) {
          SimDuration d = 0;
          const int step = i * 8 + s;
          if ((step + id) % 61 == 7) d = 1 + (id % 3);
          if ((step + id) % 257 == 21) d = 100 + (id % 50);
          co_await eng->delay(d);
        }
        trace::Record rec;
        rec.tstart = eng->now();
        rec.tend = eng->now() + 1;
        rec.rank = rank;
        rec.func = trace::Func::pwrite;
        rec.offset = static_cast<Offset>(i) * 4096;
        rec.count = 4096;
        rec.ret = 4096;
        rec.file = file;
        col->emit(rec);
      }
    };
    for (int id = 0; id < roots; ++id) {
      engine.spawn(proc(&engine, &collector, static_cast<Rank>(id % kRanks),
                        files[static_cast<std::size_t>(id % kRanks)], id,
                        rounds));
    }
    engine.run();
    bundle = collector.take();
    out.events = engine.events_dispatched();
  });
  out.seconds = secs;
  std::ostringstream os;
  trace::write_compact(bundle, os);
  out.compact_bytes = os.str();
  return out;
}

/// One end-to-end run→report point: capture FLASH-fbs at `ranks` on the
/// given capture path, then (fast path only) the full analysis + report.
struct RunToReportPoint {
  int ranks = 0;
  std::size_t records = 0;
  double capture_seconds = 0;
  double capture_reference_seconds = 0;
  double analysis_seconds = 0;
};

RunToReportPoint run_to_report(const apps::AppInfo& info, int ranks,
                               int reps) {
  RunToReportPoint pt;
  pt.ranks = ranks;
  apps::AppConfig cfg;
  cfg.nranks = ranks;
  cfg.ranks_per_node = std::max(1, ranks / 8);

  trace::TraceBundle bundle;
  pt.capture_seconds =
      best_of(reps, [&] { bundle = apps::run_app(info, cfg); });
  pt.records = bundle.records.size();

  apps::AppConfig ref_cfg = cfg;
  ref_cfg.scheduler = sim::SchedulerKind::Heap;
  ref_cfg.capture = trace::CaptureMode::Reference;
  pt.capture_reference_seconds =
      best_of(reps, [&] { (void)apps::run_app(info, ref_cfg); });

  pt.analysis_seconds = best_of(reps, [&] {
    const auto log = core::reconstruct_accesses(bundle);
    const auto pairs = core::detect_file_overlaps(log);
    const auto conflicts = core::detect_conflicts(log, pairs, {});
    const auto rep = core::build_report(bundle, log, conflicts);
    std::ostringstream os;
    core::print_report(rep, os);
    if (os.str().empty()) std::abort();  // keep the report alive
  });
  return pt;
}

int run(bool check, const std::string& out_path, const std::string& sha,
        const std::string& timestamp, const std::string& host) {
  const int cores = exec::hardware_threads();
  const std::size_t nfiles = check ? 32 : 128;
  const std::size_t per_file = check ? 2'000 : 20'000;
  const std::size_t adversarial_n = check ? 8'192 : 16'384;
  const int reps = check ? 2 : 3;

  std::cout << "hardware threads: " << cores << "\n";

  // --- experiment 1: thread scaling of detect_conflicts ----------------
  const auto log = make_conflict_log(nfiles, per_file);
  const auto reference = core::detect_conflicts(log, core::ConflictOptions{.threads = 1});
  const std::string ref_print = fingerprint(reference);

  std::vector<ThreadPoint> points;
  for (const int t : {1, 2, 4, 8}) {
    core::ConflictReport got;
    const double secs = best_of(
        reps, [&] { got = core::detect_conflicts(log, core::ConflictOptions{.threads = t}); });
    if (fingerprint(got) != ref_print) {
      std::cerr << "FAIL: detect_conflicts(threads=" << t
                << ") differs from sequential\n";
      return 1;
    }
    points.push_back({t, secs});
    std::cout << "detect_conflicts threads=" << t << "  " << secs << " s\n";
  }

  // --- experiment 2: sweep vs scan on the adversarial log ---------------
  const auto adv = long_reads(adversarial_n);
  std::vector<core::OverlapPair> sweep_pairs, scan_pairs;
  const double sweep_s =
      best_of(reps, [&] { sweep_pairs = core::detect_overlaps(adv); });
  const double scan_s =
      best_of(reps, [&] { scan_pairs = core::detect_overlaps_scan(adv); });
  if (sweep_pairs != scan_pairs) {
    std::cerr << "FAIL: sweep and scan disagree on the adversarial log\n";
    return 1;
  }
  const double sweep_speedup = scan_s / sweep_s;
  std::cout << "sweep " << sweep_s << " s   scan " << scan_s
            << " s   speedup " << sweep_speedup << "x\n";

  // --- experiment 3: interned vs string-keyed record grouping -----------
  // The refactor's core claim: resolving each record's file by FileId into
  // a dense column beats hashing/comparing its path string into a
  // string-keyed map (the retired reconstruction hot path).
  const std::size_t rec_files = check ? 512 : 2'048;
  const std::size_t rec_records = check ? 400'000 : 4'000'000;
  const auto bundle = make_bundle(rec_files, rec_records);
  std::size_t string_groups = 0, id_groups = 0;
  const double string_s =
      best_of(reps, [&] { string_groups = group_by_string(bundle); });
  const double interned_s =
      best_of(reps, [&] { id_groups = group_by_id(bundle); });
  if (string_groups != id_groups) {
    std::cerr << "FAIL: interned grouping found " << id_groups
              << " files, string grouping found " << string_groups << "\n";
    return 1;
  }
  const double intern_speedup = string_s / interned_s;
  std::cout << "reconstruction grouping: string-keyed " << string_s
            << " s   interned " << interned_s << " s   speedup "
            << intern_speedup << "x\n";

  // --- experiment 4: capture path — bucketed+arenas vs reference --------
  // The reference pair (heap scheduler + single global emitter) is the
  // retained pre-PR capture path; the fast pair must produce the exact
  // same compact bytes and beat it >=2x on this delay(0)-heavy workload.
  const int cap_roots = check ? 32'768 : 65'536;
  const int cap_rounds = check ? 8 : 16;
  // Interleave the repetitions (fast, reference, fast, reference, ...) and
  // keep each side's best so a transient load spike on a shared host hits
  // both paths instead of biasing one of them.
  CaptureRun cap_fast, cap_ref;
  for (int rep = 0; rep < (check ? 3 : reps); ++rep) {
    auto f = run_capture(sim::SchedulerKind::Bucketed, trace::CaptureMode::Fast,
                         cap_roots, cap_rounds, 1);
    auto r = run_capture(sim::SchedulerKind::Heap, trace::CaptureMode::Reference,
                         cap_roots, cap_rounds, 1);
    if (rep == 0) {
      cap_fast = std::move(f);
      cap_ref = std::move(r);
    } else {
      cap_fast.seconds = std::min(cap_fast.seconds, f.seconds);
      cap_ref.seconds = std::min(cap_ref.seconds, r.seconds);
    }
  }
  if (cap_fast.compact_bytes != cap_ref.compact_bytes) {
    std::cerr << "FAIL: fast and reference capture paths produced "
                 "different bundles\n";
    return 1;
  }
  const double capture_speedup = cap_ref.seconds / cap_fast.seconds;
  std::cout << "capture path (" << cap_fast.events << " events): bucketed+arenas "
            << cap_fast.seconds << " s   heap+global " << cap_ref.seconds
            << " s   speedup " << capture_speedup << "x\n";

  // --- experiment 5: end-to-end run -> report on a registered app -------
  const auto* flash = apps::find_app("FLASH-fbs");
  if (flash == nullptr) {
    std::cerr << "FAIL: FLASH-fbs not in the registry\n";
    return 1;
  }
  std::vector<RunToReportPoint> r2r;
  for (const int ranks : check ? std::vector<int>{64}
                               : std::vector<int>{64, 256, 1024}) {
    const auto pt = run_to_report(*flash, ranks, check ? 1 : 2);
    std::cout << "run_to_report FLASH-fbs ranks=" << pt.ranks << "  records="
              << pt.records << "  capture " << pt.capture_seconds
              << " s (reference " << pt.capture_reference_seconds
              << " s)   analysis " << pt.analysis_seconds << " s\n";
    r2r.push_back(pt);
  }

  // --- experiment 6: cluster failover — degraded vs healthy -------------
  // The same workload on the multi-server backend, healthy and with one
  // MDS plus one OST crashed early in the run. Time-to-recover shows up
  // as the simulated completion-time overhead (failover backoff + holes);
  // wall throughput shows the capture-side cost of the degraded path.
  const auto* lbann = apps::find_app("LBANN");
  if (lbann == nullptr) {
    std::cerr << "FAIL: LBANN not in the registry\n";
    return 1;
  }
  apps::AppConfig cl_cfg;
  cl_cfg.nranks = check ? 64 : 256;
  cl_cfg.ranks_per_node = cl_cfg.nranks / 8;
  vfs::ClusterConfig cl_topo;
  cl_topo.mds_count = 2;
  cl_topo.ost_count = 4;
  auto sim_end = [](const trace::TraceBundle& b) {
    SimTime end = 0;
    for (const auto& r : b.records) end = std::max(end, r.tend);
    return end;
  };
  trace::TraceBundle cl_healthy;
  const double cl_healthy_s = best_of(
      reps, [&] { cl_healthy = apps::run_app_cluster(*lbann, cl_cfg, cl_topo); });
  apps::FaultSetup cl_setup;
  cl_setup.plan =
      fault::FaultPlan::parse("crash_mds:id=0,t=1ms; crash_ost:id=1,t=1ms");
  cl_setup.seed = 5;
  fault::FaultStats cl_stats;
  trace::TraceBundle cl_degraded;
  const double cl_degraded_s = best_of(reps, [&] {
    cl_degraded = apps::run_app_cluster(*lbann, cl_cfg, cl_topo, {}, &cl_setup,
                                        &cl_stats);
  });
  const SimTime cl_recover =
      sim_end(cl_degraded) - sim_end(cl_healthy);
  std::cout << "cluster_failover LBANN ranks=" << cl_cfg.nranks
            << "  healthy " << cl_healthy_s << " s   degraded "
            << cl_degraded_s << " s   sim overhead " << cl_recover
            << " ns   redirects " << cl_stats.failover_redirects
            << "   degraded reads " << cl_stats.degraded_reads << "\n";

  if (check) {
    if (cl_degraded.records.empty() || cl_stats.mds_failovers != 1 ||
        cl_stats.failover_redirects < 1) {
      std::cerr << "FAIL: cluster failover run must complete degraded with "
                   "one standby promotion (got failovers="
                << cl_stats.mds_failovers
                << ", redirects=" << cl_stats.failover_redirects << ")\n";
      return 1;
    }
    if (cl_stats.degraded_reads == 0) {
      std::cerr << "FAIL: LBANN reads over the dead OST must be degraded\n";
      return 1;
    }
    // Parallel output already proven identical above. Speedup bounds:
    // the algorithmic sweep-vs-scan win holds on any machine; the
    // thread-scaling bound needs real cores to express itself.
    if (sweep_speedup < 5.0) {
      std::cerr << "FAIL: sweep-vs-scan speedup " << sweep_speedup
                << "x below the 5x bound\n";
      return 1;
    }
    // Dense FileId indexing must beat per-record string-map lookups on any
    // host; 1.5x is a deliberately loose floor (typically 5-20x).
    if (intern_speedup < 1.5) {
      std::cerr << "FAIL: interned grouping speedup " << intern_speedup
                << "x below the 1.5x bound\n";
      return 1;
    }
    // The capture floor is algorithmic too: O(1) bucket ops vs O(log n)
    // heap ops on a ~16Ki-deep pending set, so it holds on any host.
    if (capture_speedup < 2.0) {
      std::cerr << "FAIL: capture-path speedup " << capture_speedup
                << "x below the 2x bound\n";
      return 1;
    }
    if (cores >= 2) {
      const double s2 = points[0].seconds / points[1].seconds;
      if (s2 < 1.0) {
        std::cerr << "FAIL: threads=2 slower than threads=1 (" << s2
                  << "x) on a " << cores << "-core host\n";
        return 1;
      }
      std::cout << "threads=2 speedup " << s2 << "x\n";
    } else {
      std::cout << "single-core host: thread-scaling bound skipped "
                   "(outputs still verified identical)\n";
    }
    std::cout << "CHECK PASSED\n";
    return 0;
  }

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  os << "{\n"
     << "  \"git_sha\": \"" << sha << "\",\n"
     << "  \"timestamp\": \"" << timestamp << "\",\n"
     << "  \"host\": \"" << host << "\",\n"
     << "  \"hardware_threads\": " << cores << ",\n"
     << "  \"conflict_scaling\": {\n"
     << "    \"files\": " << nfiles << ",\n"
     << "    \"accesses_per_file\": " << per_file << ",\n"
     << "    \"seconds_by_threads\": {";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << (i ? ", " : "") << "\"" << points[i].threads
       << "\": " << points[i].seconds;
  }
  os << "},\n"
     << "    \"speedup_by_threads\": {";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << (i ? ", " : "") << "\"" << points[i].threads
       << "\": " << points[0].seconds / points[i].seconds;
  }
  os << "}\n"
     << "  },\n"
     << "  \"sweep_vs_scan\": {\n"
     << "    \"accesses\": " << adversarial_n << ",\n"
     << "    \"sweep_seconds\": " << sweep_s << ",\n"
     << "    \"scan_seconds\": " << scan_s << ",\n"
     << "    \"speedup\": " << sweep_speedup << "\n"
     << "  },\n"
     << "  \"reconstruction_grouping\": {\n"
     << "    \"files\": " << rec_files << ",\n"
     << "    \"records\": " << rec_records << ",\n"
     << "    \"string_keyed_seconds\": " << string_s << ",\n"
     << "    \"interned_seconds\": " << interned_s << ",\n"
     << "    \"speedup\": " << intern_speedup << "\n"
     << "  },\n"
     << "  \"capture_path\": {\n"
     << "    \"roots\": " << cap_roots << ",\n"
     << "    \"rounds\": " << cap_rounds << ",\n"
     << "    \"events\": " << cap_fast.events << ",\n"
     << "    \"bucketed_arena_seconds\": " << cap_fast.seconds << ",\n"
     << "    \"heap_global_seconds\": " << cap_ref.seconds << ",\n"
     << "    \"speedup\": " << capture_speedup << "\n"
     << "  },\n"
     << "  \"run_to_report\": {\n"
     << "    \"app\": \"FLASH-fbs\",\n"
     << "    \"points\": [";
  for (std::size_t i = 0; i < r2r.size(); ++i) {
    const auto& pt = r2r[i];
    os << (i ? ", " : "") << "{\"ranks\": " << pt.ranks
       << ", \"records\": " << pt.records
       << ", \"capture_seconds\": " << pt.capture_seconds
       << ", \"capture_reference_seconds\": " << pt.capture_reference_seconds
       << ", \"analysis_seconds\": " << pt.analysis_seconds << "}";
  }
  os << "]\n"
     << "  },\n"
     << "  \"cluster_failover\": {\n"
     << "    \"app\": \"LBANN\",\n"
     << "    \"ranks\": " << cl_cfg.nranks << ",\n"
     << "    \"mds\": " << cl_topo.mds_count << ",\n"
     << "    \"ost\": " << cl_topo.ost_count << ",\n"
     << "    \"healthy_seconds\": " << cl_healthy_s << ",\n"
     << "    \"degraded_seconds\": " << cl_degraded_s << ",\n"
     << "    \"healthy_records_per_second\": "
     << static_cast<double>(cl_healthy.records.size()) / cl_healthy_s << ",\n"
     << "    \"degraded_records_per_second\": "
     << static_cast<double>(cl_degraded.records.size()) / cl_degraded_s
     << ",\n"
     << "    \"healthy_sim_end_ns\": " << sim_end(cl_healthy) << ",\n"
     << "    \"degraded_sim_end_ns\": " << sim_end(cl_degraded) << ",\n"
     << "    \"recover_overhead_sim_ns\": " << cl_recover << ",\n"
     << "    \"mds_failovers\": " << cl_stats.mds_failovers << ",\n"
     << "    \"failover_redirects\": " << cl_stats.failover_redirects << ",\n"
     << "    \"degraded_reads\": " << cl_stats.degraded_reads << "\n"
     << "  }\n"
     << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out = "BENCH_perf.json";
  std::string sha = "unknown";
  std::string timestamp = "unknown";
  std::string host = "unknown";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--sha") == 0 && i + 1 < argc) {
      sha = argv[++i];
    } else if (std::strcmp(argv[i], "--timestamp") == 0 && i + 1 < argc) {
      timestamp = argv[++i];
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else {
      std::cerr << "usage: bench_perf_scaling [--check] [--out FILE] "
                   "[--sha SHA] [--timestamp TS] [--host NAME]\n";
      return 2;
    }
  }
  return run(check, out, sha, timestamp, host);
}
