// Scaling harness for the parallel analysis pipeline. Unlike the
// google-benchmark binaries this one emits a machine-readable
// BENCH_perf.json so the numbers live in the repository:
//
//   bench_perf_scaling [--out FILE]    full sizes, write JSON (default
//                                      BENCH_perf.json in the cwd)
//   bench_perf_scaling --check         small sizes, assert correctness
//                                      (identical parallel/sequential
//                                      output always; speedup bounds only
//                                      where the host can express them)
//
// Two experiments:
//   threads  detect_conflicts over a synthetic many-file log at 1/2/4/8
//            threads — the work-stealing pool scaling curve;
//   sweep    sweep-line vs the paper's Algorithm-1 scan on an adversarial
//            long-lived-read log — the single-thread algorithmic win.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pfsem/core/conflict.hpp"
#include "pfsem/trace/record.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/overlap.hpp"
#include "pfsem/exec/pool.hpp"
#include "pfsem/util/rng.hpp"

namespace {

using namespace pfsem;

double now_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Best-of-k wall time of `fn` in seconds.
template <typename Fn>
double best_of(int k, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < k; ++i) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

/// Synthetic many-file log: per file a checkpoint-like mix of mostly
/// disjoint per-rank writes plus a shared header that every rank rewrites
/// (real overlap pressure on every file).
core::AccessLog make_conflict_log(std::size_t nfiles,
                                  std::size_t accesses_per_file) {
  core::AccessLog log;
  log.nranks = 64;
  Rng rng(1234);
  for (std::size_t f = 0; f < nfiles; ++f) {
    auto& fl = log.file("/scratch/run/ckpt." + std::to_string(f));
    for (std::size_t i = 0; i < accesses_per_file; ++i) {
      core::Access a;
      a.rank = static_cast<Rank>(rng.below(64));
      a.t = static_cast<SimTime>(i * 1000 + f);
      a.t_open = 0;
      a.t_close = kTimeNever;
      a.t_commit = kTimeNever;
      a.type =
          rng.chance(0.75) ? core::AccessType::Write : core::AccessType::Read;
      if (i % 64 == 0) {
        a.ext = {0, 128};  // shared header rewrite
      } else {
        const Offset begin = static_cast<Offset>(rng.below(1u << 20)) * 4096;
        a.ext = {begin, begin + 4096};
      }
      fl.accesses.push_back(a);
    }
  }
  return log;
}

/// Adversarial single-file log for the sweep-vs-scan comparison: n mostly
/// long-lived reads and a few writes. The scan's stop condition is
/// begin-order, so it visits ~n^2/2 read-read candidates that the
/// default writes_only filter then rejects; the sweep never visits them.
std::vector<core::Access> long_reads(std::size_t n) {
  std::vector<core::Access> v;
  v.reserve(n);
  constexpr std::size_t kWriters = 16;
  for (std::size_t i = 0; i < n; ++i) {
    core::Access a;
    a.rank = static_cast<Rank>(i % 64);
    a.t = static_cast<SimTime>(i);
    if (i % std::max<std::size_t>(n / kWriters, 1) == 0) {
      a.type = core::AccessType::Write;
      a.ext = {static_cast<Offset>(i), static_cast<Offset>(i) + 4096};
    } else {
      a.type = core::AccessType::Read;
      a.ext = {static_cast<Offset>(i), 1'000'000'000};
    }
    v.push_back(a);
  }
  return v;
}

/// Canonical text form of a report, for exact equality checks.
std::string fingerprint(const core::ConflictReport& r) {
  std::ostringstream os;
  os << r.potential_pairs << '|' << r.session.count << r.session.waw_s
     << r.session.waw_d << r.session.raw_s << r.session.raw_d << '|'
     << r.commit.count << r.commit.waw_s << r.commit.waw_d << r.commit.raw_s
     << r.commit.raw_d << '\n';
  for (const auto& c : r.conflicts) {
    os << c.file << ' ' << c.first.rank << ' ' << c.first.t << ' '
       << c.first.ext.begin << ' ' << c.first.ext.end << ' ' << c.second.rank
       << ' ' << c.second.t << ' ' << c.second.ext.begin << ' '
       << c.second.ext.end << ' ' << static_cast<int>(c.kind) << ' '
       << c.same_process << c.under_commit << c.under_session << '\n';
  }
  return os.str();
}

struct ThreadPoint {
  int threads;
  double seconds;
};

/// Synthetic raw trace for the intern-vs-string grouping experiment:
/// `nrecords` data records spread round-robin over `nfiles` paths with
/// realistic path lengths (directory prefix + numbered leaf).
trace::TraceBundle make_bundle(std::size_t nfiles, std::size_t nrecords) {
  trace::TraceBundle bundle;
  bundle.nranks = 64;
  std::vector<FileId> ids;
  ids.reserve(nfiles);
  for (std::size_t f = 0; f < nfiles; ++f) {
    ids.push_back(bundle.intern("/scratch/project/run.0042/output/ckpt." +
                                std::to_string(f) + ".h5"));
  }
  Rng rng(99);
  for (std::size_t i = 0; i < nrecords; ++i) {
    trace::Record rec;
    rec.tstart = static_cast<SimTime>(i * 10);
    rec.tend = rec.tstart + 5;
    rec.rank = static_cast<Rank>(rng.below(64));
    rec.layer = trace::Layer::Posix;
    rec.func = trace::Func::pwrite;
    rec.offset = static_cast<std::int64_t>(rng.below(1u << 20)) * 4096;
    rec.count = 4096;
    rec.ret = 4096;
    rec.file = ids[i % nfiles];
    bundle.records.push_back(std::move(rec));
  }
  return bundle;
}

/// Per-record file grouping the way the retired design did it: resolve
/// every record to its path string and look the string up in a
/// string-keyed ordered map (what `AccessLog` used to be built on).
std::size_t group_by_string(const trace::TraceBundle& bundle) {
  std::map<std::string, std::vector<const trace::Record*>> groups;
  for (const auto& rec : bundle.records) {
    groups[std::string(bundle.path_of(rec))].push_back(&rec);
  }
  return groups.size();
}

/// The same grouping on the interned representation: the FileId indexes a
/// dense vector directly, no hashing or string compares per record.
std::size_t group_by_id(const trace::TraceBundle& bundle) {
  std::vector<std::vector<const trace::Record*>> groups(bundle.paths.size());
  for (const auto& rec : bundle.records) {
    groups[rec.file].push_back(&rec);
  }
  std::size_t active = 0;
  for (const auto& g : groups) active += !g.empty();
  return active;
}

int run(bool check, const std::string& out_path) {
  const int cores = exec::hardware_threads();
  const std::size_t nfiles = check ? 32 : 128;
  const std::size_t per_file = check ? 2'000 : 20'000;
  const std::size_t adversarial_n = check ? 8'192 : 16'384;
  const int reps = check ? 2 : 3;

  std::cout << "hardware threads: " << cores << "\n";

  // --- experiment 1: thread scaling of detect_conflicts ----------------
  const auto log = make_conflict_log(nfiles, per_file);
  const auto reference = core::detect_conflicts(log, core::ConflictOptions{.threads = 1});
  const std::string ref_print = fingerprint(reference);

  std::vector<ThreadPoint> points;
  for (const int t : {1, 2, 4, 8}) {
    core::ConflictReport got;
    const double secs = best_of(
        reps, [&] { got = core::detect_conflicts(log, core::ConflictOptions{.threads = t}); });
    if (fingerprint(got) != ref_print) {
      std::cerr << "FAIL: detect_conflicts(threads=" << t
                << ") differs from sequential\n";
      return 1;
    }
    points.push_back({t, secs});
    std::cout << "detect_conflicts threads=" << t << "  " << secs << " s\n";
  }

  // --- experiment 2: sweep vs scan on the adversarial log ---------------
  const auto adv = long_reads(adversarial_n);
  std::vector<core::OverlapPair> sweep_pairs, scan_pairs;
  const double sweep_s =
      best_of(reps, [&] { sweep_pairs = core::detect_overlaps(adv); });
  const double scan_s =
      best_of(reps, [&] { scan_pairs = core::detect_overlaps_scan(adv); });
  if (sweep_pairs != scan_pairs) {
    std::cerr << "FAIL: sweep and scan disagree on the adversarial log\n";
    return 1;
  }
  const double sweep_speedup = scan_s / sweep_s;
  std::cout << "sweep " << sweep_s << " s   scan " << scan_s
            << " s   speedup " << sweep_speedup << "x\n";

  // --- experiment 3: interned vs string-keyed record grouping -----------
  // The refactor's core claim: resolving each record's file by FileId into
  // a dense column beats hashing/comparing its path string into a
  // string-keyed map (the retired reconstruction hot path).
  const std::size_t rec_files = check ? 512 : 2'048;
  const std::size_t rec_records = check ? 400'000 : 4'000'000;
  const auto bundle = make_bundle(rec_files, rec_records);
  std::size_t string_groups = 0, id_groups = 0;
  const double string_s =
      best_of(reps, [&] { string_groups = group_by_string(bundle); });
  const double interned_s =
      best_of(reps, [&] { id_groups = group_by_id(bundle); });
  if (string_groups != id_groups) {
    std::cerr << "FAIL: interned grouping found " << id_groups
              << " files, string grouping found " << string_groups << "\n";
    return 1;
  }
  const double intern_speedup = string_s / interned_s;
  std::cout << "reconstruction grouping: string-keyed " << string_s
            << " s   interned " << interned_s << " s   speedup "
            << intern_speedup << "x\n";

  if (check) {
    // Parallel output already proven identical above. Speedup bounds:
    // the algorithmic sweep-vs-scan win holds on any machine; the
    // thread-scaling bound needs real cores to express itself.
    if (sweep_speedup < 5.0) {
      std::cerr << "FAIL: sweep-vs-scan speedup " << sweep_speedup
                << "x below the 5x bound\n";
      return 1;
    }
    // Dense FileId indexing must beat per-record string-map lookups on any
    // host; 1.5x is a deliberately loose floor (typically 5-20x).
    if (intern_speedup < 1.5) {
      std::cerr << "FAIL: interned grouping speedup " << intern_speedup
                << "x below the 1.5x bound\n";
      return 1;
    }
    if (cores >= 2) {
      const double s2 = points[0].seconds / points[1].seconds;
      if (s2 < 1.0) {
        std::cerr << "FAIL: threads=2 slower than threads=1 (" << s2
                  << "x) on a " << cores << "-core host\n";
        return 1;
      }
      std::cout << "threads=2 speedup " << s2 << "x\n";
    } else {
      std::cout << "single-core host: thread-scaling bound skipped "
                   "(outputs still verified identical)\n";
    }
    std::cout << "CHECK PASSED\n";
    return 0;
  }

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  os << "{\n"
     << "  \"hardware_threads\": " << cores << ",\n"
     << "  \"conflict_scaling\": {\n"
     << "    \"files\": " << nfiles << ",\n"
     << "    \"accesses_per_file\": " << per_file << ",\n"
     << "    \"seconds_by_threads\": {";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << (i ? ", " : "") << "\"" << points[i].threads
       << "\": " << points[i].seconds;
  }
  os << "},\n"
     << "    \"speedup_by_threads\": {";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << (i ? ", " : "") << "\"" << points[i].threads
       << "\": " << points[0].seconds / points[i].seconds;
  }
  os << "}\n"
     << "  },\n"
     << "  \"sweep_vs_scan\": {\n"
     << "    \"accesses\": " << adversarial_n << ",\n"
     << "    \"sweep_seconds\": " << sweep_s << ",\n"
     << "    \"scan_seconds\": " << scan_s << ",\n"
     << "    \"speedup\": " << sweep_speedup << "\n"
     << "  },\n"
     << "  \"reconstruction_grouping\": {\n"
     << "    \"files\": " << rec_files << ",\n"
     << "    \"records\": " << rec_records << ",\n"
     << "    \"string_keyed_seconds\": " << string_s << ",\n"
     << "    \"interned_seconds\": " << interned_s << ",\n"
     << "    \"speedup\": " << intern_speedup << "\n"
     << "  }\n"
     << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::cerr << "usage: bench_perf_scaling [--check] [--out FILE]\n";
      return 2;
    }
  }
  return run(check, out);
}
