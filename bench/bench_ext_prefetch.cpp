// EXTENSION bench (paper Section 6.2 conclusion): how much do read-ahead
// and write aggregation help, given each application's measured access
// patterns? The client/server hit-rate gap is Figure 1's local/global
// pattern gap expressed as cache effectiveness: LBANN's reads are ~100%
// prefetchable at the client but poorly prefetchable at a single shared
// server-side cache, while collective I/O keeps even the server
// sequential.

#include <iostream>

#include "bench_common.hpp"
#include "pfsem/core/prefetch.hpp"

int main() {
  using namespace pfsem;
  using bench::analyze_app;

  bench::heading(
      "Extension: read-ahead hit rates and write aggregation per config");
  Table t({"Configuration", "client RA hits", "server RA hits",
           "writes/request", "reads", "writes"});
  double lbann_client = 0, lbann_server = 1;
  double consec_min_agg = 1e9;
  for (const auto& info : apps::registry()) {
    const auto a = analyze_app(info);
    const auto cb = core::estimate_cache_benefit(a.log);
    t.add_row({info.name,
               cb.client_reads ? fmt_pct(cb.client_hit_rate()) : "-",
               cb.server_reads ? fmt_pct(cb.server_hit_rate()) : "-",
               fmt(cb.aggregation_factor(), 2), std::to_string(cb.client_reads),
               std::to_string(cb.writes)});
    if (info.name == "LBANN") {
      lbann_client = cb.client_hit_rate();
      lbann_server = cb.server_hit_rate();
    }
    // Many-small-consecutive-write apps are the aggregation winners;
    // rank-0 gather-then-write apps are already aggregated in memory.
    if (info.name == "pF3D-IO" || info.name == "HACC-IO POSIX" ||
        info.name == "NWChem") {
      consec_min_agg = std::min(consec_min_agg, cb.aggregation_factor());
    }
  }
  t.print(std::cout);

  std::cout << "\nShape checks (Section 6.2: read-ahead and write "
               "aggregation are effective because accesses are regular):\n"
            << "  LBANN client read-ahead " << fmt_pct(lbann_client)
            << " vs server " << fmt_pct(lbann_server)
            << " (local sequential, globally interleaved)\n"
            << "  consecutive writers aggregate >= " << fmt(consec_min_agg, 1)
            << " writes per PFS request\n";
  const bool ok = lbann_client > 0.9 &&
                  lbann_server < lbann_client - 0.2 && consec_min_agg > 1.5;
  std::cout << (ok ? "SHAPE OK\n" : "SHAPE MISMATCH\n");
  return ok ? 0 : 1;
}
