// The capture-path microbenchmark kernel, compiled in its own translation
// unit on purpose: the timed region is a coroutine-heavy inner loop whose
// codegen (inlining, layout) must not drift as the driver TU
// (bench_perf_scaling.cpp) grows. Keeping it isolated makes the
// fast-vs-reference speedup a property of the library, not of how big the
// benchmark driver happens to be this month.
#pragma once

#include <cstdint>
#include <string>

#include "pfsem/sim/engine.hpp"
#include "pfsem/trace/collector.hpp"

namespace pfsem_bench {

struct CaptureRun {
  double seconds = 0;
  std::string compact_bytes;
  std::uint64_t events = 0;
};

/// Adversarial delay(0)-heavy capture workload: `roots` coroutines (spread
/// over 64 collector ranks) each do `rounds` fairness round-trips, almost
/// all at the current timestamp — the pending-event set stays ~`roots`
/// deep, so the reference heap pays O(log roots) with cold cache lines on
/// every event while the bucket ring pays O(1) — and emit one pwrite
/// record per round through the collector under test.
CaptureRun run_capture(pfsem::sim::SchedulerKind kind,
                       pfsem::trace::CaptureMode mode, int roots, int rounds,
                       int reps);

}  // namespace pfsem_bench
