// Table 3 — high-level access patterns of the studied applications.
// Runs every configuration at the paper's 64-rank scale, classifies the
// dominant output pattern, and prints measured vs paper-expected classes.
// Also reproduces the Table 2/5 run-configuration inventory from the
// registry metadata.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace pfsem;
  using bench::analyze_app;

  bench::heading("Table 5: application configurations (registry inventory)");
  Table inv({"Configuration", "Application", "I/O Library", "Workload"});
  for (const auto& info : apps::registry()) {
    inv.add_row({info.name, info.app, info.iolib, info.description});
  }
  inv.print(std::cout);

  bench::heading("Table 3: high-level access patterns (measured vs paper)");
  Table t({"Configuration", "I/O Library", "measured X-Y", "measured layout",
           "paper X-Y", "paper layout", "match"});
  int matches = 0, classified = 0;
  for (const auto& info : apps::registry()) {
    const auto a = analyze_app(info);
    const std::string layout = std::string(core::to_string(a.pattern.layout));
    const bool listed = !info.expect.xy.empty();
    const bool ok =
        !listed || (a.pattern.xy == info.expect.xy && layout == info.expect.layout);
    if (listed) {
      ++classified;
      if (ok) ++matches;
    }
    t.add_row({info.name, info.iolib, a.pattern.xy, layout,
               listed ? info.expect.xy : "(n/a)",
               listed ? info.expect.layout : "(n/a)",
               listed ? bench::match_mark(ok) : ""});
  }
  t.print(std::cout);
  std::cout << "\nMatched " << matches << "/" << classified
            << " paper-classified configurations.\n";
  return matches == classified ? 0 : 1;
}
