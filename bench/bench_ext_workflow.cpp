// EXTENSION bench (paper Sections 3.5 & 7): multi-application workflows.
// Two jobs share the PFS with no MPI channel between them: a simulation
// writes snapshots, an analysis job polls for completion markers and
// reads them. We compare the pipelined discipline (open after the marker
// appears) against the eager anti-pattern (pre-opened files), for both
// data semantics (conflict detector) and metadata semantics (namespace-
// dependency detector).

#include <iostream>

#include "bench_common.hpp"
#include "pfsem/apps/programs.hpp"
#include "pfsem/core/metadata_conflict.hpp"

namespace {

using namespace pfsem;

struct WorkflowResult {
  core::ConflictReport data;
  core::MetadataConflictReport meta;
};

WorkflowResult run(bool pipelined) {
  apps::AppConfig cfg = bench::paper_scale();
  apps::Harness h(cfg);
  apps::run_workflow(h, pipelined);
  const auto bundle = h.finish();
  WorkflowResult out;
  out.data = core::detect_conflicts(core::reconstruct_accesses(bundle));
  core::HappensBefore hb(bundle.comm, cfg.nranks);
  out.meta = core::detect_metadata_dependencies(bundle, &hb);
  return out;
}

std::string classes(const core::ConflictMatrix& m) {
  std::string s;
  if (m.waw_s) s += "WAW-S ";
  if (m.waw_d) s += "WAW-D ";
  if (m.raw_s) s += "RAW-S ";
  if (m.raw_d) s += "RAW-D ";
  return s.empty() ? "-" : s;
}

}  // namespace

int main() {
  bench::heading("Extension: producer/analysis workflow coupled via the PFS");
  Table t({"discipline", "session conflicts", "commit conflicts",
           "weakest data model", "ns deps (hard)", "MPI-ordered?",
           "lazy-metadata safe?"});
  const auto pipelined = run(true);
  const auto eager = run(false);
  for (const auto& [name, r] :
       {std::pair{"pipelined (open after marker)", &pipelined},
        std::pair{"eager (pre-opened files)", &eager}}) {
    const auto advice = core::advise(r->data);
    t.add_row({name, classes(r->data.session), classes(r->data.commit),
               vfs::to_string(advice.weakest),
               std::to_string(r->meta.cross_process) + " (" +
                   std::to_string(r->meta.hard_cross_process) + ")",
               r->meta.unsynchronized == 0 ? "yes" : "NO",
               r->meta.lazy_metadata_safe() ? "yes" : "NO"});
  }
  t.print(std::cout);

  const bool ok =
      // Pipelined: close->open chains make session data semantics enough...
      !pipelined.data.session.raw_d && !pipelined.data.session.waw_d &&
      // ...but the cross-job namespace dependency is NOT MPI-ordered: the
      // workflow needs the PFS to publish metadata (or strong metadata).
      pipelined.meta.cross_process > 0 && !pipelined.meta.lazy_metadata_safe() &&
      // Eager: stale sessions create cross-process RAW conflicts...
      eager.data.session.raw_d &&
      // ...which a commit by the producer (its close) clears.
      !eager.data.commit.raw_d;
  std::cout
      << "\nFindings (extension of the paper's future-work direction):\n"
         "  * pipelined workflows satisfy the session-semantics condition "
         "for data (every write is separated from its reader by close->"
         "open), so burst-buffer PFSs with session/commit semantics can "
         "host them;\n"
         "  * but their job-to-job coupling lives in *metadata* (the "
         "completion marker), which no MPI synchronization orders — they "
         "need metadata that becomes visible without an intra-job sync "
         "boundary (strong or flush-on-close metadata);\n"
         "  * pre-opening input files breaks the session condition and "
         "upgrades the data requirement to commit semantics.\n"
      << (ok ? "SHAPE OK\n" : "SHAPE MISMATCH\n");
  return ok ? 0 : 1;
}
