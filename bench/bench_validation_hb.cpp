// Section 5.2 validation — reproduces the paper's methodology check on
// FLASH, the one application with cross-process conflicts:
//
//  1. Inject per-rank clock skew (the paper observed <20 us on Quartz) and
//     verify that conflicting I/O operations are separated by much more
//     than the skew, so timestamp order is trustworthy.
//  2. Rebuild the happens-before order from matched sends/receives and
//     collectives and verify every conflicting pair is synchronized by
//     the program (timestamp order == execution order; race-free).
//  3. Verify the conflict classes are identical with and without skew.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace pfsem;
  using bench::analyze_app;

  const auto* flash = apps::find_app("FLASH-fbs");
  const auto cfg = bench::paper_scale();

  constexpr SimDuration kMaxSkew = 20'000;  // 20 us, the paper's bound
  const auto skewed_clocks =
      sim::make_skewed_clocks(cfg.nranks, kMaxSkew, 200.0, 0xc10c);

  const auto clean = analyze_app(*flash, cfg);
  const auto skewed = analyze_app(*flash, cfg, {}, skewed_clocks);

  bench::heading("Section 5.2 validation on FLASH-fbs (64 ranks)");

  // 1. conflicting-operation spacing vs skew.
  SimTime min_gap = kTimeNever;
  for (const auto& c : skewed.report.conflicts) {
    if (c.first.rank == c.second.rank) continue;
    min_gap = std::min(min_gap, c.second.t - c.first.t);
  }
  std::cout << "cross-process conflicting pairs: min separation = "
            << to_seconds(min_gap) * 1e3 << " ms vs injected skew <= "
            << to_seconds(kMaxSkew) * 1e3
            << " ms (paper: pairs are 10s of ms apart, skew < 0.02 ms)\n";

  // 2. happens-before synchronization of conflicting pairs.
  std::cout << "happens-before check (skewed clocks): " << skewed.races.checked
            << " pairs, " << skewed.races.synchronized << " synchronized, "
            << skewed.races.racy << " racy\n";

  // 3. conflict classes invariant under skew.
  const auto& a = clean.report.session;
  const auto& b = skewed.report.session;
  const bool classes_match = a.waw_s == b.waw_s && a.waw_d == b.waw_d &&
                             a.raw_s == b.raw_s && a.raw_d == b.raw_d;
  std::cout << "conflict classes identical with/without skew: "
            << (classes_match ? "yes" : "NO") << "\n";

  // Sweep: how much skew *can* the methodology tolerate before the
  // timestamp order of conflicting operations breaks? (extension of the
  // paper's argument)
  bench::heading("Skew tolerance sweep");
  Table t({"max skew", "racy pairs", "classes match"});
  bool all_ok = min_gap > kMaxSkew && skewed.races.racy == 0 && classes_match;
  for (SimDuration skew :
       {SimDuration{0}, SimDuration{20'000}, SimDuration{200'000},
        SimDuration{2'000'000}, SimDuration{20'000'000}}) {
    const auto clocks = sim::make_skewed_clocks(cfg.nranks, skew, 200.0, 7);
    const auto run = analyze_app(*flash, cfg, {}, clocks);
    const auto& s = run.report.session;
    const bool match = s.waw_s == a.waw_s && s.waw_d == a.waw_d &&
                       s.raw_s == a.raw_s && s.raw_d == a.raw_d;
    t.add_row({fmt(to_seconds(skew) * 1e3, 2) + " ms",
               std::to_string(run.races.racy), match ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\n(Classes should hold comfortably at realistic skews and "
               "only degrade when skew approaches the conflict spacing.)\n";
  std::cout << (all_ok ? "VALIDATION OK\n" : "VALIDATION FAILED\n");
  return all_ok ? 0 : 1;
}
