// Unit tests for the burst-buffer backend: commit-semantics visibility
// (inherited from the inner Pfs), placement-aware read costs, publish
// accounting, and lamination.

#include <gtest/gtest.h>

#include "pfsem/trace/record.hpp"
#include "pfsem/vfs/burst_buffer.hpp"

namespace pfsem::vfs {
namespace {

using trace::kCreate;
using trace::kRdOnly;
using trace::kRdWr;

BurstBufferConfig small_nodes() {
  BurstBufferConfig cfg;
  cfg.ranks_per_node = 2;  // ranks {0,1} node 0, {2,3} node 1, ...
  return cfg;
}

VersionTag tag_at(const std::vector<ReadExtent>& extents, Offset at) {
  for (const auto& e : extents) {
    if (e.ext.contains(at)) return e.version;
  }
  return 0;
}

TEST(BurstBuffer, WritesAreCommitSemantics) {
  BurstBufferPfs bb(small_nodes());
  const int w = bb.open(0, "ck", kCreate | kRdWr, 0).fd;
  const int rd = bb.open(2, "ck", kRdWr, 0).fd;
  const auto wr = bb.pwrite(0, w, 0, 4096, 10);
  EXPECT_EQ(tag_at(bb.pread(2, rd, 0, 4096, 20).extents, 0), 0u)
      << "uncommitted write must not be visible on another node";
  bb.fsync(0, w, 30);
  EXPECT_EQ(tag_at(bb.pread(2, rd, 0, 4096, 40).extents, 0), wr.version);
}

TEST(BurstBuffer, LocalWritesAreMuchCheaperThanPfs) {
  BurstBufferPfs bb(small_nodes());
  Pfs pfs;  // default Lustre-ish config
  const int a = bb.open(0, "f", kCreate | kRdWr, 0).fd;
  const int b = pfs.open(0, "f", kCreate | kRdWr, 0).fd;
  const auto cb = bb.pwrite(0, a, 0, 1 << 20, 10).cost;
  const auto cp = pfs.pwrite(0, b, 0, 1 << 20, 10).cost;
  EXPECT_LT(cb, cp / 3) << "node-local NVMe should beat the shared PFS";
  EXPECT_EQ(bb.stats().local_writes, 1u);
  EXPECT_EQ(bb.stats().local_bytes, 1u << 20);
}

TEST(BurstBuffer, SameNodeReadIsLocalRemoteNodeIsNot) {
  BurstBufferPfs bb(small_nodes());
  const int w = bb.open(0, "f", kCreate | kRdWr, 0).fd;
  (void)bb.pwrite(0, w, 0, 65536, 10);
  bb.fsync(0, w, 20);

  // Rank 1 shares node 0 with the writer: local read.
  const int same = bb.open(1, "f", kRdWr, 30).fd;
  const auto local = bb.pread(1, same, 0, 65536, 40);
  EXPECT_EQ(bb.stats().local_reads, 1u);
  EXPECT_EQ(bb.stats().remote_reads, 0u);

  // Rank 2 is on node 1: remote fetch, strictly more expensive.
  const int other = bb.open(2, "f", kRdWr, 50).fd;
  const auto remote = bb.pread(2, other, 0, 65536, 60);
  EXPECT_EQ(bb.stats().remote_reads, 1u);
  EXPECT_EQ(bb.stats().remote_bytes, 65536u);
  EXPECT_GT(remote.cost, local.cost);
}

TEST(BurstBuffer, PreloadedInputReadsAreLocal) {
  BurstBufferPfs bb(small_nodes());
  bb.preload("input.dat", 4096);
  const int fd = bb.open(5, "input.dat", kRdOnly, 0).fd;
  const auto res = bb.pread(5, fd, 0, 4096, 10);
  EXPECT_NE(tag_at(res.extents, 0), 0u);
  EXPECT_EQ(bb.stats().remote_reads, 0u)
      << "staged inputs are replicated/local";
}

TEST(BurstBuffer, CommitOpsCountIndexPublishes) {
  BurstBufferPfs bb(small_nodes());
  const int w = bb.open(0, "f", kCreate | kRdWr, 0).fd;
  (void)bb.pwrite(0, w, 0, 128, 10);
  bb.fsync(0, w, 20);
  bb.fsync(0, w, 30);
  bb.close(0, w, 40);
  EXPECT_EQ(bb.stats().index_publishes, 3u);
}

TEST(BurstBuffer, LaminatePublishesAndFreezes) {
  BurstBufferPfs bb(small_nodes());
  const int w = bb.open(0, "f", kCreate | kRdWr, 0).fd;
  const auto wr = bb.pwrite(0, w, 0, 256, 10);
  EXPECT_EQ(bb.laminate("f", 20).ret, 0);
  const int rd = bb.open(3, "f", kRdOnly, 30).fd;
  EXPECT_EQ(tag_at(bb.pread(3, rd, 0, 256, 40).extents, 0), wr.version);
  EXPECT_EQ(bb.pwrite(0, w, 0, 256, 50).version, 0u) << "read-only after";
}

TEST(BurstBuffer, NamespaceOpsDelegate) {
  BurstBufferPfs bb(small_nodes());
  EXPECT_EQ(bb.mkdir("dir", 0).ret, 0);
  const int fd = bb.open(0, "a", kCreate | kRdWr, 0).fd;
  (void)bb.pwrite(0, fd, 0, 42, 5);
  bb.close(0, fd, 10);
  EXPECT_EQ(bb.stat("a", 20).ret, 42);
  EXPECT_EQ(bb.rename("a", "b", 30).ret, 0);
  EXPECT_EQ(bb.access("b", 40).ret, 0);
  EXPECT_EQ(bb.unlink("b", 50).ret, 0);
}

}  // namespace
}  // namespace pfsem::vfs
