// Differential tests extending the determinism contract to the capture
// path: every registered application, simulated on the fast path
// (bucketed scheduler + per-rank emission arenas) and on the retained
// reference path (heap scheduler + single global emitter), must produce
// byte-identical trace bundles (compact v2 serialization) and
// byte-identical report text — at 8 and 64 ranks, with and without
// injected clock skew, and under fail-stop crash faults (TaskKilled
// unwinding through the real I/O stack).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "pfsem/apps/harness.hpp"
#include "pfsem/apps/registry.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/report.hpp"
#include "pfsem/fault/plan.hpp"
#include "pfsem/iolib/posix_io.hpp"
#include "pfsem/trace/serialize.hpp"

namespace pfsem {
namespace {

apps::AppConfig fast_cfg(int ranks) {
  apps::AppConfig cfg;
  cfg.nranks = ranks;
  cfg.ranks_per_node = std::max(1, ranks / 8);
  return cfg;
}

apps::AppConfig reference_cfg(int ranks) {
  apps::AppConfig cfg = fast_cfg(ranks);
  cfg.scheduler = sim::SchedulerKind::Heap;
  cfg.capture = trace::CaptureMode::Reference;
  return cfg;
}

std::string compact_bytes(const trace::TraceBundle& bundle) {
  std::ostringstream os;
  trace::write_compact(bundle, os);
  return os.str();
}

std::string report_text(const trace::TraceBundle& bundle) {
  const auto log = core::reconstruct_accesses(bundle);
  const auto pairs = core::detect_file_overlaps(log);
  const auto conflicts = core::detect_conflicts(log, pairs, {});
  const auto rep = core::build_report(bundle, log, conflicts);
  std::ostringstream os;
  core::print_report(rep, os);
  return os.str();
}

TEST(CaptureDiff, EveryAppBundleByteIdenticalAcrossCapturePaths) {
  for (const int ranks : {8, 64}) {
    for (const auto& info : apps::registry()) {
      const auto fast = apps::run_app(info, fast_cfg(ranks));
      const auto ref = apps::run_app(info, reference_cfg(ranks));
      ASSERT_EQ(compact_bytes(fast), compact_bytes(ref))
          << info.name << " ranks=" << ranks;
      // The fast path additionally carries column hints; they must cover
      // the whole path table and tally exactly the file-carrying records.
      ASSERT_EQ(fast.file_op_counts.size(), fast.paths.size()) << info.name;
      std::size_t tallied = 0, with_file = 0;
      for (const auto c : fast.file_op_counts) tallied += c;
      for (const auto& r : fast.records) with_file += r.file != kNoFile;
      ASSERT_EQ(tallied, with_file) << info.name;
      ASSERT_TRUE(ref.file_op_counts.empty()) << info.name;
    }
  }
}

TEST(CaptureDiff, EveryAppReportTextIdenticalAcrossCapturePaths) {
  for (const auto& info : apps::registry()) {
    const auto fast = apps::run_app(info, fast_cfg(8));
    const auto ref = apps::run_app(info, reference_cfg(8));
    ASSERT_EQ(report_text(fast), report_text(ref)) << info.name;
  }
}

TEST(CaptureDiff, SkewedClocksConvertIdenticallyInArenas) {
  // Clock conversion happens at emit time in both paths; under per-rank
  // skew/drift the arena path must store the same local timestamps the
  // reference path does.
  const auto& info = *apps::find_app("FLASH-fbs");
  for (const int ranks : {8, 64}) {
    const auto clocks = sim::make_skewed_clocks(ranks, 20'000, 100.0, 7);
    const auto fast = apps::run_app(info, fast_cfg(ranks), {}, clocks);
    const auto ref = apps::run_app(info, reference_cfg(ranks), {}, clocks);
    ASSERT_EQ(compact_bytes(fast), compact_bytes(ref)) << "ranks=" << ranks;
  }
}

TEST(CaptureDiff, TransientFaultsReplayIdenticallyAcrossCapturePaths) {
  // Retried EIO faults, slowdowns, and MPI drops perturb timing and event
  // interleaving; with the same plan and seed, the fast path must emit the
  // exact bytes the reference path does.
  const auto& info = *apps::find_app("MACSio");
  apps::FaultSetup setup;
  setup.plan = fault::FaultPlan::parse(
      "eio:p=0.03,ops=data; slow:factor=6,from=0,to=4ms;"
      "drop:p=0.1,timeout=500us");
  setup.seed = 11;
  setup.retry.max_attempts = 4;
  const auto fast = apps::run_app(info, fast_cfg(8), {}, {}, &setup);
  const auto ref = apps::run_app(info, reference_cfg(8), {}, {}, &setup);
  ASSERT_EQ(compact_bytes(fast), compact_bytes(ref));
  ASSERT_EQ(report_text(fast), report_text(ref));
}

TEST(CaptureDiff, ClusterMdsFailoverReplaysIdenticallyAcrossCapturePaths) {
  // Server fault domains on the multi-server backend: an MDS crash plus
  // standby failover (with its EHOSTDOWN redirect and backoff) must
  // replay byte-identically on both capture paths, for every registered
  // application.
  apps::FaultSetup setup;
  setup.plan = fault::FaultPlan::parse("crash_mds:id=0,t=1ms");
  setup.seed = 7;
  vfs::ClusterConfig ccfg;
  ccfg.mds_count = 2;
  ccfg.ost_count = 4;
  for (const auto& info : apps::registry()) {
    fault::FaultStats stats;
    const auto fast = apps::run_app_cluster(info, fast_cfg(8), ccfg, {},
                                            &setup, &stats);
    const auto ref =
        apps::run_app_cluster(info, reference_cfg(8), ccfg, {}, &setup);
    ASSERT_EQ(compact_bytes(fast), compact_bytes(ref)) << info.name;
    ASSERT_EQ(report_text(fast), report_text(ref)) << info.name;
    ASSERT_EQ(stats.server_crashes, 1u) << info.name;
  }
}

TEST(CaptureDiff, CrashMidBucketLeavesIdenticalSurvivingTrace) {
  // A fail-stop crash kills rank 3 mid-run (TaskKilled propagates out of a
  // delay(0) cohort inside the write loop). The workload has no
  // collectives, so the survivors finish; the surviving trace must be
  // byte-identical across capture paths.
  auto run_crash = [](apps::AppConfig cfg) {
    apps::Harness h(cfg);
    h.set_faults(fault::FaultPlan::parse("crash:rank=3,t=2ms"),
                 /*fault_seed=*/11);
    iolib::PosixIo posix(h.ctx());
    h.run([&](Rank r) -> sim::Task<void> {
      const int fd = co_await posix.open(
          r, "out." + std::to_string(r), trace::kCreate | trace::kWrOnly);
      for (int i = 0; i < 64; ++i) {
        co_await posix.pwrite(r, fd, static_cast<Offset>(i) * 4096, 4096);
        co_await h.engine().delay(i % 4 == 0 ? 100'000 : 0);
      }
      co_await posix.close(r, fd);
    });
    return h.collector().take();
  };
  const auto fast = run_crash(fast_cfg(8));
  const auto ref = run_crash(reference_cfg(8));
  ASSERT_EQ(compact_bytes(fast), compact_bytes(ref));
  ASSERT_LT(fast.records.size(), 8u * 66u) << "the crash must cut rank 3 short";
}

}  // namespace
}  // namespace pfsem
