// Behavioural litmus tests for the PFS consistency models (Section 3).
// Each test drives the same access script against a Pfs configured with a
// different model and checks exactly which write each read observes.

#include <gtest/gtest.h>

#include "pfsem/trace/record.hpp"
#include "pfsem/util/error.hpp"
#include "pfsem/vfs/pfs.hpp"

namespace pfsem::vfs {
namespace {

using trace::kAppend;
using trace::kCreate;
using trace::kRdOnly;
using trace::kRdWr;
using trace::kTrunc;
using trace::kWrOnly;

PfsConfig with_model(ConsistencyModel m) {
  PfsConfig cfg;
  cfg.model = m;
  return cfg;
}

/// Version tag observed at byte `at` of the read result.
VersionTag tag_at(const std::vector<ReadExtent>& extents, Offset at) {
  for (const auto& e : extents) {
    if (e.ext.contains(at)) return e.version;
  }
  return 0;
}

// --- strong semantics -------------------------------------------------

TEST(Strong, RemoteWriteVisibleImmediately) {
  Pfs fs(with_model(ConsistencyModel::Strong));
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const int rd = fs.open(1, "f", kRdWr, 10).fd;
  const auto wr = fs.pwrite(0, w, 0, 100, 20);
  const auto res = fs.pread(1, rd, 0, 100, 30);
  EXPECT_EQ(tag_at(res.extents, 0), wr.version);
}

TEST(Strong, LastWriterWinsByTime) {
  Pfs fs(with_model(ConsistencyModel::Strong));
  const int w0 = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const int w1 = fs.open(1, "f", kRdWr, 0).fd;
  (void)fs.pwrite(0, w0, 0, 100, 10);
  const auto second = fs.pwrite(1, w1, 50, 100, 20);
  const int rd = fs.open(2, "f", kRdOnly, 30).fd;
  const auto res = fs.pread(2, rd, 0, 150, 40);
  EXPECT_EQ(tag_at(res.extents, 60), second.version);
  EXPECT_EQ(tag_at(res.extents, 149), second.version);
  EXPECT_NE(tag_at(res.extents, 10), second.version);
}

// --- commit semantics -------------------------------------------------

TEST(Commit, RemoteWriteInvisibleUntilFsync) {
  Pfs fs(with_model(ConsistencyModel::Commit));
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const int rd = fs.open(1, "f", kRdWr, 0).fd;
  const auto wr = fs.pwrite(0, w, 0, 100, 10);
  EXPECT_EQ(tag_at(fs.pread(1, rd, 0, 100, 20).extents, 0), 0u)
      << "uncommitted remote write must read as hole";
  fs.fsync(0, w, 30);
  EXPECT_EQ(tag_at(fs.pread(1, rd, 0, 100, 40).extents, 0), wr.version)
      << "committed write must be globally visible";
}

TEST(Commit, OwnWritesAlwaysVisible) {
  Pfs fs(with_model(ConsistencyModel::Commit));
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const auto wr = fs.pwrite(0, w, 0, 64, 10);
  EXPECT_EQ(tag_at(fs.pread(0, w, 0, 64, 20).extents, 5), wr.version);
}

TEST(Commit, CloseActsAsCommit) {
  Pfs fs(with_model(ConsistencyModel::Commit));
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const auto wr = fs.pwrite(0, w, 0, 64, 10);
  fs.close(0, w, 20);
  const int rd = fs.open(1, "f", kRdOnly, 30).fd;
  EXPECT_EQ(tag_at(fs.pread(1, rd, 0, 64, 40).extents, 0), wr.version);
}

TEST(Commit, CommitOrderBeatsWriteOrder) {
  // w1 written before w2, but w2 commits first: after both commits the
  // later commit wins on overlapping bytes (visibility-time ordering).
  Pfs fs(with_model(ConsistencyModel::Commit));
  const int a = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const int b = fs.open(1, "f", kRdWr, 0).fd;
  const auto w1 = fs.pwrite(0, a, 0, 100, 10);
  (void)fs.pwrite(1, b, 0, 100, 20);
  fs.fsync(1, b, 30);  // w2 commits at 30
  fs.fsync(0, a, 40);  // w1 commits at 40
  const int rd = fs.open(2, "f", kRdOnly, 50).fd;
  EXPECT_EQ(tag_at(fs.pread(2, rd, 0, 100, 60).extents, 0), w1.version);
}

// --- session semantics -------------------------------------------------

TEST(Session, VisibleOnlyAfterCloseThenOpen) {
  Pfs fs(with_model(ConsistencyModel::Session));
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const auto wr = fs.pwrite(0, w, 0, 100, 10);

  // Reader whose session began before the writer closed: stale.
  const int early = fs.open(1, "f", kRdOnly, 5).fd;
  EXPECT_EQ(tag_at(fs.pread(1, early, 0, 100, 20).extents, 0), 0u);

  fs.close(0, w, 30);

  // Same old session: still stale even after the close.
  EXPECT_EQ(tag_at(fs.pread(1, early, 0, 100, 40).extents, 0), 0u);

  // Fresh session opened after the close: sees the write.
  const int fresh = fs.open(1, "f", kRdOnly, 50).fd;
  EXPECT_EQ(tag_at(fs.pread(1, fresh, 0, 100, 60).extents, 0), wr.version);
}

TEST(Session, FsyncAloneDoesNotPublish) {
  Pfs fs(with_model(ConsistencyModel::Session));
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  (void)fs.pwrite(0, w, 0, 100, 10);
  fs.fsync(0, w, 20);
  const int rd = fs.open(1, "f", kRdOnly, 30).fd;
  EXPECT_EQ(tag_at(fs.pread(1, rd, 0, 100, 40).extents, 0), 0u)
      << "session semantics needs close->open, not just fsync";
}

TEST(Session, OwnWritesVisibleWithinSession) {
  Pfs fs(with_model(ConsistencyModel::Session));
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const auto wr = fs.pwrite(0, w, 0, 100, 10);
  EXPECT_EQ(tag_at(fs.pread(0, w, 0, 100, 20).extents, 50), wr.version);
}

// --- eventual semantics -------------------------------------------------

TEST(Eventual, WriteVisibleAfterPropagationDelay) {
  PfsConfig cfg;
  cfg.model = ConsistencyModel::Eventual;
  cfg.eventual_propagation = 1000;
  Pfs fs(cfg);
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const int rd = fs.open(1, "f", kRdWr, 0).fd;
  const auto wr = fs.pwrite(0, w, 0, 100, 10);
  EXPECT_EQ(tag_at(fs.pread(1, rd, 0, 100, 500).extents, 0), 0u);
  EXPECT_EQ(tag_at(fs.pread(1, rd, 0, 100, 1500).extents, 0), wr.version);
}

// --- mechanics shared across models -------------------------------------

TEST(Mechanics, OffsetAdvanceAndAppend) {
  Pfs fs(with_model(ConsistencyModel::Strong));
  const int fd = fs.open(0, "f", kCreate | kWrOnly, 0).fd;
  EXPECT_EQ(fs.write(0, fd, 100, 10).offset, 0u);
  EXPECT_EQ(fs.write(0, fd, 50, 20).offset, 100u);
  const int ap = fs.open(1, "f", kWrOnly | kAppend, 30).fd;
  EXPECT_EQ(fs.write(1, ap, 10, 40).offset, 150u) << "O_APPEND lands at EOF";
  EXPECT_EQ(fs.file_size("f"), 160u);
}

TEST(Mechanics, LseekWhence) {
  Pfs fs(with_model(ConsistencyModel::Strong));
  const int fd = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  (void)fs.write(0, fd, 100, 10);
  EXPECT_EQ(fs.lseek(0, fd, 10, trace::kSeekSet, 20).ret, 10);
  EXPECT_EQ(fs.lseek(0, fd, 5, trace::kSeekCur, 30).ret, 15);
  EXPECT_EQ(fs.lseek(0, fd, -20, trace::kSeekEnd, 40).ret, 80);
  EXPECT_EQ(fs.lseek(0, fd, -200, trace::kSeekSet, 50).ret, -1);
}

TEST(Mechanics, ReadClippedAtEof) {
  Pfs fs(with_model(ConsistencyModel::Strong));
  const int fd = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  (void)fs.pwrite(0, fd, 0, 100, 10);
  EXPECT_EQ(fs.pread(0, fd, 50, 500, 20).bytes, 50u);
  EXPECT_EQ(fs.pread(0, fd, 200, 10, 30).bytes, 0u);
}

TEST(Mechanics, TruncateClearsTail) {
  Pfs fs(with_model(ConsistencyModel::Strong));
  const int fd = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const auto wr = fs.pwrite(0, fd, 0, 100, 10);
  fs.ftruncate(0, fd, 40, 20);
  EXPECT_EQ(fs.file_size("f"), 40u);
  fs.ftruncate(0, fd, 100, 30);
  const auto res = fs.pread(0, fd, 0, 100, 40);
  EXPECT_EQ(tag_at(res.extents, 10), wr.version);
  EXPECT_EQ(tag_at(res.extents, 60), 0u) << "re-grown region reads as hole";
}

TEST(Mechanics, OpenTruncDiscardsContent) {
  Pfs fs(with_model(ConsistencyModel::Strong));
  const int fd = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  (void)fs.pwrite(0, fd, 0, 100, 10);
  fs.close(0, fd, 20);
  const int t = fs.open(1, "f", kRdWr | kTrunc, 30).fd;
  EXPECT_EQ(fs.file_size("f"), 0u);
  EXPECT_EQ(fs.pread(1, t, 0, 100, 40).bytes, 0u);
}

TEST(Mechanics, NamespaceOps) {
  Pfs fs(with_model(ConsistencyModel::Strong));
  EXPECT_EQ(fs.stat("missing", 0).ret, -1);
  EXPECT_EQ(fs.mkdir("dir", 0).ret, 0);
  EXPECT_EQ(fs.mkdir("dir", 0).ret, -1);
  const int fd = fs.open(0, "a", kCreate | kWrOnly, 0).fd;
  (void)fs.write(0, fd, 77, 10);
  fs.close(0, fd, 20);
  EXPECT_EQ(fs.stat("a", 30).ret, 77);
  EXPECT_EQ(fs.rename("a", "b", 40).ret, 0);
  EXPECT_FALSE(fs.exists("a"));
  EXPECT_EQ(fs.stat("b", 50).ret, 77);
  EXPECT_EQ(fs.unlink("b", 60).ret, 0);
  EXPECT_EQ(fs.unlink("b", 70).ret, -1);
}

TEST(Mechanics, BadFdThrows) {
  Pfs fs(with_model(ConsistencyModel::Strong));
  EXPECT_THROW(fs.write(0, 99, 10, 0), Error);
  EXPECT_THROW(fs.close(0, 99, 0), Error);
}

TEST(Mechanics, OpenMissingWithoutCreateFails) {
  Pfs fs(with_model(ConsistencyModel::Strong));
  EXPECT_EQ(fs.open(0, "nope", kRdOnly, 0).fd, -1);
}

// --- preload (genesis data) ---------------------------------------------

TEST(Preload, VisibleUnderEveryModel) {
  for (auto m : {ConsistencyModel::Strong, ConsistencyModel::Commit,
                 ConsistencyModel::Session, ConsistencyModel::Eventual}) {
    SCOPED_TRACE(to_string(m));
    Pfs fs(with_model(m));
    fs.preload("input.dat", 1000);
    const int fd = fs.open(3, "input.dat", kRdOnly, 0).fd;
    const auto res = fs.pread(3, fd, 0, 1000, 1);
    EXPECT_EQ(res.bytes, 1000u);
    EXPECT_NE(tag_at(res.extents, 999), 0u);
  }
}

// --- lock-traffic cost model ---------------------------------------------

TEST(Locks, StrongModelCountsConflictTraffic) {
  PfsConfig cfg;
  cfg.model = ConsistencyModel::Strong;
  cfg.lock_block = 1024;
  Pfs fs(cfg);
  const int a = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const int b = fs.open(1, "f", kRdWr, 0).fd;
  (void)fs.pwrite(0, a, 0, 1024, 10);  // rank 0 takes block 0 exclusive
  const auto before = fs.lock_stats();
  EXPECT_GE(before.requests, 1u);
  (void)fs.pwrite(1, b, 0, 1024, 20);  // rank 1 must revoke rank 0
  const auto after = fs.lock_stats();
  EXPECT_GT(after.requests, before.requests);
  EXPECT_GT(after.revocations, before.revocations);
}

TEST(Locks, RepeatedAccessReusesLock) {
  PfsConfig cfg;
  cfg.model = ConsistencyModel::Strong;
  cfg.lock_block = 1024;
  Pfs fs(cfg);
  const int a = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  (void)fs.pwrite(0, a, 0, 512, 10);
  const auto first = fs.lock_stats().requests;
  (void)fs.pwrite(0, a, 512, 512, 20);  // same block, lock already held
  EXPECT_EQ(fs.lock_stats().requests, first);
}

TEST(Locks, RelaxedModelsChargeNoLockTraffic) {
  for (auto m : {ConsistencyModel::Commit, ConsistencyModel::Session,
                 ConsistencyModel::Eventual}) {
    SCOPED_TRACE(to_string(m));
    Pfs fs(with_model(m));
    const int a = fs.open(0, "f", kCreate | kRdWr, 0).fd;
    const int b = fs.open(1, "f", kRdWr, 0).fd;
    (void)fs.pwrite(0, a, 0, 4096, 10);
    (void)fs.pwrite(1, b, 0, 4096, 20);
    EXPECT_EQ(fs.lock_stats().requests, 0u);
    EXPECT_EQ(fs.lock_stats().revocations, 0u);
  }
}

// --- strong-view oracle ---------------------------------------------------

TEST(Oracle, StrongViewMatchesWriteOrder) {
  Pfs fs(with_model(ConsistencyModel::Session));
  const int a = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const int b = fs.open(1, "f", kRdWr, 0).fd;
  const auto w1 = fs.pwrite(0, a, 0, 100, 10);
  const auto w2 = fs.pwrite(1, b, 50, 100, 20);
  const auto view = fs.strong_view("f", 0, 150);
  EXPECT_EQ(tag_at(view, 10), w1.version);
  EXPECT_EQ(tag_at(view, 75), w2.version);
  EXPECT_EQ(tag_at(view, 149), w2.version);
}


// --- lamination (UnifyFS, Section 3.2) ------------------------------------

TEST(Laminate, PublishesUnderEveryModel) {
  for (auto m : {ConsistencyModel::Commit, ConsistencyModel::Session,
                 ConsistencyModel::Eventual}) {
    SCOPED_TRACE(to_string(m));
    PfsConfig cfg = with_model(m);
    cfg.eventual_propagation = 1'000'000'000;
    Pfs fs(cfg);
    const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
    const auto wr = fs.pwrite(0, w, 0, 100, 10);
    const int rd = fs.open(1, "f", kRdWr, 20).fd;
    EXPECT_EQ(tag_at(fs.pread(1, rd, 0, 100, 30).extents, 0), 0u)
        << "not yet visible before lamination";
    EXPECT_EQ(fs.laminate("f", 40).ret, 0);
    // Session model still gates on the reader session: reopen.
    const int rd2 = fs.open(1, "f", kRdOnly, 50).fd;
    EXPECT_EQ(tag_at(fs.pread(1, rd2, 0, 100, 60).extents, 0), wr.version);
  }
}

TEST(Laminate, FileBecomesReadOnly) {
  Pfs fs(with_model(ConsistencyModel::Commit));
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  (void)fs.pwrite(0, w, 0, 100, 10);
  fs.laminate("f", 20);
  const auto res = fs.pwrite(0, w, 0, 100, 30);
  EXPECT_EQ(res.version, 0u) << "writes to a laminated file must fail";
  EXPECT_EQ(fs.file_size("f"), 100u);
}

TEST(Laminate, MissingFileFails) {
  Pfs fs(with_model(ConsistencyModel::Commit));
  EXPECT_EQ(fs.laminate("nope", 0).ret, -1);
}

TEST(Laminate, LaminatedWritesSurviveCrashUnderEveryModel) {
  for (auto m : {ConsistencyModel::Strong, ConsistencyModel::Commit,
                 ConsistencyModel::Session, ConsistencyModel::Eventual}) {
    SCOPED_TRACE(to_string(m));
    PfsConfig cfg = with_model(m);
    cfg.eventual_propagation = 1'000'000'000;  // nothing propagates by t=50
    Pfs fs(cfg);
    const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
    const auto wr = fs.pwrite(0, w, 0, 100, 10);
    // No fsync, no close: only the lamination makes this durable.
    EXPECT_EQ(fs.laminate("f", 20).ret, 0);
    const auto lost = fs.crash_rank(0, 50);
    EXPECT_TRUE(lost.empty()) << "laminated data must survive a crash";
    EXPECT_EQ(tag_at(fs.strong_view("f", 0, 100), 0), wr.version);
    EXPECT_EQ(fs.file_size("f"), 100u);
  }
}

TEST(Laminate, UnlaminatedControlLosesTheWriteUnderCommit) {
  Pfs fs(with_model(ConsistencyModel::Commit));
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const auto wr = fs.pwrite(0, w, 0, 100, 10);
  const auto lost = fs.crash_rank(0, 50);
  EXPECT_EQ(lost, std::vector<VersionTag>{wr.version});
  EXPECT_EQ(tag_at(fs.strong_view("f", 0, 100), 0), 0u);
  EXPECT_EQ(fs.file_size("f"), 0u);
}


// --- striping (Lustre-style OST layout) ------------------------------------

TEST(Striping, SingleOstMatchesUnstripedModel) {
  PfsConfig a = with_model(ConsistencyModel::Strong);
  PfsConfig b = a;
  b.stripe_count = 1;
  Pfs fa(a), fb(b);
  const int x = fa.open(0, "f", kCreate | kWrOnly, 0).fd;
  const int y = fb.open(0, "f", kCreate | kWrOnly, 0).fd;
  EXPECT_EQ(fa.pwrite(0, x, 123, 77777, 10).cost,
            fb.pwrite(0, y, 123, 77777, 10).cost);
}

TEST(Striping, AlignedWriteTouchesOneOst) {
  PfsConfig cfg = with_model(ConsistencyModel::Commit);
  cfg.stripe_count = 4;
  cfg.stripe_size = 1 << 20;
  Pfs fs(cfg);
  const int fd = fs.open(0, "f", kCreate | kWrOnly, 0).fd;
  (void)fs.pwrite(0, fd, 0, 1 << 20, 10);          // OST 0
  (void)fs.pwrite(0, fd, 2u << 20, 1 << 20, 20);   // OST 2
  const auto& osts = fs.ost_stats();
  EXPECT_EQ(osts.requests[0], 1u);
  EXPECT_EQ(osts.requests[1], 0u);
  EXPECT_EQ(osts.requests[2], 1u);
  EXPECT_EQ(osts.bytes[0], 1u << 20);
}

TEST(Striping, MisalignedWriteSplitsAcrossTwoOsts) {
  PfsConfig cfg = with_model(ConsistencyModel::Commit);
  cfg.stripe_count = 4;
  cfg.stripe_size = 1 << 20;
  Pfs fs(cfg);
  const int fd = fs.open(0, "f", kCreate | kWrOnly, 0).fd;
  (void)fs.pwrite(0, fd, 512 * 1024, 1 << 20, 10);  // halves on OST 0 and 1
  const auto& osts = fs.ost_stats();
  EXPECT_EQ(osts.requests[0], 1u);
  EXPECT_EQ(osts.requests[1], 1u);
  EXPECT_EQ(osts.bytes[0], 512u * 1024);
  EXPECT_EQ(osts.bytes[1], 512u * 1024);
}

TEST(Striping, ParallelStripesCutTransferTime) {
  // One 4 MiB write over 4 OSTs costs like 1 MiB on one OST.
  PfsConfig striped = with_model(ConsistencyModel::Commit);
  striped.stripe_count = 4;
  striped.stripe_size = 1 << 20;
  PfsConfig single = with_model(ConsistencyModel::Commit);
  Pfs fs4(striped), fs1(single);
  const int a = fs4.open(0, "f", kCreate | kWrOnly, 0).fd;
  const int b = fs1.open(0, "f", kCreate | kWrOnly, 0).fd;
  const auto c4 = fs4.pwrite(0, a, 0, 4u << 20, 10).cost;
  const auto c1 = fs1.pwrite(0, b, 0, 4u << 20, 10).cost;
  EXPECT_LT(c4, c1);
  // Transfer part should shrink ~4x (latency is common to both).
  EXPECT_NEAR(static_cast<double>(c4 - striped.data_latency) * 4.0,
              static_cast<double>(c1 - single.data_latency),
              static_cast<double>(c1) * 0.01);
}

TEST(Striping, WholeFileRoundRobinBalances) {
  PfsConfig cfg = with_model(ConsistencyModel::Commit);
  cfg.stripe_count = 8;
  cfg.stripe_size = 64 * 1024;
  Pfs fs(cfg);
  const int fd = fs.open(0, "f", kCreate | kWrOnly, 0).fd;
  (void)fs.pwrite(0, fd, 0, 8u * 64 * 1024 * 10, 10);  // 80 stripes
  const auto& osts = fs.ost_stats();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(osts.bytes[i], 10u * 64 * 1024) << "OST " << i;
  }
}

}  // namespace
}  // namespace pfsem::vfs
