// Unit tests for the cache-benefit estimator (read-ahead + write
// aggregation replay).

#include <gtest/gtest.h>

#include "pfsem/core/prefetch.hpp"

namespace pfsem::core {
namespace {

Access acc(SimTime t, Rank r, Offset begin, Offset len, AccessType type) {
  Access a;
  a.t = t;
  a.rank = r;
  a.ext = {begin, begin + len};
  a.type = type;
  return a;
}

AccessLog make_log(std::vector<Access> v) {
  std::sort(v.begin(), v.end(),
            [](const Access& a, const Access& b) { return a.t < b.t; });
  AccessLog log;
  log.nranks = 8;
  FileLog fl;
  fl.accesses = std::move(v);
  log.put("f", std::move(fl));
  return log;
}

TEST(ReadAhead, SequentialReadsHitAfterFirstMiss) {
  std::vector<Access> v;
  for (int i = 0; i < 16; ++i) {
    v.push_back(acc(i * 10, 0, static_cast<Offset>(i) * 65536, 65536,
                    AccessType::Read));
  }
  const auto cb = estimate_cache_benefit(make_log(std::move(v)));
  EXPECT_EQ(cb.client_reads, 16u);
  EXPECT_EQ(cb.client_hits, 15u) << "only the first read misses";
  EXPECT_EQ(cb.server_reads, 16u);
  EXPECT_EQ(cb.server_hits, 15u) << "one reader: server sees the same stream";
}

TEST(ReadAhead, RandomReadsMiss) {
  std::vector<Access> v;
  const Offset offs[] = {0, 900'000'000, 5'000'000, 700'000'000, 80'000'000};
  for (int i = 0; i < 5; ++i) {
    v.push_back(acc(i * 10, 0, offs[i], 4096, AccessType::Read));
  }
  const auto cb = estimate_cache_benefit(make_log(std::move(v)));
  EXPECT_EQ(cb.client_hits, 0u);
}

TEST(ReadAhead, ClientHitsServerMissesWhenRanksInterleave) {
  // Two ranks streaming distant regions, interleaved in time: each rank's
  // own stream is sequential (client cache hits) but a single server-side
  // window thrashes — the LBANN effect.
  std::vector<Access> v;
  for (int i = 0; i < 16; ++i) {
    v.push_back(acc(i * 20, 0, static_cast<Offset>(i) * 65536, 65536,
                    AccessType::Read));
    v.push_back(acc(i * 20 + 10, 1,
                    500'000'000 + static_cast<Offset>(i) * 65536, 65536,
                    AccessType::Read));
  }
  const auto cb = estimate_cache_benefit(make_log(std::move(v)));
  EXPECT_GT(cb.client_hit_rate(), 0.9);
  EXPECT_EQ(cb.server_hits, 0u);
}

TEST(Aggregation, ConsecutiveWritesMerge) {
  std::vector<Access> v;
  for (int i = 0; i < 32; ++i) {
    v.push_back(acc(i * 10, 0, static_cast<Offset>(i) * 4096, 4096,
                    AccessType::Write));
  }
  const auto cb = estimate_cache_benefit(make_log(std::move(v)));
  EXPECT_EQ(cb.writes, 32u);
  EXPECT_EQ(cb.write_flushes, 1u) << "one contiguous run = one PFS request";
  EXPECT_DOUBLE_EQ(cb.aggregation_factor(), 32.0);
}

TEST(Aggregation, BufferCapacityForcesFlush) {
  CacheModelOptions opts;
  opts.aggregation_buffer = 8192;  // two 4K writes per flush
  std::vector<Access> v;
  for (int i = 0; i < 8; ++i) {
    v.push_back(acc(i * 10, 0, static_cast<Offset>(i) * 4096, 4096,
                    AccessType::Write));
  }
  const auto cb = estimate_cache_benefit(make_log(std::move(v)), opts);
  EXPECT_EQ(cb.write_flushes, 4u);
  EXPECT_DOUBLE_EQ(cb.aggregation_factor(), 2.0);
}

TEST(Aggregation, NonContiguousWritesDoNotMerge) {
  std::vector<Access> v;
  for (int i = 0; i < 8; ++i) {
    v.push_back(acc(i * 10, 0, static_cast<Offset>(i) * 1'000'000, 4096,
                    AccessType::Write));
  }
  const auto cb = estimate_cache_benefit(make_log(std::move(v)));
  EXPECT_EQ(cb.write_flushes, 8u);
  EXPECT_DOUBLE_EQ(cb.aggregation_factor(), 1.0);
}

TEST(Aggregation, PerRankBuffersAreIndependent) {
  // Two ranks interleaved in time, each contiguous on its own: client-side
  // buffers aggregate per rank.
  std::vector<Access> v;
  for (int i = 0; i < 8; ++i) {
    v.push_back(acc(i * 20, 0, static_cast<Offset>(i) * 4096, 4096,
                    AccessType::Write));
    v.push_back(acc(i * 20 + 10, 1, 1'000'000 + static_cast<Offset>(i) * 4096,
                    4096, AccessType::Write));
  }
  const auto cb = estimate_cache_benefit(make_log(std::move(v)));
  EXPECT_EQ(cb.writes, 16u);
  EXPECT_EQ(cb.write_flushes, 2u);
}

TEST(CacheBenefit, EmptyLogSafe) {
  AccessLog log;
  log.nranks = 4;
  const auto cb = estimate_cache_benefit(log);
  EXPECT_EQ(cb.client_reads, 0u);
  EXPECT_DOUBLE_EQ(cb.client_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(cb.aggregation_factor(), 1.0);
}

}  // namespace
}  // namespace pfsem::core
