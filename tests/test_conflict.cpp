// Unit tests for the conflict detector: the four potential-conflict
// classes, the commit condition (3) and session condition (4) of
// Section 5.2, and the reporting matrix.

#include <gtest/gtest.h>

#include <algorithm>

#include "pfsem/core/conflict.hpp"

namespace pfsem::core {
namespace {

/// Builds a FileLog directly (bypassing offset reconstruction) so each
/// test controls the expanded-record fields precisely.
class FileBuilder {
 public:
  FileBuilder& access(SimTime t, Rank r, Offset begin, Offset end,
                      AccessType type) {
    Access a;
    a.t = t;
    a.rank = r;
    a.ext = {begin, end};
    a.type = type;
    fl_.accesses.push_back(a);
    touch(r);
    return *this;
  }
  FileBuilder& open(Rank r, SimTime t) {
    fl_.opens[r].push_back(t);
    return *this;
  }
  FileBuilder& close(Rank r, SimTime t) {
    fl_.closes[r].push_back(t);
    fl_.commits[r].push_back(t);  // close is also a commit (footnote 2)
    return *this;
  }
  FileBuilder& commit(Rank r, SimTime t) {  // fsync-style commit
    fl_.commits[r].push_back(t);
    return *this;
  }

  AccessLog build(int nranks = 4) {
    // Annotate accesses like the offset tracker would.
    for (auto& [r, v] : fl_.opens) std::sort(v.begin(), v.end());
    for (auto& [r, v] : fl_.closes) std::sort(v.begin(), v.end());
    for (auto& [r, v] : fl_.commits) std::sort(v.begin(), v.end());
    std::sort(fl_.accesses.begin(), fl_.accesses.end(),
              [](const Access& a, const Access& b) { return a.t < b.t; });
    for (auto& a : fl_.accesses) {
      auto last_before = [&](const std::map<Rank, std::vector<SimTime>>& m,
                             SimTime fallback) {
        auto it = m.find(a.rank);
        if (it == m.end()) return fallback;
        auto ub = std::upper_bound(it->second.begin(), it->second.end(), a.t);
        return ub == it->second.begin() ? fallback : *std::prev(ub);
      };
      auto first_after = [&](const std::map<Rank, std::vector<SimTime>>& m) {
        auto it = m.find(a.rank);
        if (it == m.end()) return kTimeNever;
        auto ub = std::upper_bound(it->second.begin(), it->second.end(), a.t);
        return ub == it->second.end() ? kTimeNever : *ub;
      };
      a.t_open = last_before(fl_.opens, 0);
      a.t_commit = first_after(fl_.commits);
      a.t_close = first_after(fl_.closes);
    }
    AccessLog log;
    log.nranks = nranks;
    log.put("f", fl_);
    return log;
  }

 private:
  void touch(Rank r) {
    if (!fl_.opens.contains(r)) fl_.opens[r].push_back(0);
  }
  FileLog fl_;
};

TEST(Conflict, WawDifferentProcessNoSync) {
  auto log = FileBuilder()
                 .access(100, 0, 0, 50, AccessType::Write)
                 .access(200, 1, 25, 75, AccessType::Write)
                 .build();
  const auto rep = detect_conflicts(log);
  EXPECT_TRUE(rep.session.waw_d);
  EXPECT_TRUE(rep.commit.waw_d);
  EXPECT_FALSE(rep.session.waw_s);
  EXPECT_FALSE(rep.session.raw_s);
  EXPECT_FALSE(rep.session.raw_d);
  EXPECT_EQ(rep.potential_pairs, 1u);
}

TEST(Conflict, RawSameProcess) {
  auto log = FileBuilder()
                 .access(100, 2, 0, 50, AccessType::Write)
                 .access(200, 2, 0, 10, AccessType::Read)
                 .build();
  const auto rep = detect_conflicts(log);
  EXPECT_TRUE(rep.session.raw_s);
  EXPECT_TRUE(rep.commit.raw_s);
  EXPECT_TRUE(rep.session.same_process_only());
}

TEST(Conflict, WarNeverConflicts) {
  auto log = FileBuilder()
                 .access(100, 0, 0, 50, AccessType::Read)
                 .access(200, 1, 0, 50, AccessType::Write)
                 .build();
  const auto rep = detect_conflicts(log);
  EXPECT_FALSE(rep.session.any());
  EXPECT_FALSE(rep.commit.any());
  EXPECT_EQ(rep.potential_pairs, 0u);
}

TEST(Conflict, NonOverlappingNeverConflicts) {
  auto log = FileBuilder()
                 .access(100, 0, 0, 50, AccessType::Write)
                 .access(200, 1, 50, 100, AccessType::Write)
                 .build();
  EXPECT_FALSE(detect_conflicts(log).session.any());
}

TEST(Conflict, CommitBetweenClearsCommitSemanticsOnly) {
  // Writer fsyncs between the two accesses: condition (3) satisfied, so
  // commit semantics is clean, but session semantics (needs close->open)
  // still conflicts. This is exactly the FLASH situation.
  auto log = FileBuilder()
                 .access(100, 0, 0, 50, AccessType::Write)
                 .commit(0, 150)
                 .access(200, 1, 0, 50, AccessType::Write)
                 .build();
  const auto rep = detect_conflicts(log);
  EXPECT_FALSE(rep.commit.any());
  EXPECT_TRUE(rep.session.waw_d);
}

TEST(Conflict, CommitAfterSecondAccessDoesNotHelp) {
  auto log = FileBuilder()
                 .access(100, 0, 0, 50, AccessType::Write)
                 .access(200, 1, 0, 50, AccessType::Write)
                 .commit(0, 300)
                 .build();
  EXPECT_TRUE(detect_conflicts(log).commit.waw_d);
}

TEST(Conflict, CommitByWrongProcessDoesNotHelp) {
  auto log = FileBuilder()
                 .access(100, 0, 0, 50, AccessType::Write)
                 .commit(1, 150)  // the *reader's* commit is irrelevant
                 .access(200, 1, 0, 50, AccessType::Read)
                 .build();
  EXPECT_TRUE(detect_conflicts(log).commit.raw_d);
}

TEST(Conflict, CloseThenOpenClearsSessionSemantics) {
  // Writer closes at 150, reader (re)opens at 170: condition (4) is
  // satisfied — t1 < tclose1 < topen2 < t2.
  auto log = FileBuilder()
                 .access(100, 0, 0, 50, AccessType::Write)
                 .close(0, 150)
                 .open(1, 170)
                 .access(200, 1, 0, 50, AccessType::Read)
                 .build();
  const auto rep = detect_conflicts(log);
  EXPECT_FALSE(rep.session.any());
  EXPECT_FALSE(rep.commit.any()) << "close is also a commit";
}

TEST(Conflict, CloseWithoutReopenStillSessionConflict) {
  // Reader's session began before the writer's close.
  auto log = FileBuilder()
                 .open(1, 50)
                 .access(100, 0, 0, 50, AccessType::Write)
                 .close(0, 150)
                 .access(200, 1, 0, 50, AccessType::Read)
                 .build();
  const auto rep = detect_conflicts(log);
  EXPECT_TRUE(rep.session.raw_d);
  EXPECT_FALSE(rep.commit.any());
}

TEST(Conflict, ReopenBeforeCloseDoesNotClearSession) {
  // Reader reopened, but before the writer closed: stale session.
  auto log = FileBuilder()
                 .access(100, 0, 0, 50, AccessType::Write)
                 .open(1, 120)
                 .close(0, 150)
                 .access(200, 1, 0, 50, AccessType::Read)
                 .build();
  EXPECT_TRUE(detect_conflicts(log).session.raw_d);
}

TEST(Conflict, SameProcessCloseReopenClearsSession) {
  // QMCPACK-style: one rank rewrites a region across checkpoint files it
  // closes and reopens — no session conflict.
  auto log = FileBuilder()
                 .access(100, 0, 0, 50, AccessType::Write)
                 .close(0, 150)
                 .open(0, 170)
                 .access(200, 0, 0, 50, AccessType::Write)
                 .build();
  EXPECT_FALSE(detect_conflicts(log).session.any());
}

TEST(Conflict, MultipleFilesIndependent) {
  FileBuilder fb;
  fb.access(100, 0, 0, 50, AccessType::Write)
      .access(200, 1, 0, 50, AccessType::Write);
  auto log = fb.build();
  // Add a second, clean file.
  FileLog clean;
  Access a;
  a.t = 10;
  a.rank = 0;
  a.ext = {0, 100};
  a.type = AccessType::Write;
  clean.accesses.push_back(a);
  log.put("g", clean);
  const auto rep = detect_conflicts(log);
  EXPECT_EQ(rep.potential_pairs, 1u);
  ASSERT_EQ(rep.conflicts.size(), 1u);
  EXPECT_EQ(log.path(rep.conflicts[0].file), "f");
}

TEST(Conflict, ExampleCapKeepsCountsExact) {
  FileBuilder fb;
  // 20 overlapping writes by alternating ranks, no syncs.
  for (int i = 0; i < 20; ++i) {
    fb.access(100 + i * 10, i % 2, 0, 10, AccessType::Write);
  }
  auto log = fb.build();
  const auto rep = detect_conflicts(log, core::ConflictOptions{.max_examples_per_file = 5});
  EXPECT_EQ(rep.conflicts.size(), 5u);
  EXPECT_EQ(rep.potential_pairs, 190u);  // C(20,2)
  EXPECT_EQ(rep.session.count, 190u);
}

TEST(Conflict, MatrixClassification) {
  auto log = FileBuilder()
                 .access(100, 0, 0, 10, AccessType::Write)   // vs all below
                 .access(200, 0, 0, 10, AccessType::Write)   // WAW-S
                 .access(300, 1, 0, 10, AccessType::Read)    // RAW-D
                 .build();
  const auto rep = detect_conflicts(log);
  EXPECT_TRUE(rep.session.waw_s);
  EXPECT_TRUE(rep.session.raw_d);
  EXPECT_FALSE(rep.session.same_process_only());
  EXPECT_TRUE(rep.session.any());
}

}  // namespace
}  // namespace pfsem::core
