// Invariance properties of the analysis: conclusions must depend only on
// the *relative* structure of a trace. Shifting all timestamps, shifting
// all offsets, scaling access sizes, or consistently relabelling ranks
// must never change conflict classes or pattern classification.

#include <gtest/gtest.h>

#include <algorithm>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/pattern.hpp"

namespace pfsem::core {
namespace {

struct Verdict {
  bool s_waw_s, s_waw_d, s_raw_s, s_raw_d;
  bool c_waw_s, c_waw_d, c_raw_s, c_raw_d;
  std::uint64_t pairs;
  std::string xy;
  FileLayout layout;
  bool operator==(const Verdict&) const = default;
};

Verdict verdict_of(const AccessLog& log) {
  const auto rep = detect_conflicts(log);
  const auto pat = classify_high_level(log, log.nranks);
  return {rep.session.waw_s, rep.session.waw_d, rep.session.raw_s,
          rep.session.raw_d, rep.commit.waw_s,  rep.commit.waw_d,
          rep.commit.raw_s,  rep.commit.raw_d,  rep.potential_pairs,
          pat.xy,            pat.layout};
}

AccessLog sample_log(std::uint64_t seed) {
  apps::AppConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.bytes_per_rank = 64 * 1024;
  cfg.seed = seed;
  // A conflicting config exercises every analysis branch.
  return reconstruct_accesses(
      apps::run_app(*apps::find_app("FLASH-fbs"), cfg));
}

AccessLog transform(const AccessLog& in,
                    const std::function<void(Access&)>& fn,
                    const std::function<SimTime(SimTime)>& tmap) {
  AccessLog out;
  out.nranks = in.nranks;
  for (const auto& fl : in.files) {
    if (!fl.active()) continue;
    FileLog nf;
    for (Access a : fl.accesses) {
      a.t = tmap(a.t);
      a.t_open = tmap(a.t_open);
      if (a.t_commit != kTimeNever) a.t_commit = tmap(a.t_commit);
      if (a.t_close != kTimeNever) a.t_close = tmap(a.t_close);
      fn(a);
      nf.accesses.push_back(a);
    }
    auto map_table = [&](const std::map<Rank, std::vector<SimTime>>& m) {
      std::map<Rank, std::vector<SimTime>> r;
      for (const auto& [rank, v] : m) {
        for (SimTime t : v) r[rank].push_back(tmap(t));
        std::sort(r[rank].begin(), r[rank].end());
      }
      return r;
    };
    nf.opens = map_table(fl.opens);
    nf.closes = map_table(fl.closes);
    nf.commits = map_table(fl.commits);
    out.put(in.path(fl.file), std::move(nf));
  }
  return out;
}

TEST(Invariance, TimeTranslation) {
  const auto log = sample_log(11);
  const auto base = verdict_of(log);
  const auto shifted = transform(
      log, [](Access&) {}, [](SimTime t) { return t + 1'000'000'000; });
  EXPECT_EQ(verdict_of(shifted), base);
}

TEST(Invariance, TimeDilation) {
  // Uniformly stretching time preserves every ordering-based conclusion.
  const auto log = sample_log(12);
  const auto base = verdict_of(log);
  const auto dilated = transform(
      log, [](Access&) {}, [](SimTime t) { return t * 3; });
  EXPECT_EQ(verdict_of(dilated), base);
}

TEST(Invariance, OffsetTranslation) {
  const auto log = sample_log(13);
  const auto base = verdict_of(log);
  const auto moved = transform(
      log,
      [](Access& a) {
        a.ext.begin += 1 << 20;
        a.ext.end += 1 << 20;
      },
      [](SimTime t) { return t; });
  EXPECT_EQ(verdict_of(moved), base);
}

TEST(Invariance, OffsetScaling) {
  // Doubling every offset and length preserves overlap structure and
  // layout classes (all thresholds are below the data sizes involved).
  const auto log = sample_log(14);
  const auto base = verdict_of(log);
  const auto scaled = transform(
      log,
      [](Access& a) {
        a.ext.begin *= 2;
        a.ext.end *= 2;
      },
      [](SimTime t) { return t; });
  const auto v = verdict_of(scaled);
  EXPECT_EQ(v.pairs, base.pairs);
  EXPECT_EQ(v.s_waw_d, base.s_waw_d);
  EXPECT_EQ(v.xy, base.xy);
  EXPECT_EQ(v.layout, base.layout);
}

TEST(Invariance, RankRelabelling) {
  // Applying a permutation to every rank id preserves the S/D split and
  // the X-Y class (a rank reversal keeps affine rounds affine).
  const auto log = sample_log(15);
  const auto base = verdict_of(log);
  const int n = log.nranks;
  auto permute = [n](Rank r) { return static_cast<Rank>(n - 1 - r); };
  AccessLog relabelled;
  relabelled.nranks = n;
  for (const auto& fl : log.files) {
    if (!fl.active()) continue;
    FileLog nf;
    for (Access a : fl.accesses) {
      a.rank = permute(a.rank);
      nf.accesses.push_back(a);
    }
    auto map_table = [&](const std::map<Rank, std::vector<SimTime>>& m) {
      std::map<Rank, std::vector<SimTime>> r;
      for (const auto& [rank, v] : m) r[permute(rank)] = v;
      return r;
    };
    nf.opens = map_table(fl.opens);
    nf.closes = map_table(fl.closes);
    nf.commits = map_table(fl.commits);
    relabelled.put(log.path(fl.file), std::move(nf));
  }
  const auto v = verdict_of(relabelled);
  EXPECT_EQ(v.s_waw_s, base.s_waw_s);
  EXPECT_EQ(v.s_waw_d, base.s_waw_d);
  EXPECT_EQ(v.s_raw_s, base.s_raw_s);
  EXPECT_EQ(v.s_raw_d, base.s_raw_d);
  EXPECT_EQ(v.pairs, base.pairs);
  EXPECT_EQ(v.xy, base.xy);
}

TEST(Invariance, SeedChangesJitterNotConclusions) {
  // Different seeds change timing jitter and irregular block sizes but
  // never the semantic conclusions (the scale-invariance argument of
  // Section 6.1 applied to the seed dimension).
  const auto a = verdict_of(sample_log(100));
  for (std::uint64_t seed : {101, 102, 103}) {
    const auto b = verdict_of(sample_log(seed));
    EXPECT_EQ(b.s_waw_s, a.s_waw_s) << seed;
    EXPECT_EQ(b.s_waw_d, a.s_waw_d) << seed;
    EXPECT_EQ(b.s_raw_s, a.s_raw_s) << seed;
    EXPECT_EQ(b.s_raw_d, a.s_raw_d) << seed;
    EXPECT_EQ(b.c_waw_d, a.c_waw_d) << seed;
    EXPECT_EQ(b.xy, a.xy) << seed;
    EXPECT_EQ(b.layout, a.layout) << seed;
  }
}

}  // namespace
}  // namespace pfsem::core
