// Unit tests for pfsem::util — extents, RNG determinism, table rendering.

#include <gtest/gtest.h>

#include <sstream>

#include "pfsem/util/error.hpp"
#include "pfsem/util/extent.hpp"
#include "pfsem/util/rng.hpp"
#include "pfsem/util/table.hpp"

namespace pfsem {
namespace {

TEST(Extent, SizeAndEmpty) {
  EXPECT_EQ((Extent{10, 20}).size(), 10u);
  EXPECT_TRUE((Extent{5, 5}).empty());
  EXPECT_TRUE(Extent{}.empty());
  EXPECT_FALSE((Extent{0, 1}).empty());
}

TEST(Extent, OverlapBasics) {
  const Extent a{10, 20};
  EXPECT_TRUE(a.overlaps({15, 25}));
  EXPECT_TRUE(a.overlaps({0, 11}));
  EXPECT_TRUE(a.overlaps({12, 13}));
  EXPECT_FALSE(a.overlaps({20, 30})) << "half-open: touching is not overlap";
  EXPECT_FALSE(a.overlaps({0, 10}));
  EXPECT_FALSE(a.overlaps({}));
}

TEST(Extent, EmptyNeverOverlaps) {
  EXPECT_FALSE((Extent{10, 10}).overlaps({0, 100}));
  EXPECT_FALSE((Extent{0, 100}).overlaps({10, 10}));
}

TEST(Extent, Contains) {
  const Extent a{10, 20};
  EXPECT_TRUE(a.contains(Extent{10, 20}));
  EXPECT_TRUE(a.contains(Extent{12, 15}));
  EXPECT_FALSE(a.contains(Extent{9, 15}));
  EXPECT_FALSE(a.contains(Extent{15, 21}));
  EXPECT_TRUE(a.contains(Offset{10}));
  EXPECT_FALSE(a.contains(Offset{20}));
}

TEST(Extent, Intersect) {
  EXPECT_EQ((Extent{10, 20}).intersect({15, 30}), (Extent{15, 20}));
  EXPECT_TRUE((Extent{10, 20}).intersect({20, 30}).empty());
  EXPECT_EQ((Extent{0, 100}).intersect({40, 50}), (Extent{40, 50}));
}

TEST(Extent, NormalizeMergesAndSorts) {
  std::vector<Extent> v{{30, 40}, {0, 10}, {5, 15}, {15, 20}, {50, 50}};
  normalize(v);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], (Extent{0, 20}));
  EXPECT_EQ(v[1], (Extent{30, 40}));
  EXPECT_EQ(covered_bytes(v), 30u);
}

TEST(Extent, NormalizeEmptyInput) {
  std::vector<Extent> v;
  normalize(v);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(covered_bytes(v), 0u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(123), c2(124);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, RangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-50, 50);
    EXPECT_GE(v, -50);
    EXPECT_LE(v, 50);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"app", "class"});
  t.add_row({"FLASH", "M-1"});
  t.add_row({"LBANN-long-name", "N-1"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("FLASH"), std::string::npos);
  EXPECT_NE(text.find("LBANN-long-name"), std::string::npos);
  EXPECT_NE(text.find('+'), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "quote\"inside"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"one", "two"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(ErrorHelpers, RequireThrowsWithLocation) {
  EXPECT_NO_THROW(require(true, "fine"));
  try {
    require(false, "broken invariant");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Format, PercentAndFixed) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.625), "62.5%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Types, SecondsConversion) {
  using namespace literals;
  EXPECT_EQ(1_us, 1000);
  EXPECT_EQ(1_ms, 1'000'000);
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(1'500'000'000), 1.5);
}

}  // namespace
}  // namespace pfsem
