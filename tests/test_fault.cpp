// Fault-injection subsystem tests: plan parsing, crash durability under
// the four consistency models (Section 3), transient-error retry
// absorption, degraded-mode accounting, and bit-exact determinism of
// (plan, seed) replays.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/pattern.hpp"
#include "pfsem/fault/injector.hpp"
#include "pfsem/fault/plan.hpp"
#include "pfsem/iolib/posix_io.hpp"
#include "pfsem/trace/serialize.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem {
namespace {

using fault::FaultPlan;
using fault::OpClass;

// --- plan parsing ----------------------------------------------------------

TEST(FaultPlan, ParsesEveryClauseKind) {
  const auto plan = FaultPlan::parse(
      "eio:p=0.01,ops=write; enospc:p=0.001;"
      "slow:factor=10,from=1ms,to=3ms,ost=2; vis:extra=20ms,from=0,to=5ms;"
      "drop:p=0.05,timeout=1ms; crash:rank=3,t=2ms; crash:node=1,t=4ms");
  ASSERT_EQ(plan.transients.size(), 2u);
  EXPECT_EQ(plan.transients[0].err, fault::kEio);
  EXPECT_DOUBLE_EQ(plan.transients[0].probability, 0.01);
  EXPECT_TRUE(plan.transients[0].applies(OpClass::Write));
  EXPECT_FALSE(plan.transients[0].applies(OpClass::Read));
  // ops= defaults to data (reads + writes) when omitted.
  EXPECT_EQ(plan.transients[1].err, fault::kEnospc);
  EXPECT_TRUE(plan.transients[1].applies(OpClass::Read));
  EXPECT_TRUE(plan.transients[1].applies(OpClass::Write));
  EXPECT_FALSE(plan.transients[1].applies(OpClass::Meta));

  ASSERT_EQ(plan.slowdowns.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.slowdowns[0].factor, 10.0);
  EXPECT_EQ(plan.slowdowns[0].from, 1'000'000);
  EXPECT_EQ(plan.slowdowns[0].to, 3'000'000);
  EXPECT_EQ(plan.slowdowns[0].ost, 2);

  ASSERT_EQ(plan.spikes.size(), 1u);
  EXPECT_EQ(plan.spikes[0].extra, 20'000'000);

  ASSERT_EQ(plan.drops.size(), 1u);
  EXPECT_EQ(plan.drops[0].retransmit, 1'000'000);

  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].rank, 3);
  EXPECT_EQ(plan.crashes[0].t, 2'000'000);
  EXPECT_EQ(plan.crashes[1].node, 1);
}

TEST(FaultPlan, ParsesServerAndPartitionClauses) {
  const auto plan = FaultPlan::parse(
      "crash_mds:id=1,t=2ms; crash_ost:id=0,t=3ms;"
      "restart_server:mds=1,t=8ms; restart_server:ost=0,t=9ms;"
      "partition:ranks=0-3,from=1ms,to=6ms");
  ASSERT_EQ(plan.server_events.size(), 4u);
  EXPECT_EQ(plan.server_events[0].kind, fault::ServerKind::Mds);
  EXPECT_EQ(plan.server_events[0].id, 1);
  EXPECT_EQ(plan.server_events[0].t, 2'000'000);
  EXPECT_FALSE(plan.server_events[0].restart);
  EXPECT_EQ(plan.server_events[1].kind, fault::ServerKind::Ost);
  EXPECT_TRUE(plan.server_events[2].restart);
  EXPECT_EQ(plan.server_events[3].kind, fault::ServerKind::Ost);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].lo, 0);
  EXPECT_EQ(plan.partitions[0].hi, 3);
  EXPECT_EQ(plan.partitions[0].from, 1'000'000);
  EXPECT_EQ(plan.partitions[0].to, 6'000'000);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, HardenedParsingRejectsNonsense) {
  // Negative ranks / server ids.
  EXPECT_THROW((void)FaultPlan::parse("crash:rank=-1,t=1ms"), Error);
  EXPECT_THROW((void)FaultPlan::parse("crash:node=-2,t=1ms"), Error);
  EXPECT_THROW((void)FaultPlan::parse("crash_mds:id=-1,t=1ms"), Error);
  EXPECT_THROW((void)FaultPlan::parse("crash_ost:id=-3,t=0"), Error);
  EXPECT_THROW((void)FaultPlan::parse("slow:factor=2,ost=-1,from=0,to=1ms"),
               Error);
  // Zero- or negative-duration windows.
  EXPECT_THROW((void)FaultPlan::parse("slow:factor=2,from=1ms,to=1ms"), Error);
  EXPECT_THROW((void)FaultPlan::parse("slow:factor=2,from=2ms,to=1ms"), Error);
  EXPECT_THROW((void)FaultPlan::parse("vis:extra=1ms,from=5ms,to=5ms"), Error);
  EXPECT_THROW((void)FaultPlan::parse("partition:ranks=0-1,from=3ms,to=3ms"),
               Error);
  // Malformed server/partition clauses.
  EXPECT_THROW((void)FaultPlan::parse("crash_mds:t=1ms"), Error);
  EXPECT_THROW((void)FaultPlan::parse("restart_server:t=1ms"), Error);
  EXPECT_THROW((void)FaultPlan::parse("restart_server:mds=0,ost=0,t=1ms"),
               Error);
  EXPECT_THROW((void)FaultPlan::parse("partition:from=0,to=1ms"), Error);
  EXPECT_THROW((void)FaultPlan::parse("partition:ranks=3-1,from=0,to=1ms"),
               Error);
}

TEST(FaultPlan, TopologyValidationNamesTheProblem) {
  const auto plan = FaultPlan::parse("crash_mds:id=2,t=1ms");
  try {
    plan.validate_topology(/*mds_count=*/0, /*ost_count=*/0);
    FAIL() << "server events need a cluster backend";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--mds/--ost"), std::string::npos)
        << e.what();
  }
  try {
    plan.validate_topology(/*mds_count=*/2, /*ost_count=*/4);
    FAIL() << "id 2 is out of range for 2 metadata servers";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
  // In range: no throw.
  plan.validate_topology(/*mds_count=*/3, /*ost_count=*/1);
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse(";;").empty());
}

TEST(FaultPlan, MalformedSpecsThrow) {
  EXPECT_THROW((void)FaultPlan::parse("bogus:p=1"), Error);
  EXPECT_THROW((void)FaultPlan::parse("eio:p=oops"), Error);
  EXPECT_THROW((void)FaultPlan::parse("eio:p=2"), Error);
  EXPECT_THROW((void)FaultPlan::parse("eio:frequency=0.5"), Error);
  EXPECT_THROW((void)FaultPlan::parse("eio:p"), Error);
  EXPECT_THROW((void)FaultPlan::parse("eio:p=0.1,ops=scribble"), Error);
  EXPECT_THROW((void)FaultPlan::parse("slow:factor=0.5"), Error);
  EXPECT_THROW((void)FaultPlan::parse("crash:t=1ms"), Error);
  EXPECT_THROW((void)FaultPlan::parse("crash:rank=1,node=0,t=1ms"), Error);
}

TEST(FaultInjector, CrashScheduleExpandsNodesAndClipsRanks) {
  const auto plan =
      FaultPlan::parse("crash:node=1,t=2ms; crash:rank=0,t=1ms; "
                       "crash:rank=99,t=1ms");
  fault::Injector inj(plan, /*seed=*/1, /*ranks_per_node=*/2);
  const auto sched = inj.crash_schedule(/*nranks=*/4);
  // rank 99 dropped; node 1 = ranks {2, 3}; sorted by (time, rank).
  ASSERT_EQ(sched.size(), 3u);
  EXPECT_EQ(sched[0], (std::pair<Rank, SimTime>{0, 1'000'000}));
  EXPECT_EQ(sched[1], (std::pair<Rank, SimTime>{2, 2'000'000}));
  EXPECT_EQ(sched[2], (std::pair<Rank, SimTime>{3, 2'000'000}));
}

// --- crash durability across the four models -------------------------------
//
// Producer/consumer on two ranks. Rank 0 writes v1, fsyncs it, then writes
// v2 and lingers without closing; a fail-stop crash at t=5ms interrupts it.
// The consistency model decides what the crash may discard:
//
//   strong    both writes durable          -> nothing lost
//   commit    v1 fsynced before the crash  -> v2 lost
//   session   the file was never closed    -> v1 and v2 lost
//   eventual  v1 propagated (2ms), v2 not  -> v2 lost

struct DurabilityRun {
  std::vector<vfs::ReadExtent> view;  // strong_view of "data" after the run
  fault::FaultStats stats;
};

vfs::VersionTag tag_at(const std::vector<vfs::ReadExtent>& extents,
                       Offset at) {
  for (const auto& e : extents) {
    if (e.ext.contains(at)) return e.version;
  }
  return 0;
}

constexpr std::uint64_t kChunk = 64 * 1024;

DurabilityRun run_producer_consumer(vfs::ConsistencyModel model,
                                    const std::string& fault_spec,
                                    int max_attempts = 1) {
  apps::AppConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 2;
  vfs::PfsConfig pc;
  pc.model = model;
  pc.eventual_propagation = 2'000'000;  // 2 ms
  apps::Harness h(cfg, pc);
  h.set_faults(FaultPlan::parse(fault_spec), /*fault_seed=*/7);
  iolib::RetryPolicy retry;
  retry.max_attempts = max_attempts;
  h.set_retry_policy(retry);
  iolib::PosixIo posix(h.ctx());

  h.run([&](Rank r) -> sim::Task<void> {
    if (r == 0) {
      const int fd =
          co_await posix.open(0, "data", trace::kCreate | trace::kRdWr);
      co_await posix.pwrite(0, fd, 0, kChunk);        // v1
      co_await posix.fsync(0, fd);                    // commit v1
      co_await h.engine().delay(4'000'000);           // t ~= 4 ms
      co_await posix.pwrite(0, fd, kChunk, kChunk);   // v2, never committed
      co_await h.engine().delay(10'000'000);          // crash lands here
      co_await posix.close(0, fd);                    // never reached
    } else {
      co_await h.engine().delay(20'000'000);          // after any crash
      const int fd = co_await posix.open(1, "data", trace::kRdOnly);
      if (fd >= 0) {
        co_await posix.pread(1, fd, 0, 2 * kChunk);
        co_await posix.close(1, fd);
      }
    }
  });
  return {h.pfs().strong_view("data", 0, 2 * kChunk), h.injector()->stats()};
}

// Writes allocate version tags in issue order, so rank 0's two writes are
// tags 1 and 2 in every configuration of this workload.
constexpr vfs::VersionTag kV1 = 1, kV2 = 2;

TEST(CrashDurability, StrongLosesNothing) {
  const auto r = run_producer_consumer(vfs::ConsistencyModel::Strong,
                                       "crash:rank=0,t=5ms");
  EXPECT_EQ(tag_at(r.view, 0), kV1);
  EXPECT_EQ(tag_at(r.view, kChunk), kV2);
  EXPECT_TRUE(r.stats.lost_versions.empty());
  EXPECT_EQ(r.stats.writes_lost, 0u);
  EXPECT_EQ(r.stats.crashed_ranks, std::vector<Rank>{0});
}

TEST(CrashDurability, CommitLosesUncommittedWrite) {
  const auto r = run_producer_consumer(vfs::ConsistencyModel::Commit,
                                       "crash:rank=0,t=5ms");
  EXPECT_EQ(tag_at(r.view, 0), kV1) << "fsynced write survives";
  EXPECT_EQ(tag_at(r.view, kChunk), 0u) << "un-fsynced write is discarded";
  EXPECT_EQ(r.stats.lost_versions, std::vector<std::uint64_t>{kV2});
}

TEST(CrashDurability, SessionLosesUnclosedSession) {
  const auto r = run_producer_consumer(vfs::ConsistencyModel::Session,
                                       "crash:rank=0,t=5ms");
  EXPECT_EQ(tag_at(r.view, 0), 0u);
  EXPECT_EQ(tag_at(r.view, kChunk), 0u);
  EXPECT_EQ(r.stats.lost_versions, (std::vector<std::uint64_t>{kV1, kV2}));
  EXPECT_EQ(r.stats.writes_lost, 2u);
}

TEST(CrashDurability, EventualLosesUnpropagatedWrite) {
  const auto r = run_producer_consumer(vfs::ConsistencyModel::Eventual,
                                       "crash:rank=0,t=5ms");
  EXPECT_EQ(tag_at(r.view, 0), kV1) << "v1 propagated before the crash";
  EXPECT_EQ(tag_at(r.view, kChunk), 0u) << "v2 still in the writer's cache";
  EXPECT_EQ(r.stats.lost_versions, std::vector<std::uint64_t>{kV2});
}

TEST(CrashDurability, NoFaultsBaseline) {
  const auto r = run_producer_consumer(vfs::ConsistencyModel::Commit, "");
  EXPECT_EQ(tag_at(r.view, 0), kV1);
  EXPECT_EQ(tag_at(r.view, kChunk), kV2);
  EXPECT_EQ(r.stats, fault::FaultStats{});
}

// --- transient errors and retries ------------------------------------------

TEST(Retry, TransientEioIsAbsorbedWithoutChangingVersions) {
  const auto r = run_producer_consumer(vfs::ConsistencyModel::Strong,
                                       "eio:p=0.4,ops=write",
                                       /*max_attempts=*/10);
  // Failed attempts consume no version tags: the surviving file is
  // bit-identical to the fault-free run.
  EXPECT_EQ(tag_at(r.view, 0), kV1);
  EXPECT_EQ(tag_at(r.view, kChunk), kV2);
  EXPECT_GT(r.stats.transient_faults, 0u) << "plan must actually fire";
  EXPECT_EQ(r.stats.giveups, 0u);
  EXPECT_EQ(r.stats.retries, r.stats.transient_faults)
      << "every injected fault was retried";
}

TEST(Retry, ExhaustedBudgetFailsLoudly) {
  try {
    (void)run_producer_consumer(vfs::ConsistencyModel::Strong,
                                "eio:p=1,ops=write", /*max_attempts=*/2);
    FAIL() << "permanent I/O failure must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("failed permanently"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("EIO"), std::string::npos)
        << e.what();
  }
}

TEST(Retry, LaminatedWriteIsPermanentEvenWithRetries) {
  apps::AppConfig cfg;
  cfg.nranks = 1;
  cfg.ranks_per_node = 1;
  vfs::PfsConfig pc;
  pc.model = vfs::ConsistencyModel::Commit;
  apps::Harness h(cfg, pc);
  iolib::RetryPolicy retry;
  retry.max_attempts = 5;
  h.set_retry_policy(retry);
  iolib::PosixIo posix(h.ctx());
  try {
    h.run([&](Rank) -> sim::Task<void> {
      const int fd =
          co_await posix.open(0, "f", trace::kCreate | trace::kRdWr);
      co_await posix.pwrite(0, fd, 0, 4096);
      (void)h.pfs().laminate("f", h.engine().now());
      co_await posix.pwrite(0, fd, 4096, 4096);  // EROFS: not retryable
    });
    FAIL() << "writing a laminated file must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("EROFS"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("after 1 attempt"),
              std::string::npos)
        << "EROFS must not burn the retry budget: " << e.what();
  }
}

// --- degraded-mode reporting -----------------------------------------------

TEST(Degraded, SummaryMirrorsStatsAndFlagsCrashes) {
  const auto r = run_producer_consumer(vfs::ConsistencyModel::Session,
                                       "crash:rank=0,t=5ms");
  const auto d = apps::degraded_summary(r.stats);
  EXPECT_EQ(d.writes_lost, r.stats.writes_lost);
  EXPECT_EQ(d.crashed_ranks, std::vector<int>{0});
  EXPECT_TRUE(d.analysis_truncated());

  const auto clean = apps::degraded_summary(fault::FaultStats{});
  EXPECT_FALSE(clean.analysis_truncated());
}

// --- crashes strand collectives with a diagnosable deadlock ----------------

TEST(Crash, StrandedBarrierReportsBlockedRanks) {
  apps::AppConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 2;
  apps::Harness h(cfg);
  h.set_faults(FaultPlan::parse("crash:rank=0,t=1ms"), /*fault_seed=*/1);
  try {
    h.run([&](Rank r) -> sim::Task<void> {
      if (r == 0) co_await h.engine().delay(2'000'000);  // dies at 1 ms
      co_await h.world().barrier(r);  // rank 1 waits forever
    });
    FAIL() << "stranded barrier must deadlock";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("blocked ranks: 1"), std::string::npos) << msg;
  }
}

// --- determinism and analysis equivalence on real workloads ----------------

apps::AppConfig small_cfg() {
  apps::AppConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 4;
  cfg.bytes_per_rank = 32 * 1024;
  return cfg;
}

TEST(Determinism, SamePlanAndSeedReproduceBitIdenticalRuns) {
  const auto* info = apps::find_app("MACSio");
  ASSERT_NE(info, nullptr);
  apps::FaultSetup setup;
  setup.plan = FaultPlan::parse(
      "eio:p=0.02,ops=data; slow:factor=8,from=0,to=2ms;"
      "vis:extra=5ms,from=0,to=10ms; drop:p=0.1,timeout=500us");
  setup.seed = 1234;
  setup.retry.max_attempts = 4;

  auto once = [&] {
    fault::FaultStats stats;
    const auto bundle = run_app(*info, small_cfg(), {}, {}, &setup, &stats);
    std::ostringstream os;
    trace::write_binary(bundle, os);
    return std::pair{os.str(), stats};
  };
  const auto [trace_a, stats_a] = once();
  const auto [trace_b, stats_b] = once();
  EXPECT_GT(stats_a.transient_faults + stats_a.mpi_drops, 0u)
      << "plan must actually fire for this to be a meaningful check";
  EXPECT_EQ(trace_a, trace_b) << "replay must be bit-identical";
  EXPECT_EQ(stats_a, stats_b);

  // A different fault seed is a different run.
  setup.seed = 4321;
  const auto [trace_c, stats_c] = once();
  EXPECT_NE(trace_a, trace_c);
  (void)stats_c;
}

struct Signature {
  bool waw_s, waw_d, raw_s, raw_d;
  std::string xy, layout;
  bool operator==(const Signature&) const = default;
};

Signature signature_of(const trace::TraceBundle& bundle, int nranks) {
  const auto log = core::reconstruct_accesses(bundle);
  const auto rep = core::detect_conflicts(log);
  const auto pat = core::classify_high_level(log, nranks);
  return {rep.session.waw_s, rep.session.waw_d, rep.session.raw_s,
          rep.session.raw_d, pat.xy,
          std::string(core::to_string(pat.layout))};
}

TEST(Determinism, ParallelAnalysisOfFaultyRunsMatchesSequential) {
  // The parallel pipeline's byte-identical guarantee must hold on
  // fault-injected traces too (retried faults and visibility spikes shift
  // timestamps, which stresses uneven per-file shard sizes).
  const auto* info = apps::find_app("MACSio");
  ASSERT_NE(info, nullptr);
  apps::FaultSetup setup;
  setup.plan = FaultPlan::parse(
      "eio:p=0.03,ops=data; vis:extra=2ms,from=0,to=8ms;"
      "slow:factor=6,from=0,to=4ms");
  setup.seed = 7;
  setup.retry.max_attempts = 4;
  fault::FaultStats stats;
  const auto bundle = run_app(*info, small_cfg(), {}, {}, &setup, &stats);
  const auto log = core::reconstruct_accesses(bundle);

  auto fingerprint = [&](int threads) {
    const auto pairs = core::detect_file_overlaps(log, {}, threads);
    const auto rep = core::detect_conflicts(log, pairs, {.threads = threads});
    std::ostringstream os;
    os << rep.potential_pairs << '|' << rep.session.count << '|'
       << rep.commit.count << '\n';
    for (const auto& c : rep.conflicts) {
      os << log.path(c.file) << ' ' << c.first.rank << ' ' << c.first.t << ' '
         << c.second.rank << ' ' << c.second.t << ' '
         << c.under_commit << c.under_session << '\n';
    }
    return os.str();
  };
  const auto seq = fingerprint(1);
  EXPECT_EQ(fingerprint(2), seq);
  EXPECT_EQ(fingerprint(4), seq);
}

TEST(Determinism, ClusterMdsFailoverReproducesBitIdenticallyAcrossThreads) {
  // MDS crash + standby failover on the multi-server backend: the same
  // plan and seed must reproduce bit-identical bundles, and the analysis
  // must be thread-count-invariant on the degraded trace.
  const auto* info = apps::find_app("FLASH-fbs");
  ASSERT_NE(info, nullptr);
  apps::FaultSetup setup;
  setup.plan = FaultPlan::parse("crash_mds:id=0,t=1ms");
  setup.seed = 7;
  vfs::ClusterConfig ccfg;
  ccfg.mds_count = 2;
  ccfg.ost_count = 4;

  auto once = [&] {
    fault::FaultStats stats;
    const auto bundle =
        apps::run_app_cluster(*info, small_cfg(), ccfg, {}, &setup, &stats);
    std::ostringstream os;
    trace::write_binary(bundle, os);
    return std::tuple{os.str(), stats, signature_of(bundle, 8)};
  };
  const auto [trace_a, stats_a, sig_a] = once();
  const auto [trace_b, stats_b, sig_b] = once();
  ASSERT_EQ(stats_a.mds_failovers, 1u) << "the failover must actually happen";
  EXPECT_EQ(trace_a, trace_b) << "failover replay must be bit-identical";
  EXPECT_EQ(stats_a, stats_b);
  EXPECT_EQ(sig_a, sig_b);

  fault::FaultStats stats;
  const auto bundle =
      apps::run_app_cluster(*info, small_cfg(), ccfg, {}, &setup, &stats);
  const auto log = core::reconstruct_accesses(bundle);
  auto fingerprint = [&](int threads) {
    const auto pairs = core::detect_file_overlaps(log, {}, threads);
    const auto rep = core::detect_conflicts(log, pairs, {.threads = threads});
    return std::tuple{rep.potential_pairs, rep.session.count,
                      rep.commit.count};
  };
  const auto seq = fingerprint(1);
  EXPECT_EQ(fingerprint(2), seq);
  EXPECT_EQ(fingerprint(4), seq);
}

TEST(Determinism, RetriedTransientFaultsDoNotChangeTheAnalysis) {
  const auto* info = apps::find_app("NWChem");
  ASSERT_NE(info, nullptr);
  const auto cfg = small_cfg();
  const auto clean = signature_of(run_app(*info, cfg), cfg.nranks);

  apps::FaultSetup setup;
  setup.plan = FaultPlan::parse("eio:p=0.05,ops=data");
  setup.seed = 99;
  setup.retry.max_attempts = 8;
  fault::FaultStats stats;
  const auto faulty =
      signature_of(run_app(*info, cfg, {}, {}, &setup, &stats), cfg.nranks);

  ASSERT_GT(stats.transient_faults, 0u);
  ASSERT_EQ(stats.giveups, 0u) << "retry budget must absorb every fault";
  EXPECT_EQ(faulty, clean)
      << "absorbed transient faults must not change conflict verdicts";
}

}  // namespace
}  // namespace pfsem
