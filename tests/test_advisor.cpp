// Unit tests for the semantics advisor (weakest-safe-model logic).

#include <gtest/gtest.h>

#include "pfsem/core/advisor.hpp"

namespace pfsem::core {
namespace {

using vfs::ConsistencyModel;

ConflictReport report_with(ConflictMatrix session, ConflictMatrix commit,
                           std::uint64_t pairs) {
  ConflictReport r;
  r.session = session;
  r.commit = commit;
  r.potential_pairs = pairs;
  return r;
}

TEST(Advisor, NoPairsMeansEventualIsSafe) {
  const auto a = advise(report_with({}, {}, 0));
  EXPECT_EQ(a.weakest, ConsistencyModel::Eventual);
  EXPECT_EQ(a.weakest_strict, ConsistencyModel::Eventual);
  EXPECT_TRUE(a.race_free);
}

TEST(Advisor, CleanSessionMeansSession) {
  const auto a = advise(report_with({}, {}, 10));
  EXPECT_EQ(a.weakest, ConsistencyModel::Session);
  EXPECT_EQ(a.weakest_strict, ConsistencyModel::Session);
}

TEST(Advisor, SameProcessConflictsStillSessionForMostPfs) {
  ConflictMatrix s;
  s.waw_s = true;
  s.raw_s = true;
  s.count = 4;
  ConflictMatrix c = s;
  const auto a = advise(report_with(s, c, 10));
  EXPECT_EQ(a.weakest, ConsistencyModel::Session)
      << "S-only conflicts are handled by every studied PFS but BurstFS";
  EXPECT_EQ(a.weakest_strict, ConsistencyModel::Strong)
      << "a BurstFS-class PFS cannot even order same-process accesses";
}

TEST(Advisor, CrossProcessSessionConflictClearedByCommit) {
  ConflictMatrix s;
  s.waw_d = true;
  s.count = 2;
  const auto a = advise(report_with(s, {}, 10));
  EXPECT_EQ(a.weakest, ConsistencyModel::Commit)
      << "the FLASH case: D conflicts under session, none under commit";
}

TEST(Advisor, CrossProcessCommitConflictNeedsStrong) {
  ConflictMatrix s;
  s.raw_d = true;
  ConflictMatrix c;
  c.raw_d = true;
  const auto a = advise(report_with(s, c, 10));
  EXPECT_EQ(a.weakest, ConsistencyModel::Strong);
}

TEST(Advisor, RationaleMentionsDecision) {
  ConflictMatrix s;
  s.waw_d = true;
  const auto a = advise(report_with(s, {}, 10));
  EXPECT_FALSE(a.rationale.empty());
  EXPECT_NE(a.rationale.find("commit"), std::string::npos);
}

TEST(Advisor, RaceDetectionOverridesRationale) {
  // A racy pair (no HB order between the conflicting accesses).
  trace::CommLog log;
  HappensBefore hb(log, 2);
  ConflictReport r;
  Conflict c;
  c.first.rank = 0;
  c.first.t = 100;
  c.second.rank = 1;
  c.second.t = 200;
  r.conflicts.push_back(c);
  r.potential_pairs = 1;
  r.session.waw_d = true;
  const auto a = advise(r, &hb);
  EXPECT_FALSE(a.race_free);
  EXPECT_NE(a.rationale.find("non-deterministic"), std::string::npos);
}

TEST(Advisor, SynchronizedConflictIsRaceFree) {
  trace::CommLog log;
  trace::CollectiveEvent ev;
  ev.kind = trace::CollectiveKind::Barrier;
  ev.root = kNoRank;
  ev.arrivals = {{0, 150, 160}, {1, 150, 160}};
  log.collectives.push_back(ev);
  HappensBefore hb(log, 2);
  ConflictReport r;
  Conflict c;
  c.first.rank = 0;
  c.first.t = 100;
  c.second.rank = 1;
  c.second.t = 200;
  r.conflicts.push_back(c);
  r.potential_pairs = 1;
  const auto a = advise(r, &hb);
  EXPECT_TRUE(a.race_free);
}

}  // namespace
}  // namespace pfsem::core
