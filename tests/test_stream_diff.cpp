// Differential tests for the chunked streaming pipeline: every
// registered application, run once through the spill → merge → stream
// analysis path and once through the materialized build-a-bundle path,
// must produce byte-identical compact-v2 serializations and
// byte-identical report text — across thread counts, capture modes,
// both PFS backends, fault plans, and skewed clocks. The materialized
// path is the oracle; the streaming path must never be observable in
// the output.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pfsem/apps/harness.hpp"
#include "pfsem/apps/registry.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/report.hpp"
#include "pfsem/core/stream_analyze.hpp"
#include "pfsem/fault/plan.hpp"
#include "pfsem/trace/serialize.hpp"
#include "pfsem/trace/spill.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem {
namespace {

apps::AppConfig base_cfg(int ranks) {
  apps::AppConfig cfg;
  cfg.nranks = ranks;
  cfg.ranks_per_node = std::max(1, ranks / 8);
  return cfg;
}

std::string compact_bytes(const trace::TraceBundle& bundle) {
  std::ostringstream os(std::ios::binary);
  trace::write_compact(bundle, os);
  return os.str();
}

std::string report_text(const trace::TraceBundle& bundle, int threads = 1) {
  const auto log = core::reconstruct_accesses(bundle);
  const auto pairs = core::detect_file_overlaps(log, {}, threads);
  const auto conflicts =
      core::detect_conflicts(log, pairs, {.threads = threads});
  const auto rep = core::build_report(bundle, log, conflicts, threads);
  std::ostringstream os;
  core::print_report(rep, os);
  return os.str();
}

struct StreamResult {
  std::string compact;  ///< compact-v2 bytes, re-encoded from the chunks
  std::string report;   ///< full report text from the streaming analysis
  std::uint64_t records = 0;
  bool spilled = false;
};

/// The whole streaming pipeline end to end: capture spills chunks into a
/// bounded store, the harness dies, then one replay pass feeds both the
/// compact re-encoder and the incremental analyzer.
StreamResult stream_run(const apps::AppInfo& info, apps::AppConfig cfg,
                        std::size_t chunk, std::size_t ceiling,
                        int threads = 1,
                        std::vector<sim::ClockModel> clocks = {},
                        const apps::FaultSetup* faults = nullptr,
                        const vfs::ClusterConfig* ccfg = nullptr) {
  trace::SpillStore store(ceiling);
  cfg.stream_chunk_records = chunk;
  trace::StreamMeta meta;
  {
    trace::ChunkWriter writer(store, cfg.nranks);
    meta = ccfg != nullptr
               ? apps::run_app_cluster_stream(info, writer, cfg, *ccfg,
                                              std::move(clocks), faults)
               : apps::run_app_stream(info, writer, cfg, {},
                                      std::move(clocks), faults);
    writer.finish(meta);
  }
  StreamResult out;
  out.records = meta.records;
  out.spilled = store.spilled();
  core::StreamAnalyzer analyzer(meta.nranks, meta.paths,
                                meta.rank_posix_counts, meta.file_op_counts);
  std::ostringstream cb(std::ios::binary);
  trace::write_compact_streamed(
      meta.nranks, meta.paths, meta.comm, meta.records,
      [&](const trace::RecordEmit& emit) {
        const auto in = store.open_read();
        trace::ChunkReader reader(*in);
        trace::Record rec;
        while (reader.next(rec)) {
          analyzer.feed(rec);
          emit(rec);
        }
        (void)reader.read_trailer();
      },
      cb);
  out.compact = cb.str();
  auto res = analyzer.finish();
  const auto pairs = core::detect_file_overlaps(res.log, {}, threads);
  const auto conflicts =
      core::detect_conflicts(res.log, pairs, {.threads = threads});
  const auto rep = core::assemble_report(std::move(res.stats), res.records,
                                         res.log.nranks, res.log, conflicts,
                                         threads);
  std::ostringstream ro;
  core::print_report(rep, ro);
  out.report = ro.str();
  return out;
}

TEST(StreamDiff, EveryAppStreamingMatchesMaterialized) {
  // Tiny chunks and a tiny spill ceiling so chunk boundaries fall inside
  // every run and the bigger runs actually hit the on-disk spill path.
  bool any_spilled = false;
  for (const auto& info : apps::registry()) {
    const auto cfg = base_cfg(8);
    const auto bundle = apps::run_app(info, cfg);
    const auto stream = stream_run(info, cfg, /*chunk=*/64,
                                   /*ceiling=*/16u << 10);
    ASSERT_EQ(stream.compact, compact_bytes(bundle)) << info.name;
    ASSERT_EQ(stream.report, report_text(bundle)) << info.name;
    ASSERT_EQ(stream.records, bundle.records.size()) << info.name;
    any_spilled = any_spilled || stream.spilled;
  }
  ASSERT_TRUE(any_spilled) << "no run exceeded the 16 KiB spill ceiling; "
                              "the on-disk path went untested";
}

TEST(StreamDiff, ReferenceAndAutoCaptureMatchMaterialized) {
  const auto& info = *apps::find_app("FLASH-fbs");
  // Reference capture pair.
  auto ref = base_cfg(8);
  ref.scheduler = sim::SchedulerKind::Heap;
  ref.capture = trace::CaptureMode::Reference;
  const auto ref_bundle = apps::run_app(info, ref);
  const auto ref_stream = stream_run(info, ref, 64, 16u << 10);
  ASSERT_EQ(ref_stream.compact, compact_bytes(ref_bundle));
  ASSERT_EQ(ref_stream.report, report_text(ref_bundle));
  // Auto capture (resolves to the reference pair at this rank count; the
  // fast pair's stream-vs-materialized identity is covered by the other
  // tests in this file, which all run the default Fast mode).
  auto cfg = base_cfg(8);
  cfg.capture = trace::CaptureMode::Auto;
  const auto bundle = apps::run_app(info, cfg);
  const auto stream = stream_run(info, cfg, 256, 64u << 10);
  ASSERT_EQ(stream.compact, compact_bytes(bundle));
  ASSERT_EQ(stream.report, report_text(bundle));
}

TEST(StreamDiff, AutoCaptureResolvesByRankCount) {
  const auto& info = *apps::find_app("GTC");
  auto cfg = base_cfg(8);
  cfg.capture = trace::CaptureMode::Auto;
  // Below the threshold Auto must be the reference pair bit-for-bit;
  // above it, the fast pair. Both are byte-identical anyway (the capture
  // differential), so Auto can never change output — only speed.
  auto ref = base_cfg(8);
  ref.scheduler = sim::SchedulerKind::Heap;
  ref.capture = trace::CaptureMode::Reference;
  ASSERT_EQ(compact_bytes(apps::run_app(info, cfg)),
            compact_bytes(apps::run_app(info, ref)));
  ASSERT_LT(8, apps::kAutoCaptureRankThreshold);
  // The resolution policy itself, on both sides of the threshold — pure,
  // so pinning the fast side needs no threshold-sized simulation.
  using trace::CaptureMode;
  static_assert(apps::resolved_capture_mode(
                    CaptureMode::Auto, apps::kAutoCaptureRankThreshold - 1) ==
                CaptureMode::Reference);
  static_assert(apps::resolved_capture_mode(
                    CaptureMode::Auto, apps::kAutoCaptureRankThreshold) ==
                CaptureMode::Fast);
  static_assert(apps::resolved_capture_mode(CaptureMode::Fast, 8) ==
                CaptureMode::Fast);
  static_assert(apps::resolved_capture_mode(CaptureMode::Reference, 1 << 20) ==
                CaptureMode::Reference);
}

TEST(StreamDiff, ThreadCountsAllByteIdentical) {
  const auto& info = *apps::find_app("FLASH-fbs");
  const auto cfg = base_cfg(64);
  const auto bundle = apps::run_app(info, cfg);
  for (const int threads : {1, 2, 4}) {
    const auto stream = stream_run(info, cfg, 256, 32u << 10, threads);
    ASSERT_EQ(stream.compact, compact_bytes(bundle)) << "threads=" << threads;
    ASSERT_EQ(stream.report, report_text(bundle, threads))
        << "threads=" << threads;
  }
}

TEST(StreamDiff, SkewedClocksMatchMaterialized) {
  const auto& info = *apps::find_app("FLASH-fbs");
  const auto cfg = base_cfg(64);
  const auto clocks = sim::make_skewed_clocks(64, 20'000, 100.0, 7);
  const auto bundle = apps::run_app(info, cfg, {}, clocks);
  const auto stream = stream_run(info, cfg, 256, 32u << 10, 1, clocks);
  ASSERT_EQ(stream.compact, compact_bytes(bundle));
  ASSERT_EQ(stream.report, report_text(bundle));
}

TEST(StreamDiff, TransientFaultsMatchMaterialized) {
  const auto& info = *apps::find_app("MACSio");
  apps::FaultSetup setup;
  setup.plan = fault::FaultPlan::parse(
      "eio:p=0.03,ops=data; slow:factor=6,from=0,to=4ms;"
      "drop:p=0.1,timeout=500us");
  setup.seed = 11;
  setup.retry.max_attempts = 4;
  const auto cfg = base_cfg(8);
  const auto bundle = apps::run_app(info, cfg, {}, {}, &setup);
  const auto stream = stream_run(info, cfg, 64, 16u << 10, 1, {}, &setup);
  ASSERT_EQ(stream.compact, compact_bytes(bundle));
  ASSERT_EQ(stream.report, report_text(bundle));
}

TEST(StreamDiff, ClusterMdsFailoverMatchesMaterialized) {
  const auto& info = *apps::find_app("GTC");
  apps::FaultSetup setup;
  setup.plan = fault::FaultPlan::parse("crash_mds:id=0,t=1ms");
  setup.seed = 7;
  vfs::ClusterConfig ccfg;
  ccfg.mds_count = 2;
  ccfg.ost_count = 4;
  const auto cfg = base_cfg(8);
  const auto bundle = apps::run_app_cluster(info, cfg, ccfg, {}, &setup);
  const auto stream =
      stream_run(info, cfg, 64, 16u << 10, 1, {}, &setup, &ccfg);
  ASSERT_EQ(stream.compact, compact_bytes(bundle));
  ASSERT_EQ(stream.report, report_text(bundle));
}

TEST(StreamDiff, CollectorPendingBoundedByChunkSize) {
  // The collector may never hold more than one chunk of records while
  // streaming — that bound is what makes capture memory flat in rank
  // count (the spill store and the vfs hold the rest).
  trace::SpillStore store(1u << 20);
  trace::ChunkWriter writer(store, 64);
  auto cfg = base_cfg(64);
  cfg.stream_sink = &writer;
  cfg.stream_chunk_records = 128;
  apps::Harness h(cfg);
  apps::find_app("FLASH-fbs")->run(h);
  EXPECT_LE(h.collector().stream_peak_pending(), 128u);
  const auto meta = h.finish_stream();
  writer.finish(meta);
  EXPECT_GT(meta.records, 128u) << "run too small to exercise the bound";
}

TEST(StreamDiff, RankBudgetsShrinkReorderBuffer) {
  // Per-rank POSIX budgets let the analyzer retire finished ranks from
  // the release frontier. Without them (empty budgets) the analysis is
  // still correct — just buffered more conservatively.
  const auto& info = *apps::find_app("FLASH-fbs");
  const auto cfg = base_cfg(64);
  trace::SpillStore store(1u << 20);
  trace::StreamMeta meta;
  {
    trace::ChunkWriter writer(store, cfg.nranks);
    auto streamed = cfg;
    streamed.stream_chunk_records = 256;
    meta = apps::run_app_stream(info, writer, streamed);
    writer.finish(meta);
  }
  auto drain = [&](core::StreamAnalyzer& an) {
    const auto in = store.open_read();
    trace::ChunkReader reader(*in);
    trace::Record rec;
    while (reader.next(rec)) an.feed(rec);
    (void)reader.read_trailer();
    return an.finish();
  };
  core::StreamAnalyzer with(meta.nranks, meta.paths, meta.rank_posix_counts,
                            meta.file_op_counts);
  core::StreamAnalyzer without(meta.nranks, meta.paths, {},
                               meta.file_op_counts);
  const auto res_with = drain(with);
  const auto res_without = drain(without);
  // Identical analysis either way...
  const auto text = [](const core::StreamAnalyzer::Result& r, int nranks) {
    const auto pairs = core::detect_file_overlaps(r.log);
    const auto conflicts = core::detect_conflicts(r.log, pairs, {});
    const auto rep = core::assemble_report(r.stats, r.records, nranks, r.log,
                                           conflicts);
    std::ostringstream os;
    core::print_report(rep, os);
    return os.str();
  };
  ASSERT_EQ(text(res_with, meta.nranks), text(res_without, meta.nranks));
  ASSERT_EQ(text(res_with, meta.nranks),
            report_text(apps::run_app(info, cfg)));
  // ...but budgets must never buffer more than the budget-free analyzer.
  EXPECT_LE(with.peak_buffered(), without.peak_buffered());
  EXPECT_GT(without.peak_buffered(), 0u);
}

TEST(StreamDiff, SpillStoreSpillsAndRoundTrips) {
  trace::SpillStore store(/*memory_ceiling=*/16);
  store.append("0123456789");
  EXPECT_FALSE(store.spilled());
  store.append("abcdefghij");  // crosses the ceiling: spills to disk
  EXPECT_TRUE(store.spilled());
  store.append("KLMNO");
  EXPECT_EQ(store.bytes(), 25u);
  EXPECT_LE(store.peak_memory(), 16u);
  const auto in = store.open_read();
  std::string all(std::istreambuf_iterator<char>(*in), {});
  EXPECT_EQ(all, "0123456789abcdefghijKLMNO");
  // A spilled store is read-only once opened for reading.
  EXPECT_THROW(store.append("more"), Error);
}

TEST(StreamDiff, UnspilledStoreIsRereadable) {
  trace::SpillStore store(1u << 10);
  store.append("abc");
  store.append("def");
  EXPECT_FALSE(store.spilled());
  for (int i = 0; i < 2; ++i) {
    const auto in = store.open_read();
    std::string all(std::istreambuf_iterator<char>(*in), {});
    EXPECT_EQ(all, "abcdef");
  }
}

}  // namespace
}  // namespace pfsem
