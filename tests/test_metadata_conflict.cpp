// Unit tests for the metadata-dependency extension (Section 7 future
// work): namespace mutate/observe pairing, hard vs soft observations,
// ancestor-directory dependencies, and happens-before classification.

#include <gtest/gtest.h>

#include "pfsem/core/metadata_conflict.hpp"

namespace pfsem::core {
namespace {

using trace::Func;
using trace::Layer;

class NsTraceBuilder {
 public:
  explicit NsTraceBuilder(int nranks) { bundle_.nranks = nranks; }

  NsTraceBuilder& create(Rank r, const std::string& path) {
    add(r, Func::open, path, trace::kCreate, /*ret=*/3);
    return *this;
  }
  NsTraceBuilder& open_existing(Rank r, const std::string& path) {
    add(r, Func::open, path, trace::kRdOnly, /*ret=*/3);
    return *this;
  }
  NsTraceBuilder& mkdir(Rank r, const std::string& path) {
    add(r, Func::mkdir, path, 0, 0);
    return *this;
  }
  NsTraceBuilder& unlink(Rank r, const std::string& path) {
    add(r, Func::unlink, path, 0, 0);
    return *this;
  }
  NsTraceBuilder& stat(Rank r, const std::string& path, bool ok) {
    add(r, Func::stat, path, 0, ok ? 0 : -1);
    return *this;
  }
  NsTraceBuilder& readdir(Rank r, const std::string& path) {
    add(r, Func::readdir, path, 0, 0);
    return *this;
  }
  NsTraceBuilder& barrier_all() {
    trace::CollectiveEvent ev;
    ev.kind = trace::CollectiveKind::Barrier;
    ev.root = kNoRank;
    for (Rank r = 0; r < bundle_.nranks; ++r) {
      ev.arrivals.push_back({r, t_, t_ + 5});
    }
    t_ += 10;
    bundle_.comm.collectives.push_back(std::move(ev));
    return *this;
  }

  [[nodiscard]] const trace::TraceBundle& bundle() const { return bundle_; }

 private:
  void add(Rank r, Func f, const std::string& path, int flags, std::int64_t ret) {
    trace::Record rec;
    rec.tstart = t_;
    rec.tend = t_ + 5;
    t_ += 10;
    rec.rank = r;
    rec.layer = Layer::Posix;
    rec.func = f;
    rec.file = bundle_.intern(path);
    rec.flags = flags;
    rec.ret = ret;
    bundle_.records.push_back(std::move(rec));
  }
  trace::TraceBundle bundle_;
  SimTime t_ = 0;
};

TEST(MetadataDeps, OpenExistingAfterRemoteCreateIsHardDep) {
  NsTraceBuilder tb(2);
  tb.create(0, "shared").open_existing(1, "shared");
  const auto rep = detect_metadata_dependencies(tb.bundle());
  EXPECT_EQ(rep.cross_process, 1u);
  EXPECT_EQ(rep.hard_cross_process, 1u);
  ASSERT_EQ(rep.dependencies.size(), 1u);
  EXPECT_EQ(rep.dependencies[0].mutate.rank, 0);
  EXPECT_EQ(rep.dependencies[0].observe.rank, 1);
  EXPECT_TRUE(rep.dependencies[0].observe.hard);
  EXPECT_FALSE(rep.metadata_independent());
}

TEST(MetadataDeps, ConcurrentCreatesAreTolerant) {
  NsTraceBuilder tb(2);
  tb.create(0, "shared").create(1, "shared");  // second O_CREAT open
  const auto rep = detect_metadata_dependencies(tb.bundle());
  EXPECT_EQ(rep.cross_process, 0u) << "O_CREAT opens tolerate missing files";
}

TEST(MetadataDeps, SameRankNeverDepends) {
  NsTraceBuilder tb(2);
  tb.create(0, "f").open_existing(0, "f").stat(0, "f", true);
  EXPECT_TRUE(detect_metadata_dependencies(tb.bundle()).metadata_independent());
}

TEST(MetadataDeps, SuccessfulStatIsSoftDep) {
  NsTraceBuilder tb(2);
  tb.create(0, "marker").stat(1, "marker", true);
  const auto rep = detect_metadata_dependencies(tb.bundle());
  EXPECT_EQ(rep.cross_process, 1u);
  EXPECT_EQ(rep.hard_cross_process, 0u);
  EXPECT_TRUE(rep.lazy_metadata_safe())
      << "soft probes degrade to polling, not incorrectness";
}

TEST(MetadataDeps, FailedStatObservesNothing) {
  NsTraceBuilder tb(2);
  tb.stat(1, "marker", false).create(0, "marker").stat(1, "marker", false);
  EXPECT_EQ(detect_metadata_dependencies(tb.bundle()).cross_process, 0u);
}

TEST(MetadataDeps, ReaddirIsHard) {
  NsTraceBuilder tb(2);
  tb.mkdir(0, "out").readdir(1, "out");
  const auto rep = detect_metadata_dependencies(tb.bundle());
  EXPECT_EQ(rep.hard_cross_process, 1u);
}

TEST(MetadataDeps, AncestorDirectoryCountsAsMutation) {
  NsTraceBuilder tb(2);
  tb.mkdir(0, "out.bp").open_existing(1, "out.bp/data.0");
  const auto rep = detect_metadata_dependencies(tb.bundle());
  EXPECT_EQ(rep.cross_process, 1u);
  EXPECT_EQ(rep.dependencies[0].mutate.func, trace::Func::mkdir);
}

TEST(MetadataDeps, ExactPathBeatsAncestor) {
  NsTraceBuilder tb(3);
  tb.mkdir(0, "dir").create(1, "dir/f").open_existing(2, "dir/f");
  const auto rep = detect_metadata_dependencies(tb.bundle());
  ASSERT_GE(rep.dependencies.size(), 1u);
  // The observation of dir/f must pair with the file create, not mkdir.
  const auto& dep = rep.dependencies.back();
  EXPECT_EQ(dep.mutate.rank, 1);
  EXPECT_EQ(tb.bundle().paths.view(dep.mutate.file), "dir/f");
}

TEST(MetadataDeps, UnlinkIsAMutation) {
  NsTraceBuilder tb(2);
  tb.create(0, "f").open_existing(1, "f").unlink(1, "f").stat(0, "f", true);
  const auto rep = detect_metadata_dependencies(tb.bundle());
  // Three dependencies: open_existing(1) after create(0); unlink(1) after
  // create(0) (removing a name requires seeing it); stat(0) after
  // unlink(1).
  EXPECT_EQ(rep.cross_process, 3u);
}

TEST(MetadataDeps, BarrierMakesDependencySynchronized) {
  NsTraceBuilder tb(2);
  tb.create(0, "f").barrier_all().open_existing(1, "f");
  core::HappensBefore hb(tb.bundle().comm, 2);
  const auto rep = detect_metadata_dependencies(tb.bundle(), &hb);
  EXPECT_EQ(rep.cross_process, 1u);
  EXPECT_EQ(rep.unsynchronized, 0u);
  EXPECT_TRUE(rep.lazy_metadata_safe());
}

TEST(MetadataDeps, NoBarrierMeansUnsynchronized) {
  NsTraceBuilder tb(2);
  tb.create(0, "f").open_existing(1, "f");
  core::HappensBefore hb(tb.bundle().comm, 2);
  const auto rep = detect_metadata_dependencies(tb.bundle(), &hb);
  EXPECT_EQ(rep.hard_unsynchronized, 1u);
  EXPECT_FALSE(rep.lazy_metadata_safe());
}

TEST(MetadataDeps, ExampleCapKeepsCountsExact) {
  NsTraceBuilder tb(2);
  tb.create(0, "f");
  for (int i = 0; i < 50; ++i) tb.stat(1, "f", true);
  const auto rep =
      detect_metadata_dependencies(tb.bundle(), nullptr, {.max_examples = 5});
  EXPECT_EQ(rep.dependencies.size(), 5u);
  EXPECT_EQ(rep.cross_process, 50u);
}

}  // namespace
}  // namespace pfsem::core
