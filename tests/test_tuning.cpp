// Unit + integration tests for per-file consistency tuning (the
// Section 2.3 tunable-semantics extension).

#include <gtest/gtest.h>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/tuning.hpp"

namespace pfsem::core {
namespace {

FileLog make_file(                  std::vector<std::tuple<SimTime, Rank, Extent, AccessType,
                                         SimTime, SimTime, SimTime>>
                      rows) {
  FileLog fl;
  for (const auto& [t, rank, ext, type, t_open, t_commit, t_close] : rows) {
    Access a;
    a.t = t;
    a.rank = rank;
    a.ext = ext;
    a.type = type;
    a.t_open = t_open;
    a.t_commit = t_commit;
    a.t_close = t_close;
    fl.accesses.push_back(a);
  }
  return fl;
}

TEST(Tuning, ConflictFreeFileIsEventual) {
  AccessLog log;
  log.nranks = 2;
  log.put("clean", make_file({{10, 0, {0, 100}, AccessType::Write, 0, 50, 50},
                {20, 1, {100, 200}, AccessType::Write, 0, 60, 60}}));
  const auto rep = per_file_tuning(log);
  ASSERT_EQ(rep.files.size(), 1u);
  EXPECT_EQ(rep.files[0].weakest, vfs::ConsistencyModel::Eventual);
  EXPECT_DOUBLE_EQ(rep.eventual_fraction(), 1.0);
}

TEST(Tuning, SameProcessConflictStaysSession) {
  AccessLog log;
  log.nranks = 2;
  log.put("idx", make_file({{10, 0, {0, 8}, AccessType::Write, 0, kTimeNever, kTimeNever},
              {20, 0, {0, 8}, AccessType::Write, 0, kTimeNever, kTimeNever}}));
  const auto rep = per_file_tuning(log);
  EXPECT_EQ(rep.files[0].weakest, vfs::ConsistencyModel::Session);
  EXPECT_EQ(rep.files[0].session_pairs, 1u);
}

TEST(Tuning, CrossProcessClearedByCommitIsCommit) {
  AccessLog log;
  log.nranks = 2;
  // writer commits at 15, before the second access at 20: commit clean,
  // session conflicting.
  log.put("meta", make_file({{10, 0, {0, 96}, AccessType::Write, 0, 15, kTimeNever},
               {20, 1, {0, 96}, AccessType::Write, 0, kTimeNever, kTimeNever}}));
  const auto rep = per_file_tuning(log);
  EXPECT_EQ(rep.files[0].weakest, vfs::ConsistencyModel::Commit);
}

TEST(Tuning, CrossProcessUnclearedNeedsStrong) {
  AccessLog log;
  log.nranks = 2;
  log.put("hot", make_file({{10, 0, {0, 96}, AccessType::Write, 0, kTimeNever, kTimeNever},
              {20, 1, {0, 96}, AccessType::Write, 0, kTimeNever, kTimeNever}}));
  const auto rep = per_file_tuning(log);
  EXPECT_EQ(rep.files[0].weakest, vfs::ConsistencyModel::Strong);
  EXPECT_EQ(rep.relaxed_fraction(), 0.0);
}

TEST(Tuning, MixedFilesAggregateByBytes) {
  AccessLog log;
  log.nranks = 2;
  log.put("bulk", make_file({{10, 0, {0, 900}, AccessType::Write, 0, 50, 50},
               {20, 1, {900, 1800}, AccessType::Write, 0, 60, 60}}));
  log.put("hot", make_file({{10, 0, {0, 100}, AccessType::Write, 0, kTimeNever, kTimeNever},
              {20, 1, {0, 100}, AccessType::Write, 0, kTimeNever, kTimeNever}}));
  const auto rep = per_file_tuning(log);
  EXPECT_EQ(rep.total_bytes, 2000u);
  EXPECT_EQ(rep.relaxed_bytes, 1800u);
  EXPECT_DOUBLE_EQ(rep.relaxed_fraction(), 0.9);
}

// Integration: the conflicting applications keep almost all their bytes
// on relaxed semantics — the conflicts live in tiny metadata files.
TEST(TuningIntegration, ConflictingAppsAreMostlyRelaxable) {
  for (const char* name : {"LAMMPS-ADIOS", "LAMMPS-NetCDF", "FLASH-fbs",
                           "MACSio", "NWChem"}) {
    const auto* info = apps::find_app(name);
    ASSERT_NE(info, nullptr);
    apps::AppConfig cfg;
    cfg.nranks = 16;
    cfg.ranks_per_node = 4;
    cfg.bytes_per_rank = 64 * 1024;
    const auto bundle = apps::run_app(*info, cfg);
    const auto log = reconstruct_accesses(bundle);
    const auto rep = per_file_tuning(log);
    SCOPED_TRACE(name);
    EXPECT_GT(rep.relaxed_fraction(), 0.9);
  }
}

// Integration: a conflict-free app is fully eventual-safe per file.
TEST(TuningIntegration, ConflictFreeAppFullyEventual) {
  const auto* info = apps::find_app("VPIC-IO");
  apps::AppConfig cfg;
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  const auto bundle = apps::run_app(*info, cfg);
  const auto rep = per_file_tuning(reconstruct_accesses(bundle));
  EXPECT_DOUBLE_EQ(rep.eventual_fraction(), 1.0);
}

}  // namespace
}  // namespace pfsem::core
