// Unit tests for the run-report module (function counters, size
// histograms, per-file summaries).

#include <gtest/gtest.h>

#include <sstream>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/report.hpp"

namespace pfsem::core {
namespace {

TEST(SizeHistogram, BucketsByPowerOfTwo) {
  SizeHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4096);
  h.add(8191);
  h.add(8192);
  h.add(1ull << 40);  // lands in the open-ended top bucket
  EXPECT_EQ(h.counts[0], 2u);   // 0 and 1
  EXPECT_EQ(h.counts[1], 2u);   // 2 and 3
  EXPECT_EQ(h.counts[12], 2u);  // [4096, 8192)
  EXPECT_EQ(h.counts[13], 1u);  // [8192, 16384)
  EXPECT_EQ(h.counts[SizeHistogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.total(), 8u);
}

TEST(SizeHistogram, Labels) {
  EXPECT_EQ(SizeHistogram::bucket_label(0), "0B-2B");
  EXPECT_EQ(SizeHistogram::bucket_label(12), "4KiB-8KiB");
  EXPECT_EQ(SizeHistogram::bucket_label(20), "1MiB-2MiB");
  EXPECT_EQ(SizeHistogram::bucket_label(SizeHistogram::kBuckets - 1),
            ">=2GiB");
}

TEST(RunReport, CountsFromRealRun) {
  apps::AppConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 4;
  const auto bundle = apps::run_app(*apps::find_app("LAMMPS-NetCDF"), cfg);
  const auto log = reconstruct_accesses(bundle);
  const auto conflicts = detect_conflicts(log);
  const auto rep = build_report(bundle, log, conflicts);

  EXPECT_EQ(rep.nranks, 8);
  EXPECT_EQ(rep.records, bundle.records.size());
  EXPECT_GT(rep.function_counts.at(trace::Func::pwrite), 0u);
  EXPECT_GT(rep.function_counts.at(trace::Func::nc_put_vara), 0u);
  EXPECT_GT(rep.layer_counts.at(trace::Layer::Posix), 0u);
  EXPECT_GT(rep.layer_counts.at(trace::Layer::NetCdf), 0u);
  EXPECT_GT(rep.write_sizes.total(), 0u);
  EXPECT_GT(rep.span, 0);

  // The dump file must show writes and its session conflict count.
  const auto& dump = rep.files.at("dump.nc");
  EXPECT_GT(dump.writes, 0u);
  EXPECT_GT(dump.write_bytes, 0u);
  EXPECT_GT(dump.session_conflicts, 0u);
  EXPECT_GT(dump.commit_conflicts, 0u);
}

TEST(RunReport, PrintsWithoutChoking) {
  apps::AppConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 4;
  const auto bundle = apps::run_app(*apps::find_app("GTC"), cfg);
  const auto log = reconstruct_accesses(bundle);
  const auto rep = build_report(bundle, log, detect_conflicts(log));
  std::ostringstream os;
  print_report(rep, os);
  const auto text = os.str();
  EXPECT_NE(text.find("run report"), std::string::npos);
  EXPECT_NE(text.find("function counters"), std::string::npos);
  EXPECT_NE(text.find("request sizes"), std::string::npos);
  EXPECT_NE(text.find("per-file summary"), std::string::npos);
  EXPECT_NE(text.find("history.out"), std::string::npos);
}

TEST(RunReport, EmptyTraceSafe) {
  trace::TraceBundle bundle;
  bundle.nranks = 4;
  AccessLog log;
  log.nranks = 4;
  ConflictReport conflicts;
  const auto rep = build_report(bundle, log, conflicts);
  EXPECT_EQ(rep.records, 0u);
  EXPECT_EQ(rep.span, 0);
  std::ostringstream os;
  print_report(rep, os);
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace pfsem::core
