// Unit tests for the discrete-event engine, coroutine tasks, wait queues,
// and the clock-skew model.

#include <gtest/gtest.h>

#include <vector>

#include "pfsem/sim/clock.hpp"
#include "pfsem/sim/engine.hpp"
#include "pfsem/sim/wait_queue.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::sim {
namespace {

TEST(Engine, DelaysAdvanceTimeInOrder) {
  Engine e;
  std::vector<std::pair<int, SimTime>> events;
  auto proc = [](Engine* eng, int id, SimDuration d,
                 std::vector<std::pair<int, SimTime>>* out) -> Task<void> {
    co_await eng->delay(d);
    out->emplace_back(id, eng->now());
  };
  e.spawn(proc(&e, 1, 300, &events));
  e.spawn(proc(&e, 2, 100, &events));
  e.spawn(proc(&e, 3, 200, &events));
  e.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], (std::pair<int, SimTime>{2, 100}));
  EXPECT_EQ(events[1], (std::pair<int, SimTime>{3, 200}));
  EXPECT_EQ(events[2], (std::pair<int, SimTime>{1, 300}));
  EXPECT_EQ(e.live_roots(), 0);
}

TEST(Engine, ZeroDelayIsFairFifo) {
  Engine e;
  std::vector<int> order;
  auto proc = [](Engine* eng, int id, std::vector<int>* out) -> Task<void> {
    co_await eng->delay(0);
    out->push_back(id);
    co_await eng->delay(0);
    out->push_back(id + 10);
  };
  e.spawn(proc(&e, 1, &order));
  e.spawn(proc(&e, 2, &order));
  e.run();
  // Interleaved round-robin at the same timestamp, insertion order stable.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 11, 12}));
  EXPECT_EQ(e.now(), 0);
}

TEST(Engine, NestedTasksTransferSynchronously) {
  Engine e;
  std::vector<int> trail;
  auto inner = [](Engine* eng, std::vector<int>* out) -> Task<int> {
    out->push_back(2);
    co_await eng->delay(50);
    out->push_back(3);
    co_return 42;
  };
  auto outer = [inner](Engine* eng, std::vector<int>* out) -> Task<void> {
    out->push_back(1);
    const int v = co_await inner(eng, out);
    out->push_back(v);
  };
  e.spawn(outer(&e, &trail));
  e.run();
  EXPECT_EQ(trail, (std::vector<int>{1, 2, 3, 42}));
  EXPECT_EQ(e.now(), 50);
}

TEST(Engine, ExceptionInRootPropagatesFromRun) {
  Engine e;
  auto bad = [](Engine* eng) -> Task<void> {
    co_await eng->delay(10);
    throw Error("simulated failure");
  };
  e.spawn(bad(&e));
  EXPECT_THROW(e.run(), Error);
}

TEST(Engine, ExceptionPropagatesThroughNestedAwait) {
  Engine e;
  bool caught = false;
  auto inner = [](Engine* eng) -> Task<void> {
    co_await eng->delay(1);
    throw Error("inner boom");
  };
  auto outer = [inner](Engine* eng, bool* flag) -> Task<void> {
    try {
      co_await inner(eng);
    } catch (const Error&) {
      *flag = true;
    }
  };
  e.spawn(outer(&e, &caught));
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, DeadlockDetected) {
  Engine e;
  WaitQueue wq(e);
  auto stuck = [](WaitQueue* q) -> Task<void> { co_await q->wait(); };
  e.spawn(stuck(&wq));
  EXPECT_THROW(e.run(), Error);  // queue drains with a live blocked root
}

TEST(Engine, SchedulingInPastRejected) {
  Engine e;
  auto proc = [](Engine* eng) -> Task<void> { co_await eng->delay(100); };
  e.spawn(proc(&e));
  e.run();
  EXPECT_EQ(e.now(), 100);
  EXPECT_THROW(e.schedule(50, std::noop_coroutine()), Error);
}

TEST(Engine, EventCountTracksDispatches) {
  Engine e;
  auto proc = [](Engine* eng) -> Task<void> {
    for (int i = 0; i < 5; ++i) co_await eng->delay(1);
  };
  e.spawn(proc(&e));
  e.run();
  // 1 spawn deferral + 5 delays.
  EXPECT_EQ(e.events_dispatched(), 6u);
}

TEST(WaitQueue, WakeAllReleasesEveryoneAtCurrentTime) {
  Engine e;
  WaitQueue wq(e);
  std::vector<std::pair<int, SimTime>> woken;
  auto waiter = [](Engine* eng, WaitQueue* q, int id,
                   std::vector<std::pair<int, SimTime>>* out) -> Task<void> {
    co_await q->wait();
    out->emplace_back(id, eng->now());
  };
  auto waker = [](Engine* eng, WaitQueue* q) -> Task<void> {
    co_await eng->delay(500);
    q->wake_all();
  };
  e.spawn(waiter(&e, &wq, 1, &woken));
  e.spawn(waiter(&e, &wq, 2, &woken));
  e.spawn(waker(&e, &wq));
  e.run();
  ASSERT_EQ(woken.size(), 2u);
  EXPECT_EQ(woken[0], (std::pair<int, SimTime>{1, 500}));  // FIFO
  EXPECT_EQ(woken[1], (std::pair<int, SimTime>{2, 500}));
}

TEST(WaitQueue, WakeOneReleasesFifo) {
  Engine e;
  WaitQueue wq(e);
  std::vector<int> order;
  auto waiter = [](WaitQueue* q, int id, std::vector<int>* out) -> Task<void> {
    co_await q->wait();
    out->push_back(id);
  };
  auto waker = [](Engine* eng, WaitQueue* q) -> Task<void> {
    co_await eng->delay(10);
    q->wake_one();
    co_await eng->delay(10);
    q->wake_one();
  };
  e.spawn(waiter(&wq, 7, &order));
  e.spawn(waiter(&wq, 8, &order));
  e.spawn(waker(&e, &wq));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{7, 8}));
}

TEST(Clock, SkewAndDriftApplied) {
  ClockModel c{.offset = 1000, .drift_ppb = 1e6};  // 0.1% drift
  EXPECT_EQ(c.local_time(0), 1000);
  // 1 second of global time drifts by 1 ms at 1e6 ppb.
  EXPECT_EQ(c.local_time(1'000'000'000), 1'000'000'000 + 1000 + 1'000'000);
}

TEST(Clock, SkewedClockFamilyDeterministicAndBounded) {
  const auto a = make_skewed_clocks(16, 20'000, 100.0, 99);
  const auto b = make_skewed_clocks(16, 20'000, 100.0, 99);
  ASSERT_EQ(a.size(), 16u);
  EXPECT_EQ(a[0].offset, 0) << "rank 0 is the reference clock";
  EXPECT_EQ(a[0].drift_ppb, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_LE(std::abs(a[i].offset), 20'000);
    EXPECT_LE(std::abs(a[i].drift_ppb), 100.0);
  }
}

TEST(Clock, LocalOrderPreservedUnderSkew) {
  // A rank's own timestamps must stay monotone regardless of skew/drift —
  // the property the offset tracker relies on.
  const auto clocks = make_skewed_clocks(8, 20'000, 500.0, 1234);
  for (const auto& c : clocks) {
    SimTime prev = c.local_time(0);
    for (SimTime t = 1000; t <= 1'000'000; t += 1000) {
      const SimTime cur = c.local_time(t);
      EXPECT_GT(cur, prev);
      prev = cur;
    }
  }
}


TEST(EngineStress, ThousandsOfInterleavedTasksStayOrdered) {
  Engine e;
  std::vector<SimTime> completions;
  completions.reserve(2000);
  auto proc = [](Engine* eng, int id, std::vector<SimTime>* out) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await eng->delay(100 + (id * 37 + i * 11) % 500);
    }
    out->push_back(eng->now());
  };
  for (int id = 0; id < 2000; ++id) e.spawn(proc(&e, id, &completions));
  e.run();
  ASSERT_EQ(completions.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(completions.begin(), completions.end()))
      << "root completions must be observed in simulated-time order";
  EXPECT_EQ(e.live_roots(), 0);
}

TEST(EngineStress, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    std::vector<int> order;
    auto proc = [](Engine* eng, int id, std::vector<int>* out) -> Task<void> {
      co_await eng->delay((id * 7919) % 1000);
      out->push_back(id);
      co_await eng->delay((id * 104729) % 1000);
      out->push_back(-id);
    };
    for (int id = 0; id < 500; ++id) e.spawn(proc(&e, id, &order));
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pfsem::sim
