// Multi-server PfsCluster: the differential oracle (fault-free runs are
// byte-identical to single-server Pfs for any topology), server fault
// domains (MDS crash + standby failover, OST crash hole-punching +
// restart, no-replica loud failure), split-brain visibility under
// network partitions, and topology validation.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/report.hpp"
#include "pfsem/fault/injector.hpp"
#include "pfsem/fault/plan.hpp"
#include "pfsem/iolib/posix_io.hpp"
#include "pfsem/trace/serialize.hpp"
#include "pfsem/util/error.hpp"
#include "pfsem/vfs/cluster.hpp"
#include "pfsem/vfs/pfs.hpp"

namespace pfsem {
namespace {

using fault::FaultPlan;
using trace::kCreate;
using trace::kRdOnly;
using trace::kRdWr;
using vfs::ClusterConfig;
using vfs::PfsCluster;

apps::AppConfig small_cfg(int ranks = 8) {
  apps::AppConfig cfg;
  cfg.nranks = ranks;
  cfg.ranks_per_node = std::max(1, ranks / 8);
  return cfg;
}

ClusterConfig topo(int mds, int ost, Offset stripe) {
  ClusterConfig c;
  c.mds_count = mds;
  c.ost_count = ost;
  c.stripe = stripe;
  return c;
}

std::string compact_bytes(const trace::TraceBundle& bundle) {
  std::ostringstream os;
  trace::write_compact(bundle, os);
  return os.str();
}

std::string report_text(const trace::TraceBundle& bundle, int threads = 1) {
  const auto log = core::reconstruct_accesses(bundle);
  const auto pairs = core::detect_file_overlaps(log, {}, threads);
  const auto conflicts = core::detect_conflicts(log, pairs, {.threads = threads});
  const auto rep = core::build_report(bundle, log, conflicts, threads);
  std::ostringstream os;
  core::print_report(rep, os);
  return os.str();
}

vfs::VersionTag tag_at(const std::vector<vfs::ReadExtent>& extents,
                       Offset at) {
  for (const auto& e : extents) {
    if (e.ext.contains(at)) return e.version;
  }
  return 0;
}

// --- the differential oracle ----------------------------------------------
//
// With no faults, topology is invisible: every registered application's
// trace bundle AND analysis report must be byte-identical between
// single-server Pfs and PfsCluster at every (mds, ost, stripe). Bundle
// identity makes every downstream analysis (advise, tune, remedy)
// identical by construction; the report text check catches any drift in
// the report path itself.

TEST(ClusterOracle, EveryAppByteIdenticalAcrossTopologies) {
  const ClusterConfig topologies[] = {
      topo(1, 1, 64u << 10), topo(2, 4, 64u << 10), topo(4, 8, 1u << 20)};
  for (const auto& info : apps::registry()) {
    const auto base = apps::run_app(info, small_cfg());
    const std::string base_bytes = compact_bytes(base);
    const std::string base_report = report_text(base);
    for (const auto& c : topologies) {
      const auto bundle = apps::run_app_cluster(info, small_cfg(), c);
      ASSERT_EQ(compact_bytes(bundle), base_bytes)
          << info.name << " mds=" << c.mds_count << " ost=" << c.ost_count
          << " stripe=" << c.stripe;
      ASSERT_EQ(report_text(bundle), base_report)
          << info.name << " mds=" << c.mds_count << " ost=" << c.ost_count;
    }
  }
}

// --- MDS crash + standby failover ------------------------------------------

TEST(ClusterFailover, MdsCrashPromotesStandbyAndRunCompletes) {
  apps::FaultSetup setup;
  setup.plan = FaultPlan::parse("crash_mds:id=0,t=1ms");
  setup.seed = 7;
  fault::FaultStats stats;
  const auto* info = apps::find_app("FLASH-fbs");
  ASSERT_NE(info, nullptr);
  const auto bundle = apps::run_app_cluster(*info, small_cfg(),
                                            topo(2, 4, 64u << 10), {}, &setup,
                                            &stats);
  EXPECT_GT(bundle.records.size(), 0u) << "the run must complete degraded";
  EXPECT_EQ(stats.server_crashes, 1u);
  EXPECT_EQ(stats.crashed_servers, std::vector<std::string>{"mds0"});
  EXPECT_EQ(stats.mds_failovers, 1u) << "exactly one standby promotion";
  EXPECT_GE(stats.failover_redirects, 1u)
      << "the first op on the dead primary must redirect";
  EXPECT_EQ(stats.giveups, 0u) << "with a standby nothing fails permanently";

  // The degraded report names the dead server and the surviving semantics.
  std::ostringstream os;
  core::print_degraded(apps::degraded_summary(stats), os);
  EXPECT_NE(os.str().find("mds0"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("surviving semantics"), std::string::npos)
      << os.str();
}

TEST(ClusterFailover, NoReplicaRemainingFailsLoudly) {
  apps::AppConfig cfg;
  cfg.nranks = 1;
  cfg.ranks_per_node = 1;
  ClusterConfig ccfg = topo(1, 1, 64u << 10);
  ccfg.mds_replicas = 1;  // no standby: a crash leaves the shard headless
  apps::Harness h(cfg, ccfg);
  h.set_faults(FaultPlan::parse("crash_mds:id=0,t=1ms"), /*fault_seed=*/7);
  iolib::PosixIo posix(h.ctx());
  try {
    h.run([&](Rank) -> sim::Task<void> {
      co_await h.engine().delay(2'000'000);  // past the crash
      co_await posix.open(0, "f", kCreate | kRdWr);
    });
    FAIL() << "metadata op on a headless shard must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no server replica remains"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("EHOSTDOWN"), std::string::npos)
        << e.what();
  }
}

// --- OST crash: degraded reads punch holes, restart heals -------------------

TEST(ClusterDegraded, OstCrashPunchesHolesAndRestartHeals) {
  constexpr Offset kStripe = 64u << 10;
  PfsCluster fs(topo(1, 2, kStripe));
  const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
  const auto wr = fs.pwrite(0, w, 0, 4 * kStripe, 10);  // blocks 0..3
  (void)fs.close(0, w, 20);

  // OST 1 dies: blocks 1 and 3 (odd blocks) become unreadable.
  fs.apply_server_event({fault::ServerKind::Ost, 1, 0, /*restart=*/false}, 30);
  const int rd = fs.open(1, "f", kRdOnly, 40).fd;
  const auto degraded = fs.pread(1, rd, 0, 4 * kStripe, 50);
  EXPECT_EQ(tag_at(degraded.extents, 0), wr.version);
  EXPECT_EQ(tag_at(degraded.extents, kStripe), 0u) << "hole over dead OST";
  EXPECT_EQ(tag_at(degraded.extents, 2 * kStripe), wr.version);
  EXPECT_EQ(tag_at(degraded.extents, 3 * kStripe), 0u);

  // Writes keep working while the OST is down (client write-behind).
  const int w2 = fs.open(0, "f", kRdWr, 60).fd;
  const auto wr2 = fs.pwrite(0, w2, 4 * kStripe, kStripe, 70);
  EXPECT_EQ(wr2.err, 0);
  (void)fs.close(0, w2, 80);

  // Restart: everything is readable again, including the degraded-window
  // write that replayed onto the returned server.
  fs.apply_server_event({fault::ServerKind::Ost, 1, 0, /*restart=*/true}, 90);
  const auto healed = fs.pread(1, rd, 0, 5 * kStripe, 100);
  EXPECT_EQ(tag_at(healed.extents, kStripe), wr.version);
  EXPECT_EQ(tag_at(healed.extents, 3 * kStripe), wr.version);
  EXPECT_EQ(tag_at(healed.extents, 4 * kStripe), wr2.version);
}

// --- network partitions: deterministic split-brain --------------------------
//
// A cross-partition write is invisible until the partition heals — on
// BOTH backends, because the deferral lives in the shared resolve core.

TEST(ClusterPartition, CrossPartitionWriteDeferredUntilHealOnBothBackends) {
  const auto plan = FaultPlan::parse("partition:ranks=0-0,from=0,to=10ms");
  auto script = [&](vfs::FileSystem& fs) {
    fault::Injector inj(plan, /*seed=*/1, /*ranks_per_node=*/1);
    fs.set_fault_injector(&inj);
    const int w = fs.open(0, "f", kCreate | kRdWr, 0).fd;
    const auto wr = fs.pwrite(0, w, 0, 100, 1'000'000);
    const int rd = fs.open(1, "f", kRdOnly, 2'000'000).fd;
    // Before the heal the reader is on the other side: stale view.
    const auto before = fs.pread(1, rd, 0, 100, 5'000'000);
    EXPECT_EQ(tag_at(before.extents, 0), 0u) << "split-brain staleness";
    // After the heal the write becomes visible.
    const auto after = fs.pread(1, rd, 0, 100, 12'000'000);
    EXPECT_EQ(tag_at(after.extents, 0), wr.version);
    // The writer always sees its own write (same side of every cut).
    const auto own = fs.pread(0, w, 0, 100, 5'000'000);
    EXPECT_EQ(tag_at(own.extents, 0), wr.version);
  };
  vfs::Pfs single;
  script(single);
  PfsCluster cluster(topo(2, 4, 64u << 10));
  script(cluster);
}

// --- routing and accounting --------------------------------------------------

TEST(ClusterRouting, ShardsAreDeterministicAndAccountingIsConserved) {
  PfsCluster fs(topo(4, 4, 64u << 10));
  const PfsCluster other(topo(4, 4, 64u << 10));
  std::uint64_t written = 0;
  for (int i = 0; i < 32; ++i) {
    const std::string path = "file" + std::to_string(i);
    const int shard = fs.shard_of(path);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    EXPECT_EQ(shard, other.shard_of(path)) << "hash must be instance-free";
    const int fd = fs.open(0, path, kCreate | kRdWr, i * 100).fd;
    (void)fs.pwrite(0, fd, 0, 8192, i * 100 + 10);
    written += 8192;
    (void)fs.close(0, fd, i * 100 + 20);
  }
  std::uint64_t shard_ops = 0;
  for (const auto& m : fs.mds_states()) shard_ops += m.meta_ops;
  EXPECT_EQ(shard_ops, fs.lock_stats().meta_ops)
      << "per-shard routing must conserve the aggregate meta-op count";
  std::uint64_t ost_bytes = 0;
  for (const std::uint64_t b : fs.ost_stats().bytes) ost_bytes += b;
  EXPECT_EQ(ost_bytes, written) << "striping must conserve transferred bytes";
}

// --- topology validation -----------------------------------------------------

TEST(ClusterConfigValidation, RejectsBadTopology) {
  EXPECT_THROW(PfsCluster(topo(0, 1, 64u << 10)), Error);
  EXPECT_THROW(PfsCluster(topo(1, 0, 64u << 10)), Error);
  EXPECT_THROW(PfsCluster(topo(1, 1, 0)), Error);
  EXPECT_THROW(PfsCluster(topo(1, 1, 3000)), Error);  // not a power of two
  ClusterConfig c = topo(1, 1, 64u << 10);
  c.mds_replicas = 0;
  EXPECT_THROW(PfsCluster{c}, Error);
}

TEST(ClusterConfigValidation, HarnessRejectsServerEventsOutOfRange) {
  apps::Harness h(small_cfg(1), topo(2, 2, 64u << 10));
  EXPECT_THROW(h.set_faults(FaultPlan::parse("crash_mds:id=5,t=1ms"), 1),
               Error);
  EXPECT_THROW(h.set_faults(FaultPlan::parse("crash_ost:id=2,t=1ms"), 1),
               Error);

  apps::Harness single(small_cfg(1), vfs::PfsConfig{});
  EXPECT_THROW(single.set_faults(FaultPlan::parse("crash_mds:id=0,t=1ms"), 1),
               Error);
}

}  // namespace
}  // namespace pfsem
