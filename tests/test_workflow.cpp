// Integration tests for the multi-application workflow extension
// (Section 7 future work): data and metadata semantics requirements of
// simulation->analysis pipelines coupled only through the PFS.

#include <gtest/gtest.h>

#include "pfsem/apps/programs.hpp"
#include "pfsem/core/advisor.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/metadata_conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"

namespace pfsem {
namespace {

struct WorkflowRun {
  core::ConflictReport data;
  core::MetadataConflictReport meta;
  core::Advice advice;
};

WorkflowRun run_workflow_case(bool pipelined, int nranks = 16) {
  apps::AppConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 4;
  cfg.bytes_per_rank = 64 * 1024;
  apps::Harness h(cfg);
  apps::run_workflow(h, pipelined);
  const auto bundle = h.finish();
  WorkflowRun out;
  out.data = core::detect_conflicts(core::reconstruct_accesses(
      bundle, {.validate_against_ground_truth = true}));
  core::HappensBefore hb(bundle.comm, cfg.nranks);
  out.meta = core::detect_metadata_dependencies(bundle, &hb);
  out.advice = core::advise(out.data);
  return out;
}

TEST(Workflow, PipelinedDataIsSessionSafe) {
  const auto r = run_workflow_case(true);
  EXPECT_FALSE(r.data.session.raw_d)
      << "close->open chains satisfy the session condition";
  EXPECT_FALSE(r.data.session.waw_d);
  EXPECT_NE(r.advice.weakest, vfs::ConsistencyModel::Strong);
}

TEST(Workflow, PipelinedNeedsVisibleMetadata) {
  const auto r = run_workflow_case(true);
  EXPECT_GT(r.meta.cross_process, 0u) << "marker files couple the jobs";
  EXPECT_GT(r.meta.hard_cross_process, 0u)
      << "consumers open snapshots another job created";
  EXPECT_GT(r.meta.unsynchronized, 0u)
      << "no MPI channel orders the two jobs";
  EXPECT_FALSE(r.meta.lazy_metadata_safe());
}

TEST(Workflow, EagerPreOpenNeedsCommitSemantics) {
  const auto r = run_workflow_case(false);
  EXPECT_TRUE(r.data.session.raw_d)
      << "stale consumer sessions miss the producers' writes";
  EXPECT_FALSE(r.data.commit.raw_d)
      << "the producers' closes are commits before the reads";
  EXPECT_EQ(r.advice.weakest, vfs::ConsistencyModel::Commit);
}

TEST(Workflow, ShapeStableAcrossScales) {
  const auto small = run_workflow_case(true, 8);
  const auto large = run_workflow_case(true, 32);
  EXPECT_EQ(small.data.session.raw_d, large.data.session.raw_d);
  EXPECT_EQ(small.meta.lazy_metadata_safe(), large.meta.lazy_metadata_safe());
}

}  // namespace
}  // namespace pfsem
