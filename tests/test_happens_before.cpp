// Unit tests for happens-before reconstruction over matched communication
// events (Section 5.2 validation machinery).

#include <gtest/gtest.h>

#include <algorithm>

#include "pfsem/core/happens_before.hpp"

namespace pfsem::core {
namespace {

using trace::CollectiveEvent;
using trace::CollectiveKind;
using trace::CommLog;
using trace::P2PEvent;

CollectiveEvent collective(CollectiveKind kind, Rank root,
                           std::vector<std::array<SimTime, 2>> windows) {
  CollectiveEvent ev;
  ev.kind = kind;
  ev.root = root;
  for (std::size_t r = 0; r < windows.size(); ++r) {
    ev.arrivals.push_back(
        {static_cast<Rank>(r), windows[r][0], windows[r][1]});
  }
  return ev;
}

TEST(HappensBefore, SameRankIsProgramOrder) {
  CommLog log;
  HappensBefore hb(log, 4);
  EXPECT_TRUE(hb.ordered(2, 100, 2, 200));
  EXPECT_TRUE(hb.ordered(2, 100, 2, 100));
  EXPECT_FALSE(hb.ordered(2, 200, 2, 100));
}

TEST(HappensBefore, NoCommunicationNoOrder) {
  CommLog log;
  HappensBefore hb(log, 4);
  EXPECT_FALSE(hb.ordered(0, 100, 1, 10'000));
  EXPECT_FALSE(hb.ordered(1, 100, 0, 10'000));
}

TEST(HappensBefore, BarrierOrdersAcrossIt) {
  CommLog log;
  log.collectives.push_back(collective(
      CollectiveKind::Barrier, kNoRank, {{500, 600}, {510, 600}, {520, 605}}));
  HappensBefore hb(log, 3);
  // Before-barrier on 0 precedes after-barrier on 1.
  EXPECT_TRUE(hb.ordered(0, 100, 1, 700));
  EXPECT_TRUE(hb.ordered(2, 100, 0, 700));
  // Both on the same side of the barrier: unordered.
  EXPECT_FALSE(hb.ordered(0, 100, 1, 200));
  EXPECT_FALSE(hb.ordered(0, 700, 1, 800));
  // The op after the barrier on 0 does not precede ops before it on 1.
  EXPECT_FALSE(hb.ordered(0, 700, 1, 100));
}

TEST(HappensBefore, SendRecvOrdersOneDirection) {
  CommLog log;
  log.p2p.push_back(P2PEvent{0, 1, 0, 64, 500, 550, 520, 560});
  HappensBefore hb(log, 2);
  EXPECT_TRUE(hb.ordered(0, 100, 1, 600)) << "pre-send precedes post-recv";
  EXPECT_FALSE(hb.ordered(1, 100, 0, 600)) << "no edge receiver->sender ops";
  EXPECT_FALSE(hb.ordered(0, 520, 1, 540))
      << "op after send start is not released by that send";
}

TEST(HappensBefore, TransitiveChainThroughIntermediate) {
  // 0 -> 1 (recv by 600), then 1 -> 2 (send at 700): op on 0 before 500
  // precedes op on 2 after 800.
  CommLog log;
  log.p2p.push_back(P2PEvent{0, 1, 0, 8, 500, 550, 520, 560});
  log.p2p.push_back(P2PEvent{1, 2, 0, 8, 700, 750, 720, 760});
  HappensBefore hb(log, 3);
  EXPECT_TRUE(hb.ordered(0, 100, 2, 800));
  EXPECT_FALSE(hb.ordered(2, 100, 0, 800));
}

TEST(HappensBefore, ChainBrokenIfIntermediateSendsFirst) {
  // 1 sends to 2 *before* receiving from 0: no transitivity.
  CommLog log;
  log.p2p.push_back(P2PEvent{1, 2, 0, 8, 100, 150, 120, 160});
  log.p2p.push_back(P2PEvent{0, 1, 0, 8, 500, 550, 520, 560});
  HappensBefore hb(log, 3);
  EXPECT_FALSE(hb.ordered(0, 50, 2, 800));
}

TEST(HappensBefore, BcastOrdersRootToLeaves) {
  CommLog log;
  log.collectives.push_back(collective(CollectiveKind::Bcast, 0,
                                       {{500, 600}, {510, 620}, {490, 610}}));
  HappensBefore hb(log, 3);
  EXPECT_TRUE(hb.ordered(0, 100, 1, 700));
  EXPECT_TRUE(hb.ordered(0, 100, 2, 700));
  EXPECT_FALSE(hb.ordered(1, 100, 0, 700)) << "no leaf->root edge in bcast";
  EXPECT_FALSE(hb.ordered(1, 100, 2, 700)) << "no leaf->leaf edge in bcast";
}

TEST(HappensBefore, GatherOrdersLeavesToRoot) {
  CommLog log;
  log.collectives.push_back(collective(CollectiveKind::Gather, 0,
                                       {{500, 600}, {510, 620}, {490, 610}}));
  HappensBefore hb(log, 3);
  EXPECT_TRUE(hb.ordered(1, 100, 0, 700));
  EXPECT_TRUE(hb.ordered(2, 100, 0, 700));
  EXPECT_FALSE(hb.ordered(0, 100, 1, 700)) << "no root->leaf edge in gather";
}

TEST(HappensBefore, AllreduceOrdersEveryoneBothWays) {
  CommLog log;
  log.collectives.push_back(collective(CollectiveKind::Allreduce, kNoRank,
                                       {{500, 600}, {510, 620}, {490, 610}}));
  HappensBefore hb(log, 3);
  for (Rank a = 0; a < 3; ++a) {
    for (Rank b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_TRUE(hb.ordered(a, 100, b, 700)) << a << "->" << b;
    }
  }
}

TEST(HappensBefore, SuccessiveBarriersAccumulate) {
  CommLog log;
  log.collectives.push_back(
      collective(CollectiveKind::Barrier, kNoRank, {{100, 150}, {110, 150}}));
  log.collectives.push_back(
      collective(CollectiveKind::Barrier, kNoRank, {{300, 350}, {310, 350}}));
  HappensBefore hb(log, 2);
  EXPECT_TRUE(hb.ordered(0, 50, 1, 200));
  EXPECT_TRUE(hb.ordered(0, 200, 1, 400)) << "second barrier orders the gap";
  EXPECT_FALSE(hb.ordered(0, 400, 1, 200));
}

TEST(RaceCheckIntegration, SynchronizedAndRacyCounted) {
  // Conflict pair ordered by a barrier vs pair with no synchronization.
  CommLog log;
  log.collectives.push_back(
      collective(CollectiveKind::Barrier, kNoRank, {{500, 550}, {505, 550}}));
  HappensBefore hb(log, 2);

  ConflictReport report;
  Conflict synced;
  synced.first.rank = 0;
  synced.first.t = 100;
  synced.second.rank = 1;
  synced.second.t = 600;
  report.conflicts.push_back(synced);
  Conflict racy;
  racy.first.rank = 0;
  racy.first.t = 600;   // after the barrier on 0
  racy.second.rank = 1;
  racy.second.t = 700;  // no sync between those two ops
  report.conflicts.push_back(racy);

  const auto rc = validate_synchronization(report, hb);
  EXPECT_EQ(rc.checked, 2u);
  EXPECT_EQ(rc.synchronized, 1u);
  EXPECT_EQ(rc.racy, 1u);
}

}  // namespace
}  // namespace pfsem::core
