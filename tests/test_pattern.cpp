// Unit tests for the pattern classifiers: Figure-1 transition mixes and
// Table-3 high-level / layout classification.

#include <gtest/gtest.h>

#include "pfsem/core/pattern.hpp"

namespace pfsem::core {
namespace {

Access acc(SimTime t, Rank r, Offset begin, Offset len,
           AccessType type = AccessType::Write) {
  Access a;
  a.t = t;
  a.rank = r;
  a.ext = {begin, begin + len};
  a.type = type;
  return a;
}

AccessLog make_log(std::vector<Access> accesses, int nranks) {
  std::sort(accesses.begin(), accesses.end(),
            [](const Access& a, const Access& b) { return a.t < b.t; });
  AccessLog log;
  log.nranks = nranks;
  FileLog fl;
  fl.accesses = std::move(accesses);
  log.put("f", std::move(fl));
  return log;
}

// --- transition mixes (Figure 1) ------------------------------------------

TEST(Transitions, LocalAllConsecutive) {
  auto log = make_log({acc(0, 0, 0, 100), acc(10, 0, 100, 100),
                       acc(20, 0, 200, 100)},
                      1);
  const auto mix = local_pattern(log);
  EXPECT_EQ(mix.consecutive, 2u);
  EXPECT_EQ(mix.monotonic, 0u);
  EXPECT_EQ(mix.random, 0u);
  EXPECT_DOUBLE_EQ(mix.frac_consecutive(), 1.0);
}

TEST(Transitions, MonotonicGapsCounted) {
  auto log = make_log({acc(0, 0, 0, 10), acc(10, 0, 50, 10),
                       acc(20, 0, 100, 10)},
                      1);
  const auto mix = local_pattern(log);
  EXPECT_EQ(mix.monotonic, 2u);
}

TEST(Transitions, BackwardJumpIsRandom) {
  auto log = make_log({acc(0, 0, 100, 10), acc(10, 0, 0, 10)}, 1);
  EXPECT_EQ(local_pattern(log).random, 1u);
}

TEST(Transitions, GlobalInterleavingLooksRandomLocalDoesNot) {
  // Two ranks each reading their half consecutively, interleaved in time:
  // locally consecutive, globally ping-ponging (the LBANN effect).
  std::vector<Access> v;
  for (int i = 0; i < 10; ++i) {
    v.push_back(acc(i * 20, 0, static_cast<Offset>(i) * 100, 100,
                    AccessType::Read));
    v.push_back(acc(i * 20 + 10, 1, 5000 + static_cast<Offset>(i) * 100, 100,
                    AccessType::Read));
  }
  auto log = make_log(std::move(v), 2);
  const auto local = local_pattern(log);
  const auto global = global_pattern(log);
  EXPECT_DOUBLE_EQ(local.frac_consecutive(), 1.0);
  EXPECT_GT(global.frac_random(), 0.4);
}

TEST(Transitions, MixAccumulates) {
  TransitionMix a{.consecutive = 1, .monotonic = 2, .random = 3};
  TransitionMix b{.consecutive = 10, .monotonic = 20, .random = 30};
  a += b;
  EXPECT_EQ(a.total(), 66u);
  EXPECT_EQ(a.consecutive, 11u);
}

TEST(Transitions, EmptyMixSafeFractions) {
  TransitionMix m;
  EXPECT_DOUBLE_EQ(m.frac_consecutive(), 0.0);
  EXPECT_DOUBLE_EQ(m.frac_random(), 0.0);
}

// --- file layout (Table 3) -------------------------------------------------

TEST(Layout, SingleWriterConsecutive) {
  auto log = make_log({acc(0, 0, 0, 8192), acc(10, 0, 8192, 8192)}, 4);
  EXPECT_EQ(classify_file_layout(log.at("f")), FileLayout::Consecutive);
}

TEST(Layout, SmallGapsToleratedAsConsecutive) {
  // 512-byte object-header gaps between 8K writes (the ENZO shape).
  auto log = make_log({acc(0, 0, 0, 8192), acc(10, 0, 8704, 8192),
                       acc(20, 0, 17408, 8192)},
                      1);
  EXPECT_EQ(classify_file_layout(log.at("f")), FileLayout::Consecutive);
}

TEST(Layout, IdenticalFullReadsConsecutive) {
  // Every rank reads the whole file (LBANN/VASP).
  std::vector<Access> v;
  for (Rank r = 0; r < 4; ++r) {
    for (int i = 0; i < 4; ++i) {
      v.push_back(acc(r * 5 + i * 40, r, static_cast<Offset>(i) * 8192, 8192,
                      AccessType::Read));
    }
  }
  EXPECT_EQ(classify_file_layout(make_log(std::move(v), 4).at("f")),
            FileLayout::Consecutive);
}

TEST(Layout, RankSegmentsAreStrided) {
  // One tiled segment per rank (MILC-parallel shape).
  std::vector<Access> v;
  for (Rank r = 0; r < 8; ++r) {
    v.push_back(acc(r * 10, r, static_cast<Offset>(r) * 65536, 65536));
  }
  EXPECT_EQ(classify_file_layout(make_log(std::move(v), 8).at("f")),
            FileLayout::Strided);
}

TEST(Layout, RepeatedAffineRoundsAreStridedCyclic) {
  // Collective rounds: each round the ranks tile one region (FLASH-fbs).
  std::vector<Access> v;
  SimTime t = 0;
  for (int round = 0; round < 4; ++round) {
    const Offset base = static_cast<Offset>(round) * 1'000'000;
    for (Rank r = 0; r < 6; ++r) {
      v.push_back(acc(t += 10, r, base + static_cast<Offset>(r) * 65536, 65536));
    }
  }
  EXPECT_EQ(classify_file_layout(make_log(std::move(v), 6).at("f")),
            FileLayout::StridedCyclic);
}

TEST(Layout, MonotonicIrregularIsStrided) {
  // Irregular forward-only per-rank progress (FLASH-nofbs shape).
  std::vector<Access> v;
  SimTime t = 0;
  Offset off = 0;
  for (int i = 0; i < 12; ++i) {
    const Rank r = i % 3;
    const Offset len = 4096 + static_cast<Offset>((i * 37) % 5000);
    v.push_back(acc(t += 10, r, off, len));
    off += len + 10'000;
  }
  EXPECT_EQ(classify_file_layout(make_log(std::move(v), 3).at("f")),
            FileLayout::Strided);
}

TEST(Layout, InterleavedOverwritesAreRandom) {
  std::vector<Access> v;
  SimTime t = 0;
  const Offset offs[] = {0, 90000, 4096, 70000, 8192, 10000};
  for (int i = 0; i < 6; ++i) {
    v.push_back(acc(t += 10, i % 2, offs[i], 8192));
  }
  EXPECT_EQ(classify_file_layout(make_log(std::move(v), 2).at("f")),
            FileLayout::Random);
}

TEST(Layout, MetadataFilteredOut) {
  // Big consecutive data writes plus tiny header rewrites at offset 0:
  // the headers must not drag the classification to random.
  std::vector<Access> v;
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) {
    v.push_back(acc(t += 10, 0, 8192 + static_cast<Offset>(i) * 65536, 65536));
    v.push_back(acc(t += 10, 0, 0, 8));
  }
  EXPECT_EQ(classify_file_layout(make_log(std::move(v), 1).at("f")),
            FileLayout::Consecutive);
}

TEST(Layout, DominantTypeWinsOverReadback) {
  // A write-streamed file with one trailer read-back (pF3D) stays
  // consecutive.
  auto log = make_log({acc(0, 0, 0, 65536), acc(10, 0, 65536, 65536),
                       acc(20, 0, 126976, 4096, AccessType::Read)},
                      1);
  EXPECT_EQ(classify_file_layout(log.at("f")), FileLayout::Consecutive);
}

// --- high-level X-Y classification -----------------------------------------

AccessLog multi_file_log(
    const std::vector<std::pair<std::string, std::vector<Access>>>& files,
    int nranks) {
  AccessLog log;
  log.nranks = nranks;
  for (auto [path, accesses] : files) {
    std::sort(accesses.begin(), accesses.end(),
              [](const Access& a, const Access& b) { return a.t < b.t; });
    FileLog fl;
    fl.accesses = std::move(accesses);
    log.put(path, std::move(fl));
  }
  return log;
}

TEST(HighLevel, FilePerProcessIsNN) {
  std::vector<std::pair<std::string, std::vector<Access>>> files;
  for (Rank r = 0; r < 4; ++r) {
    files.push_back({"out." + std::to_string(r),
                     {acc(r * 10, r, 0, 65536), acc(r * 10 + 5, r, 65536, 65536)}});
  }
  const auto hl = classify_high_level(multi_file_log(files, 4), 4);
  EXPECT_EQ(hl.xy, "N-N");
  EXPECT_EQ(hl.layout, FileLayout::Consecutive);
  EXPECT_EQ(hl.io_ranks, 4);
}

TEST(HighLevel, SharedFileAllRanksIsN1) {
  std::vector<Access> v;
  for (Rank r = 0; r < 4; ++r) {
    v.push_back(acc(r * 10, r, static_cast<Offset>(r) * 100000, 65536));
  }
  const auto hl = classify_high_level(make_log(std::move(v), 4), 4);
  EXPECT_EQ(hl.xy, "N-1");
  EXPECT_EQ(hl.layout, FileLayout::Strided);
}

TEST(HighLevel, SubsetWritersSharedFileIsM1) {
  std::vector<Access> v;
  for (Rank r = 0; r < 3; ++r) {  // 3 of 8 ranks
    v.push_back(acc(r * 10, r * 2, static_cast<Offset>(r) * 100000, 65536));
  }
  EXPECT_EQ(classify_high_level(make_log(std::move(v), 8), 8).xy, "M-1");
}

TEST(HighLevel, SingleRankIs11) {
  auto log = make_log({acc(0, 3, 0, 65536), acc(10, 3, 65536, 65536)}, 8);
  EXPECT_EQ(classify_high_level(log, 8).xy, "1-1");
}

TEST(HighLevel, GroupFilesAreNM) {
  // 8 ranks, 2 group files of 4 writers each.
  std::vector<std::pair<std::string, std::vector<Access>>> files(2);
  for (int g = 0; g < 2; ++g) {
    files[static_cast<std::size_t>(g)].first = "group." + std::to_string(g);
    for (int i = 0; i < 4; ++i) {
      const Rank r = g * 4 + i;
      files[static_cast<std::size_t>(g)].second.push_back(
          acc(r * 10, r, static_cast<Offset>(i) * 100000, 65536));
    }
  }
  EXPECT_EQ(classify_high_level(multi_file_log(files, 8), 8).xy, "N-M");
}

TEST(HighLevel, SubsetFilePerWriterIsMM) {
  std::vector<std::pair<std::string, std::vector<Access>>> files;
  for (int w = 0; w < 3; ++w) {  // 3 of 16 ranks, one file each
    files.push_back({"dict." + std::to_string(w * 5),
                     {acc(w * 10, w * 5, 0, 65536)}});
  }
  EXPECT_EQ(classify_high_level(multi_file_log(files, 16), 16).xy, "M-M");
}

TEST(HighLevel, DominantFamilyWinsByBytes) {
  // Big N-1 read family + tiny 1-1 write family: the read family decides.
  std::vector<std::pair<std::string, std::vector<Access>>> files(2);
  files[0].first = "dataset.bin";
  for (Rank r = 0; r < 4; ++r) {
    for (int i = 0; i < 8; ++i) {
      files[0].second.push_back(acc(r * 100 + i, r,
                                    static_cast<Offset>(i) * 65536, 65536,
                                    AccessType::Read));
    }
  }
  files[1].first = "log.txt";
  files[1].second.push_back(acc(5000, 0, 0, 8192));
  const auto hl = classify_high_level(multi_file_log(files, 4), 4);
  EXPECT_EQ(hl.xy, "N-1");
  EXPECT_EQ(hl.layout, FileLayout::Consecutive);
  EXPECT_EQ(hl.dominant_file, "dataset.bin");
}

TEST(HighLevel, NumberedFilesGroupIntoOneFamily) {
  // Per-checkpoint numbered files must land in one family so the family
  // file count reflects the series.
  std::vector<std::pair<std::string, std::vector<Access>>> files;
  for (int c = 0; c < 3; ++c) {
    std::vector<Access> v;
    for (Rank r = 0; r < 4; ++r) {
      v.push_back(acc(c * 1000 + r * 10, r, static_cast<Offset>(r) * 100000,
                      65536));
    }
    files.push_back({"chk_" + std::to_string(c), std::move(v)});
  }
  const auto hl = classify_high_level(multi_file_log(files, 4), 4);
  EXPECT_EQ(hl.xy, "N-1");
  EXPECT_EQ(hl.family_files, 3);
}

TEST(HighLevel, EmptyLogSafe) {
  AccessLog log;
  log.nranks = 4;
  EXPECT_EQ(classify_high_level(log, 4).xy, "0-0");
}

}  // namespace
}  // namespace pfsem::core
