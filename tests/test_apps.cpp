// Integration tests: run every application configuration end-to-end
// through the simulated stack and check the analysis results against the
// paper's ground truth (Table 3 classes, Table 4 conflict classes, the
// Section 6.3 commit-semantics observation, race-freedom).

#include <gtest/gtest.h>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/advisor.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/happens_before.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/pattern.hpp"

namespace pfsem {
namespace {

apps::AppConfig small_config() {
  apps::AppConfig cfg;
  cfg.nranks = 16;  // small scale for test speed; scale invariance is
  cfg.ranks_per_node = 4;  // covered by ScaleInvariance below
  cfg.bytes_per_rank = 64 * 1024;
  return cfg;
}

struct RunResult {
  core::ConflictReport report;
  core::HighLevelPattern pattern;
  core::Advice advice;
  core::RaceCheck races;
};

RunResult analyze(const apps::AppInfo& info, apps::AppConfig cfg) {
  auto bundle = apps::run_app(info, cfg);
  // Offset reconstruction is validated against simulator ground truth on
  // every app run — a strong end-to-end check of Section 5.1.
  auto log = core::reconstruct_accesses(
      bundle, {.validate_against_ground_truth = true});
  RunResult r;
  r.report = core::detect_conflicts(log);
  r.pattern = core::classify_high_level(log, cfg.nranks);
  core::HappensBefore hb(bundle.comm, cfg.nranks);
  r.races = core::validate_synchronization(r.report, hb);
  r.advice = core::advise(r.report, &hb);
  return r;
}

class AppCase : public ::testing::TestWithParam<int> {};

TEST_P(AppCase, MatchesPaperGroundTruth) {
  const auto& info = apps::registry()[static_cast<std::size_t>(GetParam())];
  SCOPED_TRACE(info.name);
  const auto result = analyze(info, small_config());

  // Table 4: conflict classes under session semantics.
  EXPECT_EQ(result.report.session.waw_s, info.expect.waw_s) << "WAW-S";
  EXPECT_EQ(result.report.session.waw_d, info.expect.waw_d) << "WAW-D";
  EXPECT_EQ(result.report.session.raw_s, info.expect.raw_s) << "RAW-S";
  EXPECT_EQ(result.report.session.raw_d, info.expect.raw_d) << "RAW-D";

  // Section 6.3: under commit semantics FLASH's conflicts disappear and
  // every other configuration keeps the same conflict classes.
  if (info.expect.commit_clears) {
    EXPECT_FALSE(result.report.commit.any())
        << "commit semantics should clear this app's conflicts";
  } else {
    EXPECT_EQ(result.report.commit.waw_s, info.expect.waw_s);
    EXPECT_EQ(result.report.commit.waw_d, info.expect.waw_d);
    EXPECT_EQ(result.report.commit.raw_s, info.expect.raw_s);
    EXPECT_EQ(result.report.commit.raw_d, info.expect.raw_d);
  }

  // Table 3: high-level class of the dominant output pattern.
  if (!info.expect.xy.empty()) {
    EXPECT_EQ(result.pattern.xy, info.expect.xy);
    EXPECT_EQ(std::string(core::to_string(result.pattern.layout)),
              info.expect.layout);
  }

  // Section 5.2 validation: every conflicting pair must be ordered by the
  // program's synchronization (race-free).
  EXPECT_EQ(result.races.racy, 0u)
      << result.races.checked << " pairs checked";
  EXPECT_TRUE(result.advice.race_free);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, AppCase,
    ::testing::Range(0, static_cast<int>(apps::registry().size())),
    [](const ::testing::TestParamInfo<int>& pinfo) {
      std::string name =
          apps::registry()[static_cast<std::size_t>(pinfo.param)].name;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

// Headline result (abstract): with same-process conflicts handled by the
// PFS, every configuration except FLASH runs correctly under session
// semantics, and FLASH is fixed by commit semantics.
TEST(Headline, SixteenOfSeventeenRunUnderSessionSemantics) {
  int session_ok = 0, flash_configs = 0, commit_fixes_flash = 0;
  for (const auto& info : apps::registry()) {
    const auto result = analyze(info, small_config());
    const bool d_conflict =
        result.report.session.waw_d || result.report.session.raw_d;
    if (info.app == "FLASH") {
      ++flash_configs;
      EXPECT_TRUE(d_conflict) << info.name;
      if (!(result.report.commit.waw_d || result.report.commit.raw_d)) {
        ++commit_fixes_flash;
      }
    } else {
      EXPECT_FALSE(d_conflict) << info.name;
      ++session_ok;
    }
  }
  EXPECT_EQ(session_ok + flash_configs,
            static_cast<int>(apps::registry().size()));
  EXPECT_EQ(commit_fixes_flash, flash_configs);
}

// Section 6.1: the conflict pattern must not depend on scale.
TEST(ScaleInvariance, ConflictClassesStableAcrossRankCounts) {
  for (const char* name : {"FLASH-fbs", "NWChem", "LAMMPS-NetCDF", "ENZO"}) {
    const auto* info = apps::find_app(name);
    ASSERT_NE(info, nullptr);
    apps::AppConfig small = small_config();
    apps::AppConfig large = small_config();
    large.nranks = 64;
    large.ranks_per_node = 8;
    const auto a = analyze(*info, small);
    const auto b = analyze(*info, large);
    SCOPED_TRACE(name);
    EXPECT_EQ(a.report.session.waw_s, b.report.session.waw_s);
    EXPECT_EQ(a.report.session.waw_d, b.report.session.waw_d);
    EXPECT_EQ(a.report.session.raw_s, b.report.session.raw_s);
    EXPECT_EQ(a.report.session.raw_d, b.report.session.raw_d);
    EXPECT_EQ(a.pattern.xy, b.pattern.xy);
  }
}

}  // namespace
}  // namespace pfsem
