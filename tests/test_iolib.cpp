// Unit tests for the simulated I/O library stack: trace emission and layer
// attribution, MPI-IO collective aggregation, and the per-library metadata
// and conflict signatures the application models rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pfsem/core/conflict.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/iolib/adios_lite.hpp"
#include "pfsem/iolib/hdf5_lite.hpp"
#include "pfsem/iolib/mpi_io.hpp"
#include "pfsem/iolib/netcdf_lite.hpp"
#include "pfsem/iolib/posix_io.hpp"
#include "pfsem/iolib/silo_lite.hpp"

namespace pfsem::iolib {
namespace {

struct Fixture {
  explicit Fixture(int nranks) : collector(nranks) {
    world.emplace(engine, collector,
                  mpi::WorldConfig{.nranks = nranks, .ranks_per_node = 4});
  }
  IoContext ctx() {
    return {.engine = &engine,
            .world = &world.value(),
            .pfs = &pfs,
            .collector = &collector};
  }

  sim::Engine engine;
  trace::Collector collector;
  vfs::Pfs pfs;
  std::optional<mpi::World> world;
};

std::size_t count_records(const trace::TraceBundle& b, trace::Func f) {
  return static_cast<std::size_t>(
      std::count_if(b.records.begin(), b.records.end(),
                    [f](const trace::Record& r) { return r.func == f; }));
}

TEST(PosixIo, EmitsRecordsWithOriginAndTiming) {
  Fixture f(1);
  PosixIo posix(f.ctx(), trace::Layer::Hdf5);
  auto prog = [&]() -> sim::Task<void> {
    const int fd = co_await posix.open(0, "x", trace::kCreate | trace::kRdWr);
    co_await posix.write(0, fd, 4096);
    co_await posix.close(0, fd);
  };
  f.engine.spawn(prog());
  f.engine.run();
  const auto& recs = f.collector.bundle().records;
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].func, trace::Func::open);
  EXPECT_EQ(recs[1].func, trace::Func::write);
  EXPECT_EQ(recs[2].func, trace::Func::close);
  for (const auto& r : recs) {
    EXPECT_EQ(r.layer, trace::Layer::Posix);
    EXPECT_EQ(r.origin, trace::Layer::Hdf5);
    EXPECT_LT(r.tstart, r.tend) << "operations must take simulated time";
  }
  EXPECT_EQ(recs[1].ret, 4096);
  EXPECT_EQ(f.collector.path_view(recs[1].file), "x");
}

TEST(PosixIo, SimulatedTimeAdvancesWithCost) {
  Fixture f(1);
  PosixIo posix(f.ctx());
  auto prog = [&]() -> sim::Task<void> {
    const int fd = co_await posix.open(0, "x", trace::kCreate | trace::kWrOnly);
    co_await posix.write(0, fd, 10 * 1024 * 1024);  // 10 MB
    co_await posix.close(0, fd);
  };
  f.engine.spawn(prog());
  f.engine.run();
  // 10 MB at 5 GB/s is 2 ms plus latencies.
  EXPECT_GT(f.engine.now(), 2'000'000);
}

TEST(MpiIo, CollectiveWriteUsesOnlyAggregators) {
  constexpr int kRanks = 8;
  Fixture f(kRanks);
  MpiIo mpiio(f.ctx(), {.aggregators = 2});
  auto prog = [&](Rank r) -> sim::Task<void> {
    auto* fh = co_await mpiio.open(r, "shared", trace::kCreate | trace::kRdWr,
                                   f.world->all());
    co_await mpiio.write_at_all(r, fh, static_cast<Offset>(r) * 1000, 1000);
    co_await mpiio.close(r, fh);
  };
  for (Rank r = 0; r < kRanks; ++r) f.engine.spawn(prog(r));
  f.engine.run();

  const auto bundle = f.collector.bundle();
  std::set<Rank> posix_writers;
  for (const auto& rec : bundle.records) {
    if (rec.layer == trace::Layer::Posix && rec.func == trace::Func::pwrite) {
      posix_writers.insert(rec.rank);
      EXPECT_EQ(rec.origin, trace::Layer::MpiIo);
    }
  }
  EXPECT_EQ(posix_writers.size(), 2u) << "only aggregators touch the PFS";
  // Every rank logs the MPI-IO layer call.
  EXPECT_EQ(count_records(bundle, trace::Func::mpi_file_write_at_all),
            static_cast<std::size_t>(kRanks));
  // The union of aggregator writes covers the whole span.
  EXPECT_EQ(f.pfs.file_size("shared"), 8000u);
}

TEST(MpiIo, IndependentWriteGoesDirect) {
  Fixture f(4);
  MpiIo mpiio(f.ctx(), {.aggregators = 2});
  auto prog = [&](Rank r) -> sim::Task<void> {
    auto* fh = co_await mpiio.open(r, "ind", trace::kCreate | trace::kRdWr,
                                   f.world->all());
    co_await mpiio.write_at(r, fh, static_cast<Offset>(r) * 100, 100);
    co_await mpiio.close(r, fh);
  };
  for (Rank r = 0; r < 4; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  std::set<Rank> writers;
  for (const auto& rec : f.collector.bundle().records) {
    if (rec.func == trace::Func::pwrite) writers.insert(rec.rank);
  }
  EXPECT_EQ(writers.size(), 4u);
}

core::ConflictReport conflicts_of(const trace::TraceBundle& bundle) {
  const auto log = core::reconstruct_accesses(
      bundle, {.validate_against_ground_truth = true});
  return core::detect_conflicts(log);
}

TEST(Hdf5, FlushingFileShowsWawClearedByCommit) {
  constexpr int kRanks = 4;
  Fixture f(kRanks);
  H5Options opt;
  opt.flush_after_dataset = true;
  opt.metadata_writers = 3;
  Hdf5Lite h5(f.ctx(), opt);
  auto prog = [&](Rank r) -> sim::Task<void> {
    auto* file = co_await h5.create(r, "flashy.h5", f.world->all());
    for (int d = 0; d < 3; ++d) {
      const std::string name = "var" + std::to_string(d);
      co_await h5.dataset_create(r, file, name, 4 * 8192);
      co_await h5.dataset_write(r, file, name,
                                static_cast<Offset>(r) * 8192, 8192);
    }
    co_await h5.close(r, file);
  };
  for (Rank r = 0; r < kRanks; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  const auto rep = conflicts_of(f.collector.bundle());
  EXPECT_TRUE(rep.session.waw_d) << "rotating metadata flushes conflict";
  EXPECT_FALSE(rep.commit.any()) << "the flush fsync is the commit";
}

TEST(Hdf5, QuietFileIsConflictFree) {
  constexpr int kRanks = 4;
  Fixture f(kRanks);
  Hdf5Lite h5(f.ctx(), {});
  auto prog = [&](Rank r) -> sim::Task<void> {
    auto* file = co_await h5.create(r, "quiet.h5", f.world->all());
    co_await h5.dataset_create(r, file, "d", 4 * 8192);
    co_await h5.dataset_write(r, file, "d", static_cast<Offset>(r) * 8192, 8192);
    co_await h5.close(r, file);
  };
  for (Rank r = 0; r < kRanks; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  const auto rep = conflicts_of(f.collector.bundle());
  EXPECT_FALSE(rep.session.any());
  EXPECT_FALSE(rep.commit.any());
}

TEST(Hdf5, ReadbackProducesRawS) {
  Fixture f(1);
  H5Options opt;
  opt.metadata_readback = true;
  Hdf5Lite h5(f.ctx(), opt);
  auto prog = [&]() -> sim::Task<void> {
    const mpi::Group self{0};
    auto* file = co_await h5.create(0, "enzoish.h5", self);
    for (int d = 0; d < 3; ++d) {
      const std::string name = "g" + std::to_string(d);
      co_await h5.dataset_create(0, file, name, 8192);
      co_await h5.dataset_write(0, file, name, 0, 8192);
    }
    co_await h5.close(0, file);
  };
  f.engine.spawn(prog());
  f.engine.run();
  const auto rep = conflicts_of(f.collector.bundle());
  EXPECT_TRUE(rep.session.raw_s);
  EXPECT_TRUE(rep.commit.raw_s) << "no commit between entry write and scan";
  EXPECT_FALSE(rep.session.waw_s);
  EXPECT_FALSE(rep.session.waw_d);
}

TEST(Hdf5, CloseEmitsTruncateAndFstat) {
  Fixture f(1);
  Hdf5Lite h5(f.ctx(), {});
  auto prog = [&]() -> sim::Task<void> {
    const mpi::Group self{0};
    auto* file = co_await h5.create(0, "t.h5", self);
    co_await h5.dataset_create(0, file, "d", 8192);
    co_await h5.dataset_write(0, file, "d", 0, 8192);
    co_await h5.close(0, file);
  };
  f.engine.spawn(prog());
  f.engine.run();
  const auto& b = f.collector.bundle();
  EXPECT_EQ(count_records(b, trace::Func::lstat), 1u);
  EXPECT_EQ(count_records(b, trace::Func::fstat), 1u);
  EXPECT_EQ(count_records(b, trace::Func::ftruncate), 1u);
}

TEST(NetCdf, NumrecsRewriteIsWawSUnderBothSemantics) {
  Fixture f(1);
  NetCdfLite nc(f.ctx());
  auto prog = [&]() -> sim::Task<void> {
    auto* file = co_await nc.create(0, "dump.nc");
    co_await nc.def_var(0, file, "coords");
    co_await nc.enddef(0, file);
    for (int i = 0; i < 3; ++i) co_await nc.put_record(0, file, 65536);
    co_await nc.close(0, file);
  };
  f.engine.spawn(prog());
  f.engine.run();
  const auto rep = conflicts_of(f.collector.bundle());
  EXPECT_TRUE(rep.session.waw_s);
  EXPECT_TRUE(rep.commit.waw_s) << "no fsync between numrecs updates";
  EXPECT_FALSE(rep.session.waw_d);
  const auto& b = f.collector.bundle();
  EXPECT_GE(count_records(b, trace::Func::getcwd), 1u);
  EXPECT_GE(count_records(b, trace::Func::access), 1u);
}

TEST(Adios, IndexByteOverwriteIsWawS) {
  constexpr int kRanks = 4;
  Fixture f(kRanks);
  AdiosLite adios(f.ctx(), {.aggregators = 2});
  auto prog = [&](Rank r) -> sim::Task<void> {
    auto* bp = co_await adios.open(r, "out", f.world->all());
    for (int step = 0; step < 3; ++step) {
      co_await adios.put(r, bp, 32768);
      co_await adios.end_step(r, bp);
    }
    co_await adios.close(r, bp);
  };
  for (Rank r = 0; r < kRanks; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  const auto rep = conflicts_of(f.collector.bundle());
  EXPECT_TRUE(rep.session.waw_s);
  EXPECT_FALSE(rep.session.waw_d);
  EXPECT_FALSE(rep.session.raw_d);
  // The conflicting file is the index, as the paper reports.
  const auto log = core::reconstruct_accesses(f.collector.bundle());
  bool idx_conflict = false;
  for (const auto& c : core::detect_conflicts(log).conflicts) {
    if (log.path(c.file).find("md.idx") != std::string::npos) idx_conflict = true;
  }
  EXPECT_TRUE(idx_conflict);
  // ADIOS creates its output directory.
  EXPECT_GE(count_records(f.collector.bundle(), trace::Func::mkdir), 1u);
}

TEST(Silo, BatonGroupFileWawSOnlyAndNoCrossRankConflicts) {
  constexpr int kRanks = 4;
  Fixture f(kRanks);
  SiloLite silo(f.ctx());
  auto prog = [&](Rank r) -> sim::Task<void> {
    co_await silo.write_group_file(r, "g.silo", f.world->all(), 65536, 0);
  };
  for (Rank r = 0; r < kRanks; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  const auto rep = conflicts_of(f.collector.bundle());
  EXPECT_TRUE(rep.session.waw_s) << "in-turn TOC double write";
  EXPECT_FALSE(rep.session.waw_d)
      << "baton close->open clears cross-rank TOC rewrites";
  EXPECT_FALSE(rep.session.raw_d);
}


TEST(Hdf5, CollectiveMetadataRoutesAllMetadataToLeader) {
  constexpr int kRanks = 8;
  Fixture f(kRanks);
  H5Options opt;
  opt.collective_metadata = true;
  opt.flush_after_dataset = true;
  opt.metadata_writers = 6;
  Hdf5Lite h5(f.ctx(), opt);
  auto prog = [&](Rank r) -> sim::Task<void> {
    auto* file = co_await h5.create(r, "cm.h5", f.world->all());
    for (int d = 0; d < 4; ++d) {
      const std::string name = "v" + std::to_string(d);
      co_await h5.dataset_create(r, file, name, 8 * 8192);
      co_await h5.dataset_write(r, file, name, static_cast<Offset>(r) * 8192,
                                8192);
    }
    co_await h5.close(r, file);
  };
  for (Rank r = 0; r < kRanks; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  // Every small (metadata-sized) write must come from rank 0.
  std::set<Rank> meta_writers;
  for (const auto& rec : f.collector.bundle().records) {
    if (rec.layer == trace::Layer::Posix && rec.func == trace::Func::pwrite &&
        rec.count < 4096) {
      meta_writers.insert(rec.rank);
    }
  }
  EXPECT_EQ(meta_writers, std::set<Rank>{0});
  // Collective metadata is the paper's FLASH fix: no cross-process
  // conflicts survive even under session semantics.
  const auto rep = conflicts_of(f.collector.bundle());
  EXPECT_FALSE(rep.session.waw_d);
  EXPECT_FALSE(rep.session.raw_d);
}

TEST(Hdf5, DistributedMetadataUsesManyWriters) {
  constexpr int kRanks = 16;
  Fixture f(kRanks);
  H5Options opt;
  opt.metadata_writers = 12;
  Hdf5Lite h5(f.ctx(), opt);
  auto prog = [&](Rank r) -> sim::Task<void> {
    auto* file = co_await h5.create(r, "dm.h5", f.world->all());
    for (int d = 0; d < 4; ++d) {  // 4 datasets x 3 metadata pieces
      const std::string name = "v" + std::to_string(d);
      co_await h5.dataset_create(r, file, name, 16 * 8192);
      co_await h5.dataset_write(r, file, name, static_cast<Offset>(r) * 8192,
                                8192);
    }
    co_await h5.close(r, file);
  };
  for (Rank r = 0; r < kRanks; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  std::set<Rank> meta_writers;
  for (const auto& rec : f.collector.bundle().records) {
    if (rec.layer == trace::Layer::Posix && rec.func == trace::Func::pwrite &&
        rec.count < 4096) {
      meta_writers.insert(rec.rank);
    }
  }
  EXPECT_GE(meta_writers.size(), 10u)
      << "metadata ownership must rotate over the writer subset";
}

TEST(MpiIo, CollectiveReadUsesAggregatorsAndCoversSpan) {
  constexpr int kRanks = 8;
  Fixture f(kRanks);
  f.pfs.preload("input", 8 * 1000);
  MpiIo mpiio(f.ctx(), {.aggregators = 2});
  auto prog = [&](Rank r) -> sim::Task<void> {
    auto* fh = co_await mpiio.open(r, "input", trace::kRdWr, f.world->all());
    co_await mpiio.read_at_all(r, fh, static_cast<Offset>(r) * 1000, 1000);
    co_await mpiio.close(r, fh);
  };
  for (Rank r = 0; r < kRanks; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  std::set<Rank> posix_readers;
  std::uint64_t bytes = 0;
  for (const auto& rec : f.collector.bundle().records) {
    if (rec.layer == trace::Layer::Posix && rec.func == trace::Func::pread) {
      posix_readers.insert(rec.rank);
      bytes += static_cast<std::uint64_t>(rec.ret);
    }
  }
  EXPECT_EQ(posix_readers.size(), 2u);
  EXPECT_EQ(bytes, 8u * 1000) << "aggregator domains must tile the span";
  EXPECT_EQ(count_records(f.collector.bundle(),
                          trace::Func::mpi_file_read_at_all),
            static_cast<std::size_t>(kRanks));
}

TEST(MpiIo, SyncIsACommit) {
  Fixture f(2);
  MpiIo mpiio(f.ctx(), {.aggregators = 1});
  auto prog = [&](Rank r) -> sim::Task<void> {
    auto* fh = co_await mpiio.open(r, "s", trace::kCreate | trace::kRdWr,
                                   f.world->all());
    co_await mpiio.write_at(r, fh, static_cast<Offset>(r) * 100, 100);
    co_await mpiio.sync(r, fh);
    co_await mpiio.close(r, fh);
  };
  for (Rank r = 0; r < 2; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  EXPECT_EQ(count_records(f.collector.bundle(), trace::Func::fsync), 2u);
  EXPECT_EQ(count_records(f.collector.bundle(), trace::Func::mpi_file_sync), 2u);
}

TEST(Silo, BlocksAreStridedWithPadding) {
  constexpr int kRanks = 4;
  Fixture f(kRanks);
  SiloLite silo(f.ctx());
  auto prog = [&](Rank r) -> sim::Task<void> {
    co_await silo.write_group_file(r, "g.silo", f.world->all(), 32768, 0);
  };
  for (Rank r = 0; r < kRanks; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  // Each rank's data block must start at a distinct padded slot.
  std::set<Offset> block_starts;
  for (const auto& rec : f.collector.bundle().records) {
    if (rec.func == trace::Func::pwrite && rec.count >= 4096 &&
        rec.offset >= 1024) {
      block_starts.insert(rec.offset);
    }
  }
  // 4 ranks x 8 chunks per block = distinct offsets; block bases spaced
  // by bytes+pad.
  EXPECT_TRUE(block_starts.contains(1024));
  EXPECT_TRUE(block_starts.contains(1024 + 32768 + 4096));
}

}  // namespace
}  // namespace pfsem::iolib
