// ThreadSanitizer exercise for pfsem::exec (built only when -DPFSEM_TSAN=ON;
// plain main so the gtest runtime doesn't pollute the TSan report). Drives
// the pool through the access patterns the analysis pipeline uses — slot
// writes, shared read-only input, repeated jobs, exceptions — so a data
// race in the deque/steal/publication logic shows up as a TSan error and a
// nonzero exit.

#include <atomic>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "pfsem/exec/pool.hpp"
#include "pfsem/obs/obs.hpp"
#include "pfsem/trace/collector.hpp"

int main() {
  using pfsem::exec::ThreadPool;

  // Slot-write pattern: every task writes its own slot, caller reduces.
  for (const int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    const std::vector<int> input(20'000, 3);
    std::vector<long> out(input.size());
    for (int round = 0; round < 20; ++round) {
      pool.parallel_for(input.size(),
                        [&](std::size_t i) { out[i] = input[i] * round; });
      const long sum = std::accumulate(out.begin(), out.end(), 0l);
      if (sum != static_cast<long>(input.size()) * 3 * round) {
        std::fprintf(stderr, "bad sum %ld in round %d\n", sum, round);
        return 1;
      }
    }

    // Atomic-counter pattern + exception propagation under contention.
    std::atomic<int> hits{0};
    try {
      pool.parallel_for(10'000, [&](std::size_t i) {
        ++hits;
        if (i == 9'999) throw std::runtime_error("expected");
      });
    } catch (const std::runtime_error&) {
    }
    // Pool must stay usable after a failed job.
    hits = 0;
    pool.parallel_for(1'000, [&](std::size_t) { ++hits; });
    if (hits.load() != 1'000) {
      std::fprintf(stderr, "pool broken after exception: %d\n", hits.load());
      return 1;
    }

    // Concurrent per-shard capture: each pool task owns an independent
    // Collector, drives the arena emission path (reserve, emit, flush-on-
    // take), and publishes its bundle into its own slot. Any hidden shared
    // state in the collector internals would trip TSan here.
    constexpr std::size_t kShards = 16;
    std::vector<pfsem::trace::TraceBundle> bundles(kShards);
    pool.parallel_for(kShards, [&](std::size_t shard) {
      pfsem::trace::Collector collector(4);
      collector.reserve(4, 256);
      const auto file =
          collector.intern("/tsan/shard." + std::to_string(shard));
      for (int i = 0; i < 1'000; ++i) {
        pfsem::trace::Record rec;
        rec.tstart = i;
        rec.tend = i + 1;
        rec.rank = static_cast<pfsem::Rank>(i % 4);
        rec.func = pfsem::trace::Func::pwrite;
        rec.offset = static_cast<pfsem::Offset>(i) * 64;
        rec.count = 64;
        rec.ret = 64;
        rec.file = file;
        collector.emit(rec);
      }
      bundles[shard] = collector.take();
    });
    for (std::size_t shard = 0; shard < kShards; ++shard) {
      if (bundles[shard].records.size() != 1'000 ||
          bundles[shard].file_op_counts.size() != 1) {
        std::fprintf(stderr, "bad shard bundle %zu\n", shard);
        return 1;
      }
    }

    // Observer pattern: workers tally into per-participant stats slots
    // while the caller merges them after the completion barrier — the
    // release sequence through the outstanding-counter RMW chain is the
    // only thing making the slots visible, so TSan must bless it here.
    pfsem::obs::Run run(
        pfsem::obs::Config{.metrics = true, .tracing = true});
    pfsem::exec::set_observer(&run);
    std::atomic<long> seen{0};
    for (int round = 0; round < 10; ++round) {
      pool.parallel_for(20'000, [&](std::size_t) {
        seen.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pfsem::exec::set_observer(nullptr);
    if (run.metrics.value(run.pool_jobs) != 10 ||
        run.metrics.value(run.pool_items) != 200'000) {
      std::fprintf(stderr, "observer lost work: jobs=%llu items=%llu\n",
                   static_cast<unsigned long long>(
                       run.metrics.value(run.pool_jobs)),
                   static_cast<unsigned long long>(
                       run.metrics.value(run.pool_items)));
      return 1;
    }
  }
  std::puts("tsan exercise passed");
  return 0;
}
