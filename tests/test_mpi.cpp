// Unit tests for the simulated MPI layer: barrier/collective semantics,
// point-to-point matching, and the CommLog events the happens-before
// analysis consumes.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "pfsem/mpi/world.hpp"
#include "pfsem/util/error.hpp"

namespace pfsem::mpi {
namespace {

struct Fixture {
  explicit Fixture(int nranks, WorldConfig cfg = {}) : collector(nranks) {
    cfg.nranks = nranks;
    world.emplace(engine, collector, cfg);
  }
  sim::Engine engine;
  trace::Collector collector;
  std::optional<World> world;
};

TEST(Barrier, NobodyLeavesBeforeLastArrives) {
  Fixture f(8);
  SimTime last_enter = 0;
  SimTime first_exit = kTimeNever;
  auto prog = [&](Rank r) -> sim::Task<void> {
    co_await f.engine.delay(100 * (r + 1));  // staggered arrivals
    last_enter = std::max(last_enter, f.engine.now());
    co_await f.world->barrier(r);
    first_exit = std::min(first_exit, f.engine.now());
  };
  for (Rank r = 0; r < 8; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  EXPECT_GE(first_exit, last_enter);
  ASSERT_EQ(f.collector.bundle().comm.collectives.size(), 1u);
  const auto& ev = f.collector.bundle().comm.collectives[0];
  EXPECT_EQ(ev.kind, trace::CollectiveKind::Barrier);
  EXPECT_EQ(ev.arrivals.size(), 8u);
}

TEST(Barrier, SubgroupBarrierOnlyBlocksMembers) {
  Fixture f(8);
  const Group sub{0, 2, 4};
  bool outsider_done = false;
  auto member = [&](Rank r) -> sim::Task<void> {
    co_await f.world->barrier(r, sub);
  };
  auto outsider = [&]() -> sim::Task<void> {
    co_await f.engine.delay(1);
    outsider_done = true;
    co_return;
  };
  for (Rank r : sub) f.engine.spawn(member(r));
  f.engine.spawn(outsider());
  f.engine.run();
  EXPECT_TRUE(outsider_done);
}

TEST(Barrier, BackToBackBarriersDoNotMixEpochs) {
  Fixture f(4);
  std::vector<int> exits;
  auto prog = [&](Rank r) -> sim::Task<void> {
    co_await f.engine.delay(static_cast<SimDuration>(r) * 50);
    co_await f.world->barrier(r);
    exits.push_back(1);
    co_await f.world->barrier(r);
    exits.push_back(2);
  };
  for (Rank r = 0; r < 4; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  ASSERT_EQ(exits.size(), 8u);
  // All epoch-1 exits precede all epoch-2 exits.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(exits[static_cast<std::size_t>(i)], 1);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(exits[static_cast<std::size_t>(i)], 2);
  EXPECT_EQ(f.collector.bundle().comm.collectives.size(), 2u);
}

TEST(P2P, SendThenRecvMatches) {
  Fixture f(2);
  std::uint64_t got = 0;
  auto sender = [&]() -> sim::Task<void> { co_await f.world->send(0, 1, 5, 4096); };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.engine.delay(1000);
    got = co_await f.world->recv(1, 0, 5);
  };
  f.engine.spawn(sender());
  f.engine.spawn(receiver());
  f.engine.run();
  EXPECT_EQ(got, 4096u);
  ASSERT_EQ(f.collector.bundle().comm.p2p.size(), 1u);
  const auto& ev = f.collector.bundle().comm.p2p[0];
  EXPECT_EQ(ev.src, 0);
  EXPECT_EQ(ev.dst, 1);
  EXPECT_EQ(ev.tag, 5);
  EXPECT_LT(ev.t_send_start, ev.t_recv_end);
}

TEST(P2P, RecvBeforeSendAlsoMatches) {
  Fixture f(2);
  std::uint64_t got = 0;
  auto receiver = [&]() -> sim::Task<void> { got = co_await f.world->recv(1, 0, 9); };
  auto sender = [&]() -> sim::Task<void> {
    co_await f.engine.delay(2000);
    co_await f.world->send(0, 1, 9, 128);
  };
  f.engine.spawn(receiver());
  f.engine.spawn(sender());
  f.engine.run();
  EXPECT_EQ(got, 128u);
}

TEST(P2P, TagsDoNotCrossMatch) {
  Fixture f(2);
  std::vector<std::uint64_t> got;
  auto sender = [&]() -> sim::Task<void> {
    co_await f.world->send(0, 1, /*tag=*/1, 111);
    co_await f.world->send(0, 1, /*tag=*/2, 222);
  };
  auto receiver = [&]() -> sim::Task<void> {
    // Receive tag 2 first; must not consume the tag-1 message.
    got.push_back(co_await f.world->recv(1, 0, 2));
    got.push_back(co_await f.world->recv(1, 0, 1));
  };
  f.engine.spawn(sender());
  f.engine.spawn(receiver());
  f.engine.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{222, 111}));
}

TEST(P2P, FifoPerChannelNonOvertaking) {
  Fixture f(2);
  std::vector<std::uint64_t> got;
  auto sender = [&]() -> sim::Task<void> {
    for (std::uint64_t i = 1; i <= 3; ++i) co_await f.world->send(0, 1, 0, i);
  };
  auto receiver = [&]() -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) got.push_back(co_await f.world->recv(1, 0, 0));
  };
  f.engine.spawn(sender());
  f.engine.spawn(receiver());
  f.engine.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Collectives, EachKindLogsMatchedEvent) {
  Fixture f(4);
  auto prog = [&](Rank r) -> sim::Task<void> {
    co_await f.world->bcast(r, 0, 1024);
    co_await f.world->reduce(r, 0, 64);
    co_await f.world->allreduce(r, 8);
    co_await f.world->gather(r, 0, 256);
    co_await f.world->allgather(r, 32);
    co_await f.world->scatter(r, 0, 128);
    co_await f.world->alltoall(r, 16);
  };
  for (Rank r = 0; r < 4; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  const auto& log = f.collector.bundle().comm.collectives;
  ASSERT_EQ(log.size(), 7u);
  using K = trace::CollectiveKind;
  EXPECT_EQ(log[0].kind, K::Bcast);
  EXPECT_EQ(log[0].root, 0);
  EXPECT_EQ(log[1].kind, K::Reduce);
  EXPECT_EQ(log[2].kind, K::Allreduce);
  EXPECT_EQ(log[3].kind, K::Gather);
  EXPECT_EQ(log[4].kind, K::Allgather);
  EXPECT_EQ(log[5].kind, K::Scatter);
  EXPECT_EQ(log[6].kind, K::Alltoall);
  for (const auto& ev : log) EXPECT_EQ(ev.arrivals.size(), 4u);
}

TEST(Collectives, MismatchedKindThrows) {
  Fixture f(2);
  auto a = [&]() -> sim::Task<void> { co_await f.world->bcast(0, 0, 8); };
  auto b = [&]() -> sim::Task<void> { co_await f.world->allreduce(1, 8); };
  f.engine.spawn(a());
  f.engine.spawn(b());
  EXPECT_THROW(f.engine.run(), Error);
}

TEST(Collectives, ExitJitterSpreadsRanks) {
  WorldConfig cfg;
  cfg.exit_jitter = 10'000;
  Fixture f(16, cfg);
  auto prog = [&](Rank r) -> sim::Task<void> { co_await f.world->barrier(r); };
  for (Rank r = 0; r < 16; ++r) f.engine.spawn(prog(r));
  f.engine.run();
  const auto& ev = f.collector.bundle().comm.collectives.at(0);
  std::set<SimTime> exits;
  for (const auto& a : ev.arrivals) exits.insert(a.t_exit);
  EXPECT_GT(exits.size(), 1u) << "jitter should spread exit times";
}

TEST(World, NodePlacement) {
  Fixture f(16, WorldConfig{.ranks_per_node = 4});
  EXPECT_EQ(f.world->node_of(0), 0);
  EXPECT_EQ(f.world->node_of(3), 0);
  EXPECT_EQ(f.world->node_of(4), 1);
  EXPECT_EQ(f.world->node_of(15), 3);
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    Fixture f(8);
    auto prog = [&f](Rank r) -> sim::Task<void> {
      co_await f.world->barrier(r);
      co_await f.world->allreduce(r, 64);
      if (r == 0) co_await f.world->send(0, 1, 3, 99);
      if (r == 1) (void)co_await f.world->recv(1, 0, 3);
      co_await f.world->barrier(r);
    };
    for (Rank r = 0; r < 8; ++r) f.engine.spawn(prog(r));
    f.engine.run();
    return f.engine.now();
  };
  EXPECT_EQ(run_once(), run_once());
}


TEST(P2P, EagerSendCompletesWithoutReceiver) {
  Fixture f(2);
  SimTime send_done = 0;
  bool recv_done = false;
  auto sender = [&]() -> sim::Task<void> {
    co_await f.world->send(0, 1, 0, 1024);  // below eager threshold
    send_done = f.engine.now();
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.engine.delay(1'000'000);  // receiver shows up 1 ms later
    (void)co_await f.world->recv(1, 0, 0);
    recv_done = true;
  };
  f.engine.spawn(sender());
  f.engine.spawn(receiver());
  f.engine.run();
  EXPECT_TRUE(recv_done);
  EXPECT_LT(send_done, 1'000'000)
      << "eager send must not block on the late receiver";
}

TEST(P2P, LargeSendRendezvousesWithReceiver) {
  WorldConfig cfg;
  cfg.eager_threshold = 1024;
  Fixture f(2, cfg);
  SimTime send_done = 0;
  auto sender = [&]() -> sim::Task<void> {
    co_await f.world->send(0, 1, 0, 1 << 20);  // above threshold
    send_done = f.engine.now();
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.engine.delay(1'000'000);
    (void)co_await f.world->recv(1, 0, 0);
  };
  f.engine.spawn(sender());
  f.engine.spawn(receiver());
  f.engine.run();
  EXPECT_GE(send_done, 1'000'000)
      << "rendezvous send completes only after the receive matches";
}

TEST(P2P, HappensBeforeEdgeLoggedForEagerToo) {
  Fixture f(2);
  auto sender = [&]() -> sim::Task<void> {
    co_await f.world->send(0, 1, 3, 64);
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.engine.delay(500'000);
    (void)co_await f.world->recv(1, 0, 3);
  };
  f.engine.spawn(sender());
  f.engine.spawn(receiver());
  f.engine.run();
  ASSERT_EQ(f.collector.bundle().comm.p2p.size(), 1u);
  const auto& e = f.collector.bundle().comm.p2p[0];
  EXPECT_LT(e.t_send_start, e.t_recv_end);
  EXPECT_GE(e.t_recv_start, 500'000);
}

}  // namespace
}  // namespace pfsem::mpi
