// Work-stealing pool tests: every index executes exactly once for any
// (pool size, n) combination, exceptions propagate to the caller, and
// the free-function form behaves identically.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "pfsem/exec/pool.hpp"

namespace pfsem::exec {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_GE(resolve_threads(0), 1);   // auto: at least one
  EXPECT_GE(resolve_threads(-5), 1);  // negative treated as auto
  EXPECT_EQ(resolve_threads(100'000), 256);  // clamped
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (const int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    for (const std::size_t n : {0ul, 1ul, 2ul, 63ul, 1024ul, 10'000ul}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "index " << i << " with threads=" << threads << " n=" << n;
      }
    }
  }
}

TEST(ThreadPool, PoolIsReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum += i; });
    ASSERT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(ThreadPool, ResultsLandInDeterministicSlots) {
  // The contract the analysis relies on: tasks write slot i, the caller
  // reduces in index order, so the output is independent of scheduling.
  ThreadPool a(1), b(4);
  std::vector<int> out1(1000), out4(1000);
  a.parallel_for(out1.size(), [&](std::size_t i) {
    out1[i] = static_cast<int>(i * 7 % 13);
  });
  b.parallel_for(out4.size(), [&](std::size_t i) {
    out4[i] = static_cast<int>(i * 7 % 13);
  });
  EXPECT_EQ(out1, out4);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t i) {
                            if (i == 37) throw std::runtime_error("boom");
                          }),
        std::runtime_error)
        << "threads=" << threads;
    // The pool survives a failed job.
    std::atomic<int> ran{0};
    pool.parallel_for(10, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 10);
  }
}

TEST(ThreadPool, FreeFunctionMatchesPool) {
  std::vector<int> got(777, 0);
  parallel_for(3, got.size(), [&](std::size_t i) { got[i] = 1; });
  EXPECT_EQ(std::accumulate(got.begin(), got.end(), 0),
            static_cast<int>(got.size()));
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

}  // namespace
}  // namespace pfsem::exec
