// Randomized differential tests for the overlap engines and the parallel
// pipeline: across seeded generated logs (including adversarial
// long-lived intervals, empty extents, and dense clusters) the sweep-line
// engine, the paper's Algorithm-1 scan, and the naive O(n^2) oracle must
// agree pair-for-pair; and detect_conflicts / build_report at threads=N
// must be byte-identical to threads=1 for every registered application.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "pfsem/apps/registry.hpp"
#include "pfsem/core/advisor.hpp"
#include "pfsem/core/conflict.hpp"
#include "pfsem/core/happens_before.hpp"
#include "pfsem/core/offset_tracker.hpp"
#include "pfsem/core/overlap.hpp"
#include "pfsem/core/report.hpp"
#include "pfsem/core/tuning.hpp"
#include "pfsem/exec/pool.hpp"
#include "pfsem/util/rng.hpp"

namespace pfsem {
namespace {

using core::Access;
using core::AccessType;

/// One random access log; the seed selects among several shapes so the
/// suite exercises sparse, dense, long-lived, and degenerate inputs.
std::vector<Access> random_accesses(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 1 + rng.below(300);
  const int shape = static_cast<int>(seed % 4);
  std::vector<Access> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Access a;
    a.rank = static_cast<Rank>(rng.below(8));
    a.t = static_cast<SimTime>(i);
    a.type = rng.chance(0.5) ? AccessType::Write : AccessType::Read;
    const Offset begin = static_cast<Offset>(rng.below(2000));
    switch (shape) {
      case 0:  // short extents, heavy collisions
        a.ext = {begin, begin + 1 + rng.below(30)};
        break;
      case 1:  // adversarial: long-lived intervals spanning most others
        a.ext = {begin, begin + 1500 + rng.below(500)};
        if (rng.chance(0.8)) a.type = AccessType::Read;
        break;
      case 2:  // mixed, with empty and zero-length extents sprinkled in
        if (rng.chance(0.15)) {
          a.ext = {begin, begin};  // empty: must never pair
        } else {
          a.ext = {begin, begin + rng.below(200)};
        }
        break;
      default:  // mostly-disjoint strided segments + a shared header
        if (rng.chance(0.1)) {
          a.ext = {0, 64};
        } else {
          a.ext = {static_cast<Offset>(i) * 256,
                   static_cast<Offset>(i) * 256 + 200};
        }
        break;
    }
    v.push_back(a);
  }
  return v;
}

TEST(OverlapDiff, SweepEqualsScanEqualsNaiveAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    const auto v = random_accesses(seed);
    for (const bool writes_only : {true, false}) {
      const core::OverlapOptions opts{.writes_only = writes_only};
      const auto sweep = core::detect_overlaps(v, opts);
      const auto scan = core::detect_overlaps_scan(v, opts);
      const auto naive = core::detect_overlaps_naive(v, opts);
      ASSERT_EQ(sweep, naive)
          << "sweep vs naive, seed=" << seed << " writes_only=" << writes_only;
      ASSERT_EQ(scan, naive)
          << "scan vs naive, seed=" << seed << " writes_only=" << writes_only;
    }
  }
}

TEST(OverlapDiff, ParallelSweepEqualsSequentialAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto v = random_accesses(seed * 31 + 7);
    const auto sequential = core::detect_overlaps(v);
    exec::ThreadPool pool(4);
    const auto parallel = core::detect_overlaps(v, {}, pool);
    ASSERT_EQ(parallel, sequential) << "seed=" << seed;
  }
}

/// A multi-file log built from the random generator, with open/close and
/// commit windows so the semantics conditions are exercised too.
core::AccessLog random_log(std::uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  core::AccessLog log;
  log.nranks = 8;
  const std::size_t nfiles = 1 + rng.below(6);
  for (std::size_t f = 0; f < nfiles; ++f) {
    auto& fl = log.file("f" + std::to_string(f));
    auto v = random_accesses(seed * 101 + f);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i].t = static_cast<SimTime>(i * 10);
      v[i].t_open = 0;
      v[i].t_close = rng.chance(0.3)
                         ? v[i].t + static_cast<SimTime>(1 + rng.below(50))
                         : kTimeNever;
      v[i].t_commit = rng.chance(0.3)
                          ? v[i].t + static_cast<SimTime>(1 + rng.below(50))
                          : kTimeNever;
    }
    fl.accesses = std::move(v);
  }
  return log;
}

std::string fingerprint(const core::ConflictReport& r) {
  std::ostringstream os;
  os << r.potential_pairs << '|' << r.session.count << r.session.waw_s
     << r.session.waw_d << r.session.raw_s << r.session.raw_d << '|'
     << r.commit.count << r.commit.waw_s << r.commit.waw_d << r.commit.raw_s
     << r.commit.raw_d << '\n';
  for (const auto& c : r.conflicts) {
    os << c.file << ' ' << c.first.rank << ' ' << c.first.t << ' '
       << c.first.ext.begin << ' ' << c.first.ext.end << ' ' << c.second.rank
       << ' ' << c.second.t << ' ' << c.second.ext.begin << ' '
       << c.second.ext.end << ' ' << static_cast<int>(c.kind) << ' '
       << c.same_process << c.under_commit << c.under_session << '\n';
  }
  return os.str();
}

TEST(ConflictDiff, ParallelEqualsSequentialAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto log = random_log(seed);
    const auto seq = core::detect_conflicts(log, core::ConflictOptions{.threads = 1});
    for (const int threads : {2, 4, 8}) {
      const auto par = core::detect_conflicts(log, core::ConflictOptions{.threads = threads});
      ASSERT_EQ(fingerprint(par), fingerprint(seq))
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ConflictDiff, PrecomputedPairsMatchDirectDetection) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto log = random_log(seed + 500);
    const auto direct = core::detect_conflicts(log);
    const auto pairs = core::detect_file_overlaps(log, {}, 4);
    const auto reused = core::detect_conflicts(log, pairs, {.threads = 4});
    ASSERT_EQ(fingerprint(reused), fingerprint(direct)) << "seed=" << seed;
    // Tuning through the same precomputed pairs matches the direct path.
    const auto t_direct = core::per_file_tuning(log);
    const auto t_reused = core::per_file_tuning(log, pairs);
    ASSERT_EQ(t_reused.files.size(), t_direct.files.size());
    for (std::size_t i = 0; i < t_direct.files.size(); ++i) {
      ASSERT_EQ(t_reused.files[i].weakest, t_direct.files[i].weakest)
          << t_direct.files[i].path;
      ASSERT_EQ(t_reused.files[i].session_pairs,
                t_direct.files[i].session_pairs);
      ASSERT_EQ(t_reused.files[i].commit_pairs, t_direct.files[i].commit_pairs);
    }
  }
}

TEST(PipelineDiff, EveryRegisteredAppReportsByteIdenticalAcrossThreads) {
  // Everything the CLI can print — report, advise, tune — rendered at
  // several thread counts must be byte-identical to the sequential run.
  apps::AppConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 4;
  for (const auto& info : apps::registry()) {
    const auto bundle = apps::run_app(info, cfg);
    const auto log = core::reconstruct_accesses(bundle);
    std::string reference;
    for (const int threads : {1, 2, 4}) {
      const auto pairs = core::detect_file_overlaps(log, {}, threads);
      const auto conflicts =
          core::detect_conflicts(log, pairs, {.threads = threads});
      const auto rep = core::build_report(bundle, log, conflicts, threads);
      std::ostringstream os;
      core::print_report(rep, os);
      core::HappensBefore hb(bundle.comm, bundle.nranks);
      const auto advice = core::advise(conflicts, &hb, threads);
      os << vfs::to_string(advice.weakest) << '|'
         << vfs::to_string(advice.weakest_strict) << '|' << advice.race_free
         << '|' << advice.rationale << '\n';
      const auto tuning = core::per_file_tuning(log, threads);
      for (const auto& f : tuning.files) {
        os << f.path << ' ' << vfs::to_string(f.weakest) << ' ' << f.bytes
           << ' ' << f.session_pairs << ' ' << f.commit_pairs << '\n';
      }
      os << tuning.total_bytes << '|' << tuning.relaxed_bytes << '|'
         << tuning.eventual_fraction() << '\n';
      if (threads == 1) {
        reference = os.str();
      } else {
        ASSERT_EQ(os.str(), reference) << info.name << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace pfsem
